type token =
  | Tkeyword of string
  | Tident of string
  | Tnumber of float
  | Tstring of string
  | Tsymbol of string
  | Teof

exception Lex_error of string

let keywords =
  [ "SELECT"; "FROM"; "WHERE"; "AND"; "ORDER"; "BY"; "LIMIT"; "AS"; "DESC";
    "ASC"; "GROUP"; "WITH"; "OVER"; "INSERT"; "INTO"; "VALUES"; "DELETE";
    "UPDATE"; "SET"; "BETWEEN" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  let peek off = if !i + off < n then Some input.[!i + off] else None in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      let word = String.sub input start (!i - start) in
      let upper = String.uppercase_ascii word in
      if List.mem upper keywords then emit (Tkeyword upper) else emit (Tident word)
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && (is_digit input.[!i] || input.[!i] = '.') do
        incr i
      done;
      (* Scientific notation: 1e-3 *)
      if !i < n && (input.[!i] = 'e' || input.[!i] = 'E') then begin
        incr i;
        if !i < n && (input.[!i] = '+' || input.[!i] = '-') then incr i;
        while !i < n && is_digit input.[!i] do
          incr i
        done
      end;
      let text = String.sub input start (!i - start) in
      match float_of_string_opt text with
      | Some f -> emit (Tnumber f)
      | None -> raise (Lex_error ("bad number: " ^ text))
    end
    else if c = '\'' then begin
      incr i;
      let start = !i in
      while !i < n && input.[!i] <> '\'' do
        incr i
      done;
      if !i >= n then raise (Lex_error "unterminated string literal");
      emit (Tstring (String.sub input start (!i - start)));
      incr i
    end
    else begin
      let two =
        match c, peek 1 with
        | '<', Some '=' -> Some "<="
        | '>', Some '=' -> Some ">="
        | '<', Some '>' -> Some "<>"
        | '!', Some '=' -> Some "<>"
        | _ -> None
      in
      match two with
      | Some s ->
          emit (Tsymbol s);
          i := !i + 2
      | None ->
          (match c with
          | '(' | ')' | ',' | '.' | '+' | '-' | '*' | '/' | '=' | '<' | '>' | '?'
          | ';' ->
              if c <> ';' then emit (Tsymbol (String.make 1 c))
          | _ -> raise (Lex_error (Printf.sprintf "unexpected character %c" c)));
          incr i
    end
  done;
  List.rev (Teof :: !tokens)

let pp_token fmt = function
  | Tkeyword k -> Format.fprintf fmt "keyword %s" k
  | Tident s -> Format.fprintf fmt "identifier %s" s
  | Tnumber f -> Format.fprintf fmt "number %g" f
  | Tstring s -> Format.fprintf fmt "string '%s'" s
  | Tsymbol s -> Format.fprintf fmt "symbol %s" s
  | Teof -> Format.pp_print_string fmt "end of input"
