type binop = Add | Sub | Mul | Div

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Number of float
  | String of string
  | Column of { table : string option; name : string }
  | Unary_minus of expr
  | Binop of binop * expr * expr

type condition = Compare of cmpop * expr * expr

type agg_name = Count | Sum | Min | Max | Avg

type select_item =
  | Star
  | Item of { expr : expr; alias : string option }
  | Aggregate of { fn : agg_name; arg : expr option; alias : string option }
  | Rank_of_row of { alias : string }

type order_direction = Asc | Desc

type query = {
  select : select_item list;
  from : string list;
  where : condition list;
  rank_between : (int * int) option;
      (* WHERE rank() BETWEEN lo AND hi — a by-rank window over the scored
         single-table query (ranks are 1-based, rank 1 = best score). *)
  rank_dense : bool;
      (* the window is dense_rank() BETWEEN: distinct scores numbered
         consecutively, whole tie blocks kept *)
  group_by : expr list;
  order_by : (expr * order_direction) option;
  limit : int option;
  limit_param : bool;
      (* LIMIT ? — the k is a bind parameter (prepared statements); [limit]
         holds the currently bound value, [None] while unbound. *)
}

type statement =
  | Select of query
  | Insert of { table : string; values : expr list list }
  | Delete of { table : string; where : condition list }
  | Update of {
      table : string;
      assignments : (string * expr) list;
      where : condition list;
    }

let agg_name_string = function
  | Count -> "COUNT"
  | Sum -> "SUM"
  | Min -> "MIN"
  | Max -> "MAX"
  | Avg -> "AVG"

let binop_symbol = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let cmpop_symbol = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp_expr fmt = function
  | Number f -> Format.fprintf fmt "%g" f
  | String s -> Format.fprintf fmt "'%s'" s
  | Column { table = None; name } -> Format.pp_print_string fmt name
  | Column { table = Some t; name } -> Format.fprintf fmt "%s.%s" t name
  | Unary_minus e -> Format.fprintf fmt "-(%a)" pp_expr e
  | Binop (op, a, b) ->
      Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_symbol op) pp_expr b

let pp_query fmt q =
  let pp_item fmt = function
    | Star -> Format.pp_print_string fmt "*"
    | Item { expr; alias = None } -> pp_expr fmt expr
    | Item { expr; alias = Some a } -> Format.fprintf fmt "%a AS %s" pp_expr expr a
    | Aggregate { fn; arg; alias } ->
        Format.fprintf fmt "%s(%s)%s" (agg_name_string fn)
          (match arg with None -> "*" | Some e -> Format.asprintf "%a" pp_expr e)
          (match alias with None -> "" | Some a -> " AS " ^ a)
    | Rank_of_row { alias } -> Format.fprintf fmt "rank() AS %s" alias
  in
  Format.fprintf fmt "SELECT %a FROM %s"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       pp_item)
    q.select
    (String.concat ", " q.from);
  (* canonical conjunct order: the rank window (if any) prints first *)
  (match (q.rank_between, q.where) with
  | None, [] -> ()
  | rb, conds ->
      Format.fprintf fmt " WHERE ";
      let first = ref true in
      let sep () =
        if !first then first := false else Format.pp_print_string fmt " AND "
      in
      (match rb with
      | Some (lo, hi) ->
          sep ();
          Format.fprintf fmt "%s() BETWEEN %d AND %d"
            (if q.rank_dense then "dense_rank" else "rank")
            lo hi
      | None -> ());
      List.iter
        (fun (Compare (op, a, b)) ->
          sep ();
          Format.fprintf fmt "%a %s %a" pp_expr a (cmpop_symbol op) pp_expr b)
        conds);
  (match q.group_by with
  | [] -> ()
  | gs ->
      Format.fprintf fmt " GROUP BY %a"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp_expr)
        gs);
  (match q.order_by with
  | Some (e, Desc) -> Format.fprintf fmt " ORDER BY %a DESC" pp_expr e
  | Some (e, Asc) -> Format.fprintf fmt " ORDER BY %a ASC" pp_expr e
  | None -> ());
  if q.limit_param then Format.pp_print_string fmt " LIMIT ?"
  else
    match q.limit with
    | Some k -> Format.fprintf fmt " LIMIT %d" k
    | None -> ()
