(** One-call SQL interface: parse, bind, optimize, execute, project.

    {[
      let answer =
        Sql.query catalog
          "SELECT A.id, B.id FROM A, B WHERE A.key = B.key
           ORDER BY 0.3*A.score + 0.7*B.score DESC LIMIT 5"
    ]} *)

open Relalg

type answer = {
  columns : string list;
  rows : Tuple.t list;
  scores : float list;  (** Ranking score per row; empty when unranked. *)
  planned : Core.Optimizer.planned;
}

val query :
  ?config:Core.Enumerator.config ->
  ?dop:int ->
  ?pool:Rkutil.Task_pool.t ->
  Storage.Catalog.t ->
  string ->
  (answer, string) result
(** Execute a SQL string end to end. All failures (lex, parse, bind, plan)
    are returned as [Error]. With [dop > 1] the optimizer may place
    exchange operators; [pool] supplies the worker domains they schedule
    morsels on (in-process execution when absent). *)

(** {2 Prepared statements}

    The server's plan-cache building blocks: a {!template} is a parsed
    query whose [LIMIT] is a bind parameter ([LIMIT ?] or a literal k
    treated as a default binding), printed in canonical form so equivalent
    query texts share one cache key; a {!prepared} is a bound + optimized
    statement that can be executed repeatedly and rebound to a new [k]
    without re-optimizing (see {!Core.Optimizer.rebind_k}). *)

type prepared = {
  bound : Binder.bound;
  planned : Core.Optimizer.planned;
}

type template = {
  tpl_text : string;
      (** Canonical text ({!Ast.pp_query} with [LIMIT ?]) — the plan-cache
          key. Equivalent spellings (whitespace, the SQL99 WITH/rank()
          form) normalize to the same template text. *)
  tpl_ast : Ast.query;  (** [limit_param] set whenever a LIMIT was present. *)
  tpl_inline_k : int option;
      (** The literal k when the SQL spelled [LIMIT <n>] — the default
          binding for an [EXECUTE] without an explicit k. *)
}

val template_of_sql : string -> (template, string) result
(** Parse and normalize a SELECT into a cache-key template. *)

val template_of_ast : Ast.query -> template

val instantiate : template -> ?k:int -> unit -> (Ast.query, string) result
(** Bind the template's [LIMIT] parameter: an explicit [k] wins, else the
    inline literal; an unbound [LIMIT ?] without [k] is an error, as is
    passing [k] to a query with no LIMIT clause. *)

val prepare_ast :
  ?config:Core.Enumerator.config ->
  ?dop:int ->
  Storage.Catalog.t ->
  Ast.query ->
  (prepared, string) result
(** Bind and optimize an instantiated query. [dop > 1] enables exchange
    placement: the cost model charges startup plus per-worker division, so
    only drain-heavy plans go parallel (the k{^*} rule keeps early-out
    rank-join spines serial). *)

val rebind_k : prepared -> int -> prepared
(** Re-push a new [k] through the prepared statement: the plan's Top-k
    limit, the depth-propagation environment and any post-execution limit
    are updated; the plan shape is reused. The caller should check
    {!Core.Optimizer.k_in_validity} first. *)

val project_rows :
  prepared -> Relalg.Schema.t -> (Relalg.Tuple.t * float) list -> answer
(** Post-executor answer assembly — projection (with the absolute,
    possibly dense, [rank()] numbering) and per-row scores — over an
    explicit (tuple, score) stream in the plan's output [schema]. The
    shard coordinator runs this on gathered rows so scattered answers are
    cell-identical to single-node ones. Not for aggregation queries. *)

val run_prepared :
  ?interrupt:(unit -> bool) ->
  ?pool:Rkutil.Task_pool.t ->
  ?degree:int ->
  Storage.Catalog.t ->
  prepared ->
  (answer, string) result
(** Execute a prepared statement (projection, post-sort/limit and
    aggregation included). [interrupt] is checked at operator [next()]
    boundaries; when it fires, {!Core.Executor.Interrupted} escapes — the
    server maps it to a timeout error. [pool]/[degree] control exchange
    execution (see {!Core.Executor.compile}). *)

(** {2 Cursors}

    Cursor-style ranked enumeration: an {e enumerable} prepared statement
    (its plan carries the Enumerate property — see
    {!Core.Optimizer.planned.enumerable}) can be kept open between
    fetches, streaming answers in score order past the original [k]
    without re-executing. The projection — including the running [rank()]
    column — is applied with an absolute row offset, so the concatenation
    of all fetches equals a one-shot execution at a larger k. *)

type cursor

val cursor_eligible : prepared -> bool
(** The plan is Enumerate-eligible and nothing runs after the executor
    that would re-order or truncate rows (no aggregation, no post-sort). *)

val open_cursor :
  ?interrupt:(unit -> bool) ->
  ?pool:Rkutil.Task_pool.t ->
  ?degree:int ->
  Storage.Catalog.t ->
  prepared ->
  cursor
(** Compile and open the statement's stream (root Top-k stripped). Only
    call on a {!cursor_eligible} statement; the caller must
    {!cursor_close}. [interrupt] is re-read on every fetch — update the
    state it consults before each {!cursor_fetch} to give each fetch its
    own deadline. *)

val cursor_columns : cursor -> string list
val cursor_prepared : cursor -> prepared

val cursor_position : cursor -> int
(** Absolute 0-based rank of the next row the cursor will emit. *)

val cursor_fetch : cursor -> int -> Relalg.Tuple.t list * float list
(** The next (up to) [n] projected rows with their scores, in
    non-increasing score order. Fewer than [n] rows mean the enumeration
    is exhausted; later calls return [([], [])]. *)

val cursor_close : cursor -> unit

val explain : ?config:Core.Enumerator.config -> Storage.Catalog.t -> string -> (string, string) result
(** The optimizer's plan description for a SQL string, without executing. *)

val analyze : ?config:Core.Enumerator.config -> Storage.Catalog.t -> string -> (string, string) result
(** [EXPLAIN ANALYZE]: run the query under a metrics registry and render the
    annotated plan tree — per-operator observed depths (vs the depth model's
    predictions for rank joins) and actual vs estimated I/O. *)

val constant_value : Value.dtype -> Ast.expr -> Value.t
(** Evaluate one INSERT VALUES constant expression and coerce it to the
    target column type — exactly the lowering {!execute} applies, exported
    so the shard coordinator can route a row to its owning shard using the
    very tuple the mirror stores. @raise Failure on column references. *)

type exec_result =
  | Rows of answer  (** A SELECT (or WITH) query's result. *)
  | Affected of int  (** Rows inserted or deleted by a DML statement. *)

val execute :
  ?config:Core.Enumerator.config -> Storage.Catalog.t -> string -> (exec_result, string) result
(** Execute any supported statement: SELECT/WITH queries, INSERT INTO ...
    VALUES (constant expressions, coerced to the column types), and DELETE
    FROM ... WHERE (single-table predicate). DML refreshes the table's
    statistics. *)
