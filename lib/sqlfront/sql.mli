(** One-call SQL interface: parse, bind, optimize, execute, project.

    {[
      let answer =
        Sql.query catalog
          "SELECT A.id, B.id FROM A, B WHERE A.key = B.key
           ORDER BY 0.3*A.score + 0.7*B.score DESC LIMIT 5"
    ]} *)

open Relalg

type answer = {
  columns : string list;
  rows : Tuple.t list;
  scores : float list;  (** Ranking score per row; empty when unranked. *)
  planned : Core.Optimizer.planned;
}

val query :
  ?config:Core.Enumerator.config -> Storage.Catalog.t -> string -> (answer, string) result
(** Execute a SQL string end to end. All failures (lex, parse, bind, plan)
    are returned as [Error]. *)

val explain : ?config:Core.Enumerator.config -> Storage.Catalog.t -> string -> (string, string) result
(** The optimizer's plan description for a SQL string, without executing. *)

val analyze : ?config:Core.Enumerator.config -> Storage.Catalog.t -> string -> (string, string) result
(** [EXPLAIN ANALYZE]: run the query under a metrics registry and render the
    annotated plan tree — per-operator observed depths (vs the depth model's
    predictions for rank joins) and actual vs estimated I/O. *)

type exec_result =
  | Rows of answer  (** A SELECT (or WITH) query's result. *)
  | Affected of int  (** Rows inserted or deleted by a DML statement. *)

val execute :
  ?config:Core.Enumerator.config -> Storage.Catalog.t -> string -> (exec_result, string) result
(** Execute any supported statement: SELECT/WITH queries, INSERT INTO ...
    VALUES (constant expressions, coerced to the column types), and DELETE
    FROM ... WHERE (single-table predicate). DML refreshes the table's
    statistics. *)
