(** Abstract syntax of the supported SQL subset.

    The grammar covers the shape of the paper's queries Q1/Q2 in their
    ORDER BY / LIMIT formulation:

    {v
    SELECT <expr [AS name], ... | *>
    FROM table, table, ...
    WHERE col = col AND col <op> literal AND ...
    [ORDER BY <arith-expr> [DESC | ASC]]
    [LIMIT k]
    v} *)

type binop = Add | Sub | Mul | Div

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Number of float
  | String of string
  | Column of { table : string option; name : string }
  | Unary_minus of expr
  | Binop of binop * expr * expr

type condition = Compare of cmpop * expr * expr

type agg_name = Count | Sum | Min | Max | Avg

type select_item =
  | Star
  | Item of { expr : expr; alias : string option }
  | Aggregate of { fn : agg_name; arg : expr option; alias : string option }
      (** [arg = None] only for COUNT star. *)
  | Rank_of_row of { alias : string }
      (** The rank() window value of the WITH-form top-k query: the output
          row's 1-based position in the ranking. Produced only by desugaring
          the SQL99 form. *)

type order_direction = Asc | Desc

type query = {
  select : select_item list;
  from : string list;
  where : condition list;  (** Conjunction. *)
  rank_between : (int * int) option;
      (** [WHERE rank() BETWEEN lo AND hi] — a by-rank window over the
          scored single-table query. Ranks are 1-based, rank 1 = best
          (highest) score under the query's ORDER BY; ties share the
          minimum rank of their block (competition ranking) and rows with
          NaN scores are never ranked. {!pp_query} prints the rank window
          first among the WHERE conjuncts, making the canonical form
          stable for plan-cache keys. *)
  rank_dense : bool;
      (** The window is [dense_rank() BETWEEN lo AND hi]: distinct scores
          numbered consecutively (no rank gaps after ties) and the window
          keeps whole tie blocks. Only meaningful with [rank_between]. *)
  group_by : expr list;
  order_by : (expr * order_direction) option;
  limit : int option;
  limit_param : bool;
      (** [LIMIT ?] — the k is a bind parameter (prepared statements);
          [limit] holds the currently bound value, [None] while unbound.
          {!pp_query} prints a parameterised limit as [LIMIT ?], which makes
          the pretty-printed form the canonical cache-key template. *)
}

type statement =
  | Select of query
  | Insert of { table : string; values : expr list list }
      (** INSERT INTO t VALUES (...), (...), ... — constant expressions. *)
  | Delete of { table : string; where : condition list }
  | Update of {
      table : string;
      assignments : (string * expr) list;  (** column := expression. *)
      where : condition list;
    }

val agg_name_string : agg_name -> string

val pp_expr : Format.formatter -> expr -> unit

val pp_query : Format.formatter -> query -> unit
