open Relalg

type aggregation = {
  agg_group_by : (Expr.t * Schema.column) list;
  agg_specs : Exec.Aggregate.spec list;
}

type output_column =
  | Col of Expr.t
  | Rank

type bound = {
  logical : Core.Logical.t;
  projection : (output_column * string) list option;
  aggregation : aggregation option;
  post_sort : (Expr.t * [ `Asc | `Desc ]) option;
  post_limit : int option;
}

exception Bind_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bind_error s)) fmt

(* Resolve a column reference to its unique owning table. *)
let resolve_column catalog tables (table, name) =
  match table with
  | Some t ->
      if not (List.mem t tables) then fail "table %s is not in FROM" t;
      let info = Storage.Catalog.table catalog t in
      if not (Schema.mem info.Storage.Catalog.tb_schema ~relation:t name) then
        fail "column %s.%s does not exist" t name;
      (t, name)
  | None -> (
      let owners =
        List.filter
          (fun t ->
            let info = Storage.Catalog.table catalog t in
            Schema.mem info.Storage.Catalog.tb_schema ~relation:t name)
          tables
      in
      match owners with
      | [ t ] -> (t, name)
      | [] -> fail "column %s does not exist in any FROM table" name
      | owners ->
          fail "column %s is ambiguous: qualify it as one of %s" name
            (String.concat ", " (List.map (fun t -> t ^ "." ^ name) owners)))

let rec to_expr catalog tables = function
  | Ast.Number f -> Expr.cfloat f
  | Ast.String s -> Expr.Const (Value.Str s)
  | Ast.Column { table; name } ->
      let t, c = resolve_column catalog tables (table, name) in
      Expr.col ~relation:t c
  | Ast.Unary_minus e -> Expr.Neg (to_expr catalog tables e)
  | Ast.Binop (op, a, b) ->
      let ea = to_expr catalog tables a and eb = to_expr catalog tables b in
      (match op with
      | Ast.Add -> Expr.Add (ea, eb)
      | Ast.Sub -> Expr.Sub (ea, eb)
      | Ast.Mul -> Expr.Mul (ea, eb)
      | Ast.Div -> Expr.Div (ea, eb))

let cmp_of = function
  | Ast.Eq -> Expr.Eq
  | Ast.Ne -> Expr.Ne
  | Ast.Lt -> Expr.Lt
  | Ast.Le -> Expr.Le
  | Ast.Gt -> Expr.Gt
  | Ast.Ge -> Expr.Ge

(* Split WHERE conjuncts into join predicates and per-relation filters. *)
let classify_conditions catalog tables conds =
  let joins = ref [] and filters = ref [] in
  List.iter
    (fun (Ast.Compare (op, lhs, rhs)) ->
      match op, lhs, rhs with
      | Ast.Eq, Ast.Column { table = ltab; name = lname }, Ast.Column { table = rtab; name = rname } ->
          let lt, lcol = resolve_column catalog tables (ltab, lname) in
          let rt, rcol = resolve_column catalog tables (rtab, rname) in
          if String.equal lt rt then
            filters :=
              ( lt,
                Expr.Cmp (Expr.Eq, Expr.col ~relation:lt lcol, Expr.col ~relation:rt rcol) )
              :: !filters
          else joins := Core.Logical.equijoin (lt, lcol) (rt, rcol) :: !joins
      | _ ->
          let el = to_expr catalog tables lhs and er = to_expr catalog tables rhs in
          let pred = Expr.Cmp (cmp_of op, el, er) in
          let rels =
            List.sort_uniq String.compare (Expr.relations el @ Expr.relations er)
          in
          (match rels with
          | [ t ] -> filters := (t, pred) :: !filters
          | [] -> fail "constant-only predicates are not supported"
          | _ ->
              fail
                "non-equi predicates across relations are not supported: %s"
                (Expr.to_string pred)))
    conds;
  (List.rev !joins, List.rev !filters)

(* Decompose a linear ranking expression into per-relation score slices;
   [None] when the expression cannot drive the rank machinery (non-linear or
   negative weights). *)
let ranking_slices expr tables =
  match Expr.as_linear expr with
  | None -> None
  | Some lin when List.exists (fun (w, _) -> w < 0.0) lin.Expr.terms -> None
  | Some lin ->
      let slice table =
        let mine =
          List.filter
            (fun ((_, r) : float * Expr.column_ref) ->
              match r.Expr.relation with
              | Some t -> String.equal t table
              | None -> false)
            lin.Expr.terms
        in
        match mine with
        | [] -> None
        | terms ->
            Some
              (Expr.weighted_sum
                 (List.map (fun (w, r) -> (w, Expr.Col r)) terms))
      in
      Some (List.map (fun t -> (t, slice t)) tables)

let is_aggregate_query (q : Ast.query) =
  q.Ast.group_by <> []
  || List.exists
       (function
         | Ast.Aggregate _ -> true
         | Ast.Star | Ast.Item _ | Ast.Rank_of_row _ -> false)
       q.Ast.select

(* Lower a GROUP BY / aggregate select list onto the Aggregate operator. *)
let build_aggregation catalog (q : Ast.query) =
  if q.Ast.order_by <> None then
    fail "ORDER BY together with GROUP BY/aggregates is not supported";
  let group_exprs = List.map (to_expr catalog q.Ast.from) q.Ast.group_by in
  let column_of i ast_e e =
    let name =
      match ast_e with
      | Ast.Column { name; _ } -> name
      | _ -> Printf.sprintf "g%d" (i + 1)
    in
    ignore e;
    Schema.column name Value.Tfloat
  in
  let agg_group_by =
    List.mapi
      (fun i (ast_e, e) -> (e, column_of i ast_e e))
      (List.combine q.Ast.group_by group_exprs)
  in
  let agg_specs =
    List.filter_map
      (fun item ->
        match item with
        | Ast.Star -> fail "SELECT * cannot be combined with GROUP BY"
        | Ast.Item { expr; _ } ->
            (* Non-aggregate select items must be grouping expressions. *)
            let e = to_expr catalog q.Ast.from expr in
            if List.exists (fun ge -> Expr.equal ge e) group_exprs then None
            else fail "non-aggregate select item is not in GROUP BY"
        | Ast.Rank_of_row _ -> fail "rank() cannot be combined with GROUP BY"
        | Ast.Aggregate { fn; arg; alias } ->
            let name =
              match alias with
              | Some a -> a
              | None -> String.lowercase_ascii (Ast.agg_name_string fn)
            in
            let fnv =
              match fn, arg with
              | Ast.Count, _ -> Exec.Aggregate.Count
              | Ast.Sum, Some a -> Exec.Aggregate.Sum (to_expr catalog q.Ast.from a)
              | Ast.Min, Some a -> Exec.Aggregate.Min (to_expr catalog q.Ast.from a)
              | Ast.Max, Some a -> Exec.Aggregate.Max (to_expr catalog q.Ast.from a)
              | Ast.Avg, Some a -> Exec.Aggregate.Avg (to_expr catalog q.Ast.from a)
              | _, None -> fail "aggregate other than COUNT needs an argument"
            in
            Some { Exec.Aggregate.fn = fnv; name })
      q.Ast.select
  in
  { agg_group_by; agg_specs }

let bind catalog (q : Ast.query) =
  if q.Ast.from = [] then fail "FROM list is empty";
  List.iter
    (fun t ->
      match Storage.Catalog.find_table catalog t with
      | Some _ -> ()
      | None -> fail "unknown table %s" t)
    q.Ast.from;
  let dup = Hashtbl.create 4 in
  List.iter
    (fun t ->
      if Hashtbl.mem dup t then fail "table %s listed twice in FROM (aliases are not supported)" t;
      Hashtbl.add dup t ())
    q.Ast.from;
  if q.Ast.limit_param && q.Ast.limit = None then
    fail "LIMIT ? is unbound: bind a k value before executing";
  let joins, filters = classify_conditions catalog q.Ast.from q.Ast.where in
  let filter_for table =
    match List.filter_map (fun (t, p) -> if String.equal t table then Some p else None) filters with
    | [] -> None
    | [ p ] -> Some p
    | p :: rest -> Some (List.fold_left (fun acc e -> Expr.And (acc, e)) p rest)
  in
  let aggregation =
    if is_aggregate_query q then Some (build_aggregation catalog q) else None
  in
  (* rank() BETWEEN: a by-rank window over a scored single-table query.
     Not a top-k query — it carries no [k] (the plan has no Top_k root);
     the window lives in [Logical.rank_range] and the ORDER BY expression
     becomes the relation's score. *)
  match q.Ast.rank_between with
  | Some (lo, hi) ->
      if aggregation <> None then
        fail "rank() BETWEEN cannot be combined with GROUP BY/aggregates";
      let table =
        match q.Ast.from with
        | [ t ] -> t
        | _ -> fail "rank() BETWEEN requires a single-table FROM"
      in
      let score =
        match q.Ast.order_by with
        | Some (e, Ast.Desc) -> to_expr catalog q.Ast.from e
        | Some (_, Ast.Asc) ->
            fail "rank() BETWEEN ranks by ORDER BY ... DESC (rank 1 = best)"
        | None -> fail "rank() BETWEEN requires ORDER BY <score> DESC"
      in
      let relations =
        [ Core.Logical.base ?filter:(filter_for table) ~score ~weight:1.0 table ]
      in
      let logical =
        try
          Core.Logical.make ~relations ~joins:[]
            ~rank_range:(lo, hi) ~rank_dense:q.Ast.rank_dense ()
        with Invalid_argument msg -> fail "%s" msg
      in
      let projection =
        if List.exists (fun i -> i = Ast.Star) q.Ast.select then None
        else
          Some
            (List.mapi
               (fun i item ->
                 match item with
                 | Ast.Star | Ast.Aggregate _ -> assert false
                 | Ast.Rank_of_row { alias } -> (Rank, alias)
                 | Ast.Item { expr; alias } ->
                     let e = to_expr catalog q.Ast.from expr in
                     let name =
                       match alias, expr with
                       | Some a, _ -> a
                       | None, Ast.Column { name; _ } -> name
                       | None, _ -> Printf.sprintf "col%d" (i + 1)
                     in
                     (Col e, name))
               q.Ast.select)
      in
      {
        logical;
        projection;
        aggregation = None;
        post_sort = None;
        post_limit = q.Ast.limit;
      }
  | None ->
  (* Ranking: ORDER BY ... DESC over a non-negative weighted sum drives the
     rank-aware machinery; anything else becomes a post-execution sort. *)
  let unranked = List.map (fun t -> (t, None)) q.Ast.from in
  let ranked_scores, k, post_sort =
    match (if aggregation = None then q.Ast.order_by else None) with
    | None -> (unranked, None, None)
    | Some (e, dir) -> (
        let expr = to_expr catalog q.Ast.from e in
        match dir with
        | Ast.Desc -> (
            match ranking_slices expr q.Ast.from with
            | Some slices ->
                (slices, Some (Option.value ~default:max_int q.Ast.limit), None)
            | None -> (unranked, None, Some (expr, `Desc)))
        | Ast.Asc -> (unranked, None, Some (expr, `Asc)))
  in
  let relations =
    List.map
      (fun t ->
        let score = List.assoc t ranked_scores in
        match score with
        | Some s -> Core.Logical.base ?filter:(filter_for t) ~score:s ~weight:1.0 t
        | None -> Core.Logical.base ?filter:(filter_for t) t)
      q.Ast.from
  in
  let logical =
    try Core.Logical.make ~relations ~joins ?k ()
    with Invalid_argument msg -> fail "%s" msg
  in
  let projection =
    if aggregation <> None then None
    else if List.exists (fun i -> i = Ast.Star) q.Ast.select then None
    else
      Some
        (List.mapi
           (fun i item ->
             match item with
             | Ast.Star | Ast.Aggregate _ -> assert false
             | Ast.Rank_of_row { alias } -> (Rank, alias)
             | Ast.Item { expr; alias } ->
                 let e = to_expr catalog q.Ast.from expr in
                 let name =
                   match alias, expr with
                   | Some a, _ -> a
                   | None, Ast.Column { name; _ } -> name
                   | None, _ -> Printf.sprintf "col%d" (i + 1)
                 in
                 (Col e, name))
           q.Ast.select)
  in
  let post_limit = if k = None then q.Ast.limit else None in
  { logical; projection; aggregation; post_sort; post_limit }

let bind_single_table_expr catalog table e = to_expr catalog [ table ] e

let bind_result catalog q =
  match bind catalog q with
  | b -> Ok b
  | exception Bind_error msg -> Error ("bind error: " ^ msg)
  | exception Not_found -> Error "bind error: unknown table"
