open Relalg

type answer = {
  columns : string list;
  rows : Tuple.t list;
  scores : float list;
  planned : Core.Optimizer.planned;
}

let ( let* ) = Result.bind

type prepared = {
  bound : Binder.bound;
  planned : Core.Optimizer.planned;
}

type template = {
  tpl_text : string;
  tpl_ast : Ast.query;
  tpl_inline_k : int option;
}

let template_of_ast (ast : Ast.query) =
  let has_limit = ast.Ast.limit_param || ast.Ast.limit <> None in
  let tpl_ast =
    if has_limit then { ast with Ast.limit = None; limit_param = true }
    else ast
  in
  {
    tpl_text = Format.asprintf "%a" Ast.pp_query tpl_ast;
    tpl_ast;
    tpl_inline_k = (if ast.Ast.limit_param then None else ast.Ast.limit);
  }

let template_of_sql text =
  let* ast = Parser.parse_result text in
  Ok (template_of_ast ast)

let instantiate tpl ?k () =
  if not tpl.tpl_ast.Ast.limit_param then
    match k with
    | None -> Ok tpl.tpl_ast
    | Some _ -> Error "bind error: query has no LIMIT to parameterize"
  else
    match (match k with Some _ -> k | None -> tpl.tpl_inline_k) with
    | Some k when k >= 0 ->
        Ok { tpl.tpl_ast with Ast.limit = Some k; limit_param = false }
    | Some k -> Error (Printf.sprintf "bind error: negative k %d" k)
    | None -> Error "bind error: LIMIT ? is unbound: supply k"

let prepare_ast ?config ?dop catalog ast =
  let* bound = Binder.bind_result catalog ast in
  let logical = bound.Binder.logical in
  let env =
    match dop with
    | Some d when d > 1 ->
        Some
          (Core.Cost_model.default_env
             ~k_min:(Option.value ~default:1 logical.Core.Logical.k)
             ~dop:d catalog logical)
    | _ -> None
  in
  match Core.Optimizer.optimize ?config ?env catalog logical with
  | planned -> Ok { bound; planned }
  | exception Failure msg -> Error ("plan error: " ^ msg)

let rebind_k p k =
  {
    planned = Core.Optimizer.rebind_k p.planned k;
    bound =
      {
        p.bound with
        Binder.post_limit =
          Option.map (fun _ -> k) p.bound.Binder.post_limit;
      };
  }

let plan_of ?config ?dop catalog text =
  let* ast = Parser.parse_result text in
  let* p = prepare_ast ?config ?dop catalog ast in
  Ok (p.bound, p.planned)

(* Post-executor answer assembly: projection (including the absolute
   rank() numbering, dense on dense windows) and the per-row scores. The
   shard coordinator calls this on gathered rows so a scattered execution
   is cell-identical to a single-node one; [schema] is the executed
   plan's output schema, [result_rows] its (tuple, score) stream after
   any post-sort/limit. Aggregation answers never come through here. *)
let project_rows ({ bound; planned } : prepared) schema result_rows =
  let rank_range =
    planned.Core.Optimizer.query.Core.Logical.rank_range
  in
  let columns, rows =
    match bound.Binder.projection with
    | None ->
        ( List.map Schema.column_name (Schema.columns schema),
          List.map fst result_rows )
    | Some targets ->
        (* rank() positions are absolute: a window starting at rank [lo]
           numbers its first row [lo], not 1. On a dense window the number
           advances only when the score changes, so tie blocks share it. *)
        let rank_base =
          match rank_range with Some (lo, _) -> lo - 1 | None -> 0
        in
        let rank_at =
          if planned.Core.Optimizer.query.Core.Logical.rank_dense then (
            let scores = Array.of_list (List.map snd result_rows) in
            let nums = Array.make (max 1 (Array.length scores)) rank_base in
            Array.iteri
              (fun i s ->
                if i > 0 then
                  nums.(i) <-
                    (if Float.compare scores.(i - 1) s = 0 then nums.(i - 1)
                     else nums.(i - 1) + 1))
              scores;
            fun i -> nums.(i))
          else fun i -> rank_base + i
        in
        let fns =
          List.map
            (fun (oc, _) ->
              match oc with
              | Binder.Col e ->
                  let f = Expr.compile schema e in
                  fun _i tu -> f tu
              | Binder.Rank -> fun i _tu -> Value.Int (i + 1))
            targets
        in
        ( List.map snd targets,
          List.mapi
            (fun i (tu, _) ->
              Array.of_list (List.map (fun f -> f (rank_at i) tu) fns))
            result_rows )
  in
  {
    columns;
    rows;
    scores =
      (if
         Core.Logical.is_ranking planned.Core.Optimizer.query
         || Option.is_some bound.Binder.post_sort
         || Option.is_some rank_range
       then List.map snd result_rows
       else []);
    planned;
  }

let run_prepared ?interrupt ?pool ?degree catalog { bound; planned } =
  let result = Core.Optimizer.execute ?interrupt ?pool ?degree catalog planned in
  match bound.Binder.aggregation with
  | Some agg ->
      let schema = result.Core.Executor.schema in
      let input =
        Exec.Operator.of_list schema (List.map fst result.Core.Executor.rows)
      in
      let out =
        Exec.Aggregate.hash_group_by ~group_by:agg.Binder.agg_group_by
          ~aggregates:agg.Binder.agg_specs input
      in
      let rows = Exec.Operator.to_list out in
      let rows =
        match bound.Binder.post_limit with
        | None -> rows
        | Some k -> List.filteri (fun i _ -> i < k) rows
      in
      Ok
        {
          columns =
            List.map Schema.column_name (Schema.columns out.Exec.Operator.schema);
          rows;
          scores = [];
          planned;
        }
  | None ->
  let schema = result.Core.Executor.schema in
  let sorted_rows =
    match bound.Binder.post_sort with
    | None -> result.Core.Executor.rows
    | Some (e, dir) ->
        let f = Expr.compile_float schema e in
        let keyed = List.map (fun (tu, _) -> (tu, f tu)) result.Core.Executor.rows in
        List.stable_sort
          (fun (_, a) (_, b) ->
            match dir with `Asc -> Float.compare a b | `Desc -> Float.compare b a)
          keyed
  in
  let result_rows =
    match bound.Binder.post_limit with
    | None -> sorted_rows
    | Some k -> List.filteri (fun i _ -> i < k) sorted_rows
  in
  Ok (project_rows { bound; planned } schema result_rows)

(* -------------------------------------------------------------------- *)
(* Cursors: keep an enumerable statement's plan open between fetches.

   A statement qualifies when its plan carries the Enumerate property
   (Top-k over a resumable stream) and nothing downstream of the executor
   re-orders or truncates rows: no aggregation, no post-sort. The
   projection (including the running rank() index) is applied per fetch
   with an absolute row offset so EXECUTE + repeated FETCH NEXT produce
   exactly the rows a one-shot execution at a larger k would. *)

type cursor = {
  cur_prepared : prepared;
  cur_exec : Core.Executor.cursor;
  cur_columns : string list;
  cur_project : (int -> Tuple.t -> Value.t) list option;
  mutable cur_pos : int;  (* absolute rank of the next row, 0-based *)
}

let cursor_eligible { bound; planned } =
  planned.Core.Optimizer.enumerable
  && Option.is_none bound.Binder.aggregation
  && Option.is_none bound.Binder.post_sort

let open_cursor ?interrupt ?pool ?degree catalog ({ bound; planned } as p) =
  let cur_exec =
    Core.Executor.open_cursor ?interrupt ?pool ?degree catalog
      planned.Core.Optimizer.plan
  in
  let schema = Core.Executor.cursor_schema cur_exec in
  let cur_columns, cur_project =
    match bound.Binder.projection with
    | None ->
        (List.map Schema.column_name (Schema.columns schema), None)
    | Some targets ->
        let fns =
          List.map
            (fun (oc, _) ->
              match oc with
              | Binder.Col e ->
                  let f = Expr.compile schema e in
                  fun _i tu -> f tu
              | Binder.Rank -> fun i _tu -> Value.Int (i + 1))
            targets
        in
        (List.map snd targets, Some fns)
  in
  { cur_prepared = p; cur_exec; cur_columns; cur_project; cur_pos = 0 }

let cursor_columns cur = cur.cur_columns
let cursor_prepared cur = cur.cur_prepared
let cursor_position cur = cur.cur_pos

let cursor_fetch cur n =
  let raw = Core.Executor.cursor_fetch cur.cur_exec n in
  let rows =
    match cur.cur_project with
    | None -> List.map fst raw
    | Some fns ->
        List.mapi
          (fun i (tu, _) ->
            Array.of_list (List.map (fun f -> f (cur.cur_pos + i) tu) fns))
          raw
  in
  cur.cur_pos <- cur.cur_pos + List.length raw;
  (rows, List.map snd raw)

let cursor_close cur = Core.Executor.cursor_close cur.cur_exec

let query ?config ?dop ?pool catalog text =
  let* bound, planned = plan_of ?config ?dop catalog text in
  run_prepared ?pool catalog { bound; planned }

type exec_result =
  | Rows of answer
  | Affected of int

let empty_schema = Schema.of_columns []

(* Lower a constant Ast expression (no column references allowed). *)
let rec constant_ast_expr = function
  | Ast.Number f -> Expr.cfloat f
  | Ast.String s -> Expr.Const (Value.Str s)
  | Ast.Column _ -> failwith "INSERT values must be constants"
  | Ast.Unary_minus e -> Expr.Neg (constant_ast_expr e)
  | Ast.Binop (op, a, b) -> (
      let ea = constant_ast_expr a and eb = constant_ast_expr b in
      match op with
      | Ast.Add -> Expr.Add (ea, eb)
      | Ast.Sub -> Expr.Sub (ea, eb)
      | Ast.Mul -> Expr.Mul (ea, eb)
      | Ast.Div -> Expr.Div (ea, eb))

(* Evaluate a constant expression of an INSERT row and coerce it to the
   target column's type. *)
let constant_value dtype e =
  let v = Expr.eval empty_schema (constant_ast_expr e) [||] in
  match dtype, v with
  | Value.Tint, Value.Float f when Float.is_integer f -> Value.Int (int_of_float f)
  | Value.Tfloat, Value.Int i -> Value.Float (float_of_int i)
  | _, v -> v

let run_insert catalog table rows =
  match Storage.Catalog.find_table catalog table with
  | None -> Error (Printf.sprintf "unknown table %s" table)
  | Some info -> (
      let cols = Schema.columns info.Storage.Catalog.tb_schema in
      let arity = List.length cols in
      match
        List.map
          (fun row ->
            if List.length row <> arity then
              failwith
                (Printf.sprintf "expected %d values, got %d" arity (List.length row));
            Array.of_list
              (List.map2
                 (fun (c : Schema.column) e -> constant_value c.Schema.dtype e)
                 cols row))
          rows
      with
      | tuples ->
          Storage.Catalog.insert_into catalog ~table tuples;
          ignore (Storage.Catalog.analyze catalog table);
          Ok (Affected (List.length tuples))
      | exception Failure msg -> Error ("insert error: " ^ msg)
      | exception Invalid_argument msg -> Error ("insert error: " ^ msg))

(* Resolve a DELETE/UPDATE predicate over the single target table. *)
let single_table_predicate catalog table where =
  let ast_query =
    {
      Ast.select = [ Ast.Star ];
      from = [ table ];
      where;
      rank_between = None;
      rank_dense = false;
      group_by = [];
      order_by = None;
      limit = None;
      limit_param = false;
    }
  in
  match Binder.bind_result catalog ast_query with
  | Error e -> Error e
  | Ok bound ->
      let rel = Core.Logical.find_relation bound.Binder.logical table in
      Ok
        (Option.value ~default:(Expr.Const (Value.Bool true))
           rel.Core.Logical.filter)

let run_delete catalog table where =
  match Storage.Catalog.find_table catalog table with
  | None -> Error (Printf.sprintf "unknown table %s" table)
  | Some _ -> (
      match single_table_predicate catalog table where with
      | Error e -> Error e
      | Ok pred -> (
          match Storage.Catalog.delete_from catalog ~table pred with
          | n ->
              ignore (Storage.Catalog.analyze catalog table);
              Ok (Affected n)
          | exception Invalid_argument msg -> Error ("delete error: " ^ msg)))

let run_update catalog table assignments where =
  match Storage.Catalog.find_table catalog table with
  | None -> Error (Printf.sprintf "unknown table %s" table)
  | Some info -> (
      match single_table_predicate catalog table where with
      | Error e -> Error e
      | Ok pred -> (
          let schema = info.Storage.Catalog.tb_schema in
          match
            List.map
              (fun (column, ast_e) ->
                let e = Binder.bind_single_table_expr catalog table ast_e in
                let dtype =
                  match Schema.index_of schema ~relation:table column with
                  | Some i -> (Schema.nth schema i).Schema.dtype
                  | None -> failwith ("unknown column " ^ column)
                in
                let f = Expr.compile schema e in
                ( column,
                  fun tu ->
                    match dtype, f tu with
                    | Value.Tint, Value.Float x when Float.is_integer x ->
                        Value.Int (int_of_float x)
                    | Value.Tfloat, Value.Int i -> Value.Float (float_of_int i)
                    | _, v -> v ))
              assignments
          with
          | set -> (
              match Storage.Catalog.update_where catalog ~table pred ~set with
              | n ->
                  ignore (Storage.Catalog.analyze catalog table);
                  Ok (Affected n)
              | exception Invalid_argument msg -> Error ("update error: " ^ msg))
          | exception Failure msg -> Error ("update error: " ^ msg)
          | exception Binder.Bind_error msg -> Error ("update error: " ^ msg)))

let execute ?config catalog text =
  let* stmt = Parser.parse_statement_result text in
  match stmt with
  | Ast.Select _ -> (
      match query ?config catalog text with
      | Ok ans -> Ok (Rows ans)
      | Error e -> Error e)
  | Ast.Insert { table; values } -> run_insert catalog table values
  | Ast.Delete { table; where } -> run_delete catalog table where
  | Ast.Update { table; assignments; where } ->
      run_update catalog table assignments where

let explain ?config catalog text =
  let* _, planned = plan_of ?config catalog text in
  Ok (Core.Optimizer.explain planned)

let analyze ?config catalog text =
  let* _, planned = plan_of ?config catalog text in
  match Core.Optimizer.explain_analyze catalog planned with
  | report, _result -> Ok report
  | exception Failure msg -> Error ("analyze error: " ^ msg)
