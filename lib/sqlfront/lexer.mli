(** Tokeniser for the SQL subset. *)

type token =
  | Tkeyword of string  (** Upper-cased: SELECT, FROM, WHERE, ... *)
  | Tident of string
  | Tnumber of float
  | Tstring of string
  | Tsymbol of string  (** One of ( ) , . + - * / = <> < <= > >= ? *)
  | Teof

exception Lex_error of string

val tokenize : string -> token list
(** @raise Lex_error on malformed input. *)

val pp_token : Format.formatter -> token -> unit
