exception Parse_error of string

type state = {
  mutable tokens : Lexer.token list;
}

let peek st = match st.tokens with [] -> Lexer.Teof | t :: _ -> t

let advance st =
  match st.tokens with
  | [] -> ()
  | _ :: rest -> st.tokens <- rest

let fail expected st =
  raise
    (Parse_error
       (Format.asprintf "expected %s, found %a" expected Lexer.pp_token (peek st)))

let eat_keyword st kw =
  match peek st with
  | Lexer.Tkeyword k when String.equal k kw -> advance st
  | _ -> fail ("keyword " ^ kw) st

let eat_symbol st sym =
  match peek st with
  | Lexer.Tsymbol s when String.equal s sym -> advance st
  | _ -> fail ("symbol " ^ sym) st

let ident st =
  match peek st with
  | Lexer.Tident name ->
      advance st;
      name
  | _ -> fail "identifier" st

(* expr := term (('+' | '-') term)*
   term := factor (('*' | '/') factor)*
   factor := number | string | column | '-' factor | '(' expr ')' *)
let rec parse_expr st =
  let lhs = parse_term st in
  let rec loop acc =
    match peek st with
    | Lexer.Tsymbol "+" ->
        advance st;
        loop (Ast.Binop (Ast.Add, acc, parse_term st))
    | Lexer.Tsymbol "-" ->
        advance st;
        loop (Ast.Binop (Ast.Sub, acc, parse_term st))
    | _ -> acc
  in
  loop lhs

and parse_term st =
  let lhs = parse_factor st in
  let rec loop acc =
    match peek st with
    | Lexer.Tsymbol "*" ->
        advance st;
        loop (Ast.Binop (Ast.Mul, acc, parse_factor st))
    | Lexer.Tsymbol "/" ->
        advance st;
        loop (Ast.Binop (Ast.Div, acc, parse_factor st))
    | _ -> acc
  in
  loop lhs

and parse_factor st =
  match peek st with
  | Lexer.Tnumber f ->
      advance st;
      Ast.Number f
  | Lexer.Tstring s ->
      advance st;
      Ast.String s
  | Lexer.Tsymbol "-" ->
      advance st;
      Ast.Unary_minus (parse_factor st)
  | Lexer.Tsymbol "(" ->
      advance st;
      let e = parse_expr st in
      eat_symbol st ")";
      e
  | Lexer.Tident first -> (
      advance st;
      match peek st with
      | Lexer.Tsymbol "." ->
          advance st;
          let name = ident st in
          Ast.Column { table = Some first; name }
      | _ -> Ast.Column { table = None; name = first })
  | _ -> fail "expression" st

let parse_cmpop st =
  match peek st with
  | Lexer.Tsymbol "=" ->
      advance st;
      Ast.Eq
  | Lexer.Tsymbol "<>" ->
      advance st;
      Ast.Ne
  | Lexer.Tsymbol "<" ->
      advance st;
      Ast.Lt
  | Lexer.Tsymbol "<=" ->
      advance st;
      Ast.Le
  | Lexer.Tsymbol ">" ->
      advance st;
      Ast.Gt
  | Lexer.Tsymbol ">=" ->
      advance st;
      Ast.Ge
  | _ -> fail "comparison operator" st

let parse_condition st =
  let lhs = parse_expr st in
  let op = parse_cmpop st in
  let rhs = parse_expr st in
  Ast.Compare (op, lhs, rhs)

let agg_of_name name =
  match String.uppercase_ascii name with
  | "COUNT" -> Some Ast.Count
  | "SUM" -> Some Ast.Sum
  | "MIN" -> Some Ast.Min
  | "MAX" -> Some Ast.Max
  | "AVG" -> Some Ast.Avg
  | _ -> None

let parse_alias st =
  match peek st with
  | Lexer.Tkeyword "AS" ->
      advance st;
      Some (ident st)
  | _ -> None

let parse_select_item st =
  match peek st with
  | Lexer.Tsymbol "*" ->
      advance st;
      Ast.Star
  | Lexer.Tident name when agg_of_name name <> None && (
      match st.tokens with
      | _ :: Lexer.Tsymbol "(" :: _ -> true
      | _ -> false) ->
      let fn = Option.get (agg_of_name name) in
      advance st;
      eat_symbol st "(";
      let arg =
        match peek st with
        | Lexer.Tsymbol "*" ->
            advance st;
            None
        | _ -> Some (parse_expr st)
      in
      eat_symbol st ")";
      (match fn, arg with
      | Ast.Count, _ -> ()
      | _, None -> fail "an argument expression (only COUNT accepts *)" st
      | _, Some _ -> ());
      Ast.Aggregate { fn; arg; alias = parse_alias st }
  | Lexer.Tident r
    when String.lowercase_ascii r = "rank"
         && (match st.tokens with
            | _ :: Lexer.Tsymbol "(" :: Lexer.Tsymbol ")" :: rest -> (
                (* Bare rank() projects the output row's 1-based rank; the
                   OVER form belongs to the WITH desugaring, not here. *)
                match rest with Lexer.Tkeyword "OVER" :: _ -> false | _ -> true)
            | _ -> false) ->
      advance st;
      eat_symbol st "(";
      eat_symbol st ")";
      let alias = Option.value ~default:"rank" (parse_alias st) in
      Ast.Rank_of_row { alias }
  | _ -> (
      let expr = parse_expr st in
      match parse_alias st with
      | Some a -> Ast.Item { expr; alias = Some a }
      | None -> Ast.Item { expr; alias = None })

let rec comma_separated st parse_one =
  let first = parse_one st in
  match peek st with
  | Lexer.Tsymbol "," ->
      advance st;
      first :: comma_separated st parse_one
  | _ -> [ first ]

(* The inner select list of the WITH form: normal items plus exactly one
   rank() OVER (ORDER BY ...) [AS alias] item. *)
let parse_inner_items st =
  let items = ref [] in
  let rank = ref None in
  let parse_one () =
    match st.tokens with
    | Lexer.Tident r :: Lexer.Tsymbol "(" :: Lexer.Tsymbol ")" :: _
      when String.lowercase_ascii r = "rank" ->
        advance st;
        eat_symbol st "(";
        eat_symbol st ")";
        eat_keyword st "OVER";
        eat_symbol st "(";
        eat_keyword st "ORDER";
        eat_keyword st "BY";
        let e = parse_expr st in
        let dir =
          match peek st with
          | Lexer.Tkeyword "DESC" ->
              advance st;
              Ast.Desc
          | Lexer.Tkeyword "ASC" ->
              advance st;
              Ast.Asc
          | _ -> Ast.Desc
        in
        eat_symbol st ")";
        let alias = Option.value ~default:"rank" (parse_alias st) in
        if !rank <> None then fail "a single rank() item" st;
        rank := Some (e, dir, alias)
    | _ -> items := parse_select_item st :: !items
  in
  parse_one ();
  let rec more () =
    match peek st with
    | Lexer.Tsymbol "," ->
        advance st;
        parse_one ();
        more ()
    | _ -> ()
  in
  more ();
  match !rank with
  | None -> fail "a rank() OVER (ORDER BY ...) item in the WITH subquery" st
  | Some r -> (List.rev !items, r)

(* WITH cte AS (SELECT ... rank() OVER (...) AS r FROM ... [WHERE ...])
   SELECT cols FROM cte WHERE r <= k  — desugared to a plain top-k query. *)
let parse_with_query st =
  eat_keyword st "WITH";
  let cte = ident st in
  eat_keyword st "AS";
  eat_symbol st "(";
  eat_keyword st "SELECT";
  let inner_items, (rank_expr, rank_dir, rank_alias) = parse_inner_items st in
  eat_keyword st "FROM";
  let from = comma_separated st ident in
  let where =
    match peek st with
    | Lexer.Tkeyword "WHERE" ->
        advance st;
        let rec conjuncts () =
          let c = parse_condition st in
          match peek st with
          | Lexer.Tkeyword "AND" ->
              advance st;
              c :: conjuncts ()
          | _ -> [ c ]
        in
        conjuncts ()
    | _ -> []
  in
  eat_symbol st ")";
  eat_keyword st "SELECT";
  let outer_items = comma_separated st parse_select_item in
  eat_keyword st "FROM";
  let outer_from = ident st in
  if not (String.equal outer_from cte) then
    fail (Printf.sprintf "the CTE name %s in the outer FROM" cte) st;
  eat_keyword st "WHERE";
  let k =
    match st.tokens with
    | Lexer.Tident r :: Lexer.Tsymbol "<=" :: Lexer.Tnumber f :: rest
      when String.equal r rank_alias && Float.is_integer f && f >= 0.0 ->
        st.tokens <- rest;
        int_of_float f
    | Lexer.Tident r :: Lexer.Tsymbol "<" :: Lexer.Tnumber f :: rest
      when String.equal r rank_alias && Float.is_integer f && f >= 1.0 ->
        st.tokens <- rest;
        int_of_float f - 1
    | _ -> fail (Printf.sprintf "%s <= k in the outer WHERE" rank_alias) st
  in
  (match peek st with
  | Lexer.Teof -> ()
  | _ -> fail "end of query" st);
  (* Map the outer select list back onto the inner expressions. *)
  let lookup_alias name =
    List.find_map
      (function
        | Ast.Item { expr; alias = Some a } when String.equal a name -> Some expr
        | Ast.Item { expr = Ast.Column { name = n; _ } as expr; alias = None }
          when String.equal n name ->
            Some expr
        | _ -> None)
      inner_items
  in
  let select =
    List.concat_map
      (function
        | Ast.Star -> inner_items @ [ Ast.Rank_of_row { alias = rank_alias } ]
        | Ast.Item { expr = Ast.Column { table = None; name }; alias }
          when String.equal name rank_alias ->
            [ Ast.Rank_of_row { alias = Option.value ~default:rank_alias alias } ]
        | Ast.Item { expr = Ast.Column { table = None; name }; alias } -> (
            match lookup_alias name with
            | Some e -> [ Ast.Item { expr = e; alias = Some (Option.value ~default:name alias) } ]
            | None -> fail (Printf.sprintf "an output column of %s (got %s)" cte name) st)
        | _ -> fail "outer select items must be CTE column names" st)
      outer_items
  in
  {
    Ast.select;
    from;
    where;
    rank_between = None;
    rank_dense = false;
    group_by = [];
    order_by = Some (rank_expr, rank_dir);
    limit = Some k;
    limit_param = false;
  }

let parse_plain_query st =
  eat_keyword st "SELECT";
  let select = comma_separated st parse_select_item in
  eat_keyword st "FROM";
  let from = comma_separated st ident in
  let rank_between = ref None in
  let rank_dense = ref false in
  (* rank() BETWEEN i AND j (or dense_rank() BETWEEN i AND j) — a by-rank
     window conjunct; the ranks must be positive integer literals with
     i <= j *)
  let parse_rank_between ~dense =
    advance st;
    (* rank / dense_rank *)
    eat_symbol st "(";
    eat_symbol st ")";
    eat_keyword st "BETWEEN";
    let bound what =
      match peek st with
      | Lexer.Tnumber f when Float.is_integer f && f >= 1.0 ->
          advance st;
          int_of_float f
      | _ -> fail (what ^ " rank (positive integer)") st
    in
    let lo = bound "lower" in
    eat_keyword st "AND";
    let hi = bound "upper" in
    if hi < lo then fail "a non-empty rank window (lo <= hi)" st;
    if !rank_between <> None then fail "at most one rank() window" st;
    rank_between := Some (lo, hi);
    rank_dense := dense
  in
  let where =
    match peek st with
    | Lexer.Tkeyword "WHERE" ->
        advance st;
        let rec conjuncts () =
          match st.tokens with
          | Lexer.Tident r :: Lexer.Tsymbol "(" :: Lexer.Tsymbol ")" :: _
            when String.equal (String.lowercase_ascii r) "rank"
                 || String.equal (String.lowercase_ascii r) "dense_rank" -> (
              parse_rank_between
                ~dense:(String.equal (String.lowercase_ascii r) "dense_rank");
              match peek st with
              | Lexer.Tkeyword "AND" ->
                  advance st;
                  conjuncts ()
              | _ -> [])
          | _ -> (
              let c = parse_condition st in
              match peek st with
              | Lexer.Tkeyword "AND" ->
                  advance st;
                  c :: conjuncts ()
              | _ -> [ c ])
        in
        conjuncts ()
    | _ -> []
  in
  let group_by =
    match peek st with
    | Lexer.Tkeyword "GROUP" ->
        advance st;
        eat_keyword st "BY";
        comma_separated st parse_expr
    | _ -> []
  in
  let order_by =
    match peek st with
    | Lexer.Tkeyword "ORDER" ->
        advance st;
        eat_keyword st "BY";
        let e = parse_expr st in
        let dir =
          match peek st with
          | Lexer.Tkeyword "DESC" ->
              advance st;
              Ast.Desc
          | Lexer.Tkeyword "ASC" ->
              advance st;
              Ast.Asc
          | _ -> Ast.Desc
        in
        Some (e, dir)
    | _ -> None
  in
  let limit, limit_param =
    match peek st with
    | Lexer.Tkeyword "LIMIT" -> (
        advance st;
        match peek st with
        | Lexer.Tnumber f when Float.is_integer f && f >= 0.0 ->
            advance st;
            (Some (int_of_float f), false)
        | Lexer.Tsymbol "?" ->
            advance st;
            (None, true)
        | _ -> fail "non-negative integer or ?" st)
    | _ -> (None, false)
  in
  (match peek st with
  | Lexer.Teof -> ()
  | _ -> fail "end of query" st);
  {
    Ast.select;
    from;
    where;
    rank_between = !rank_between;
    rank_dense = !rank_dense;
    group_by;
    order_by;
    limit;
    limit_param;
  }

let parse_query st =
  match peek st with
  | Lexer.Tkeyword "WITH" -> parse_with_query st
  | _ -> parse_plain_query st

let parse_insert st =
  eat_keyword st "INSERT";
  eat_keyword st "INTO";
  let table = ident st in
  eat_keyword st "VALUES";
  let parse_row st =
    eat_symbol st "(";
    let values = comma_separated st parse_expr in
    eat_symbol st ")";
    values
  in
  let rows = comma_separated st parse_row in
  (match peek st with
  | Lexer.Teof -> ()
  | _ -> fail "end of statement" st);
  Ast.Insert { table; values = rows }

let parse_delete st =
  eat_keyword st "DELETE";
  eat_keyword st "FROM";
  let table = ident st in
  let where =
    match peek st with
    | Lexer.Tkeyword "WHERE" ->
        advance st;
        let rec conjuncts () =
          let c = parse_condition st in
          match peek st with
          | Lexer.Tkeyword "AND" ->
              advance st;
              c :: conjuncts ()
          | _ -> [ c ]
        in
        conjuncts ()
    | _ -> []
  in
  (match peek st with
  | Lexer.Teof -> ()
  | _ -> fail "end of statement" st);
  Ast.Delete { table; where }

let parse_where_opt st =
  match peek st with
  | Lexer.Tkeyword "WHERE" ->
      advance st;
      let rec conjuncts () =
        let c = parse_condition st in
        match peek st with
        | Lexer.Tkeyword "AND" ->
            advance st;
            c :: conjuncts ()
        | _ -> [ c ]
      in
      conjuncts ()
  | _ -> []

let parse_update st =
  eat_keyword st "UPDATE";
  let table = ident st in
  eat_keyword st "SET";
  let parse_assignment st =
    let column = ident st in
    eat_symbol st "=";
    let e = parse_expr st in
    (column, e)
  in
  let assignments = comma_separated st parse_assignment in
  let where = parse_where_opt st in
  (match peek st with
  | Lexer.Teof -> ()
  | _ -> fail "end of statement" st);
  Ast.Update { table; assignments; where }

let parse_statement_tokens st =
  match peek st with
  | Lexer.Tkeyword "INSERT" -> parse_insert st
  | Lexer.Tkeyword "DELETE" -> parse_delete st
  | Lexer.Tkeyword "UPDATE" -> parse_update st
  | _ -> Ast.Select (parse_query st)

let parse input =
  let st = { tokens = Lexer.tokenize input } in
  parse_query st

let parse_statement input =
  let st = { tokens = Lexer.tokenize input } in
  parse_statement_tokens st

let parse_statement_result input =
  match parse_statement input with
  | s -> Ok s
  | exception Parse_error msg -> Error ("parse error: " ^ msg)
  | exception Lexer.Lex_error msg -> Error ("lex error: " ^ msg)

let parse_result input =
  match parse input with
  | q -> Ok q
  | exception Parse_error msg -> Error ("parse error: " ^ msg)
  | exception Lexer.Lex_error msg -> Error ("lex error: " ^ msg)
