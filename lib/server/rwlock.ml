type t = {
  m : Mutex.t;
  readers_done : Condition.t;  (* signalled when the last reader leaves *)
  turn : Condition.t;  (* signalled when a writer leaves *)
  mutable readers : int;
  mutable writer : bool;
  mutable waiting_writers : int;
}

let create () =
  {
    m = Mutex.create ();
    readers_done = Condition.create ();
    turn = Condition.create ();
    readers = 0;
    writer = false;
    waiting_writers = 0;
  }

let lock_read t =
  Mutex.protect t.m (fun () ->
      while t.writer || t.waiting_writers > 0 do
        Condition.wait t.turn t.m
      done;
      t.readers <- t.readers + 1)

let unlock_read t =
  Mutex.protect t.m (fun () ->
      t.readers <- t.readers - 1;
      if t.readers = 0 then Condition.signal t.readers_done)

let lock_write t =
  Mutex.protect t.m (fun () ->
      t.waiting_writers <- t.waiting_writers + 1;
      while t.writer do
        Condition.wait t.turn t.m
      done;
      t.writer <- true;
      t.waiting_writers <- t.waiting_writers - 1;
      while t.readers > 0 do
        Condition.wait t.readers_done t.m
      done)

let unlock_write t =
  Mutex.protect t.m (fun () ->
      t.writer <- false;
      Condition.broadcast t.turn)

let with_read t f =
  lock_read t;
  Fun.protect ~finally:(fun () -> unlock_read t) f

let with_write t f =
  lock_write t;
  Fun.protect ~finally:(fun () -> unlock_write t) f
