(* The writer-preferring implementation lives in [Rkutil.Latch.Rw] so the
   sanitizer sees the logical Shared/Exclusive acquisitions of the catalog
   lock site; this module keeps the service-facing API. The site is
   Long-class: it is held across whole statements (including page-fault
   I/O under execution) by design. *)

type t = Rkutil.Latch.Rw.rw

let create () =
  Rkutil.Latch.Rw.create ~name:"server.catalog.rwlock" ~rank:20
    ~cls:Rkutil.Latch.Long ()

let with_read t f = Rkutil.Latch.Rw.with_read t f
let with_write t f = Rkutil.Latch.Rw.with_write t f
