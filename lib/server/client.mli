(** Blocking client for the {!Protocol} line protocol. *)

type t

val connect : Listener.endpoint -> t
(** Raises [Unix.Unix_error] if the endpoint is unreachable. *)

val request : t -> string -> (Protocol.response, string) result
(** Send one command line and read the framed response (header plus its
    announced payload lines). [Error] means a transport or framing
    failure, not a server-side [ERR] — those come back as a response with
    [ok = false]. *)

val close : t -> unit
