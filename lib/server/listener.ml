type endpoint = Unix_socket of string | Tcp of string * int

let pp_endpoint fmt = function
  | Unix_socket path -> Format.fprintf fmt "unix:%s" path
  | Tcp (host, port) -> Format.fprintf fmt "tcp:%s:%d" host port

type t = {
  svc : Service.t;
  listener : Unix.file_descr;
  endpoint : endpoint;
  m : Rkutil.Latch.t;
  stopped_cond : Condition.t;
  dispatching : int Atomic.t;
      (* connection threads currently inside a command (dispatch + reply
         send); graceful stop waits for this to reach zero so replies in
         flight reach the socket before it is severed *)
  mutable stopped : bool;
  mutable conns : Unix.file_descr list;
  mutable accept_thread : Thread.t option;
}

let err_of e =
  Protocol.err_response ~code:(Service.error_code e) (Service.error_message e)

let max_line_bytes = 65536

(* Read one newline-terminated command of at most [max_line_bytes] bytes.
   An overlong line is drained through its newline and reported as
   [`Overflow] — the connection survives and stays framed, it just loses
   that one command. Unbounded [input_line] would instead buffer whatever
   a hostile client cares to send. *)
let read_line_bounded ic =
  let buf = Buffer.create 256 in
  let rec drain () =
    match input_char ic with
    | exception End_of_file -> `Overflow
    | '\n' -> `Overflow
    | _ -> drain ()
  in
  let rec go n =
    match input_char ic with
    | exception End_of_file ->
        if Buffer.length buf = 0 then `Eof else `Line (Buffer.contents buf)
    | '\n' -> `Line (Buffer.contents buf)
    | c ->
        if n >= max_line_bytes then drain ()
        else begin
          Buffer.add_char buf c;
          go (n + 1)
        end
  in
  go 0

(* Commands return the response plus a post-action for the connection
   loop: keep going, hang up, or stop the whole server. [codec] is the
   connection's row-rendering codec (the WIRE verb flips it). *)
let dispatch svc session ~codec cmd =
  match cmd with
  | Protocol.Ping -> (Protocol.ok_response ~fields:[ ("pong", "1") ] [], `Keep)
  | Protocol.Prepare { name; sql } -> (
      match Service.prepare session ~name sql with
      | Ok tpl ->
          ( Protocol.ok_response
              ~fields:[ ("prepared", name) ]
              [ tpl.Sqlfront.Sql.tpl_text ],
            `Keep )
      | Error e -> (err_of e, `Keep))
  | Protocol.Execute { name; k } -> (
      match Service.execute_prepared session ?k name with
      | Ok reply -> (Protocol.render_reply ~codec:!codec reply, `Keep)
      | Error e -> (err_of e, `Keep))
  | Protocol.Fetch { name; n } -> (
      match Service.fetch session ~name n with
      | Ok reply -> (Protocol.render_reply ~codec:!codec reply, `Keep)
      | Error e -> (err_of e, `Keep))
  | Protocol.Close name -> (
      match Service.close_cursor session name with
      | Ok () -> (Protocol.ok_response ~fields:[ ("closed", name) ] [], `Keep)
      | Error e -> (err_of e, `Keep))
  | Protocol.Query sql -> (
      match Service.query session sql with
      | Ok reply -> (Protocol.render_reply ~codec:!codec reply, `Keep)
      | Error e -> (err_of e, `Keep))
  | Protocol.Explain sql -> (
      match Service.explain session sql with
      | Ok text ->
          let lines =
            String.split_on_char '\n' text
            |> List.filter (fun l -> String.trim l <> "")
          in
          (Protocol.ok_response lines, `Keep)
      | Error e -> (err_of e, `Keep))
  | Protocol.Rank { table; column; value; dense } -> (
      match Service.rank_probe session ~dense ~table ~column value with
      | Ok (rank, total) ->
          let fields =
            (match rank with
            | Some r -> [ ("rank", string_of_int r) ]
            | None -> [ ("rank", "none") ])
            @ [ ("of", string_of_int total) ]
            @ (if dense then [ ("dense", "1") ] else [])
          in
          (Protocol.ok_response ~fields [], `Keep)
      | Error e -> (err_of e, `Keep))
  | Protocol.Stats scope ->
      let fields =
        match scope with
        | `Server -> Service.stats svc
        | `Session -> Service.session_stats session
      in
      let lines = List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) fields in
      (Protocol.ok_response lines, `Keep)
  | Protocol.Wire c ->
      codec := c;
      ( Protocol.ok_response
          ~fields:[ ("wire", match c with `Text -> "text" | `Hex -> "hex") ]
          [],
        `Keep )
  | Protocol.Timeout t ->
      Service.set_timeout session t;
      let v = match t with None -> "default" | Some s -> Printf.sprintf "%g" s in
      (Protocol.ok_response ~fields:[ ("timeout", v) ] [], `Keep)
  | Protocol.Shard_add _ | Protocol.Shard_list ->
      ( Protocol.err_response ~code:"SHARD"
          "not a coordinator: SHARD verbs need rankopt serve --shards",
        `Keep )
  | Protocol.Quit -> (Protocol.ok_response ~fields:[ ("bye", "1") ] [], `Close)
  | Protocol.Shutdown ->
      (Protocol.ok_response ~fields:[ ("shutdown", "1") ] [], `Shutdown)

let send oc response =
  (* Socket writes can block on a slow client: never under a latch. *)
  Rkutil.Latch.blocking "listener.send";
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    (Protocol.render response);
  flush oc

let remove_conn t fd =
  Rkutil.Latch.protect t.m (fun () ->
      t.conns <- List.filter (fun c -> c != fd) t.conns)

(* Graceful stop: no new connections, no new statements, but everything
   already admitted delivers its reply before the sockets are severed.

   1. close the listening socket (accept loop exits);
   2. [Service.begin_drain]: later statements answer ERR SHUTDOWN while
      admitted ones keep their workers;
   3. wait until no statement is in flight and no connection thread is
      mid-command (reply bytes reach the socket);
   4. sever the now-idle connections so their handler threads unwind and
      close their sessions (parked cursors are closed there);
   5. wait for the sessions to close, then stop the worker pool. *)
let rec stop t =
  let proceed =
    Rkutil.Latch.protect t.m (fun () ->
        if t.stopped then false
        else begin
          t.stopped <- true;
          true
        end)
  in
  if proceed then begin
    (* shutdown(2) before close: close alone does not wake the accept
       thread blocked in accept(2). *)
    (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    Service.begin_drain t.svc;
    ignore (Service.drain ~timeout_s:5.0 t.svc);
    Rkutil.Latch.blocking "listener.drain";
    let grace = Unix.gettimeofday () +. 5.0 in
    while
      (Atomic.get t.dispatching > 0 || Service.inflight t.svc > 0)
      && Unix.gettimeofday () < grace
    do
      Unix.sleepf 0.002
    done;
    let conns =
      Rkutil.Latch.protect t.m (fun () ->
          let conns = t.conns in
          t.conns <- [];
          conns)
    in
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    let grace = Unix.gettimeofday () +. 2.0 in
    while Service.sessions t.svc > 0 && Unix.gettimeofday () < grace do
      Unix.sleepf 0.002
    done;
    Service.shutdown t.svc;
    (match t.endpoint with
    | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ());
    Rkutil.Latch.protect t.m (fun () -> Condition.broadcast t.stopped_cond)
  end

and handle_conn t fd =
  let session = Service.open_session t.svc in
  let codec = ref `Text in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let shutdown_requested = ref false in
  (try
     let quit = ref false in
     while not !quit do
       match read_line_bounded ic with
       | `Eof -> quit := true
       | `Overflow ->
           send oc
             (Protocol.err_response ~code:"PROTOCOL"
                (Printf.sprintf "command exceeds %d bytes" max_line_bytes))
       | `Line line when String.trim line = "" -> ()
       | `Line line -> (
           match Protocol.parse_command line with
           | Error msg -> send oc (Protocol.err_response ~code:"PROTOCOL" msg)
           | Ok cmd -> (
               Atomic.incr t.dispatching;
               let response, action =
                 Fun.protect
                   ~finally:(fun () -> Atomic.decr t.dispatching)
                   (fun () ->
                     let r = dispatch t.svc session ~codec cmd in
                     send oc (fst r);
                     r)
               in
               ignore (response : Protocol.response);
               (* Between commands a connection thread holds nothing. *)
               Rkutil.Latch.quiesce "listener.command";
               match action with
               | `Keep -> ()
               | `Close -> quit := true
               | `Shutdown ->
                   shutdown_requested := true;
                   quit := true))
     done
   with Sys_error _ | Unix.Unix_error _ -> ());
  Service.close_session session;
  remove_conn t fd;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  if !shutdown_requested then stop t

let accept_loop t =
  let rec loop () =
    match Unix.accept t.listener with
    | exception Unix.Unix_error _ -> ()  (* listener closed: stopping *)
    | exception Sys_error _ -> ()
    | fd, _addr ->
        let admitted =
          Rkutil.Latch.protect t.m (fun () ->
              if t.stopped then false
              else begin
                t.conns <- fd :: t.conns;
                true
              end)
        in
        if admitted then
          ignore (Thread.create (fun () -> handle_conn t fd) ())
        else (try Unix.close fd with Unix.Unix_error _ -> ());
        loop ()
  in
  loop ()

let start ?config endpoint cat =
  let listener, sockaddr =
    match endpoint with
    | Unix_socket path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | Tcp (host, port) ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        (fd, Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
  in
  (try Unix.bind listener sockaddr
   with e ->
     (try Unix.close listener with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen listener 16;
  let t =
    {
      svc = Service.create ?config cat;
      listener;
      endpoint;
      m = Rkutil.Latch.create ~name:"server.listener" ~rank:12 ();
      stopped_cond = Condition.create ();
      dispatching = Atomic.make 0;
      stopped = false;
      conns = [];
      accept_thread = None;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let service t = t.svc

let wait t =
  Rkutil.Latch.lock t.m;
  while not t.stopped do
    Rkutil.Latch.wait t.stopped_cond t.m
  done;
  Rkutil.Latch.unlock t.m;
  match t.accept_thread with None -> () | Some th -> Thread.join th
