type endpoint = Unix_socket of string | Tcp of string * int

let pp_endpoint fmt = function
  | Unix_socket path -> Format.fprintf fmt "unix:%s" path
  | Tcp (host, port) -> Format.fprintf fmt "tcp:%s:%d" host port

type t = {
  svc : Service.t;
  listener : Unix.file_descr;
  endpoint : endpoint;
  m : Mutex.t;
  stopped_cond : Condition.t;
  mutable stopped : bool;
  mutable conns : Unix.file_descr list;
  mutable accept_thread : Thread.t option;
}

let err_of e =
  Protocol.err_response ~code:(Service.error_code e) (Service.error_message e)

let max_line_bytes = 65536

(* Read one newline-terminated command of at most [max_line_bytes] bytes.
   An overlong line is drained through its newline and reported as
   [`Overflow] — the connection survives and stays framed, it just loses
   that one command. Unbounded [input_line] would instead buffer whatever
   a hostile client cares to send. *)
let read_line_bounded ic =
  let buf = Buffer.create 256 in
  let rec drain () =
    match input_char ic with
    | exception End_of_file -> `Overflow
    | '\n' -> `Overflow
    | _ -> drain ()
  in
  let rec go n =
    match input_char ic with
    | exception End_of_file ->
        if Buffer.length buf = 0 then `Eof else `Line (Buffer.contents buf)
    | '\n' -> `Line (Buffer.contents buf)
    | c ->
        if n >= max_line_bytes then drain ()
        else begin
          Buffer.add_char buf c;
          go (n + 1)
        end
  in
  go 0

(* Commands return the response plus a post-action for the connection
   loop: keep going, hang up, or stop the whole server. [codec] is the
   connection's row-rendering codec (the WIRE verb flips it). *)
let dispatch svc session ~codec cmd =
  match cmd with
  | Protocol.Ping -> (Protocol.ok_response ~fields:[ ("pong", "1") ] [], `Keep)
  | Protocol.Prepare { name; sql } -> (
      match Service.prepare session ~name sql with
      | Ok tpl ->
          ( Protocol.ok_response
              ~fields:[ ("prepared", name) ]
              [ tpl.Sqlfront.Sql.tpl_text ],
            `Keep )
      | Error e -> (err_of e, `Keep))
  | Protocol.Execute { name; k } -> (
      match Service.execute_prepared session ?k name with
      | Ok reply -> (Protocol.render_reply ~codec:!codec reply, `Keep)
      | Error e -> (err_of e, `Keep))
  | Protocol.Fetch { name; n } -> (
      match Service.fetch session ~name n with
      | Ok reply -> (Protocol.render_reply ~codec:!codec reply, `Keep)
      | Error e -> (err_of e, `Keep))
  | Protocol.Close name -> (
      match Service.close_cursor session name with
      | Ok () -> (Protocol.ok_response ~fields:[ ("closed", name) ] [], `Keep)
      | Error e -> (err_of e, `Keep))
  | Protocol.Query sql -> (
      match Service.query session sql with
      | Ok reply -> (Protocol.render_reply ~codec:!codec reply, `Keep)
      | Error e -> (err_of e, `Keep))
  | Protocol.Explain sql -> (
      match Service.explain session sql with
      | Ok text ->
          let lines =
            String.split_on_char '\n' text
            |> List.filter (fun l -> String.trim l <> "")
          in
          (Protocol.ok_response lines, `Keep)
      | Error e -> (err_of e, `Keep))
  | Protocol.Rank { table; column; value; dense } -> (
      match Service.rank_probe session ~dense ~table ~column value with
      | Ok (rank, total) ->
          let fields =
            (match rank with
            | Some r -> [ ("rank", string_of_int r) ]
            | None -> [ ("rank", "none") ])
            @ [ ("of", string_of_int total) ]
            @ (if dense then [ ("dense", "1") ] else [])
          in
          (Protocol.ok_response ~fields [], `Keep)
      | Error e -> (err_of e, `Keep))
  | Protocol.Stats scope ->
      let fields =
        match scope with
        | `Server -> Service.stats svc
        | `Session -> Service.session_stats session
      in
      let lines = List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) fields in
      (Protocol.ok_response lines, `Keep)
  | Protocol.Wire c ->
      codec := c;
      ( Protocol.ok_response
          ~fields:[ ("wire", match c with `Text -> "text" | `Hex -> "hex") ]
          [],
        `Keep )
  | Protocol.Timeout t ->
      Service.set_timeout session t;
      let v = match t with None -> "default" | Some s -> Printf.sprintf "%g" s in
      (Protocol.ok_response ~fields:[ ("timeout", v) ] [], `Keep)
  | Protocol.Shard_add _ | Protocol.Shard_list ->
      ( Protocol.err_response ~code:"SHARD"
          "not a coordinator: SHARD verbs need rankopt serve --shards",
        `Keep )
  | Protocol.Quit -> (Protocol.ok_response ~fields:[ ("bye", "1") ] [], `Close)
  | Protocol.Shutdown ->
      (Protocol.ok_response ~fields:[ ("shutdown", "1") ] [], `Shutdown)

let send oc response =
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    (Protocol.render response);
  flush oc

let remove_conn t fd =
  Mutex.protect t.m (fun () ->
      t.conns <- List.filter (fun c -> c != fd) t.conns)

let rec stop t =
  let to_close =
    Mutex.protect t.m (fun () ->
        if t.stopped then None
        else begin
          t.stopped <- true;
          let conns = t.conns in
          t.conns <- [];
          Some conns
        end)
  in
  match to_close with
  | None -> ()
  | Some conns ->
      (* shutdown(2) before close: close alone does not wake the accept
         thread blocked in accept(2). *)
      (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL
       with Unix.Unix_error _ -> ());
      (try Unix.close t.listener with Unix.Unix_error _ -> ());
      List.iter
        (fun fd ->
          try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
        conns;
      Service.shutdown t.svc;
      (match t.endpoint with
      | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
      | Tcp _ -> ());
      Mutex.protect t.m (fun () -> Condition.broadcast t.stopped_cond)

and handle_conn t fd =
  let session = Service.open_session t.svc in
  let codec = ref `Text in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let shutdown_requested = ref false in
  (try
     let quit = ref false in
     while not !quit do
       match read_line_bounded ic with
       | `Eof -> quit := true
       | `Overflow ->
           send oc
             (Protocol.err_response ~code:"PROTOCOL"
                (Printf.sprintf "command exceeds %d bytes" max_line_bytes))
       | `Line line when String.trim line = "" -> ()
       | `Line line -> (
           match Protocol.parse_command line with
           | Error msg -> send oc (Protocol.err_response ~code:"PROTOCOL" msg)
           | Ok cmd -> (
               let response, action = dispatch t.svc session ~codec cmd in
               send oc response;
               match action with
               | `Keep -> ()
               | `Close -> quit := true
               | `Shutdown ->
                   shutdown_requested := true;
                   quit := true))
     done
   with Sys_error _ | Unix.Unix_error _ -> ());
  Service.close_session session;
  remove_conn t fd;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  if !shutdown_requested then stop t

let accept_loop t =
  let rec loop () =
    match Unix.accept t.listener with
    | exception Unix.Unix_error _ -> ()  (* listener closed: stopping *)
    | exception Sys_error _ -> ()
    | fd, _addr ->
        let admitted =
          Mutex.protect t.m (fun () ->
              if t.stopped then false
              else begin
                t.conns <- fd :: t.conns;
                true
              end)
        in
        if admitted then
          ignore (Thread.create (fun () -> handle_conn t fd) ())
        else (try Unix.close fd with Unix.Unix_error _ -> ());
        loop ()
  in
  loop ()

let start ?config endpoint cat =
  let listener, sockaddr =
    match endpoint with
    | Unix_socket path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | Tcp (host, port) ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        (fd, Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
  in
  (try Unix.bind listener sockaddr
   with e ->
     (try Unix.close listener with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen listener 16;
  let t =
    {
      svc = Service.create ?config cat;
      listener;
      endpoint;
      m = Mutex.create ();
      stopped_cond = Condition.create ();
      stopped = false;
      conns = [];
      accept_thread = None;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let service t = t.svc

let wait t =
  Mutex.protect t.m (fun () ->
      while not t.stopped do
        Condition.wait t.stopped_cond t.m
      done);
  match t.accept_thread with None -> () | Some th -> Thread.join th
