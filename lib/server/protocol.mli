(** The line protocol spoken between [rankopt serve] and its clients.

    Requests are single lines (SQL must not contain newlines):

    {v
    PING
    PREPARE <name> <sql>
    EXECUTE <name> [k]
    FETCH <name> NEXT [n]
    CLOSE <name>
    QUERY <sql>
    EXPLAIN <sql>
    RANK <table>.<column> OF <value> [DENSE]
    STATS [SESSION]
    WIRE TEXT|HEX
    TIMEOUT <seconds>|DEFAULT
    SHARD LIST | SHARD ADD <path>
    QUIT
    SHUTDOWN
    v}

    Responses are a header line followed by a fixed number of payload
    lines:

    {v
    OK <n> [key=value ...]   -- then exactly n payload lines
    ERR <CODE> <message>     -- no payload
    v}

    Query payload lines are tab-separated column values; ranked results
    carry the score as a final [score=<f>] field. *)

type command =
  | Ping
  | Prepare of { name : string; sql : string }
  | Execute of { name : string; k : int option }
  | Fetch of { name : string; n : int }
      (** Cursor continuation of an executed statement: the next [n]
          ranked answers ([NEXT] without a count fetches one). *)
  | Close of string  (** Drop the cursor under this statement name. *)
  | Query of string
  | Explain of string
  | Rank of { table : string; column : string; value : float; dense : bool }
      (** [RANK <table>.<column> OF <value>] — probe the order-statistic
          index for the minimum 1-based rank a row scoring [value] holds
          (or would hold); rank 1 = highest score. *)
  | Stats of [ `Server | `Session ]
  | Wire of [ `Text | `Hex ]
      (** Per-connection row codec. [`Hex] renders cells with the persist
          codec (floats in [%h]) so the stream round-trips bit-exactly —
          the shard coordinator relies on it. *)
  | Timeout of float option
      (** Session default statement deadline; [None] restores the server
          default. Coordinators propagate their remaining deadline to
          shards with this before scattering. *)
  | Shard_add of string
      (** Coordinator-only: attach a new in-process shard and repartition
          (the plain listener answers [ERR SHARD]). *)
  | Shard_list  (** Coordinator-only: one payload line per shard. *)
  | Quit
  | Shutdown

val parse_command : string -> (command, string) result

type response = {
  ok : bool;
  code : string;  (** Error code when [not ok], [""] otherwise. *)
  fields : (string * string) list;  (** Header key=value pairs. *)
  message : string;  (** Error message when [not ok]. *)
  payload : string list;
}

val ok_response : ?fields:(string * string) list -> string list -> response

val err_response : code:string -> string -> response

val render : response -> string list
(** Header + payload, each element one line (no trailing newline). *)

val parse_header : string -> (response, string) result
(** Parse a header line into a payload-less {!response}; the caller reads
    the announced number of payload lines (see {!payload_count}). *)

val payload_count : string -> int
(** Number of payload lines announced by an [OK] header line (0 for
    [ERR]). *)

val render_reply : ?codec:[ `Text | `Hex ] -> Service.reply -> response
(** Rows as tab-separated values (scores appended as [score=..] fields),
    with [cached] / [reoptimized] / [latency_ms] / [affected] header
    fields. [`Hex] (default [`Text]) encodes cells with
    {!Storage.Persist.value_encode} and scores as [%h]. *)

val render_cell : [ `Text | `Hex ] -> Relalg.Value.t -> string

val render_score : [ `Text | `Hex ] -> float -> string

val parse_score : [ `Text | `Hex ] -> string -> float option
(** Recognize a [score=<f>] trailer cell (either codec). *)
