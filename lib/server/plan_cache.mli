(** Rank-aware (k-interval) LRU plan cache.

    Keyed on (normalized query template, catalog stats epoch). Because the
    optimal plan for a top-k query is a function of [k] (the paper's k{^*}
    crossover rule), a cache entry holds a small set of plan {e variants},
    each valid on its own [k] interval ({!Core.Optimizer.k_interval}). A
    lookup with a bound [k] is a hit only when some variant's interval
    contains it — rebinding [k] inside the interval reuses the plan (with
    [Propagate] re-pushing the new [k]); outside it, the caller
    re-optimizes and {!store}s the new variant, so a query flip-flopping
    across k{^*} keeps both plan shapes cached.

    Entries whose epoch no longer matches the catalog's stats epoch are
    dropped on lookup (stale statistics ⇒ stale plan choice).

    All operations are mutex-protected; hit/miss accounting is built in. *)

type t

val create : ?capacity:int -> ?max_variants:int -> unit -> t
(** [capacity] bounds the number of templates (LRU-evicted, default 128);
    [max_variants] bounds plan variants per template (default 4, evicting
    the least recently stored). *)

type lookup =
  | Hit of Sqlfront.Sql.prepared  (** Already rebound to the requested [k]. *)
  | Stale  (** Entry found but from an older stats epoch; dropped. *)
  | Interval_miss
      (** Template cached, but no variant's k-interval contains [k] — the
          k{^*} regime changed; caller re-optimizes ("re-optimize on
          rebind"). *)
  | Absent  (** Cold miss. *)

val find : t -> key:string -> epoch:int -> k:int option -> lookup
(** [k = None] looks up an unranked / no-limit statement (any variant
    matches). *)

val store : t -> key:string -> epoch:int -> Sqlfront.Sql.prepared -> unit
(** Insert a freshly optimized plan as a variant of its template's entry,
    creating / LRU-evicting entries as needed. *)

val entries : t -> (string * int * Sqlfront.Sql.prepared) list
(** A snapshot of every cached variant as [(template key, stats epoch,
    prepared plan)] — the surface the planlint cache rule (PL10) audits. *)

type stats = {
  hits : int;
  misses : int;  (** [Absent] + [Interval_miss] + [Stale] lookups. *)
  reopt_rebinds : int;  (** The [Interval_miss] subset of misses. *)
  invalidations : int;  (** The [Stale] subset of misses. *)
  evictions : int;
  entries : int;
  variants : int;
}

val stats : t -> stats

val clear : t -> unit

val hit_rate : stats -> float
(** [hits / (hits + misses)]; 0 when empty. *)
