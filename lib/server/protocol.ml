type command =
  | Ping
  | Prepare of { name : string; sql : string }
  | Execute of { name : string; k : int option }
  | Fetch of { name : string; n : int }
  | Close of string
  | Query of string
  | Explain of string
  | Rank of { table : string; column : string; value : float; dense : bool }
  | Stats of [ `Server | `Session ]
  | Wire of [ `Text | `Hex ]
  | Timeout of float option
  | Shard_add of string
  | Shard_list
  | Quit
  | Shutdown

(* Split off the first whitespace-delimited word; returns (word, rest)
   with rest trimmed of leading blanks. *)
let split_word s =
  let s = String.trim s in
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
      ( String.sub s 0 i,
        String.trim (String.sub s (i + 1) (String.length s - i - 1)) )

let parse_command line =
  let verb, rest = split_word line in
  match String.uppercase_ascii verb with
  | "" -> Error "empty command"
  | "PING" -> Ok Ping
  | "QUIT" -> Ok Quit
  | "SHUTDOWN" -> Ok Shutdown
  | "QUERY" ->
      if rest = "" then Error "QUERY requires a SQL statement"
      else Ok (Query rest)
  | "EXPLAIN" ->
      if rest = "" then Error "EXPLAIN requires a SQL statement"
      else Ok (Explain rest)
  | "PREPARE" ->
      let name, sql = split_word rest in
      if name = "" || sql = "" then Error "usage: PREPARE <name> <sql>"
      else Ok (Prepare { name; sql })
  | "EXECUTE" -> (
      let name, karg = split_word rest in
      if name = "" then Error "usage: EXECUTE <name> [k]"
      else
        match karg with
        | "" -> Ok (Execute { name; k = None })
        | karg -> (
            match int_of_string_opt karg with
            | Some k -> Ok (Execute { name; k = Some k })
            | None -> Error (Printf.sprintf "EXECUTE: invalid k %S" karg)))
  | "FETCH" -> (
      (* FETCH <name> NEXT <n> — cursor-style continuation of an executed
         statement; FETCH <name> NEXT defaults to one row. *)
      let name, rest = split_word rest in
      let next_kw, narg = split_word rest in
      if name = "" || String.uppercase_ascii next_kw <> "NEXT" then
        Error "usage: FETCH <name> NEXT [n]"
      else
        match narg with
        | "" -> Ok (Fetch { name; n = 1 })
        | narg -> (
            match int_of_string_opt narg with
            | Some n -> Ok (Fetch { name; n })
            | None -> Error (Printf.sprintf "FETCH: invalid count %S" narg)))
  | "CLOSE" ->
      if rest = "" then Error "usage: CLOSE <name>"
      else Ok (Close rest)
  | "RANK" -> (
      (* RANK <table>.<column> OF <value> [DENSE] — the minimum rank a row
         scoring <value> holds (or would hold) on the order-statistic
         index; DENSE numbers distinct scores consecutively instead. *)
      let target, rest = split_word rest in
      let of_kw, rest = split_word rest in
      let varg, dense_kw = split_word rest in
      let dotted =
        match String.index_opt target '.' with
        | Some i when i > 0 && i < String.length target - 1 ->
            Some
              ( String.sub target 0 i,
                String.sub target (i + 1) (String.length target - i - 1) )
        | _ -> None
      in
      match dotted with
      | _
        when String.uppercase_ascii of_kw <> "OF"
             || varg = ""
             || not
                  (dense_kw = ""
                  || String.uppercase_ascii dense_kw = "DENSE") ->
          Error "usage: RANK <table>.<column> OF <value> [DENSE]"
      | None -> Error "usage: RANK <table>.<column> OF <value> [DENSE]"
      | Some (table, column) -> (
          match float_of_string_opt varg with
          | Some value ->
              Ok
                (Rank
                   {
                     table;
                     column;
                     value;
                     dense = String.uppercase_ascii dense_kw = "DENSE";
                   })
          | None -> Error (Printf.sprintf "RANK: invalid value %S" varg)))
  | "WIRE" -> (
      (* WIRE TEXT|HEX — row rendering for this connection. HEX encodes
         cells with the persist codec (floats as %h), making the stream
         bit-exact; the coordinator always switches its shard links to
         HEX before scattering. *)
      match String.uppercase_ascii rest with
      | "TEXT" -> Ok (Wire `Text)
      | "HEX" -> Ok (Wire `Hex)
      | _ -> Error "usage: WIRE TEXT|HEX")
  | "TIMEOUT" -> (
      (* TIMEOUT <seconds>|DEFAULT — session statement deadline. *)
      match String.uppercase_ascii rest with
      | "DEFAULT" -> Ok (Timeout None)
      | _ -> (
          match float_of_string_opt rest with
          | Some s when s > 0.0 -> Ok (Timeout (Some s))
          | _ -> Error "usage: TIMEOUT <seconds>|DEFAULT"))
  | "SHARD" -> (
      let sub, arg = split_word rest in
      match String.uppercase_ascii sub with
      | "LIST" when arg = "" -> Ok Shard_list
      | "ADD" when arg <> "" -> Ok (Shard_add arg)
      | _ -> Error "usage: SHARD LIST | SHARD ADD <unix-socket-path>")
  | "STATS" -> (
      match String.uppercase_ascii rest with
      | "" -> Ok (Stats `Server)
      | "SESSION" -> Ok (Stats `Session)
      | _ -> Error "usage: STATS [SESSION]")
  | verb -> Error (Printf.sprintf "unknown command %S" verb)

type response = {
  ok : bool;
  code : string;
  fields : (string * string) list;
  message : string;
  payload : string list;
}

let ok_response ?(fields = []) payload =
  { ok = true; code = ""; fields; message = ""; payload }

let err_response ~code message =
  { ok = false; code; fields = []; message; payload = [] }

let render r =
  if r.ok then
    let fields =
      List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) r.fields
      |> String.concat ""
    in
    Printf.sprintf "OK %d%s" (List.length r.payload) fields :: r.payload
  else [ Printf.sprintf "ERR %s %s" r.code r.message ]

let payload_count header =
  match String.split_on_char ' ' (String.trim header) with
  | "OK" :: n :: _ -> ( match int_of_string_opt n with Some n -> n | None -> 0)
  | _ -> 0

let parse_header header =
  match String.split_on_char ' ' (String.trim header) with
  | "OK" :: n :: fields -> (
      match int_of_string_opt n with
      | None -> Error (Printf.sprintf "malformed OK header %S" header)
      | Some _ ->
          let fields =
            List.filter_map
              (fun f ->
                match String.index_opt f '=' with
                | None -> None
                | Some i ->
                    Some
                      ( String.sub f 0 i,
                        String.sub f (i + 1) (String.length f - i - 1) ))
              fields
          in
          Ok { ok = true; code = ""; fields; message = ""; payload = [] })
  | "ERR" :: code :: rest ->
      Ok
        {
          ok = false;
          code;
          fields = [];
          message = String.concat " " rest;
          payload = [];
        }
  | _ -> Error (Printf.sprintf "malformed response header %S" header)

let render_cell = function
  | `Text -> Relalg.Value.to_string
  | `Hex -> Storage.Persist.value_encode

let render_score codec s =
  match codec with
  | `Text -> Printf.sprintf "score=%.6f" s
  | `Hex -> Printf.sprintf "score=%h" s

let parse_score codec s =
  let n = String.length s in
  if n > 6 && String.sub s 0 6 = "score=" then
    let payload = String.sub s 6 (n - 6) in
    match (codec, float_of_string_opt payload) with
    | _, Some f -> Some f
    | _, None -> None
  else None

let render_reply ?(codec = `Text) (r : Service.reply) =
  let fields =
    [
      ("cached", if r.Service.cached then "1" else "0");
      ("reoptimized", if r.Service.reoptimized then "1" else "0");
      ("latency_ms", Printf.sprintf "%.3f" (r.Service.latency_s *. 1000.0));
    ]
  in
  match r.Service.affected with
  | Some n -> ok_response ~fields:(("affected", string_of_int n) :: fields) []
  | None ->
      let header =
        if r.Service.columns = [] then []
        else [ String.concat "\t" r.Service.columns ]
      in
      let scores =
        match r.Service.scores with
        | [] -> List.map (fun _ -> None) r.Service.rows
        | ss -> List.map Option.some ss
      in
      let rows =
        List.map2
          (fun row score ->
            let cells = Array.to_list (Array.map (render_cell codec) row) in
            let cells =
              match score with
              | None -> cells
              | Some s -> cells @ [ render_score codec s ]
            in
            String.concat "\t" cells)
          r.Service.rows scores
      in
      ok_response
        ~fields:(("rows", string_of_int (List.length r.Service.rows)) :: fields)
        (header @ rows)
