type variant = {
  v_prepared : Sqlfront.Sql.prepared;
  mutable v_use : int;  (* recency stamp, for per-entry variant eviction *)
}

type entry = {
  e_epoch : int;
  mutable e_variants : variant list;
  mutable e_use : int;  (* recency stamp, for LRU entry eviction *)
}

type t = {
  lock : Rkutil.Latch.t;
  table : (string, entry) Hashtbl.t;
  capacity : int;
  max_variants : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable reopt_rebinds : int;
  mutable invalidations : int;
  mutable evictions : int;
}

type lookup =
  | Hit of Sqlfront.Sql.prepared
  | Stale
  | Interval_miss
  | Absent

type stats = {
  hits : int;
  misses : int;
  reopt_rebinds : int;
  invalidations : int;
  evictions : int;
  entries : int;
  variants : int;
}

let create ?(capacity = 128) ?(max_variants = 4) () =
  {
    lock = Rkutil.Latch.create ~name:"server.plan_cache" ~rank:40 ();
    table = Hashtbl.create 64;
    capacity = max 1 capacity;
    max_variants = max 1 max_variants;
    clock = 0;
    hits = 0;
    misses = 0;
    reopt_rebinds = 0;
    invalidations = 0;
    evictions = 0;
  }

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(* All table/stat mutations run under [t.lock]; the marker lets the
   sanitizer audit that no future code path slips in unguarded. *)
let locked t f =
  Rkutil.Latch.protect t.lock (fun () ->
      Rkutil.Latch.guarded t.lock "plan_cache.table";
      f ())

(* A variant serves a bound k when the plan's recorded validity interval
   contains it; [k = None] (no-limit statements) matches any variant. *)
let variant_matches k (v : variant) =
  match k with
  | None -> true
  | Some k -> Core.Optimizer.k_in_validity v.v_prepared.Sqlfront.Sql.planned k

let find t ~key ~epoch ~k =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | None ->
          t.misses <- t.misses + 1;
          Absent
      | Some e when e.e_epoch <> epoch ->
          Hashtbl.remove t.table key;
          t.misses <- t.misses + 1;
          t.invalidations <- t.invalidations + 1;
          Stale
      | Some e -> (
          match List.find_opt (variant_matches k) e.e_variants with
          | None ->
              t.misses <- t.misses + 1;
              t.reopt_rebinds <- t.reopt_rebinds + 1;
              Interval_miss
          | Some v ->
              let stamp = tick t in
              e.e_use <- stamp;
              v.v_use <- stamp;
              t.hits <- t.hits + 1;
              let p = v.v_prepared in
              Hit
                (match k with
                | Some k -> Sqlfront.Sql.rebind_k p k
                | None -> p)))

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key e ->
      match !victim with
      | None -> victim := Some (key, e.e_use)
      | Some (_, use) -> if e.e_use < use then victim := Some (key, e.e_use))
    t.table;
  match !victim with
  | None -> ()
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1

let store t ~key ~epoch prepared =
  locked t (fun () ->
      let stamp = tick t in
      let fresh = { v_prepared = prepared; v_use = stamp } in
      match Hashtbl.find_opt t.table key with
      | Some e when e.e_epoch = epoch ->
          e.e_use <- stamp;
          let variants = fresh :: e.e_variants in
          e.e_variants <-
            (if List.length variants > t.max_variants then
               let oldest =
                 List.fold_left (fun acc v -> min acc v.v_use) max_int variants
               in
               List.filter (fun v -> v.v_use <> oldest) variants
             else variants)
      | existing ->
          if Option.is_some existing then Hashtbl.remove t.table key
          else if Hashtbl.length t.table >= t.capacity then evict_lru t;
          Hashtbl.replace t.table key
            { e_epoch = epoch; e_variants = [ fresh ]; e_use = stamp })

let entries t =
  locked t (fun () ->
      Hashtbl.fold
        (fun key e acc ->
          List.fold_left
            (fun acc v -> (key, e.e_epoch, v.v_prepared) :: acc)
            acc e.e_variants)
        t.table [])

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        reopt_rebinds = t.reopt_rebinds;
        invalidations = t.invalidations;
        evictions = t.evictions;
        entries = Hashtbl.length t.table;
        variants =
          Hashtbl.fold
            (fun _ e acc -> acc + List.length e.e_variants)
            t.table 0;
      })

let clear t = locked t (fun () -> Hashtbl.reset t.table)

let hit_rate (s : stats) =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total
