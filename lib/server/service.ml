type config = {
  workers : int;
  queue_capacity : int;
  cache_capacity : int;
  default_timeout_s : float;
  dop : int;
}

let default_config =
  {
    workers = 4;
    queue_capacity = 64;
    cache_capacity = 128;
    default_timeout_s = 30.0;
    dop = 1;
  }

type error =
  | Parse_error of string
  | Bind_error of string
  | Plan_error of string
  | Exec_error of string
  | Timeout
  | Queue_full of string
  | Unknown_prepared of string
  | Unknown_cursor of string
  | Cursor_stale of string
  | Shutting_down

let error_code = function
  | Parse_error _ -> "PARSE"
  | Bind_error _ -> "BIND"
  | Plan_error _ -> "PLAN"
  | Exec_error _ -> "EXEC"
  | Timeout -> "TIMEOUT"
  | Queue_full _ -> "QUEUE_FULL"
  | Unknown_prepared _ -> "UNKNOWN_PREPARED"
  | Unknown_cursor _ -> "UNKNOWN_CURSOR"
  | Cursor_stale _ -> "CURSOR_STALE"
  | Shutting_down -> "SHUTDOWN"

let error_message = function
  | Parse_error m | Bind_error m | Plan_error m | Exec_error m -> m
  | Timeout -> "statement exceeded its deadline"
  | Queue_full who ->
      Printf.sprintf "worker queue full; statement %S shed" who
  | Unknown_prepared n -> Printf.sprintf "no prepared statement named %S" n
  | Unknown_cursor n -> Printf.sprintf "no open cursor named %S" n
  | Cursor_stale name ->
      Printf.sprintf
        "cursor %S invalidated: statistics of its tables changed since EXECUTE"
        name
  | Shutting_down -> "server is shutting down"

type reply = {
  columns : string list;
  rows : Relalg.Tuple.t list;
  scores : float list;
  affected : int option;
  cached : bool;
  reoptimized : bool;
  latency_s : float;
}

(* A one-shot synchronization cell: the worker fills it, the submitting
   connection thread blocks reading it. *)
module Ivar = struct
  type 'a t = { m : Rkutil.Latch.t; c : Condition.t; mutable v : 'a option }

  let create () =
    {
      m = Rkutil.Latch.create ~name:"server.ivar" ~rank:55 ();
      c = Condition.create ();
      v = None;
    }

  let fill iv v =
    Rkutil.Latch.protect iv.m (fun () ->
        iv.v <- Some v;
        Condition.broadcast iv.c)

  let read iv =
    (* Waiting for a worker is a blocking operation: doing it while
       holding any Short-class latch would be an LK03 hazard. *)
    Rkutil.Latch.blocking "service.await";
    Rkutil.Latch.protect iv.m (fun () ->
        while Option.is_none iv.v do
          Rkutil.Latch.wait iv.c iv.m
        done;
        Option.get iv.v)
end

type t = {
  cat : Storage.Catalog.t;
  config : config;
  cache : Plan_cache.t;
  lock : Rwlock.t;
  metrics : Metrics.t;
  pool : Rkutil.Task_pool.t;
      (* One pool serves both layers: whole statements (inter-query) and
         exchange morsel pumps (intra-query). Safe because no pool job ever
         blocks on the *scheduling* of another — exchange consumers help-run
         unclaimed morsels themselves (see Exec.Exchange). *)
  queued : int Atomic.t;  (* statements admitted but not yet started *)
  inflight : int Atomic.t;
      (* statements admitted whose reply has not been filled yet; the
         graceful-shutdown drain waits for this to reach zero *)
  stopping : bool Atomic.t;
  active_sessions : int Atomic.t;
}

(* An open cursor: a suspended enumerable statement. The deadline ref is
   the state the cursor's interrupt closure reads — each FETCH writes its
   own deadline there before pulling, so one slow fetch cannot consume a
   later fetch's budget. The epoch pins the statistics state the plan was
   built against: any DML bump invalidates the cursor (its materialized
   anyK state would be stale). *)
type open_cursor = {
  oc_cursor : Sqlfront.Sql.cursor;
  oc_tables : string list;  (* the statement's FROM tables *)
  oc_epoch : int;
  oc_deadline : float ref;
}

type session = {
  svc : t;
  stmts : (string, Sqlfront.Sql.template) Hashtbl.t;
  cursors : (string, open_cursor) Hashtbl.t;
  slock : Rkutil.Latch.t;
  smetrics : Metrics.t;
  mutable stimeout : float option;
      (* session default deadline override (TIMEOUT verb); a per-call
         [?timeout_s] still wins *)
}

let create ?(config = default_config) cat =
  let config =
    { config with workers = max 1 config.workers; dop = max 1 config.dop }
  in
  {
    cat;
    config;
    cache = Plan_cache.create ~capacity:config.cache_capacity ();
    lock = Rwlock.create ();
    metrics = Metrics.create ();
    pool = Rkutil.Task_pool.create ~domains:config.workers;
    queued = Atomic.make 0;
    inflight = Atomic.make 0;
    stopping = Atomic.make false;
    active_sessions = Atomic.make 0;
  }

let shutdown t =
  Atomic.set t.stopping true;
  Rkutil.Task_pool.shutdown t.pool

(* Graceful shutdown, phase one: reject new statements ([submit] answers
   [Shutting_down]) while statements already admitted keep their workers
   and deliver their replies. *)
let begin_drain t = Atomic.set t.stopping true

(* Phase two: wait (bounded) until every in-flight statement has filled
   its reply. Returns [true] if the service fully drained. *)
let drain ?(timeout_s = 5.0) t =
  Rkutil.Latch.blocking "service.drain";
  let deadline = Unix.gettimeofday () +. timeout_s in
  while Atomic.get t.inflight > 0 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.002
  done;
  Atomic.get t.inflight = 0

let inflight t = Atomic.get t.inflight

let sessions t = Atomic.get t.active_sessions

let open_session t =
  Atomic.incr t.active_sessions;
  {
    svc = t;
    stmts = Hashtbl.create 8;
    cursors = Hashtbl.create 4;
    slock = Rkutil.Latch.create ~name:"server.session" ~rank:30 ();
    smetrics = Metrics.create ();
      stimeout = None;
  }

let close_cursor_entry oc =
  try Sqlfront.Sql.cursor_close oc.oc_cursor with _ -> ()

(* Remove and return the cursor under [name], if any. *)
let take_cursor sess name =
  Rkutil.Latch.protect sess.slock (fun () ->
      match Hashtbl.find_opt sess.cursors name with
      | Some oc ->
          Hashtbl.remove sess.cursors name;
          Some oc
      | None -> None)

let drop_cursor sess name =
  match take_cursor sess name with
  | Some oc ->
      close_cursor_entry oc;
      true
  | None -> false

let close_session s =
  Atomic.decr s.svc.active_sessions;
  let cursors =
    Rkutil.Latch.protect s.slock (fun () ->
        let cs = Hashtbl.fold (fun _ oc acc -> oc :: acc) s.cursors [] in
        Hashtbl.reset s.cursors;
        Hashtbl.reset s.stmts;
        cs)
  in
  List.iter close_cursor_entry cursors

(* Hand [f] to a pool worker; block until it completes, the deadline
   cancels it, or admission control sheds it. The queued counter tracks
   statements only — morsel pump jobs the statements themselves submit to
   the same pool never count against admission. *)
let submit t ~label ~deadline (f : unit -> ('a, error) result) :
    ('a, error) result =
  let iv = Ivar.create () in
  if Atomic.get t.stopping then Error Shutting_down
  else if Atomic.get t.queued >= t.config.queue_capacity then begin
    Metrics.record_shed t.metrics;
    Error (Queue_full label)
  end
  else begin
    Atomic.incr t.queued;
    Atomic.incr t.inflight;
    let job () =
      Atomic.decr t.queued;
      (if Unix.gettimeofday () > deadline then Ivar.fill iv (Error Timeout)
       else
         let r =
           try f () with
           | Core.Executor.Interrupted -> Error Timeout
           | exn -> Error (Exec_error (Printexc.to_string exn))
         in
         Ivar.fill iv r);
      (* The reply is delivered: this statement no longer blocks a drain. *)
      Atomic.decr t.inflight
    in
    if Rkutil.Task_pool.submit t.pool job then Ivar.read iv
    else begin
      Atomic.decr t.queued;
      Atomic.decr t.inflight;
      Error Shutting_down
    end
  end

let record_outcome t s ~latency_s = function
  | Ok _ ->
      Metrics.record_query t.metrics ~latency_s;
      Metrics.record_query s.smetrics ~latency_s
  | Error Timeout ->
      Metrics.record_timeout t.metrics;
      Metrics.record_timeout s.smetrics
  | Error (Queue_full _) -> Metrics.record_shed s.smetrics  (* server side counted at shed *)
  | Error _ ->
      Metrics.record_error t.metrics;
      Metrics.record_error s.smetrics

(* The cached SELECT path: plan-cache lookup on (template, epoch, k);
   hits rebind k in place, misses (re-)optimize and store the variant.

   When [cursor_name] is supplied (the EXECUTE path) and the prepared
   statement is cursor-eligible, the first k answers are pulled through a
   cursor which is then parked in the session under that name, so later
   FETCH NEXT calls resume the same suspended enumeration — the prefix the
   EXECUTE returned plus all fetch continuations are tuple-identical to a
   one-shot execution at a larger k. A non-eligible EXECUTE (or plain
   QUERY) runs one-shot; either way any previous cursor under the name is
   dropped first, never silently resumed across re-executions.

   The k bind value is validated before the plan cache is consulted:
   k <= 0 must neither execute nor poison the cache with a variant whose
   Top-k can never be rebound (Optimizer.rebind_k requires k >= 1). *)
let run_template sess ?timeout_s ?k ?cursor_name (tpl : Sqlfront.Sql.template) =
  let t = sess.svc in
  let timeout =
    match timeout_s with
    | Some x -> x
    | None ->
        Option.value sess.stimeout ~default:t.config.default_timeout_s
  in
  let start = Unix.gettimeofday () in
  let deadline = start +. timeout in
  let eff_k =
    match k with Some _ -> k | None -> tpl.Sqlfront.Sql.tpl_inline_k
  in
  (* Per-table epoch: the statement reads exactly its FROM tables, so its
     cache entries and cursors only go stale when one of *those* tables'
     statistics move — DML on unrelated tables is invisible here. *)
  let tables = tpl.Sqlfront.Sql.tpl_ast.Sqlfront.Ast.from in
  let epoch = Storage.Catalog.epoch_of_tables t.cat tables in
  (match cursor_name with
  | Some name -> ignore (drop_cursor sess name)
  | None -> ());
  let result =
    match eff_k with
    | Some bad when bad < 1 ->
        Error
          (Bind_error (Printf.sprintf "bind error: k must be >= 1, got %d" bad))
    | _ ->
        let label =
          match cursor_name with
          | Some name -> name
          | None -> tpl.Sqlfront.Sql.tpl_text
        in
        submit t ~label ~deadline (fun () ->
            let interrupt () = Unix.gettimeofday () > deadline in
            let exec prepared ~cached ~reoptimized =
              match (cursor_name, eff_k) with
              | Some name, Some fetch_k
                when Sqlfront.Sql.cursor_eligible prepared ->
                  Rwlock.with_read t.lock (fun () ->
                      let oc_deadline = ref deadline in
                      let cur =
                        Sqlfront.Sql.open_cursor
                          ~interrupt:(fun () ->
                            Unix.gettimeofday () > !oc_deadline)
                          ~pool:t.pool t.cat prepared
                      in
                      match Sqlfront.Sql.cursor_fetch cur fetch_k with
                      | rows, scores ->
                          let ans =
                            {
                              Sqlfront.Sql.columns =
                                Sqlfront.Sql.cursor_columns cur;
                              rows;
                              scores;
                              planned =
                                prepared.Sqlfront.Sql.planned;
                            }
                          in
                          Rkutil.Latch.protect sess.slock (fun () ->
                              Hashtbl.replace sess.cursors name
                                {
                                  oc_cursor = cur;
                                  oc_tables = tables;
                                  oc_epoch = epoch;
                                  oc_deadline;
                                });
                          Ok (ans, cached, reoptimized)
                      | exception e ->
                          Sqlfront.Sql.cursor_close cur;
                          raise e)
              | _ ->
                  Rwlock.with_read t.lock (fun () ->
                      match
                        Sqlfront.Sql.run_prepared ~interrupt ~pool:t.pool t.cat
                          prepared
                      with
                      | Ok ans -> Ok (ans, cached, reoptimized)
                      | Error e -> Error (Exec_error e))
            in
            match
              Plan_cache.find t.cache ~key:tpl.Sqlfront.Sql.tpl_text ~epoch
                ~k:eff_k
            with
            | Plan_cache.Hit p -> exec p ~cached:true ~reoptimized:false
            | (Plan_cache.Stale | Plan_cache.Interval_miss | Plan_cache.Absent)
              as miss -> (
                match Sqlfront.Sql.instantiate tpl ?k () with
                | Error e -> Error (Bind_error e)
                | Ok ast -> (
                    match
                      Rwlock.with_read t.lock (fun () ->
                          Sqlfront.Sql.prepare_ast ~dop:t.config.dop t.cat ast)
                    with
                    | Error e -> Error (Plan_error e)
                    | Ok p ->
                        Plan_cache.store t.cache ~key:tpl.Sqlfront.Sql.tpl_text
                          ~epoch p;
                        exec p ~cached:false
                          ~reoptimized:(miss <> Plan_cache.Absent))))
  in
  let latency_s = Unix.gettimeofday () -. start in
  record_outcome t sess ~latency_s result;
  Result.map
    (fun ((ans : Sqlfront.Sql.answer), cached, reoptimized) ->
      {
        columns = ans.Sqlfront.Sql.columns;
        rows = ans.Sqlfront.Sql.rows;
        scores = ans.Sqlfront.Sql.scores;
        affected = None;
        cached;
        reoptimized;
        latency_s;
      })
    result

let prepare sess ~name sql =
  match Sqlfront.Sql.template_of_sql sql with
  | Error e ->
      Metrics.record_error sess.svc.metrics;
      Metrics.record_error sess.smetrics;
      Error (Parse_error e)
  | Ok tpl ->
      Rkutil.Latch.protect sess.slock (fun () -> Hashtbl.replace sess.stmts name tpl);
      Ok tpl

let execute_prepared sess ?timeout_s ?k name =
  match Rkutil.Latch.protect sess.slock (fun () -> Hashtbl.find_opt sess.stmts name) with
  | None -> Error (Unknown_prepared name)
  | Some tpl -> run_template sess ?timeout_s ?k ~cursor_name:name tpl

(* Resume a parked cursor: re-arm its deadline, verify the statistics
   epoch it was planned under still holds (DML in between leaves its
   materialized state stale — close it and report CURSOR_STALE), and pull
   the next [n] ranked answers under the catalog read lock. *)
let fetch sess ?timeout_s ~name n =
  let t = sess.svc in
  let timeout =
    match timeout_s with
    | Some x -> x
    | None ->
        Option.value sess.stimeout ~default:t.config.default_timeout_s
  in
  let start = Unix.gettimeofday () in
  let deadline = start +. timeout in
  let result =
    if n < 1 then
      Error
        (Bind_error (Printf.sprintf "bind error: fetch count must be >= 1, got %d" n))
    else
      match
        Rkutil.Latch.protect sess.slock (fun () -> Hashtbl.find_opt sess.cursors name)
      with
      | None -> Error (Unknown_cursor name)
      | Some oc ->
          submit t ~label:name ~deadline (fun () ->
              if
                Storage.Catalog.epoch_of_tables t.cat oc.oc_tables
                <> oc.oc_epoch
              then begin
                ignore (drop_cursor sess name);
                Error (Cursor_stale name)
              end
              else begin
                oc.oc_deadline := deadline;
                Rwlock.with_read t.lock (fun () ->
                    let rows, scores =
                      Sqlfront.Sql.cursor_fetch oc.oc_cursor n
                    in
                    Ok
                      ( Sqlfront.Sql.cursor_columns oc.oc_cursor,
                        rows,
                        scores ))
              end)
  in
  let latency_s = Unix.gettimeofday () -. start in
  record_outcome t sess ~latency_s result;
  Result.map
    (fun (columns, rows, scores) ->
      {
        columns;
        rows;
        scores;
        affected = None;
        cached = true;
        reoptimized = false;
        latency_s;
      })
    result

let close_cursor sess name =
  if drop_cursor sess name then Ok () else Error (Unknown_cursor name)

(* Peek at the leading keyword to route DML to the write-locked path. *)
let is_dml text =
  let text = String.trim text in
  let n = String.length text in
  let rec word_end i =
    if i < n && (text.[i] = '_' || (text.[i] >= 'a' && text.[i] <= 'z')
                 || (text.[i] >= 'A' && text.[i] <= 'Z'))
    then word_end (i + 1)
    else i
  in
  match String.lowercase_ascii (String.sub text 0 (word_end 0)) with
  | "insert" | "delete" | "update" -> true
  | _ -> false

let run_dml sess ?timeout_s text =
  let t = sess.svc in
  let timeout =
    match timeout_s with
    | Some x -> x
    | None ->
        Option.value sess.stimeout ~default:t.config.default_timeout_s
  in
  let start = Unix.gettimeofday () in
  let deadline = start +. timeout in
  let result =
    submit t ~label:text ~deadline (fun () ->
        Rwlock.with_write t.lock (fun () ->
            match Sqlfront.Sql.execute t.cat text with
            | Ok (Sqlfront.Sql.Affected n) -> Ok n
            | Ok (Sqlfront.Sql.Rows _) ->
                Error (Exec_error "DML statement returned rows")
            | Error e -> Error (Exec_error e)))
  in
  let latency_s = Unix.gettimeofday () -. start in
  record_outcome t sess ~latency_s result;
  Result.map
    (fun n ->
      {
        columns = [];
        rows = [];
        scores = [];
        affected = Some n;
        cached = false;
        reoptimized = false;
        latency_s;
      })
    result

let query sess ?timeout_s ?k text =
  if is_dml text then run_dml sess ?timeout_s text
  else
    match Sqlfront.Sql.template_of_sql text with
    | Error e ->
        Metrics.record_error sess.svc.metrics;
        Metrics.record_error sess.smetrics;
        Error (Parse_error e)
    | Ok tpl -> run_template sess ?timeout_s ?k tpl

let explain sess text =
  let t = sess.svc in
  match Rwlock.with_read t.lock (fun () -> Sqlfront.Sql.explain t.cat text) with
  | Ok s -> Ok s
  | Error e -> Error (Plan_error e)

(* RANK <table>.<column> OF <value>: an O(log n) prefix-count probe of the
   order-statistic index keyed on that column. Runs inline under the read
   lock (no worker round-trip — it touches O(height) pages). *)
let rank_probe sess ?(dense = false) ~table ~column value =
  let t = sess.svc in
  Rwlock.with_read t.lock (fun () ->
      match Storage.Catalog.find_table t.cat table with
      | None -> Error (Bind_error (Printf.sprintf "unknown table %s" table))
      | Some _ -> (
          let key = Relalg.Expr.col ~relation:table column in
          match
            List.find_opt
              (fun ix -> Relalg.Expr.equal ix.Storage.Catalog.ix_key key)
              (Storage.Catalog.indexes_on t.cat table)
          with
          | None ->
              Error
                (Plan_error
                   (Printf.sprintf "no rank index on %s.%s" table column))
          | Some ix ->
              let bt = ix.Storage.Catalog.ix_btree in
              if dense then
                Ok
                  ( Storage.Rank_index.dense_rank_of_value bt value,
                    Storage.Rank_index.dense_total bt )
              else
                Ok
                  ( Storage.Rank_index.rank_of_value bt value,
                    Storage.Rank_index.total bt )))

let set_timeout sess timeout_s = sess.stimeout <- timeout_s

let queue_depth t = Atomic.get t.queued

let cache_stats t = Plan_cache.stats t.cache
let cache_entries t = Plan_cache.entries t.cache

let server_metrics t = Metrics.snapshot t.metrics

let catalog t = t.cat

let stats t =
  let m = Metrics.snapshot t.metrics in
  let c = Plan_cache.stats t.cache in
  Metrics.to_fields m
  @ [
      ("cache_hits", string_of_int c.Plan_cache.hits);
      ("cache_misses", string_of_int c.Plan_cache.misses);
      ("cache_reopt_rebinds", string_of_int c.Plan_cache.reopt_rebinds);
      ("cache_invalidations", string_of_int c.Plan_cache.invalidations);
      ("cache_evictions", string_of_int c.Plan_cache.evictions);
      ("cache_entries", string_of_int c.Plan_cache.entries);
      ("cache_variants", string_of_int c.Plan_cache.variants);
      ("cache_hit_rate", Printf.sprintf "%.3f" (Plan_cache.hit_rate c));
      ("queue_depth", string_of_int (queue_depth t));
      ("workers", string_of_int t.config.workers);
      ("dop", string_of_int t.config.dop);
      ("sessions", string_of_int (Atomic.get t.active_sessions));
      ("stats_epoch", string_of_int (Storage.Catalog.stats_epoch t.cat));
    ]

let session_stats s =
  let m = Metrics.snapshot s.smetrics in
  Metrics.to_fields m
  @ [
      ( "prepared",
        string_of_int
          (Rkutil.Latch.protect s.slock (fun () -> Hashtbl.length s.stmts)) );
      ( "cursors",
        string_of_int
          (Rkutil.Latch.protect s.slock (fun () -> Hashtbl.length s.cursors)) );
    ]
