type config = {
  workers : int;
  queue_capacity : int;
  cache_capacity : int;
  default_timeout_s : float;
  dop : int;
}

let default_config =
  {
    workers = 4;
    queue_capacity = 64;
    cache_capacity = 128;
    default_timeout_s = 30.0;
    dop = 1;
  }

type error =
  | Parse_error of string
  | Bind_error of string
  | Plan_error of string
  | Exec_error of string
  | Timeout
  | Queue_full
  | Unknown_prepared of string
  | Shutting_down

let error_code = function
  | Parse_error _ -> "PARSE"
  | Bind_error _ -> "BIND"
  | Plan_error _ -> "PLAN"
  | Exec_error _ -> "EXEC"
  | Timeout -> "TIMEOUT"
  | Queue_full -> "QUEUE_FULL"
  | Unknown_prepared _ -> "UNKNOWN_PREPARED"
  | Shutting_down -> "SHUTDOWN"

let error_message = function
  | Parse_error m | Bind_error m | Plan_error m | Exec_error m -> m
  | Timeout -> "statement exceeded its deadline"
  | Queue_full -> "worker queue full; statement shed"
  | Unknown_prepared n -> Printf.sprintf "no prepared statement named %S" n
  | Shutting_down -> "server is shutting down"

type reply = {
  columns : string list;
  rows : Relalg.Tuple.t list;
  scores : float list;
  affected : int option;
  cached : bool;
  reoptimized : bool;
  latency_s : float;
}

(* A one-shot synchronization cell: the worker fills it, the submitting
   connection thread blocks reading it. *)
module Ivar = struct
  type 'a t = { m : Mutex.t; c : Condition.t; mutable v : 'a option }

  let create () = { m = Mutex.create (); c = Condition.create (); v = None }

  let fill iv v =
    Mutex.protect iv.m (fun () ->
        iv.v <- Some v;
        Condition.broadcast iv.c)

  let read iv =
    Mutex.protect iv.m (fun () ->
        while Option.is_none iv.v do
          Condition.wait iv.c iv.m
        done;
        Option.get iv.v)
end

type t = {
  cat : Storage.Catalog.t;
  config : config;
  cache : Plan_cache.t;
  lock : Rwlock.t;
  metrics : Metrics.t;
  pool : Rkutil.Task_pool.t;
      (* One pool serves both layers: whole statements (inter-query) and
         exchange morsel pumps (intra-query). Safe because no pool job ever
         blocks on the *scheduling* of another — exchange consumers help-run
         unclaimed morsels themselves (see Exec.Exchange). *)
  queued : int Atomic.t;  (* statements admitted but not yet started *)
  stopping : bool Atomic.t;
  active_sessions : int Atomic.t;
}

type session = {
  svc : t;
  stmts : (string, Sqlfront.Sql.template) Hashtbl.t;
  slock : Mutex.t;
  smetrics : Metrics.t;
}

let create ?(config = default_config) cat =
  let config =
    { config with workers = max 1 config.workers; dop = max 1 config.dop }
  in
  {
    cat;
    config;
    cache = Plan_cache.create ~capacity:config.cache_capacity ();
    lock = Rwlock.create ();
    metrics = Metrics.create ();
    pool = Rkutil.Task_pool.create ~domains:config.workers;
    queued = Atomic.make 0;
    stopping = Atomic.make false;
    active_sessions = Atomic.make 0;
  }

let shutdown t =
  Atomic.set t.stopping true;
  Rkutil.Task_pool.shutdown t.pool

let open_session t =
  Atomic.incr t.active_sessions;
  {
    svc = t;
    stmts = Hashtbl.create 8;
    slock = Mutex.create ();
    smetrics = Metrics.create ();
  }

let close_session s =
  Atomic.decr s.svc.active_sessions;
  Mutex.protect s.slock (fun () -> Hashtbl.reset s.stmts)

(* Hand [f] to a pool worker; block until it completes, the deadline
   cancels it, or admission control sheds it. The queued counter tracks
   statements only — morsel pump jobs the statements themselves submit to
   the same pool never count against admission. *)
let submit t ~deadline (f : unit -> ('a, error) result) : ('a, error) result =
  let iv = Ivar.create () in
  if Atomic.get t.stopping then Error Shutting_down
  else if Atomic.get t.queued >= t.config.queue_capacity then begin
    Metrics.record_shed t.metrics;
    Error Queue_full
  end
  else begin
    Atomic.incr t.queued;
    let job () =
      Atomic.decr t.queued;
      if Unix.gettimeofday () > deadline then Ivar.fill iv (Error Timeout)
      else
        let r =
          try f () with
          | Core.Executor.Interrupted -> Error Timeout
          | exn -> Error (Exec_error (Printexc.to_string exn))
        in
        Ivar.fill iv r
    in
    if Rkutil.Task_pool.submit t.pool job then Ivar.read iv
    else begin
      Atomic.decr t.queued;
      Error Shutting_down
    end
  end

let record_outcome t s ~latency_s = function
  | Ok _ ->
      Metrics.record_query t.metrics ~latency_s;
      Metrics.record_query s.smetrics ~latency_s
  | Error Timeout ->
      Metrics.record_timeout t.metrics;
      Metrics.record_timeout s.smetrics
  | Error Queue_full -> Metrics.record_shed s.smetrics  (* server side counted at shed *)
  | Error _ ->
      Metrics.record_error t.metrics;
      Metrics.record_error s.smetrics

(* The cached SELECT path: plan-cache lookup on (template, epoch, k);
   hits rebind k in place, misses (re-)optimize and store the variant. *)
let run_template sess ?timeout_s ?k (tpl : Sqlfront.Sql.template) =
  let t = sess.svc in
  let timeout = Option.value timeout_s ~default:t.config.default_timeout_s in
  let start = Unix.gettimeofday () in
  let deadline = start +. timeout in
  let eff_k =
    match k with Some _ -> k | None -> tpl.Sqlfront.Sql.tpl_inline_k
  in
  let epoch = Storage.Catalog.stats_epoch t.cat in
  let result =
    submit t ~deadline (fun () ->
        let interrupt () = Unix.gettimeofday () > deadline in
        let exec prepared ~cached ~reoptimized =
          Rwlock.with_read t.lock (fun () ->
              match
                Sqlfront.Sql.run_prepared ~interrupt ~pool:t.pool t.cat
                  prepared
              with
              | Ok ans -> Ok (ans, cached, reoptimized)
              | Error e -> Error (Exec_error e))
        in
        match
          Plan_cache.find t.cache ~key:tpl.Sqlfront.Sql.tpl_text ~epoch ~k:eff_k
        with
        | Plan_cache.Hit p -> exec p ~cached:true ~reoptimized:false
        | (Plan_cache.Stale | Plan_cache.Interval_miss | Plan_cache.Absent) as
          miss -> (
            match Sqlfront.Sql.instantiate tpl ?k () with
            | Error e -> Error (Bind_error e)
            | Ok ast -> (
                match
                  Rwlock.with_read t.lock (fun () ->
                      Sqlfront.Sql.prepare_ast ~dop:t.config.dop t.cat ast)
                with
                | Error e -> Error (Plan_error e)
                | Ok p ->
                    Plan_cache.store t.cache ~key:tpl.Sqlfront.Sql.tpl_text
                      ~epoch p;
                    exec p ~cached:false
                      ~reoptimized:(miss <> Plan_cache.Absent))))
  in
  let latency_s = Unix.gettimeofday () -. start in
  record_outcome t sess ~latency_s result;
  Result.map
    (fun ((ans : Sqlfront.Sql.answer), cached, reoptimized) ->
      {
        columns = ans.Sqlfront.Sql.columns;
        rows = ans.Sqlfront.Sql.rows;
        scores = ans.Sqlfront.Sql.scores;
        affected = None;
        cached;
        reoptimized;
        latency_s;
      })
    result

let prepare sess ~name sql =
  match Sqlfront.Sql.template_of_sql sql with
  | Error e ->
      Metrics.record_error sess.svc.metrics;
      Metrics.record_error sess.smetrics;
      Error (Parse_error e)
  | Ok tpl ->
      Mutex.protect sess.slock (fun () -> Hashtbl.replace sess.stmts name tpl);
      Ok tpl

let execute_prepared sess ?timeout_s ?k name =
  match Mutex.protect sess.slock (fun () -> Hashtbl.find_opt sess.stmts name) with
  | None -> Error (Unknown_prepared name)
  | Some tpl -> run_template sess ?timeout_s ?k tpl

(* Peek at the leading keyword to route DML to the write-locked path. *)
let is_dml text =
  let text = String.trim text in
  let n = String.length text in
  let rec word_end i =
    if i < n && (text.[i] = '_' || (text.[i] >= 'a' && text.[i] <= 'z')
                 || (text.[i] >= 'A' && text.[i] <= 'Z'))
    then word_end (i + 1)
    else i
  in
  match String.lowercase_ascii (String.sub text 0 (word_end 0)) with
  | "insert" | "delete" -> true
  | _ -> false

let run_dml sess ?timeout_s text =
  let t = sess.svc in
  let timeout = Option.value timeout_s ~default:t.config.default_timeout_s in
  let start = Unix.gettimeofday () in
  let deadline = start +. timeout in
  let result =
    submit t ~deadline (fun () ->
        Rwlock.with_write t.lock (fun () ->
            match Sqlfront.Sql.execute t.cat text with
            | Ok (Sqlfront.Sql.Affected n) -> Ok n
            | Ok (Sqlfront.Sql.Rows _) ->
                Error (Exec_error "DML statement returned rows")
            | Error e -> Error (Exec_error e)))
  in
  let latency_s = Unix.gettimeofday () -. start in
  record_outcome t sess ~latency_s result;
  Result.map
    (fun n ->
      {
        columns = [];
        rows = [];
        scores = [];
        affected = Some n;
        cached = false;
        reoptimized = false;
        latency_s;
      })
    result

let query sess ?timeout_s ?k text =
  if is_dml text then run_dml sess ?timeout_s text
  else
    match Sqlfront.Sql.template_of_sql text with
    | Error e ->
        Metrics.record_error sess.svc.metrics;
        Metrics.record_error sess.smetrics;
        Error (Parse_error e)
    | Ok tpl -> run_template sess ?timeout_s ?k tpl

let explain sess text =
  let t = sess.svc in
  match Rwlock.with_read t.lock (fun () -> Sqlfront.Sql.explain t.cat text) with
  | Ok s -> Ok s
  | Error e -> Error (Plan_error e)

let queue_depth t = Atomic.get t.queued

let cache_stats t = Plan_cache.stats t.cache
let cache_entries t = Plan_cache.entries t.cache

let server_metrics t = Metrics.snapshot t.metrics

let catalog t = t.cat

let stats t =
  let m = Metrics.snapshot t.metrics in
  let c = Plan_cache.stats t.cache in
  Metrics.to_fields m
  @ [
      ("cache_hits", string_of_int c.Plan_cache.hits);
      ("cache_misses", string_of_int c.Plan_cache.misses);
      ("cache_reopt_rebinds", string_of_int c.Plan_cache.reopt_rebinds);
      ("cache_invalidations", string_of_int c.Plan_cache.invalidations);
      ("cache_evictions", string_of_int c.Plan_cache.evictions);
      ("cache_entries", string_of_int c.Plan_cache.entries);
      ("cache_variants", string_of_int c.Plan_cache.variants);
      ("cache_hit_rate", Printf.sprintf "%.3f" (Plan_cache.hit_rate c));
      ("queue_depth", string_of_int (queue_depth t));
      ("workers", string_of_int t.config.workers);
      ("dop", string_of_int t.config.dop);
      ("sessions", string_of_int (Atomic.get t.active_sessions));
      ("stats_epoch", string_of_int (Storage.Catalog.stats_epoch t.cat));
    ]

let session_stats s =
  let m = Metrics.snapshot s.smetrics in
  Metrics.to_fields m
  @ [
      ( "prepared",
        string_of_int
          (Mutex.protect s.slock (fun () -> Hashtbl.length s.stmts)) );
    ]
