(** Server- and session-level execution metrics.

    Counters plus a bounded ring of latency samples from which p50/p95 are
    computed on demand. All operations are mutex-protected so worker domains
    and connection threads can record concurrently. *)

type t

val create : ?ring_size:int -> unit -> t
(** [ring_size] bounds the latency sample ring (default 4096; oldest
    samples are overwritten). *)

val record_query : t -> latency_s:float -> unit
(** Count a successfully executed statement and record its latency. *)

val record_error : t -> unit
val record_timeout : t -> unit
val record_shed : t -> unit
(** A statement rejected by admission control (worker queue full). *)

type snapshot = {
  queries : int;
  errors : int;
  timeouts : int;
  shed : int;
  p50_ms : float;  (** [nan] until at least one sample is recorded. *)
  p95_ms : float;  (** [nan] until at least one sample is recorded. *)
}

val snapshot : t -> snapshot

val to_fields : snapshot -> (string * string) list
(** Key/value rendering for the STATS protocol reply. *)
