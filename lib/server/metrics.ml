type t = {
  lock : Rkutil.Latch.t;
  mutable queries : int;
  mutable errors : int;
  mutable timeouts : int;
  mutable shed : int;
  ring : float array;  (* latency samples, seconds *)
  mutable ring_len : int;  (* number of valid samples, <= Array.length ring *)
  mutable ring_next : int;  (* next write position *)
}

let create ?(ring_size = 4096) () =
  {
    lock = Rkutil.Latch.create ~name:"server.metrics" ~rank:50 ();
    queries = 0;
    errors = 0;
    timeouts = 0;
    shed = 0;
    ring = Array.make (max 1 ring_size) 0.0;
    ring_len = 0;
    ring_next = 0;
  }

let record_query t ~latency_s =
  Rkutil.Latch.protect t.lock (fun () ->
      t.queries <- t.queries + 1;
      let n = Array.length t.ring in
      t.ring.(t.ring_next) <- latency_s;
      t.ring_next <- (t.ring_next + 1) mod n;
      if t.ring_len < n then t.ring_len <- t.ring_len + 1)

let record_error t = Rkutil.Latch.protect t.lock (fun () -> t.errors <- t.errors + 1)

let record_timeout t =
  Rkutil.Latch.protect t.lock (fun () -> t.timeouts <- t.timeouts + 1)

let record_shed t = Rkutil.Latch.protect t.lock (fun () -> t.shed <- t.shed + 1)

type snapshot = {
  queries : int;
  errors : int;
  timeouts : int;
  shed : int;
  p50_ms : float;
  p95_ms : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else
    let idx = int_of_float (ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

let snapshot t =
  Rkutil.Latch.protect t.lock (fun () ->
      let samples = Array.sub t.ring 0 t.ring_len in
      Array.sort compare samples;
      {
        queries = t.queries;
        errors = t.errors;
        timeouts = t.timeouts;
        shed = t.shed;
        p50_ms = percentile samples 0.50 *. 1000.0;
        p95_ms = percentile samples 0.95 *. 1000.0;
      })

let to_fields s =
  let ms v = if Float.is_nan v then "-" else Printf.sprintf "%.3f" v in
  [
    ("queries", string_of_int s.queries);
    ("errors", string_of_int s.errors);
    ("timeouts", string_of_int s.timeouts);
    ("shed", string_of_int s.shed);
    ("p50_ms", ms s.p50_ms);
    ("p95_ms", ms s.p95_ms);
  ]
