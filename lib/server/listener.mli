(** Socket front end for the query service.

    Listens on a Unix-domain socket or a TCP port, spawning one system
    thread per connection (socket I/O is blocking; query execution happens
    on the service's worker domains, so connection threads spend their
    time parked in [read]/[write]). Each connection gets its own
    {!Service.session} — prepared statements are session-scoped.

    [SHUTDOWN] (or {!stop}) closes the listener, disconnects clients and
    drains the worker pool. *)

type endpoint =
  | Unix_socket of string  (** Filesystem path. *)
  | Tcp of string * int  (** Bind host, port. *)

val pp_endpoint : Format.formatter -> endpoint -> unit

val max_line_bytes : int
(** Per-command line limit (bytes, newline excluded). A longer line is
    answered with [ERR PROTOCOL] and discarded; the connection remains
    usable. *)

val read_line_bounded : in_channel -> [ `Eof | `Overflow | `Line of string ]
(** Read one newline-terminated command of at most {!max_line_bytes}
    bytes; an overlong line is drained through its newline and reported
    as [`Overflow], keeping the stream framed. Shared with the shard
    coordinator's front end. *)

type t

val start : ?config:Service.config -> endpoint -> Storage.Catalog.t -> t
(** Bind, listen and start accepting. Raises [Unix.Unix_error] if the
    endpoint cannot be bound. An existing Unix-socket file is replaced. *)

val service : t -> Service.t

val stop : t -> unit
(** Idempotent: close the listener and all connections, shut the service
    down. *)

val wait : t -> unit
(** Block until the server stops (e.g. a client sent [SHUTDOWN]). *)
