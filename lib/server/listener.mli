(** Socket front end for the query service.

    Listens on a Unix-domain socket or a TCP port, spawning one system
    thread per connection (socket I/O is blocking; query execution happens
    on the service's worker domains, so connection threads spend their
    time parked in [read]/[write]). Each connection gets its own
    {!Service.session} — prepared statements are session-scoped.

    [SHUTDOWN] (or {!stop}) closes the listener, disconnects clients and
    drains the worker pool. *)

type endpoint =
  | Unix_socket of string  (** Filesystem path. *)
  | Tcp of string * int  (** Bind host, port. *)

val pp_endpoint : Format.formatter -> endpoint -> unit

type t

val start : ?config:Service.config -> endpoint -> Storage.Catalog.t -> t
(** Bind, listen and start accepting. Raises [Unix.Unix_error] if the
    endpoint cannot be bound. An existing Unix-socket file is replaced. *)

val service : t -> Service.t

val stop : t -> unit
(** Idempotent: close the listener and all connections, shut the service
    down. *)

val wait : t -> unit
(** Block until the server stops (e.g. a client sent [SHUTDOWN]). *)
