(** The concurrent query service.

    A {!t} owns a catalog, a rank-aware plan cache ({!Plan_cache}), a
    writer-preferring catalog lock ({!Rwlock}) and a pool of OCaml 5
    {!Domain} workers fed by a bounded job queue. Connection threads (or
    in-process callers) open {!session}s and submit statements:

    - SELECTs are normalized to a template ({!Sqlfront.Sql.template}),
      looked up in the plan cache keyed on (template text, catalog stats
      epoch) and the bound [k], and executed on a worker under the shared
      read lock. A cache hit rebinds [k] without re-optimizing (valid by
      the plan's recorded k-interval); an interval miss re-optimizes and
      stores the new variant.
    - INSERT / DELETE run on a worker under the exclusive write lock
      (catalog structures are not safe under concurrent mutation). The
      statistics refresh bumps the catalog's stats epoch, lazily
      invalidating cached plans.

    Admission control: when the job queue is full the statement is shed
    immediately with {!Queue_full}. Every statement carries a deadline;
    expired queued jobs are cancelled without running, and running queries
    are interrupted cooperatively at operator [next()] boundaries. *)

type config = {
  workers : int;  (** Worker domains (>= 1). *)
  queue_capacity : int;  (** Bounded job queue; overflow is shed. *)
  cache_capacity : int;  (** Plan-cache templates (LRU). *)
  default_timeout_s : float;  (** Per-statement deadline when unspecified. *)
  dop : int;
      (** Intra-query parallel degree handed to the optimizer ([1] =
          serial plans only). Exchange morsel pumps run on the {e same}
          worker pool as whole statements; a saturated pool costs
          parallelism, never progress, because exchange consumers
          help-run their own unclaimed morsels. *)
}

val default_config : config

type error =
  | Parse_error of string
  | Bind_error of string
  | Plan_error of string
  | Exec_error of string
  | Timeout
  | Queue_full of string
      (** Shed by admission control; carries the identifier of the shed
          statement — the prepared/cursor name when one exists, the SQL
          text otherwise — so clients can tell {e which} in-flight
          statement was refused. *)
  | Unknown_prepared of string
  | Unknown_cursor of string
  | Cursor_stale of string
      (** Carries the cursor's name. The statistics epoch of one of the
          cursor's own tables moved
          (DML ran against them) since the cursor was opened: its
          materialized enumeration state is stale. The cursor is closed;
          re-EXECUTE to re-plan. DML on unrelated tables does {e not}
          invalidate the cursor. *)
  | Shutting_down

val error_code : error -> string
(** Stable machine-readable code, e.g. ["TIMEOUT"], ["QUEUE_FULL"]. *)

val error_message : error -> string

type reply = {
  columns : string list;
  rows : Relalg.Tuple.t list;
  scores : float list;  (** Per-row ranking score; empty when unranked. *)
  affected : int option;  (** [Some n] for DML, [None] for queries. *)
  cached : bool;  (** Plan came from the cache (possibly k-rebound). *)
  reoptimized : bool;
      (** The template was cached but no variant covered this [k] (or the
          stats epoch moved): the service re-optimized on rebind. *)
  latency_s : float;
}

type t
type session

val create : ?config:config -> Storage.Catalog.t -> t
(** Spawns the worker domains. *)

val shutdown : t -> unit
(** Stop accepting work, drain queued jobs, join the worker domains.
    Idempotent. *)

val begin_drain : t -> unit
(** Graceful shutdown, phase one: new statements are rejected with
    [Shutting_down] while statements already admitted keep running and
    deliver their replies. *)

val drain : ?timeout_s:float -> t -> bool
(** Phase two: block until every in-flight statement has delivered its
    reply (or [timeout_s] elapses). Returns [true] if fully drained. *)

val inflight : t -> int
(** Statements admitted whose reply has not been delivered yet. *)

val sessions : t -> int
(** Currently open sessions. *)

val open_session : t -> session
val close_session : session -> unit

val set_timeout : session -> float option -> unit
(** Override this session's default statement deadline ([None] restores
    the server config default). An explicit per-call [?timeout_s] still
    wins. The coordinator uses this to propagate its remaining deadline
    to shard sessions before scattering. *)

val prepare :
  session -> name:string -> string -> (Sqlfront.Sql.template, error) result
(** Parse and normalize a SELECT, registering it under [name] in this
    session. [LIMIT ?] makes [k] a bind parameter; a literal [LIMIT n]
    doubles as the default binding. *)

val execute_prepared :
  session -> ?timeout_s:float -> ?k:int -> string -> (reply, error) result
(** Execute a prepared statement, binding [k] if given. A [k < 1] is a
    {!Bind_error} rejected before the plan cache is touched. When the
    chosen plan is cursor-eligible ({!Sqlfront.Sql.cursor_eligible}) the
    first k answers are served through a cursor that stays open under the
    statement's name for {!fetch} continuations; any cursor previously
    open under that name is dropped first. *)

val fetch :
  session -> ?timeout_s:float -> name:string -> int -> (reply, error) result
(** [FETCH NEXT n]: the next [n] ranked answers of the cursor opened by
    {!execute_prepared}, in non-increasing score order, tuple-identical
    to the continuation of a one-shot execution at a larger k. Fewer than
    [n] rows mean the enumeration is exhausted. Each fetch runs as its
    own pool job with its own deadline and re-validates the per-table
    stats epoch of the cursor's FROM tables — on mismatch the cursor is
    closed and {!Cursor_stale} returned. [n < 1] is a {!Bind_error}. *)

val close_cursor : session -> string -> (unit, error) result
(** Close and drop the session's cursor under this name. *)

val query :
  session -> ?timeout_s:float -> ?k:int -> string -> (reply, error) result
(** One-shot statement: SELECT/WITH through the plan cache, INSERT/DELETE
    serialized under the write lock. *)

val explain : session -> string -> (string, error) result
(** Optimizer plan description (includes the plan's k-validity interval
    and the catalog stats epoch); runs inline, not on a worker. *)

val rank_probe :
  session ->
  ?dense:bool ->
  table:string ->
  column:string ->
  float ->
  (int option * int, error) result
(** [RANK t.c OF v]: the minimum 1-based rank a row scoring [v] on the
    order-statistic index keyed on [t.c] holds (or would hold), and the
    total ranked (non-NaN) entry count. With [~dense:true] both numbers
    count {e distinct} scores instead ([DENSE_RANK] semantics: tie blocks
    share one number, so the total is the number of distinct scores).
    [None] for a NaN probe value.
    Requires an index keyed on exactly that column ({!Plan_error}
    otherwise); runs inline under the read lock — O(log n) node visits. *)

val stats : t -> (string * string) list
(** Server-wide fields: query/error/timeout/shed counters, p50/p95
    latency, plan-cache hits/misses/reopt-on-rebind/invalidations/
    evictions/hit-rate, queue depth, worker count, sessions, epoch. *)

val session_stats : session -> (string * string) list

val cache_stats : t -> Plan_cache.stats

(** Snapshot of every cached plan variant as [(template key, stats epoch,
    prepared plan)] — audited by the planlint cache rule (PL10). *)
val cache_entries : t -> (string * int * Sqlfront.Sql.prepared) list
val server_metrics : t -> Metrics.snapshot
val queue_depth : t -> int
val catalog : t -> Storage.Catalog.t
