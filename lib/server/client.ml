type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect endpoint =
  let fd, addr =
    match endpoint with
    | Listener.Unix_socket path ->
        (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | Listener.Tcp (host, port) ->
        ( Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0,
          Unix.ADDR_INET (Unix.inet_addr_of_string host, port) )
  in
  (try Unix.connect fd addr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let request t line =
  (* Round-trip over a socket: must never run while a Short-class latch
     is held (the coordinator's Long-class lock legitimately covers it). *)
  Rkutil.Latch.blocking "client.rpc";
  match
    output_string t.oc line;
    output_char t.oc '\n';
    flush t.oc;
    input_line t.ic
  with
  | exception (End_of_file | Sys_error _ | Unix.Unix_error _) ->
      Error "connection closed"
  | header -> (
      match Protocol.parse_header header with
      | Error e -> Error e
      | Ok response -> (
          let n = Protocol.payload_count header in
          match List.init n (fun _ -> input_line t.ic) with
          | exception (End_of_file | Sys_error _) ->
              Error "connection closed mid-payload"
          | payload -> Ok { response with Protocol.payload }))

let close t =
  (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()
