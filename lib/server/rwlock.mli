(** A writer-preferring read/write lock.

    The query service executes read-only queries concurrently on its worker
    domains but must serialize DML (inserts / deletes / ANALYZE mutate the
    catalog's hashtables and B+-trees, which are not safe under concurrent
    writers). Readers share the lock; a waiting writer blocks new readers so
    update statements cannot starve under a steady query load. *)

type t

val create : unit -> t

val with_read : t -> (unit -> 'a) -> 'a
(** Run under a shared (read) lock; exception-safe. *)

val with_write : t -> (unit -> 'a) -> 'a
(** Run under the exclusive (write) lock; exception-safe. *)
