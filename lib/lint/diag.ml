type severity = Error | Warning | Info

type t = {
  rule : string;
  severity : severity;
  path : string;
  message : string;
  hint : string option;
}

let make ~rule ?(severity = Error) ?hint ~path message =
  { rule; severity; path; message; hint }

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let is_error d = d.severity = Error

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let sort ds =
  List.stable_sort (fun a b -> compare (severity_rank a.severity) (severity_rank b.severity)) ds

let pp fmt d =
  Format.fprintf fmt "%s %s %s: %s" (severity_name d.severity) d.rule d.path
    d.message;
  match d.hint with
  | Some h -> Format.fprintf fmt " (hint: %s)" h
  | None -> ()

let to_string d = Format.asprintf "%a" pp d

(* Hand-rolled JSON: the toolchain has no JSON library baked in and the
   diagnostic payload is flat strings. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let hint =
    match d.hint with
    | Some h -> Printf.sprintf ",\"hint\":\"%s\"" (json_escape h)
    | None -> ""
  in
  Printf.sprintf
    "{\"rule\":\"%s\",\"severity\":\"%s\",\"path\":\"%s\",\"message\":\"%s\"%s}"
    (json_escape d.rule)
    (severity_name d.severity)
    (json_escape d.path) (json_escape d.message) hint

let list_to_json ds =
  "[" ^ String.concat "," (List.map to_json ds) ^ "]"
