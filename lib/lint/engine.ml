module Cost_model = Core.Cost_model

let errors ds = List.filter Diag.is_error ds

let structural ?query ?dop ?vectorized catalog plan =
  let facts = Walk.derive catalog plan in
  Rules.schema_rule catalog facts
  @ Rules.order_rule facts
  @ Rules.pipeline_rule facts
  @ Rules.exchange_rule ?dop facts
  @ Rules.vector_rule ?vectorized facts
  @ Rules.rank_rule catalog facts
  @ Rules.shard_rule facts
  @ match query with None -> [] | Some q -> Rules.filter_rule ~query:q facts

let estimate_rules env plan =
  Rules.cost_rule env plan
  @ Rules.depth_rule env plan
  @
  (* propagation only means something for ranked plans: Figure 8 pushes the
     query's k down through rank joins *)
  if Core.Plan.has_rank_join plan then
    Rules.propagation_rule env ~k:env.Cost_model.k_min plan
  else []

let lint_plan ?query ?env catalog plan =
  Diag.sort
    (structural ?query catalog plan
    @ match env with None -> [] | Some env -> estimate_rules env plan)

let lint_subplan env ?key (sp : Core.Memo.subplan) =
  let catalog = env.Cost_model.catalog in
  Diag.sort
    (structural ~query:env.Cost_model.query ~dop:sp.Core.Memo.dop
       ~vectorized:sp.Core.Memo.vectorized catalog sp.Core.Memo.plan
    @ Rules.subplan_rule env ?key sp)

let lint_memo env memo =
  let catalog = env.Cost_model.catalog in
  Diag.sort
    (Rules.memo_rule env memo
    @ List.concat_map
        (fun key ->
          List.concat_map
            (fun (sp : Core.Memo.subplan) ->
              structural ~query:env.Cost_model.query catalog sp.Core.Memo.plan)
            (Core.Memo.plans memo key))
        (Core.Memo.entry_keys memo))

let lint_planned (p : Core.Optimizer.planned) =
  let env = p.Core.Optimizer.env in
  Diag.sort
    (structural ~query:p.Core.Optimizer.query env.Cost_model.catalog
       p.Core.Optimizer.plan
    @ estimate_rules env p.Core.Optimizer.plan
    @ Rules.topk_rule p
    @ Rules.enumerate_rule p)

let lint_prepared ~key ~epoch (prepared : Sqlfront.Sql.prepared) =
  Diag.sort
    (Rules.cache_entry_rule ~key ~epoch prepared
    @ lint_planned prepared.Sqlfront.Sql.planned)

let check catalog plan =
  match errors (lint_plan catalog plan) with
  | [] -> Ok ()
  | diag :: _ -> Error (Diag.to_string diag)

module Emit = struct
  exception Lint_error of Diag.t

  let enabled = ref false
  let fail_fast = ref false
  let count = ref 0
  let acc : Diag.t list ref = ref []

  let record ds =
    incr count;
    match errors ds with
    | [] -> ()
    | errs ->
        acc := List.rev_append errs !acc;
        if !fail_fast then raise (Lint_error (List.hd errs))

  let on_retain env ~key sp = if !enabled then record (lint_subplan env ~key sp)
  let on_planned p = if !enabled then record (lint_planned p)

  let install =
    lazy
      (Core.Enumerator.retain_hook := on_retain;
       Core.Optimizer.planned_hook := on_planned)

  let enable ?(fail = false) () =
    Lazy.force install;
    fail_fast := fail;
    enabled := true

  let disable () = enabled := false
  let linted () = !count
  let diagnostics () = List.rev !acc

  let reset () =
    count := 0;
    acc := []
end

(* Make the historical entry point delegate to the lint catalog the moment
   this library is linked. *)
let () = Core.Plan_verify.register check
