open Relalg
module Plan = Core.Plan
module Logical = Core.Logical
module Io = Core.Interesting_orders

type facts = {
  plan : Plan.t;
  path : string;
  schema : Schema.t option;
  produced : Plan.order option;
  streaming : bool;
  children : facts list;
}

(* ------------------------------------------------------------------ *)
(* Schema derivation. Unlike [Plan.schema_of] this never raises: an
   unknown table (or an ill-formed self-join concat) yields [None] and the
   schema rule reports the root cause instead of the walker crashing. *)

let table_schema catalog table =
  Option.map
    (fun ti -> ti.Storage.Catalog.tb_schema)
    (Storage.Catalog.find_table catalog table)

let concat_opt a b =
  match (a, b) with
  | Some a, Some b -> ( try Some (Schema.concat a b) with Invalid_argument _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Order justification. [produced] is the strongest order a node's own
   semantics can guarantee given what its inputs justify; it deliberately
   does NOT call [Plan.order_of] — the claim and the justification must come
   from two implementations for the comparison to mean anything.

   Per-operator reasoning:
   - index scan emits B+-tree key order (validated against the catalog's
     key expression when the index exists);
   - hash join builds right and streams left, INL probes per left tuple,
     plain NL re-runs the inner per left tuple: all three group output by
     left tuple, hence preserve any left order;
   - sort-merge emits ascending left join key, but only when both inputs
     really arrive sorted on their join keys;
   - HRJN/NRJN/HRJN* emit descending combined score, but only when every
     scored input arrives in descending order of its own score expression
     (Expr.equal compares linear forms up to positive scale, so a child
     order of [x] justifies a requirement of [0.5*x]). *)

let order_is child want_dir want_expr =
  match child with
  | Some { Plan.expr; direction } -> direction = want_dir && Expr.equal expr want_expr
  | None -> false

let produced_order plan child_orders =
  let child i = List.nth_opt child_orders i |> Option.join in
  match plan with
  | Plan.Table_scan _ -> None
  | Plan.Index_scan { key; desc; _ } ->
      (* a B+-tree scan emits its key order; whether the named index really
         has this key expression is PL01's finding, not re-derived here *)
      Some { Plan.expr = key; direction = (if desc then Io.Desc else Io.Asc) }
  | Plan.Rank_index_scan { score; _ } ->
      (* a by-rank window emits descending score whichever way it is
         produced: the counted descent walks the score index backwards, the
         fallback sorts internally. Whether the named order-statistic index
         really exists on this score column is PL13's finding. *)
      Some { Plan.expr = score; direction = Io.Desc }
  | Plan.Remote_scan { score; _ } ->
      (* a ranked shard stream claims descending score; whether the pushed
         subquery really orders by it is PL14's finding *)
      Option.map (fun e -> { Plan.expr = e; direction = Io.Desc }) score
  | Plan.Gather_merge { score; inputs; _ } ->
      (* the merge emits descending score only when every shard stream
         arrives already sorted on the same expression *)
      (match score with
      | Some e
        when List.length inputs > 0
             && List.mapi (fun i _ -> order_is (child i) Io.Desc e) inputs
                |> List.for_all Fun.id ->
          Some { Plan.expr = e; direction = Io.Desc }
      | _ -> None)
  | Plan.Filter _ | Plan.Top_k _ -> child 0
  (* the gather drains slots in morsel-index order, so the exchange
     passes its input's order through unchanged *)
  | Plan.Exchange _ -> child 0
  | Plan.Sort { order; _ } -> Some order
  | Plan.Join { algo = Plan.Nested_loops | Plan.Index_nl | Plan.Hash; _ } ->
      child 0
  | Plan.Join { algo = Plan.Sort_merge; cond; _ } ->
      let lkey = Expr.col ~relation:cond.Logical.left_table cond.Logical.left_column
      and rkey =
        Expr.col ~relation:cond.Logical.right_table cond.Logical.right_column
      in
      if order_is (child 0) Io.Asc lkey && order_is (child 1) Io.Asc rkey then
        Some { Plan.expr = lkey; direction = Io.Asc }
      else None
  | Plan.Join { algo = Plan.Hrjn; left_score; right_score; _ } ->
      (* HRJN pulls both inputs in descending score order and thresholds;
         both sides must be scored and sorted for the output claim to hold *)
      (match (left_score, right_score) with
      | Some l, Some r
        when order_is (child 0) Io.Desc l && order_is (child 1) Io.Desc r ->
          Option.map
            (fun e -> { Plan.expr = e; direction = Io.Desc })
            (Plan.combined_score left_score right_score)
      | _ -> None)
  | Plan.Join { algo = Plan.Nrjn; left_score; right_score; _ } ->
      (* NRJN only needs sorted access on the outer: the inner is scanned
         per probe, so the threshold works with an unsorted right input *)
      (match left_score with
      | Some l when order_is (child 0) Io.Desc l ->
          Option.map
            (fun e -> { Plan.expr = e; direction = Io.Desc })
            (Plan.combined_score left_score right_score)
      | _ -> None)
  | Plan.Nary_rank_join { scores; inputs; _ } ->
      (* arity mismatches are PL01's finding; here require each scored
         input to arrive already sorted descending on its own score *)
      let all_sorted =
        List.length scores = List.length inputs
        && List.mapi (fun i s -> order_is (child i) Io.Desc s) scores
           |> List.for_all Fun.id
      in
      if all_sorted && scores <> [] then
        Some
          {
            Plan.expr =
              List.fold_left
                (fun acc e -> Expr.Add (acc, e))
                (List.hd scores) (List.tl scores);
            direction = Io.Desc;
          }
      else None
  | Plan.Any_k { scores; inputs; _ } ->
      (* anyK materializes and indexes its inputs itself, so — unlike the
         rank joins — its descending total-score order needs no input
         order justification, only a sane score list *)
      if scores <> [] && List.length scores = List.length inputs then
        Some
          {
            Plan.expr =
              List.fold_left
                (fun acc e -> Expr.Add (acc, e))
                (List.hd scores) (List.tl scores);
            direction = Io.Desc;
          }
      else None

(* ------------------------------------------------------------------ *)
(* Streaming recomputation: does the node deliver first rows without a
   blocking operator on its producing spine? Each operator drives specific
   inputs before emitting anything: NL/INL/Hash joins drive the left
   (the right is a per-tuple probe or a build side excluded from the
   "time-to-first-row-per-driving-row" property this codebase tracks),
   sort-merge and HRJN pull both sides incrementally, NRJN materialises the
   right, HRJN* round-robins all inputs. *)

let streaming_of plan child_streams =
  let child i = match List.nth_opt child_streams i with Some b -> b | None -> false in
  match plan with
  | Plan.Table_scan _ | Plan.Index_scan _ -> true
  (* indexed windows stream off the leaf chain after one descent; the
     index-less fallback sorts the whole table first *)
  | Plan.Rank_index_scan { index; _ } -> index <> None
  (* a shard stream yields as the shard produces; the threshold merge
     emits as soon as a candidate is proven globally best *)
  | Plan.Remote_scan _ -> true
  | Plan.Gather_merge { inputs; _ } ->
      List.mapi (fun i _ -> child i) inputs |> List.for_all Fun.id
  | Plan.Filter _ | Plan.Top_k _ -> child 0
  (* first results wait on whole morsels: not streaming *)
  | Plan.Exchange _ -> false
  | Plan.Sort _ -> false
  | Plan.Join { algo = Plan.Nested_loops | Plan.Index_nl | Plan.Hash; _ } ->
      child 0
  | Plan.Join { algo = Plan.Sort_merge | Plan.Hrjn; _ } -> child 0 && child 1
  | Plan.Join { algo = Plan.Nrjn; _ } -> child 0
  | Plan.Nary_rank_join { inputs; _ } ->
      List.mapi (fun i _ -> child i) inputs |> List.for_all Fun.id
  (* the build phase drains every input before the first answer *)
  | Plan.Any_k _ -> false

(* ------------------------------------------------------------------ *)

let children_of = function
  | Plan.Table_scan _ | Plan.Index_scan _ | Plan.Rank_index_scan _
  | Plan.Remote_scan _ ->
      []
  | Plan.Gather_merge { inputs; _ } ->
      List.mapi (fun i p -> (p, Printf.sprintf "shard%d" i)) inputs
  | Plan.Filter { input; _ }
  | Plan.Sort { input; _ }
  | Plan.Top_k { input; _ }
  | Plan.Exchange { input; _ } ->
      [ (input, "input") ]
  | Plan.Join { left; right; _ } -> [ (left, "left"); (right, "right") ]
  | Plan.Nary_rank_join { inputs; _ } | Plan.Any_k { inputs; _ } ->
      List.mapi (fun i p -> (p, Printf.sprintf "in%d" i)) inputs

let derive catalog plan =
  let rec go path plan =
    let children =
      List.map (fun (c, seg) -> go (path ^ "/" ^ seg) c) (children_of plan)
    in
    let schema =
      match plan with
      | Plan.Table_scan { table }
      | Plan.Index_scan { table; _ }
      | Plan.Rank_index_scan { table; _ } ->
          table_schema catalog table
      | Plan.Remote_scan { tables; _ } -> (
          (* shards stream SELECT * rows permuted into canonical
             (relation, name) column order — same derivation, None-safe *)
          let base =
            List.fold_left
              (fun acc t -> concat_opt acc (table_schema catalog t))
              (Some (Schema.of_columns []))
              tables
          in
          match base with
          | Some s when tables <> [] ->
              Some
                (Schema.of_columns
                   (List.stable_sort
                      (fun a b ->
                        match compare a.Schema.relation b.Schema.relation with
                        | 0 -> compare a.Schema.name b.Schema.name
                        | c -> c)
                      (Schema.columns s)))
          | _ -> None)
      | Plan.Gather_merge _ -> (
          match children with c :: _ -> c.schema | [] -> None)
      | Plan.Filter _ | Plan.Sort _ | Plan.Top_k _ | Plan.Exchange _ ->
          (match children with [ c ] -> c.schema | _ -> None)
      | Plan.Join _ -> (
          match children with
          | [ l; r ] -> concat_opt l.schema r.schema
          | _ -> None)
      | Plan.Nary_rank_join _ | Plan.Any_k _ -> (
          match children with
          | [] -> None
          | first :: rest ->
              List.fold_left (fun acc c -> concat_opt acc c.schema) first.schema
                rest)
    in
    let produced =
      produced_order plan (List.map (fun c -> c.produced) children)
    in
    let streaming = streaming_of plan (List.map (fun c -> c.streaming) children) in
    { plan; path; schema; produced; streaming; children }
  in
  go "root" plan

let rec iter f facts =
  f facts;
  List.iter (iter f) facts.children

let rec fold f acc facts =
  let acc = f acc facts in
  List.fold_left (fold f) acc facts.children

(* ------------------------------------------------------------------ *)
(* Static expression typing, mirroring Expr's dynamic semantics:
   - arithmetic coerces Int/Float/Bool via to_float but RAISES on strings;
   - comparisons are total but cross-family ones compare by constructor,
     which is never what a query means;
   - And/Or/Not silently collapse non-booleans to false. *)

type family = Fnum | Fstring | Fbool | Fany

let family_name = function
  | Fnum -> "numeric"
  | Fstring -> "string"
  | Fbool -> "bool"
  | Fany -> "null"

let of_dtype = function
  | Value.Tint | Value.Tfloat -> Fnum
  | Value.Tstring -> Fstring
  | Value.Tbool -> Fbool

let ( let* ) = Result.bind

let rec type_of schema expr =
  let numeric2 what a b =
    let* fa = type_of schema a in
    let* fb = type_of schema b in
    match (fa, fb) with
    | (Fstring, _ | _, Fstring) ->
        Error
          (Printf.sprintf "string operand in %s over %s" what
             (Expr.to_string expr))
    | _ -> Ok Fnum
  in
  let boolean what sub =
    let* f = type_of schema sub in
    match f with
    | Fbool | Fany -> Ok Fbool
    | f ->
        Error
          (Printf.sprintf "%s operand of %s is %s, not bool" what
             (Expr.to_string expr) (family_name f))
  in
  match expr with
  | Expr.Const v -> (
      match Value.dtype_of v with None -> Ok Fany | Some d -> Ok (of_dtype d))
  | Expr.Col r -> (
      match
        try Schema.index_of schema ?relation:r.relation r.name
        with Invalid_argument _ -> None
      with
      | None ->
          let q = match r.relation with None -> r.name | Some t -> t ^ "." ^ r.name in
          Error (Printf.sprintf "unbound column %s" q)
      | Some i -> Ok (of_dtype (Schema.nth schema i).Schema.dtype))
  | Expr.Neg e -> (
      let* f = type_of schema e in
      match f with
      | Fstring ->
          Error (Printf.sprintf "string operand in negation %s" (Expr.to_string expr))
      | _ -> Ok Fnum)
  | Expr.Add (a, b) -> numeric2 "addition" a b
  | Expr.Sub (a, b) -> numeric2 "subtraction" a b
  | Expr.Mul (a, b) -> numeric2 "multiplication" a b
  | Expr.Div (a, b) -> numeric2 "division" a b
  | Expr.Cmp (_, a, b) -> (
      let* fa = type_of schema a in
      let* fb = type_of schema b in
      match (fa, fb) with
      | Fany, _ | _, Fany -> Ok Fbool
      | fa, fb when fa = fb -> Ok Fbool
      | Fnum, Fnum -> Ok Fbool
      | fa, fb ->
          Error
            (Printf.sprintf "comparison of %s with %s in %s" (family_name fa)
               (family_name fb) (Expr.to_string expr)))
  | Expr.And (a, b) ->
      let* _ = boolean "left" a in
      boolean "right" b
  | Expr.Or (a, b) ->
      let* _ = boolean "left" a in
      boolean "right" b
  | Expr.Not e -> boolean "inner" e

let check_predicate schema expr =
  let* f = type_of schema expr in
  match f with
  | Fbool | Fany -> Ok ()
  | f ->
      Error
        (Printf.sprintf "predicate %s has type %s, not bool"
           (Expr.to_string expr) (family_name f))

let check_numeric schema expr =
  let* f = type_of schema expr in
  match f with
  | Fnum | Fany -> Ok ()
  | f ->
      Error
        (Printf.sprintf "expression %s has type %s, not numeric"
           (Expr.to_string expr) (family_name f))
