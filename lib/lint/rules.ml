open Relalg
module Plan = Core.Plan
module Logical = Core.Logical
module Cost_model = Core.Cost_model
module Memo = Core.Memo
module Propagate = Core.Propagate
module Depth_model = Core.Depth_model
module Io = Core.Interesting_orders

let catalog =
  [
    ("PL01-schema", "expressions are bound and well-typed at every operator boundary");
    ("PL02-order", "a claimed interesting order is justified by inputs + semantics");
    ("PL03-pipeline", "pipelining flags match the recomputed streaming property");
    ("PL04-filter", "every logical filter and join predicate survives into the physical plan");
    ("PL05-kprop", "propagated k requirements and depths are sane and monotone in k");
    ("PL06-depth", "rank-join depth estimates lie in [1, input cardinality], monotone in k");
    ("PL07-cost", "cost estimates are finite, monotone in x, and dominate consumed inputs");
    ("PL08-memo", "memo entries are valid masks and retained property bits match recomputation");
    ("PL09-topk", "a ranking plan is one Top-k over a justified scoring order; k-interval is sane");
    ("PL10-cache", "plan-cache keys are canonical and bound k lies in the variant's interval");
    ("PL11-exchange", "exchanges sit on morselizable spines with a parallel degree; DOP bits match");
    ("PL12-enum", "the Enumerate bit matches recomputed cursor-resumability; anyK shapes are sound");
    ("PL13-rank", "a by-rank scan's window is sane and its claimed order is justified by an order-statistic index on the scored column");
    ("PL14-shard", "a gather-merge sits over distinct same-score remote shard streams, each bounded at k' >= the gather's k");
    ("PL15-vector", "batched regions (vector spines, fused top-k sink) contain no rank join or exchange; the Vectorized bit matches recomputation");
  ]

let d rule ?hint path fmt = Printf.ksprintf (fun m -> Diag.make ~rule ?hint ~path m) fmt

(* Relative-plus-absolute tolerance for float comparisons: estimates are
   recomputed through the same code paths, so anything beyond rounding noise
   is a real inconsistency. *)
let tol x = 1e-6 *. (1.0 +. Float.abs x)

let ge a b = a >= b -. tol b
let approx a b = Float.abs (a -. b) <= tol b
let bad_float x = Float.is_nan x

(* ------------------------------------------------------------------ *)
(* PL01-schema *)

let rule01 = "PL01-schema"

let check_bound_typed ~path ~what kind schema expr =
  let checker =
    match kind with `Pred -> Walk.check_predicate | `Num -> Walk.check_numeric
  in
  match schema with
  | None -> [] (* input schema underivable: already reported at the scan *)
  | Some s -> (
      match checker s expr with
      | Ok () -> []
      | Error msg -> [ d rule01 path "%s: %s" what msg ])

let schema_node catalog (f : Walk.facts) =
  let path = f.Walk.path in
  let child i = List.nth_opt f.Walk.children i in
  let child_schema i = Option.bind (child i) (fun c -> c.Walk.schema) in
  match f.Walk.plan with
  | Plan.Table_scan { table } -> (
      match Storage.Catalog.find_table catalog table with
      | Some _ -> []
      | None -> [ d rule01 path "unknown table %s" table ])
  | Plan.Index_scan { table; index; key; _ } -> (
      match Storage.Catalog.find_table catalog table with
      | None -> [ d rule01 path "unknown table %s" table ]
      | Some info -> (
          match
            List.find_opt
              (fun ix -> String.equal ix.Storage.Catalog.ix_name index)
              info.Storage.Catalog.tb_indexes
          with
          | None -> [ d rule01 path "unknown index %s on %s" index table ]
          | Some ix ->
              if Expr.equal ix.Storage.Catalog.ix_key key then []
              else
                [
                  d rule01 path
                    ~hint:"scan key must be the index's key expression"
                    "index %s key mismatch: scan claims %s, index is on %s"
                    index (Expr.to_string key)
                    (Expr.to_string ix.Storage.Catalog.ix_key);
                ]))
  | Plan.Rank_index_scan { table; _ } -> (
      (* index existence and key agreement are PL13's finding *)
      match Storage.Catalog.find_table catalog table with
      | Some _ -> []
      | None -> [ d rule01 path "unknown table %s" table ])
  | Plan.Remote_scan { tables; _ } ->
      (* k' soundness and merge-order justification are PL14's findings *)
      List.concat_map
        (fun table ->
          match Storage.Catalog.find_table catalog table with
          | Some _ -> []
          | None -> [ d rule01 path "unknown table %s" table ])
        tables
  | Plan.Gather_merge { inputs; _ } ->
      if inputs = [] then [ d rule01 path "gather over zero shards" ] else []
  | Plan.Filter { pred; _ } ->
      check_bound_typed ~path ~what:"filter predicate" `Pred (child_schema 0) pred
  | Plan.Sort { order; _ } -> (
      (* sort keys may be any well-typed expression (string merge keys are
         legal); scores are checked numeric where they are used as scores *)
      match child_schema 0 with
      | None -> []
      | Some s -> (
          match Walk.type_of s order.Plan.expr with
          | Ok _ -> []
          | Error msg -> [ d rule01 path "sort key: %s" msg ]))
  | Plan.Top_k { k; _ } ->
      if k >= 0 then [] else [ d rule01 path "negative k (%d)" k ]
  | Plan.Exchange _ -> [] (* placement soundness is PL11's finding *)
  | Plan.Join { algo; cond; left_score; right_score; _ } ->
      let lkey = Expr.col ~relation:cond.Logical.left_table cond.Logical.left_column in
      let rkey = Expr.col ~relation:cond.Logical.right_table cond.Logical.right_column in
      let side_key side schema key (table, column) =
        match schema with
        | None -> []
        | Some s ->
            if Expr.bound_by s key then []
            else
              [
                d rule01 path "join key %s.%s not on the %s side" table column
                  side;
              ]
      in
      let score side schema = function
        | None -> []
        | Some e ->
            check_bound_typed ~path
              ~what:(side ^ " score expression")
              `Num schema e
      in
      side_key "left" (child_schema 0) lkey
        (cond.Logical.left_table, cond.Logical.left_column)
      @ side_key "right" (child_schema 1) rkey
          (cond.Logical.right_table, cond.Logical.right_column)
      @ score "left" (child_schema 0) left_score
      @ score "right" (child_schema 1) right_score
      @
      (match algo with
      | Plan.Index_nl -> (
          match child 1 with
          | None -> []
          | Some r -> (
              match Plan.relations r.Walk.plan with
              | [ single ] when String.equal single cond.Logical.right_table -> (
                  match
                    Storage.Catalog.find_index_on_expr catalog
                      ~table:cond.Logical.right_table rkey
                  with
                  | Some _ -> []
                  | None ->
                      [
                        d rule01 path "INL join without an index on %s.%s"
                          cond.Logical.right_table cond.Logical.right_column;
                      ])
              | _ ->
                  [
                    d rule01 path
                      "INL right side must be the single probed relation %s"
                      cond.Logical.right_table;
                  ]))
      | _ -> [])
  | Plan.Nary_rank_join { inputs; scores; key; tables } ->
      if List.length inputs < 2 then
        [ d rule01 path "N-ary rank join needs >= 2 inputs" ]
      else if
        List.length inputs <> List.length scores
        || List.length inputs <> List.length tables
      then [ d rule01 path "N-ary rank join arity mismatch" ]
      else
        List.concat
          (List.mapi
             (fun i (score, table) ->
               let schema = child_schema i in
               let keycol = Expr.col ~relation:table key in
               (match schema with
               | Some s when not (Expr.bound_by s keycol) ->
                   [ d rule01 path "N-ary join key %s.%s unbound" table key ]
               | _ -> [])
               @ check_bound_typed ~path
                   ~what:(Printf.sprintf "N-ary score %d" i)
                   `Num schema score)
             (List.combine scores tables))
  | Plan.Any_k { inputs; scores; keys; _ } ->
      if List.length inputs < 2 then
        [ d rule01 path "anyK needs >= 2 inputs" ]
      else if
        List.length inputs <> List.length scores
        || List.length keys <> List.length inputs - 1
      then [ d rule01 path "anyK arity mismatch (scores or key bindings)" ]
      else
        List.concat
          (List.mapi
             (fun i score ->
               check_bound_typed ~path
                 ~what:(Printf.sprintf "anyK score %d" i)
                 `Num (child_schema i) score)
             scores)
        @ List.concat
            (List.mapi
               (fun j (p, pk, ck) ->
                 let i = j + 1 in
                 if p < 0 || p >= i then
                   [
                     d rule01 path
                       "anyK key %d: parent %d does not precede input %d" j p i;
                   ]
                 else
                   (match child_schema p with
                   | Some s when not (Expr.bound_by s pk) ->
                       [
                         d rule01 path "anyK key %d: parent key %s unbound" j
                           (Expr.to_string pk);
                       ]
                   | _ -> [])
                   @
                   match child_schema i with
                   | Some s when not (Expr.bound_by s ck) ->
                       [
                         d rule01 path "anyK key %d: child key %s unbound" j
                           (Expr.to_string ck);
                       ]
                   | _ -> [])
               keys)

let schema_rule catalog facts =
  Walk.fold (fun acc f -> acc @ schema_node catalog f) [] facts

(* ------------------------------------------------------------------ *)
(* PL02-order *)

let rule02 = "PL02-order"

let order_node (f : Walk.facts) =
  let path = f.Walk.path in
  let missing_scores =
    match f.Walk.plan with
    | Plan.Join { algo = Plan.Hrjn; left_score; right_score; _ } ->
        (match left_score with
        | None -> [ d rule02 path "HRJN left input lacks a score expression" ]
        | Some _ -> [])
        @
        (match right_score with
        | None -> [ d rule02 path "HRJN right input lacks a score expression" ]
        | Some _ -> [])
    | Plan.Join { algo = Plan.Nrjn; left_score = None; _ } ->
        [ d rule02 path "NRJN outer input lacks a score expression" ]
    | _ -> []
  in
  let claim =
    match Plan.order_of f.Walk.plan with
    | None -> []
    | Some o -> (
        match f.Walk.produced with
        | Some p when Plan.order_equal p o -> []
        | _ ->
            [
              d rule02 path
                ~hint:
                  "the inputs do not arrive in the order this operator needs \
                   to produce its claim"
                "%s claims order %s %s it cannot justify"
                (Plan.describe f.Walk.plan)
                (Expr.to_string o.Plan.expr)
                (match o.Plan.direction with Io.Asc -> "ASC" | Io.Desc -> "DESC");
            ])
  in
  missing_scores @ claim

let order_rule facts = Walk.fold (fun acc f -> acc @ order_node f) [] facts

(* ------------------------------------------------------------------ *)
(* PL03-pipeline *)

let rule03 = "PL03-pipeline"

let pipeline_rule ?stored facts =
  let per_node =
    Walk.fold
      (fun acc (f : Walk.facts) ->
        let claimed = Plan.pipelined f.Walk.plan in
        if claimed = f.Walk.streaming then acc
        else
          acc
          @ [
              d rule03 f.Walk.path
                "%s is marked %s but a recomputation says %s"
                (Plan.describe f.Walk.plan)
                (if claimed then "pipelined" else "blocking")
                (if f.Walk.streaming then "pipelined" else "blocking");
            ])
      [] facts
  in
  per_node
  @
  match stored with
  | Some bit when bit <> facts.Walk.streaming ->
      [
        d rule03 facts.Walk.path
          ~hint:"the MEMO property bit disagrees with the plan shape"
          "stored pipelining bit is %b but the plan is %s" bit
          (if facts.Walk.streaming then "pipelined" else "blocking");
      ]
  | _ -> []

(* ------------------------------------------------------------------ *)
(* PL04-filter *)

let rule04 = "PL04-filter"

let rec conjuncts = function
  | Expr.And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

(* Everything the physical plan applies: filter conjuncts, binary join
   conditions, and N-ary shared keys (which imply all pairwise equalities
   among their member tables). *)
type applied = {
  filters : Expr.t list;
  join_conds : Logical.join_pred list;
  nary : (string * string list) list;  (* shared key, member tables *)
}

let applied_of facts =
  Walk.fold
    (fun acc (f : Walk.facts) ->
      match f.Walk.plan with
      | Plan.Filter { pred; _ } ->
          { acc with filters = conjuncts pred @ acc.filters }
      | Plan.Join { cond; _ } -> { acc with join_conds = cond :: acc.join_conds }
      | Plan.Nary_rank_join { key; tables; _ } ->
          { acc with nary = (key, tables) :: acc.nary }
      | Plan.Any_k { keys; _ } ->
          (* each key binding enforces parent_key = child_key, the same
             conjunct shape a residual filter would carry *)
          let eqs =
            List.map (fun (_, pk, ck) -> Expr.Cmp (Expr.Eq, pk, ck)) keys
          in
          { acc with filters = eqs @ acc.filters }
      | _ -> acc)
    { filters = []; join_conds = []; nary = [] }
    facts

let same_pred (a : Logical.join_pred) (b : Logical.join_pred) =
  (String.equal a.Logical.left_table b.Logical.left_table
  && String.equal a.Logical.left_column b.Logical.left_column
  && String.equal a.Logical.right_table b.Logical.right_table
  && String.equal a.Logical.right_column b.Logical.right_column)
  || String.equal a.Logical.left_table b.Logical.right_table
     && String.equal a.Logical.left_column b.Logical.right_column
     && String.equal a.Logical.right_table b.Logical.left_table
     && String.equal a.Logical.right_column b.Logical.left_column

(* A residual join predicate shows up as the filter conjunct
   [l.c1 = r.c2] (either orientation). *)
let filter_implements (j : Logical.join_pred) = function
  | Expr.Cmp
      ( Expr.Eq,
        Expr.Col { relation = Some at; name = ac },
        Expr.Col { relation = Some bt; name = bc } ) ->
      same_pred j
        {
          Logical.left_table = at;
          left_column = ac;
          right_table = bt;
          right_column = bc;
        }
  | _ -> false

let nary_implements (j : Logical.join_pred) (key, tables) =
  String.equal j.Logical.left_column key
  && String.equal j.Logical.right_column key
  && List.exists (String.equal j.Logical.left_table) tables
  && List.exists (String.equal j.Logical.right_table) tables

let filter_rule ~query facts =
  let applied = applied_of facts in
  let covered = Plan.relations facts.Walk.plan in
  let has r = List.exists (String.equal r) covered in
  let path = facts.Walk.path in
  let missing_filters =
    List.concat_map
      (fun (b : Logical.base) ->
        match b.Logical.filter with
        | Some pred when has b.Logical.name ->
            List.filter_map
              (fun c ->
                if List.exists (Expr.equal c) applied.filters then None
                else
                  Some
                    (d rule04 path
                       ~hint:
                         "the access path or join dropped a selection the \
                          query requires"
                       "filter %s on %s is not applied anywhere in the plan"
                       (Expr.to_string c) b.Logical.name))
              (conjuncts pred)
        | _ -> [])
      query.Logical.relations
  in
  let missing_joins =
    List.filter_map
      (fun (j : Logical.join_pred) ->
        if not (has j.Logical.left_table && has j.Logical.right_table) then None
        else if
          List.exists (same_pred j) applied.join_conds
          || List.exists (filter_implements j) applied.filters
          || List.exists (nary_implements j) applied.nary
        then None
        else
          Some
            (d rule04 path
               "join predicate %s.%s = %s.%s is not applied anywhere in the \
                plan"
               j.Logical.left_table j.Logical.left_column j.Logical.right_table
               j.Logical.right_column))
      query.Logical.joins
  in
  missing_filters @ missing_joins

(* ------------------------------------------------------------------ *)
(* PL05-kprop *)

let rule05 = "PL05-kprop"

(* Shared by PL05 and PL06: bound checks on one rank join's depth pair. *)
let check_depths_at ~rule ~path ~card_left ~card_right
    (depths : Depth_model.depths) =
  let side name dv card =
    if bad_float dv || dv = Float.infinity then
      [ d rule path "%s depth is not finite (%g)" name dv ]
    else if dv < 1.0 -. tol 1.0 then
      [ d rule path "%s depth %g is below 1" name dv ]
    else if not (ge (Float.max 1.0 card) dv) then
      [
        d rule path
          ~hint:"an operator cannot read more tuples than its input holds"
          "%s depth %g exceeds input cardinality %g" name dv card;
      ]
    else []
  in
  side "left" depths.Depth_model.d_left card_left
  @ side "right" depths.Depth_model.d_right card_right

let check_propagation env ~k (ann : Propagate.annotation) =
  let root_required = float_of_int (max 1 k) in
  let root =
    if approx ann.Propagate.required root_required then []
    else
      [
        d rule05 "prop:root" "root requirement is %g, expected %g"
          ann.Propagate.required root_required;
      ]
  in
  let rec go path (a : Propagate.annotation) =
    let here =
      (if bad_float a.Propagate.required then
         [ d rule05 path "requirement is NaN" ]
       else if a.Propagate.required < 0.0 then
         [ d rule05 path "requirement is negative (%g)" a.Propagate.required ]
       else [])
      @
      match (a.Propagate.depths, a.Propagate.node) with
      | Some depths, Plan.Join { left; right; _ } ->
          let card p = (Cost_model.estimate env p).Cost_model.rows in
          check_depths_at ~rule:rule05 ~path ~card_left:(card left)
            ~card_right:(card right) depths
      | _ -> []
    in
    here
    @ List.concat
        (List.mapi
           (fun i c -> go (Printf.sprintf "%s/%d" path i) c)
           a.Propagate.children)
  in
  root @ go "prop:root" ann

let rec zip_monotone path (a : Propagate.annotation) (b : Propagate.annotation)
    =
  let here =
    (if ge b.Propagate.required a.Propagate.required then []
     else
       [
         d rule05 path
           "requirement shrinks as k grows: %g at k, %g at 2k"
           a.Propagate.required b.Propagate.required;
       ])
    @
    match (a.Propagate.depths, b.Propagate.depths) with
    | Some da, Some db ->
        (if ge db.Depth_model.d_left da.Depth_model.d_left then []
         else
           [
             d rule05 path "left depth shrinks as k grows: %g at k, %g at 2k"
               da.Depth_model.d_left db.Depth_model.d_left;
           ])
        @
        if ge db.Depth_model.d_right da.Depth_model.d_right then []
        else
          [
            d rule05 path "right depth shrinks as k grows: %g at k, %g at 2k"
              da.Depth_model.d_right db.Depth_model.d_right;
          ]
    | _ -> []
  in
  here
  @ List.concat
      (List.mapi
         (fun i (ca, cb) -> zip_monotone (Printf.sprintf "%s/%d" path i) ca cb)
         (List.combine a.Propagate.children b.Propagate.children))

let propagation_rule env ~k plan =
  let k = max 1 k in
  let ann = Propagate.run env ~k plan in
  let ann2 = Propagate.run env ~k:(2 * k) plan in
  check_propagation env ~k ann @ zip_monotone "prop:root" ann ann2

(* ------------------------------------------------------------------ *)
(* PL06-depth *)

let rule06 = "PL06-depth"

let check_depths ~path ~card_left ~card_right depths =
  check_depths_at ~rule:rule06 ~path ~card_left ~card_right depths

let depth_rule env plan =
  let k1 = float_of_int (max 1 env.Cost_model.k_min) in
  let rec go path plan =
    let here =
      match plan with
      | Plan.Join { algo = Plan.Hrjn | Plan.Nrjn; cond; left; right; _ } ->
          let card p = (Cost_model.estimate env p).Cost_model.rows in
          let at k =
            Cost_model.rank_join_depths env plan ~k ~cond ~left ~right
          in
          let d1 = at k1 and d2 = at (2.0 *. k1) in
          check_depths ~path ~card_left:(card left) ~card_right:(card right) d1
          @ check_depths ~path ~card_left:(card left) ~card_right:(card right)
              d2
          @ (if ge d2.Depth_model.d_left d1.Depth_model.d_left then []
             else
               [
                 d rule06 path
                   "left depth shrinks as k grows: %g at k=%g, %g at k=%g"
                   d1.Depth_model.d_left k1 d2.Depth_model.d_left (2.0 *. k1);
               ])
          @
          if ge d2.Depth_model.d_right d1.Depth_model.d_right then []
          else
            [
              d rule06 path
                "right depth shrinks as k grows: %g at k=%g, %g at k=%g"
                d1.Depth_model.d_right k1 d2.Depth_model.d_right (2.0 *. k1);
            ]
      | _ -> []
    in
    here
    @ List.concat
        (List.map
           (fun (c, seg) -> go (path ^ "/" ^ seg) c)
           (match plan with
           | Plan.Table_scan _ | Plan.Index_scan _ | Plan.Rank_index_scan _
           | Plan.Remote_scan _ ->
               []
           | Plan.Filter { input; _ }
           | Plan.Sort { input; _ }
           | Plan.Top_k { input; _ }
           | Plan.Exchange { input; _ } ->
               [ (input, "input") ]
           | Plan.Join { left; right; _ } -> [ (left, "left"); (right, "right") ]
           | Plan.Nary_rank_join { inputs; _ } | Plan.Any_k { inputs; _ } ->
               List.mapi (fun i p -> (p, Printf.sprintf "in%d" i)) inputs
           | Plan.Gather_merge { inputs; _ } ->
               List.mapi (fun i p -> (p, Printf.sprintf "shard%d" i)) inputs))
  in
  go "plan:root" plan

(* ------------------------------------------------------------------ *)
(* PL07-cost *)

let rule07 = "PL07-cost"

let check_estimate ~path ?child_floor (est : Cost_model.estimate) =
  let basic =
    (if bad_float est.Cost_model.rows || est.Cost_model.rows < 0.0 then
       [ d rule07 path "estimated rows is %g" est.Cost_model.rows ]
     else [])
    @
    if
      bad_float est.Cost_model.total_cost
      || est.Cost_model.total_cost < 0.0
      || est.Cost_model.total_cost = Float.infinity
    then [ d rule07 path "total cost is %g" est.Cost_model.total_cost ]
    else []
  in
  if basic <> [] then basic
  else
    let rows = Float.max 1.0 est.Cost_model.rows in
    let samples =
      [ 1.0; rows /. 4.0; rows /. 2.0; (3.0 *. rows) /. 4.0; rows; 2.0 *. rows ]
      |> List.map (Float.max 1.0)
    in
    let costs = List.map est.Cost_model.cost_at samples in
    let finite =
      List.concat
        (List.map2
           (fun x c ->
             if bad_float c || c < 0.0 || c = Float.infinity then
               [ d rule07 path "cost_at %g is %g" x c ]
             else [])
           samples costs)
    in
    let rec mono = function
      | (x1, c1) :: ((x2, c2) :: _ as rest) ->
          (if ge c2 c1 then []
           else
             [
               d rule07 path
                 ~hint:"producing more rows can never cost less"
                 "cost_at is not monotone: cost_at %g = %g but cost_at %g = %g"
                 x1 c1 x2 c2;
             ])
          @ mono rest
      | _ -> []
    in
    let agree =
      let at_rows = est.Cost_model.cost_at rows in
      if approx at_rows est.Cost_model.total_cost then []
      else
        [
          d rule07 path
            "cost_at full output (%g) disagrees with total cost (%g)" at_rows
            est.Cost_model.total_cost;
        ]
    in
    let floor =
      match child_floor with
      | Some f when not (ge est.Cost_model.total_cost f) ->
          [
            d rule07 path
              ~hint:
                "a full-consumption operator must pay at least its inputs' \
                 total cost"
              "total cost %g is below the consumed inputs' cost %g"
              est.Cost_model.total_cost f;
          ]
      | _ -> []
    in
    finite @ mono (List.combine samples costs) @ agree @ floor

let cost_rule env plan =
  let est = Cost_model.estimate env in
  let rec go path plan =
    let e = est plan in
    let rows_leq child what =
      let ce = est child in
      if ge (ce.Cost_model.rows *. (1.0 +. 1e-9)) e.Cost_model.rows then []
      else
        [
          d rule07 path "%s emits %g rows, more than its input's %g" what
            e.Cost_model.rows ce.Cost_model.rows;
        ]
    in
    let here =
      match plan with
      | Plan.Table_scan _ | Plan.Index_scan _ | Plan.Rank_index_scan _
      | Plan.Remote_scan _ ->
          check_estimate ~path e
      | Plan.Gather_merge { inputs; _ } ->
          (* no child floor: the threshold merge legitimately stops shards
             early, so the gather undercuts the shards' serial totals *)
          check_estimate ~path e
          @
          let sum =
            List.fold_left (fun acc i -> acc +. (est i).Cost_model.rows) 0.0
              inputs
          in
          if ge (sum *. (1.0 +. 1e-9)) e.Cost_model.rows then []
          else
            [
              d rule07 path
                "gather emits %g rows, more than its shards' combined %g"
                e.Cost_model.rows sum;
            ]
      | Plan.Filter { input; _ } ->
          check_estimate ~path
            ~child_floor:(est input).Cost_model.total_cost e
          @ rows_leq input "filter"
      | Plan.Sort { input; _ } ->
          check_estimate ~path
            ~child_floor:(est input).Cost_model.total_cost e
          @ rows_leq input "sort"
      | Plan.Top_k { input; _ } -> check_estimate ~path e @ rows_leq input "Top-k"
      | Plan.Exchange { input; _ } ->
          (* no child floor: the spine's cost genuinely divides across
             workers, so an exchange legitimately undercuts its input's
             serial total *)
          check_estimate ~path e @ rows_leq input "exchange"
      | Plan.Join { algo; left; right; _ } ->
          let l = est left and r = est right in
          let floor =
            match algo with
            | Plan.Nested_loops | Plan.Hash | Plan.Sort_merge ->
                Some (l.Cost_model.total_cost +. r.Cost_model.total_cost)
            | Plan.Index_nl ->
                (* probes replace the inner's scan cost; only the outer is
                   consumed in full *)
                Some l.Cost_model.total_cost
            | Plan.Hrjn | Plan.Nrjn -> None (* early-out operators *)
          in
          check_estimate ~path ?child_floor:floor e
          @
          let cross = l.Cost_model.rows *. r.Cost_model.rows in
          if ge (cross *. (1.0 +. 1e-9)) e.Cost_model.rows then []
          else
            [
              d rule07 path "join emits %g rows, more than the cross product %g"
                e.Cost_model.rows cross;
            ]
      | Plan.Nary_rank_join _ -> check_estimate ~path e
      | Plan.Any_k { inputs; _ } ->
          (* the build phase consumes every input in full, so the inputs'
             serial totals are a sound floor on the anyK estimate *)
          let floor =
            List.fold_left
              (fun acc i -> acc +. (est i).Cost_model.total_cost)
              0.0 inputs
          in
          check_estimate ~path ~child_floor:floor e
    in
    here
    @ List.concat
        (List.map
           (fun (c, seg) -> go (path ^ "/" ^ seg) c)
           (match plan with
           | Plan.Table_scan _ | Plan.Index_scan _ | Plan.Rank_index_scan _
           | Plan.Remote_scan _ ->
               []
           | Plan.Filter { input; _ }
           | Plan.Sort { input; _ }
           | Plan.Top_k { input; _ }
           | Plan.Exchange { input; _ } ->
               [ (input, "input") ]
           | Plan.Join { left; right; _ } -> [ (left, "left"); (right, "right") ]
           | Plan.Nary_rank_join { inputs; _ } | Plan.Any_k { inputs; _ } ->
               List.mapi (fun i p -> (p, Printf.sprintf "in%d" i)) inputs
           | Plan.Gather_merge { inputs; _ } ->
               List.mapi (fun i p -> (p, Printf.sprintf "shard%d" i)) inputs))
  in
  go "plan:root" plan

(* ------------------------------------------------------------------ *)
(* PL08-memo *)

let rule08 = "PL08-memo"

let order_opt_equal a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> Plan.order_equal a b
  | _ -> false

let subplan_rule env ?key (sp : Memo.subplan) =
  let path = Printf.sprintf "memo:%s" (Plan.describe sp.Memo.plan) in
  let mask_check =
    match key with
    | None -> []
    | Some key ->
        let mask =
          Core.Enumerator.relation_mask env (Plan.relations sp.Memo.plan)
        in
        if mask = key then []
        else
          [
            d rule08 path
              "entry key %#x does not match the plan's relation mask %#x" key
              mask;
          ]
  in
  let order_check =
    if order_opt_equal sp.Memo.order (Plan.order_of sp.Memo.plan) then []
    else
      [
        d rule08 path
          ~hint:"the retained property bits must match the plan shape"
          "stored order property disagrees with the plan's order";
      ]
  in
  let est_check =
    let fresh = Cost_model.estimate env sp.Memo.plan in
    (if approx sp.Memo.est.Cost_model.rows fresh.Cost_model.rows then []
     else
       [
         d rule08 path "stored row estimate %g disagrees with recomputation %g"
           sp.Memo.est.Cost_model.rows fresh.Cost_model.rows;
       ])
    @
    if approx sp.Memo.est.Cost_model.total_cost fresh.Cost_model.total_cost
    then []
    else
      [
        d rule08 path "stored cost %g disagrees with recomputation %g"
          sp.Memo.est.Cost_model.total_cost fresh.Cost_model.total_cost;
      ]
  in
  let pipeline_check =
    if sp.Memo.pipelined = Plan.pipelined sp.Memo.plan then []
    else
      [
        d rule03 path "stored pipelining bit is %b but the plan is %s"
          sp.Memo.pipelined
          (if Plan.pipelined sp.Memo.plan then "pipelined" else "blocking");
      ]
  in
  mask_check @ order_check @ est_check @ pipeline_check

let memo_rule env memo =
  let n = List.length env.Cost_model.query.Logical.relations in
  let full_mask = (1 lsl n) - 1 in
  let keys = Memo.entry_keys memo in
  let has_entry mask = Memo.plans memo mask <> [] in
  List.concat_map
    (fun key ->
      let key_check =
        if key > 0 && key <= full_mask then []
        else
          [
            d rule08
              (Printf.sprintf "memo:entry %#x" key)
              "entry key %#x outside the valid mask range (0, %#x]" key
              full_mask;
          ]
      in
      let plans = Memo.plans memo key in
      key_check
      @ List.concat_map
          (fun sp ->
            let dangling =
              (* unwrap unary operators to the structural join, whose child
                 subtrees must come from existing MEMO entries *)
              let rec spine = function
                | Plan.Filter { input; _ }
                | Plan.Sort { input; _ }
                | Plan.Top_k { input; _ }
                | Plan.Exchange { input; _ } ->
                    spine input
                | p -> p
              in
              let child_entry part =
                let mask =
                  Core.Enumerator.relation_mask env (Plan.relations part)
                in
                if has_entry mask then []
                else
                  [
                    d rule08
                      (Printf.sprintf "memo:%s" (Plan.describe sp.Memo.plan))
                      "references group %#x (%s) which has no retained plans"
                      mask
                      (String.concat "," (Plan.relations part));
                  ]
              in
              match spine sp.Memo.plan with
              | Plan.Join { left; right; _ } when key <> 0 ->
                  child_entry left @ child_entry right
              | Plan.Nary_rank_join { inputs; _ } ->
                  List.concat_map child_entry inputs
              | _ -> []
            in
            subplan_rule env ~key sp @ dangling)
          plans)
    keys

(* ------------------------------------------------------------------ *)
(* PL09-topk *)

let rule09 = "PL09-topk"

let rec count_topk = function
  | Plan.Table_scan _ | Plan.Index_scan _ | Plan.Rank_index_scan _
  | Plan.Remote_scan _ ->
      0
  | Plan.Gather_merge { inputs; _ } ->
      List.fold_left (fun acc i -> acc + count_topk i) 0 inputs
  | Plan.Filter { input; _ } | Plan.Sort { input; _ } | Plan.Exchange { input; _ }
    ->
      count_topk input
  | Plan.Top_k { input; _ } -> 1 + count_topk input
  | Plan.Join { left; right; _ } -> count_topk left + count_topk right
  | Plan.Nary_rank_join { inputs; _ } | Plan.Any_k { inputs; _ } ->
      List.fold_left (fun acc i -> acc + count_topk i) 0 inputs

let topk_rule (p : Core.Optimizer.planned) =
  let path = "plan:root" in
  let query = p.Core.Optimizer.query in
  let validity = p.Core.Optimizer.k_validity in
  let interval =
    (if validity.Core.Optimizer.k_lo >= 1 then []
     else
       [
         d rule09 path "k-interval lower bound %d is below 1"
           validity.Core.Optimizer.k_lo;
       ])
    @
    match validity.Core.Optimizer.k_hi with
    | Some hi when hi < validity.Core.Optimizer.k_lo ->
        [
          d rule09 path "k-interval is empty: [%d, %d]"
            validity.Core.Optimizer.k_lo hi;
        ]
    | _ -> []
  in
  let est_check =
    let fresh =
      Cost_model.estimate p.Core.Optimizer.env p.Core.Optimizer.plan
    in
    if
      approx p.Core.Optimizer.est.Cost_model.rows fresh.Cost_model.rows
      && approx p.Core.Optimizer.est.Cost_model.total_cost
           fresh.Cost_model.total_cost
    then []
    else
      [
        d rule09 path
          "recorded estimate disagrees with a recomputation for this plan";
      ]
  in
  let shape =
    if Logical.is_ranking query then
      let k = Option.get query.Logical.k in
      let containment =
        (* optimize derives the interval around env.k_min; after an
           off-path rebind the interval is knowingly stale, so only the
           standard path is held to containment *)
        if
          p.Core.Optimizer.env.Cost_model.k_min = k
          && not (Core.Optimizer.k_in_validity p k)
        then
          [
            d rule09 path
              ~hint:"the chosen plan must be valid at the k it was chosen for"
              "query k=%d lies outside the plan's validity interval" k;
          ]
        else []
      in
      containment
      @
      (* the optimizer's fusion post-pass may push the root Top-k under an
         exchange (per-worker local top-k); the shape requirement applies
         to the plan modulo that rewrite *)
      match
        (match p.Core.Optimizer.plan with
        | Plan.Exchange { input = Plan.Top_k _ as t; _ } -> t
        | r -> r)
      with
      | Plan.Top_k { k = plan_k; input } ->
          (if plan_k = k then []
           else
             [
               d rule09 path "root Top-k limit %d differs from the query's k=%d"
                 plan_k k;
             ])
          @ (if count_topk input = 0 then []
             else [ d rule09 path "nested Top-k below the root limit" ])
          @
          let scoring = Logical.scoring_expr query in
          let produced =
            (Walk.derive p.Core.Optimizer.env.Cost_model.catalog input)
              .Walk.produced
          in
          (match (scoring, produced) with
          | Some score, Some o
            when o.Plan.direction = Io.Desc && Expr.equal o.Plan.expr score ->
              []
          | Some score, _ ->
              [
                d rule09 path
                  ~hint:
                    "rank the input with a rank join or an explicit sort \
                     before limiting"
                  "Top-k input does not produce the scoring order %s DESC"
                  (Expr.to_string score);
              ]
          | None, _ -> [])
      | _ ->
          [
            d rule09 path
              "ranking query plan is not rooted at Top-k (%s)"
              (Plan.describe p.Core.Optimizer.plan);
          ]
    else if count_topk p.Core.Optimizer.plan > 0 then
      [ d rule09 path "unranked query plan contains a Top-k operator" ]
    else []
  in
  interval @ est_check @ shape

(* ------------------------------------------------------------------ *)
(* PL10-cache *)

let rule10 = "PL10-cache"

let cache_entry_rule ~key ~epoch (prepared : Sqlfront.Sql.prepared) =
  let path = Printf.sprintf "cache:%s" key in
  let epoch_check =
    if epoch >= 0 then []
    else [ d rule10 path "negative stats epoch %d" epoch ]
  in
  let canonical =
    match Sqlfront.Sql.template_of_sql key with
    | Error e ->
        [ d rule10 path "cache key is not a parsable template: %s" e ]
    | Ok tpl ->
        if String.equal tpl.Sqlfront.Sql.tpl_text key then []
        else
          [
            d rule10 path
              ~hint:
                "keys must be canonical template text or equivalent \
                 spellings will miss the cache"
              "cache key is not canonical (normalizes to %S)"
              tpl.Sqlfront.Sql.tpl_text;
          ]
  in
  let planned = prepared.Sqlfront.Sql.planned in
  let validity = planned.Core.Optimizer.k_validity in
  let interval =
    (if validity.Core.Optimizer.k_lo >= 1 then []
     else
       [
         d rule10 path "k-interval lower bound %d is below 1"
           validity.Core.Optimizer.k_lo;
       ])
    @
    match validity.Core.Optimizer.k_hi with
    | Some hi when hi < validity.Core.Optimizer.k_lo ->
        [
          d rule10 path "k-interval is empty: [%d, %d]"
            validity.Core.Optimizer.k_lo hi;
        ]
    | _ -> []
  in
  let containment =
    match planned.Core.Optimizer.query.Logical.k with
    | Some k when not (Core.Optimizer.k_in_validity planned k) ->
        [
          d rule10 path
            ~hint:
              "a variant must be stored under an interval containing its \
               own bound k, or lookups re-optimize forever"
            "bound k=%d lies outside the variant's validity interval" k;
        ]
    | _ -> []
  in
  epoch_check @ canonical @ interval @ containment

(* ------------------------------------------------------------------ *)
(* PL11-exchange *)

let rule11 = "PL11-exchange"

let exchange_node (f : Walk.facts) =
  let path = f.Walk.path in
  match f.Walk.plan with
  | Plan.Exchange { dop; input } ->
      (if dop >= 2 then []
       else
         [
           d rule11 path
             ~hint:"a serial exchange is pure overhead; plan it away instead"
             "exchange degree %d is not parallel" dop;
         ])
      @ (if not (Plan.has_rank_join input) then []
         else
           [
             d rule11 path
               ~hint:
                 "rank joins must stay sequential and incremental; they may \
                  pull from an exchange, never run inside one"
               "exchange over a rank join breaks incremental early-out";
           ])
      @ (if not (Core.Parallel.has_exchange input) then []
         else [ d rule11 path "nested exchange" ])
      @
      if Core.Parallel.eligible input then []
      else
        [
          d rule11 path
            ~hint:
              "morselizable shapes: a scan/filter/hash/INL/NL left spine \
               with serial right sides, or Top-k over Sort over one"
            "exchange input %s is not a morselizable spine"
            (Plan.describe input);
        ]
  | _ -> []

let exchange_rule ?dop facts =
  let per_node = Walk.fold (fun acc f -> acc @ exchange_node f) [] facts in
  per_node
  @
  (* the memo/cache property bit must match a recomputation over the
     retained plan shape *)
  match dop with
  | Some bit when bit <> Plan.dop facts.Walk.plan ->
      [
        d rule11 facts.Walk.path
          ~hint:"the DOP property bit disagrees with the plan shape"
          "stored degree-of-parallelism bit is %d but the plan's is %d" bit
          (Plan.dop facts.Walk.plan);
      ]
  | _ -> []

(* ------------------------------------------------------------------ *)
(* PL12-enum *)

let rule12 = "PL12-enum"

(* Structural sanity of an anyK node: the shape bit must describe the key
   bindings' parent pointers (path: parent i-1; star: parent 0). PL01
   covers arity and binding; this covers the join-tree topology claim. *)
let any_k_shape_node (f : Walk.facts) =
  let path = f.Walk.path in
  match f.Walk.plan with
  | Plan.Any_k { keys; shape; _ } ->
      let expected i =
        match shape with `Path -> i - 1 | `Star -> 0
      in
      List.concat
        (List.mapi
           (fun j (p, _, _) ->
             if p = expected (j + 1) then []
             else
               [
                 d rule12 path
                   "anyK %s shape claims parent %d for input %d, keys say %d"
                   (Core.Enumerate.shape_name shape)
                   (expected (j + 1))
                   (j + 1) p;
               ])
           keys)
  | _ -> []

let check_enumerate_bit ~path ~query ~recomputed bit =
  if bit = recomputed then []
  else if bit then
    [
      d rule12 path
        ~hint:
          "a cursor over this statement would resume a non-resumable sink \
           (exchange, nested Top-k, or an unjustified scoring order)"
        "Enumerate bit set but the plan is not cursor-resumable";
    ]
  else
    [
      d rule12 path
        ~hint:
          (Printf.sprintf "query %s plans to a resumable Top-k stream"
             (Format.asprintf "%a" Logical.pp query))
        "plan is cursor-resumable but the Enumerate bit is unset";
    ]

let enumerate_rule (p : Core.Optimizer.planned) =
  let path = "plan:root" in
  let query = p.Core.Optimizer.query in
  let plan = p.Core.Optimizer.plan in
  let catalog = p.Core.Optimizer.env.Cost_model.catalog in
  let bit_check =
    check_enumerate_bit ~path ~query
      ~recomputed:(Core.Enumerate.eligible query plan)
      p.Core.Optimizer.enumerable
  in
  (* Independent justification: when the bit is set, the stream under the
     root Top-k must produce the scoring order by the walker's own
     derivation (not Plan.order_of, which the Enumerate recomputation
     already trusts) and must be exchange- and Top-k-free. *)
  let sink_check =
    if not p.Core.Optimizer.enumerable then []
    else
      match plan with
      | Plan.Top_k { input; _ } ->
          (if not (Core.Parallel.has_exchange input) then []
           else [ d rule12 path "Enumerate over an exchange (morsel drain)" ])
          @ (if count_topk input = 0 then []
             else [ d rule12 path "Enumerate over a nested Top-k" ])
          @
          let produced = (Walk.derive catalog input).Walk.produced in
          (match (Logical.scoring_expr query, produced) with
          | Some score, Some o
            when o.Plan.direction = Io.Desc && Expr.equal o.Plan.expr score ->
              []
          | Some score, _ ->
              [
                d rule12 path
                  "Enumerate sink does not justifiably produce %s DESC"
                  (Expr.to_string score);
              ]
          | None, _ ->
              [ d rule12 path "Enumerate bit set on an unranked statement" ])
      | _ -> [ d rule12 path "Enumerate bit set but the root is not Top-k" ]
  in
  let shape_checks =
    Walk.fold
      (fun acc f -> acc @ any_k_shape_node f)
      []
      (Walk.derive catalog plan)
  in
  bit_check @ sink_check @ shape_checks

(* ------------------------------------------------------------------ *)
(* PL13-rank *)

let rule13 = "PL13-rank"

(* A by-rank window claims two strong properties: it emits descending score
   order, and it emits at most (hi - lo + 1) rows. Both are only justified
   when the window bounds are sane and — for the indexed variant — the named
   index really is an order-statistic B+-tree keyed on the claimed score
   column. The index-less fallback justifies the order by sorting, but its
   score expression must still be numeric over the base table's schema. *)
let rank_node catalog (f : Walk.facts) =
  let path = f.Walk.path in
  match f.Walk.plan with
  | Plan.Rank_index_scan { table; index; score; lo; hi; dense = _ } ->
      let bounds =
        (if lo >= 1 then []
         else
           [
             d rule13 path
               ~hint:"ranks are 1-based: rank 1 is the best score"
               "by-rank window lower bound %d is below 1" lo;
           ])
        @
        if hi >= lo then []
        else [ d rule13 path "by-rank window %d..%d is empty" lo hi ]
      in
      let score_typed =
        match Walk.table_schema catalog table with
        | None -> [] (* unknown table: PL01's finding *)
        | Some s -> (
            match Walk.check_numeric s score with
            | Ok () -> []
            | Error msg -> [ d rule13 path "by-rank score: %s" msg ])
      in
      let justification =
        match index with
        | None -> [] (* fallback sorts internally: order needs no index *)
        | Some nm -> (
            match
              List.find_opt
                (fun ix -> String.equal ix.Storage.Catalog.ix_name nm)
                (Storage.Catalog.indexes_on catalog table)
            with
            | None ->
                [
                  d rule13 path
                    ~hint:
                      "the counted descent needs an order-statistic index; \
                       without one the plan must use the sort fallback"
                    "by-rank scan names unknown index %s on %s" nm table;
                ]
            | Some ix ->
                if Expr.equal ix.Storage.Catalog.ix_key score then []
                else
                  [
                    d rule13 path
                      ~hint:
                        "ranks computed over a different key do not justify \
                         this plan's claimed score order"
                      "by-rank scan claims score %s but index %s is keyed on \
                       %s"
                      (Expr.to_string score) nm
                      (Expr.to_string ix.Storage.Catalog.ix_key);
                  ])
      in
      bounds @ score_typed @ justification
  | _ -> []

let rank_rule catalog facts =
  Walk.fold (fun acc f -> acc @ rank_node catalog f) [] facts

(* ------------------------------------------------------------------ *)
(* PL14-shard *)

let rule14 = "PL14-shard"

(* Scatter/gather soundness. A gather-merge claims a globally best-first
   stream cut at k; that claim rests on three properties of its inputs:
   every input is a remote shard stream (anything local would not be
   deduplicated by partitioning), every shard was pushed a bound k' >= k
   (under hash partitioning any single shard can hold all k winners, so a
   smaller k' can cut a winner), and every shard stream is sorted by the
   same score the merge compares on (the threshold-style early cutoff
   reads a shard's last streamed score as an upper bound for the rest of
   that stream). Shards must also be pairwise distinct — merging one
   shard twice duplicates rows. *)
let shard_node (f : Walk.facts) =
  let path = f.Walk.path in
  match f.Walk.plan with
  | Plan.Remote_scan { shard; endpoint; sql; k_bound; _ } ->
      (if shard >= 0 then []
       else [ d rule14 path "remote scan has negative shard index %d" shard ])
      @ (if String.trim endpoint <> "" then []
         else [ d rule14 path "remote scan has an empty endpoint" ])
      @ (if String.trim sql <> "" then []
         else [ d rule14 path "remote scan has an empty pushed subquery" ])
      @ (match k_bound with
        | Some k' when k' < 1 ->
            [ d rule14 path "remote scan per-shard bound k'=%d is below 1" k' ]
        | _ -> [])
  | Plan.Gather_merge { inputs; score; k } ->
      let empty =
        if inputs <> [] then []
        else [ d rule14 path "gather-merge has no shard inputs" ]
      in
      let shape =
        List.concat_map
          (fun input ->
            match input with
            | Plan.Remote_scan _ -> []
            | p ->
                [
                  d rule14 path
                    ~hint:
                      "partitioning only deduplicates rows across remote \
                       shard streams"
                    "gather-merge input is not a remote scan: %s"
                    (Plan.describe p);
                ])
          inputs
      in
      let shards =
        List.filter_map
          (function Plan.Remote_scan { shard; _ } -> Some shard | _ -> None)
          inputs
      in
      let distinct =
        if List.length (List.sort_uniq compare shards) = List.length shards
        then []
        else
          [
            d rule14 path
              ~hint:"merging one shard twice duplicates its rows"
              "gather-merge inputs repeat a shard index";
          ]
      in
      let bounds =
        match k with
        | None -> []
        | Some kv ->
            (if kv >= 1 then []
             else [ d rule14 path "gather-merge cutoff k=%d is below 1" kv ])
            @ List.concat_map
                (function
                  | Plan.Remote_scan { shard; k_bound = None; _ } ->
                      [
                        d rule14 path
                          ~hint:
                            "a bounded gather needs a per-shard bound: \
                             unbounded shard streams defeat Propagate-style \
                             pushdown"
                          "gather-merge cuts at k=%d but shard %d has no k'"
                          kv shard;
                      ]
                  | Plan.Remote_scan { shard; k_bound = Some k'; _ }
                    when k' < kv ->
                      [
                        d rule14 path
                          ~hint:
                            "under hash partitioning one shard can hold all \
                             k winners, so k' < k can cut a winner"
                          "gather-merge needs k=%d rows but shard %d was \
                           bounded at k'=%d"
                          kv shard k';
                      ]
                  | _ -> [])
                inputs
      in
      let order =
        match score with
        | None -> []
        | Some sc ->
            List.concat_map
              (function
                | Plan.Remote_scan { shard; score = Some sc'; _ }
                  when not (Expr.equal sc sc') ->
                    [
                      d rule14 path
                        ~hint:
                          "threshold early termination reads a shard's last \
                           score as an upper bound for that stream, which \
                           only holds if the shard sorts by the merge score"
                        "gather-merge orders by %s but shard %d streams by %s"
                        (Expr.to_string sc) shard (Expr.to_string sc');
                    ]
                | Plan.Remote_scan { shard; score = None; _ } ->
                    [
                      d rule14 path
                        "gather-merge claims a merge order but shard %d \
                         stream is unordered"
                        shard;
                    ]
                | _ -> [])
              inputs
      in
      empty @ shape @ distinct @ bounds @ order
  | _ -> []

let shard_rule facts = Walk.fold (fun acc f -> acc @ shard_node f) [] facts

(* ------------------------------------------------------------------ *)
(* PL15-vector *)

let rule15 = "PL15-vector"

(* Batched/streaming boundary soundness. The executor runs a subplan
   batch-at-a-time exactly when {!Core.Vectorize.spine_ok} holds (scans and
   filter stacks, optionally stacked through hash-join probes) or when the
   root is the fused sort+limit top-k sink. Both regions must be free of
   rank joins and exchanges: a rank join inside a batched region would see
   its incremental early-out (Theorem 1/2 depth accounting) quantized to
   batch boundaries, and an exchange would morselize a spine the vector
   operators already own. The predicates here are the claims; the
   has-rank-join / has-exchange facts are recomputed independently, so a
   future widening of [spine_ok] that swallows a streaming sink is caught
   the moment any plan exercises it. *)
let check_vector_spine ~path ~spine ~fused ~has_rank_join ~has_exchange =
  let bad region what =
    d rule15 path
      ~hint:
        "rank joins and exchanges must stay streaming: batching them would \
         quantize rank-join early-out depths to batch boundaries"
      "%s claims batched execution but contains %s" region what
  in
  (if spine && has_rank_join then [ bad "vector spine" "a rank join" ] else [])
  @ (if spine && has_exchange then [ bad "vector spine" "an exchange" ] else [])
  @ (if fused && has_rank_join then
       [ bad "fused top-k sink" "a rank join" ]
     else [])
  @ if fused && has_exchange then [ bad "fused top-k sink" "an exchange" ]
    else []

let vector_node (f : Walk.facts) =
  let plan = f.Walk.plan in
  check_vector_spine ~path:f.Walk.path
    ~spine:(Core.Vectorize.spine_ok plan)
    ~fused:(Core.Vectorize.fused_sink plan)
    ~has_rank_join:(Plan.has_rank_join plan)
    ~has_exchange:(Core.Parallel.has_exchange plan)

let check_vector_bit ~path ~recomputed bit =
  if bit = recomputed then []
  else if bit then
    [
      d rule15 path
        ~hint:
          "no vector spine or fused top-k sink exists: the executor would \
           run this plan tuple-at-a-time, so costing it as batched is \
           unsound"
        "Vectorized bit set but no subplan is batch-executable";
    ]
  else
    [
      d rule15 path
        ~hint:
          "the executor will run part of this plan batch-at-a-time; the \
           stored property must say so for EXPLAIN and the plan cache"
        "plan has a batch-executable subplan but the Vectorized bit is unset";
    ]

let vector_rule ?vectorized facts =
  let per_node = Walk.fold (fun acc f -> acc @ vector_node f) [] facts in
  per_node
  @
  (* the memo/cache property bit must match a recomputation over the
     retained plan shape *)
  match vectorized with
  | Some bit ->
      check_vector_bit ~path:facts.Walk.path
        ~recomputed:(Core.Vectorize.vectorized facts.Walk.plan)
        bit
  | None -> []
