(** Planlint entry points: lint whole plans, memos, planned statements and
    plan-cache entries; install the emit-time assertion mode.

    Linking this library also registers the engine behind
    {!Core.Plan_verify.check}, so the historical entry point keeps working
    with the lint catalog as its single implementation. *)

val lint_plan :
  ?query:Core.Logical.t ->
  ?env:Core.Cost_model.env ->
  Storage.Catalog.t ->
  Core.Plan.t ->
  Diag.t list
(** Structural rules (PL01 schema, PL02 order, PL03 pipelining, PL15
    batched-region boundaries) on any physical plan. With [query], filter
    preservation (PL04) is checked too; with [env], the estimate rules
    (PL05 propagation, PL06 depths, PL07 cost) as well. Diagnostics come
    back sorted, errors first. *)

val lint_subplan :
  Core.Cost_model.env -> ?key:int -> Core.Memo.subplan -> Diag.t list
(** What the emit-time mode runs per retained plan: the structural rules
    plus filter preservation against [env]'s query and the property-bit
    checks (PL03/PL08/PL11/PL15) against the stored subplan record. *)

val lint_memo : Core.Cost_model.env -> Core.Memo.t -> Diag.t list
(** Every retained subplan of every entry, plus memo hygiene (PL08). *)

val lint_planned : Core.Optimizer.planned -> Diag.t list
(** Full catalog over a finished statement: structural + filter + estimate
    rules and the top-k root shape / k-interval rule (PL09). *)

val lint_prepared :
  key:string -> epoch:int -> Sqlfront.Sql.prepared -> Diag.t list
(** A plan-cache entry: PL10 key/interval consistency plus
    {!lint_planned} on the entry's plan. *)

val check : Storage.Catalog.t -> Core.Plan.t -> (unit, string) result
(** The [Core.Plan_verify] compatible view: [Ok ()] when the structural
    rules produce no errors, otherwise the first diagnostic as a string. *)

val errors : Diag.t list -> Diag.t list
(** Just the error-severity diagnostics. *)

(** Emit-time assertion mode: when enabled, every subplan the MEMO retains
    and every statement the optimizer finishes is linted on the spot (wired
    through {!Core.Enumerator.retain_hook} / {!Core.Optimizer.planned_hook}).
    Diagnostics accumulate for inspection; with [fail:true] the first error
    raises instead — the debug-assertion configuration for tests and fuzz
    runs. *)
module Emit : sig
  exception Lint_error of Diag.t

  val enable : ?fail:bool -> unit -> unit
  (** Install the hooks and start linting ([fail] defaults to [false]). *)

  val disable : unit -> unit

  val linted : unit -> int
  (** Plans linted since the counters were last reset. *)

  val diagnostics : unit -> Diag.t list
  (** Accumulated diagnostics, in emission order. *)

  val reset : unit -> unit
  (** Clear the accumulated diagnostics and the counter. *)
end
