(** The planlint rule catalog (PL01–PL15).

    Each rule checks one optimizer invariant and reports violations as
    {!Diag.t} values. Rules come in two layers: pure checkers over plain
    data ([check_propagation], [check_depths], [check_estimate]) that
    mutation tests can feed hand-corrupted inputs, and drivers that derive
    that data from a plan/memo/planned statement — the form the engine,
    CLI and fuzz harness use. The full catalog with paper references lives
    in DESIGN.md. *)

val catalog : (string * string) list
(** [(rule id, one-line invariant)] for every shipped rule. *)

(** {2 PL01-schema — well-typedness at operator boundaries} *)

val schema_rule : Storage.Catalog.t -> Walk.facts -> Diag.t list
(** Tables and indexes exist; index keys match the catalog; predicates,
    sort keys, join keys and score expressions are bound by the schema of
    the input they run over and are well-typed (predicates boolean, scores
    numeric); Top-k limits are non-negative; N-ary joins are ≥ 2-way with
    consistent arities. *)

(** {2 PL02-order — order-property soundness} *)

val order_rule : Walk.facts -> Diag.t list
(** Every order a node claims ({!Core.Plan.order_of}) must be justified by
    its inputs plus its own semantics ({!Walk.facts.produced}); rank joins
    must carry the score expressions their output order is built from. *)

(** {2 PL03-pipeline — pipelining-flag consistency} *)

val pipeline_rule : ?stored:bool -> Walk.facts -> Diag.t list
(** The claimed pipelining property ({!Core.Plan.pipelined}) matches the
    independently recomputed streaming property at every node; when a
    [stored] MEMO property bit is supplied it must match too. *)

(** {2 PL04-filter — filter preservation logical → physical} *)

val filter_rule : query:Core.Logical.t -> Walk.facts -> Diag.t list
(** Every relation filter and join predicate of the logical query whose
    relations the plan covers is applied somewhere in the physical plan
    (as a Filter conjunct, a join condition, or an N-ary shared key) — the
    INL-join dropped-filter bug class. *)

(** {2 PL05-kprop — k-propagation sanity (Figure 8)} *)

val check_propagation :
  Core.Cost_model.env -> k:int -> Core.Propagate.annotation -> Diag.t list
(** Pure checker: root requirement equals [max 1 k]; requirements are
    non-negative and non-NaN everywhere; rank-join input depths lie within
    [\[1, input cardinality\]]. *)

val propagation_rule : Core.Cost_model.env -> k:int -> Core.Plan.t -> Diag.t list
(** Driver: runs {!Core.Propagate.run} at [k] and [2k], applies
    {!check_propagation} and checks monotonicity in [k]. *)

(** {2 PL06-depth — Theorem-1/2 depth-bound sanity} *)

val check_depths :
  path:string ->
  card_left:float ->
  card_right:float ->
  Core.Depth_model.depths ->
  Diag.t list
(** Pure checker: each depth is finite, ≥ 1 and ≤ its input cardinality
    (with the model's [max 1] floor). *)

val depth_rule : Core.Cost_model.env -> Core.Plan.t -> Diag.t list
(** Driver: for every binary rank join, the depths the cost model predicts
    at [k_min] and [2·k_min] satisfy {!check_depths} and are monotone
    in [k]. *)

(** {2 PL07-cost — cost estimate monotonicity} *)

val check_estimate :
  path:string -> ?child_floor:float -> Core.Cost_model.estimate -> Diag.t list
(** Pure checker: rows and costs are finite and non-negative; [cost_at] is
    non-decreasing and agrees with [total_cost] at full output;
    [total_cost] is at least [child_floor] (the summed cost of inputs a
    full-consumption operator must pay for). *)

val cost_rule : Core.Cost_model.env -> Core.Plan.t -> Diag.t list
(** Driver: applies {!check_estimate} at every node, with a child floor
    for full-consumption operators only (rank joins and Top-k legitimately
    stop early), plus output-cardinality monotonicity (a filter/limit
    cannot produce more rows than its input). *)

(** {2 PL08-memo — memo hygiene} *)

val subplan_rule :
  Core.Cost_model.env -> ?key:int -> Core.Memo.subplan -> Diag.t list
(** A retained subplan's property bits match recomputation: relation
    bitmask equals its entry key, stored order equals the plan's claim,
    stored estimate equals a fresh estimate; the stored pipelining bit is
    checked under PL03. *)

val memo_rule : Core.Cost_model.env -> Core.Memo.t -> Diag.t list
(** Whole-memo driver: entry keys are valid non-empty relation masks;
    every retained subplan passes {!subplan_rule}; join subplans reference
    existing child entries (no dangling group references). *)

(** {2 PL09-topk — top-k root shape and k-interval sanity} *)

val topk_rule : Core.Optimizer.planned -> Diag.t list
(** A ranking query's chosen plan is rooted at [Top_k] with the query's
    [k], contains no other [Top_k], and its input justifiably produces the
    scoring order descending; an unranked plan contains no [Top_k]. The
    k-validity interval is well-formed and (on the standard optimize path)
    contains the query's [k]; the recorded estimate matches the plan. *)

(** {2 PL10-cache — plan-cache entry consistency} *)

val cache_entry_rule :
  key:string -> epoch:int -> Sqlfront.Sql.prepared -> Diag.t list
(** A cache entry's key is a canonical template text (round-trips through
    {!Sqlfront.Sql.template_of_sql}), its epoch is non-negative, its plan's
    bound [k] lies inside the variant's validity interval, and the interval
    endpoints are sane. *)

(** {2 PL11-exchange — exchange placement soundness} *)

val exchange_rule : ?dop:int -> Walk.facts -> Diag.t list
(** Every exchange has a parallel degree (≥ 2), sits on a morselizable
    spine ({!Core.Parallel.eligible}), contains no rank join (which must
    stay sequential for incremental early-out — they may pull {e from} an
    exchange, never run inside one) and no nested exchange. When a stored
    [dop] property bit is supplied (memo/cache) it must equal
    {!Core.Plan.dop} of the plan. *)

(** {2 PL12-enum — Enumerate-bit / cursor-resumability consistency} *)

val check_enumerate_bit :
  path:string ->
  query:Core.Logical.t ->
  recomputed:bool ->
  bool ->
  Diag.t list
(** Pure checker: the stored Enumerate property bit equals the recomputed
    {!Core.Enumerate.eligible} verdict. *)

val enumerate_rule : Core.Optimizer.planned -> Diag.t list
(** Driver: the planned statement's Enumerate bit matches recomputation;
    when set, the stream under the root Top-k is independently verified
    resumable (no exchange, no nested Top-k, walker-justified scoring
    order) — no cursor may be kept open over a non-resumable sink. Every
    anyK node's shape bit must describe its key bindings' parents. *)

(** {2 PL13-rank — by-rank access-path justification} *)

val rank_node : Storage.Catalog.t -> Walk.facts -> Diag.t list
(** Pure per-node checker (mutation tests feed it hand-corrupted plans):
    a [Rank_index_scan]'s window is sane ([1 <= lo <= hi]), its score
    expression is numeric over the base table's schema, and — for the
    indexed variant — the named index exists on the scanned table and is
    keyed on exactly the claimed score expression (a by-rank plan's
    descending-order and bounded-cardinality claims are otherwise
    unjustified). The index-less fallback needs no index: it sorts. *)

val rank_rule : Storage.Catalog.t -> Walk.facts -> Diag.t list
(** Driver: applies {!rank_node} at every node of the walked plan. *)

(** {2 PL14-shard — scatter/gather soundness}

    A gather-merge must sit over pairwise-distinct remote shard streams;
    when it cuts at [k], every shard needs a pushed bound [k' >= k]
    (under hash partitioning a single shard can hold all [k] winners);
    when it claims a merge order, every shard stream must be sorted by
    the same score (the threshold-style cutoff reads a shard's last
    streamed score as an upper bound for the rest of that stream). *)

val shard_node : Walk.facts -> Diag.t list

val shard_rule : Walk.facts -> Diag.t list

(** {2 PL15-vector — batched/streaming boundary soundness}

    The executor runs {!Core.Vectorize.spine_ok} subplans and the fused
    sort+limit top-k sink batch-at-a-time; rank joins and exchanges must
    never fall inside such a region (batching would quantize rank-join
    early-out depths to batch boundaries), and the [Vectorized] property
    bit stored in the MEMO must match recomputation over the plan
    shape. *)

val check_vector_spine :
  path:string ->
  spine:bool ->
  fused:bool ->
  has_rank_join:bool ->
  has_exchange:bool ->
  Diag.t list
(** Pure checker over the claims and independently derived facts: a
    claimed batched region ([spine] or [fused]) must not contain a rank
    join or an exchange. *)

val check_vector_bit : path:string -> recomputed:bool -> bool -> Diag.t list
(** Pure checker: the stored Vectorized property bit equals the recomputed
    {!Core.Vectorize.vectorized} verdict. *)

val vector_node : Walk.facts -> Diag.t list
(** {!check_vector_spine} with the claims and facts derived from the
    node's plan. *)

val vector_rule : ?vectorized:bool -> Walk.facts -> Diag.t list
(** Driver: applies {!vector_node} at every node; when a stored
    [vectorized] property bit is supplied (memo/cache) it must equal
    {!Core.Vectorize.vectorized} of the plan. *)
