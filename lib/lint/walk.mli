(** Typed visitor / dataflow framework over physical plans.

    [derive] runs one bottom-up dataflow pass over a {!Core.Plan.t} and
    annotates every node with independently recomputed facts: the output
    schema, the order the node can actually {e justify} from its inputs and
    its own semantics, and whether the node streams (produces first rows
    without consuming whole inputs). Rules then compare these facts against
    the properties the optimizer {e claims}
    ({!Core.Plan.order_of}, {!Core.Plan.pipelined}, MEMO property bits) —
    the whole point of the analyzer is that the facts are recomputed by a
    second implementation, so a drift in either one is caught. *)

open Relalg

type facts = {
  plan : Core.Plan.t;
  path : string;  (** e.g. ["root/left/input"]. *)
  schema : Schema.t option;
      (** Output schema; [None] when an unknown table makes it underivable
          (the schema rule reports the root cause). *)
  produced : Core.Plan.order option;
      (** The strongest order this node's semantics can justify, given the
          orders its inputs justify. [None] = no order guarantee. *)
  streaming : bool;
      (** Recomputed pipelining property: no blocking operator on the
          producing spine. *)
  children : facts list;
}

val derive : Storage.Catalog.t -> Core.Plan.t -> facts

val table_schema : Storage.Catalog.t -> string -> Schema.t option
(** The catalog schema of a base table; [None] for unknown tables (never
    raises — the schema rule reports the root cause). *)

val iter : (facts -> unit) -> facts -> unit
(** Pre-order traversal of the annotated tree. *)

val fold : ('a -> facts -> 'a) -> 'a -> facts -> 'a

(** {2 Static expression typing}

    A small type checker mirroring {!Relalg.Expr.eval}'s dynamic semantics:
    arithmetic needs numeric operands, comparisons need operands of one
    family, boolean connectives need booleans. *)

type family = Fnum | Fstring | Fbool | Fany  (** [Fany]: a NULL literal. *)

val type_of : Schema.t -> Expr.t -> (family, string) result
(** [Error] describes the first ill-typed or unbound subexpression. *)

val check_predicate : Schema.t -> Expr.t -> (unit, string) result
(** The expression must type to [Fbool] (or [Fany]). *)

val check_numeric : Schema.t -> Expr.t -> (unit, string) result
(** The expression must type to [Fnum] (or [Fany]) — sort keys, scores. *)
