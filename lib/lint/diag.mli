(** Planlint diagnostics.

    Every rule violation is reported as a structured diagnostic: the rule
    that fired, a severity, the path of the offending node inside the plan
    (or memo entry / cache key), a human message and an optional fix hint.
    Diagnostics render both as one-line text (CLI, test failures) and as
    machine-readable JSON (tooling, CI artifacts). *)

type severity = Error | Warning | Info

type t = {
  rule : string;  (** Rule id, e.g. ["PL02-order"]. *)
  severity : severity;
  path : string;  (** Node path, e.g. ["plan:root/left/input"]. *)
  message : string;
  hint : string option;  (** Suggested fix, when the rule knows one. *)
}

val make : rule:string -> ?severity:severity -> ?hint:string -> path:string -> string -> t
(** [severity] defaults to [Error]. *)

val severity_name : severity -> string

val is_error : t -> bool

val sort : t list -> t list
(** Errors first, then warnings, then infos; stable within a severity. *)

val pp : Format.formatter -> t -> unit
(** One line: [error PL02-order plan:root: message (hint: ...)]. *)

val to_string : t -> string

val to_json : t -> string
(** One JSON object; all strings escaped. *)

val list_to_json : t list -> string
(** A JSON array of {!to_json} objects. *)
