(** Per-thread lock-event trace state.

    One record per (domain, thread); the hot path mutates only the
    calling thread's record, so tracing adds no shared-state contention.
    [collect] merges every registered thread's edges, sites, hold times,
    and online diagnostics into one summary for the collect-time rules. *)

type st = {
  st_gen : int;
  st_dom : int;
  st_tid : int;
  st_where : string;  (** e.g. ["d0.t5"], used in diagnostic paths *)
  mutable st_held_arr : Rules.holder array;
      (** held-set as a stack of recycled records; slots at index >=
          [st_held_n] are garbage kept for reuse *)
  mutable st_held_n : int;
  mutable st_events : int;
  st_edges : (string * string, unit) Hashtbl.t;
  mutable st_edge_src : string;
      (** last recorded edge, compared physically to skip the tuple
          hash in tight nesting loops *)
  mutable st_edge_dst : string;
  st_sites : (int, string * int * Rkutil.Latch.cls) Hashtbl.t;
      (** instance -> (name, rank, cls); [collect] re-keys by name *)
  mutable st_seen : Bytes.t;
      (** byte per instance: nonzero iff the site is in [st_sites], so
          the hot path answers "registered?" without hashing *)
  mutable st_hold_max : float array;
      (** max observed hold seconds per instance (0 = none observed) *)
  mutable st_diags : Lint.Diag.t list;
}

val get : unit -> st
(** The calling thread's state (registered on first use). *)

val reset : unit -> unit
(** Start a fresh trace: previously registered states are dropped and
    stale thread-local records are superseded on next use. *)

val bump : st -> unit
(** Count one latch event against the thread (one store: the hot path
    keeps no per-event log, only the held-set and the aggregates). *)

val held_push :
  st ->
  name:string ->
  inst:int ->
  rank:int ->
  cls:Rkutil.Latch.cls ->
  mode:Rkutil.Latch.mode ->
  since:float ->
  unit
(** Push onto the held-stack, recycling the slot's record: zero
    allocation once a depth has been reached before. *)

val held_list : st -> Rules.holder list
(** The held-set as fresh holder copies, most-recent-first — safe to
    hand to the (pure) rule checkers; the stack's own records are
    mutated by later pushes. *)

val held_write_back : st -> Rules.holder list -> unit
(** Replace the held-stack with the given held-set (most-recent-first);
    slow-path releases use this after removing a middle element. *)

val add_diags : st -> Lint.Diag.t list -> unit

val seen : st -> int -> bool
(** [seen st inst] is true iff [register_site] ran for [inst]: one
    bounds check and a byte load. *)

val register_site :
  st -> int -> string * int * Rkutil.Latch.cls -> unit
(** Register a site the first time the thread touches its latch
    (growing the fast-path tables as needed). *)

val note_hold : st -> int -> float -> unit
(** [note_hold st inst seconds] folds one observed hold time into the
    per-instance maximum; zero-length holds (below the coarse clock's
    resolution) are dropped. *)

type summary = {
  su_threads : int;
  su_events : int;
  su_edges : (string * string) list;
      (** acquired-while-held edges, deduplicated *)
  su_sites : (string * int * Rkutil.Latch.cls) list;
      (** observed sites with their registered rank/class *)
  su_holds : (string * Rkutil.Latch.cls * float) list;
      (** max observed hold seconds per site *)
  su_diags : Lint.Diag.t list;  (** diagnostics found online *)
}

val collect : unit -> summary
(** Merge all registered thread states. Call after the traced workload
    has quiesced. *)
