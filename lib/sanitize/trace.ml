(* Per-thread trace state.

   Each (domain, thread) gets its own state record: held-set, lock-order
   edges, per-site stats, and diagnostics found online.
   The hot path (every latch operation) touches only the calling thread's
   record — no shared lock, no atomics — which is what keeps sanitize-mode
   overhead in budget. The only synchronized step is registering a fresh
   thread's record in the global list, which happens once per thread.

   Lookup is via a [Domain.DLS] key holding the domain's thread-id ->
   state association. Threads of one domain never run in parallel (the
   per-domain runtime lock), and the assoc list is only replaced under the
   registration mutex, so readers racing a registration see either the old
   or the new list — both correct. *)

type st = {
  st_gen : int;  (* states from an older reset are ignored *)
  st_dom : int;
  st_tid : int;
  st_where : string;
  (* Held-set as a stack of recycled mutable holder records: pushes
     overwrite fields in place, so steady-state tracing allocates
     nothing. Slots at index >= st_held_n are garbage kept for reuse. *)
  mutable st_held_arr : Rules.holder array;
  mutable st_held_n : int;
  mutable st_events : int;  (* total events recorded by this thread *)
  st_edges : (string * string, unit) Hashtbl.t;
  (* Last lock-order edge this thread recorded, compared physically: site
     names are shared literals, so the one repeating nesting of a tight
     loop (statement lock -> buffer-pool shard) skips the tuple hash. *)
  mutable st_edge_src : string;
  mutable st_edge_dst : string;
  (* Sites are keyed by latch {e instance}; [collect] re-keys by name.
     The hot path never hashes: [st_seen] answers "already registered?"
     with one byte load and [st_hold_max] accumulates per-instance hold
     maxima in a flat float array (instances are small dense ints). *)
  st_sites : (int, string * int * Rkutil.Latch.cls) Hashtbl.t;
  mutable st_seen : Bytes.t;
  mutable st_hold_max : float array;
  mutable st_diags : Lint.Diag.t list;
}

let dummy_holder =
  {
    Rules.ho_name = "";
    ho_inst = -1;
    ho_rank = 0;
    ho_cls = Rkutil.Latch.Short;
    ho_mode = Rkutil.Latch.Exclusive;
    ho_since = 0.0;
  }

let generation = Atomic.make 0
let reg_m = Mutex.create ()
let states : st list ref = ref []

(* Keyed by the [Thread.t] handle, compared physically: the runtime hands
   back the same descriptor object on every [Thread.self] call, and that
   one C call is the whole identity cost — [Thread.id] (a second C call)
   is only needed for the diagnostic label at registration. *)
let dls_key : (Thread.t * st) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let fresh ~gen ~dom ~tid =
  {
    st_gen = gen;
    st_dom = dom;
    st_tid = tid;
    st_where = Printf.sprintf "d%d.t%d" dom tid;
    st_held_arr = Array.make 8 dummy_holder;
    st_held_n = 0;
    st_events = 0;
    st_edges = Hashtbl.create 16;
    st_edge_src = "";
    st_edge_dst = "";
    st_sites = Hashtbl.create 16;
    st_seen = Bytes.make 256 '\000';
    st_hold_max = Array.make 256 0.0;
    st_diags = [];
  }

let seen st inst =
  inst < Bytes.length st.st_seen && Bytes.unsafe_get st.st_seen inst <> '\000'

let register_site st inst site =
  if inst >= Bytes.length st.st_seen then begin
    let n = max (2 * Bytes.length st.st_seen) (inst + 1) in
    let b = Bytes.make n '\000' in
    Bytes.blit st.st_seen 0 b 0 (Bytes.length st.st_seen);
    st.st_seen <- b
  end;
  Bytes.set st.st_seen inst '\001';
  Hashtbl.replace st.st_sites inst site

let note_hold st inst hold =
  if hold > 0.0 then begin
    if inst >= Array.length st.st_hold_max then begin
      let n = max (2 * Array.length st.st_hold_max) (inst + 1) in
      let a = Array.make n 0.0 in
      Array.blit st.st_hold_max 0 a 0 (Array.length st.st_hold_max);
      st.st_hold_max <- a
    end;
    if hold > st.st_hold_max.(inst) then st.st_hold_max.(inst) <- hold
  end

(* Zero-allocation lookup: a top-level recursion (no closure) that raises
   on miss (no option box). The hot path runs this once per hook call, so
   any allocation here turns straight into minor-GC pressure. *)
let rec find tbl self gen =
  match tbl with
  | [] -> raise_notrace Not_found
  | (th, st) :: tl ->
      if th == self && st.st_gen = gen then st else find tl self gen

let register tbl self gen =
  (* Registration is rare (once per thread per run): serialize it so two
     same-domain threads interleaving their list updates cannot drop each
     other's record. *)
  Mutex.protect reg_m (fun () ->
      match find !tbl self gen with
      | st -> st
      | exception Not_found ->
          let dom = (Domain.self () :> int) in
          let st = fresh ~gen ~dom ~tid:(Thread.id self) in
          tbl := (self, st) :: List.filter (fun (th, _) -> th != self) !tbl;
          states := st :: !states;
          st)

let get () =
  let gen = Atomic.get generation in
  let tbl = Domain.DLS.get dls_key in
  let self = Thread.self () in
  match find !tbl self gen with
  | st -> st
  | exception Not_found -> register tbl self gen

let reset () =
  Mutex.protect reg_m (fun () ->
      Atomic.incr generation;
      states := [])

let bump st = st.st_events <- st.st_events + 1

let held_push st ~name ~inst ~rank ~cls ~mode ~since =
  let n = st.st_held_n in
  if n >= Array.length st.st_held_arr then begin
    let a = Array.make (2 * Array.length st.st_held_arr) dummy_holder in
    Array.blit st.st_held_arr 0 a 0 n;
    st.st_held_arr <- a
  end;
  let h = st.st_held_arr.(n) in
  if h == dummy_holder then
    (* First use of this slot by this thread: allocate its record once;
       every later push at this depth recycles it. *)
    st.st_held_arr.(n) <-
      {
        Rules.ho_name = name;
        ho_inst = inst;
        ho_rank = rank;
        ho_cls = cls;
        ho_mode = mode;
        ho_since = since;
      }
  else begin
    h.Rules.ho_name <- name;
    h.Rules.ho_inst <- inst;
    h.Rules.ho_rank <- rank;
    h.Rules.ho_cls <- cls;
    h.Rules.ho_mode <- mode;
    h.Rules.ho_since <- since
  end;
  st.st_held_n <- n + 1

let held_list st =
  (* Fresh copies, most-recent-first: the checkers may sit on these past
     the next push, which would mutate the stack's own records. *)
  let rec go i acc =
    if i >= st.st_held_n then acc
    else
      let h = st.st_held_arr.(i) in
      go (i + 1) ({ h with Rules.ho_name = h.Rules.ho_name } :: acc)
  in
  go 0 []

let held_write_back st held =
  (* Replace the stack with the given held-set (most-recent-first), used
     after a slow-path release removed an element from the middle. *)
  let n = List.length held in
  let rec put i = function
    | [] -> ()
    | h :: tl ->
        st.st_held_arr.(i) <- h;
        put (i - 1) tl
  in
  put (n - 1) held;
  st.st_held_n <- n

let add_diags st ds = if ds <> [] then st.st_diags <- ds @ st.st_diags

type summary = {
  su_threads : int;
  su_events : int;
  su_edges : (string * string) list;
  su_sites : (string * int * Rkutil.Latch.cls) list;
  su_holds : (string * Rkutil.Latch.cls * float) list;
  su_diags : Lint.Diag.t list;
}

let collect () =
  let sts = Mutex.protect reg_m (fun () -> !states) in
  let edges = Hashtbl.create 32 in
  let sites = Hashtbl.create 32 in
  let holds = Hashtbl.create 32 in
  let events = ref 0 in
  let diags = ref [] in
  List.iter
    (fun st ->
      events := !events + st.st_events;
      Hashtbl.iter (fun e () -> Hashtbl.replace edges e ()) st.st_edges;
      Hashtbl.iter
        (fun inst (n, rank, cls) ->
          Hashtbl.replace sites n (rank, cls);
          let hold =
            if inst < Array.length st.st_hold_max then st.st_hold_max.(inst)
            else 0.0
          in
          if hold > 0.0 then
            match Hashtbl.find_opt holds n with
            | Some (_, prev) when prev >= hold -> ()
            | _ -> Hashtbl.replace holds n (cls, hold))
        st.st_sites;
      diags := st.st_diags @ !diags)
    sts;
  {
    su_threads = List.length sts;
    su_events = !events;
    su_edges = Hashtbl.fold (fun e () acc -> e :: acc) edges [];
    su_sites =
      Hashtbl.fold (fun n (r, c) acc -> (n, r, c) :: acc) sites [];
    su_holds =
      Hashtbl.fold (fun n (c, h) acc -> (n, c, h) :: acc) holds [];
    su_diags = !diags;
  }
