(** The lockcheck engine: installs the [Rkutil.Latch] hooks, maintains
    per-thread trace state, and runs the LK01–LK08 rules.

    When this module is not linked (or [install] was never called) the
    latch wrappers cost one [ref] read and a branch — the planlint
    [retain_hook] pattern. *)

val install : unit -> unit
(** Reset the trace and start recording: every latch acquire/release,
    blocking marker, guarded access, and quiesce point is checked online.
    Create the workload's services {e after} installing, so no lock is
    acquired untraced and released traced. *)

val uninstall : unit -> unit
val enabled : unit -> bool

val report : unit -> Trace.summary * Lint.Diag.t list
(** Merge all thread traces and run the collect-time rules (LK01 cycle
    detection, LK02 table consistency, LK08 hold times) on top of the
    online diagnostics. Call after the workload has quiesced. *)

val checked : (unit -> 'a) -> 'a * Trace.summary * Lint.Diag.t list
(** [checked f] = install, run [f], uninstall, report. *)
