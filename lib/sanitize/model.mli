(** The declared concurrency-discipline model: the lock-order table
    (site name, rank, class), the guard map, and hold-time limits.
    This file is the specification the sanitizer audits traces against —
    and the document the MVCC refactor will be diffed against. *)

type cls = Rkutil.Latch.cls = Short | Long

val table : (string * int * cls) list
(** [(site, rank, class)]: lower ranks are acquired first. *)

val guards : (string * string list) list
(** [(structure, guard sites)]: touching [structure] requires holding one
    of the listed sites (LK04). *)

val declared : string -> (int * cls) option
(** Rank and class declared for a site name, if any. *)

val short_hold_limit_s : float
val long_hold_limit_s : float
val limit_for : cls -> float
