module Diag = Lint.Diag

(* One held lock, as seen by the thread holding it. The checkers below are
   pure functions of held-sets / edge-sets, so mutation tests can corrupt
   a record by hand and prove a rule fires — the same pattern planlint
   uses for its plan checkers. *)
(* Fields are mutable so the tracer can recycle holder records in a
   per-thread stack (zero allocation per acquire); the checkers only
   read. *)
type holder = {
  mutable ho_name : string;
  mutable ho_inst : int;
  mutable ho_rank : int;
  mutable ho_cls : Rkutil.Latch.cls;
  mutable ho_mode : Rkutil.Latch.mode;
  mutable ho_since : float;
}

let holder ?(cls = Rkutil.Latch.Short) ?(mode = Rkutil.Latch.Exclusive)
    ?(since = 0.0) ~name ~inst ~rank () =
  { ho_name = name; ho_inst = inst; ho_rank = rank; ho_cls = cls; ho_mode = mode; ho_since = since }

let path ~where name = Printf.sprintf "lock:%s/thread:%s" name where

let mode_name = function
  | Rkutil.Latch.Shared -> "shared"
  | Rkutil.Latch.Exclusive -> "exclusive"

(* LK02 (ordering, online part) + LK05 (upgrade): checked against the
   calling thread's held-set at every acquire attempt. *)
let check_acquire ~where ~held ~name ~inst ~rank ~mode =
  match List.find_opt (fun h -> h.ho_inst = inst) held with
  | Some h
    when h.ho_mode = Rkutil.Latch.Shared && mode = Rkutil.Latch.Exclusive ->
      [
        Diag.make ~rule:"LK05-upgrade" ~path:(path ~where name)
          ~hint:"release the read lock and retake in write mode"
          (Printf.sprintf
             "read->write upgrade attempt on %s: thread already holds it \
              shared (writer-preferring rwlocks self-deadlock here)"
             name);
      ]
  | Some _ ->
      [
        Diag.make ~rule:"LK02-order" ~path:(path ~where name)
          ~hint:"re-entrant acquisition self-deadlocks a plain mutex"
          (Printf.sprintf "%s (instance %d) acquired while already held" name
             inst);
      ]
  | None -> (
      match
        List.fold_left
          (fun acc h ->
            match acc with
            | Some top when top.ho_rank >= h.ho_rank -> acc
            | _ -> Some h)
          None held
      with
      | Some top when top.ho_rank >= rank ->
          [
            Diag.make ~rule:"LK02-order" ~path:(path ~where name)
              ~hint:"acquire sites in increasing declared rank"
              (Printf.sprintf
                 "%s (rank %d) acquired while holding %s (rank %d): violates \
                  the declared lock order"
                 name rank top.ho_name top.ho_rank);
          ]
      | _ -> [])

(* LK07: release must pair with an acquisition by the same thread in the
   same mode. Non-LIFO release is legal (rwlock readers). Returns the
   remaining held-set. *)
let check_release ~where ~held ~name ~inst ~mode =
  let rec take acc = function
    | [] -> None
    | h :: tl when h.ho_inst = inst && h.ho_mode = mode ->
        Some (h, List.rev_append acc tl)
    | h :: tl -> take (h :: acc) tl
  in
  match take [] held with
  | Some (h, rest) -> (rest, [], Some h)
  | None ->
      ( held,
        [
          Diag.make ~rule:"LK07-release" ~path:(path ~where name)
            ~hint:"double release, or release from a thread that never acquired"
            (Printf.sprintf "%s released %s by a thread not holding it" name
               (mode_name mode));
        ],
        None )

(* LK03: a blocking operation (socket I/O, pool join, page-fault I/O,
   drain sleeps) must not run while a Short-class latch is held. [self]
   exempts the one latch that legitimately covers the operation. *)
let check_blocking ~where ~held ~self ~what =
  List.filter_map
    (fun h ->
      if h.ho_cls = Rkutil.Latch.Long then None
      else if self = Some h.ho_inst then None
      else
        Some
          (Diag.make ~rule:"LK03-blocking" ~path:(path ~where h.ho_name)
             ~hint:"move the blocking call outside the critical section"
             (Printf.sprintf "blocking operation %s while holding latch %s"
                what h.ho_name)))
    held

(* LK04: a registered shared structure touched without any of its
   declared guards held. [guards] is the instance set of acceptable
   guards at this site ([] means the structure has no registered guard —
   treated as a registration bug). *)
let check_guard ~where ~held ~guards ~what =
  match guards with
  | [] ->
      [
        Diag.make ~rule:"LK04-guard" ~path:(path ~where what)
          ~hint:"register the structure's guard in Sanitize.Model.guards"
          (Printf.sprintf "guarded access to %s lists no guard latches" what);
      ]
  | insts ->
      if List.exists (fun h -> List.mem h.ho_inst insts) held then []
      else
        [
          Diag.make ~rule:"LK04-guard" ~path:(path ~where what)
            ~hint:"take the guard latch before touching the structure"
            (Printf.sprintf "%s accessed without its guard latch held" what);
        ]

(* LK06: at a quiesce point (end of a pool job, between protocol
   commands, public coordinator entry exit) the thread must hold
   nothing — anything held leaked across an unwind. *)
let check_quiesce ~where ~held ~label =
  List.map
    (fun h ->
      Diag.make ~rule:"LK06-leak" ~path:(path ~where h.ho_name)
        ~hint:"wrap the critical section in Latch.protect (Fun.protect)"
        (Printf.sprintf "latch %s still held at quiesce point %s (leaked \
                         across an exception unwind?)" h.ho_name label))
    held

(* LK01: the observed lock-order graph (edge a->b when b was acquired
   while a was held, by any thread) must be acyclic. A cycle is a
   potential deadlock even if no execution deadlocked yet. *)
let cycle_rule ~edges =
  let adj : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      let cur = Option.value (Hashtbl.find_opt adj a) ~default:[] in
      if not (List.mem b cur) then Hashtbl.replace adj a (b :: cur);
      if not (Hashtbl.mem adj b) then Hashtbl.replace adj b [])
    edges;
  let color = Hashtbl.create 16 in
  let seen_cycles = Hashtbl.create 4 in
  let diags = ref [] in
  let report cyc =
    (* canonical rotation so the same cycle found from different roots
       reports once *)
    let least =
      List.fold_left (fun a b -> if b < a then b else a) (List.hd cyc) cyc
    in
    let rec rotate = function
      | x :: _ as l when x = least -> l
      | x :: tl -> rotate (tl @ [ x ])
      | [] -> []
    in
    let cyc = rotate cyc in
    let key = String.concat "->" cyc in
    if not (Hashtbl.mem seen_cycles key) then begin
      Hashtbl.replace seen_cycles key ();
      diags :=
        Diag.make ~rule:"LK01-cycle"
          ~path:(Printf.sprintf "lock:%s" (List.hd cyc))
          ~hint:"break the cycle by ranking one site below the other"
          (Printf.sprintf "lock-order cycle (potential deadlock): %s -> %s"
             key (List.hd cyc))
        :: !diags
    end
  in
  let rec dfs path u =
    match Hashtbl.find_opt color u with
    | Some `Grey ->
        (* [path] is most-recent-first and ends (conceptually) at [u]:
           the cycle is the prefix of [path] back to [u]. *)
        let rec cut acc = function
          | [] -> []
          | x :: _ when x = u -> List.rev (x :: acc)
          | x :: tl -> cut (x :: acc) tl
        in
        report (cut [] path)
    | Some `Black -> ()
    | _ ->
        Hashtbl.replace color u `Grey;
        List.iter (dfs (u :: path))
          (Option.value (Hashtbl.find_opt adj u) ~default:[]);
        Hashtbl.replace color u `Black
  in
  Hashtbl.iter (fun u _ -> dfs [] u) adj;
  !diags

(* LK02 (table part): every observed site must be declared, with the
   declared rank and class. *)
let table_rule ~declared ~observed =
  List.concat_map
    (fun (name, rank, cls) ->
      match
        List.find_map
          (fun (n, r, c) -> if n = name then Some (r, c) else None)
          declared
      with
      | None ->
          [
            Diag.make ~rule:"LK02-order" ~path:(Printf.sprintf "lock:%s" name)
              ~hint:"declare the site in Sanitize.Model.table"
              (Printf.sprintf "lock site %s is not in the declared lock-order \
                               table" name);
          ]
      | Some (r, c) when r <> rank || c <> cls ->
          [
            Diag.make ~rule:"LK02-order" ~path:(Printf.sprintf "lock:%s" name)
              ~hint:"make Latch.create agree with Sanitize.Model.table"
              (Printf.sprintf
                 "lock site %s observed with rank %d/%s but declared rank \
                  %d/%s"
                 name rank
                 (match cls with Rkutil.Latch.Short -> "latch" | _ -> "lock")
                 r
                 (match c with Rkutil.Latch.Short -> "latch" | _ -> "lock"));
          ]
      | Some _ -> [])
    observed

(* LK08: hold-time outliers vs the declared class limit. *)
let hold_rule ~holds =
  List.filter_map
    (fun (name, cls, max_hold_s) ->
      let limit = Model.limit_for cls in
      if max_hold_s > limit then
        Some
          (Diag.make ~rule:"LK08-holdtime" ~severity:Diag.Warning
             ~path:(Printf.sprintf "lock:%s" name)
             ~hint:"demote the site to Long class or shrink the critical \
                    section"
             (Printf.sprintf
                "%s held for %.3fs, over the %.1fs limit of its class" name
                max_hold_s limit))
      else None)
    holds
