module Latch = Rkutil.Latch
module Diag = Lint.Diag

(* Hold-time stamps come from a coarse clock: a ticker thread updates
   [coarse_now] every few milliseconds and the hot path reads it for the
   price of a load. LK08's limits are 1s/60s, so millisecond granularity
   is three orders of magnitude of headroom — while two [gettimeofday]
   calls per lock/unlock pair were the single largest instrumentation
   cost. *)
let coarse_now = Atomic.make 0.0
let ticker : Thread.t option ref = ref None
let ticker_stop = Atomic.make false

let start_ticker () =
  Atomic.set coarse_now (Unix.gettimeofday ());
  Atomic.set ticker_stop false;
  ticker :=
    Some
      (Thread.create
         (fun () ->
           while not (Atomic.get ticker_stop) do
             Atomic.set coarse_now (Unix.gettimeofday ());
             Unix.sleepf 0.005
           done)
         ())

let stop_ticker () =
  Atomic.set ticker_stop true;
  match !ticker with
  | None -> ()
  | Some th ->
      ticker := None;
      Thread.join th

let now () = Atomic.get coarse_now

(* Allocation-free scans over the held-stack (top-level recursions, no
   closures), mirroring the clean cases of the corresponding rules. *)

let rec acquire_clean st inst rank idx =
  idx >= st.Trace.st_held_n
  ||
  let h = st.Trace.st_held_arr.(idx) in
  h.Rules.ho_inst <> inst
  && h.Rules.ho_rank < rank
  && acquire_clean st inst rank (idx + 1)

let rec blocking_clean st selfinst idx =
  idx >= st.Trace.st_held_n
  ||
  let h = st.Trace.st_held_arr.(idx) in
  (h.Rules.ho_cls = Latch.Long || h.Rules.ho_inst = selfinst)
  && blocking_clean st selfinst (idx + 1)

let h_acquire l mode =
  let st = Trace.get () in
  let name = Latch.name l in
  let inst = Latch.instance l in
  let rank = Latch.rank l in
  if not (Trace.seen st inst) then
    Trace.register_site st inst (name, rank, Latch.cls l);
  if st.Trace.st_held_n > 0 then begin
    (* Mirror of [Rules.check_acquire]'s clean case — no same instance
       held and every held rank strictly below the new one — as one
       allocation-free scan. A statement-long lock (the catalog read
       lock) makes almost every acquire nest, so this is hot; the rule
       itself (with its diag formatting) runs only on a violation. *)
    if not (acquire_clean st inst rank 0) then
      Trace.add_diags st
        (Rules.check_acquire ~where:st.Trace.st_where
           ~held:(Trace.held_list st) ~name ~inst ~rank ~mode);
    (* Lock-order edge held -> new — also on violating acquires: LK01
       needs the back edge of a cycle, which LK02 already flags. Same-
       site nesting (two buffer-pool shards) stays out of the graph so
       one mistake does not double-report as a self-cycle. *)
    for i = 0 to st.Trace.st_held_n - 1 do
      let hn = st.Trace.st_held_arr.(i).Rules.ho_name in
      if
        hn <> name
        && not (hn == st.Trace.st_edge_src && name == st.Trace.st_edge_dst)
      then begin
        if not (Hashtbl.mem st.Trace.st_edges (hn, name)) then
          Hashtbl.add st.Trace.st_edges (hn, name) ();
        st.Trace.st_edge_src <- hn;
        st.Trace.st_edge_dst <- name
      end
    done
  end;
  Trace.held_push st ~name ~inst ~rank ~cls:(Latch.cls l) ~mode
    ~since:(now ());
  Trace.bump st

let h_release l mode =
  let st = Trace.get () in
  let inst = Latch.instance l in
  let n = st.Trace.st_held_n in
  (if
     n > 0
     &&
     let h = st.Trace.st_held_arr.(n - 1) in
     h.Rules.ho_inst = inst && h.Rules.ho_mode = mode
   then begin
     (* LIFO release of the top holder: no LK07 diagnostic is possible,
        so just pop (this is nearly every release). *)
     let h = st.Trace.st_held_arr.(n - 1) in
     st.Trace.st_held_n <- n - 1;
     (* Compare unboxed; recompute in the rare (> coarse tick) case so
        the common path never boxes the difference. *)
     if now () -. h.Rules.ho_since > 0.0 then
       Trace.note_hold st inst (now () -. h.Rules.ho_since)
   end
   else begin
     let held', diags, popped =
       Rules.check_release ~where:st.Trace.st_where
         ~held:(Trace.held_list st) ~name:(Latch.name l) ~inst ~mode
     in
     Trace.held_write_back st held';
     Trace.add_diags st diags;
     match popped with
     | None -> ()
     | Some h ->
         Trace.note_hold st h.Rules.ho_inst (now () -. h.Rules.ho_since)
   end);
  Trace.bump st

let h_blocking self what =
  let st = Trace.get () in
  (if st.Trace.st_held_n > 0 then
     (* Clean iff every holder is Long-class or the self-exempt latch
        (the page-fault marker runs under its shard latch, under the
        statement's Long catalog lock): scan without building lists.
        Instances are non-negative, so -1 never matches. *)
     let selfinst =
       match self with Some l -> Latch.instance l | None -> -1
     in
     if not (blocking_clean st selfinst 0) then
       Trace.add_diags st
         (Rules.check_blocking ~where:st.Trace.st_where
            ~held:(Trace.held_list st)
            ~self:(match self with Some l -> Some (Latch.instance l) | None -> None)
            ~what));
  Trace.bump st

let guard_map : (string, string list) Hashtbl.t =
  let h = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace h k v) Model.guards;
  h

(* One-entry lookup cache keyed by physical equality: call sites pass a
   literal, so repeat accesses from the same site (the buffer pool emits
   tens of thousands) skip the string hash. Racing writers just replace
   the cached pair; a miss falls back to the table. *)
let guard_cache : (string * string list) ref = ref ("\000none", [])

let lookup_guard what =
  let w, a = !guard_cache in
  if w == what then Some a
  else
    match Hashtbl.find_opt guard_map what with
    | Some a ->
        guard_cache := (what, a);
        Some a
    | None -> None

(* Manual scan (top-level recursion, no closure): does the thread hold
   instance [i]? *)
let rec holds_inst st i idx =
  idx < st.Trace.st_held_n
  && (st.Trace.st_held_arr.(idx).Rules.ho_inst = i
     || holds_inst st i (idx + 1))

let h_guarded l what =
  let st = Trace.get () in
  match lookup_guard what with
  | None ->
      Trace.add_diags st
        [
          Diag.make ~rule:"LK04-guard"
            ~path:(Printf.sprintf "lock:%s/thread:%s" what st.Trace.st_where)
            ~hint:"register the structure in Sanitize.Model.guards"
            (Printf.sprintf "guarded structure %s is not in the guard map"
               what);
        ]
  | Some allowed ->
      if List.mem (Latch.name l) allowed then begin
        (* Success — the guard instance is held — allocates nothing. *)
        let i = Latch.instance l in
        if not (holds_inst st i 0) then
          Trace.add_diags st
            (Rules.check_guard ~where:st.Trace.st_where
               ~held:(Trace.held_list st) ~guards:[ i ] ~what)
      end
      else
        (* The latch at the call site is not a registered guard for this
           structure: same registration bug as an empty guard set. *)
        Trace.add_diags st
          (Rules.check_guard ~where:st.Trace.st_where
             ~held:(Trace.held_list st) ~guards:[] ~what)

let h_quiesce label =
  let st = Trace.get () in
  if st.Trace.st_held_n > 0 then
    Trace.add_diags st
      (Rules.check_quiesce ~where:st.Trace.st_where
         ~held:(Trace.held_list st) ~label);
  Trace.bump st

let hooks : Latch.hooks =
  { h_acquire; h_release; h_blocking; h_guarded; h_quiesce }

let install () =
  Trace.reset ();
  start_ticker ();
  Latch.hooks := Some hooks

let uninstall () =
  Latch.hooks := None;
  stop_ticker ()

let enabled () = Option.is_some !Latch.hooks

let report () =
  let su = Trace.collect () in
  let diags =
    su.Trace.su_diags
    @ Rules.cycle_rule ~edges:su.Trace.su_edges
    @ Rules.table_rule ~declared:Model.table ~observed:su.Trace.su_sites
    @ Rules.hold_rule ~holds:su.Trace.su_holds
  in
  (su, Diag.sort diags)

let checked f =
  install ();
  match f () with
  | v ->
      uninstall ();
      let su, diags = report () in
      (v, su, diags)
  | exception e ->
      uninstall ();
      raise e
