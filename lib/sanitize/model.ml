type cls = Rkutil.Latch.cls = Short | Long

(* The declared lock-order table. Lower ranks are acquired first: every
   real nesting in the engine goes strictly downward through this list.
   [Rkutil.Latch.create] sites must agree with it — LK02's table check
   flags any observed site that is missing or mismatched, so this file is
   the single place a new lock must be declared.

   The two Long-class sites are held across blocking work by design: the
   coordinator lock serializes shard RPC round-trips, and the catalog
   rwlock is held across whole statements (including page-fault I/O). *)
let table =
  [
    ("shard.coordinator", 10, Long);
    ("server.listener", 12, Short);
    ("shard.frontend", 14, Short);
    ("server.catalog.rwlock", 20, Long);
    ("server.session", 30, Short);
    ("server.plan_cache", 40, Short);
    ("server.metrics", 50, Short);
    ("server.ivar", 55, Short);
    ("rkutil.task_pool", 60, Short);
    ("exec.exchange.gather", 65, Short);
    ("storage.bufpool.shard", 70, Short);
    (* Reserved for the sanitizer's own integration tests. *)
    ("test.outer", 100, Short);
    ("test.inner", 110, Short);
  ]

(* Guard map: which latch site(s) must be held to touch a registered
   shared structure (LK04). *)
let guards =
  [
    ("bufpool.shard.state", [ "storage.bufpool.shard" ]);
    ("plan_cache.table", [ "server.plan_cache" ]);
    ("coordinator.links", [ "shard.coordinator" ]);
    ("test.guarded", [ "test.outer" ]);
  ]

let declared name =
  List.find_map
    (fun (n, rank, cls) -> if n = name then Some (rank, cls) else None)
    table

(* Hold-time outlier thresholds per class (LK08, warning severity).
   Short-class critical sections are O(1) structure surgery; a second
   under one means a latch is doing a lock's job. *)
let short_hold_limit_s = 1.0
let long_hold_limit_s = 60.0

let limit_for = function Short -> short_hold_limit_s | Long -> long_hold_limit_s
