(** The lockcheck rule catalog (LK01–LK08), as pure checkers.

    Online rules take the calling thread's held-set plus the event and
    return diagnostics; collect-time rules take the merged edge/site/hold
    summaries. Pureness is the point: mutation tests hand-build corrupted
    held-sets and edge lists and prove each rule fires exactly, without
    having to construct a real deadlock. *)

type holder = {
  mutable ho_name : string;
  mutable ho_inst : int;
  mutable ho_rank : int;
  mutable ho_cls : Rkutil.Latch.cls;
  mutable ho_mode : Rkutil.Latch.mode;
  mutable ho_since : float;  (** [Unix.gettimeofday] at acquisition *)
}
(** One held lock. Mutable so the tracer can recycle records in its
    per-thread held-stack; the checkers never write. *)

val holder :
  ?cls:Rkutil.Latch.cls ->
  ?mode:Rkutil.Latch.mode ->
  ?since:float ->
  name:string ->
  inst:int ->
  rank:int ->
  unit ->
  holder
(** Convenience constructor ([cls] defaults to [Short], [mode] to
    [Exclusive]). *)

val check_acquire :
  where:string ->
  held:holder list ->
  name:string ->
  inst:int ->
  rank:int ->
  mode:Rkutil.Latch.mode ->
  Lint.Diag.t list
(** LK02 (rank ordering, re-entrancy) and LK05 (read→write upgrade). *)

val check_release :
  where:string ->
  held:holder list ->
  name:string ->
  inst:int ->
  mode:Rkutil.Latch.mode ->
  holder list * Lint.Diag.t list * holder option
(** LK07 (double/foreign release). Returns the held-set with the matching
    holder removed, diagnostics, and the removed holder (for hold-time
    accounting). *)

val check_blocking :
  where:string ->
  held:holder list ->
  self:int option ->
  what:string ->
  Lint.Diag.t list
(** LK03 (blocking operation under a Short-class latch); [self] exempts
    one latch instance that legitimately covers the operation. *)

val check_guard :
  where:string ->
  held:holder list ->
  guards:int list ->
  what:string ->
  Lint.Diag.t list
(** LK04 (guarded-structure access without any listed guard instance
    held). *)

val check_quiesce :
  where:string -> held:holder list -> label:string -> Lint.Diag.t list
(** LK06 (latch still held at a point where the thread must hold
    nothing). *)

val cycle_rule : edges:(string * string) list -> Lint.Diag.t list
(** LK01 (lock-order-graph acyclicity over observed acquired-while-held
    edges). *)

val table_rule :
  declared:(string * int * Rkutil.Latch.cls) list ->
  observed:(string * int * Rkutil.Latch.cls) list ->
  Lint.Diag.t list
(** LK02 (observed sites must match the declared lock-order table). *)

val hold_rule :
  holds:(string * Rkutil.Latch.cls * float) list -> Lint.Diag.t list
(** LK08 (max observed hold time per site vs its class limit; warning
    severity). *)
