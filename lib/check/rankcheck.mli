(** Seed-deterministic differential fuzzing for the ranking pipeline.

    Each case generates random tables and a random top-k query, computes the
    answer with a naive oracle (materialize the full join in relalg, score,
    sort with a total order, take k), then enumerates every plan the
    optimizer memo retains — rank-join and join-then-sort shapes, all join
    orders, HRJN/NRJN variants, across enumerator configurations — executes
    each one, and asserts:

    - the planlint structural and estimate rules ({!Lint.Engine.lint_plan})
      report no errors on any plan;
    - the plan's top-k score multiset equals the oracle's;
    - no rank join reads past an exhausted-empty input, and every observed
      input depth stays within the Theorem-2 depth model (with slack for
      estimation error).

    Failing cases auto-shrink (drop table rows, then query conjuncts, then
    reduce k) and carry a verbatim replay command. Case [i] of
    [run ~seed ~cases] is exactly case [0] of [run ~seed:(seed + i) ~cases:1],
    so a single integer reproduces any failure. *)

type table_spec = {
  t_name : string;
  t_key_domain : int;
  t_dist : Workload.Dist.t;
  t_rows : (int * int * float) list;  (** (id, key, score) *)
}

type case = {
  c_seed : int;
  c_tables : table_spec list;
  c_query : Sqlfront.Ast.query;
}

type failure = {
  f_seed : int;
  f_reason : string;
  f_plan : string option;  (** [Plan.describe] of the offending plan *)
  f_case : case;  (** auto-shrunk minimal counterexample *)
  f_replay : string;  (** verbatim CLI command reproducing the failure *)
}

type outcome = {
  o_cases : int;
  o_plans : int;  (** plans executed and compared across all cases *)
  o_failures : failure list;
}

val gen_case : int -> case
(** Deterministically generate the test case for a seed: 2–3 tables with
    skewed/tied/empty data and a conjunctive top-k join query over them. *)

val build_catalog : case -> Storage.Catalog.t
(** Materialize a case's tables (with score and key indexes) into a fresh
    catalog. *)

val check_case : case -> (int, string * string option) result
(** Run the full differential check for one case. [Ok n] means all [n]
    enumerated plans agreed with the oracle and passed every invariant;
    [Error (reason, plan)] describes the first divergence. *)

val shrink : case -> case
(** Greedily minimize a failing case while it keeps failing. *)

val run_case : int -> (int, failure) result
(** [check_case] on [gen_case seed], shrinking on failure. *)

val run : ?progress:(int -> unit) -> seed:int -> cases:int -> unit -> outcome
(** Check [cases] consecutive seeds starting at [seed]. [progress] is called
    with the 0-based case index before each case. *)

val pp_failure : Format.formatter -> failure -> unit

(** {2 Lint-only mode}

    Static sweep: optimizes each case with the emit-time lint mode enabled
    (every MEMO-retained subplan is checked as it is stored), then runs the
    full planlint catalog over every finished plan and the optimizer's
    chosen statement — nothing is executed. This is what
    [rankopt lint --fuzz-seed] and [make lint] drive. *)

val lint_case : case -> (int, string * string option) result
(** [Ok n]: [n] plans linted with zero diagnostics. *)

val run_case_lint : int -> (int, failure) result
(** [lint_case] on [gen_case seed] (no shrinking — lint failures are
    already localized by the diagnostic's plan path). *)

val run_lint : ?progress:(int -> unit) -> seed:int -> cases:int -> unit -> outcome
(** Like {!run}, but [o_plans] counts plans linted. *)

(** {2 Server mode}

    Replays generated queries through a live {!Server.Listener} instead of
    enumerating plans: each case's query is [PREPARE]d with [LIMIT ?] and
    [EXECUTE]d twice at two different [k] values against an in-process
    server (worker domains, plan cache, wire protocol), comparing score
    multisets with direct single-threaded execution of the same template.
    The second replay at each [k] must additionally be served from the
    plan cache. *)

val check_case_server : case -> (int, string * string option) result
(** [Ok n]: all [n] server executions matched direct execution. *)

val run_case_server : int -> (int, failure) result

val run_server : ?progress:(int -> unit) -> seed:int -> cases:int -> unit -> outcome
(** Like {!run}, but [o_plans] counts server executions checked. *)

(** {2 Degree mode}

    Intra-query-parallelism determinism sweep: plans each case with
    exchange generation enabled ([env.dop = degree]), executes the chosen
    plan at degree overrides 1, 2, [degree] and [2*degree] on a shared
    domain pool, and asserts the output is {e bit identical} — same
    tuples, same scores, same order — at every degree (exchanges are
    order-preserving by construction). An independently planned serial
    statement cross-checks the score multiset so a deterministic-but-wrong
    parallel plan cannot pass. This is what [rankopt fuzz --degree N]
    drives. *)

val check_case_degree :
  ?pool:Rkutil.Task_pool.t -> degree:int -> case -> (int, string * string option) result
(** [Ok n]: [n] degree executions matched the degree-1 reference. *)

val run_case_degree : ?pool:Rkutil.Task_pool.t -> degree:int -> int -> (int, failure) result

val run_degree :
  ?progress:(int -> unit) -> seed:int -> cases:int -> degree:int -> unit -> outcome
(** Like {!run}, but [o_plans] counts degree executions compared. *)

(** {2 Vector mode}

    Batched-execution differential check: every MEMO-retained plan of each
    case is executed twice — tuple-at-a-time ([Executor.run
    ~vectorized:false], the pre-batching interpreter) and batch-at-a-time
    (the default) — and the two runs must be {e bit identical}: same
    tuples, same scores, same order, no tolerance (the batch kernels
    replicate the scalar expression interpreter exactly, including Null
    propagation and NaN ordering). Rank-join nodes must additionally
    report identical per-input depth counters and emitted counts across
    the two runs, proving the vectorized spines never change how far a
    streaming rank join reads. This is what [rankopt fuzz --vector]
    drives. *)

val check_case_vector : case -> (int, string * string option) result
(** [Ok n]: [n] plans executed identically under both modes, counters
    included. *)

val run_case_vector : int -> (int, failure) result

val run_vector : ?progress:(int -> unit) -> seed:int -> cases:int -> unit -> outcome
(** Like {!run}, but [o_plans] counts vectorized/serial plan pairs
    compared. *)

(** {2 Enumeration mode}

    Ranked-enumeration differential check for the cursor path: each case's
    query is [PREPARE]d against an in-process {!Server.Service},
    [EXECUTE]d at its k, then [FETCH]ed in deterministically varied batch
    sizes until exhaustion. Every growing prefix must be {e tuple-exact}
    — same rows, same scores, same order, including ties — against a full
    ranked-list oracle (naive join, NaN-scored answers dropped, sorted
    score-descending with canonical-column tie order, exactly the cursor
    normalization contract). Enum cases snap all scores to the 1/8 grid so
    totals are exact dyadic rationals and bit-identical across plan
    shapes; a sixteenth of the rows carry NaN scores. Exhaustion must land
    exactly at the oracle's row count and a further fetch must return no
    rows. Non-enumerable statements must leave no cursor behind. This is
    what [rankopt fuzz --enum] drives. *)

val enum_case : int -> case
(** {!gen_case} with scores snapped to the 1/8 grid and occasional NaNs. *)

val check_case_enum : case -> (int, string * string option) result
(** [Ok n]: [n] fetch prefixes (plus cursor-lifecycle checks) matched the
    enumeration oracle. *)

val run_case_enum : int -> (int, failure) result

val run_enum : ?progress:(int -> unit) -> seed:int -> cases:int -> unit -> outcome
(** Like {!run}, but [o_plans] counts prefix checks. *)

(** {2 Rank mode}

    By-rank window differential check for the order-statistic access
    paths: each case is a single scored table (1/8-grid scores forcing tie
    blocks, a sixteenth NaN-scored) with a [WHERE rank() BETWEEN lo AND hi]
    window, occasionally with a residual filter and windows overshooting
    the cardinality. Both physical variants — counted index descent and
    drain-sort-slice — are linted and executed against a sort-everything
    oracle (NaN dropped, competition ranking, canonical tie order), then
    the printed query re-enters through the parser and the optimizer's own
    cost arbitration. Every result must be tuple-exact. This is what
    [rankopt fuzz --rank] drives. *)

val rank_case : int -> case
(** Deterministic single-table by-rank window case for a seed. *)

val check_case_rank : case -> (int, string * string option) result
(** [Ok n]: [n] window executions (both variants plus the SQL path)
    matched the oracle exactly. *)

val run_case_rank : int -> (int, failure) result

val run_rank : ?progress:(int -> unit) -> seed:int -> cases:int -> unit -> outcome
(** Like {!run}, but [o_plans] counts window executions compared. *)

(** {2 Shard mode}

    Differential check for the distributed scatter/gather coordinator:
    each case's top-k join runs on a single node and through an
    in-process cluster of [shards] engine shards hash-partitioned on
    [key] (generated joins are always on [key], so every case must
    scatter). The sharded answer must carry the single-node score
    sequence (to within float association jitter across plan shapes),
    tuple-exact rows above the k-th score, and boundary rows
    drawn from the oracle's k-th-score tie group; a routed [INSERT]
    through the coordinator followed by a re-query checks DML routing,
    scatter-cache invalidation and partitioning epochs. This is what
    [rankopt fuzz --shard N] drives. *)

val check_case_shard : shards:int -> case -> (int, string) result
(** [Ok n]: [n] sharded statements matched the single-node oracle. *)

val run_case_shard : shards:int -> int -> (int, failure) result

val run_shard :
  ?progress:(int -> unit) -> seed:int -> cases:int -> shards:int -> unit -> outcome
(** Like {!run}, but [o_plans] counts sharded statements checked. *)
