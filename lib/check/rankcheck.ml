(* rankcheck: a seed-deterministic differential fuzz harness.

   Each case generates random tables (duplicates, ties, skewed score
   distributions, empty relations) and a random ranking query over them,
   computes the answer with a naive oracle (materialize the full join in
   relalg, score, total-order sort, take k), then enumerates every plan the
   optimizer MEMO retains — rank-join and join-then-sort, all join orders,
   HRJN/NRJN variants, under several enumerator configurations — and
   executes each one, asserting:

   - Plan_verify invariants on every plan;
   - top-k score-multiset equality against the oracle;
   - per rank-join node, no over-read past an exhausted-empty input and
     observed depth within the (slackened) Theorem-2 model bound.

   Failures auto-shrink (tables row by row, then query term by term) and
   report a verbatim replay command: case [i] of [run ~seed ~cases] is
   exactly case 0 of [run ~seed:(seed + i) ~cases:1]. *)

open Relalg

type table_spec = {
  t_name : string;
  t_key_domain : int;
  t_dist : Workload.Dist.t;
  t_rows : (int * int * float) list;  (* (id, key, score) *)
}

type case = {
  c_seed : int;
  c_tables : table_spec list;
  c_query : Sqlfront.Ast.query;
}

type failure = {
  f_seed : int;
  f_reason : string;
  f_plan : string option;
  f_case : case;  (* auto-shrunk minimal counterexample *)
  f_replay : string;
}

type outcome = {
  o_cases : int;
  o_plans : int;  (* plans executed and compared across all cases *)
  o_failures : failure list;
}

(* ------------------------------------------------------------------ *)
(* Case generation                                                     *)
(* ------------------------------------------------------------------ *)

(* Query constants live on a 0.125 grid so the pretty-printed SQL ("%g")
   round-trips exactly through the repl parser. *)
let grid8 prng lo n = 0.125 *. float_of_int (lo + Rkutil.Prng.int prng n)

let gen_table prng name =
  let domain = 1 + Rkutil.Prng.int prng 6 in
  let dist =
    match Rkutil.Prng.int prng 4 with
    | 0 -> Workload.Dist.Uniform { lo = 0.0; hi = 1.0 }
    | 1 -> Workload.Dist.Gaussian { mean = 0.5; sd = 0.2 }
    | 2 -> Workload.Dist.Zipf { n = 16; alpha = 1.0 }
    | _ -> Workload.Dist.Sum_uniform { j = 2 }
  in
  let n =
    match Rkutil.Prng.int prng 12 with
    | 0 -> 0 (* empty relations are a first-class case *)
    | 1 -> 1
    | _ -> 2 + Rkutil.Prng.int prng 23
  in
  (* A third of the tables snap scores to a coarse grid, forcing ties. *)
  let snap = Rkutil.Prng.int prng 3 = 0 in
  let rows =
    List.init n (fun i ->
        let s = Workload.Dist.sample prng dist in
        let s = if snap then Float.round (s *. 4.0) /. 4.0 else s in
        (i, Rkutil.Prng.int prng domain, s))
  in
  { t_name = name; t_key_domain = domain; t_dist = dist; t_rows = rows }

let gen_case seed =
  let prng = Rkutil.Prng.create seed in
  let m = if Rkutil.Prng.int prng 3 = 0 then 3 else 2 in
  let names = List.init m (Printf.sprintf "T%d") in
  let tables = List.map (gen_table prng) names in
  let open Sqlfront.Ast in
  let col t c = Column { table = Some t; name = c } in
  let jeq a b = Compare (Eq, col a "key", col b "key") in
  let joins =
    if m = 2 then [ jeq "T0" "T1" ]
    else if Rkutil.Prng.bool prng then [ jeq "T0" "T1"; jeq "T0" "T2" ] (* star *)
    else [ jeq "T0" "T1"; jeq "T1" "T2" ] (* chain *)
  in
  let filters =
    List.filter_map
      (fun ts ->
        if Rkutil.Prng.int prng 3 <> 0 then None
        else
          match Rkutil.Prng.int prng 3 with
          | 0 ->
              Some (Compare (Ge, col ts.t_name "score", Number (grid8 prng 0 7)))
          | 1 ->
              Some
                (Compare
                   ( Eq,
                     col ts.t_name "key",
                     Number (float_of_int (Rkutil.Prng.int prng ts.t_key_domain)) ))
          | _ ->
              Some
                (Compare
                   ( Le,
                     col ts.t_name "key",
                     Number (float_of_int (Rkutil.Prng.int prng ts.t_key_domain)) )))
      tables
  in
  (* Non-negative 0.125-grid weights; each relation is ranked with high
     probability, at least one always is. *)
  let ranked =
    let flags = List.map (fun _ -> Rkutil.Prng.int prng 6 <> 0) tables in
    if List.exists Fun.id flags then flags
    else List.mapi (fun i _ -> i = 0) flags
  in
  let score_terms =
    List.concat
      (List.map2
         (fun ts r ->
           if not r then []
           else
             let w = grid8 prng 1 8 in
             if w = 1.0 then [ col ts.t_name "score" ]
             else [ Binop (Mul, Number w, col ts.t_name "score") ])
         tables ranked)
  in
  let order_expr =
    match score_terms with
    | [] -> assert false
    | first :: rest -> List.fold_left (fun acc t -> Binop (Add, acc, t)) first rest
  in
  let k = 1 + Rkutil.Prng.int prng 12 in
  let query =
    {
      select = [ Star ];
      from = names;
      where = joins @ filters;
      rank_between = None;
      rank_dense = false;
      group_by = [];
      order_by = Some (order_expr, Desc);
      limit = Some k;
      limit_param = false;
    }
  in
  { c_seed = seed; c_tables = tables; c_query = query }

(* ------------------------------------------------------------------ *)
(* Catalog materialization                                             *)
(* ------------------------------------------------------------------ *)

let table_schema () =
  Schema.of_columns
    [
      Schema.column "id" Value.Tint;
      Schema.column "key" Value.Tint;
      Schema.column "score" Value.Tfloat;
    ]

let build_catalog case =
  let cat = Storage.Catalog.create () in
  List.iter
    (fun ts ->
      let tuples =
        List.map
          (fun (i, k, s) ->
            Tuple.make [ Value.Int i; Value.Int k; Value.Float s ])
          ts.t_rows
      in
      ignore (Storage.Catalog.create_table cat ts.t_name (table_schema ()) tuples);
      (* The ranked (unclustered) score path plus a key index, mirroring
         Workload.Generator.load_scored_table. *)
      ignore
        (Storage.Catalog.create_index cat ~clustered:false
           ~name:(ts.t_name ^ "_score") ~table:ts.t_name
           ~key:(Expr.col ~relation:ts.t_name "score") ());
      ignore
        (Storage.Catalog.create_index cat ~name:(ts.t_name ^ "_key")
           ~table:ts.t_name
           ~key:(Expr.col ~relation:ts.t_name "key") ()))
    case.c_tables;
  cat

(* ------------------------------------------------------------------ *)
(* The oracle: materialize, filter, cross, filter joins, sort, take k  *)
(* ------------------------------------------------------------------ *)

let oracle_topk catalog (query : Core.Logical.t) =
  let rels =
    List.map
      (fun (b : Core.Logical.base) ->
        let info = Storage.Catalog.table catalog b.Core.Logical.name in
        let rel =
          Relation.create info.Storage.Catalog.tb_schema
            (Storage.Heap_file.to_list info.Storage.Catalog.tb_heap)
        in
        match b.Core.Logical.filter with
        | None -> rel
        | Some f -> Relation.filter f rel)
      query.Core.Logical.relations
  in
  let crossed =
    match rels with
    | [] -> invalid_arg "oracle_topk: no relations"
    | r0 :: rest -> List.fold_left Relation.cross r0 rest
  in
  let joined =
    List.fold_left
      (fun acc (j : Core.Logical.join_pred) ->
        Relation.filter
          Expr.(
            Cmp
              ( Eq,
                col ~relation:j.Core.Logical.left_table j.Core.Logical.left_column,
                col ~relation:j.Core.Logical.right_table j.Core.Logical.right_column
              ))
          acc)
      crossed query.Core.Logical.joins
  in
  let score =
    match Core.Logical.scoring_expr query with
    | Some s -> s
    | None -> invalid_arg "oracle_topk: not a ranking query"
  in
  let k = Option.value ~default:max_int query.Core.Logical.k in
  Relation.top_k ~score ~k joined

(* ------------------------------------------------------------------ *)
(* Plan space: every retained MEMO plan under several configurations   *)
(* ------------------------------------------------------------------ *)

let enumerate_plans env (query : Core.Logical.t) =
  let names =
    List.map (fun (b : Core.Logical.base) -> b.Core.Logical.name)
      query.Core.Logical.relations
  in
  let k = Option.value ~default:max_int query.Core.Logical.k in
  let want =
    Option.map
      (fun score ->
        { Core.Plan.expr = score; direction = Core.Interesting_orders.Desc })
      (Core.Logical.scoring_expr query)
  in
  (* Finish a retained full-set subplan the way the enumerator finishes its
     best plan: apply Top-k, inserting a sort when the plan's order does not
     already satisfy the score order. *)
  let finish (sp : Core.Memo.subplan) =
    if Core.Logical.is_ranking query then
      match want with
      | Some w when Core.Plan.order_satisfies ~have:sp.Core.Memo.order ~want:(Some w)
        ->
          Core.Plan.Top_k { k; input = sp.Core.Memo.plan }
      | Some w ->
          Core.Plan.Top_k
            { k; input = Core.Plan.Sort { order = w; input = sp.Core.Memo.plan } }
      | None -> sp.Core.Memo.plan
    else sp.Core.Memo.plan
  in
  let configs =
    [
      { Core.Enumerator.rank_aware = true; first_rows = true };
      { Core.Enumerator.rank_aware = true; first_rows = false };
      { Core.Enumerator.rank_aware = false; first_rows = false };
    ]
  in
  let seen = Hashtbl.create 64 in
  let plans = ref [] in
  List.iter
    (fun config ->
      let result = Core.Enumerator.run ~config env in
      let full_mask = Core.Enumerator.relation_mask env names in
      let finished =
        List.map finish (Core.Memo.plans result.Core.Enumerator.memo full_mask)
        @
        match result.Core.Enumerator.best with
        | Some sp -> [ sp.Core.Memo.plan ]
        | None -> []
      in
      List.iter
        (fun p ->
          let d = Core.Plan.describe p in
          if not (Hashtbl.mem seen d) then begin
            Hashtbl.add seen d ();
            plans := p :: !plans
          end)
        finished)
    configs;
  List.rev !plans

(* ------------------------------------------------------------------ *)
(* Per-plan assertions                                                 *)
(* ------------------------------------------------------------------ *)

let scores_close a b =
  Float.abs (a -. b) <= 1e-6 *. (1.0 +. Float.max (Float.abs a) (Float.abs b))

let sorted_desc scores = List.sort (fun a b -> Float.compare b a) scores

(* Score result tuples with the query's own scoring expression rather than
   trusting the executor's reported score (which reflects the plan's
   physical order expression — e.g. an unweighted index key that sorts
   identically to the weighted score). Scoring returned tuples directly is
   also the stronger check: it validates the rows, not a side channel. *)
let plan_scores score (res : Core.Executor.run_result) =
  let eval = Expr.compile_float res.Core.Executor.schema score in
  sorted_desc (List.map (fun (tu, _) -> eval tu) res.Core.Executor.rows)

(* Observed depths vs an exact Theorem-2 bound. Two rules:

   - exhausted-empty (Rule A): if one input of a rank join produced nothing
     (depth 0), the join is provably empty and the other input must not be
     read past the couple of pulls needed to learn that — the exact
     regression the rank-join exhaustion fix closes;
   - simulated corner bound (Rule B): for each rank-join node that finite
     top-k demand reaches, drain its input streams and compute the minimal
     corner depth d* at which the k demanded results dominate the HRJN
     threshold max(l_1 + r_d, l_d + r_1) — the depth Theorem 2 proves
     sufficient. A correct rank join stops within d*; we allow 2·d* + 8 for
     pull-alternation overshoot. The bound is computed from the node's
     actual streams, not from histogram estimates, so data skew and
     score/key correlation cannot produce false alarms: when fewer than k
     results exist, d* is exhaustion and a full drain is accepted. *)

(* Smallest d such that the k best join results among pairs within the d×d
   corner dominate the threshold; returns the per-side depths actually
   reachable. Streams are (key, score) in stream (score-descending) order. *)
let corner_depth ~k left right =
  let nl = Array.length left and nr = Array.length right in
  if nl = 0 || nr = 0 then (min 1 nl, min 1 nr)
  else begin
    let topk = ref [] (* best pair scores so far, descending, length <= k *) in
    let add s =
      let rec ins = function
        | [] -> [ s ]
        | x :: tl -> if s > x then s :: x :: tl else x :: ins tl
      in
      topk := List.filteri (fun i _ -> i < k) (ins !topk)
    in
    let kth () =
      if List.length !topk < k then neg_infinity else List.nth !topk (k - 1)
    in
    let l1 = snd left.(0) and r1 = snd right.(0) in
    let d = ref 0 and stop = ref false in
    while not !stop do
      incr d;
      let dd = !d in
      (* Pairs entering the corner at depth dd. *)
      if dd <= nl then begin
        let kl, sl = left.(dd - 1) in
        for j = 0 to min dd nr - 1 do
          let kr, sr = right.(j) in
          if Value.compare kl kr = 0 then add (sl +. sr)
        done
      end;
      if dd <= nr then begin
        let kr, sr = right.(dd - 1) in
        for i = 0 to min (dd - 1) nl - 1 do
          let kl, sl = left.(i) in
          if Value.compare kl kr = 0 then add (sl +. sr)
        done
      end;
      let t =
        Float.max
          (if dd < nl then snd left.(dd - 1) +. r1 else neg_infinity)
          (if dd < nr then l1 +. snd right.(dd - 1) else neg_infinity)
      in
      if kth () >= t || (dd >= nl && dd >= nr) then stop := true
    done;
    (min !d nl, min !d nr)
  end

(* m-way generalization; the corner top-k is recomputed per depth (inputs
   are tiny). Returns one reachable depth per input. *)
let corner_depth_nary ~k streams =
  let m = Array.length streams in
  let sizes = Array.map Array.length streams in
  if Array.exists (fun n -> n = 0) sizes then
    Array.to_list (Array.map (fun n -> min 1 n) sizes)
  else begin
    let tops = Array.map (fun s -> snd s.(0)) streams in
    let sum_tops = Array.fold_left ( +. ) 0.0 tops in
    let n_max = Array.fold_left max 0 (Array.to_list sizes |> Array.of_list) in
    let d = ref 0 and stop = ref false in
    while not !stop do
      incr d;
      let dd = !d in
      let topk = ref [] in
      let add s =
        let rec ins = function
          | [] -> [ s ]
          | x :: tl -> if s > x then s :: x :: tl else x :: ins tl
        in
        topk := List.filteri (fun i _ -> i < k) (ins !topk)
      in
      let rec enum i key acc =
        if i = m then add acc
        else
          for x = 0 to min dd sizes.(i) - 1 do
            let kx, sx = streams.(i).(x) in
            let ok, key' =
              match key with
              | None -> (true, Some kx)
              | Some k0 -> (Value.compare k0 kx = 0, key)
            in
            if ok then enum (i + 1) key' (acc +. sx)
          done
      in
      enum 0 None 0.0;
      let kth =
        if List.length !topk < k then neg_infinity else List.nth !topk (k - 1)
      in
      let t = ref neg_infinity in
      Array.iteri
        (fun i s ->
          if dd < sizes.(i) then
            t := Float.max !t (snd s.(dd - 1) +. sum_tops -. tops.(i)))
        streams;
      if kth >= !t || dd >= n_max then stop := true
    done;
    Array.to_list (Array.map (fun n -> min !d n) sizes)
  end

(* Drain a rank-join input subplan into its (key, score) stream. *)
let side_stream catalog plan score ~table ~column =
  let res = Core.Executor.run catalog plan in
  let schema = res.Core.Executor.schema in
  let keyf = Expr.compile schema (Expr.col ~relation:table column) in
  let scoref =
    match score with
    | Some e -> Expr.compile_float schema e
    | None -> fun _ -> 0.0
  in
  (* Sort by score even though rank-join inputs already deliver descending
     order: an NRJN inner is a plain (heap-order) scan, and the corner
     threshold needs its maximum as r_1. *)
  let arr =
    Array.of_list
      (List.map (fun (tu, _) -> (keyf tu, scoref tu)) res.Core.Executor.rows)
  in
  Array.sort (fun (_, a) (_, b) -> Float.compare b a) arr;
  arr

let allowed_of_corner d = (2 * d) + 8

(* Walk the plan propagating output demand: Top-k caps it, blocking
   operators (sort, filters above joins) reset it to "drain". Rank nodes
   reached by finite demand get simulated corner bounds, keyed by their
   [Plan.describe] label (the executor reports observed depths under the
   same label); identical labels take the most lenient bound. *)
let depth_bounds catalog plan =
  let binary_tbl : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
  let nary_tbl : (string, int list) Hashtbl.t = Hashtbl.create 8 in
  let record_binary label (al, ar) =
    match Hashtbl.find_opt binary_tbl label with
    | Some (bl, br) -> Hashtbl.replace binary_tbl label (max al bl, max ar br)
    | None -> Hashtbl.add binary_tbl label (al, ar)
  in
  let record_nary label bs =
    match Hashtbl.find_opt nary_tbl label with
    | Some prev -> Hashtbl.replace nary_tbl label (List.map2 max prev bs)
    | None -> Hashtbl.add nary_tbl label bs
  in
  let rec walk demand plan =
    match plan with
    | Core.Plan.Top_k { k; input } -> walk (min demand k) input
    | Core.Plan.Sort { input; _ } | Core.Plan.Filter { input; _ } ->
        walk max_int input
    (* a gather drains its spine regardless of the consumer's demand *)
    | Core.Plan.Exchange { input; _ } -> walk max_int input
    | Core.Plan.Table_scan _ | Core.Plan.Index_scan _
    | Core.Plan.Rank_index_scan _ | Core.Plan.Remote_scan _ ->
        ()
    (* distributed nodes never reach the local depth checker: the shard
       harness compares coordinator output tuple-by-tuple instead *)
    | Core.Plan.Gather_merge { inputs; _ } -> List.iter (walk max_int) inputs
    | Core.Plan.Join
        {
          algo = (Core.Plan.Hrjn | Core.Plan.Nrjn) as algo;
          cond;
          left;
          right;
          left_score;
          right_score;
        } ->
        let label = Core.Plan.describe plan in
        if demand = max_int then begin
          record_binary label (max_int, max_int);
          walk max_int left;
          walk max_int right
        end
        else begin
          let ls =
            side_stream catalog left left_score ~table:cond.Core.Logical.left_table
              ~column:cond.Core.Logical.left_column
          in
          let rs =
            side_stream catalog right right_score
              ~table:cond.Core.Logical.right_table
              ~column:cond.Core.Logical.right_column
          in
          let dl, dr = corner_depth ~k:demand ls rs in
          let al = allowed_of_corner dl and ar = allowed_of_corner dr in
          record_binary label (al, ar);
          walk al left;
          (* NRJN rescans its inner per outer tuple; its inner depth is not
             demand-bounded. *)
          walk (if algo = Core.Plan.Nrjn then max_int else ar) right
        end
    | Core.Plan.Join { left; right; _ } ->
        walk max_int left;
        walk max_int right
    | Core.Plan.Nary_rank_join { inputs; scores; key; tables } ->
        let label = Core.Plan.describe plan in
        if demand = max_int then begin
          record_nary label (List.map (fun _ -> max_int) inputs);
          List.iter (walk max_int) inputs
        end
        else begin
          let streams =
            Array.of_list
              (List.map2
                 (fun (input, score) table ->
                   side_stream catalog input (Some score) ~table ~column:key)
                 (List.combine inputs scores)
                 tables)
          in
          let ds = corner_depth_nary ~k:demand streams in
          let allowed = List.map allowed_of_corner ds in
          record_nary label allowed;
          List.iter2 walk allowed inputs
        end
    (* anyK's build drains every input regardless of demand; there is no
       depth bound to check on it *)
    | Core.Plan.Any_k { inputs; _ } -> List.iter (walk max_int) inputs
  in
  walk max_int plan;
  (binary_tbl, nary_tbl)

let depth_check catalog plan (res : Core.Executor.run_result) =
  let exhausted_empty =
    List.find_map
      (fun (rn : Core.Executor.rank_node_stats) ->
        let l = Exec.Exec_stats.left_depth rn.Core.Executor.stats in
        let r = Exec.Exec_stats.right_depth rn.Core.Executor.stats in
        if l = 0 && r > 2 then
          Some
            (Printf.sprintf
               "%s over-reads right input (depth %d) after empty left input"
               rn.Core.Executor.label r)
        else if r = 0 && l > 2 && rn.Core.Executor.algo <> Core.Plan.Nrjn then
          (* NRJN legitimately learns the inner is empty only after the
             first outer pull, but never needs more than one. *)
          Some
            (Printf.sprintf
               "%s over-reads left input (depth %d) after empty right input"
               rn.Core.Executor.label l)
        else if r = 0 && l > 1 && rn.Core.Executor.algo = Core.Plan.Nrjn then
          Some
            (Printf.sprintf
               "%s over-reads outer input (depth %d) with an empty inner"
               rn.Core.Executor.label l)
        else None)
      res.Core.Executor.rank_nodes
  in
  let nary_exhausted =
    List.find_map
      (fun (nn : Core.Executor.nary_node_stats) ->
        let st = nn.Core.Executor.nary_stats in
        let m = Exec.Exec_stats.inputs st in
        let ds = List.init m (Exec.Exec_stats.depth st) in
        if List.mem 0 ds && List.exists (fun d -> d > 2) ds then
          Some
            (Printf.sprintf "%s over-reads live inputs after an empty input"
               nn.Core.Executor.nary_label)
        else None)
      res.Core.Executor.nary_nodes
  in
  match exhausted_empty, nary_exhausted with
  | Some msg, _ | None, Some msg -> Error msg
  | None, None -> (
      let binary_tbl, nary_tbl = depth_bounds catalog plan in
      let binary_violation =
        List.find_map
          (fun (rn : Core.Executor.rank_node_stats) ->
            match Hashtbl.find_opt binary_tbl rn.Core.Executor.label with
            | None -> None
            | Some (al, ar) ->
                let obs_l = Exec.Exec_stats.left_depth rn.Core.Executor.stats in
                let obs_r = Exec.Exec_stats.right_depth rn.Core.Executor.stats in
                if al <> max_int && obs_l > al then
                  Some
                    (Printf.sprintf
                       "%s left depth %d exceeds simulated Theorem-2 bound %d"
                       rn.Core.Executor.label obs_l al)
                else if
                  rn.Core.Executor.algo <> Core.Plan.Nrjn
                  && ar <> max_int && obs_r > ar
                then
                  Some
                    (Printf.sprintf
                       "%s right depth %d exceeds simulated Theorem-2 bound %d"
                       rn.Core.Executor.label obs_r ar)
                else None)
          res.Core.Executor.rank_nodes
      in
      let nary_violation =
        List.find_map
          (fun (nn : Core.Executor.nary_node_stats) ->
            match Hashtbl.find_opt nary_tbl nn.Core.Executor.nary_label with
            | None -> None
            | Some allowed ->
                let st = nn.Core.Executor.nary_stats in
                List.find_map
                  (fun (i, a) ->
                    let obs = Exec.Exec_stats.depth st i in
                    if a <> max_int && obs > a then
                      Some
                        (Printf.sprintf
                           "%s input %d depth %d exceeds simulated Theorem-2 \
                            bound %d"
                           nn.Core.Executor.nary_label i obs a)
                    else None)
                  (List.mapi (fun i a -> (i, a)) allowed))
          res.Core.Executor.nary_nodes
      in
      match binary_violation, nary_violation with
      | Some msg, _ | None, Some msg -> Error msg
      | None, None -> Ok ())

(* ------------------------------------------------------------------ *)
(* Checking one case                                                   *)
(* ------------------------------------------------------------------ *)

(* [Ok n]: all [n] enumerated plans agreed with the oracle and passed every
   invariant. [Error (reason, plan)] otherwise. *)
let check_case case : (int, string * string option) result =
  let catalog = build_catalog case in
  match Sqlfront.Binder.bind_result catalog case.c_query with
  | Error e -> Error (e, None)
  | exception e -> Error ("bind raised: " ^ Printexc.to_string e, None)
  | Ok bound -> (
      let query = bound.Sqlfront.Binder.logical in
      match oracle_topk catalog query with
      | exception e -> Error ("oracle raised: " ^ Printexc.to_string e, None)
      | expected -> (
          let score =
            match Core.Logical.scoring_expr query with
            | Some s -> s
            | None -> assert false (* generated queries always rank *)
          in
          let expected_scores = sorted_desc (List.map snd expected) in
          let k = Option.value ~default:1 query.Core.Logical.k in
          let env =
            Core.Cost_model.default_env ~k_min:(min k 1000) catalog query
          in
          match enumerate_plans env query with
          | exception e ->
              Error ("enumeration raised: " ^ Printexc.to_string e, None)
          | plans ->
              let rec check_all n = function
                | [] -> Ok n
                | plan :: rest -> (
                    let desc = Some (Core.Plan.describe plan) in
                    match
                      Lint.Engine.errors
                        (Lint.Engine.lint_plan ~query ~env catalog plan)
                    with
                    | d :: _ -> Error ("planlint: " ^ Lint.Diag.to_string d, desc)
                    | exception e ->
                        Error ("planlint raised: " ^ Printexc.to_string e, desc)
                    | [] -> (
                        match Core.Executor.run catalog plan with
                        | exception e ->
                            Error ("execution raised: " ^ Printexc.to_string e, desc)
                        | res -> (
                            let got = plan_scores score res in
                            if List.length got <> List.length expected_scores then
                              Error
                                ( Printf.sprintf
                                    "top-k size mismatch: oracle %d rows, plan %d"
                                    (List.length expected_scores)
                                    (List.length got),
                                  desc )
                            else if
                              not (List.for_all2 scores_close expected_scores got)
                            then
                              Error
                                ( Printf.sprintf
                                    "top-k scores diverge from oracle (oracle [%s], plan [%s])"
                                    (String.concat "; "
                                       (List.map (Printf.sprintf "%.9g")
                                          expected_scores))
                                    (String.concat "; "
                                       (List.map (Printf.sprintf "%.9g") got)),
                                  desc )
                            else
                              match depth_check catalog plan res with
                              | Error msg -> Error (msg, desc)
                              | Ok () -> check_all (n + 1) rest)))
              in
              check_all 0 plans))

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

let still_fails case = Result.is_error (check_case case)

let replace_table case ts =
  {
    case with
    c_tables =
      List.map
        (fun t -> if String.equal t.t_name ts.t_name then ts else t)
        case.c_tables;
  }

(* Drop table rows one at a time, then query terms (non-join WHERE
   conjuncts), then try k = 1 — keeping every step that still fails. *)
let shrink case =
  let budget = ref 600 in
  let try_smaller current candidate =
    if !budget <= 0 then current
    else begin
      decr budget;
      if still_fails candidate then candidate else current
    end
  in
  let shrink_rows case =
    let current = ref case in
    List.iter
      (fun ts ->
        let rows = ref ts.t_rows in
        List.iter
          (fun row ->
            let candidate_rows = List.filter (fun r -> r <> row) !rows in
            let candidate =
              replace_table !current
                { ts with t_rows = candidate_rows }
            in
            let next = try_smaller !current candidate in
            if next != !current then begin
              current := next;
              rows := candidate_rows
            end)
          ts.t_rows)
      case.c_tables;
    !current
  in
  let is_join_conjunct (Sqlfront.Ast.Compare (op, a, b)) =
    match op, a, b with
    | ( Sqlfront.Ast.Eq,
        Sqlfront.Ast.Column { table = Some ta; _ },
        Sqlfront.Ast.Column { table = Some tb; _ } ) ->
        not (String.equal ta tb)
    | _ -> false
  in
  let shrink_filters case =
    let current = ref case in
    List.iter
      (fun cond ->
        if not (is_join_conjunct cond) then begin
          let q = !current.c_query in
          let candidate =
            {
              !current with
              c_query =
                { q with Sqlfront.Ast.where = List.filter (( <> ) cond) q.Sqlfront.Ast.where };
            }
          in
          current := try_smaller !current candidate
        end)
      case.c_query.Sqlfront.Ast.where;
    !current
  in
  let shrink_k case =
    match case.c_query.Sqlfront.Ast.limit with
    | Some k when k > 1 ->
        let candidate =
          { case with c_query = { case.c_query with Sqlfront.Ast.limit = Some 1 } }
        in
        try_smaller case candidate
    | _ -> case
  in
  (* Row shrinking may unlock further row shrinking (and vice versa): run to
     a small fixpoint, bounded by the budget. *)
  let rec fix case n =
    let smaller = shrink_k (shrink_filters (shrink_rows case)) in
    if n <= 0 || smaller = case then case else fix smaller (n - 1)
  in
  fix case 4

(* ------------------------------------------------------------------ *)
(* Reporting and the driver                                            *)
(* ------------------------------------------------------------------ *)

let replay_command seed = Printf.sprintf "rankopt fuzz --seed %d --cases 1" seed

let pp_table fmt ts =
  Format.fprintf fmt "%s(id, key, score) [%d rows]:" ts.t_name
    (List.length ts.t_rows);
  List.iter
    (fun (i, k, s) -> Format.fprintf fmt " (%d, %d, %g)" i k s)
    ts.t_rows

let pp_failure fmt f =
  Format.fprintf fmt "@[<v>rankcheck FAILURE (seed %d)@,  reason: %s@," f.f_seed
    f.f_reason;
  (match f.f_plan with
  | Some p -> Format.fprintf fmt "  plan:   %s@," p
  | None -> ());
  Format.fprintf fmt "  query:  %a@," Sqlfront.Ast.pp_query f.f_case.c_query;
  List.iter (fun ts -> Format.fprintf fmt "  %a@," pp_table ts) f.f_case.c_tables;
  Format.fprintf fmt "  replay: %s@]" f.f_replay

let run_case seed =
  let case = gen_case seed in
  match check_case case with
  | Ok plans -> Ok plans
  | Error _ ->
      let shrunk = shrink case in
      let reason, plan =
        match check_case shrunk with
        | Error e -> e
        | Ok _ -> (
            (* The shrink overshot (flaky only if the harness itself is
               nondeterministic — it is not); fall back to the original. *)
            match check_case case with
            | Error e -> e
            | Ok _ -> ("unreproducible failure", None))
      in
      Error
        {
          f_seed = seed;
          f_reason = reason;
          f_plan = plan;
          f_case = shrunk;
          f_replay = replay_command seed;
        }

let run ?(progress = fun _ -> ()) ~seed ~cases () =
  let failures = ref [] in
  let plans = ref 0 in
  for i = 0 to cases - 1 do
    progress i;
    match run_case (seed + i) with
    | Ok n -> plans := !plans + n
    | Error f -> failures := f :: !failures
  done;
  { o_cases = cases; o_plans = !plans; o_failures = List.rev !failures }

(* ------------------------------------------------------------------ *)
(* Lint-only mode: static sweep, no execution                          *)
(* ------------------------------------------------------------------ *)

(* Optimize the case with emit-time linting on (every subplan the MEMO
   retains is checked as it is stored), then run the full catalog over each
   finished plan and over the optimizer's chosen statement — without
   executing anything. [Ok n]: [n] plans linted with zero diagnostics. *)
let lint_case case : (int, string * string option) result =
  let catalog = build_catalog case in
  match Sqlfront.Binder.bind_result catalog case.c_query with
  | Error e -> Error (e, None)
  | exception e -> Error ("bind raised: " ^ Printexc.to_string e, None)
  | Ok bound -> (
      let query = bound.Sqlfront.Binder.logical in
      let k = Option.value ~default:1 query.Core.Logical.k in
      let env = Core.Cost_model.default_env ~k_min:(min k 1000) catalog query in
      Lint.Engine.Emit.reset ();
      Lint.Engine.Emit.enable ();
      let result =
        try
          let plans = enumerate_plans env query in
          let planned = Core.Optimizer.optimize ~env catalog query in
          let per_plan =
            List.find_map
              (fun plan ->
                match
                  Lint.Engine.errors
                    (Lint.Engine.lint_plan ~query ~env catalog plan)
                with
                | [] -> None
                | d :: _ -> Some (d, Some (Core.Plan.describe plan)))
              plans
          in
          let statement =
            match Lint.Engine.errors (Lint.Engine.lint_planned planned) with
            | [] -> None
            | d :: _ -> Some (d, Some (Core.Plan.describe planned.Core.Optimizer.plan))
          in
          let emitted =
            match Lint.Engine.errors (Lint.Engine.Emit.diagnostics ()) with
            | [] -> None
            | d :: _ -> Some (d, None)
          in
          let counted = Lint.Engine.Emit.linted () + List.length plans + 1 in
          match per_plan, statement, emitted with
          | Some (d, p), _, _ | None, Some (d, p), _ | None, None, Some (d, p) ->
              Error ("planlint: " ^ Lint.Diag.to_string d, p)
          | None, None, None -> Ok counted
        with e -> Error ("lint sweep raised: " ^ Printexc.to_string e, None)
      in
      Lint.Engine.Emit.disable ();
      result)

let run_case_lint seed =
  let case = gen_case seed in
  match lint_case case with
  | Ok plans -> Ok plans
  | Error (reason, plan) ->
      Error
        {
          f_seed = seed;
          f_reason = reason;
          f_plan = plan;
          f_case = case;
          f_replay =
            Printf.sprintf "rankopt lint --fuzz-seed %d --fuzz-cases 1" seed;
        }

let run_lint ?(progress = fun _ -> ()) ~seed ~cases () =
  let failures = ref [] in
  let plans = ref 0 in
  for i = 0 to cases - 1 do
    progress i;
    match run_case_lint (seed + i) with
    | Ok n -> plans := !plans + n
    | Error f -> failures := f :: !failures
  done;
  { o_cases = cases; o_plans = !plans; o_failures = List.rev !failures }

(* ------------------------------------------------------------------ *)
(* Server mode: replay through a live server vs direct execution       *)
(* ------------------------------------------------------------------ *)

(* The wire rounds scores to 6 decimals, so compare with an absolute
   epsilon wider than the rendering granularity. *)
let wire_scores_close a b = Float.abs (a -. b) <= 1e-5

(* Trailing "score=<f>" cell of a result row; header lines have none. *)
let wire_scores response =
  List.filter_map
    (fun line ->
      match String.split_on_char '\t' line with
      | [] -> None
      | cells -> (
          let last = List.nth cells (List.length cells - 1) in
          match String.length last > 6 && String.sub last 0 6 = "score=" with
          | false -> None
          | true -> float_of_string_opt (String.sub last 6 (String.length last - 6))))
    response.Server.Protocol.payload

let check_case_server case : (int, string * string option) result =
  let catalog = build_catalog case in
  let tpl = Sqlfront.Sql.template_of_ast case.c_query in
  let k0 = Option.value ~default:1 case.c_query.Sqlfront.Ast.limit in
  let ks = [ k0; k0 + 3 ] in
  (* Direct, single-threaded execution of the same template at [k] — the
     oracle (itself differentially tested against the naive oracle by the
     plan-level modes above). *)
  let direct k =
    match Sqlfront.Sql.instantiate tpl ~k () with
    | Error e -> Error ("instantiate: " ^ e)
    | Ok ast -> (
        match Sqlfront.Sql.prepare_ast catalog ast with
        | Error e -> Error ("direct prepare: " ^ e)
        | Ok p -> (
            match Sqlfront.Sql.run_prepared catalog p with
            | Error e -> Error ("direct run: " ^ e)
            | Ok ans -> Ok (sorted_desc ans.Sqlfront.Sql.scores)))
  in
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rankcheck-%d-%d.sock" (Unix.getpid ()) case.c_seed)
  in
  let endpoint = Server.Listener.Unix_socket sock in
  let listener =
    Server.Listener.start
      ~config:{ Server.Service.default_config with workers = 2 }
      endpoint catalog
  in
  Fun.protect ~finally:(fun () -> Server.Listener.stop listener) @@ fun () ->
  let client = Server.Client.connect endpoint in
  Fun.protect ~finally:(fun () -> Server.Client.close client) @@ fun () ->
  let request line =
    match Server.Client.request client line with
    | Error e -> Error ("transport: " ^ e)
    | Ok r when not r.Server.Protocol.ok ->
        Error
          (Printf.sprintf "server ERR %s: %s" r.Server.Protocol.code
             r.Server.Protocol.message)
    | Ok r -> Ok r
  in
  let oneline s =
    String.map (function '\n' -> ' ' | c -> c) s
  in
  let ( let* ) = Result.bind in
  let checked = ref 0 in
  let result =
    let* _ =
      request (Printf.sprintf "PREPARE q %s" (oneline tpl.Sqlfront.Sql.tpl_text))
    in
    List.fold_left
      (fun acc k ->
        let* () = acc in
        let* expected = direct k in
        (* Replay twice: the first may optimize, the second must be served
           from the plan cache (the stored variant's k-interval contains
           its own k). Both must agree with direct execution. *)
        let rec replay i =
          if i >= 2 then Ok ()
          else
            let* resp = request (Printf.sprintf "EXECUTE q %d" k) in
            let got = sorted_desc (wire_scores resp) in
            if List.length got <> List.length expected then
              Error
                (Printf.sprintf
                   "k=%d replay %d: size mismatch (direct %d rows, server %d)"
                   k i (List.length expected) (List.length got))
            else if not (List.for_all2 wire_scores_close expected got) then
              Error
                (Printf.sprintf
                   "k=%d replay %d: scores diverge (direct [%s], server [%s])"
                   k i
                   (String.concat "; " (List.map (Printf.sprintf "%.6f") expected))
                   (String.concat "; " (List.map (Printf.sprintf "%.6f") got)))
            else if
              i = 1
              && List.assoc_opt "cached" resp.Server.Protocol.fields
                 <> Some "1"
            then Error (Printf.sprintf "k=%d replay %d: expected a cache hit" k i)
            else begin
              incr checked;
              replay (i + 1)
            end
        in
        replay 0)
      (Ok ()) ks
  in
  (* PL10 audit: every variant the server's plan cache now holds must pass
     the planlint cache rule (canonical key, sane k-interval containing the
     bound k) plus the full catalog on its plan. *)
  let lint_cache () =
    let svc = Server.Listener.service listener in
    List.find_map
      (fun (key, epoch, prepared) ->
        match
          Lint.Engine.errors (Lint.Engine.lint_prepared ~key ~epoch prepared)
        with
        | [] ->
            incr checked;
            None
        | dg :: _ -> Some ("planlint cache: " ^ Lint.Diag.to_string dg))
      (Server.Service.cache_entries svc)
  in
  match result with
  | Ok () -> (
      match lint_cache () with
      | None -> Ok !checked
      | Some reason -> Error (reason, None))
  | Error reason -> Error (reason, None)

let run_case_server seed =
  let case = gen_case seed in
  match check_case_server case with
  | Ok n -> Ok n
  | Error (reason, plan) ->
      Error
        {
          f_seed = seed;
          f_reason = "server-mode: " ^ reason;
          f_plan = plan;
          f_case = case;
          f_replay =
            Printf.sprintf "rankopt fuzz --server --seed %d --cases 1" seed;
        }

let run_server ?(progress = fun _ -> ()) ~seed ~cases () =
  let failures = ref [] in
  let executions = ref 0 in
  for i = 0 to cases - 1 do
    progress i;
    match run_case_server (seed + i) with
    | Ok n -> executions := !executions + n
    | Error f -> failures := f :: !failures
  done;
  { o_cases = cases; o_plans = !executions; o_failures = List.rev !failures }

(* ------------------------------------------------------------------ *)
(* Degree mode: parallel-execution determinism sweep                   *)
(* ------------------------------------------------------------------ *)

(* Plan each case with intra-query parallelism enabled, then execute the
   chosen plan at several degree overrides. Exchange operators are
   order-preserving by construction (morsel-index gather, stable top-N
   merge, arrival-order build chains), so the output must be *bit
   identical* — same tuples, same scores, same order — at every degree,
   including the forced-serial degree 1. A second, independently planned
   serial statement cross-checks the score multiset, so a parallel plan
   that is deterministic but wrong cannot pass. *)

let rows_identical a b =
  List.length a = List.length b
  && List.for_all2
       (fun (t1, s1) (t2, s2) ->
         Relalg.Tuple.equal t1 t2 && Float.compare s1 s2 = 0)
       a b

let check_case_degree ?pool ~degree case : (int, string * string option) result =
  let degree = max 2 degree in
  let catalog = build_catalog case in
  match Sqlfront.Binder.bind_result catalog case.c_query with
  | Error e -> Error (e, None)
  | exception e -> Error ("bind raised: " ^ Printexc.to_string e, None)
  | Ok bound -> (
      let query = bound.Sqlfront.Binder.logical in
      let k = Option.value ~default:1 query.Core.Logical.k in
      let env =
        Core.Cost_model.default_env ~k_min:(min k 1000) ~dop:degree catalog
          query
      in
      match Core.Optimizer.optimize ~env catalog query with
      | exception e -> Error ("optimize raised: " ^ Printexc.to_string e, None)
      | planned -> (
          let desc = Some (Core.Plan.describe planned.Core.Optimizer.plan) in
          match Core.Optimizer.execute ~degree:1 catalog planned with
          | exception e ->
              Error ("degree-1 execution raised: " ^ Printexc.to_string e, desc)
          | reference -> (
              let degrees =
                List.sort_uniq compare [ 2; degree; 2 * degree ]
              in
              let rec sweep n = function
                | [] -> Ok n
                | d :: rest -> (
                    match Core.Optimizer.execute ?pool ~degree:d catalog planned with
                    | exception e ->
                        Error
                          ( Printf.sprintf "degree-%d execution raised: %s" d
                              (Printexc.to_string e),
                            desc )
                    | res ->
                        if
                          rows_identical reference.Core.Executor.rows
                            res.Core.Executor.rows
                        then sweep (n + 1) rest
                        else
                          Error
                            ( Printf.sprintf
                                "degree %d diverges from degree 1: rows %d vs \
                                 %d, or tuple order/scores differ"
                                d
                                (List.length res.Core.Executor.rows)
                                (List.length reference.Core.Executor.rows),
                              desc ))
              in
              match sweep 0 degrees with
              | Error e -> Error e
              | Ok n -> (
                  (* Cross-check against an independently planned serial
                     statement: catches deterministic-but-wrong plans. *)
                  match
                    let serial_env =
                      Core.Cost_model.default_env ~k_min:(min k 1000) catalog
                        query
                    in
                    let serial =
                      Core.Optimizer.optimize ~env:serial_env catalog query
                    in
                    Core.Optimizer.execute catalog serial
                  with
                  | exception e ->
                      Error
                        ("serial cross-check raised: " ^ Printexc.to_string e,
                         desc)
                  | serial_res ->
                      let a =
                        sorted_desc
                          (List.map snd reference.Core.Executor.rows)
                      in
                      let b =
                        sorted_desc (List.map snd serial_res.Core.Executor.rows)
                      in
                      if
                        List.length a = List.length b
                        && List.for_all2 scores_close a b
                      then Ok (n + 1)
                      else
                        Error
                          ( Printf.sprintf
                              "parallel plan disagrees with serial plan: %d \
                               vs %d rows"
                              (List.length a) (List.length b),
                            desc )))))

let run_case_degree ?pool ~degree seed =
  let case = gen_case seed in
  match check_case_degree ?pool ~degree case with
  | Ok n -> Ok n
  | Error (reason, plan) ->
      Error
        {
          f_seed = seed;
          f_reason = Printf.sprintf "degree-mode(%d): %s" degree reason;
          f_plan = plan;
          f_case = case;
          f_replay =
            Printf.sprintf "rankopt fuzz --degree %d --seed %d --cases 1"
              degree seed;
        }

let run_degree ?(progress = fun _ -> ()) ~seed ~cases ~degree () =
  let pool = Rkutil.Task_pool.create ~domains:(max 2 degree) in
  Fun.protect ~finally:(fun () -> Rkutil.Task_pool.shutdown pool) @@ fun () ->
  let failures = ref [] in
  let executions = ref 0 in
  for i = 0 to cases - 1 do
    progress i;
    match run_case_degree ~pool ~degree (seed + i) with
    | Ok n -> executions := !executions + n
    | Error f -> failures := f :: !failures
  done;
  { o_cases = cases; o_plans = !executions; o_failures = List.rev !failures }

(* ------------------------------------------------------------------ *)
(* Vector mode: batched execution vs the tuple-at-a-time reference     *)
(* ------------------------------------------------------------------ *)

(* Every MEMO-retained plan is executed twice — once with the executor's
   vectorized spines disabled ([~vectorized:false], the pre-batching
   tuple-at-a-time interpreter) and once batch-at-a-time (the default) —
   and the two runs must be *bit identical*: same tuples, same scores,
   same order. The batch kernels replicate the scalar expression
   interpreter exactly (Null propagation, NaN ordering, constant folding
   in the Value domain), so no tolerance is allowed. Rank joins stay
   streaming sinks under vectorization; their per-input depth counters
   and emitted counts must also match exactly, proving the batching
   boundary never changes how far a rank join reads (Theorem 1/2
   accounting is untouched). *)

let vector_stats_divergence kind label a b =
  let da = Exec.Exec_stats.depths a and db = Exec.Exec_stats.depths b in
  let show d =
    String.concat ";" (List.map string_of_int (Array.to_list d))
  in
  if da <> db then
    Some
      (Printf.sprintf
         "%s %s: input depths [%s] (serial) vs [%s] (vectorized)" kind label
         (show da) (show db))
  else if Exec.Exec_stats.emitted a <> Exec.Exec_stats.emitted b then
    Some
      (Printf.sprintf "%s %s: emitted %d (serial) vs %d (vectorized)" kind
         label
         (Exec.Exec_stats.emitted a)
         (Exec.Exec_stats.emitted b))
  else None

(* Rank-node stats are reported in plan pre-order by both runs of the same
   plan, so position-wise pairing is exact. *)
let vector_counters_diverge (serial : Core.Executor.run_result)
    (vec : Core.Executor.run_result) =
  let pair_binary () =
    if
      List.length serial.Core.Executor.rank_nodes
      <> List.length vec.Core.Executor.rank_nodes
    then
      Some
        (Printf.sprintf "rank-join node count %d (serial) vs %d (vectorized)"
           (List.length serial.Core.Executor.rank_nodes)
           (List.length vec.Core.Executor.rank_nodes))
    else
      List.find_map
        (fun ((a : Core.Executor.rank_node_stats),
              (b : Core.Executor.rank_node_stats)) ->
          if not (String.equal a.Core.Executor.label b.Core.Executor.label)
          then
            Some
              (Printf.sprintf "rank-join node pairing: %s vs %s"
                 a.Core.Executor.label b.Core.Executor.label)
          else
            vector_stats_divergence "rank join" a.Core.Executor.label
              a.Core.Executor.stats b.Core.Executor.stats)
        (List.combine serial.Core.Executor.rank_nodes
           vec.Core.Executor.rank_nodes)
  in
  let pair_nary () =
    if
      List.length serial.Core.Executor.nary_nodes
      <> List.length vec.Core.Executor.nary_nodes
    then
      Some
        (Printf.sprintf
           "n-ary rank-join node count %d (serial) vs %d (vectorized)"
           (List.length serial.Core.Executor.nary_nodes)
           (List.length vec.Core.Executor.nary_nodes))
    else
      List.find_map
        (fun ((a : Core.Executor.nary_node_stats),
              (b : Core.Executor.nary_node_stats)) ->
          if
            not
              (String.equal a.Core.Executor.nary_label
                 b.Core.Executor.nary_label)
          then
            Some
              (Printf.sprintf "n-ary rank-join node pairing: %s vs %s"
                 a.Core.Executor.nary_label b.Core.Executor.nary_label)
          else
            vector_stats_divergence "n-ary rank join"
              a.Core.Executor.nary_label a.Core.Executor.nary_stats
              b.Core.Executor.nary_stats)
        (List.combine serial.Core.Executor.nary_nodes
           vec.Core.Executor.nary_nodes)
  in
  match pair_binary () with Some m -> Some m | None -> pair_nary ()

let check_case_vector case : (int, string * string option) result =
  let catalog = build_catalog case in
  match Sqlfront.Binder.bind_result catalog case.c_query with
  | Error e -> Error (e, None)
  | exception e -> Error ("bind raised: " ^ Printexc.to_string e, None)
  | Ok bound -> (
      let query = bound.Sqlfront.Binder.logical in
      let k = Option.value ~default:1 query.Core.Logical.k in
      let env = Core.Cost_model.default_env ~k_min:(min k 1000) catalog query in
      match enumerate_plans env query with
      | exception e ->
          Error ("enumeration raised: " ^ Printexc.to_string e, None)
      | plans ->
          let rec check_all n = function
            | [] -> Ok n
            | plan :: rest -> (
                let desc = Some (Core.Plan.describe plan) in
                match Core.Executor.run ~vectorized:false catalog plan with
                | exception e ->
                    Error
                      ( "tuple-at-a-time execution raised: "
                        ^ Printexc.to_string e,
                        desc )
                | serial -> (
                    match Core.Executor.run ~vectorized:true catalog plan with
                    | exception e ->
                        Error
                          ( "vectorized execution raised: "
                            ^ Printexc.to_string e,
                            desc )
                    | vec ->
                        if
                          not
                            (rows_identical serial.Core.Executor.rows
                               vec.Core.Executor.rows)
                        then
                          Error
                            ( Printf.sprintf
                                "vectorized run diverges from tuple-at-a-time: \
                                 rows %d vs %d, or tuple order/scores differ"
                                (List.length vec.Core.Executor.rows)
                                (List.length serial.Core.Executor.rows),
                              desc )
                        else
                          match vector_counters_diverge serial vec with
                          | Some msg -> Error (msg, desc)
                          | None -> check_all (n + 1) rest))
          in
          check_all 0 plans)

let run_case_vector seed =
  let case = gen_case seed in
  match check_case_vector case with
  | Ok n -> Ok n
  | Error (reason, plan) ->
      Error
        {
          f_seed = seed;
          f_reason = "vector-mode: " ^ reason;
          f_plan = plan;
          f_case = case;
          f_replay =
            Printf.sprintf "rankopt fuzz --vector --seed %d --cases 1" seed;
        }

let run_vector ?(progress = fun _ -> ()) ~seed ~cases () =
  let failures = ref [] in
  let executions = ref 0 in
  for i = 0 to cases - 1 do
    progress i;
    match run_case_vector (seed + i) with
    | Ok n -> executions := !executions + n
    | Error f -> failures := f :: !failures
  done;
  { o_cases = cases; o_plans = !executions; o_failures = List.rev !failures }

(* ------------------------------------------------------------------ *)
(* Enumeration mode: cursor FETCH prefixes vs a full ranked-list oracle *)
(* ------------------------------------------------------------------ *)

(* Enumeration cases reuse the generator but snap every score to the 1/8
   grid. Query weights already live on that grid, so each weighted term
   i/8 * j/8 = ij/64 and every total score is a small dyadic rational —
   exactly representable, and bit-identical no matter how a plan
   associates the additions. That is what lets this mode demand
   tuple-exact prefixes where the plan-level modes settle for score
   multisets under [scores_close]. A sixteenth of the rows get a NaN
   score: the cursor contract drops NaN-scored answers entirely, and the
   oracle must agree. *)
let enum_case seed =
  let case = gen_case seed in
  let prng = Rkutil.Prng.create (seed lxor 0x2545f491) in
  let tables =
    List.map
      (fun ts ->
        {
          ts with
          t_rows =
            List.map
              (fun (i, k, s) ->
                if Rkutil.Prng.int prng 16 = 0 then (i, k, Float.nan)
                else (i, k, Float.round (s *. 8.0) /. 8.0))
              ts.t_rows;
        })
      case.c_tables
  in
  { case with c_tables = tables }

(* The full ranked answer list as the cursor contract defines it:
   materialize the join naively, score every row, drop NaN totals, sort
   score-descending, and break exact-score ties by the canonical column
   order — the same normalization {!Core.Executor.open_cursor} applies,
   so every resumable plan shape must reproduce this exact sequence. *)
let oracle_enum catalog (query : Core.Logical.t) =
  let scored = oracle_topk catalog { query with Core.Logical.k = None } in
  let schema =
    match query.Core.Logical.relations with
    | [] -> invalid_arg "oracle_enum: no relations"
    | b0 :: rest ->
        List.fold_left
          (fun acc (b : Core.Logical.base) ->
            Schema.concat acc
              (Storage.Catalog.table catalog b.Core.Logical.name)
                .Storage.Catalog.tb_schema)
          (Storage.Catalog.table catalog b0.Core.Logical.name)
            .Storage.Catalog.tb_schema rest
  in
  let perm = Core.Executor.canonical_perm schema in
  let rows =
    scored
    |> List.filter (fun (_, s) -> not (Float.is_nan s))
    |> List.sort (fun (t1, s1) (t2, s2) ->
           match Float.compare s2 s1 with
           | 0 -> Core.Executor.canonical_compare perm t1 t2
           | c -> c)
  in
  (schema, rows)

(* Map the server reply's column order (fully qualified names) back into
   the oracle's joined schema, so oracle tuples can be compared cell for
   cell against projected reply rows. *)
let enum_projector schema columns =
  let by_name = Hashtbl.create 16 in
  List.iteri
    (fun i c -> Hashtbl.replace by_name (Schema.column_name c) i)
    (Schema.columns schema);
  match
    List.map
      (fun name ->
        match Hashtbl.find_opt by_name name with
        | Some i -> i
        | None -> raise Exit)
      columns
  with
  | idxs ->
      Some (fun t -> Tuple.make (List.map (fun i -> Tuple.get t i) idxs))
  | exception Exit -> None

let check_case_enum case : (int, string * string option) result =
  let catalog = build_catalog case in
  match Sqlfront.Binder.bind_result catalog case.c_query with
  | Error e -> Error (e, None)
  | exception e -> Error ("bind raised: " ^ Printexc.to_string e, None)
  | Ok bound -> (
      let query = bound.Sqlfront.Binder.logical in
      match oracle_enum catalog query with
      | exception e -> Error ("oracle raised: " ^ Printexc.to_string e, None)
      | schema, expected_raw -> (
          let k0 = Option.value ~default:1 case.c_query.Sqlfront.Ast.limit in
          let tpl = Sqlfront.Sql.template_of_ast case.c_query in
          (* Mirror the service's (deterministic) planning to learn up
             front whether the statement is cursor-eligible. *)
          let plan_desc = ref None in
          let eligible =
            match Sqlfront.Sql.instantiate tpl ~k:k0 () with
            | Error _ | (exception _) -> false
            | Ok ast -> (
                match Sqlfront.Sql.prepare_ast catalog ast with
                | Error _ | (exception _) -> false
                | Ok p ->
                    plan_desc :=
                      Some
                        (Core.Plan.describe
                           p.Sqlfront.Sql.planned.Core.Optimizer.plan);
                    Sqlfront.Sql.cursor_eligible p)
          in
          let svc =
            Server.Service.create
              ~config:{ Server.Service.default_config with workers = 2 }
              catalog
          in
          Fun.protect ~finally:(fun () -> Server.Service.shutdown svc)
          @@ fun () ->
          let sess = Server.Service.open_session svc in
          Fun.protect ~finally:(fun () -> Server.Service.close_session sess)
          @@ fun () ->
          let oneline s = String.map (function '\n' -> ' ' | c -> c) s in
          let err e =
            Printf.sprintf "server ERR %s: %s"
              (Server.Service.error_code e)
              (Server.Service.error_message e)
          in
          let ( let* ) = Result.bind in
          let checked = ref 0 in
          let result =
            let* _ =
              Result.map_error err
                (Server.Service.prepare sess ~name:"q"
                   (oneline tpl.Sqlfront.Sql.tpl_text))
            in
            let* reply =
              Result.map_error err
                (Server.Service.execute_prepared sess ~k:k0 "q")
            in
            if not eligible then
              (* Not cursor-resumable: the only contract to check is that
                 EXECUTE parked no cursor. *)
              match Server.Service.fetch sess ~name:"q" 1 with
              | Error (Server.Service.Unknown_cursor _) ->
                  incr checked;
                  Ok ()
              | Ok _ ->
                  Error "FETCH succeeded on a non-enumerable statement"
              | Error e -> Error ("non-enumerable FETCH: " ^ err e)
            else
              let* project =
                match
                  enum_projector schema reply.Server.Service.columns
                with
                | Some f -> Ok f
                | None ->
                    Error
                      (Printf.sprintf
                         "reply columns [%s] not all present in the oracle \
                          schema"
                         (String.concat "; " reply.Server.Service.columns))
              in
              let expected =
                List.map (fun (t, s) -> (project t, s)) expected_raw
              in
              let total = List.length expected in
              let got = ref [] in
              let extend (r : Server.Service.reply) =
                let scores =
                  (* Ranked replies always carry scores; guard anyway so a
                     regression fails the case instead of raising. *)
                  if
                    List.length r.Server.Service.scores
                    = List.length r.Server.Service.rows
                  then Ok r.Server.Service.scores
                  else Error "reply rows and scores disagree in length"
                in
                Result.map
                  (fun scores ->
                    let batch = List.combine r.Server.Service.rows scores in
                    got := !got @ batch;
                    List.length batch)
                  scores
              in
              let compare_prefix () =
                let n = List.length !got in
                if n > total then
                  Error
                    (Printf.sprintf
                       "cursor produced %d rows but the oracle has only %d"
                       n total)
                else begin
                  let rec go i gs es =
                    match gs, es with
                    | [], _ -> Ok ()
                    | (gt, gscore) :: gs', (et, escore) :: es' ->
                        if Float.compare gscore escore <> 0 then
                          Error
                            (Printf.sprintf
                               "rank %d: score %.17g diverges from oracle \
                                %.17g"
                               i gscore escore)
                        else if not (Tuple.equal gt et) then
                          Error
                            (Printf.sprintf
                               "rank %d: tuple diverges from the oracle at \
                                equal score %.17g"
                               i gscore)
                        else go (i + 1) gs' es'
                    | _ :: _, [] -> assert false
                  in
                  let r = go 0 !got expected in
                  if Result.is_ok r then incr checked;
                  r
                end
              in
              let* _ = extend reply in
              let* () = compare_prefix () in
              (* Vary the fetch sizes deterministically: exhaustion must be
                 reached exactly at the oracle's row count, with every
                 intermediate prefix tuple-exact. *)
              let prng = Rkutil.Prng.create (case.c_seed lxor 0x51ed27) in
              let rec fetch_loop () =
                if List.length !got >= total then Ok ()
                else
                  let n = 1 + Rkutil.Prng.int prng 4 in
                  let* r =
                    Result.map_error err
                      (Server.Service.fetch sess ~name:"q" n)
                  in
                  let* produced = extend r in
                  let* () = compare_prefix () in
                  if produced < n && List.length !got < total then
                    Error
                      (Printf.sprintf
                         "cursor exhausted at %d rows but the oracle has %d"
                         (List.length !got) total)
                  else fetch_loop ()
              in
              let* () = fetch_loop () in
              let* past =
                Result.map_error err (Server.Service.fetch sess ~name:"q" 3)
              in
              let* () =
                if past.Server.Service.rows = [] then Ok ()
                else Error "cursor kept producing rows past exhaustion"
              in
              Result.map_error err (Server.Service.close_cursor sess "q")
          in
          match result with
          | Ok () -> Ok !checked
          | Error reason -> Error (reason, !plan_desc)))

let run_case_enum seed =
  let case = enum_case seed in
  match check_case_enum case with
  | Ok n -> Ok n
  | Error (reason, plan) ->
      Error
        {
          f_seed = seed;
          f_reason = "enum-mode: " ^ reason;
          f_plan = plan;
          f_case = case;
          f_replay =
            Printf.sprintf "rankopt fuzz --enum --seed %d --cases 1" seed;
        }

let run_enum ?(progress = fun _ -> ()) ~seed ~cases () =
  let failures = ref [] in
  let prefixes = ref 0 in
  for i = 0 to cases - 1 do
    progress i;
    match run_case_enum (seed + i) with
    | Ok n -> prefixes := !prefixes + n
    | Error f -> failures := f :: !failures
  done;
  { o_cases = cases; o_plans = !prefixes; o_failures = List.rev !failures }

(* ------------------------------------------------------------------ *)
(* Rank mode: by-rank windows vs a sort-everything oracle              *)
(* ------------------------------------------------------------------ *)

(* A rank case is a single scored table (snapped to the 1/8 grid so tie
   blocks are common, a sixteenth of the rows NaN-scored) plus a
   WHERE rank() BETWEEN window, sometimes with an extra filter conjunct
   and sometimes overshooting the table's cardinality — both clamping
   paths must agree with the oracle. *)
let rank_case seed =
  let prng = Rkutil.Prng.create (seed lxor 0x3ad76b21) in
  let ts = gen_table prng "T0" in
  let ts =
    {
      ts with
      t_rows =
        List.map
          (fun (i, k, s) ->
            if Rkutil.Prng.int prng 16 = 0 then (i, k, Float.nan)
            else (i, k, Float.round (s *. 8.0) /. 8.0))
          ts.t_rows;
    }
  in
  let n = List.length ts.t_rows in
  let lo = 1 + Rkutil.Prng.int prng (n + 2) in
  let hi = lo + Rkutil.Prng.int prng 8 in
  let open Sqlfront.Ast in
  let where =
    if Rkutil.Prng.int prng 3 = 0 then
      [
        Compare
          ( Le,
            Column { table = Some "T0"; name = "key" },
            Number (float_of_int (Rkutil.Prng.int prng ts.t_key_domain)) );
      ]
    else []
  in
  let query =
    {
      select = [ Star ];
      from = [ "T0" ];
      where;
      rank_between = Some (lo, hi);
      (* a third of the corpus exercises dense numbering; the snapped
         score grid guarantees tie blocks for it to differ on *)
      rank_dense = Rkutil.Prng.int prng 3 = 0;
      group_by = [];
      order_by =
        Some (Column { table = Some "T0"; name = "score" }, Desc);
      limit = None;
      limit_param = false;
    }
  in
  { c_seed = seed; c_tables = [ ts ]; c_query = query }

(* The oracle: sort every non-NaN row score-descending with the canonical
   tie order, slice ranks lo..hi, then apply any residual filter — the
   window is computed over the whole table, filters prune within it. *)
let oracle_rank catalog (query : Core.Logical.t) lo hi =
  let base =
    match query.Core.Logical.relations with
    | [ b ] -> b
    | _ -> invalid_arg "oracle_rank: single relation expected"
  in
  let info = Storage.Catalog.table catalog base.Core.Logical.name in
  let schema = info.Storage.Catalog.tb_schema in
  let score =
    match Core.Logical.scoring_expr query with
    | Some e -> e
    | None -> invalid_arg "oracle_rank: scored relation expected"
  in
  let scoref = Expr.compile_float schema score in
  let perm = Core.Executor.canonical_perm schema in
  let ranked =
    Storage.Heap_file.to_list info.Storage.Catalog.tb_heap
    |> List.filter_map (fun tu ->
           let s = scoref tu in
           if Float.is_nan s then None else Some (tu, s))
    |> List.sort (fun (t1, s1) (t2, s2) ->
           match Float.compare s2 s1 with
           | 0 -> Core.Executor.canonical_compare perm t1 t2
           | c -> c)
  in
  let lo = max 1 lo in
  let window =
    if hi < lo then []
    else if not query.Core.Logical.rank_dense then
      List.filteri (fun i _ -> i >= lo - 1 && i <= hi - 1) ranked
    else begin
      (* dense numbering, derived independently of the engine: walk the
         descending run counting distinct scores *)
      let _, _, rev =
        List.fold_left
          (fun (d, prev, acc) ((_, s) as e) ->
            let d =
              match prev with
              | Some p when Float.compare p s = 0 -> d
              | _ -> d + 1
            in
            (d, Some s, if d >= lo && d <= hi then e :: acc else acc))
          (0, None, []) ranked
      in
      List.rev rev
    end
  in
  match base.Core.Logical.filter with
  | None -> window
  | Some pred ->
      let predf = Expr.compile schema pred in
      List.filter
        (fun (tu, _) ->
          match predf tu with Value.Bool b -> b | _ -> false)
        window

let tuple_ids rows =
  List.map
    (fun (tu, _) ->
      match Tuple.get tu 0 with Value.Int i -> i | _ -> -1)
    rows

(* Execute both physical variants of the window — counted index descent
   and drain-sort-slice — against the oracle, then the full SQL path
   (parser, binder, optimizer's cost arbitration) on the printed query.
   Every row list must be tuple-exact: same ids, same scores, same
   order. *)
let check_case_rank case : (int, string * string option) result =
  let catalog = build_catalog case in
  match Sqlfront.Binder.bind_result catalog case.c_query with
  | Error e -> Error (e, None)
  | exception e -> Error ("bind raised: " ^ Printexc.to_string e, None)
  | Ok bound -> (
      let query = bound.Sqlfront.Binder.logical in
      let lo, hi =
        match query.Core.Logical.rank_range with
        | Some w -> w
        | None -> (1, 0)
      in
      match oracle_rank catalog query lo hi with
      | exception e -> Error ("oracle raised: " ^ Printexc.to_string e, None)
      | expected -> (
          let score =
            match Core.Logical.scoring_expr query with
            | Some s -> s
            | None -> assert false
          in
          let env = Core.Cost_model.default_env catalog query in
          let base = List.hd query.Core.Logical.relations in
          let wrap access =
            match base.Core.Logical.filter with
            | Some pred -> Core.Plan.Filter { pred; input = access }
            | None -> access
          in
          let dense = query.Core.Logical.rank_dense in
          let variants =
            [
              wrap
                (Core.Plan.Rank_index_scan
                   { table = "T0"; index = Some "T0_score"; score; lo; hi; dense });
              wrap
                (Core.Plan.Rank_index_scan
                   { table = "T0"; index = None; score; lo; hi; dense });
            ]
          in
          let expected_ids = tuple_ids expected in
          let expected_scores = List.map snd expected in
          let compare_rows desc rows =
            if tuple_ids rows <> expected_ids then
              Error
                ( Printf.sprintf "window rows diverge: oracle [%s], got [%s]"
                    (String.concat ";" (List.map string_of_int expected_ids))
                    (String.concat ";"
                       (List.map string_of_int (tuple_ids rows))),
                  desc )
            else if
              not (List.for_all2 scores_close expected_scores (List.map snd rows))
            then Error ("window scores diverge from oracle", desc)
            else Ok ()
          in
          let rec check_plans n = function
            | [] -> Ok n
            | plan :: rest -> (
                let desc = Some (Core.Plan.describe plan) in
                match
                  Lint.Engine.errors
                    (Lint.Engine.lint_plan ~query ~env catalog plan)
                with
                | d :: _ -> Error ("planlint: " ^ Lint.Diag.to_string d, desc)
                | exception e ->
                    Error ("planlint raised: " ^ Printexc.to_string e, desc)
                | [] -> (
                    match Core.Executor.run catalog plan with
                    | exception e ->
                        Error ("execution raised: " ^ Printexc.to_string e, desc)
                    | res -> (
                        match compare_rows desc res.Core.Executor.rows with
                        | Error e -> Error e
                        | Ok () -> check_plans (n + 1) rest)))
          in
          match check_plans 0 variants with
          | Error e -> Error e
          | Ok n -> (
              (* End to end: the printed query re-enters through the parser
                 and the optimizer's own access-path choice. *)
              let sql = Format.asprintf "%a" Sqlfront.Ast.pp_query case.c_query in
              match Sqlfront.Sql.query catalog sql with
              | Error e -> Error ("sql path: " ^ e, None)
              | exception e ->
                  Error ("sql path raised: " ^ Printexc.to_string e, None)
              | Ok ans ->
                  let desc =
                    Some
                      (Core.Plan.describe
                         ans.Sqlfront.Sql.planned.Core.Optimizer.plan)
                  in
                  let ids =
                    List.map
                      (fun tu ->
                        match Tuple.get tu 0 with Value.Int i -> i | _ -> -1)
                      ans.Sqlfront.Sql.rows
                  in
                  if ids <> expected_ids then
                    Error
                      ( Printf.sprintf
                          "sql path rows diverge: oracle [%s], got [%s]"
                          (String.concat ";"
                             (List.map string_of_int expected_ids))
                          (String.concat ";" (List.map string_of_int ids)),
                        desc )
                  else Ok (n + 1))))

let run_case_rank seed =
  let case = rank_case seed in
  match check_case_rank case with
  | Ok n -> Ok n
  | Error (reason, plan) ->
      Error
        {
          f_seed = seed;
          f_reason = "rank-mode: " ^ reason;
          f_plan = plan;
          f_case = case;
          f_replay =
            Printf.sprintf "rankopt fuzz --rank --seed %d --cases 1" seed;
        }

let run_rank ?(progress = fun _ -> ()) ~seed ~cases () =
  let failures = ref [] in
  let windows = ref 0 in
  for i = 0 to cases - 1 do
    progress i;
    match run_case_rank (seed + i) with
    | Ok n -> windows := !windows + n
    | Error f -> failures := f :: !failures
  done;
  { o_cases = cases; o_plans = !windows; o_failures = List.rev !failures }

(* ------------------------------------------------------------------ *)
(* Shard mode: sharded coordinator vs single node                      *)
(* ------------------------------------------------------------------ *)

(* Differential check for the scatter/gather coordinator. Each case's
   top-k join runs once on a single node and once through an in-process
   cluster of [shards] engine shards hash-partitioned on [key] (the
   generated queries join exclusively on [key], so every case is
   co-partitioned and must scatter). The sharded answer must match the
   full single-node ranked list: score sequence equal to within float
   association jitter (plan shapes associate the weighted sum
   differently), tuple-exact rows above the k-th score, and boundary rows drawn
   from the oracle's k-th-score tie group — the one set where any
   member is a correct answer on a single node too (Top-N keeps an
   arbitrary subset of a boundary tie). A routed INSERT then goes
   through the coordinator and the query re-runs, so mis-routed DML,
   stale scatter caches and epoch bugs all surface as divergence. *)

let check_case_shard ~shards case : (int, string) result =
  let catalog = build_catalog case in
  let tpl = Sqlfront.Sql.template_of_ast case.c_query in
  let k = Option.value ~default:1 case.c_query.Sqlfront.Ast.limit in
  let sql = Format.asprintf "%a" Sqlfront.Ast.pp_query case.c_query in
  (* Single-node oracle: the full ranked list (k larger than any join),
     from which the expected prefix and boundary tie group are read. *)
  let direct_full () =
    match Sqlfront.Sql.instantiate tpl ~k:1_000_000 () with
    | Error e -> Error ("instantiate: " ^ e)
    | Ok ast -> (
        match Sqlfront.Sql.prepare_ast catalog ast with
        | Error e -> Error ("direct prepare: " ^ e)
        | Ok p -> (
            match Sqlfront.Sql.run_prepared catalog p with
            | Error e -> Error ("direct run: " ^ e)
            | Ok ans ->
                if
                  List.length ans.Sqlfront.Sql.scores
                  <> List.length ans.Sqlfront.Sql.rows
                then Error "direct: row/score arity mismatch"
                else
                  Ok
                    ( ans.Sqlfront.Sql.columns,
                      List.map2
                        (fun r s -> (r, s))
                        ans.Sqlfront.Sql.rows ans.Sqlfront.Sql.scores )))
  in
  (* [SELECT *] output column order follows the chosen join order, which
     the two sides may pick differently; compare rows under a
     name-sorted column permutation. *)
  let name_perm columns =
    let cols = List.mapi (fun i c -> (i, c)) columns in
    let sorted =
      List.sort (fun (_, a) (_, b) -> String.compare a b) cols
    in
    Array.of_list (List.map fst sorted)
  in
  let permute perm (tu : Tuple.t) = Array.map (fun i -> tu.(i)) perm in
  let config = { Server.Service.default_config with workers = 1 } in
  let cluster = Shard.Cluster.start ~config ~n:shards catalog in
  Fun.protect ~finally:(fun () -> Shard.Cluster.stop cluster) @@ fun () ->
  let ses = Shard.Coordinator.open_session (Shard.Cluster.coordinator cluster) in
  Fun.protect ~finally:(fun () -> Shard.Coordinator.close_session ses)
  @@ fun () ->
  let ( let* ) = Result.bind in
  let tuple_cmp (a, _) (b, _) = Tuple.compare a b in
  let compare_round label =
    let* dcols, full = direct_full () in
    match Shard.Coordinator.query ses sql with
    | Error e ->
        Error
          (Printf.sprintf "%s: coordinator: %s" label
             (Server.Service.error_message e))
    | Ok reply ->
        let fail fmt = Printf.ksprintf (fun m -> Error (label ^ ": " ^ m)) fmt in
        if not reply.Shard.Coordinator.scattered then
          fail "co-partitioned top-k did not scatter"
        else if
          List.length reply.Shard.Coordinator.scores
          <> List.length reply.Shard.Coordinator.rows
        then fail "coordinator row/score arity mismatch"
        else if
          List.sort String.compare dcols
          <> List.sort String.compare reply.Shard.Coordinator.columns
        then
          fail "column sets diverge (single node [%s], sharded [%s])"
            (String.concat "; " dcols)
            (String.concat "; " reply.Shard.Coordinator.columns)
        else begin
          let perm_e = name_perm dcols in
          let perm_g = name_perm reply.Shard.Coordinator.columns in
          let got =
            List.map2
              (fun r s -> (permute perm_g r, s))
              reply.Shard.Coordinator.rows reply.Shard.Coordinator.scores
          in
          let full = List.map (fun (r, s) -> (permute perm_e r, s)) full in
          let kk = min k (List.length full) in
          let expected = List.filteri (fun i _ -> i < kk) full in
          let rec is_sorted = function
            | (_, a) :: ((_, b) :: _ as rest) ->
                Float.compare a b >= 0 && is_sorted rest
            | _ -> true
          in
          if List.length got <> kk then
            fail "size mismatch: single node %d rows, sharded %d" kk
              (List.length got)
          else if not (is_sorted got) then
            fail "sharded rows not in non-increasing score order"
          else if
            (* Different plan shapes associate the weighted score sum
               differently (rank-join accumulation vs one expression
               evaluation), so scores agree only to within float
               association jitter — exactly like the plan-level modes. *)
            not (List.for_all2 (fun (_, a) (_, b) -> scores_close a b) expected got)
          then
            fail "score sequence diverges (single node [%s], sharded [%s])"
              (String.concat "; "
                 (List.map
                    (fun (r, s) -> Printf.sprintf "%s@%h" (Tuple.to_string r) s)
                    expected))
              (String.concat "; "
                 (List.map
                    (fun (r, s) -> Printf.sprintf "%s@%h" (Tuple.to_string r) s)
                    got))
          else begin
            (* Rows are classified against the k-th score with the same
               tolerance: strictly-above rows are uniquely determined and
               must match as a multiset; rows in the boundary band may
               resolve to any member of the oracle's boundary tie group
               (single-node Top-N keeps an arbitrary subset of a tie). *)
            let boundary =
              match List.rev expected with [] -> None | (_, s) :: _ -> Some s
            in
            let strict l =
              match boundary with
              | None -> l
              | Some b ->
                  List.filter
                    (fun (_, s) -> s > b && not (scores_close s b)) l
            in
            let exp_strict = List.sort tuple_cmp (strict expected) in
            let got_strict = List.sort tuple_cmp (strict got) in
            if
              List.length exp_strict <> List.length got_strict
              || not
                   (List.for_all2
                      (fun (a, _) (b, _) -> Tuple.equal a b)
                      exp_strict got_strict)
            then
              fail "rows above the boundary tie group diverge (single node [%s], sharded [%s])"
                (String.concat "; "
                   (List.map (fun (r, _) -> Tuple.to_string r) exp_strict))
                (String.concat "; "
                   (List.map (fun (r, _) -> Tuple.to_string r) got_strict))
            else begin
              let at_boundary l =
                match boundary with
                | None -> []
                | Some b -> List.filter (fun (_, s) -> scores_close s b) l
              in
              let tie_group = at_boundary full in
              if
                List.for_all
                  (fun (r, _) ->
                    List.exists (fun (r', _) -> Tuple.equal r r') tie_group)
                  (at_boundary got)
              then Ok ()
              else fail "a sharded boundary row is not in the oracle tie group"
            end
          end
        end
  in
  try
    let* () = compare_round "initial" in
    (* Route an INSERT through the coordinator (mirror first, then the
       owning shard); key 0 always exists in every join's key domain. *)
    let* () =
      match
        Shard.Coordinator.query ses "INSERT INTO T0 VALUES (100001, 0, 1.75)"
      with
      | Error e -> Error ("routed INSERT: " ^ Server.Service.error_message e)
      | Ok r when r.Shard.Coordinator.affected <> Some 1 ->
          Error "routed INSERT: expected affected=1"
      | Ok _ -> Ok ()
    in
    let* () = compare_round "after routed INSERT" in
    Ok 3
  with e -> Error ("shard-mode raised: " ^ Printexc.to_string e)

let run_case_shard ~shards seed =
  let case = gen_case seed in
  match check_case_shard ~shards case with
  | Ok n -> Ok n
  | Error reason ->
      Error
        {
          f_seed = seed;
          f_reason = Printf.sprintf "shard-mode (%d shards): %s" shards reason;
          f_plan = None;
          f_case = case;
          f_replay =
            Printf.sprintf "rankopt fuzz --shard %d --seed %d --cases 1" shards
              seed;
        }

let run_shard ?(progress = fun _ -> ()) ~seed ~cases ~shards () =
  let failures = ref [] in
  let checked = ref 0 in
  for i = 0 to cases - 1 do
    progress i;
    match run_case_shard ~shards (seed + i) with
    | Ok n -> checked := !checked + n
    | Error f -> failures := f :: !failures
  done;
  { o_cases = cases; o_plans = !checked; o_failures = List.rev !failures }
