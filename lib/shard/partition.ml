open Relalg

type scheme =
  | Hash of string
  | Score_range of { column : string; cuts : float array }

type t = {
  n : int;
  schemes : (string * scheme) list;
}

let scheme_of t table = List.assoc_opt table t.schemes

let partition_column = function
  | Hash c -> c
  | Score_range { column; _ } -> column

(* Hash the persist encoding, not the in-memory value: Hashtbl.hash on a
   string is stable across processes, so an external shard started with
   --shard-of agrees with the coordinator about row placement. *)
let hash_value v = Hashtbl.hash (Storage.Persist.value_encode v) land max_int

let range_bucket cuts x =
  if Float.is_nan x then 0
  else begin
    (* First cut strictly above x; cuts ascending, length n-1. *)
    let n = Array.length cuts in
    let rec go i = if i >= n then n else if x <= cuts.(i) then i else go (i + 1) in
    go 0
  end

let assign t ~table schema tu =
  if t.n <= 1 then 0
  else
    match scheme_of t table with
    | None -> 0
    | Some scheme -> (
        let column = partition_column scheme in
        match Schema.index_of schema ~relation:table column with
        | None -> 0
        | Some i -> (
            let v = Tuple.get tu i in
            match scheme with
            | Hash _ -> hash_value v mod t.n
            | Score_range { cuts; _ } -> range_bucket cuts (Value.to_float v)))

let default_column schema =
  let cols = Schema.columns schema in
  let name c = c.Schema.name in
  match List.find_opt (fun c -> name c = "key") cols with
  | Some c -> name c
  | None -> ( match cols with c :: _ -> name c | [] -> "key")

let equi_depth_cuts values n =
  let sorted = List.sort Float.compare (List.filter (fun v -> not (Float.is_nan v)) values) in
  let arr = Array.of_list sorted in
  let len = Array.length arr in
  Array.init (n - 1) (fun i ->
      if len = 0 then float_of_int i
      else arr.(min (len - 1) ((i + 1) * len / n)))

let derive ?(spec = "hash") ~n cat =
  let n = max 1 n in
  let scheme_for (info : Storage.Catalog.table_info) =
    let table = info.Storage.Catalog.tb_name in
    let schema = info.Storage.Catalog.tb_schema in
    let has col = Schema.mem schema ~relation:table col in
    match String.split_on_char ':' spec with
    | [ "hash" ] -> Hash (default_column schema)
    | [ "hash"; col ] when has col -> Hash col
    | [ "hash"; _ ] -> Hash (default_column schema)
    | [ "range"; col ] when has col ->
        let i = Schema.index_of_exn schema ~relation:table col in
        let values =
          List.map
            (fun tu -> Value.to_float (Tuple.get tu i))
            (Storage.Heap_file.to_list info.Storage.Catalog.tb_heap)
        in
        Score_range { column = col; cuts = equi_depth_cuts values n }
    | [ "range"; _ ] -> Hash (default_column schema)
    | _ -> invalid_arg (Printf.sprintf "Partition.derive: bad spec %S" spec)
  in
  {
    n;
    schemes =
      List.map
        (fun info -> (info.Storage.Catalog.tb_name, scheme_for info))
        (Storage.Catalog.tables cat);
  }

let split t cat =
  let shards =
    Array.init t.n (fun _ ->
        Storage.Catalog.create ~tuples_per_page:(Storage.Catalog.tuples_per_page cat) ())
  in
  List.iter
    (fun (info : Storage.Catalog.table_info) ->
      let table = info.Storage.Catalog.tb_name in
      let schema = info.Storage.Catalog.tb_schema in
      let buckets = Array.make t.n [] in
      List.iter
        (fun tu ->
          let s = assign t ~table schema tu in
          buckets.(s) <- tu :: buckets.(s))
        (Storage.Heap_file.to_list info.Storage.Catalog.tb_heap);
      Array.iteri
        (fun s rows ->
          ignore (Storage.Catalog.create_table shards.(s) table schema (List.rev rows));
          List.iter
            (fun (ix : Storage.Catalog.index_info) ->
              ignore
                (Storage.Catalog.create_index shards.(s)
                   ~clustered:ix.Storage.Catalog.ix_clustered
                   ~name:ix.Storage.Catalog.ix_name ~table
                   ~key:ix.Storage.Catalog.ix_key ()))
            (Storage.Catalog.indexes_on cat table))
        buckets)
    (Storage.Catalog.tables cat);
  shards

(* Union-find over (table, column) pairs connected by equi-join
   conjuncts; co-partitioning requires all partition columns in one
   class, so equal partition keys imply equal shard assignment and every
   join pair is shard-local. *)
let co_partitioned t ~tables ~joins =
  match tables with
  | [] -> false
  | [ _ ] -> true
  | _ ->
      let all_hash =
        List.for_all
          (fun tbl ->
            match scheme_of t tbl with Some (Hash _) -> true | _ -> false)
          tables
      in
      all_hash
      &&
      let parent = Hashtbl.create 16 in
      let rec find x =
        match Hashtbl.find_opt parent x with
        | None | Some None -> x
        | Some (Some p) ->
            let r = find p in
            Hashtbl.replace parent x (Some r);
            r
      in
      let union a b =
        let ra = find a and rb = find b in
        if ra <> rb then Hashtbl.replace parent ra (Some rb)
      in
      List.iter (fun (t1, c1, t2, c2) -> union (t1, c1) (t2, c2)) joins;
      let part_cols =
        List.map
          (fun tbl ->
            match scheme_of t tbl with
            | Some (Hash c) -> (tbl, c)
            | _ -> assert false)
          tables
      in
      match part_cols with
      | [] -> false
      | first :: rest ->
          let root = find first in
          List.for_all (fun pc -> find pc = root) rest

let describe t =
  let scheme_str = function
    | Hash c -> Printf.sprintf "hash(%s)" c
    | Score_range { column; cuts } ->
        Printf.sprintf "range(%s, %d cut(s))" column (Array.length cuts)
  in
  match
    List.sort_uniq compare (List.map (fun (_, s) -> scheme_str s) t.schemes)
  with
  | [] -> Printf.sprintf "%d shard(s)" t.n
  | descs -> Printf.sprintf "%d shard(s), %s" t.n (String.concat "; " descs)
