(** Socket front end for the {!Coordinator} — the coordinator-mode
    [rankopt serve].

    Speaks the same {!Server.Protocol} line protocol as the single-node
    listener, with the coordinator behind every verb: ranked statements
    scatter/gather across the cluster (replies gain a
    [depths=d0,d1,...] header field reporting each shard's observed
    depth and [scattered=1]), DML routes through the mirror, and the
    [SHARD ADD]/[SHARD LIST] verbs are live. *)

type t

val start : Cluster.t -> Server.Listener.endpoint -> t
(** Bind and accept. Raises [Unix.Unix_error] if the endpoint cannot be
    bound. Stopping the front end does {e not} stop the cluster. *)

val stop : t -> unit
val wait : t -> unit
