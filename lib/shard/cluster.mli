(** In-process shard cluster: N {!Server.Listener}s over {!Partition}
    slices of one catalog, fronted by a {!Coordinator}.

    Each shard is a full [rankopt serve] stack (service, plan cache,
    worker domains, Unix-socket listener) over its slice; the coordinator
    keeps the original catalog as its mirror. [SHARD ADD] is wired to
    {!add_shard}: re-split the mirror over n+1 shards, start the new
    listeners, swap the coordinator's links (bumping the partitioning
    epoch) and stop the old generation. *)

type t

val start :
  ?config:Server.Service.config ->
  ?spec:string ->
  ?dir:string ->
  n:int ->
  Storage.Catalog.t ->
  t
(** Split [catalog] with [Partition.derive ?spec ~n], serve every slice
    on its own Unix socket under [dir] (a fresh temp directory when
    omitted), and install the reshard hook. The catalog itself becomes
    the coordinator's mirror — do not mutate it behind the cluster's
    back. *)

val coordinator : t -> Coordinator.t

val n_shards : t -> int

val socket_paths : t -> string list

val add_shard : t -> string -> (unit, string) result
(** Grow the cluster by one shard ([path] names its socket; [""] or
    ["auto"] picks one under the cluster directory) and repartition from
    the mirror. Open scatter plans and gather cursors are invalidated via
    the partitioning epoch. *)

val stop : t -> unit
(** Stop the coordinator's local service, every shard listener, and
    remove the socket files. Idempotent. *)
