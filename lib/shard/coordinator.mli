(** Rank-aware scatter/gather coordinator for a sharded cluster.

    The coordinator owns a {e mirror} catalog (the full, unpartitioned
    data) plus line-protocol links to N shard servers, each holding one
    {!Partition} slice. A ranked statement that can be answered
    shard-locally — a top-k over co-partitioned tables, or a
    [rank()/dense_rank() BETWEEN] window — is {e scattered}: rewritten to
    a per-shard [SELECT *] subquery with a pushed-down bound
    ([LIMIT k'] with [k' = k] under hash partitioning, window
    [BETWEEN 1 AND hi]), streamed back over [WIRE HEX] (bit-exact rows),
    and merged with the canonical tie comparator, so the gathered answer
    is cell-identical to a single-node execution. Everything else falls
    back to the embedded local {!Server.Service} over the mirror.

    Early termination: scattered top-k statements open shard cursors and
    pull batches of [k/N + 8] rows (the flat-prior per-shard expectation
    the cost model charges); a shard whose scores have fallen out of the
    merge race is simply never fetched from again, so its observed depth
    stays near [k/N] rather than [k']. Per-shard observed depths are
    reported in every scattered {!reply} and in {!analyze}'s
    Gather-remote report.

    DML is applied to the mirror first (keeping its statistics and
    epochs authoritative) and then routed: single-row-assignable INSERTs
    to the owning shard only, DELETE/UPDATE broadcast. The scatter-plan
    cache is keyed on (template text, partitioning epoch); [SHARD ADD]
    repartitions and bumps the epoch, invalidating every cached scatter
    plan. *)

type reply = {
  columns : string list;
  rows : Relalg.Tuple.t list;
  scores : float list;
  affected : int option;
  scattered : bool;  (** Answered by scatter/gather, not the mirror. *)
  depths : int array;
      (** Per-shard observed depth (rows pulled) when [scattered]. *)
  latency_s : float;
}

type t
type session

val create :
  ?config:Server.Service.config ->
  mirror:Storage.Catalog.t ->
  part:Partition.t ->
  endpoints:Server.Listener.endpoint list ->
  unit ->
  t
(** The mirror catalog must contain exactly the rows fanned out to the
    shards (see {!Partition.split}); shard links connect lazily. *)

val set_reshard : t -> (t -> string -> (unit, string) result) -> unit
(** Install the [SHARD ADD] implementation (an in-process {!Cluster}
    spawns one more shard and repartitions). Without one, [SHARD ADD]
    fails. *)

val reconfigure :
  t -> part:Partition.t -> endpoints:Server.Listener.endpoint list -> unit
(** Swap the shard set after a repartition: drops every link, bumps the
    partitioning epoch (invalidating cached scatter plans and open
    gather cursors). *)

val shutdown : t -> unit
(** Close shard links and the local service. Does {e not} stop the shard
    servers (their owner — e.g. {!Cluster} — does). *)

val mirror : t -> Storage.Catalog.t
val local : t -> Server.Service.t
val part : t -> Partition.t
val part_epoch : t -> int
val endpoints : t -> Server.Listener.endpoint list

val open_session : t -> session
val close_session : session -> unit

val set_timeout : session -> float option -> unit
(** Session default deadline override — forwarded to the embedded mirror
    session and used as the scatter deadline budget. *)

val session_stats : session -> (string * string) list

val query :
  session -> ?timeout_s:float -> ?k:int -> string -> (reply, Server.Service.error) result
(** One-shot statement: scattered when eligible, otherwise the mirror
    service (SELECT through its plan cache; DML applied to the mirror
    and routed to the shards). *)

val prepare :
  session -> name:string -> string -> (Sqlfront.Sql.template, Server.Service.error) result

val execute_prepared :
  session -> ?timeout_s:float -> ?k:int -> string -> (reply, Server.Service.error) result
(** Scattered top-k executions park a {e gather cursor} under the
    statement name: {!fetch} continues the merged enumeration exactly
    like a single-node cursor, and shard cursors stay open underneath. *)

val fetch :
  session -> ?timeout_s:float -> name:string -> int -> (reply, Server.Service.error) result

val close_cursor : session -> string -> (unit, Server.Service.error) result

val explain : session -> string -> (string, Server.Service.error) result
(** Scattered statements render the distributed plan — a
    [GatherRemote] node over per-shard [RemoteScan] leaves, each with
    its pushed subquery and k' bound; others defer to the mirror. *)

val analyze :
  session -> ?k:int -> string -> (string, Server.Service.error) result
(** EXPLAIN ANALYZE for scattered statements: executes, then annotates
    the Gather-remote node with each shard's observed depth against its
    pushed bound. Falls back to the mirror's plan report otherwise. *)

val rank_probe :
  session ->
  ?dense:bool ->
  table:string ->
  column:string ->
  float ->
  (int option * int, Server.Service.error) result
(** Inline probe of the mirror's order-statistic index (the mirror holds
    all rows, so its answer is the global one). *)

val stats : t -> (string * string) list
(** Mirror-service fields plus [shards], [part_epoch], and
    [cluster_*] sums of the shard services' query/error/timeout/shed
    counters. *)

val shard_list : t -> string list
(** One line per shard: id, endpoint, per-table row counts (computed
    from the partition function over the mirror). *)

val shard_add : t -> string -> (unit, string) result
