module Proto = Server.Protocol
module L = Server.Listener

type t = {
  fr_cluster : Cluster.t;
  fr_listener : Unix.file_descr;
  fr_endpoint : L.endpoint;
  fr_m : Rkutil.Latch.t;
  fr_stopped_cond : Condition.t;
  mutable fr_stopped : bool;
  mutable fr_conns : Unix.file_descr list;
  mutable fr_accept : Thread.t option;
}

let err_of e =
  Proto.err_response ~code:(Server.Service.error_code e)
    (Server.Service.error_message e)

(* Same wire shape as the single-node reply, plus the scatter fields. *)
let render_coord_reply ~codec (r : Coordinator.reply) =
  let fields =
    [
      ("scattered", if r.Coordinator.scattered then "1" else "0");
      ( "latency_ms",
        Printf.sprintf "%.3f" (r.Coordinator.latency_s *. 1000.0) );
    ]
    @
    if r.Coordinator.scattered then
      [
        ( "depths",
          String.concat ","
            (Array.to_list (Array.map string_of_int r.Coordinator.depths)) );
      ]
    else []
  in
  match r.Coordinator.affected with
  | Some n -> Proto.ok_response ~fields:(("affected", string_of_int n) :: fields) []
  | None ->
      let header =
        if r.Coordinator.columns = [] then []
        else [ String.concat "\t" r.Coordinator.columns ]
      in
      let scores =
        match r.Coordinator.scores with
        | [] -> List.map (fun _ -> None) r.Coordinator.rows
        | ss -> List.map Option.some ss
      in
      let rows =
        List.map2
          (fun row score ->
            let cells =
              Array.to_list (Array.map (Proto.render_cell codec) row)
            in
            let cells =
              match score with
              | None -> cells
              | Some s -> cells @ [ Proto.render_score codec s ]
            in
            String.concat "\t" cells)
          r.Coordinator.rows scores
      in
      Proto.ok_response
        ~fields:(("rows", string_of_int (List.length rows)) :: fields)
        (header @ rows)

let dispatch cluster session ~codec cmd =
  let coord = Cluster.coordinator cluster in
  match cmd with
  | Proto.Ping -> (Proto.ok_response ~fields:[ ("pong", "1") ] [], `Keep)
  | Proto.Prepare { name; sql } -> (
      match Coordinator.prepare session ~name sql with
      | Ok tpl ->
          ( Proto.ok_response
              ~fields:[ ("prepared", name) ]
              [ tpl.Sqlfront.Sql.tpl_text ],
            `Keep )
      | Error e -> (err_of e, `Keep))
  | Proto.Execute { name; k } -> (
      match Coordinator.execute_prepared session ?k name with
      | Ok reply -> (render_coord_reply ~codec:!codec reply, `Keep)
      | Error e -> (err_of e, `Keep))
  | Proto.Fetch { name; n } -> (
      match Coordinator.fetch session ~name n with
      | Ok reply -> (render_coord_reply ~codec:!codec reply, `Keep)
      | Error e -> (err_of e, `Keep))
  | Proto.Close name -> (
      match Coordinator.close_cursor session name with
      | Ok () -> (Proto.ok_response ~fields:[ ("closed", name) ] [], `Keep)
      | Error e -> (err_of e, `Keep))
  | Proto.Query sql -> (
      match Coordinator.query session sql with
      | Ok reply -> (render_coord_reply ~codec:!codec reply, `Keep)
      | Error e -> (err_of e, `Keep))
  | Proto.Explain sql -> (
      match Coordinator.explain session sql with
      | Ok text ->
          let lines =
            String.split_on_char '\n' text
            |> List.filter (fun l -> String.trim l <> "")
          in
          (Proto.ok_response lines, `Keep)
      | Error e -> (err_of e, `Keep))
  | Proto.Rank { table; column; value; dense } -> (
      match Coordinator.rank_probe session ~dense ~table ~column value with
      | Ok (rank, total) ->
          let fields =
            (match rank with
            | Some r -> [ ("rank", string_of_int r) ]
            | None -> [ ("rank", "none") ])
            @ [ ("of", string_of_int total) ]
            @ (if dense then [ ("dense", "1") ] else [])
          in
          (Proto.ok_response ~fields [], `Keep)
      | Error e -> (err_of e, `Keep))
  | Proto.Stats scope ->
      let fields =
        match scope with
        | `Server -> Coordinator.stats coord
        | `Session -> Coordinator.session_stats session
      in
      let lines = List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) fields in
      (Proto.ok_response lines, `Keep)
  | Proto.Wire c ->
      codec := c;
      ( Proto.ok_response
          ~fields:[ ("wire", match c with `Text -> "text" | `Hex -> "hex") ]
          [],
        `Keep )
  | Proto.Timeout t ->
      Coordinator.set_timeout session t;
      let v = match t with None -> "default" | Some s -> Printf.sprintf "%g" s in
      (Proto.ok_response ~fields:[ ("timeout", v) ] [], `Keep)
  | Proto.Shard_list ->
      let lines = Coordinator.shard_list coord in
      (Proto.ok_response lines, `Keep)
  | Proto.Shard_add path -> (
      match Coordinator.shard_add coord path with
      | Ok () ->
          ( Proto.ok_response
              ~fields:
                [
                  ("shards", string_of_int (Cluster.n_shards cluster));
                  ( "part_epoch",
                    string_of_int (Coordinator.part_epoch coord) );
                ]
              [],
            `Keep )
      | Error msg -> (Proto.err_response ~code:"SHARD" msg, `Keep))
  | Proto.Quit -> (Proto.ok_response ~fields:[ ("bye", "1") ] [], `Close)
  | Proto.Shutdown ->
      (Proto.ok_response ~fields:[ ("shutdown", "1") ] [], `Shutdown)

let send oc response =
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    (Proto.render response);
  flush oc

let remove_conn t fd =
  Rkutil.Latch.protect t.fr_m (fun () ->
      t.fr_conns <- List.filter (fun c -> c != fd) t.fr_conns)

let rec stop t =
  let to_close =
    Rkutil.Latch.protect t.fr_m (fun () ->
        if t.fr_stopped then None
        else begin
          t.fr_stopped <- true;
          let conns = t.fr_conns in
          t.fr_conns <- [];
          Some conns
        end)
  in
  match to_close with
  | None -> ()
  | Some conns ->
      (try Unix.shutdown t.fr_listener Unix.SHUTDOWN_ALL
       with Unix.Unix_error _ -> ());
      (try Unix.close t.fr_listener with Unix.Unix_error _ -> ());
      List.iter
        (fun fd ->
          try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
        conns;
      (match t.fr_endpoint with
      | L.Unix_socket path -> (
          try Unix.unlink path with Unix.Unix_error _ -> ())
      | L.Tcp _ -> ());
      Rkutil.Latch.protect t.fr_m (fun () -> Condition.broadcast t.fr_stopped_cond)

and handle_conn t fd =
  let session = Coordinator.open_session (Cluster.coordinator t.fr_cluster) in
  let codec = ref `Text in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let shutdown_requested = ref false in
  (try
     let quit = ref false in
     while not !quit do
       match L.read_line_bounded ic with
       | `Eof -> quit := true
       | `Overflow ->
           send oc
             (Proto.err_response ~code:"PROTOCOL"
                (Printf.sprintf "command exceeds %d bytes" L.max_line_bytes))
       | `Line line when String.trim line = "" -> ()
       | `Line line -> (
           match Proto.parse_command line with
           | Error msg -> send oc (Proto.err_response ~code:"PROTOCOL" msg)
           | Ok cmd -> (
               let response, action = dispatch t.fr_cluster session ~codec cmd in
               send oc response;
               match action with
               | `Keep -> ()
               | `Close -> quit := true
               | `Shutdown ->
                   shutdown_requested := true;
                   quit := true))
     done
   with Sys_error _ | Unix.Unix_error _ -> ());
  (try Coordinator.close_session session with _ -> ());
  remove_conn t fd;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  if !shutdown_requested then stop t

let accept_loop t =
  let rec loop () =
    match Unix.accept t.fr_listener with
    | exception Unix.Unix_error _ -> ()
    | exception Sys_error _ -> ()
    | fd, _addr ->
        let admitted =
          Rkutil.Latch.protect t.fr_m (fun () ->
              if t.fr_stopped then false
              else begin
                t.fr_conns <- fd :: t.fr_conns;
                true
              end)
        in
        if admitted then ignore (Thread.create (fun () -> handle_conn t fd) ())
        else (try Unix.close fd with Unix.Unix_error _ -> ());
        loop ()
  in
  loop ()

let start cluster endpoint =
  let listener, sockaddr =
    match endpoint with
    | L.Unix_socket path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | L.Tcp (host, port) ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        (fd, Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
  in
  (try Unix.bind listener sockaddr
   with e ->
     (try Unix.close listener with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen listener 16;
  let t =
    {
      fr_cluster = cluster;
      fr_listener = listener;
      fr_endpoint = endpoint;
      fr_m = Rkutil.Latch.create ~name:"shard.frontend" ~rank:14 ();
      fr_stopped_cond = Condition.create ();
      fr_stopped = false;
      fr_conns = [];
      fr_accept = None;
    }
  in
  t.fr_accept <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let wait t =
  Rkutil.Latch.lock t.fr_m;
  while not t.fr_stopped do
    Rkutil.Latch.wait t.fr_stopped_cond t.fr_m
  done;
  Rkutil.Latch.unlock t.fr_m;
  match t.fr_accept with None -> () | Some th -> Thread.join th
