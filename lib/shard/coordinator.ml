open Relalg
module Svc = Server.Service
module Proto = Server.Protocol
module Sql = Sqlfront.Sql
module Ast = Sqlfront.Ast
module Binder = Sqlfront.Binder

type reply = {
  columns : string list;
  rows : Tuple.t list;
  scores : float list;
  affected : int option;
  scattered : bool;
  depths : int array;
  latency_s : float;
}

(* Internal error escape: public entry points catch it at the boundary. *)
exception Err of Svc.error

type link = {
  lk_id : int;
  lk_endpoint : Server.Listener.endpoint;
  mutable lk_client : Server.Client.t option;
}

(* A scatter plan: everything derivable from the template alone, cached
   on (canonical text, partitioning epoch). *)
type scatter = {
  sc_window : (int * int) option;  (* None = top-k (streamed). *)
  sc_dense : bool;
  sc_push : string;  (* Pushed-down per-shard subquery (canonical). *)
  sc_k : int option;  (* k' bound: build-time k for top-k, hi for windows. *)
  sc_prep : Sql.prepared;  (* Mirror plan: schema, projection, numbering. *)
  sc_schema : Schema.t;  (* Plan output schema (row wire order target). *)
  sc_names : string array;  (* Qualified column names of [sc_schema]. *)
  sc_perm : int array;  (* Canonical tie-break projection of the schema. *)
  sc_filter : (Tuple.t -> bool) option;  (* Residual window filter. *)
  sc_tables : string list;
}

(* One shard's half of an in-flight gather. *)
type source = {
  so_link : link;
  so_name : string;  (* Shard-side prepared-statement / cursor name. *)
  mutable so_perm : int array option;  (* schema pos -> wire cell pos. *)
  mutable so_buf : (Tuple.t * float) list;  (* Parsed, not yet merged. *)
  mutable so_depth : int;  (* Observed depth: rows received so far. *)
  mutable so_bound : int;  (* Last k bound sent with EXECUTE. *)
  mutable so_exhausted : bool;
  mutable so_no_cursor : bool;  (* Shard plan not enumerable: re-EXECUTE. *)
}

type gcursor = {
  gc_sc : scatter;
  gc_srcs : source array;
  mutable gc_pos : int;  (* Absolute rank of the next row to emit. *)
  gc_epoch : int;  (* Partitioning epoch at open. *)
  gc_stats : int;  (* Mirror stats epoch of the FROM tables at open. *)
}

type t = {
  co_mirror : Storage.Catalog.t;
  co_local : Svc.t;
  co_config : Svc.config;
  co_lock : Rkutil.Latch.t;
      (* Serializes all shard I/O and link state. Long-class by design:
         RPC round-trips run under it. *)
  mutable co_part : Partition.t;
  mutable co_links : link array;
  mutable co_epoch : int;
  mutable co_gen : int;  (* Fresh shard-side statement names. *)
  mutable co_reshard : (t -> string -> (unit, string) result) option;
  co_scatters : (string * int, scatter option) Hashtbl.t;
}

type session = {
  ss_t : t;
  ss_sv : Svc.session;
  ss_tpls : (string, Sql.template) Hashtbl.t;
  ss_gcs : (string, gcursor) Hashtbl.t;
  mutable ss_timeout : float option;
}

let with_lock t f =
  Rkutil.Latch.protect t.co_lock (fun () ->
      Rkutil.Latch.guarded t.co_lock "coordinator.links";
      f ())

let endpoint_string ep = Format.asprintf "%a" Server.Listener.pp_endpoint ep

(* ------------------------------------------------------------------ *)
(* Shard RPC plumbing (all under the coordinator lock).               *)

let drop_client lk =
  (match lk.lk_client with
  | Some c -> ( try Server.Client.close c with _ -> ())
  | None -> ());
  lk.lk_client <- None

let link_client lk =
  match lk.lk_client with
  | Some c -> c
  | None -> (
      match Server.Client.connect lk.lk_endpoint with
      | exception Unix.Unix_error (e, _, _) ->
          raise
            (Err
               (Svc.Exec_error
                  (Printf.sprintf "shard %d unreachable at %s: %s" lk.lk_id
                     (endpoint_string lk.lk_endpoint) (Unix.error_message e))))
      | c ->
          lk.lk_client <- Some c;
          (* Bit-exact row codec for the whole connection. *)
          (match Server.Client.request c "WIRE HEX" with
          | Ok r when r.Proto.ok -> ()
          | _ ->
              drop_client lk;
              raise
                (Err
                   (Svc.Exec_error
                      (Printf.sprintf "shard %d: WIRE HEX refused" lk.lk_id))));
          c)

(* Send one line; transport failures drop the connection so the next
   statement reconnects. Returns the response even when [not ok]. *)
let rpc_raw lk line =
  let c = link_client lk in
  match Server.Client.request c line with
  | Ok resp -> resp
  | Error e ->
      drop_client lk;
      raise
        (Err (Svc.Exec_error (Printf.sprintf "shard %d: transport: %s" lk.lk_id e)))

let shard_error lk (resp : Proto.response) =
  match resp.Proto.code with
  | "TIMEOUT" -> Svc.Timeout
  | "QUEUE_FULL" -> Svc.Queue_full resp.Proto.message
  | code ->
      Svc.Exec_error
        (Printf.sprintf "shard %d: %s %s" lk.lk_id code resp.Proto.message)

let rpc lk line =
  let resp = rpc_raw lk line in
  if resp.Proto.ok then resp else raise (Err (shard_error lk resp))

(* Propagate the remaining deadline to the shard session before work. *)
let push_deadline lk ~deadline =
  let remaining = deadline -. Unix.gettimeofday () in
  if remaining <= 0.0 then raise (Err Svc.Timeout);
  ignore (rpc lk (Printf.sprintf "TIMEOUT %.6f" remaining))

(* ------------------------------------------------------------------ *)
(* Wire parsing: HEX payload lines back into (tuple, score) rows.      *)

let header_perm sc lk header =
  let names = String.split_on_char '\t' header in
  Array.map
    (fun want ->
      let rec go i = function
        | [] ->
            raise
              (Err
                 (Svc.Exec_error
                    (Printf.sprintf "shard %d: column %s missing from reply"
                       lk.lk_id want)))
        | n :: tl -> if String.equal n want then i else go (i + 1) tl
      in
      go 0 names)
    sc.sc_names

let parse_row lk perm line =
  let cells = Array.of_list (String.split_on_char '\t' line) in
  let ncells = Array.length cells in
  if ncells = 0 then raise (Err (Svc.Exec_error "empty shard row"));
  let score =
    match Proto.parse_score `Hex cells.(ncells - 1) with
    | Some s -> s
    | None ->
        raise
          (Err
             (Svc.Exec_error
                (Printf.sprintf "shard %d: row missing score trailer" lk.lk_id)))
  in
  let tu =
    Array.map
      (fun p ->
        if p >= ncells - 1 then
          raise (Err (Svc.Exec_error "shard row arity mismatch"))
        else
          match Storage.Persist.value_decode cells.(p) with
          | v -> v
          | exception _ ->
              raise
                (Err
                   (Svc.Exec_error
                      (Printf.sprintf "shard %d: undecodable cell %S" lk.lk_id
                         cells.(p)))))
      perm
  in
  (tu, score)

(* Parse a SELECT reply (header + rows); caches the header permutation
   on the source across batches of one gather. *)
let parse_reply sc so (resp : Proto.response) =
  match resp.Proto.payload with
  | [] -> []
  | header :: lines ->
      let perm =
        match so.so_perm with
        | Some p -> p
        | None ->
            let p = header_perm sc so.so_link header in
            so.so_perm <- Some p;
            p
      in
      List.map (parse_row so.so_link perm) lines

(* ------------------------------------------------------------------ *)
(* Gather merge.                                                       *)

(* Global order: score desc, canonical tuple order, shard id — the same
   tie-break the single-node enumeration uses, with the shard id as a
   final (never reached for distinct tuples) stabilizer. *)
let row_compare sc (t1, s1, i1) (t2, s2, i2) =
  let c = Float.compare s2 s1 in
  if c <> 0 then c
  else
    let c = Core.Executor.canonical_compare sc.sc_perm t1 t2 in
    if c <> 0 then c else Int.compare i1 i2

(* Refill one drained top-k source: FETCH NEXT on the shard cursor, or —
   when the shard plan is not enumerable — re-EXECUTE with a doubled
   bound and skip the rows already received. *)
let refill sc so ~deadline ~batch =
  if so.so_exhausted then ()
  else begin
    push_deadline so.so_link ~deadline;
    let n = max 1 batch in
    if not so.so_no_cursor then begin
      let resp =
        rpc_raw so.so_link (Printf.sprintf "FETCH %s NEXT %d" so.so_name n)
      in
      if resp.Proto.ok then begin
        let rows = parse_reply sc so resp in
        let got = List.length rows in
        so.so_buf <- so.so_buf @ rows;
        so.so_depth <- so.so_depth + got;
        if got < n then so.so_exhausted <- true
      end
      else if String.equal resp.Proto.code "UNKNOWN_CURSOR" then
        so.so_no_cursor <- true
      else raise (Err (shard_error so.so_link resp))
    end;
    if so.so_no_cursor && not so.so_exhausted then begin
      let bound = so.so_bound + max n so.so_bound in
      let resp =
        rpc so.so_link (Printf.sprintf "EXECUTE %s %d" so.so_name bound)
      in
      let rows = parse_reply sc so resp in
      let total = List.length rows in
      let fresh =
        let rec drop k l = if k <= 0 then l else match l with [] -> [] | _ :: tl -> drop (k - 1) tl in
        drop so.so_depth rows
      in
      so.so_buf <- so.so_buf @ fresh;
      so.so_depth <- max so.so_depth total;
      so.so_bound <- bound;
      if total < bound then so.so_exhausted <- true
    end
  end

(* Pull the next [n] globally-best rows out of the shard streams.
   Threshold-style: each stream's head is its best remaining score, so
   emitting the max head is exact; a stream is refilled only when its
   buffer drains, so shards that lose the race are never fetched deeper. *)
let gather_pull sc srcs ~deadline n =
  let nshards = Array.length srcs in
  let batch = max 1 ((n / max 1 nshards) + 8) in
  let out = ref [] in
  let got = ref 0 in
  let continue = ref true in
  while !continue && !got < n do
    if Unix.gettimeofday () > deadline then raise (Err Svc.Timeout);
    Array.iter
      (fun so -> if so.so_buf = [] then refill sc so ~deadline ~batch)
      srcs;
    let best = ref None in
    Array.iteri
      (fun i so ->
        match so.so_buf with
        | [] -> ()
        | (tu, s) :: _ -> (
            match !best with
            | None -> best := Some (i, tu, s)
            | Some (j, tu', s') ->
                if row_compare sc (tu, s, i) (tu', s', j) < 0 then
                  best := Some (i, tu, s)))
      srcs;
    match !best with
    | None -> continue := false
    | Some (i, tu, s) ->
        srcs.(i).so_buf <- List.tl srcs.(i).so_buf;
        out := (tu, s) :: !out;
        incr got
  done;
  List.rev !out

(* Open the per-shard streams of a top-k scatter: PREPARE the pushed
   subquery and EXECUTE it at the initial batch — the flat-prior
   per-shard expectation k/N plus slack, never more than k' = k. *)
let open_sources t sc ~k ~deadline =
  let n = Array.length t.co_links in
  let b0 = max 1 (min k ((k / max 1 n) + 8)) in
  Array.map
    (fun lk ->
      t.co_gen <- t.co_gen + 1;
      let name = Printf.sprintf "g%d" t.co_gen in
      push_deadline lk ~deadline;
      ignore (rpc lk (Printf.sprintf "PREPARE %s %s" name sc.sc_push));
      let so =
        {
          so_link = lk;
          so_name = name;
          so_perm = None;
          so_buf = [];
          so_depth = 0;
          so_bound = b0;
          so_exhausted = false;
          so_no_cursor = false;
        }
      in
      let resp = rpc lk (Printf.sprintf "EXECUTE %s %d" name b0) in
      let rows = parse_reply sc so resp in
      let got = List.length rows in
      so.so_buf <- rows;
      so.so_depth <- got;
      if got < b0 then so.so_exhausted <- true;
      so)
    t.co_links

let close_sources srcs =
  Array.iter
    (fun so ->
      try ignore (rpc_raw so.so_link (Printf.sprintf "CLOSE %s" so.so_name))
      with Err _ -> ())
    srcs

(* ------------------------------------------------------------------ *)
(* Scatter-plan derivation.                                            *)

let no_aggregates select =
  List.for_all (function Ast.Aggregate _ -> false | _ -> true) select

let build_scatter t (tpl : Sql.template) ~k =
  let ast = tpl.Sql.tpl_ast in
  if ast.Ast.group_by <> [] || not (no_aggregates ast.Ast.select) then None
  else
    let finish ~window ~dense ~push_ast ~k' prep =
      let bound = prep.Sql.bound in
      if
        bound.Binder.aggregation <> None
        || bound.Binder.post_sort <> None
        || bound.Binder.post_limit <> None
      then None
      else
        let logical = prep.Sql.planned.Core.Optimizer.query in
        let tables = ast.Ast.from in
        let co_ok =
          match window with
          | Some _ -> List.length tables = 1
          | None ->
              Core.Logical.is_ranking logical
              && Partition.co_partitioned t.co_part ~tables
                   ~joins:
                     (List.map
                        (fun (j : Core.Logical.join_pred) ->
                          ( j.Core.Logical.left_table,
                            j.Core.Logical.left_column,
                            j.Core.Logical.right_table,
                            j.Core.Logical.right_column ))
                        logical.Core.Logical.joins)
        in
        if not co_ok then None
        else
          let schema =
            Core.Plan.schema_of t.co_mirror prep.Sql.planned.Core.Optimizer.plan
          in
          let filter =
            match (window, tables) with
            | Some _, [ t0 ] -> (
                match
                  (Core.Logical.find_relation logical t0).Core.Logical.filter
                with
                | None -> None
                | Some e -> Some (Expr.compile_bool schema e))
            | _ -> None
          in
          Some
            {
              sc_window = window;
              sc_dense = dense;
              sc_push = (Sql.template_of_ast push_ast).Sql.tpl_text;
              sc_k = k';
              sc_prep = prep;
              sc_schema = schema;
              sc_names =
                Array.of_list
                  (List.map Schema.column_name (Schema.columns schema));
              sc_perm = Core.Executor.canonical_perm schema;
              sc_filter = filter;
              sc_tables = tables;
            }
    in
    match ast.Ast.rank_between with
    | Some (lo, hi) -> (
        if ast.Ast.limit <> None || ast.Ast.limit_param then None
        else
          match Sql.prepare_ast t.co_mirror ast with
          | Error _ -> None
          | Ok prep ->
              (* Push the whole prefix window 1..hi with the residual
                 filter stripped: a shard's local rank never exceeds the
                 global rank, so the union of per-shard prefixes contains
                 every globally windowed row; the filter is re-applied
                 after the merged slice, exactly like the single-node
                 Filter-over-window plan. *)
              let push_ast =
                {
                  ast with
                  Ast.select = [ Ast.Star ];
                  where = [];
                  rank_between = Some (1, hi);
                }
              in
              finish ~window:(Some (lo, hi)) ~dense:ast.Ast.rank_dense ~push_ast
                ~k':(Some hi) prep)
    | None -> (
        if ast.Ast.order_by = None then None
        else if not (ast.Ast.limit_param || ast.Ast.limit <> None) then None
        else
          let k0 =
            match k with
            | Some k -> max 1 k
            | None -> ( match tpl.Sql.tpl_inline_k with Some k -> max 1 k | None -> 1)
          in
          match Sql.instantiate tpl ~k:k0 () with
          | Error _ -> None
          | Ok inst -> (
              match Sql.prepare_ast t.co_mirror inst with
              | Error _ -> None
              | Ok prep ->
                  (* Push SELECT * with every filter and join kept (they
                     commute with partitioning) and the limit left as a
                     bind parameter: under hash partitioning any shard
                     could hold all k winners, so k' = k, bound at
                     EXECUTE time. *)
                  let push_ast =
                    {
                      inst with
                      Ast.select = [ Ast.Star ];
                      limit = None;
                      limit_param = true;
                    }
                  in
                  finish ~window:None ~dense:false ~push_ast ~k':(Some k0) prep))

let scatter_of t tpl ~k =
  with_lock t (fun () ->
      let key = (tpl.Sql.tpl_text, t.co_epoch) in
      match Hashtbl.find_opt t.co_scatters key with
      | Some sc -> sc
      | None ->
          let sc = build_scatter t tpl ~k in
          Hashtbl.replace t.co_scatters key sc;
          sc)

(* ------------------------------------------------------------------ *)
(* Scattered executions.                                               *)

let depths_of srcs = Array.map (fun so -> so.so_depth) srcs

let answer_reply ~scattered ~depths ~start (ans : Sql.answer) =
  {
    columns = ans.Sql.columns;
    rows = ans.Sql.rows;
    scores = ans.Sql.scores;
    affected = None;
    scattered;
    depths;
    latency_s = Unix.gettimeofday () -. start;
  }

(* Continuations re-number rank() columns by the absolute cursor offset
   (the projection itself numbers from the start of the batch). *)
let bump_ranks (prep : Sql.prepared) offset (ans : Sql.answer) =
  if offset = 0 then ans
  else
    match prep.Sql.bound.Binder.projection with
    | None -> ans
    | Some targets ->
        let rank_cols =
          List.concat
            (List.mapi
               (fun i (oc, _) ->
                 match oc with Binder.Rank -> [ i ] | _ -> [])
               targets)
        in
        if rank_cols = [] then ans
        else
          {
            ans with
            Sql.rows =
              List.map
                (fun row ->
                  let row = Array.copy row in
                  List.iter
                    (fun j ->
                      match row.(j) with
                      | Value.Int r -> row.(j) <- Value.Int (r + offset)
                      | _ -> ())
                    rank_cols;
                  row)
                ans.Sql.rows;
          }

let run_topk t ses sc ~cursor_name ~k ~deadline ~start =
  with_lock t (fun () ->
      let srcs = open_sources t sc ~k ~deadline in
      let rows = gather_pull sc srcs ~deadline k in
      let ans = Sql.project_rows sc.sc_prep sc.sc_schema rows in
      let depths = depths_of srcs in
      (match cursor_name with
      | None -> close_sources srcs
      | Some name ->
          (match Hashtbl.find_opt ses.ss_gcs name with
          | Some old -> close_sources old.gc_srcs
          | None -> ());
          Hashtbl.replace ses.ss_gcs name
            {
              gc_sc = sc;
              gc_srcs = srcs;
              gc_pos = List.length rows;
              gc_epoch = t.co_epoch;
              gc_stats =
                Storage.Catalog.epoch_of_tables t.co_mirror sc.sc_tables;
            });
      answer_reply ~scattered:true ~depths ~start ans)

let dense_slice lo hi rows =
  let rec go d prev acc = function
    | [] -> List.rev acc
    | (tu, s) :: tl ->
        let d =
          match prev with
          | None -> 1
          | Some p -> if Float.compare p s = 0 then d else d + 1
        in
        if d > hi then List.rev acc
        else go d (Some s) (if d >= lo then (tu, s) :: acc else acc) tl
  in
  go 0 None [] rows

let sparse_slice lo hi rows =
  let rec drop k l =
    if k <= 0 then l else match l with [] -> [] | _ :: tl -> drop (k - 1) tl
  in
  let rec take k l =
    if k <= 0 then []
    else match l with [] -> [] | x :: tl -> x :: take (k - 1) tl
  in
  take (hi - lo + 1) (drop (lo - 1) rows)

let run_window t sc ~lo ~hi ~deadline ~start =
  with_lock t (fun () ->
      let n = Array.length t.co_links in
      let depths = Array.make n 0 in
      let all = ref [] in
      Array.iteri
        (fun i lk ->
          push_deadline lk ~deadline;
          let resp = rpc lk (Printf.sprintf "QUERY %s" sc.sc_push) in
          let so =
            {
              so_link = lk;
              so_name = "";
              so_perm = None;
              so_buf = [];
              so_depth = 0;
              so_bound = 0;
              so_exhausted = true;
              so_no_cursor = true;
            }
          in
          let rows = parse_reply sc so resp in
          depths.(i) <- List.length rows;
          all := List.rev_append (List.map (fun (tu, s) -> (tu, s, i)) rows) !all)
        t.co_links;
      let merged =
        List.stable_sort (row_compare sc) !all
        |> List.map (fun (tu, s, _) -> (tu, s))
      in
      let sliced =
        if sc.sc_dense then dense_slice lo hi merged
        else sparse_slice lo hi merged
      in
      let filtered =
        match sc.sc_filter with
        | None -> sliced
        | Some keep -> List.filter (fun (tu, _) -> keep tu) sliced
      in
      let ans = Sql.project_rows sc.sc_prep sc.sc_schema filtered in
      answer_reply ~scattered:true ~depths ~start ans)

(* ------------------------------------------------------------------ *)
(* DML routing.                                                        *)

let render_value = function
  | Value.Int i -> string_of_int i
  | Value.Float f ->
      if Float.is_nan f then "(0.0/0.0)"
      else if f = Float.infinity then "(1.0/0.0)"
      else if f = Float.neg_infinity then "(0.0-1.0/0.0)"
      else Printf.sprintf "%.17g" f
  | Value.Str s -> "'" ^ s ^ "'"
  | Value.Bool b -> if b then "1" else "0"
  | Value.Null -> "0"

let expect_dml_ok lk (resp : Proto.response) =
  match List.assoc_opt "affected" resp.Proto.fields with
  | Some _ -> ()
  | None ->
      raise
        (Err
           (Svc.Exec_error
              (Printf.sprintf "shard %d: DML route returned no affected count"
                 lk.lk_id)))

(* Fan one INSERT out: each VALUES row goes to exactly the shard that
   owns it (the mirror-identical coerced tuple decides), re-rendered as
   a per-shard INSERT with round-trip literals. *)
let route_insert t ~deadline table values =
  match Storage.Catalog.find_table t.co_mirror table with
  | None -> ()
  | Some info ->
      let cols = Schema.columns info.Storage.Catalog.tb_schema in
      let n = Array.length t.co_links in
      let buckets = Array.make n [] in
      List.iter
        (fun row ->
          let tu =
            Array.of_list
              (List.map2
                 (fun (c : Schema.column) e -> Sql.constant_value c.Schema.dtype e)
                 cols row)
          in
          let s =
            Partition.assign t.co_part ~table info.Storage.Catalog.tb_schema tu
          in
          let rendered =
            "("
            ^ String.concat ", "
                (List.map render_value (Array.to_list tu))
            ^ ")"
          in
          buckets.(s) <- rendered :: buckets.(s))
        values;
      Array.iteri
        (fun s rows ->
          if rows <> [] then begin
            let lk = t.co_links.(s) in
            push_deadline lk ~deadline;
            let sql =
              Printf.sprintf "INSERT INTO %s VALUES %s" table
                (String.concat ", " (List.rev rows))
            in
            expect_dml_ok lk (rpc lk ("QUERY " ^ sql))
          end)
        buckets

let broadcast_dml t ~deadline sql =
  Array.iter
    (fun lk ->
      push_deadline lk ~deadline;
      expect_dml_ok lk (rpc lk ("QUERY " ^ sql)))
    t.co_links

let run_dml t ses ?timeout_s stmt sql ~start =
  (* Mirror first: it is authoritative for the affected count, the
     statistics refresh and the epoch bump that staleness checks see. *)
  match Svc.query ses.ss_sv ?timeout_s sql with
  | Error e -> Error e
  | Ok r ->
      let deadline =
        Unix.gettimeofday ()
        +. Option.value timeout_s
             ~default:
               (Option.value ses.ss_timeout
                  ~default:ses.ss_t.co_config.Svc.default_timeout_s)
      in
      with_lock t (fun () ->
          (match stmt with
          | Ast.Insert { table; values } -> route_insert t ~deadline table values
          | Ast.Delete _ | Ast.Update _ -> broadcast_dml t ~deadline sql
          | Ast.Select _ -> assert false);
          Ok
            {
              columns = [];
              rows = [];
              scores = [];
              affected = r.Svc.affected;
              scattered = false;
              depths = [||];
              latency_s = Unix.gettimeofday () -. start;
            })

(* ------------------------------------------------------------------ *)
(* Public API.                                                         *)

let create ?(config = Svc.default_config) ~mirror ~part ~endpoints () =
  {
    co_mirror = mirror;
    co_local = Svc.create ~config mirror;
    co_config = config;
    co_lock =
      Rkutil.Latch.create ~name:"shard.coordinator" ~rank:10
        ~cls:Rkutil.Latch.Long ();
    co_part = part;
    co_links =
      Array.of_list
        (List.mapi
           (fun i ep -> { lk_id = i; lk_endpoint = ep; lk_client = None })
           endpoints);
    co_epoch = 0;
    co_gen = 0;
    co_reshard = None;
    co_scatters = Hashtbl.create 16;
  }

let set_reshard t f = t.co_reshard <- Some f

let reconfigure t ~part ~endpoints =
  with_lock t (fun () ->
      Array.iter drop_client t.co_links;
      t.co_part <- part;
      t.co_links <-
        Array.of_list
          (List.mapi
             (fun i ep -> { lk_id = i; lk_endpoint = ep; lk_client = None })
             endpoints);
      t.co_epoch <- t.co_epoch + 1;
      Hashtbl.reset t.co_scatters)

let shutdown t =
  with_lock t (fun () -> Array.iter drop_client t.co_links);
  Svc.shutdown t.co_local

let mirror t = t.co_mirror
let local t = t.co_local
let part t = t.co_part
let part_epoch t = t.co_epoch

let endpoints t =
  Array.to_list (Array.map (fun lk -> lk.lk_endpoint) t.co_links)

let open_session t =
  {
    ss_t = t;
    ss_sv = Svc.open_session t.co_local;
    ss_tpls = Hashtbl.create 8;
    ss_gcs = Hashtbl.create 8;
    ss_timeout = None;
  }

let drop_gcursor ses name =
  match Hashtbl.find_opt ses.ss_gcs name with
  | None -> false
  | Some gc ->
      with_lock ses.ss_t (fun () -> close_sources gc.gc_srcs);
      Hashtbl.remove ses.ss_gcs name;
      true

let close_session ses =
  Hashtbl.iter
    (fun _ gc ->
      try with_lock ses.ss_t (fun () -> close_sources gc.gc_srcs)
      with _ -> ())
    ses.ss_gcs;
  Hashtbl.reset ses.ss_gcs;
  Svc.close_session ses.ss_sv

let set_timeout ses timeout_s =
  ses.ss_timeout <- timeout_s;
  Svc.set_timeout ses.ss_sv timeout_s

let session_stats ses = Svc.session_stats ses.ss_sv

let deadline_of ses timeout_s =
  Unix.gettimeofday ()
  +. Option.value timeout_s
       ~default:
         (Option.value ses.ss_timeout
            ~default:ses.ss_t.co_config.Svc.default_timeout_s)

let guard f =
  let r = try f () with Err e -> Error e in
  (* Every public entry point releases everything it took. *)
  Rkutil.Latch.quiesce "coordinator.entry";
  r

let service_reply ~start (r : Svc.reply) =
  {
    columns = r.Svc.columns;
    rows = r.Svc.rows;
    scores = r.Svc.scores;
    affected = r.Svc.affected;
    scattered = false;
    depths = [||];
    latency_s = Unix.gettimeofday () -. start;
  }

let query ses ?timeout_s ?k sql =
  let t = ses.ss_t in
  let start = Unix.gettimeofday () in
  let fallback () =
    Result.map (service_reply ~start) (Svc.query ses.ss_sv ?timeout_s ?k sql)
  in
  match Sqlfront.Parser.parse_statement_result sql with
  | Ok ((Ast.Insert _ | Ast.Delete _ | Ast.Update _) as stmt) ->
      guard (fun () -> run_dml t ses ?timeout_s stmt sql ~start)
  | Ok (Ast.Select _) | Error _ -> (
      match Sql.template_of_sql sql with
      | Error _ -> fallback ()
      | Ok tpl -> (
          match scatter_of t tpl ~k with
          | None -> fallback ()
          | Some sc ->
              guard (fun () ->
                  let deadline = deadline_of ses timeout_s in
                  match sc.sc_window with
                  | Some (lo, hi) ->
                      if k <> None then fallback ()
                      else Ok (run_window t sc ~lo ~hi ~deadline ~start)
                  | None -> (
                      let k_eff =
                        match k with Some k -> Some k | None -> tpl.Sql.tpl_inline_k
                      in
                      match k_eff with
                      | Some k when k >= 1 ->
                          Ok
                            (run_topk t ses sc ~cursor_name:None ~k ~deadline
                               ~start)
                      | _ -> fallback ()))))

let prepare ses ~name sql =
  match Svc.prepare ses.ss_sv ~name sql with
  | Error e -> Error e
  | Ok tpl ->
      Hashtbl.replace ses.ss_tpls name tpl;
      Ok tpl

let execute_prepared ses ?timeout_s ?k name =
  let t = ses.ss_t in
  let start = Unix.gettimeofday () in
  let fallback () =
    Result.map
      (service_reply ~start)
      (Svc.execute_prepared ses.ss_sv ?timeout_s ?k name)
  in
  match Hashtbl.find_opt ses.ss_tpls name with
  | None -> Error (Svc.Unknown_prepared name)
  | Some tpl -> (
      match scatter_of t tpl ~k with
      | None -> fallback ()
      | Some sc ->
          guard (fun () ->
              let deadline = deadline_of ses timeout_s in
              match sc.sc_window with
              | Some (lo, hi) ->
                  if k <> None then fallback ()
                  else begin
                    ignore (drop_gcursor ses name);
                    Ok (run_window t sc ~lo ~hi ~deadline ~start)
                  end
              | None -> (
                  let k_eff =
                    match k with Some k -> Some k | None -> tpl.Sql.tpl_inline_k
                  in
                  match k_eff with
                  | Some k when k >= 1 ->
                      Ok
                        (run_topk t ses sc ~cursor_name:(Some name) ~k ~deadline
                           ~start)
                  | _ -> fallback ())))

let fetch ses ?timeout_s ~name n =
  let t = ses.ss_t in
  let start = Unix.gettimeofday () in
  match Hashtbl.find_opt ses.ss_gcs name with
  | None ->
      Result.map
        (service_reply ~start)
        (Svc.fetch ses.ss_sv ?timeout_s ~name n)
  | Some gc ->
      if n < 1 then Error (Svc.Bind_error "FETCH count must be >= 1")
      else if
        gc.gc_epoch <> t.co_epoch
        || gc.gc_stats
           <> Storage.Catalog.epoch_of_tables t.co_mirror gc.gc_sc.sc_tables
      then begin
        ignore (drop_gcursor ses name);
        Error (Svc.Cursor_stale name)
      end
      else
        guard (fun () ->
            let deadline = deadline_of ses timeout_s in
            with_lock t (fun () ->
                let sc = gc.gc_sc in
                let rows = gather_pull sc gc.gc_srcs ~deadline n in
                let ans =
                  Sql.project_rows sc.sc_prep sc.sc_schema rows
                  |> bump_ranks sc.sc_prep gc.gc_pos
                in
                gc.gc_pos <- gc.gc_pos + List.length rows;
                Ok
                  (answer_reply ~scattered:true ~depths:(depths_of gc.gc_srcs)
                     ~start ans)))

let close_cursor ses name =
  if drop_gcursor ses name then Ok () else Svc.close_cursor ses.ss_sv name

let rank_probe ses ?dense ~table ~column value =
  Svc.rank_probe ses.ss_sv ?dense ~table ~column value

(* ------------------------------------------------------------------ *)
(* EXPLAIN / ANALYZE for distributed plans.                            *)

let gather_plan t sc =
  let order = Core.Plan.order_of sc.sc_prep.Sql.planned.Core.Optimizer.plan in
  let score = Option.map (fun (o : Core.Plan.order) -> o.Core.Plan.expr) order in
  let inputs =
    Array.to_list
      (Array.map
         (fun lk ->
           Core.Plan.Remote_scan
             {
               shard = lk.lk_id;
               endpoint = endpoint_string lk.lk_endpoint;
               sql = sc.sc_push;
               tables = sc.sc_tables;
               score;
               k_bound = sc.sc_k;
             })
         t.co_links)
  in
  Core.Plan.Gather_merge
    {
      inputs;
      score;
      k = (match sc.sc_window with None -> sc.sc_k | Some _ -> None);
    }

let partitioning_line t =
  let scheme_str (tbl, scheme) =
    match scheme with
    | Partition.Hash c -> Printf.sprintf "%s: hash(%s)" tbl c
    | Partition.Score_range { column; _ } -> Printf.sprintf "%s: range(%s)" tbl column
  in
  Printf.sprintf "partitioning: %d shards, epoch %d, %s"
    (Array.length t.co_links) t.co_epoch
    (String.concat ", " (List.map scheme_str t.co_part.Partition.schemes))

let explain ses sql =
  let t = ses.ss_t in
  match Sql.template_of_sql sql with
  | Error _ -> Svc.explain ses.ss_sv sql
  | Ok tpl -> (
      match scatter_of t tpl ~k:None with
      | None -> Svc.explain ses.ss_sv sql
      | Some sc ->
          Ok
            (Format.asprintf "%a@.%s" Core.Plan.pp (gather_plan t sc)
               (partitioning_line t)))

let analyze ses ?k sql =
  let t = ses.ss_t in
  let fallback () =
    Result.map_error
      (fun e -> Svc.Exec_error e)
      (Sql.analyze t.co_mirror sql)
  in
  match Sql.template_of_sql sql with
  | Error _ -> fallback ()
  | Ok tpl -> (
      match scatter_of t tpl ~k with
      | None -> fallback ()
      | Some sc -> (
          match query ses ?k sql with
          | Error e -> Error e
          | Ok r ->
              let header =
                Format.asprintf "%a" Core.Plan.pp (gather_plan t sc)
              in
              let per_shard =
                List.mapi
                  (fun i lk ->
                    Printf.sprintf
                      "  shard %d @ %s: k'=%s observed_depth=%d" i
                      (endpoint_string lk.lk_endpoint)
                      (match sc.sc_k with
                      | Some b -> string_of_int b
                      | None -> "-")
                      (if i < Array.length r.depths then r.depths.(i) else 0))
                  (Array.to_list t.co_links)
              in
              Ok
                (String.concat "\n"
                   ((header :: partitioning_line t :: "gather-remote:"
                     :: per_shard)
                   @ [
                       Printf.sprintf "  merged rows=%d total_depth=%d"
                         (List.length r.rows)
                         (Array.fold_left ( + ) 0 r.depths);
                     ]))))

(* ------------------------------------------------------------------ *)
(* Cluster admin.                                                      *)

let stats t =
  let base = Svc.stats t.co_local in
  let cluster =
    with_lock t (fun () ->
        let sums = Hashtbl.create 16 in
        let order = ref [] in
        Array.iter
          (fun lk ->
            match rpc_raw lk "STATS" with
            | resp when resp.Proto.ok ->
                List.iter
                  (fun line ->
                    match String.index_opt line '=' with
                    | None -> ()
                    | Some i -> (
                        let key = String.sub line 0 i in
                        let v =
                          String.sub line (i + 1) (String.length line - i - 1)
                        in
                        match int_of_string_opt v with
                        | None -> ()
                        | Some n ->
                            if not (Hashtbl.mem sums key) then
                              order := key :: !order;
                            Hashtbl.replace sums key
                              (n + Option.value (Hashtbl.find_opt sums key) ~default:0)))
                  resp.Proto.payload
            | _ -> ()
            | exception Err _ -> ())
          t.co_links;
        List.rev_map
          (fun key ->
            ("cluster_" ^ key, string_of_int (Hashtbl.find sums key)))
          !order)
  in
  base
  @ [
      ("shards", string_of_int (Array.length t.co_links));
      ("part_epoch", string_of_int t.co_epoch);
    ]
  @ cluster

let shard_list t =
  let n = Array.length t.co_links in
  let counts = Array.make n [] in
  List.iter
    (fun (info : Storage.Catalog.table_info) ->
      let table = info.Storage.Catalog.tb_name in
      let per = Array.make n 0 in
      List.iter
        (fun tu ->
          let s =
            Partition.assign t.co_part ~table info.Storage.Catalog.tb_schema tu
          in
          per.(s) <- per.(s) + 1)
        (Storage.Heap_file.to_list info.Storage.Catalog.tb_heap);
      Array.iteri
        (fun s c -> counts.(s) <- (table, c) :: counts.(s))
        per)
    (Storage.Catalog.tables t.co_mirror);
  Array.to_list
    (Array.mapi
       (fun i lk ->
         Printf.sprintf "shard %d %s %s" i
           (endpoint_string lk.lk_endpoint)
           (String.concat " "
              (List.rev_map
                 (fun (tbl, c) -> Printf.sprintf "%s=%d" tbl c)
                 counts.(i))))
       t.co_links)

let shard_add t path =
  match t.co_reshard with
  | None -> Error "no reshard hook installed (not an in-process cluster)"
  | Some f -> f t path
