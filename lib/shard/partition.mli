(** Table partitioning for the sharded coordinator.

    Every table is assigned to exactly one scheme; a row's shard is a pure
    function of the row, the scheme and the shard count, so the
    coordinator can route single-row DML without consulting the shards.

    [Hash] is the default: rows spread by a stable hash of the partition
    column, so a top-k over any score expression draws its answers
    uniformly from all shards and a per-shard bound of [k' = k] is both
    sound and tight (every shard could in principle hold all k winners).
    [Score_range] splits a score column into contiguous ranges — the
    best-range shard usually answers alone, but the bound stays [k' = k]
    because residual filters can empty any prefix of a range. *)

type scheme =
  | Hash of string  (** Partition column (stable hash mod shard count). *)
  | Score_range of { column : string; cuts : float array }
      (** [cuts] are ascending boundaries; shard [i] holds values in
          [(cuts.(i-1), cuts.(i)]], shard 0 the bottom, shard [n-1] the
          top. NaNs go to shard 0. *)

type t = {
  n : int;  (** Shard count (>= 1). *)
  schemes : (string * scheme) list;  (** Per-table scheme. *)
}

val scheme_of : t -> string -> scheme option

val partition_column : scheme -> string

val hash_value : Relalg.Value.t -> int
(** Stable across processes (hashes the persist encoding). *)

val assign : t -> table:string -> Relalg.Schema.t -> Relalg.Tuple.t -> int
(** Shard index of one row. Tables without a scheme go to shard 0
    (unpartitioned singleton tables stay consistent that way). *)

val derive : ?spec:string -> n:int -> Storage.Catalog.t -> t
(** Build a partitioning for every table of the catalog. [spec] is the
    CLI string: ["hash"] (default — hash on the table's [key] column when
    present, else its first column), ["hash:<col>"], or ["range:<col>"]
    (equi-depth cuts computed from the current data; tables without the
    column fall back to hash). *)

val split : t -> Storage.Catalog.t -> Storage.Catalog.t array
(** Materialize the shard catalogs: each table's rows fanned out by
    {!assign}, schemas and secondary indexes replicated on every shard. *)

val co_partitioned :
  t -> tables:string list -> joins:(string * string * string * string) list ->
  bool
(** Can a multi-table ranked query be answered shard-locally? True when
    every table is [Hash]-partitioned and the equi-join conjuncts
    [(t1, c1, t2, c2)] connect all partition columns into one equivalence
    class — co-located rows then join only within their shard. Single
    tables are trivially co-partitioned. *)

val describe : t -> string
(** One-line human summary of the partitioning ("3 shards, hash(key)"). *)
