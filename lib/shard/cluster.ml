type t = {
  cl_config : Server.Service.config;
  cl_spec : string option;
  cl_dir : string;
  cl_mirror : Storage.Catalog.t;
  mutable cl_coord : Coordinator.t option;
  mutable cl_listeners : Server.Listener.t list;
  mutable cl_paths : string list;
  mutable cl_n : int;
  mutable cl_gen : int;  (* Socket-name generation counter. *)
  mutable cl_stopped : bool;
}

let fresh_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec go i =
    let d =
      Filename.concat base
        (Printf.sprintf "rankopt_cluster_%d_%d" (Unix.getpid ()) i)
    in
    match Unix.mkdir d 0o700 with
    | () -> d
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (i + 1)
  in
  go 0

(* Spawn one listener per partition slice. Generation-suffixed socket
   names keep an old and a new shard set from colliding on a path during
   a repartition. *)
let spawn_shards cl part =
  let slices = Partition.split part cl.cl_mirror in
  Array.to_list
    (Array.mapi
       (fun i cat ->
         cl.cl_gen <- cl.cl_gen + 1;
         let path =
           Filename.concat cl.cl_dir
             (Printf.sprintf "shard%d_g%d.sock" i cl.cl_gen)
         in
         let listener =
           Server.Listener.start ~config:cl.cl_config
             (Server.Listener.Unix_socket path) cat
         in
         (listener, path))
       slices)

let endpoints_of paths = List.map (fun p -> Server.Listener.Unix_socket p) paths

let coordinator cl =
  match cl.cl_coord with Some c -> c | None -> invalid_arg "Cluster: stopped"

let add_shard cl (_path : string) =
  if cl.cl_stopped then Error "cluster is stopped"
  else begin
    let n = cl.cl_n + 1 in
    let part = Partition.derive ?spec:cl.cl_spec ~n cl.cl_mirror in
    let spawned = spawn_shards cl part in
    let listeners = List.map fst spawned in
    let paths = List.map snd spawned in
    let old = cl.cl_listeners in
    let old_paths = cl.cl_paths in
    Coordinator.reconfigure (coordinator cl) ~part
      ~endpoints:(endpoints_of paths);
    cl.cl_listeners <- listeners;
    cl.cl_paths <- paths;
    cl.cl_n <- n;
    List.iter (fun l -> try Server.Listener.stop l with _ -> ()) old;
    List.iter (fun p -> try Sys.remove p with _ -> ()) old_paths;
    Ok ()
  end

let start ?(config = Server.Service.default_config) ?spec ?dir ~n catalog =
  let n = max 1 n in
  let dir = match dir with Some d -> d | None -> fresh_dir () in
  let part = Partition.derive ?spec ~n catalog in
  let cl =
    {
      cl_config = config;
      cl_spec = spec;
      cl_dir = dir;
      cl_mirror = catalog;
      cl_coord = None;
      cl_listeners = [];
      cl_paths = [];
      cl_n = n;
      cl_gen = 0;
      cl_stopped = false;
    }
  in
  let spawned = spawn_shards cl part in
  cl.cl_listeners <- List.map fst spawned;
  cl.cl_paths <- List.map snd spawned;
  let coord =
    Coordinator.create ~config ~mirror:catalog ~part
      ~endpoints:(endpoints_of cl.cl_paths) ()
  in
  cl.cl_coord <- Some coord;
  Coordinator.set_reshard coord (fun _ path -> add_shard cl path);
  cl

let n_shards cl = cl.cl_n
let socket_paths cl = cl.cl_paths

let stop cl =
  if not cl.cl_stopped then begin
    cl.cl_stopped <- true;
    (match cl.cl_coord with
    | Some c -> ( try Coordinator.shutdown c with _ -> ())
    | None -> ());
    List.iter
      (fun l -> try Server.Listener.stop l with _ -> ())
      cl.cl_listeners;
    List.iter (fun p -> try Sys.remove p with _ -> ()) cl.cl_paths;
    try Unix.rmdir cl.cl_dir with _ -> ()
  end
