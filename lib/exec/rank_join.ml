open Relalg

type input = {
  stream : Operator.scored;
  key : Tuple.t -> Value.t;
}

type polling = Alternate | Adaptive | Ratio of float

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal

  let hash = Value.hash
end)

(* Max-heap on combined score: invert the comparison. *)
let result_heap () =
  Rkutil.Heap.create ~cmp:(fun (_, s1) (_, s2) -> Float.compare s2 s1)

let stats_of = function
  | Some s ->
      if Exec_stats.inputs s <> 2 then
        invalid_arg "Rank_join: stats record must track exactly 2 inputs";
      s
  | None -> Exec_stats.create 2

let hrjn ?stats ?(polling = Alternate) ~combine ~left ~right () =
  let schema = Schema.concat left.stream.Operator.s_schema right.stream.Operator.s_schema in
  let stats = stats_of stats in
  let hash_l : (Tuple.t * float) list Vtbl.t = Vtbl.create 64 in
  let hash_r : (Tuple.t * float) list Vtbl.t = Vtbl.create 64 in
  let queue = result_heap () in
  let top_l = ref nan and last_l = ref nan in
  let top_r = ref nan and last_r = ref nan in
  let started_l = ref false and started_r = ref false in
  let done_l = ref false and done_r = ref false in
  let turn = ref `L in
  let reset () =
    Vtbl.clear hash_l;
    Vtbl.clear hash_r;
    Rkutil.Heap.clear queue;
    top_l := nan;
    last_l := nan;
    top_r := nan;
    last_r := nan;
    started_l := false;
    started_r := false;
    done_l := false;
    done_r := false;
    turn := `L;
    Exec_stats.reset stats
  in
  (* Upper bound on the score of any join result not yet in the queue.
     Before both inputs have produced a tuple the bound is +inf; once an
     input is exhausted, its side of the bound stops tracking "+inf before
     first tuple" and collapses to -inf (no future tuple can arrive). *)
  let threshold () =
    if not (!started_l && !started_r) then
      if !done_l || !done_r then neg_infinity (* an input was empty *)
      else infinity
    else begin
      let via_l = if !done_l then neg_infinity else combine !last_l !top_r in
      let via_r = if !done_r then neg_infinity else combine !top_l !last_r in
      Float.max via_l via_r
    end
  in
  (* Once an input is exhausted with nothing buffered (it was empty), no
     join result beyond what is already queued can ever be produced, so
     polling the live side any further is pure over-read. *)
  let no_future_results () =
    (!done_l && Vtbl.length hash_l = 0) || (!done_r && Vtbl.length hash_r = 0)
  in
  let add_to tbl key entry =
    let prev = Option.value ~default:[] (Vtbl.find_opt tbl key) in
    Vtbl.replace tbl key (entry :: prev)
  in
  let ingest side =
    match side with
    | `L -> (
        match left.stream.Operator.s_next () with
        | None -> done_l := true
        | Some (tu, score) ->
            Exec_stats.bump_depth stats 0;
            if not !started_l then top_l := score;
            started_l := true;
            last_l := score;
            let k = left.key tu in
            add_to hash_l k (tu, score);
            (match Vtbl.find_opt hash_r k with
            | None -> ()
            | Some partners ->
                List.iter
                  (fun (rt, rscore) ->
                    Rkutil.Heap.push queue
                      (Tuple.concat tu rt, combine score rscore))
                  partners);
            Exec_stats.note_buffer stats (Rkutil.Heap.length queue))
    | `R -> (
        match right.stream.Operator.s_next () with
        | None -> done_r := true
        | Some (tu, score) ->
            Exec_stats.bump_depth stats 1;
            if not !started_r then top_r := score;
            started_r := true;
            last_r := score;
            let k = right.key tu in
            add_to hash_r k (tu, score);
            (match Vtbl.find_opt hash_l k with
            | None -> ()
            | Some partners ->
                List.iter
                  (fun (lt, lscore) ->
                    Rkutil.Heap.push queue
                      (Tuple.concat lt tu, combine lscore score))
                  partners);
            Exec_stats.note_buffer stats (Rkutil.Heap.length queue))
  in
  let pick_side () =
    match !done_l, !done_r with
    | true, true -> None
    | true, false -> Some `R
    | false, true -> Some `L
    | false, false -> (
        match polling with
        | Alternate ->
            let side = !turn in
            turn := (match side with `L -> `R | `R -> `L);
            Some side
        | Adaptive ->
            (* Poll the side whose last score is higher: it contributes the
               larger term to the threshold, so draining it tightens the
               bound fastest. *)
            if not !started_l then Some `L
            else if not !started_r then Some `R
            else if !last_l >= !last_r then Some `L
            else Some `R
        | Ratio target ->
            if not !started_l then Some `L
            else if not !started_r then Some `R
            else begin
              let current =
                float_of_int (Exec_stats.left_depth stats)
                /. float_of_int (max 1 (Exec_stats.right_depth stats))
              in
              if current <= target then Some `L else Some `R
            end)
  in
  let rec next () =
    let t = threshold () in
    let finished = (!done_l && !done_r) || no_future_results () in
    match Rkutil.Heap.peek queue with
    | Some (_, s) when s >= t || finished ->
        let tu, s = Rkutil.Heap.pop_exn queue in
        Exec_stats.bump_emitted stats;
        Some (tu, s)
    | _ ->
        if finished then None
        else (
          match pick_side () with
          | None -> (
              match Rkutil.Heap.pop queue with
              | Some (tu, s) ->
                  Exec_stats.bump_emitted stats;
                  Some (tu, s)
              | None -> None)
          | Some side ->
              ingest side;
              next ())
  in
  let stream =
    {
      Operator.s_schema = schema;
      s_open =
        (fun () ->
          left.stream.Operator.s_open ();
          right.stream.Operator.s_open ();
          reset ());
      s_next = next;
      s_close =
        (fun () ->
          left.stream.Operator.s_close ();
          right.stream.Operator.s_close ())
    }
  in
  (stream, stats)

let nrjn ?stats ~combine ~pred ~outer ~inner ~inner_score () =
  let schema = Schema.concat outer.Operator.s_schema inner.Operator.schema in
  let test = Expr.compile_bool schema pred in
  let stats = stats_of stats in
  let queue = result_heap () in
  let top_inner = ref nan in
  let inner_count = ref 0 in
  let have_inner_top = ref false in
  let last_outer = ref nan in
  let started_outer = ref false in
  let done_outer = ref false in
  (* Set after a full inner scan returns zero tuples: the inner is empty, so
     no join result can ever exist and the "+inf until the inner's top score
     is known" bound must collapse instead of draining the whole outer. *)
  let inner_empty = ref false in
  let reset () =
    Rkutil.Heap.clear queue;
    top_inner := nan;
    have_inner_top := false;
    inner_count := 0;
    last_outer := nan;
    started_outer := false;
    done_outer := false;
    inner_empty := false;
    Exec_stats.reset stats
  in
  let threshold () =
    if !done_outer || !inner_empty then neg_infinity
    else if not (!started_outer && !have_inner_top) then infinity
    else combine !last_outer !top_inner
  in
  (* Join one outer tuple against the whole inner input. *)
  let process_outer () =
    match outer.Operator.s_next () with
    | None -> done_outer := true
    | Some (ot, oscore) ->
        Exec_stats.bump_depth stats 0;
        started_outer := true;
        last_outer := oscore;
        inner.Operator.open_ ();
        let scanned = ref 0 in
        let rec loop () =
          match inner.Operator.next () with
          | None -> ()
          | Some it ->
              incr scanned;
              let iscore = inner_score it in
              if not !have_inner_top then begin
                top_inner := iscore;
                have_inner_top := true
              end
              else if iscore > !top_inner then top_inner := iscore;
              let joined = Tuple.concat ot it in
              if test joined then
                Rkutil.Heap.push queue (joined, combine oscore iscore);
              loop ()
        in
        loop ();
        if !scanned = 0 then inner_empty := true;
        if !scanned > !inner_count then inner_count := !scanned;
        Exec_stats.note_depth stats 1 !inner_count;
        Exec_stats.note_buffer stats (Rkutil.Heap.length queue)
  in
  let rec next () =
    let t = threshold () in
    let finished = !done_outer || !inner_empty in
    match Rkutil.Heap.peek queue with
    | Some (_, s) when s >= t || finished ->
        let tu, s = Rkutil.Heap.pop_exn queue in
        Exec_stats.bump_emitted stats;
        Some (tu, s)
    | _ ->
        if finished then
          (match Rkutil.Heap.pop queue with
          | Some (tu, s) ->
              Exec_stats.bump_emitted stats;
              Some (tu, s)
          | None -> None)
        else begin
          process_outer ();
          next ()
        end
  in
  let stream =
    {
      Operator.s_schema = schema;
      s_open =
        (fun () ->
          outer.Operator.s_open ();
          reset ());
      s_next = next;
      s_close =
        (fun () ->
          outer.Operator.s_close ();
          inner.Operator.close ())
    }
  in
  (stream, stats)
