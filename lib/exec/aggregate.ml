open Relalg

type agg_fn =
  | Count
  | Sum of Expr.t
  | Min of Expr.t
  | Max of Expr.t
  | Avg of Expr.t

type spec = {
  fn : agg_fn;
  name : string;
}

type acc = {
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

let fresh_acc () = { count = 0; sum = 0.0; min = infinity; max = neg_infinity }

let update acc v =
  acc.count <- acc.count + 1;
  acc.sum <- acc.sum +. v;
  if v < acc.min then acc.min <- v;
  if v > acc.max then acc.max <- v

let finalize fn acc =
  match fn with
  | Count -> Value.Int acc.count
  | Sum _ -> Value.Float acc.sum
  | Min _ -> if acc.count = 0 then Value.Null else Value.Float acc.min
  | Max _ -> if acc.count = 0 then Value.Null else Value.Float acc.max
  | Avg _ ->
      if acc.count = 0 then Value.Null
      else Value.Float (acc.sum /. float_of_int acc.count)

let agg_column spec =
  let dtype = match spec.fn with Count -> Value.Tint | _ -> Value.Tfloat in
  Schema.column spec.name dtype

module Ktbl = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal

  let hash = Tuple.hash
end)

let hash_group_by ?stats ~group_by ~aggregates (input : Operator.t) : Operator.t =
  let stats = match stats with Some s -> s | None -> Exec_stats.create 1 in
  let schema =
    Schema.of_columns
      (List.map snd group_by @ List.map agg_column aggregates)
  in
  let keyfns = List.map (fun (e, _) -> Expr.compile input.schema e) group_by in
  let argfns =
    List.map
      (fun spec ->
        match spec.fn with
        | Count -> fun _ -> 1.0
        | Sum e | Min e | Max e | Avg e -> Expr.compile_float input.schema e)
      aggregates
  in
  let results = ref [] in
  let compute () =
    let groups : acc array Ktbl.t = Ktbl.create 64 in
    input.open_ ();
    let rec pull () =
      match input.next () with
      | None -> ()
      | Some tu ->
          Exec_stats.bump_depth stats 0;
          let key = Array.of_list (List.map (fun f -> f tu) keyfns) in
          let accs =
            match Ktbl.find_opt groups key with
            | Some a -> a
            | None ->
                let a = Array.init (List.length aggregates) (fun _ -> fresh_acc ()) in
                Ktbl.add groups key a;
                a
          in
          List.iteri (fun i f -> update accs.(i) (f tu)) argfns;
          Exec_stats.note_buffer stats (Ktbl.length groups);
          pull ()
    in
    pull ();
    input.close ();
    (* Global aggregation over an empty input still yields one row. *)
    if group_by = [] && Ktbl.length groups = 0 then
      Ktbl.add groups [||] (Array.init (List.length aggregates) (fun _ -> fresh_acc ()));
    results :=
      Ktbl.fold
        (fun key accs out ->
          let aggs =
            List.mapi (fun i spec -> finalize spec.fn accs.(i)) aggregates
          in
          Tuple.concat key (Array.of_list aggs) :: out)
        groups []
  in
  {
    schema;
    open_ =
      (fun () ->
        Exec_stats.reset stats;
        compute ());
    next =
      (fun () ->
        match !results with
        | [] -> None
        | tu :: rest ->
            results := rest;
            Exec_stats.bump_emitted stats;
            Some tu);
    close = (fun () -> results := []);
  }
