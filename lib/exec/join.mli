(** Traditional (non-ranking) join operators.

    All joins emit the concatenation of left and right tuples. Equi-joins
    take one key expression per side, compiled against that side's schema.
    These are the join choices available to the optimizer next to the
    rank-join operators, and the substrate of the join-then-sort baseline.

    Each constructor accepts an optional [stats] record (see {!Exec_stats},
    reset on [open_]): input 0 counts tuples pulled from the left/outer
    input, input 1 from the right/inner input, [emitted] counts join
    results, and [buffer_max] tracks the largest in-memory structure (left
    block, hash table, probe buffer, or right merge group). *)

open Relalg

val nested_loops :
  ?stats:Exec_stats.t ->
  ?block_size:int ->
  pred:Expr.t ->
  Operator.t ->
  Operator.t ->
  Operator.t
(** Block nested loops under an arbitrary predicate over the concatenated
    schema. The right input is re-opened once per left block
    (default block size 1000 tuples). *)

val index_nested_loops :
  ?stats:Exec_stats.t ->
  ?residual:Expr.t ->
  left_key:Expr.t ->
  right_schema:Schema.t ->
  lookup:(Value.t -> Tuple.t list) ->
  Operator.t ->
  Operator.t
(** For each left tuple, probe the right table's index with the left key
    value ([lookup] is typically [Scan.index_probe]); optionally filter by a
    residual predicate. Input 1 of [stats] counts fetched index matches. *)

val hash :
  ?stats:Exec_stats.t ->
  ?residual:Expr.t ->
  left_key:Expr.t ->
  right_key:Expr.t ->
  Operator.t ->
  Operator.t ->
  Operator.t
(** In-memory hash join: builds on the right input at [open_]. *)

val grace_hash :
  ?stats:Exec_stats.t ->
  ?residual:Expr.t ->
  ?partitions:int ->
  left_key:Expr.t ->
  right_key:Expr.t ->
  Sort.budget ->
  Operator.t ->
  Operator.t ->
  Operator.t
(** Memory-adaptive hash join: when the build (right) input fits in the
    budget's [memory_tuples] it behaves exactly like {!hash}; otherwise both
    inputs are hash-partitioned to spill files through the buffer pool
    (charging the I/O) and each partition pair is joined in memory
    (default 8 partitions). Oversized partitions fall back to block nested
    loops within the partition, keeping memory bounded. *)

val sort_merge :
  ?stats:Exec_stats.t ->
  ?residual:Expr.t ->
  left_key:Expr.t ->
  right_key:Expr.t ->
  Sort.budget ->
  Operator.t ->
  Operator.t ->
  Operator.t
(** Sorts both inputs on their keys (external sort) and merges, handling
    duplicate key groups on both sides. [stats] observes the merge step
    (post-sort inputs). *)

val merge_only :
  ?stats:Exec_stats.t ->
  ?residual:Expr.t ->
  left_key:Expr.t ->
  right_key:Expr.t ->
  Operator.t ->
  Operator.t ->
  Operator.t
(** Merge step alone, for inputs already sorted ascending on their keys. *)
