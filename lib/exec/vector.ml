open Relalg

type t = {
  v_schema : Schema.t;
  v_open : unit -> unit;
  v_next : unit -> Batch.t option;
  v_close : unit -> unit;
}

let stats_or stats n = match stats with Some s -> s | None -> Exec_stats.create n

let schema v = v.v_schema

(* Same key-collision behaviour as the tuple-at-a-time hash join: Int 2 and
   Float 2.0 hash and compare equal (join.ml's Vtbl). *)
module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal

  let hash = Value.hash
end)

let to_operator (v : t) : Operator.t =
  let cur = ref None in
  let idx = ref 0 in
  let rec next () =
    match !cur with
    | Some b when !idx < Batch.length b ->
        let tu = Batch.get b !idx in
        incr idx;
        Some tu
    | _ -> (
        match v.v_next () with
        | None ->
            cur := None;
            None
        | Some b ->
            cur := Some b;
            idx := 0;
            next ())
  in
  {
    Operator.schema = v.v_schema;
    open_ =
      (fun () ->
        cur := None;
        idx := 0;
        v.v_open ());
    next;
    close =
      (fun () ->
        cur := None;
        v.v_close ());
  }

let of_operator ?(rows = Batch.default_rows) (op : Operator.t) : t =
  let rows = max 1 rows in
  {
    v_schema = op.Operator.schema;
    v_open = op.Operator.open_;
    v_next =
      (fun () ->
        let acc = ref [] in
        let n = ref 0 in
        let rec pull () =
          if !n < rows then
            match op.Operator.next () with
            | Some tu ->
                acc := tu :: !acc;
                incr n;
                pull ()
            | None -> ()
        in
        pull ();
        if !n = 0 then None else Some (Batch.of_list op.Operator.schema (List.rev !acc)));
    v_close = op.Operator.close;
  }

let heap_scan ?stats (info : Storage.Catalog.table_info) : t =
  let stats = stats_or stats 0 in
  let heap = info.Storage.Catalog.tb_heap in
  let page = ref 0 in
  {
    v_schema = info.Storage.Catalog.tb_schema;
    v_open =
      (fun () ->
        Exec_stats.reset stats;
        page := 0);
    v_next =
      (fun () ->
        let total = Storage.Heap_file.n_pages heap in
        let acc = ref [] in
        let n = ref 0 in
        while !n < Batch.default_rows && !page < total do
          let rows = Storage.Heap_file.page_rows heap !page in
          incr page;
          if Array.length rows > 0 then begin
            acc := rows :: !acc;
            n := !n + Array.length rows
          end
        done;
        if !n = 0 then None
        else begin
          Exec_stats.add_emitted stats !n;
          Some (Batch.of_rows info.Storage.Catalog.tb_schema (Array.concat (List.rev !acc)))
        end);
    v_close = (fun () -> ());
  }

let filter ?stats pred (input : t) : t =
  let stats = stats_or stats 1 in
  let kernel = Batch.pred_kernel input.v_schema pred in
  let rec next () =
    match input.v_next () with
    | None -> None
    | Some b ->
        Exec_stats.add_depth stats 0 (Batch.length b);
        kernel b;
        let kept = Batch.length b in
        if kept = 0 then next ()
        else begin
          Exec_stats.add_emitted stats kept;
          Some b
        end
  in
  {
    v_schema = input.v_schema;
    v_open =
      (fun () ->
        Exec_stats.reset stats;
        input.v_open ());
    v_next = next;
    v_close = input.v_close;
  }

let hash_join ?stats ?residual ~left_key ~right_key (b : Sort.budget) (left : t)
    (right : Operator.t) : t =
  let stats = stats_or stats 2 in
  let schema = Schema.concat left.v_schema right.Operator.schema in
  let lkey = Expr.compile left.v_schema left_key in
  let rkey = Expr.compile right.Operator.schema right_key in
  let test =
    match residual with
    | None -> fun _ -> true
    | Some pred -> Expr.compile_bool schema pred
  in
  let pending = ref [] in
  let compute () =
    Exec_stats.reset stats;
    (* Output batch assembly. *)
    let out = ref [] in
    let fill = ref [] in
    let fill_n = ref 0 in
    let flush () =
      if !fill_n > 0 then begin
        out := Batch.of_rows schema (Array.of_list (List.rev !fill)) :: !out;
        fill := [];
        fill_n := 0
      end
    in
    let emit tu =
      fill := tu :: !fill;
      incr fill_n;
      if !fill_n >= Batch.default_rows then flush ()
    in
    (* Probe whether the build side fits: pull up to memory_tuples + 1,
       exactly like the tuple-at-a-time grace hash join. *)
    right.Operator.open_ ();
    let buffered = ref [] in
    let count = ref 0 in
    let overflow = ref false in
    let rec probe () =
      if !count > b.Sort.memory_tuples then overflow := true
      else
        match right.Operator.next () with
        | Some tu ->
            Exec_stats.bump_depth stats 1;
            buffered := tu :: !buffered;
            incr count;
            probe ()
        | None -> ()
    in
    probe ();
    Exec_stats.note_buffer stats !count;
    if not !overflow then begin
      right.Operator.close ();
      (* Fits: vectorized build + probe. The table is built by consing in
         right-arrival order, so each chain is reverse-arrival — the probe
         order the serial join produces per left tuple. *)
      let table : Tuple.t list Vtbl.t = Vtbl.create 256 in
      List.iter
        (fun rt ->
          let k = rkey rt in
          if not (Value.is_null k) then begin
            let prev = Option.value ~default:[] (Vtbl.find_opt table k) in
            Vtbl.replace table k (rt :: prev)
          end)
        (List.rev !buffered);
      left.v_open ();
      let rec drain () =
        match left.v_next () with
        | None -> ()
        | Some bt ->
            Exec_stats.add_depth stats 0 (Batch.length bt);
            Batch.iter
              (fun lt ->
                let k = lkey lt in
                if not (Value.is_null k) then
                  List.iter
                    (fun rt ->
                      let joined = Tuple.concat lt rt in
                      if test joined then emit joined)
                    (Option.value ~default:[] (Vtbl.find_opt table k)))
              bt;
            drain ()
      in
      drain ();
      left.v_close ()
    end
    else begin
      (* Spill: hand the already-buffered prefix plus the rest of the right
         stream back to the tuple-at-a-time grace hash join, which owns the
         partitioning machinery. Depth/emitted stay on [stats] (the
         delegate gets a throwaway record); the buffered prefix was counted
         during the probe above, so the replay is left untapped. *)
      let replay = Operator.of_list right.Operator.schema (List.rev !buffered) in
      let right_rest =
        {
          Operator.schema = right.Operator.schema;
          open_ = (fun () -> replay.Operator.open_ ());
          next =
            (fun () ->
              match replay.Operator.next () with
              | Some tu -> Some tu
              | None -> (
                  match right.Operator.next () with
                  | Some tu ->
                      Exec_stats.bump_depth stats 1;
                      Some tu
                  | None -> None));
          close = (fun () -> right.Operator.close ());
        }
      in
      let left_op = to_operator left in
      let left_tapped =
        {
          left_op with
          Operator.next =
            (fun () ->
              match left_op.Operator.next () with
              | Some tu ->
                  Exec_stats.bump_depth stats 0;
                  Some tu
              | None -> None);
        }
      in
      let gop =
        Join.grace_hash ?residual ~stats:(Exec_stats.create 2) ~left_key ~right_key b
          left_tapped right_rest
      in
      gop.Operator.open_ ();
      let rec drain () =
        match gop.Operator.next () with
        | Some tu ->
            emit tu;
            drain ()
        | None -> ()
      in
      drain ();
      gop.Operator.close ()
    end;
    flush ();
    pending := List.rev !out
  in
  {
    v_schema = schema;
    v_open = (fun () -> compute ());
    v_next =
      (fun () ->
        match !pending with
        | [] -> None
        | bt :: rest ->
            pending := rest;
            Exec_stats.add_emitted stats (Batch.length bt);
            Some bt);
    v_close = (fun () -> pending := []);
  }

let fused_top_k ?sort_stats ?topk_stats (b : Sort.budget) ~desc ~k expr (input : t) :
    Operator.t =
  let sort_stats = stats_or sort_stats 1 in
  let topk_stats = stats_or topk_stats 1 in
  let score = Batch.score_kernel input.v_schema expr in
  let cap = max k 0 in
  let results = ref [] in
  let compute () =
    Exec_stats.reset sort_stats;
    Exec_stats.reset topk_stats;
    (* Bounded binary heap over (score, arrival-seq): the root is the
       weakest keeper. Under Float.compare NaN is the smallest score, so a
       descending sort puts NaN last (weakest) and an ascending one puts it
       first (strongest) — exactly the serial sort's comparator. Ties break
       on arrival order, reproducing the in-memory sort's stability. *)
    let hs = Array.make (max cap 1) 0.0 in
    let hq = Array.make (max cap 1) 0 in
    let ht = Array.make (max cap 1) None in
    let size = ref 0 in
    (* [weaker s1 q1 s2 q2]: candidate 1 strictly weaker (sorts later). *)
    let weaker s1 q1 s2 q2 =
      let c = Float.compare s1 s2 in
      if c <> 0 then if desc then c < 0 else c > 0 else q1 > q2
    in
    let wi i j = weaker hs.(i) hq.(i) hs.(j) hq.(j) in
    let swap i j =
      let s = hs.(i) and q = hq.(i) and t = ht.(i) in
      hs.(i) <- hs.(j);
      hq.(i) <- hq.(j);
      ht.(i) <- ht.(j);
      hs.(j) <- s;
      hq.(j) <- q;
      ht.(j) <- t
    in
    let rec sift_up i =
      if i > 0 then begin
        let p = (i - 1) / 2 in
        if wi i p then begin
          swap i p;
          sift_up p
        end
      end
    in
    let rec sift_down i =
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      let m = ref i in
      if l < !size && wi l !m then m := l;
      if r < !size && wi r !m then m := r;
      if !m <> i then begin
        swap i !m;
        sift_down !m
      end
    in
    let seq = ref 0 in
    let n = ref 0 in
    input.v_open ();
    let rec drain () =
      match input.v_next () with
      | None -> ()
      | Some bt ->
          let bn = Batch.length bt in
          Exec_stats.add_depth sort_stats 0 bn;
          n := !n + bn;
          let scores = score bt in
          for j = 0 to bn - 1 do
            let s = scores.(j) in
            let q = !seq in
            incr seq;
            if !size < cap then begin
              hs.(!size) <- s;
              hq.(!size) <- q;
              ht.(!size) <- Some (Batch.get bt j);
              incr size;
              sift_up (!size - 1)
            end
            else if cap > 0 && weaker hs.(0) hq.(0) s q then begin
              hs.(0) <- s;
              hq.(0) <- q;
              ht.(0) <- Some (Batch.get bt j);
              sift_down 0
            end
          done;
          drain ()
    in
    drain ();
    input.v_close ();
    let kept = ref [] in
    for i = 0 to !size - 1 do
      kept := (hs.(i), hq.(i), Option.get ht.(i)) :: !kept
    done;
    let sorted =
      List.sort
        (fun (s1, q1, _) (s2, q2, _) ->
          let c = if desc then Float.compare s2 s1 else Float.compare s1 s2 in
          if c <> 0 then c else compare (q1 : int) q2)
        !kept
    in
    results := List.map (fun (_, _, tu) -> tu) sorted;
    let m = !size in
    if !n > 0 then Exec_stats.note_buffer sort_stats (min !n b.Sort.memory_tuples);
    Exec_stats.add_emitted sort_stats m;
    Exec_stats.add_depth topk_stats 0 m;
    Exec_stats.add_emitted topk_stats m
  in
  {
    Operator.schema = input.v_schema;
    open_ = (fun () -> compute ());
    next =
      (fun () ->
        match !results with
        | [] -> None
        | tu :: rest ->
            results := rest;
            Some tu);
    close = (fun () -> results := []);
  }

let top_n ?stats ~k expr (input : t) : Operator.scored =
  let stats = stats_or stats 1 in
  let score = Batch.score_kernel input.v_schema expr in
  let results = ref [] in
  let compute () =
    let heap = Rkutil.Heap.create ~cmp:Top_n.candidate_cmp in
    Exec_stats.reset stats;
    input.v_open ();
    let rec drain () =
      match input.v_next () with
      | None -> ()
      | Some bt ->
          let bn = Batch.length bt in
          Exec_stats.add_depth stats 0 bn;
          let scores = score bt in
          for j = 0 to bn - 1 do
            let s = scores.(j) in
            (* NaN never ranks — identical policy to Top_n.by_expr. *)
            if not (Float.is_nan s) then begin
              let tu = Batch.get bt j in
              if Rkutil.Heap.length heap < k then Rkutil.Heap.push heap (tu, s)
              else begin
                match Rkutil.Heap.peek heap with
                | Some worst when Top_n.candidate_cmp (tu, s) worst > 0 ->
                    ignore (Rkutil.Heap.pop heap);
                    Rkutil.Heap.push heap (tu, s)
                | _ -> ()
              end;
              Exec_stats.note_buffer stats (Rkutil.Heap.length heap)
            end
          done;
          drain ()
    in
    drain ();
    input.v_close ();
    results := List.rev (Rkutil.Heap.drain heap)
  in
  {
    Operator.s_schema = input.v_schema;
    s_open = (fun () -> compute ());
    s_next =
      (fun () ->
        match !results with
        | [] -> None
        | e :: rest ->
            results := rest;
            Exec_stats.bump_emitted stats;
            Some e);
    s_close = (fun () -> results := []);
  }

let scope (m : Metrics.t) (node : Metrics.node) (v : t) : t =
  {
    v with
    v_open = (fun () -> Metrics.scoped m node v.v_open);
    v_next = (fun () -> Metrics.scoped m node v.v_next);
    v_close = (fun () -> Metrics.scoped m node v.v_close);
  }
