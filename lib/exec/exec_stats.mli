(** The shared per-operator instrumentation record: tuples consumed per
    input (the paper's {e depth} for rank-join inputs), tuples emitted, and
    the high-water mark of whatever the operator buffers internally (result
    queue, heap, hash table, sort run, ...). Every physical operator reports
    into one of these; the metrics registry ({!Metrics}) aggregates them per
    query. *)

type t

val create : int -> t
(** [create m] for an operator with m inputs ([m = 0] is allowed for
    leaves). *)

val reset : t -> unit

val bump_depth : t -> int -> unit
(** Record one tuple consumed from input [i]. *)

val note_depth : t -> int -> int -> unit
(** [note_depth t i n]: raise input [i]'s depth to [n] if larger — for
    operators that re-scan an input and report the deepest pass (NRJN's
    inner). *)

val add_depth : t -> int -> int -> unit
(** [add_depth t i n]: add [n] tuples to input [i] in one step — bulk
    accounting for exchange workers that count a whole morsel at once
    (callers serialize updates; the record itself is not domain-safe). *)

val bump_emitted : t -> unit

val add_emitted : t -> int -> unit
(** [add_emitted t n]: count [n] emitted tuples in one step — bulk
    accounting for batch-producing operators, so EXPLAIN ANALYZE still
    reports exact tuple-level counts at batch granularity. *)

val note_buffer : t -> int -> unit
(** Record the current buffered-element count (keeps the maximum). *)

val depth : t -> int -> int
(** Tuples consumed from input [i] so far. *)

val depths : t -> int array
(** Copy of all per-input depths. *)

val inputs : t -> int
(** Number of tracked inputs. *)

val total_in : t -> int
(** Sum of all per-input depths. *)

val left_depth : t -> int
(** [depth t 0] — binary-operator convenience. *)

val right_depth : t -> int
(** [depth t 1] — binary-operator convenience. *)

val buffer_max : t -> int

val emitted : t -> int

val pp : Format.formatter -> t -> unit
