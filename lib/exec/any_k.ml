(* anyK-style ranked enumeration over an acyclic (path/star) join tree.

   The operator materializes each input, prunes dangling tuples with one
   bottom-up dynamic-programming pass (every surviving tuple knows the best
   total score of any join answer rooted in its subtree), and then
   enumerates complete join answers in non-increasing score order with a
   Lawler-style candidate heap: each emitted answer spawns at most m
   successor candidates, so the per-result delay after the build phase is
   O(m log(candidates)).

   Join-tree encoding: input 0 is the root; input i >= 1 joins an earlier
   input parent(i) < i on an equi-key. Children therefore always carry a
   larger index than their parent, which makes a reverse index sweep a
   valid bottom-up order. *)

open Relalg

module Vtbl = Hashtbl.Make (Value)

type input = { i_op : Operator.t; i_score : Tuple.t -> float }

(* A surviving tuple of one node: its own partial score and the best
   total achievable by its whole subtree (own score + best child buckets). *)
type entry = { e_tuple : Tuple.t; e_score : float; e_best : float }

type cand = {
  total : float;  (* exact total score of this fully resolved answer *)
  idx : int array;  (* per-node choice index into its (sorted) bucket *)
  tuples : Tuple.t array;
  own : float array;  (* per-node partial score of the chosen tuple *)
  branch : int;  (* Lawler rule: successors may bump coordinates >= branch *)
}

let desc_by_best a b = Float.compare b.e_best a.e_best

let enumerate ?(tick = fun () -> ()) ~schema ~inputs
    ~(keys : (int * (Tuple.t -> Value.t) * (Tuple.t -> Value.t)) list) () =
  let inputs = Array.of_list inputs in
  let m = Array.length inputs in
  if m = 0 then invalid_arg "Any_k.enumerate: no inputs";
  let keys = Array.of_list keys in
  if Array.length keys <> m - 1 then
    invalid_arg "Any_k.enumerate: need one key binding per non-root input";
  let parent i =
    let p, _, _ = keys.(i - 1) in
    p
  in
  let parent_key i t =
    let _, pk, _ = keys.(i - 1) in
    pk t
  in
  let child_key i t =
    let _, _, ck = keys.(i - 1) in
    ck t
  in
  Array.iteri
    (fun j (p, _, _) ->
      if p < 0 || p > j then
        invalid_arg "Any_k.enumerate: parent must precede child")
    keys;
  let children = Array.make m [] in
  for i = m - 1 downto 1 do
    children.(parent i) <- i :: children.(parent i)
  done;
  (* Mutable run state, rebuilt by s_open. *)
  let buckets : entry array Vtbl.t array = Array.make m (Vtbl.create 1) in
  let roots = ref [||] in
  let heap =
    Rkutil.Heap.create ~cmp:(fun a b -> Float.compare b.total a.total)
  in
  let started = ref false in
  let materialize i =
    let op = inputs.(i).i_op in
    let acc = ref [] in
    let n = ref 0 in
    op.Operator.open_ ();
    let rec loop () =
      match op.Operator.next () with
      | Some tu ->
          incr n;
          if !n land 255 = 0 then tick ();
          acc := tu :: !acc;
          loop ()
      | None -> ()
    in
    loop ();
    op.Operator.close ();
    !acc
  in
  (* Best completion of node [c]'s subtree for a parent tuple [t], i.e. the
     head of c's bucket under t's join key; None when t dangles. *)
  let child_best c t =
    match Vtbl.find_opt buckets.(c) (parent_key c t) with
    | Some arr when Array.length arr > 0 -> Some arr.(0).e_best
    | _ -> None
  in
  let build () =
    Rkutil.Heap.clear heap;
    for i = m - 1 downto 0 do
      let score = inputs.(i).i_score in
      let entries =
        List.filter_map
          (fun tu ->
            tick ();
            let s = score tu in
            if Float.is_nan s then None
            else
              let rec total acc = function
                | [] -> Some acc
                | c :: rest -> (
                    match child_best c tu with
                    | Some b -> total (acc +. b) rest
                    | None -> None)
              in
              match total s children.(i) with
              | Some best when not (Float.is_nan best) ->
                  Some { e_tuple = tu; e_score = s; e_best = best }
              | _ -> None)
          (materialize i)
      in
      if i = 0 then begin
        let arr = Array.of_list entries in
        Array.sort desc_by_best arr;
        roots := arr
      end
      else begin
        let tbl = Vtbl.create 64 in
        List.iter
          (fun e ->
            let key = child_key i e.e_tuple in
            Vtbl.replace tbl key
              (e :: (try Vtbl.find tbl key with Not_found -> [])))
          entries;
        let sorted = Vtbl.create (Vtbl.length tbl) in
        Vtbl.iter
          (fun key es ->
            let arr = Array.of_list es in
            Array.sort desc_by_best arr;
            Vtbl.replace sorted key arr)
          tbl;
        buckets.(i) <- sorted
      end
    done
  in
  (* The bucket coordinate [t] draws from, given resolved ancestors. *)
  let bucket_of tuples t =
    if t = 0 then !roots
    else
      match Vtbl.find_opt buckets.(t) (parent_key t tuples.(parent t)) with
      | Some arr -> arr
      | None -> [||]  (* unreachable: ancestors are alive *)
  in
  (* Resolve coordinates [from..m-1] greedily (index 0 of each bucket).
     Returns false when a bucket is empty (only possible for the initial
     candidate of an empty result). *)
  let resolve idx tuples own from =
    let ok = ref true in
    for u = from to m - 1 do
      if !ok then begin
        let arr = bucket_of tuples u in
        if Array.length arr = 0 then ok := false
        else begin
          idx.(u) <- 0;
          tuples.(u) <- arr.(0).e_tuple;
          own.(u) <- arr.(0).e_score
        end
      end
    done;
    !ok
  in
  let total_of own = Array.fold_left ( +. ) 0.0 own in
  let seed () =
    if Array.length !roots > 0 then begin
      let idx = Array.make m 0 in
      let tuples = Array.make m [||] in
      let own = Array.make m 0.0 in
      tuples.(0) <- !roots.(0).e_tuple;
      own.(0) <- !roots.(0).e_score;
      if resolve idx tuples own 1 then
        Rkutil.Heap.push heap
          { total = total_of own; idx; tuples; own; branch = 0 }
    end
  in
  let successors c =
    for t = c.branch to m - 1 do
      tick ();
      let arr = bucket_of c.tuples t in
      let j = c.idx.(t) + 1 in
      if j < Array.length arr then begin
        let idx = Array.copy c.idx in
        let tuples = Array.copy c.tuples in
        let own = Array.copy c.own in
        idx.(t) <- j;
        tuples.(t) <- arr.(j).e_tuple;
        own.(t) <- arr.(j).e_score;
        if resolve idx tuples own (t + 1) then
          Rkutil.Heap.push heap
            { total = total_of own; idx; tuples; own; branch = t }
      end
    done
  in
  {
    Operator.s_schema = schema;
    s_open =
      (fun () ->
        build ();
        seed ();
        started := true);
    s_next =
      (fun () ->
        tick ();
        if not !started then None
        else
          match Rkutil.Heap.pop heap with
          | None -> None
          | Some c ->
              successors c;
              Some (Array.concat (Array.to_list c.tuples), c.total));
    s_close =
      (fun () ->
        started := false;
        Rkutil.Heap.clear heap;
        Array.iteri (fun i _ -> buckets.(i) <- Vtbl.create 1) buckets;
        roots := [||]);
  }
