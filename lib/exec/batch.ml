open Relalg

(* Columnar batches with selection vectors (VectorWise-style).

   A batch holds up to [default_rows] tuples plus a selection vector of the
   physical row indices still alive; filters refine the selection in place
   without copying rows. Per-column unboxed [float array] views are built
   lazily the first time a vectorized kernel touches a column; a view exists
   only when every physical value in the column is a [Value.Float], which is
   exactly the regime where the scalar expression interpreter is guaranteed
   to take its float path — so the vectorized kernels below are bit-identical
   to {!Expr.compile_float}/{!Expr.compile_bool}, including NaN propagation
   (same per-element operation sequence) and comparison semantics
   ([Value.compare] = [Float.compare], a total order with NaN below every
   real). Columns containing Null/Int/Str/Bool values, and expression shapes
   outside the arithmetic/comparison fragment, fall back to the scalar
   closure applied row-at-a-time over the selection — still amortized (one
   tight loop per batch), and exact by construction. *)

let default_rows = 1024

type view = Floats of float array | Opaque

type t = {
  schema : Schema.t;
  rows : Tuple.t array;  (* physical rows; [0, len) are valid *)
  len : int;
  mutable sel : int array;  (* selected physical indices, ascending *)
  mutable n : int;  (* live prefix of [sel] *)
  views : view option array;  (* lazy per-column float views *)
}

let of_rows schema rows =
  let len = Array.length rows in
  {
    schema;
    rows;
    len;
    sel = Array.init len (fun i -> i);
    n = len;
    views = Array.make (Schema.arity schema) None;
  }

let of_list schema tuples = of_rows schema (Array.of_list tuples)

let schema t = t.schema

let length t = t.n

let get t j = t.rows.(t.sel.(j))

let iter f t =
  for j = 0 to t.n - 1 do
    f t.rows.(t.sel.(j))
  done

let to_list t =
  let acc = ref [] in
  for j = t.n - 1 downto 0 do
    acc := t.rows.(t.sel.(j)) :: !acc
  done;
  !acc

(* The lazy float view of column [c]: Some iff every physical value is a
   Float. Built over all physical rows (not just selected ones) so the view
   stays valid as the selection shrinks. *)
let float_view t c =
  match t.views.(c) with
  | Some (Floats a) -> Some a
  | Some Opaque -> None
  | None ->
      let a = Array.make t.len 0.0 in
      let ok = ref true in
      (try
         for i = 0 to t.len - 1 do
           match t.rows.(i).(c) with
           | Value.Float f -> a.(i) <- f
           | _ ->
               ok := false;
               raise Exit
         done
       with Exit -> ());
      if !ok then begin
        t.views.(c) <- Some (Floats a);
        Some a
      end
      else begin
        t.views.(c) <- Some Opaque;
        None
      end

(* -- Vectorized expression kernels -------------------------------------- *)

(* Static plan of a numeric expression over float-view columns. Constant
   subtrees are folded at plan time in the Value domain (replicating
   [Expr]'s [numeric2], so Int/Int constant arithmetic stays exact); a
   remaining constant operand is lifted to float, which is exact because its
   runtime partner is always a Float — the scalar interpreter would take the
   same float branch. *)
type num =
  | Kf of float
  | Col of int
  | Neg of num
  | Add of num * num
  | Sub of num * num
  | Mul of num * num
  | Div of num * num

type pred =
  | Pk of bool
  | Pcmp of Expr.cmp * num * num
  | Pand of pred * pred
  | Por of pred * pred
  | Pnot of pred

(* Replicas of the scalar interpreter's constant arithmetic (Exprs are
   pure, so folding at plan time is observationally identical). Only ever
   applied to non-null Int/Float constants. *)
let numeric2 op a b =
  match (a, b) with
  | Value.Int x, Value.Int y -> (
      match op with
      | `Add -> Value.Int (x + y)
      | `Sub -> Value.Int (x - y)
      | `Mul -> Value.Int (x * y)
      | `Div -> Value.Float (float_of_int x /. float_of_int y))
  | _ ->
      let x = Value.to_float a and y = Value.to_float b in
      Value.Float
        (match op with
        | `Add -> x +. y
        | `Sub -> x -. y
        | `Mul -> x *. y
        | `Div -> x /. y)

let neg_value = function
  | Value.Int x -> Value.Int (-x)
  | v -> Value.Float (-.Value.to_float v)

let cmp_const op a b =
  let c = Value.compare a b in
  match op with
  | Expr.Eq -> c = 0
  | Expr.Ne -> c <> 0
  | Expr.Lt -> c < 0
  | Expr.Le -> c <= 0
  | Expr.Gt -> c > 0
  | Expr.Ge -> c >= 0

let lift = function
  | `C v -> Kf (Value.to_float v)
  | `N n -> n

let rec plan_num schema (e : Expr.t) :
    [ `C of Value.t | `N of num ] option =
  match e with
  | Expr.Const ((Value.Int _ | Value.Float _) as v) -> Some (`C v)
  | Expr.Const _ -> None
  | Expr.Col r -> (
      match Schema.index_of schema ?relation:r.Expr.relation r.Expr.name with
      | Some i -> Some (`N (Col i))
      | None -> None)
  | Expr.Neg e -> (
      match plan_num schema e with
      | Some (`C v) -> Some (`C (neg_value v))
      | Some (`N n) -> Some (`N (Neg n))
      | None -> None)
  | Expr.Add (a, b) -> plan_bin schema `Add a b
  | Expr.Sub (a, b) -> plan_bin schema `Sub a b
  | Expr.Mul (a, b) -> plan_bin schema `Mul a b
  | Expr.Div (a, b) -> plan_bin schema `Div a b
  | Expr.Cmp _ | Expr.And _ | Expr.Or _ | Expr.Not _ -> None

and plan_bin schema op a b =
  match (plan_num schema a, plan_num schema b) with
  | Some (`C x), Some (`C y) -> Some (`C (numeric2 op x y))
  | Some x, Some y ->
      let l = lift x and r = lift y in
      Some
        (`N
          (match op with
          | `Add -> Add (l, r)
          | `Sub -> Sub (l, r)
          | `Mul -> Mul (l, r)
          | `Div -> Div (l, r)))
  | _ -> None

let rec plan_pred schema (e : Expr.t) : pred option =
  match e with
  | Expr.Cmp (op, a, b) -> (
      match (plan_num schema a, plan_num schema b) with
      | Some (`C x), Some (`C y) -> Some (Pk (cmp_const op x y))
      | Some x, Some y -> Some (Pcmp (op, lift x, lift y))
      | _ -> None)
  | Expr.And (a, b) -> (
      match (plan_pred schema a, plan_pred schema b) with
      | Some x, Some y -> Some (Pand (x, y))
      | _ -> None)
  | Expr.Or (a, b) -> (
      match (plan_pred schema a, plan_pred schema b) with
      | Some x, Some y -> Some (Por (x, y))
      | _ -> None)
  | Expr.Not e ->
      Option.map (fun p -> Pnot p) (plan_pred schema e)
  | _ -> None

let rec num_cols acc = function
  | Kf _ -> acc
  | Col c -> c :: acc
  | Neg a -> num_cols acc a
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      num_cols (num_cols acc a) b

let rec pred_cols acc = function
  | Pk _ -> acc
  | Pcmp (_, a, b) -> num_cols (num_cols acc a) b
  | Pand (a, b) | Por (a, b) -> pred_cols (pred_cols acc a) b
  | Pnot a -> pred_cols acc a

let views_ready t cols = List.for_all (fun c -> Option.is_some (float_view t c)) cols

(* Runtime evaluation over the batch's full physical extent (unselected rows
   compute garbage that is never read — float arithmetic cannot raise). Each
   elementwise operation applies the same float op in the same order as the
   scalar interpreter would per row, so results are bit-identical. *)
type ev = V of float array | S of float

let ev2 len op a b =
  match (a, b) with
  | S x, S y -> S (op x y)
  | V x, S y ->
      let r = Array.make len 0.0 in
      for i = 0 to len - 1 do
        r.(i) <- op x.(i) y
      done;
      V r
  | S x, V y ->
      let r = Array.make len 0.0 in
      for i = 0 to len - 1 do
        r.(i) <- op x y.(i)
      done;
      V r
  | V x, V y ->
      let r = Array.make len 0.0 in
      for i = 0 to len - 1 do
        r.(i) <- op x.(i) y.(i)
      done;
      V r

let rec eval_num t = function
  | Kf f -> S f
  | Col c -> (
      match t.views.(c) with
      | Some (Floats a) -> V a
      | _ -> invalid_arg "Batch.eval_num: missing float view")
  | Neg a -> (
      match eval_num t a with
      | S x -> S (-.x)
      | V x ->
          let r = Array.make t.len 0.0 in
          for i = 0 to t.len - 1 do
            r.(i) <- -.x.(i)
          done;
          V r)
  | Add (a, b) -> ev2 t.len ( +. ) (eval_num t a) (eval_num t b)
  | Sub (a, b) -> ev2 t.len ( -. ) (eval_num t a) (eval_num t b)
  | Mul (a, b) -> ev2 t.len ( *. ) (eval_num t a) (eval_num t b)
  | Div (a, b) -> ev2 t.len ( /. ) (eval_num t a) (eval_num t b)

type bv = Bs of bool | Bv of bool array

let cmp_holds op c =
  match op with
  | Expr.Eq -> c = 0
  | Expr.Ne -> c <> 0
  | Expr.Lt -> c < 0
  | Expr.Le -> c <= 0
  | Expr.Gt -> c > 0
  | Expr.Ge -> c >= 0

let bv2 len op a b =
  match (a, b) with
  | Bs x, Bs y -> Bs (op x y)
  | Bv x, Bs y ->
      let r = Array.make len false in
      for i = 0 to len - 1 do
        r.(i) <- op x.(i) y
      done;
      Bv r
  | Bs x, Bv y ->
      let r = Array.make len false in
      for i = 0 to len - 1 do
        r.(i) <- op x y.(i)
      done;
      Bv r
  | Bv x, Bv y ->
      let r = Array.make len false in
      for i = 0 to len - 1 do
        r.(i) <- op x.(i) y.(i)
      done;
      Bv r

let rec eval_pred t = function
  | Pk b -> Bs b
  | Pcmp (op, a, b) -> (
      match (eval_num t a, eval_num t b) with
      | S x, S y -> Bs (cmp_holds op (Float.compare x y))
      | V x, S y ->
          let r = Array.make t.len false in
          for i = 0 to t.len - 1 do
            r.(i) <- cmp_holds op (Float.compare x.(i) y)
          done;
          Bv r
      | S x, V y ->
          let r = Array.make t.len false in
          for i = 0 to t.len - 1 do
            r.(i) <- cmp_holds op (Float.compare x y.(i))
          done;
          Bv r
      | V x, V y ->
          let r = Array.make t.len false in
          for i = 0 to t.len - 1 do
            r.(i) <- cmp_holds op (Float.compare x.(i) y.(i))
          done;
          Bv r)
  | Pand (a, b) -> bv2 t.len ( && ) (eval_pred t a) (eval_pred t b)
  | Por (a, b) -> bv2 t.len ( || ) (eval_pred t a) (eval_pred t b)
  | Pnot a -> (
      match eval_pred t a with
      | Bs b -> Bs (not b)
      | Bv x ->
          let r = Array.make t.len false in
          for i = 0 to t.len - 1 do
            r.(i) <- not x.(i)
          done;
          Bv r)

(* -- Public kernels ------------------------------------------------------ *)

let pred_kernel schema expr : t -> unit =
  let scalar = Expr.compile_bool schema expr in
  let fast = plan_pred schema expr in
  let cols = match fast with Some p -> pred_cols [] p | None -> [] in
  fun b ->
    let fast_ok =
      match fast with Some _ -> views_ready b cols | None -> false
    in
    if fast_ok then begin
      match eval_pred b (Option.get fast) with
      | Bs true -> ()
      | Bs false -> b.n <- 0
      | Bv mask ->
          let m = ref 0 in
          for j = 0 to b.n - 1 do
            let i = b.sel.(j) in
            if mask.(i) then begin
              b.sel.(!m) <- i;
              incr m
            end
          done;
          b.n <- !m
    end
    else begin
      let m = ref 0 in
      for j = 0 to b.n - 1 do
        let i = b.sel.(j) in
        if scalar b.rows.(i) then begin
          b.sel.(!m) <- i;
          incr m
        end
      done;
      b.n <- !m
    end

let score_kernel schema expr : t -> float array =
  let scalar = Expr.compile_float schema expr in
  let fast = plan_num schema expr in
  let cols =
    match fast with Some (`N n) -> num_cols [] n | _ -> []
  in
  fun b ->
    let out = Array.make b.n 0.0 in
    (match fast with
    | Some (`C v) -> Array.fill out 0 b.n (Value.to_float v)
    | Some (`N plan) when views_ready b cols -> (
        match eval_num b plan with
        | S f -> Array.fill out 0 b.n f
        | V a ->
            for j = 0 to b.n - 1 do
              out.(j) <- a.(b.sel.(j))
            done)
    | _ ->
        for j = 0 to b.n - 1 do
          out.(j) <- scalar b.rows.(b.sel.(j))
        done);
    out
