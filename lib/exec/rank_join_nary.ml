open Relalg

type input = {
  stream : Operator.scored;
  key : Tuple.t -> Value.t;
}

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal

  let hash = Value.hash
end)

let hrjn_nary ?stats ~inputs () =
  let m = List.length inputs in
  if m < 2 then invalid_arg "Rank_join_nary.hrjn_nary: need at least 2 inputs";
  let inputs = Array.of_list inputs in
  let schema =
    Array.fold_left
      (fun acc (inp : input) ->
        match acc with
        | None -> Some inp.stream.Operator.s_schema
        | Some s -> Some (Schema.concat s inp.stream.Operator.s_schema))
      None inputs
    |> Option.get
  in
  let stats =
    match stats with
    | Some s ->
        if Exec_stats.inputs s <> m then
          invalid_arg "Rank_join_nary.hrjn_nary: stats arity mismatch";
        s
    | None -> Exec_stats.create m
  in
  let hashes : (Tuple.t * float) list Vtbl.t array =
    Array.init m (fun _ -> Vtbl.create 64)
  in
  let top = Array.make m nan and last = Array.make m nan in
  let started = Array.make m false and finished = Array.make m false in
  let queue =
    ref (Rkutil.Heap.create ~cmp:(fun (_, a) (_, b) -> Float.compare b a))
  in
  let turn = ref 0 in
  let reset () =
    Array.iter Vtbl.clear hashes;
    Array.fill top 0 m nan;
    Array.fill last 0 m nan;
    Array.fill started 0 m false;
    Array.fill finished 0 m false;
    queue := Rkutil.Heap.create ~cmp:(fun (_, a) (_, b) -> Float.compare b a);
    turn := 0;
    Exec_stats.reset stats
  in
  let all_started () = Array.for_all Fun.id started in
  let all_done () = Array.for_all Fun.id finished in
  let any_done () = Array.exists Fun.id finished in
  (* Unseen results must involve an unseen tuple from some live input i, so
     they score at most last_i + sum of the other tops. *)
  let threshold () =
    if not (all_started ()) then
      if any_done () then neg_infinity (* an input was empty: no results *)
      else infinity
    else begin
      let sum_tops = Array.fold_left ( +. ) 0.0 top in
      let best = ref neg_infinity in
      for i = 0 to m - 1 do
        if not finished.(i) then
          best := Float.max !best (sum_tops -. top.(i) +. last.(i))
      done;
      !best
    end
  in
  (* All combinations of one (tuple, score) per input with key [k], where
     position [at] is pinned to the new entry. *)
  let combinations at entry k =
    let rec go i =
      if i = m then [ ([], 0.0) ]
      else begin
        let tails = go (i + 1) in
        let choices =
          if i = at then [ entry ]
          else Option.value ~default:[] (Vtbl.find_opt hashes.(i) k)
        in
        List.concat_map
          (fun (tu, s) ->
            List.map (fun (rest, srest) -> (tu :: rest, s +. srest)) tails)
          choices
      end
    in
    go 0
  in
  let ingest i =
    match inputs.(i).stream.Operator.s_next () with
    | None -> finished.(i) <- true
    | Some (tu, score) ->
        Exec_stats.bump_depth stats i;
        if not started.(i) then top.(i) <- score;
        started.(i) <- true;
        last.(i) <- score;
        let k = inputs.(i).key tu in
        let prev = Option.value ~default:[] (Vtbl.find_opt hashes.(i) k) in
        Vtbl.replace hashes.(i) k ((tu, score) :: prev);
        (* New results are exactly the combinations pinning position i to
           the fresh tuple; only possible once every input has produced
           something for this key — the combination product is empty
           otherwise. *)
        List.iter
          (fun (parts, s) ->
            let joined = Array.concat parts in
            Rkutil.Heap.push !queue (joined, s))
          (combinations i (tu, score) k);
        Exec_stats.note_buffer stats (Rkutil.Heap.length !queue)
  in
  let pick () =
    if all_done () then None
    else begin
      let rec next_live j tries =
        if tries > m then None
        else if finished.(j) then next_live ((j + 1) mod m) (tries + 1)
        else Some j
      in
      let chosen = next_live !turn 0 in
      (match chosen with Some j -> turn := (j + 1) mod m | None -> ());
      chosen
    end
  in
  (* A finished input with an empty buffer (it produced no tuples at all)
     makes every future combination impossible: stop polling the others. *)
  let no_future_results () =
    let blocked = ref false in
    for i = 0 to m - 1 do
      if finished.(i) && Vtbl.length hashes.(i) = 0 then blocked := true
    done;
    !blocked
  in
  let rec next () =
    let t = threshold () in
    let stop = all_done () || no_future_results () in
    match Rkutil.Heap.peek !queue with
    | Some (_, s) when s >= t || stop ->
        let tu, s = Rkutil.Heap.pop_exn !queue in
        Exec_stats.bump_emitted stats;
        Some (tu, s)
    | _ ->
        if stop then None
        else (
          match pick () with
          | None -> (
              match Rkutil.Heap.pop !queue with
              | Some (tu, s) ->
                  Exec_stats.bump_emitted stats;
                  Some (tu, s)
              | None -> None)
          | Some i ->
              ingest i;
              next ())
  in
  let stream =
    {
      Operator.s_schema = schema;
      s_open =
        (fun () ->
          Array.iter (fun (inp : input) -> inp.stream.Operator.s_open ()) inputs;
          reset ());
      s_next = next;
      s_close =
        (fun () ->
          Array.iter (fun (inp : input) -> inp.stream.Operator.s_close ()) inputs);
    }
  in
  (stream, stats)
