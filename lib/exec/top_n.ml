open Relalg

(* Total order on candidates: score first, then the tuple contents as a
   deterministic tie-break. Ordering ties by value (not arrival) makes the
   kept set and the emission order identical no matter how the input was
   interleaved upstream (e.g. across rank-join polling strategies). *)
let candidate_cmp (t1, s1) (t2, s2) =
  let c = Float.compare s1 s2 in
  if c <> 0 then c else Tuple.compare t1 t2

let by_expr ?stats ~k expr (op : Operator.t) : Operator.scored =
  let score = Expr.compile_float op.schema expr in
  let stats = match stats with Some s -> s | None -> Exec_stats.create 1 in
  let results = ref [] in
  let compute () =
    (* Min-heap of the best k seen so far: the root is the weakest keeper. *)
    let heap = Rkutil.Heap.create ~cmp:candidate_cmp in
    Exec_stats.reset stats;
    op.open_ ();
    let rec pull () =
      match op.next () with
      | None -> ()
      | Some tu ->
          Exec_stats.bump_depth stats 0;
          let s = score tu in
          (* NaN never ranks: admitting one would poison the heap root (every
             comparison against NaN is false) and silently reject all later
             tuples. *)
          if not (Float.is_nan s) then begin
            if Rkutil.Heap.length heap < k then Rkutil.Heap.push heap (tu, s)
            else begin
              match Rkutil.Heap.peek heap with
              | Some worst when candidate_cmp (tu, s) worst > 0 ->
                  ignore (Rkutil.Heap.pop heap);
                  Rkutil.Heap.push heap (tu, s)
              | _ -> ()
            end;
            Exec_stats.note_buffer stats (Rkutil.Heap.length heap)
          end;
          pull ()
    in
    pull ();
    op.close ();
    results := List.rev (Rkutil.Heap.drain heap)
  in
  {
    Operator.s_schema = op.schema;
    s_open = (fun () -> compute ());
    s_next =
      (fun () ->
        match !results with
        | [] -> None
        | e :: rest ->
            results := rest;
            Exec_stats.bump_emitted stats;
            Some e);
    s_close = (fun () -> results := []);
  }
