(** Multiway (N-ary) hash rank-join.

    A single operator joining m ranked inputs on a shared key, producing
    combined-score-ranked results — the flat alternative to a binary HRJN
    pipeline (the direction explored by the HRJN* follow-up work). One
    threshold over all m inputs avoids the intermediate-result buffering of
    a binary tree and often needs shallower inputs.

    All inputs must share one equi-join key (the star/oid-join case of the
    paper's video workload; a chain of distinct keys still needs the binary
    pipeline). The combining function is the sum of per-input scores. *)

open Relalg

type input = {
  stream : Operator.scored;  (** Sorted access: non-increasing scores. *)
  key : Tuple.t -> Value.t;
}

val hrjn_nary :
  ?stats:Exec_stats.t ->
  inputs:input list ->
  unit ->
  Operator.scored * Exec_stats.t
(** Join m ≥ 2 inputs. Output tuples are the concatenation of one tuple per
    input, in input order; the score is the sum of per-input scores.
    Instrumentation reports the depth of each input and the buffer
    high-water mark; a supplied [stats] (e.g. a metrics-registry record)
    must have been created for exactly m inputs. *)
