open Relalg

let concat_schema (l : Operator.t) (r : Operator.t) = Schema.concat l.schema r.schema

let stats_or stats n = match stats with Some s -> s | None -> Exec_stats.create n

(* Count every tuple pulled from input [i] into [stats]. *)
let tap stats i (op : Operator.t) : Operator.t =
  {
    op with
    next =
      (fun () ->
        match op.next () with
        | Some tu ->
            Exec_stats.bump_depth stats i;
            Some tu
        | None -> None);
  }

(* Reset [stats] on open and count emitted tuples. *)
let emitting stats (op : Operator.t) : Operator.t =
  {
    op with
    open_ =
      (fun () ->
        Exec_stats.reset stats;
        op.open_ ());
    next =
      (fun () ->
        match op.next () with
        | Some tu ->
            Exec_stats.bump_emitted stats;
            Some tu
        | None -> None);
  }

let nested_loops ?stats ?(block_size = 1000) ~pred (left : Operator.t)
    (right : Operator.t) : Operator.t =
  let stats = stats_or stats 2 in
  let left = tap stats 0 left and right = tap stats 1 right in
  let schema = concat_schema left right in
  let test = Expr.compile_bool schema pred in
  let block = ref [||] in
  let left_done = ref false in
  let block_idx = ref 0 in
  let right_cur = ref None in
  let fill_block () =
    let acc = ref [] in
    let n = ref 0 in
    let rec pull () =
      if !n < block_size then
        match left.next () with
        | Some tu ->
            acc := tu :: !acc;
            incr n;
            pull ()
        | None -> left_done := true
    in
    pull ();
    block := Array.of_list (List.rev !acc);
    Exec_stats.note_buffer stats (Array.length !block);
    block_idx := 0;
    if Array.length !block > 0 then begin
      right.open_ ();
      right_cur := right.next ()
    end
    else right_cur := None
  in
  let rec next () =
    match !right_cur with
    | Some rt when !block_idx < Array.length !block ->
        let lt = !block.(!block_idx) in
        incr block_idx;
        let joined = Tuple.concat lt rt in
        if test joined then Some joined else next ()
    | Some _ ->
        (* Block exhausted against this right tuple: advance right. *)
        block_idx := 0;
        right_cur := right.next ();
        next ()
    | None ->
        (* Right input exhausted for this block (or empty block). *)
        if !left_done then None
        else begin
          fill_block ();
          if Array.length !block = 0 then None else next ()
        end
  in
  emitting stats
    {
      schema;
      open_ =
        (fun () ->
          left.open_ ();
          left_done := false;
          block := [||];
          block_idx := 0;
          right_cur := None);
      next;
      close =
        (fun () ->
          left.close ();
          right.close ());
    }

let index_nested_loops ?stats ?residual ~left_key ~right_schema ~lookup
    (left : Operator.t) : Operator.t =
  let stats = stats_or stats 2 in
  let left = tap stats 0 left in
  let schema = Schema.concat left.schema right_schema in
  let keyf = Expr.compile left.schema left_key in
  let test =
    match residual with
    | None -> fun _ -> true
    | Some pred -> Expr.compile_bool schema pred
  in
  let matches = ref [] in
  let current_left = ref None in
  let rec next () =
    match !matches with
    | rt :: rest ->
        matches := rest;
        let lt = Option.get !current_left in
        let joined = Tuple.concat lt rt in
        if test joined then Some joined else next ()
    | [] -> (
        match left.next () with
        | None -> None
        | Some lt ->
            current_left := Some lt;
            let found = lookup (keyf lt) in
            List.iter (fun _ -> Exec_stats.bump_depth stats 1) found;
            matches := found;
            next ())
  in
  emitting stats
    {
      schema;
      open_ =
        (fun () ->
          left.open_ ();
          matches := [];
          current_left := None);
      next;
      close = left.close;
    }

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal

  let hash = Value.hash
end)

let hash ?stats ?residual ~left_key ~right_key (left : Operator.t)
    (right : Operator.t) : Operator.t =
  let stats = stats_or stats 2 in
  let left = tap stats 0 left and right = tap stats 1 right in
  let schema = concat_schema left right in
  let lkey = Expr.compile left.schema left_key in
  let rkey = Expr.compile right.schema right_key in
  let test =
    match residual with
    | None -> fun _ -> true
    | Some pred -> Expr.compile_bool schema pred
  in
  let table : Tuple.t list Vtbl.t = Vtbl.create 256 in
  let matches = ref [] in
  let current_left = ref None in
  let build () =
    Vtbl.clear table;
    right.open_ ();
    let buffered = ref 0 in
    let rec pull () =
      match right.next () with
      | Some rt ->
          let k = rkey rt in
          if not (Value.is_null k) then begin
            let prev = Option.value ~default:[] (Vtbl.find_opt table k) in
            Vtbl.replace table k (rt :: prev);
            incr buffered
          end;
          pull ()
      | None -> ()
    in
    pull ();
    Exec_stats.note_buffer stats !buffered;
    right.close ()
  in
  let rec next () =
    match !matches with
    | rt :: rest ->
        matches := rest;
        let lt = Option.get !current_left in
        let joined = Tuple.concat lt rt in
        if test joined then Some joined else next ()
    | [] -> (
        match left.next () with
        | None -> None
        | Some lt ->
            current_left := Some lt;
            let k = lkey lt in
            matches :=
              (if Value.is_null k then []
               else Option.value ~default:[] (Vtbl.find_opt table k));
            next ())
  in
  emitting stats
    {
      schema;
      open_ =
        (fun () ->
          build ();
          left.open_ ();
          matches := [];
          current_left := None);
      next;
      close = left.close;
    }

(* Partition an input into [p] spill files by key hash. *)
let partition_input (b : Sort.budget) schema keyf p (op : Operator.t) =
  let files =
    Array.init p (fun _ ->
        Storage.Heap_file.create ~tuples_per_page:b.Sort.tuples_per_page
          b.Sort.pool schema)
  in
  op.open_ ();
  let rec pull () =
    match op.next () with
    | Some tu ->
        let k = keyf tu in
        let slot = if Value.is_null k then 0 else Value.hash k mod p in
        ignore (Storage.Heap_file.append files.(slot) tu);
        pull ()
    | None -> ()
  in
  pull ();
  op.close ();
  Storage.Buffer_pool.flush b.Sort.pool;
  files

let grace_hash ?stats ?residual ?(partitions = 8) ~left_key ~right_key
    (b : Sort.budget) (left : Operator.t) (right : Operator.t) : Operator.t =
  let stats = stats_or stats 2 in
  let left = tap stats 0 left and right = tap stats 1 right in
  let schema = concat_schema left right in
  let lkey = Expr.compile left.schema left_key in
  let rkey = Expr.compile right.schema right_key in
  let test =
    match residual with
    | None -> fun _ -> true
    | Some pred -> Expr.compile_bool schema pred
  in
  let p = max 2 partitions in
  (* The per-partition in-memory join of two tuple lists (build on right). *)
  let join_partition ltuples rtuples emit =
    if List.length rtuples <= b.Sort.memory_tuples then begin
      let table : Tuple.t list Vtbl.t = Vtbl.create 64 in
      List.iter
        (fun rt ->
          let k = rkey rt in
          if not (Value.is_null k) then begin
            let prev = Option.value ~default:[] (Vtbl.find_opt table k) in
            Vtbl.replace table k (rt :: prev)
          end)
        rtuples;
      List.iter
        (fun lt ->
          let k = lkey lt in
          if not (Value.is_null k) then
            List.iter
              (fun rt ->
                let joined = Tuple.concat lt rt in
                if test joined then emit joined)
              (Option.value ~default:[] (Vtbl.find_opt table k)))
        ltuples
    end
    else
      (* A pathological partition (e.g. one hot key): block nested loops
         keeps memory bounded at the cost of extra comparisons. *)
      List.iter
        (fun lt ->
          let k = lkey lt in
          List.iter
            (fun rt ->
              if Value.equal k (rkey rt) then begin
                let joined = Tuple.concat lt rt in
                if test joined then emit joined
              end)
            rtuples)
        ltuples
  in
  let results = ref [] in
  let pending = ref [] in
  let compute () =
    (* Probe whether the build side fits: pull up to memory_tuples + 1. *)
    right.open_ ();
    let buffered = ref [] in
    let count = ref 0 in
    let overflow = ref false in
    let rec probe () =
      if !count > b.Sort.memory_tuples then overflow := true
      else
        match right.next () with
        | Some tu ->
            buffered := tu :: !buffered;
            incr count;
            probe ()
        | None -> ()
    in
    probe ();
    Exec_stats.note_buffer stats !count;
    if not !overflow then begin
      right.close ();
      (* Fits: plain in-memory join, streaming the left side. *)
      let acc = ref [] in
      left.open_ ();
      let rec pull () =
        match left.next () with
        | Some lt ->
            acc := lt :: !acc;
            pull ()
        | None -> ()
      in
      pull ();
      left.close ();
      let out = ref [] in
      join_partition (List.rev !acc) (List.rev !buffered) (fun tu -> out := tu :: !out);
      results := List.rev !out;
      pending := !results
    end
    else begin
      (* Spill: finish draining the right side into partitions (the buffered
         prefix is replayed first), partition the left, join pairwise. *)
      let replay = Operator.of_list right.schema (List.rev !buffered) in
      let right_rest =
        {
          Operator.schema = right.schema;
          open_ = (fun () -> replay.Operator.open_ ());
          next =
            (fun () ->
              match replay.Operator.next () with
              | Some tu -> Some tu
              | None -> right.next ());
          close = (fun () -> right.close ());
        }
      in
      let rfiles = partition_input b right.schema rkey p right_rest in
      let lfiles = partition_input b left.schema lkey p left in
      let out = ref [] in
      for i = 0 to p - 1 do
        join_partition
          (Storage.Heap_file.to_list lfiles.(i))
          (Storage.Heap_file.to_list rfiles.(i))
          (fun tu -> out := tu :: !out)
      done;
      results := List.rev !out;
      pending := !results
    end
  in
  emitting stats
    {
      schema;
      open_ = (fun () -> compute ());
      next =
        (fun () ->
          match !pending with
          | [] -> None
          | tu :: rest ->
              pending := rest;
              Some tu);
      close = (fun () -> pending := []);
    }

let merge_only ?stats ?residual ~left_key ~right_key (left : Operator.t)
    (right : Operator.t) : Operator.t =
  let stats = stats_or stats 2 in
  let left = tap stats 0 left and right = tap stats 1 right in
  let schema = concat_schema left right in
  let lkey = Expr.compile left.schema left_key in
  let rkey = Expr.compile right.schema right_key in
  let test =
    match residual with
    | None -> fun _ -> true
    | Some pred -> Expr.compile_bool schema pred
  in
  let lcur = ref None in
  let rgroup = ref [||] in
  let rgroup_key = ref None in
  let rnext_pending = ref None in
  let gi = ref 0 in
  let rpull () =
    match !rnext_pending with
    | Some rt ->
        rnext_pending := None;
        Some rt
    | None -> right.next ()
  in
  (* Load the group of right tuples sharing the next key >= k. *)
  let load_right_group k =
    let rec skip () =
      match rpull () with
      | None -> None
      | Some rt ->
          let rk = rkey rt in
          if Value.compare rk k < 0 then skip () else Some (rt, rk)
    in
    match skip () with
    | None ->
        rgroup := [||];
        rgroup_key := None
    | Some (rt, rk) ->
        let acc = ref [ rt ] in
        let rec fill () =
          match rpull () with
          | None -> ()
          | Some rt' ->
              if Value.compare (rkey rt') rk = 0 then begin
                acc := rt' :: !acc;
                fill ()
              end
              else rnext_pending := Some rt'
        in
        fill ();
        rgroup := Array.of_list (List.rev !acc);
        Exec_stats.note_buffer stats (Array.length !rgroup);
        rgroup_key := Some rk
  in
  let rec next () =
    match !lcur with
    | None -> (
        match left.next () with
        | None -> None
        | Some lt ->
            lcur := Some lt;
            gi := 0;
            next ())
    | Some lt -> (
        let lk = lkey lt in
        match !rgroup_key with
        | Some rk when Value.compare rk lk = 0 ->
            if !gi < Array.length !rgroup then begin
              let joined = Tuple.concat lt !rgroup.(!gi) in
              incr gi;
              if test joined then Some joined else next ()
            end
            else begin
              lcur := None;
              next ()
            end
        | Some rk when Value.compare rk lk > 0 ->
            (* Right group is ahead: advance left. *)
            lcur := None;
            next ()
        | _ ->
            (* No group yet, or the group is behind: load the next one. *)
            load_right_group lk;
            gi := 0;
            if !rgroup_key = None then None else next ())
  in
  emitting stats
    {
      schema;
      open_ =
        (fun () ->
          left.open_ ();
          right.open_ ();
          lcur := None;
          rgroup := [||];
          rgroup_key := None;
          rnext_pending := None;
          gi := 0);
      next;
      close =
        (fun () ->
          left.close ();
          right.close ());
    }

let sort_merge ?stats ?residual ~left_key ~right_key budget (left : Operator.t)
    (right : Operator.t) : Operator.t =
  let sorted_left = Sort.by_expr budget left_key left in
  let sorted_right = Sort.by_expr budget right_key right in
  merge_only ?stats ?residual ~left_key ~right_key sorted_left sorted_right
