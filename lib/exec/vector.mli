(** Vectorized (batch-at-a-time) physical operators.

    The vectorized executor runs the {e spine} of a plan — table scans,
    filters, and the probe side of in-memory hash joins — on columnar
    {!Batch}es with selection vectors, and hands the stream back to the
    tuple-at-a-time world at {e sink boundaries} (rank joins, sorts, top-k
    heaps) through {!to_operator}. Every operator here is tuple-exact
    against its serial counterpart: same rows, same order, same
    {!Exec_stats} totals (depth/emitted counted at batch granularity, so a
    full drain reports identical numbers), same buffer-pool charges. *)

open Relalg

type t = {
  v_schema : Schema.t;
  v_open : unit -> unit;  (** (Re)start the stream; may be called repeatedly. *)
  v_next : unit -> Batch.t option;
      (** The next non-empty batch, or [None] at end of stream. *)
  v_close : unit -> unit;
}

val schema : t -> Schema.t

val to_operator : t -> Operator.t
(** Tuple-at-a-time view of a batched stream — the sink-boundary adapter.
    Emits the selected rows of each batch in order. *)

val of_operator : ?rows:int -> Operator.t -> t
(** Batch up a tuple stream ([rows] per batch, default {!Batch.default_rows}).
    Used at test boundaries and for feeding batched sinks from arbitrary
    operators; carries no stats of its own. *)

val heap_scan : ?stats:Exec_stats.t -> Storage.Catalog.table_info -> t
(** Full scan of a table's heap file, reading whole pages at a time
    ({!Storage.Heap_file.page_rows}) and packing them into batches of at
    least {!Batch.default_rows} live tuples (the last batch may be short;
    page-granular packing may overshoot by up to a page). Charges the same
    page reads and [tuples_read] as the serial {!Scan.heap}. *)

val filter : ?stats:Exec_stats.t -> Expr.t -> t -> t
(** Selection-vector filter: refines each batch's selection in place with
    {!Batch.pred_kernel} (bit-identical to [Expr.compile_bool]) and drops
    empty batches. [stats] input 0 counts tuples consumed, [emitted] the
    survivors. *)

val hash_join :
  ?stats:Exec_stats.t ->
  ?residual:Expr.t ->
  left_key:Expr.t ->
  right_key:Expr.t ->
  Sort.budget ->
  t ->
  Operator.t ->
  t
(** Hash join with a batched probe (left) side and a tuple build (right)
    side, blocking at [v_open] like {!Join.grace_hash}: the build side is
    probed up to [memory_tuples + 1]; if it fits, the join builds an
    in-memory table (reverse-arrival chains, [Null] keys dropped on both
    sides) and probes left batches in order; on overflow it delegates to
    the serial grace hash join's spill path, preserving its partition I/O.
    Output rows, order, and stats totals match the serial operator. *)

val fused_top_k :
  ?sort_stats:Exec_stats.t ->
  ?topk_stats:Exec_stats.t ->
  Sort.budget ->
  desc:bool ->
  k:int ->
  Expr.t ->
  t ->
  Operator.t
(** Fused sort + limit sink over a batched input: a bounded heap on
    (score, arrival-seq) keeping exactly the first [k] rows of the stable
    in-memory sort on [expr] — NaN sorts as the smallest score under
    [Float.compare] (last when [desc], first otherwise) and is {e kept},
    ties preserve arrival order. [sort_stats]/[topk_stats] receive the same
    totals the serial [Sort.by_expr] + [Basic_ops.limit] pair reports on a
    full drain (no spill I/O is charged: the heap never exceeds [k]
    tuples). *)

val top_n : ?stats:Exec_stats.t -> k:int -> Expr.t -> t -> Operator.scored
(** Batched {!Top_n.by_expr}: scores each batch with
    {!Batch.score_kernel}, drops NaN on entry, and keeps the [k] best under
    {!Top_n.candidate_cmp} — the identical comparator, so the kept set and
    emission order match the serial heap bit-for-bit. *)

val scope : Metrics.t -> Metrics.node -> t -> t
(** Sink-scope a batched operator's I/O into a metrics node (the batched
    analogue of {!Metrics.scope}). *)
