(** Heap-based top-N selection.

    A blocking alternative to a full sort + limit when [k] is known at plan
    time: one pass over the input keeping a bounded min-heap of the [k] best
    tuples. Used by ablation benchmarks to contrast with the paper's
    join-then-(full-)sort baseline.

    Tuples whose score evaluates to NaN are dropped on entry (NaN cannot be
    ranked), and ties are broken deterministically on the tuple contents, so
    the selected set and its order do not depend on the input's arrival
    order. *)

open Relalg

val candidate_cmp : Tuple.t * float -> Tuple.t * float -> int
(** The total order on candidates: score first ([Float.compare]), then the
    tuple contents as a deterministic tie-break. Shared with the vectorized
    top-n sink ({!Vector.top_n}) so both keep — and emit — exactly the same
    candidates. *)

val by_expr : ?stats:Exec_stats.t -> k:int -> Expr.t -> Operator.t -> Operator.scored
(** The [k] highest values of the score expression, emitted in
    non-increasing score order (ties in ascending tuple order). [stats]
    receives tuples consumed (input 0), the heap's high-water mark, and
    tuples emitted. *)
