(** anyK-style ranked enumeration over an acyclic path/star join tree.

    Unlike the rank-join family — which stops producing once its Top-k
    consumer is satisfied — this operator can stream {e every} join answer
    in non-increasing total-score order with bounded per-result delay, so a
    cursor can keep fetching past the original k without re-executing.

    The algorithm follows the anyK dynamic-programming line of work
    (Tziavelis et al.): materialize each input, run one bottom-up pass that
    prunes dangling tuples and tags every survivor with the best total
    score of its subtree, bucket tuples by join key sorted on that bound,
    then enumerate with a Lawler-style candidate heap where each popped
    answer spawns at most [m] successors.

    NaN partial scores are pruned at build time (an answer containing one
    would have a NaN total, which has no place in a ranked order); the
    emitted stream is therefore totally ordered and non-increasing. *)

open Relalg

type input = {
  i_op : Operator.t;  (** Base access plan, opened and drained at build. *)
  i_score : Tuple.t -> float;  (** Weighted partial score of this input. *)
}

val enumerate :
  ?tick:(unit -> unit) ->
  schema:Schema.t ->
  inputs:input list ->
  keys:(int * (Tuple.t -> Value.t) * (Tuple.t -> Value.t)) list ->
  unit ->
  Operator.scored
(** [enumerate ~schema ~inputs ~keys ()] builds the enumeration stream.
    Input 0 is the join-tree root; for input [i >= 1], [keys] entry [i-1]
    is [(parent, parent_key, child_key)] binding it to input
    [parent < i] by equality of the two key extractors. The output tuple
    is the concatenation of one tuple per input, in input order; [schema]
    must be the matching concatenated schema.

    [tick] is invoked regularly during the build phase and on every
    candidate expansion — the executor uses it for cooperative
    interruption (deadlines firing mid-build or mid-fetch).

    The stream is resumable: after [s_open], repeated [s_next] calls keep
    yielding answers in score order until the full join result is
    exhausted; [s_next] after exhaustion returns [None] without touching
    the (already drained) inputs. *)
