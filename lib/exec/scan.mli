(** Access-path operators: heap scans and B+-tree index scans.

    Every constructor takes an optional [stats] record (see {!Exec_stats});
    when given, it is reset on [open_] and bumped once per emitted tuple. *)

open Relalg
open Storage

val heap : ?stats:Exec_stats.t -> Catalog.table_info -> Operator.t
(** Full table scan through the buffer pool. *)

val heap_range :
  ?stats:Exec_stats.t -> Catalog.table_info -> lo:int -> hi:int -> Operator.t
(** Morsel scan: the tuples of heap pages [\[lo, hi)] in storage order
    (see {!Storage.Heap_file.scan_pages}). Safe to run concurrently with
    other readers of the same table. *)

val index_asc : ?stats:Exec_stats.t -> Catalog.t -> Catalog.index_info -> Operator.t
(** Full index scan in ascending key order. Unclustered indexes resolve each
    entry through the heap (a random page access per tuple). *)

val index_desc : ?stats:Exec_stats.t -> Catalog.t -> Catalog.index_info -> Operator.t
(** Descending key order — a ranked access path. *)

val index_desc_scored :
  ?stats:Exec_stats.t -> Catalog.t -> Catalog.index_info -> Operator.scored
(** Descending index scan as a scored stream: the score is the (numeric)
    index key, which is exactly the {e sorted access} a rank-join needs. *)

val index_probe : Catalog.t -> Catalog.index_info -> Value.t -> Tuple.t list
(** Point lookup (random access). *)

val rank_window :
  ?stats:Exec_stats.t ->
  ?dense:bool ->
  Catalog.t ->
  Catalog.index_info ->
  lo:int ->
  hi:int ->
  tie_cmp:(Tuple.t -> Tuple.t -> int) ->
  Operator.t
(** Rows ranked [lo..hi] (1-based, rank 1 = best score, best first) via the
    order-statistic index: one counted descent plus a window-sized walk of
    the leaf chain, O(log n + window). Duplicate scores share the block's
    minimum rank; [tie_cmp] orders block members canonically. NaN-scored
    rows are never ranked. [dense] (default false) switches to dense
    ranking: distinct scores numbered consecutively, whole tie blocks kept
    (O(hi log n + output) block walk, see {!Storage.Rank_index}). *)

val rank_window_sort :
  ?stats:Exec_stats.t ->
  ?dense:bool ->
  Catalog.table_info ->
  score:Expr.t ->
  lo:int ->
  hi:int ->
  tie_cmp:(Tuple.t -> Tuple.t -> int) ->
  Operator.t
(** Same window semantics without an index: drain the heap, sort by [score]
    descending (ties by [tie_cmp], NaN dropped), slice — competition or
    dense per [dense]. Blocking. *)
