open Relalg
open Storage

type budget = {
  pool : Buffer_pool.t;
  memory_tuples : int;
  tuples_per_page : int;
  fan_in : int;
}

let budget ?(memory_tuples = 10_000) ?(tuples_per_page = 50) ?(fan_in = 8) pool =
  {
    pool;
    memory_tuples = max 2 memory_tuples;
    tuples_per_page = max 1 tuples_per_page;
    fan_in = max 2 fan_in;
  }

(* A run is either resident (small inputs) or a spilled heap file. *)
type run =
  | Mem of Tuple.t list
  | Spilled of Heap_file.t

let spill b schema tuples =
  let hf = Heap_file.create ~tuples_per_page:b.tuples_per_page b.pool schema in
  Heap_file.load hf tuples;
  Buffer_pool.flush b.pool;
  Spilled hf

let run_cursor = function
  | Mem tuples ->
      let rest = ref tuples in
      fun () ->
        (match !rest with
        | [] -> None
        | tu :: tl ->
            rest := tl;
            Some tu)
  | Spilled hf -> Heap_file.scan hf

(* Merge a batch of runs into one, spilling the result. *)
let merge_batch b schema cmp runs =
  let cursors = List.map run_cursor runs in
  let heap =
    Rkutil.Heap.create ~cmp:(fun (t1, _) (t2, _) -> cmp t1 t2)
  in
  List.iteri
    (fun i cur -> match cur () with Some tu -> Rkutil.Heap.push heap (tu, i) | None -> ())
    cursors;
  let cursor_arr = Array.of_list cursors in
  let out = Heap_file.create ~tuples_per_page:b.tuples_per_page b.pool schema in
  let rec drain () =
    match Rkutil.Heap.pop heap with
    | None -> ()
    | Some (tu, i) ->
        ignore (Heap_file.append out tu);
        (match cursor_arr.(i) () with
        | Some tu' -> Rkutil.Heap.push heap (tu', i)
        | None -> ());
        drain ()
  in
  drain ();
  Buffer_pool.flush b.pool;
  Spilled out

let rec merge_all b schema cmp runs =
  match runs with
  | [] -> Mem []
  | [ r ] -> r
  | _ ->
      let rec batches acc cur n = function
        | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
        | r :: rest ->
            if n = b.fan_in then batches (List.rev cur :: acc) [ r ] 1 rest
            else batches acc (r :: cur) (n + 1) rest
      in
      let groups = batches [] [] 0 runs in
      let merged =
        List.map
          (function [ r ] -> r | group -> merge_batch b schema cmp group)
          groups
      in
      merge_all b schema cmp merged

let sort_input b stats cmp (op : Operator.t) =
  op.open_ ();
  let runs = ref [] in
  let batch = ref [] in
  let batch_size = ref 0 in
  let flush_batch ~force_spill =
    if !batch_size > 0 then begin
      let sorted = List.stable_sort cmp (List.rev !batch) in
      let run =
        if force_spill then spill b op.schema sorted else Mem sorted
      in
      runs := run :: !runs;
      batch := [];
      batch_size := 0
    end
  in
  let rec consume () =
    match op.next () with
    | Some tu ->
        Exec_stats.bump_depth stats 0;
        batch := tu :: !batch;
        incr batch_size;
        Exec_stats.note_buffer stats !batch_size;
        if !batch_size >= b.memory_tuples then flush_batch ~force_spill:true;
        consume ()
    | None -> ()
  in
  consume ();
  op.close ();
  (* The final partial batch only needs spilling if other runs exist. *)
  let have_spilled = !runs <> [] in
  flush_batch ~force_spill:have_spilled;
  merge_all b op.schema cmp (List.rev !runs)

let by_cmp ?stats b ~cmp (op : Operator.t) : Operator.t =
  let stats = match stats with Some s -> s | None -> Exec_stats.create 1 in
  let cursor = ref (fun () -> None) in
  {
    schema = op.schema;
    open_ =
      (fun () ->
        Exec_stats.reset stats;
        cursor := run_cursor (sort_input b stats cmp op));
    next =
      (fun () ->
        match !cursor () with
        | Some tu ->
            Exec_stats.bump_emitted stats;
            Some tu
        | None -> None);
    close = (fun () -> cursor := fun () -> None);
  }

let by_expr ?stats b ?(desc = false) expr (op : Operator.t) : Operator.t =
  let f = Expr.compile_float op.schema expr in
  let cmp t1 t2 =
    let c = Float.compare (f t1) (f t2) in
    if desc then -c else c
  in
  by_cmp ?stats b ~cmp op

let scored_desc ?stats b expr (op : Operator.t) : Operator.scored =
  let sorted = by_expr ?stats b ~desc:true expr op in
  let score = Expr.compile_float op.schema expr in
  Operator.with_score score sorted
