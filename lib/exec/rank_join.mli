(** Rank-join operators: HRJN and NRJN (Section 2.2 of the paper).

    Both join their inputs while {e progressively} producing join results in
    non-increasing combined-score order, stopping early once the reported
    results are guaranteed final by the threshold bound. Both require a
    monotone combining function.

    Instrumentation exposes exactly the quantities the paper's estimation
    model predicts, through the shared {!Exec_stats.t} record (input 0 is
    the left/outer side, input 1 the right/inner): the {e depth} consumed
    from each input (Figures 13-14) and the high-water mark of the internal
    result buffer (Figure 15). *)

open Relalg

type input = {
  stream : Operator.scored;  (** Sorted access: non-increasing scores. *)
  key : Tuple.t -> Value.t;  (** Equi-join key extraction. *)
}

type polling =
  | Alternate
  | Adaptive
      (** Poll the side whose last score is higher (it contributes the larger
          threshold term). *)
  | Ratio of float
      (** Keep [left_depth / right_depth] near the given target — used by the
          optimizer to steer the operator toward the depth-model's optimal
          (possibly asymmetric) consumption, cf. Section 4.3. *)

val hrjn :
  ?stats:Exec_stats.t ->
  ?polling:polling ->
  combine:(float -> float -> float) ->
  left:input ->
  right:input ->
  unit ->
  Operator.scored * Exec_stats.t
(** Hash rank-join: symmetric hash tables over the tuples seen so far plus a
    priority queue of buffered results; a result is reported once its
    combined score is at least the threshold
    [max (f(lastL, topR), f(topL, lastR))]. When [stats] is supplied (e.g. a
    metrics-registry record) the operator reports into it and returns it;
    it must have been created for 2 inputs. *)

val nrjn :
  ?stats:Exec_stats.t ->
  combine:(float -> float -> float) ->
  pred:Expr.t ->
  outer:Operator.scored ->
  inner:Operator.t ->
  inner_score:(Tuple.t -> float) ->
  unit ->
  Operator.scored * Exec_stats.t
(** Nested-loops rank-join: the outer input must provide sorted access; the
    inner is fully re-scanned per outer tuple under an arbitrary join
    predicate (input 1's depth reports the deepest inner pass). State is
    only the priority queue; the threshold is [f(last_outer, top_inner)]. *)
