open Relalg

let filter ?stats pred (op : Operator.t) : Operator.t =
  let stats = match stats with Some s -> s | None -> Exec_stats.create 1 in
  let f = Expr.compile_bool op.schema pred in
  let rec next () =
    match op.next () with
    | None -> None
    | Some tu ->
        Exec_stats.bump_depth stats 0;
        if f tu then begin
          Exec_stats.bump_emitted stats;
          Some tu
        end
        else next ()
  in
  {
    op with
    open_ =
      (fun () ->
        Exec_stats.reset stats;
        op.open_ ());
    next;
  }

let project cols (op : Operator.t) : Operator.t =
  let idxs =
    List.map
      (fun (relation, name) -> Schema.index_of_exn op.schema ?relation name)
      cols
  in
  let schema = Schema.project op.schema idxs in
  Operator.map_schema schema (fun tu -> Tuple.project tu idxs) op

let project_exprs targets (op : Operator.t) : Operator.t =
  let schema = Schema.of_columns (List.map snd targets) in
  let fns = List.map (fun (e, _) -> Expr.compile op.schema e) targets in
  Operator.map_schema schema
    (fun tu -> Array.of_list (List.map (fun f -> f tu) fns))
    op

let limit ?stats n (op : Operator.t) : Operator.t =
  let stats = match stats with Some s -> s | None -> Exec_stats.create 1 in
  let seen = ref 0 in
  {
    op with
    open_ =
      (fun () ->
        Exec_stats.reset stats;
        seen := 0;
        op.open_ ());
    next =
      (fun () ->
        if !seen >= n then None
        else
          match op.next () with
          | Some tu ->
              Exec_stats.bump_depth stats 0;
              Exec_stats.bump_emitted stats;
              incr seen;
              Some tu
          | None -> None);
  }

let scored_limit n (s : Operator.scored) : Operator.scored =
  let seen = ref 0 in
  {
    s with
    s_open =
      (fun () ->
        seen := 0;
        s.s_open ());
    s_next =
      (fun () ->
        if !seen >= n then None
        else
          match s.s_next () with
          | Some e ->
              incr seen;
              Some e
          | None -> None);
  }
