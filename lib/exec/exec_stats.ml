type t = {
  mutable per_input : int array;
  mutable buffer_max : int;
  mutable emitted : int;
}

let create m = { per_input = Array.make (max m 0) 0; buffer_max = 0; emitted = 0 }

let reset t =
  Array.fill t.per_input 0 (Array.length t.per_input) 0;
  t.buffer_max <- 0;
  t.emitted <- 0

let bump_depth t i = t.per_input.(i) <- t.per_input.(i) + 1

let note_depth t i n = if n > t.per_input.(i) then t.per_input.(i) <- n

let add_depth t i n = t.per_input.(i) <- t.per_input.(i) + n

let bump_emitted t = t.emitted <- t.emitted + 1

let add_emitted t n = t.emitted <- t.emitted + n

let note_buffer t n = if n > t.buffer_max then t.buffer_max <- n

let depth t i = t.per_input.(i)

let depths t = Array.copy t.per_input

let inputs t = Array.length t.per_input

let total_in t = Array.fold_left ( + ) 0 t.per_input

let left_depth t = t.per_input.(0)

let right_depth t = t.per_input.(1)

let buffer_max t = t.buffer_max

let emitted t = t.emitted

let pp fmt t =
  Format.fprintf fmt "in=[%s] out=%d buf=%d"
    (String.concat ";" (Array.to_list (Array.map string_of_int t.per_input)))
    t.emitted t.buffer_max
