type node = {
  id : int;
  label : string;
  stats : Exec_stats.t;
  io : Storage.Io_stats.t;
}

type t = {
  root_io : Storage.Io_stats.t;
  mutable rev_nodes : node list;
  mutable next_id : int;
}

let create root_io = { root_io; rev_nodes = []; next_id = 0 }

let root_io t = t.root_io

let nodes t = List.rev t.rev_nodes

let find t id = List.find_opt (fun n -> n.id = id) t.rev_nodes

let attach t ?stats ~label ~inputs () =
  let stats = match stats with Some s -> s | None -> Exec_stats.create inputs in
  let node = { id = t.next_id; label; stats; io = Storage.Io_stats.create () } in
  t.next_id <- t.next_id + 1;
  t.rev_nodes <- node :: t.rev_nodes;
  node

let scoped t node f = Storage.Io_stats.with_sink t.root_io node.io f

(* IO attribution only: every charge made while one of this operator's entry
   points is on the stack lands in [node.io] — unless a child operator's own
   wrapper is active below it, which re-points the sink for the duration of
   the child's call (innermost wins, exactly "the operator that caused
   it"). *)
let scope t node (op : Operator.t) : Operator.t =
  {
    op with
    open_ = (fun () -> scoped t node op.open_);
    next = (fun () -> scoped t node op.next);
    close = (fun () -> scoped t node op.close);
  }

let scope_scored t node (s : Operator.scored) : Operator.scored =
  {
    s with
    s_open = (fun () -> scoped t node s.s_open);
    s_next = (fun () -> scoped t node s.s_next);
    s_close = (fun () -> scoped t node s.s_close);
  }

(* IO attribution plus tuple accounting, for operators that do not report
   into an [Exec_stats.t] themselves. *)
let observe t node (op : Operator.t) : Operator.t =
  {
    op with
    open_ =
      (fun () ->
        Exec_stats.reset node.stats;
        scoped t node op.open_);
    next =
      (fun () ->
        match scoped t node op.next with
        | Some tu ->
            Exec_stats.bump_emitted node.stats;
            Some tu
        | None -> None);
    close = (fun () -> scoped t node op.close);
  }

let pp_node fmt node =
  Format.fprintf fmt "#%d %s: %a; io: %a" node.id node.label Exec_stats.pp
    node.stats Storage.Io_stats.pp
    (Storage.Io_stats.snapshot node.io)

let pp fmt t =
  List.iter (fun n -> Format.fprintf fmt "%a@." pp_node n) (nodes t)

(* One JSON object per operator — the bench harness prints these as the
   per-operator rows of its BENCH JSON output. *)
let node_to_json node =
  let io = Storage.Io_stats.snapshot node.io in
  Printf.sprintf
    "{\"id\":%d,\"label\":%S,\"depths\":[%s],\"emitted\":%d,\"buffer_max\":%d,\
     \"page_reads\":%d,\"page_writes\":%d,\"pool_hits\":%d,\
     \"index_node_reads\":%d,\"tuples_read\":%d}"
    node.id node.label
    (String.concat ","
       (Array.to_list (Array.map string_of_int (Exec_stats.depths node.stats))))
    (Exec_stats.emitted node.stats)
    (Exec_stats.buffer_max node.stats)
    io.Storage.Io_stats.page_reads io.Storage.Io_stats.page_writes
    io.Storage.Io_stats.pool_hits io.Storage.Io_stats.index_node_reads
    io.Storage.Io_stats.tuples_read
