(** External merge sort.

    A blocking operator: on [open_] it consumes its whole input, building
    sorted runs bounded by the memory budget. Runs are spilled to temporary
    heap files through the buffer pool, so spill and merge I/O show up in the
    measured {!Storage.Io_stats} — matching the cost model's external-sort
    formula. When the input fits in memory no I/O is charged. *)

open Relalg
open Storage

type budget = {
  pool : Buffer_pool.t;  (** Pool used for run spill files. *)
  memory_tuples : int;  (** Max tuples held in memory while sorting. *)
  tuples_per_page : int;
  fan_in : int;  (** Max runs merged per pass. *)
}

val budget :
  ?memory_tuples:int -> ?tuples_per_page:int -> ?fan_in:int -> Buffer_pool.t -> budget
(** Defaults: 10_000 in-memory tuples, 50 tuples/page, fan-in 8. *)

val by_cmp :
  ?stats:Exec_stats.t -> budget -> cmp:(Tuple.t -> Tuple.t -> int) -> Operator.t -> Operator.t
(** Sort under an arbitrary total order. [stats] records tuples consumed
    (input 0), the in-memory batch high-water mark, and tuples emitted. *)

val by_expr :
  ?stats:Exec_stats.t -> budget -> ?desc:bool -> Expr.t -> Operator.t -> Operator.t
(** Sort on the numeric value of an expression (ascending by default). *)

val scored_desc : ?stats:Exec_stats.t -> budget -> Expr.t -> Operator.t -> Operator.scored
(** Sort descending on a score expression and emit a scored stream — the
    "glued sort" enforcer that makes any subplan usable as a rank-join
    input or as a final ranking producer. *)
