(** Tuple-at-a-time operators: selection, projection, limit. *)

open Relalg

val filter : ?stats:Exec_stats.t -> Expr.t -> Operator.t -> Operator.t
(** [stats] (reset on open) counts tuples examined (input 0) and passed
    ([emitted]). *)

val project : (string option * string) list -> Operator.t -> Operator.t
(** Keep the given (relation, name) columns, in order.
    @raise Not_found when a column is absent from the input schema. *)

val project_exprs : (Expr.t * Schema.column) list -> Operator.t -> Operator.t
(** Generalised projection: each output column is a computed expression. *)

val limit : ?stats:Exec_stats.t -> int -> Operator.t -> Operator.t

val scored_limit : int -> Operator.scored -> Operator.scored
