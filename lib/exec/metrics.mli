(** Per-query execution metrics registry.

    One registry is created per instrumented run; every physical operator in
    the compiled plan attaches a {!node} holding its {!Exec_stats.t} (tuples
    in per input, tuples out, buffer high-water mark) and a private
    {!Storage.Io_stats.t} that receives the page reads/writes/pool hits the
    operator caused. Attribution works by sink-scoping: while an operator's
    [open_]/[next]/[close] runs, the query's root I/O counters mirror every
    charge into that operator's node; a nested operator call re-points the
    sink for its own duration, so the innermost active operator is charged.

    [EXPLAIN ANALYZE] renders these nodes next to the optimizer's
    predictions; the bench harness serialises them as per-operator JSON
    rows. *)

type node = {
  id : int;  (** Registration order, 0-based. *)
  label : string;  (** One-line operator description. *)
  stats : Exec_stats.t;
  io : Storage.Io_stats.t;  (** I/O attributed to this operator alone. *)
}

type t

val create : Storage.Io_stats.t -> t
(** [create root] — a registry attributing charges made against [root] (the
    catalog's counters). *)

val root_io : t -> Storage.Io_stats.t

val nodes : t -> node list
(** In registration order. *)

val find : t -> int -> node option

val attach : t -> ?stats:Exec_stats.t -> label:string -> inputs:int -> unit -> node
(** Register an operator. Pass [stats] when the operator maintains its own
    record (rank joins); otherwise a fresh one with [inputs] inputs is
    created. *)

val scoped : t -> node -> (unit -> 'a) -> 'a
(** [scoped t node f] — run [f] with the registry's root I/O sink pointed at
    [node]'s private counters (innermost scope wins). The building block for
    wrapping non-[Operator.t] execution shapes (batched operators, fused
    sinks) with the same attribution as {!scope}. *)

val scope : t -> node -> Operator.t -> Operator.t
(** Wrap an operator that already reports into its node's [stats]: only I/O
    sink-scoping is added. *)

val scope_scored : t -> node -> Operator.scored -> Operator.scored

val observe : t -> node -> Operator.t -> Operator.t
(** Wrap an operator with no self-reporting: I/O sink-scoping plus
    emitted-tuple counting (and a stats reset on open). *)

val pp_node : Format.formatter -> node -> unit

val pp : Format.formatter -> t -> unit

val node_to_json : node -> string
(** One flat JSON object: id, label, per-input depths, emitted, buffer
    high-water mark, and the attributed I/O counters. *)
