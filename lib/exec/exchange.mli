(** Morsel-driven exchange operators (Leis et al., SIGMOD 2014).

    A parallelizable subplan is described as a {!source}: [n_morsels]
    independent units whose outputs, concatenated in morsel-index order,
    equal the serial plan's output. Worker "pumps" on the shared
    {!Rkutil.Task_pool} claim morsel indices from one cursor and deposit
    results into slots; the gather drains slots in morsel order, so the
    emitted sequence is independent of degree, scheduling, and timing.

    The bounded in-flight window doubles as the SPSC buffer that lets a
    sequential rank join pull from a parallel subplan while keeping
    early-out: a consumer that stops cancels in-flight morsels at their
    next cancellation check, and {e close joins the running pumps}.

    The consumer helps: when the morsel it needs is unclaimed it runs
    morsels itself instead of waiting on pool scheduling, so a saturated
    pool (including the query's own worker) costs parallelism, never
    progress. *)

open Relalg

type prepared = {
  n_morsels : int;
  run_morsel : int -> Tuple.t list;
      (** Domain-safe for distinct morsels; output must not depend on
          the executing domain. *)
}

type source = {
  src_schema : Schema.t;
  src_prepare : cancel:(unit -> bool) -> prepared;
      (** Build shared read-only state and the morsel closures. [cancel]
          flips when the consumer stops early; pipelines should truncate
          (their output is discarded). *)
}

val gather :
  ?pool:Rkutil.Task_pool.t ->
  ?stats:Exec_stats.t ->
  dop:int ->
  source ->
  Operator.t
(** Streaming order-preserving exchange. [stats] wants [dop + 1] input
    slots: per-pump tuple counts in 0..dop-1, consumer-helped tuples in
    slot [dop]; the buffer high-water mark is the filled-slot count. *)

val top_n :
  ?pool:Rkutil.Task_pool.t ->
  ?stats:Exec_stats.t ->
  dop:int ->
  k:int ->
  score:(Tuple.t -> float) ->
  source ->
  Operator.t
(** Parallel top-N: each morsel reduces to its local top-[k] (stable
    descending by score, NaN last — the [Sort.by_expr ~desc:true]
    comparator), the gather merges in morsel order with a stable sort and
    keeps [k]. Output equals the serial [Top_k (Sort ...)] exactly. *)

val partitioned_build :
  ?pool:Rkutil.Task_pool.t ->
  dop:int ->
  partitions:int ->
  key:(Tuple.t -> Value.t) ->
  n:int ->
  run:(int -> Tuple.t list) ->
  cancel:bool Atomic.t ->
  unit ->
  Value.t -> Tuple.t list
(** Parallel hash-join build: phase 1 scans build-side morsels in
    parallel, pre-splitting each by partition; phase 2 builds one hash
    table per partition (one task each). Chains are assembled in morsel
    order, so probe results match a serial build over the same input
    sequence. Returns the probe function (match order = arrival order,
    as in {!Join.hash}). Blocks until the build completes. *)
