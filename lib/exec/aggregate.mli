(** Hash aggregation (GROUP BY).

    A blocking operator completing the classic operator set the paper's
    optimizer setting assumes ("top-k queries often involve other query
    operations such as join, selection and grouping"); grouping columns are
    also a source of interesting orders in System R. *)

open Relalg

type agg_fn =
  | Count  (** Row count. *)
  | Sum of Expr.t
  | Min of Expr.t
  | Max of Expr.t
  | Avg of Expr.t

type spec = {
  fn : agg_fn;
  name : string;  (** Output column name. *)
}

val hash_group_by :
  ?stats:Exec_stats.t ->
  group_by:(Expr.t * Schema.column) list ->
  aggregates:spec list ->
  Operator.t ->
  Operator.t
(** Output schema: the grouping columns (with the given names/types) followed
    by one float/int column per aggregate. Groups stream out in unspecified
    order. With an empty [group_by], emits exactly one row (global
    aggregates), even over an empty input. [stats] records input tuples
    (input 0), the group-table high-water mark, and rows emitted. *)
