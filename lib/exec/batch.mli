(** Columnar tuple batches with selection vectors — the unit of work of the
    vectorized executor.

    A batch holds up to {!default_rows} physical rows plus a selection
    vector; filters compact the selection in place, and per-column unboxed
    [float array] views are materialized lazily for the vectorized kernels.
    The kernels are bit-identical to the scalar interpreter
    ({!Relalg.Expr.compile_bool} / [compile_float]): they only engage when
    every referenced column is all-[Float] in the batch (the regime where
    the scalar interpreter provably takes its float path, with the same
    per-element operation order), and otherwise fall back to the scalar
    closure applied in a tight per-row loop. NaN flows through arithmetic
    unchanged and compares under [Float.compare] (total order), exactly as
    in the scalar path. *)

open Relalg

val default_rows : int
(** Rows per batch (1024). *)

type t

val of_rows : Schema.t -> Tuple.t array -> t
(** Batch over [rows] with everything selected. The array is owned by the
    batch afterwards. *)

val of_list : Schema.t -> Tuple.t list -> t

val schema : t -> Schema.t

val length : t -> int
(** Number of {e selected} rows. *)

val get : t -> int -> Tuple.t
(** [get b j] — the [j]-th selected row, [0 <= j < length b]. *)

val iter : (Tuple.t -> unit) -> t -> unit
(** Selected rows in selection order. *)

val to_list : t -> Tuple.t list

val float_view : t -> int -> float array option
(** The lazily-built unboxed view of column [c]: [Some] iff every physical
    value in the column is a [Value.Float]. Cached per batch. *)

val pred_kernel : Schema.t -> Expr.t -> t -> unit
(** [pred_kernel schema pred] compiles [pred] once into a kernel that
    refines a batch's selection in place, keeping exactly the rows the
    scalar [Expr.compile_bool schema pred] would keep. *)

val score_kernel : Schema.t -> Expr.t -> t -> float array
(** [score_kernel schema e] compiles [e] once into a kernel returning the
    scores of the selected rows (dense, index-aligned with the selection),
    bit-identical to [Expr.compile_float schema e] per row. *)
