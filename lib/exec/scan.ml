open Relalg
open Storage

let stats_or stats = match stats with Some s -> s | None -> Exec_stats.create 0

let heap ?stats (info : Catalog.table_info) : Operator.t =
  let stats = stats_or stats in
  let cursor = ref (fun () -> None) in
  {
    schema = info.tb_schema;
    open_ =
      (fun () ->
        Exec_stats.reset stats;
        cursor := Heap_file.scan info.tb_heap);
    next =
      (fun () ->
        match !cursor () with
        | Some tu ->
            Exec_stats.bump_emitted stats;
            Some tu
        | None -> None);
    close = (fun () -> cursor := fun () -> None);
  }

let heap_range ?stats (info : Catalog.table_info) ~lo ~hi : Operator.t =
  let stats = stats_or stats in
  let cursor = ref (fun () -> None) in
  {
    schema = info.tb_schema;
    open_ =
      (fun () ->
        Exec_stats.reset stats;
        cursor := Heap_file.scan_pages info.tb_heap ~lo ~hi);
    next =
      (fun () ->
        match !cursor () with
        | Some tu ->
            Exec_stats.bump_emitted stats;
            Some tu
        | None -> None);
    close = (fun () -> cursor := fun () -> None);
  }

let index_with ?stats ~direction catalog (ix : Catalog.index_info) : Operator.t =
  let stats = stats_or stats in
  let info = Catalog.table catalog ix.Catalog.ix_table in
  let cursor = ref (fun () -> None) in
  let start () =
    match direction with
    | `Asc -> Btree.scan_asc ix.ix_btree
    | `Desc -> Btree.scan_desc ix.ix_btree
  in
  {
    schema = info.tb_schema;
    open_ =
      (fun () ->
        Exec_stats.reset stats;
        cursor := start ());
    next =
      (fun () ->
        match !cursor () with
        | Some payload ->
            Exec_stats.bump_emitted stats;
            Some (Catalog.index_payload_to_tuple catalog ix payload)
        | None -> None);
    close = (fun () -> cursor := fun () -> None);
  }

let index_asc ?stats catalog ix = index_with ?stats ~direction:`Asc catalog ix

let index_desc ?stats catalog ix = index_with ?stats ~direction:`Desc catalog ix

let index_desc_scored ?stats catalog (ix : Catalog.index_info) : Operator.scored =
  let info = Catalog.table catalog ix.Catalog.ix_table in
  let op = index_desc ?stats catalog ix in
  let score = Expr.compile_float info.tb_schema ix.ix_key in
  Operator.with_score score op

let index_probe catalog ix key = Catalog.index_lookup catalog ix key

(* -- By-rank windows (leaderboard access paths) ------------------------- *)

let rank_window ?stats ?(dense = false) catalog (ix : Catalog.index_info) ~lo
    ~hi ~tie_cmp : Operator.t =
  let stats = stats_or stats in
  let info = Catalog.table catalog ix.Catalog.ix_table in
  let window = ref [] in
  {
    schema = info.tb_schema;
    open_ =
      (fun () ->
        Exec_stats.reset stats;
        let select =
          if dense then Rank_index.select_dense_rank else Rank_index.select_rank
        in
        window :=
          select ix.ix_btree ~lo ~hi
            ~resolve:(Catalog.index_payload_to_tuple catalog ix)
            ~tie_cmp);
    next =
      (fun () ->
        match !window with
        | (tu, _) :: rest ->
            window := rest;
            Exec_stats.bump_emitted stats;
            Some tu
        | [] -> None);
    close = (fun () -> window := []);
  }

let take n l =
  let rec go n acc = function
    | x :: rest when n > 0 -> go (n - 1) (x :: acc) rest
    | _ -> List.rev acc
  in
  go n [] l

let rec drop n l =
  match l with _ :: rest when n > 0 -> drop (n - 1) rest | _ -> l

(* Index-less fallback: drain the heap, sort by score descending with the
   canonical tie order, slice the requested rank window. Blocking, but it
   computes the same ranks (NaN scores dropped) as the counted descent. *)
let rank_window_sort ?stats ?(dense = false) (info : Catalog.table_info) ~score
    ~lo ~hi ~tie_cmp : Operator.t =
  let stats = stats_or stats in
  let scoref = Expr.compile_float info.tb_schema score in
  let window = ref [] in
  {
    schema = info.tb_schema;
    open_ =
      (fun () ->
        Exec_stats.reset stats;
        let scored =
          List.filter_map
            (fun tu ->
              let s = scoref tu in
              if Float.is_nan s then None else Some (tu, s))
            (Heap_file.to_list info.tb_heap)
        in
        let sorted =
          List.stable_sort
            (fun (t1, s1) (t2, s2) ->
              match Float.compare s2 s1 with 0 -> tie_cmp t1 t2 | c -> c)
            scored
        in
        let lo = max 1 lo in
        window :=
          if hi < lo then []
          else if not dense then
            sorted |> drop (lo - 1) |> take (hi - lo + 1)
          else begin
            (* Dense slicing: block i of the descending distinct-score run
               has dense rank i; the window keeps whole blocks. *)
            let _, _, rev =
              List.fold_left
                (fun (d, prev, acc) ((_, s) as e) ->
                  let d =
                    match prev with
                    | Some p when Float.compare p s = 0 -> d
                    | _ -> d + 1
                  in
                  let acc = if d >= lo && d <= hi then e :: acc else acc in
                  (d, Some s, acc))
                (0, None, []) sorted
            in
            List.rev rev
          end);
    next =
      (fun () ->
        match !window with
        | (tu, _) :: rest ->
            window := rest;
            Exec_stats.bump_emitted stats;
            Some tu
        | [] -> None);
    close = (fun () -> window := []);
  }
