open Relalg
open Storage

let stats_or stats = match stats with Some s -> s | None -> Exec_stats.create 0

let heap ?stats (info : Catalog.table_info) : Operator.t =
  let stats = stats_or stats in
  let cursor = ref (fun () -> None) in
  {
    schema = info.tb_schema;
    open_ =
      (fun () ->
        Exec_stats.reset stats;
        cursor := Heap_file.scan info.tb_heap);
    next =
      (fun () ->
        match !cursor () with
        | Some tu ->
            Exec_stats.bump_emitted stats;
            Some tu
        | None -> None);
    close = (fun () -> cursor := fun () -> None);
  }

let heap_range ?stats (info : Catalog.table_info) ~lo ~hi : Operator.t =
  let stats = stats_or stats in
  let cursor = ref (fun () -> None) in
  {
    schema = info.tb_schema;
    open_ =
      (fun () ->
        Exec_stats.reset stats;
        cursor := Heap_file.scan_pages info.tb_heap ~lo ~hi);
    next =
      (fun () ->
        match !cursor () with
        | Some tu ->
            Exec_stats.bump_emitted stats;
            Some tu
        | None -> None);
    close = (fun () -> cursor := fun () -> None);
  }

let index_with ?stats ~direction catalog (ix : Catalog.index_info) : Operator.t =
  let stats = stats_or stats in
  let info = Catalog.table catalog ix.Catalog.ix_table in
  let cursor = ref (fun () -> None) in
  let start () =
    match direction with
    | `Asc -> Btree.scan_asc ix.ix_btree
    | `Desc -> Btree.scan_desc ix.ix_btree
  in
  {
    schema = info.tb_schema;
    open_ =
      (fun () ->
        Exec_stats.reset stats;
        cursor := start ());
    next =
      (fun () ->
        match !cursor () with
        | Some payload ->
            Exec_stats.bump_emitted stats;
            Some (Catalog.index_payload_to_tuple catalog ix payload)
        | None -> None);
    close = (fun () -> cursor := fun () -> None);
  }

let index_asc ?stats catalog ix = index_with ?stats ~direction:`Asc catalog ix

let index_desc ?stats catalog ix = index_with ?stats ~direction:`Desc catalog ix

let index_desc_scored ?stats catalog (ix : Catalog.index_info) : Operator.scored =
  let info = Catalog.table catalog ix.Catalog.ix_table in
  let op = index_desc ?stats catalog ix in
  let score = Expr.compile_float info.tb_schema ix.ix_key in
  Operator.with_score score op

let index_probe catalog ix key = Catalog.index_lookup catalog ix key
