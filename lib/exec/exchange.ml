open Relalg

(* Morsel-driven exchange (Leis et al., SIGMOD 2014), adapted to the
   Volcano pull executor.

   A [source] describes a parallelizable subplan as [n_morsels]
   independent units of work; [run_morsel i] produces morsel [i]'s full
   output. Workers ("pumps") claim morsel indices from a shared cursor —
   work-stealing degenerates to claim-stealing because every worker
   steals from the same queue — and deposit each result into a slot
   array. The gather drains slots in morsel-index order, which makes the
   output sequence a pure function of the plan and the data: scheduling,
   degree, and timing cannot reorder it. Determinism costs only a bounded
   reorder window ([window] morsels may be in flight past the consumer's
   cursor); the window doubles as the bounded buffer that lets a
   sequential rank join pull from a parallel subplan with early-out — a
   consumer that stops (close, or a Top-k that saw enough) cancels
   in-flight morsels at their next cancellation check.

   Deadlock discipline: the consumer never waits on pool *scheduling*.
   If the slot it needs is unclaimed it claims and runs morsels itself
   (the "helping" consumer), so a pool saturated with other queries —
   including the query that owns this consumer — only reduces
   parallelism, never progress. The consumer blocks only on morsels a
   pump is actively running, and those always terminate. *)

type prepared = {
  n_morsels : int;
  run_morsel : int -> Tuple.t list;
      (** Must be safe to call from any domain, for distinct morsels
          concurrently; morsel outputs must not depend on which domain
          runs them. *)
}

type source = {
  src_schema : Schema.t;
  src_prepare : cancel:(unit -> bool) -> prepared;
      (** Build shared read-only state (hash tables, materialized inner
          sides) and the morsel closures. [cancel] flips to [true] when
          the consumer stops early; morsel pipelines should then truncate
          — their output is discarded. *)
}

(* ------------------------------------------------------------------ *)
(* Generic ordered gather over morsel payloads.                        *)

type 'a gather = {
  g_n : int;
  g_run : int -> 'a;
  g_weight : 'a -> int;
  g_slots : 'a option array;
  mutable g_next_claim : int;
  mutable g_consumed : int;
  mutable g_filled : int;  (* slots holding a result not yet consumed *)
  g_window : int;
  g_cancelled : bool Atomic.t;
  mutable g_failure : exn option;
  mutable g_live_pumps : int;
  g_lock : Rkutil.Latch.t;
  g_slot_ready : Condition.t;  (* slot filled, pump exited, or cancel *)
  g_window_open : Condition.t;  (* consumer advanced, or cancel *)
  g_stats : Exec_stats.t;  (* inputs 0..dop-1 = pumps, dop = consumer *)
  g_dop : int;
}

let cancelled g = Atomic.get g.g_cancelled

(* Under g_lock. *)
let record g ~worker payload =
  Exec_stats.add_depth g.g_stats worker (g.g_weight payload)

(* Under g_lock. *)
let fill g ~worker i payload =
  g.g_slots.(i) <- Some payload;
  g.g_filled <- g.g_filled + 1;
  Exec_stats.note_buffer g.g_stats g.g_filled;
  record g ~worker payload;
  Condition.broadcast g.g_slot_ready

(* Under g_lock. *)
let fail g e =
  if g.g_failure = None then g.g_failure <- Some e;
  Atomic.set g.g_cancelled true;
  Condition.broadcast g.g_slot_ready;
  Condition.broadcast g.g_window_open

let rec pump g w =
  Rkutil.Latch.lock g.g_lock;
  let rec claim () =
    if cancelled g || g.g_next_claim >= g.g_n then None
    else if g.g_next_claim >= g.g_consumed + g.g_window then begin
      Rkutil.Latch.wait g.g_window_open g.g_lock;
      claim ()
    end
    else begin
      let i = g.g_next_claim in
      g.g_next_claim <- i + 1;
      Some i
    end
  in
  match claim () with
  | None ->
      g.g_live_pumps <- g.g_live_pumps - 1;
      Condition.broadcast g.g_slot_ready;
      Rkutil.Latch.unlock g.g_lock
  | Some i ->
      Rkutil.Latch.unlock g.g_lock;
      (match g.g_run i with
      | payload ->
          Rkutil.Latch.protect g.g_lock (fun () -> fill g ~worker:w i payload)
      | exception e -> Rkutil.Latch.protect g.g_lock (fun () -> fail g e));
      pump g w

let start ?pool ~dop ~window ~stats ~weight ~n ~run ~cancel_flag () =
  let g =
    {
      g_n = n;
      g_run = run;
      g_weight = weight;
      g_slots = Array.make (max 1 n) None;
      g_next_claim = 0;
      g_consumed = 0;
      g_filled = 0;
      g_window = max 1 window;
      g_cancelled = cancel_flag;
      g_failure = None;
      g_live_pumps = 0;
      g_lock = Rkutil.Latch.create ~name:"exec.exchange.gather" ~rank:65 ();
      g_slot_ready = Condition.create ();
      g_window_open = Condition.create ();
      g_stats = stats;
      g_dop = max 1 dop;
    }
  in
  (match pool with
  | None -> ()
  | Some pool ->
      for w = 0 to min dop (Rkutil.Task_pool.size pool) - 1 do
        (* live_pumps is incremented when the pump actually starts: a job
           still queued behind a saturated pool must not be waited on (it
           may be queued behind the very consumer that would wait). *)
        ignore
          (Rkutil.Task_pool.submit pool (fun () ->
               let live =
                 Rkutil.Latch.protect g.g_lock (fun () ->
                     if cancelled g then false
                     else begin
                       g.g_live_pumps <- g.g_live_pumps + 1;
                       true
                     end)
               in
               if live then pump g w))
      done);
  g

(* Next morsel payload in morsel-index order; the consumer helps run
   unclaimed morsels rather than wait on pool scheduling. *)
let rec take g =
  Rkutil.Latch.lock g.g_lock;
  let rec loop () =
    match g.g_failure with
    | Some e ->
        Rkutil.Latch.unlock g.g_lock;
        raise e
    | None ->
        if g.g_consumed >= g.g_n then begin
          Rkutil.Latch.unlock g.g_lock;
          None
        end
        else begin
          match g.g_slots.(g.g_consumed) with
          | Some payload ->
              g.g_slots.(g.g_consumed) <- None;
              g.g_filled <- g.g_filled - 1;
              g.g_consumed <- g.g_consumed + 1;
              Condition.broadcast g.g_window_open;
              Rkutil.Latch.unlock g.g_lock;
              Some payload
          | None ->
              if cancelled g then begin
                Rkutil.Latch.unlock g.g_lock;
                None
              end
              else if
                g.g_next_claim < g.g_n
                && g.g_next_claim < g.g_consumed + g.g_window
              then begin
                let i = g.g_next_claim in
                g.g_next_claim <- i + 1;
                Rkutil.Latch.unlock g.g_lock;
                (match g.g_run i with
                | payload ->
                    Rkutil.Latch.protect g.g_lock (fun () ->
                        fill g ~worker:g.g_dop i payload)
                | exception e ->
                    Rkutil.Latch.protect g.g_lock (fun () -> fail g e));
                take g
              end
              else begin
                (* the slot we need was claimed by a pump that is running
                   it right now — it will fill the slot or report failure *)
                Rkutil.Latch.wait g.g_slot_ready g.g_lock;
                loop ()
              end
        end
  in
  loop ()

(* Cancel and join the running pumps. Queued-but-unstarted pump jobs are
   not waited for: when the pool eventually runs them they observe the
   cancel flag and exit without registering. Idempotent. *)
let stop g =
  Atomic.set g.g_cancelled true;
  Rkutil.Latch.lock g.g_lock;
  Condition.broadcast g.g_window_open;
  Condition.broadcast g.g_slot_ready;
  while g.g_live_pumps > 0 do
    Rkutil.Latch.wait g.g_slot_ready g.g_lock
  done;
  Rkutil.Latch.unlock g.g_lock

(* ------------------------------------------------------------------ *)
(* The streaming exchange: parallel producers, ordered gather.         *)

let default_window dop = max 2 (2 * dop)

let gather ?pool ?stats ~dop (src : source) : Operator.t =
  let dop = max 1 dop in
  let stats =
    match stats with Some s -> s | None -> Exec_stats.create (dop + 1)
  in
  let state = ref None in
  let buffer = ref [] in
  let close () =
    (match !state with Some g -> stop g | None -> ());
    state := None;
    buffer := []
  in
  {
    Operator.schema = src.src_schema;
    open_ =
      (fun () ->
        close ();
        Exec_stats.reset stats;
        let cancel_flag = Atomic.make false in
        let p = src.src_prepare ~cancel:(fun () -> Atomic.get cancel_flag) in
        state :=
          Some
            (start ?pool ~dop ~window:(default_window dop) ~stats
               ~weight:List.length ~n:p.n_morsels ~run:p.run_morsel
               ~cancel_flag ()));
    next =
      (fun () ->
        let rec next () =
          match !buffer with
          | tu :: rest ->
              buffer := rest;
              Exec_stats.bump_emitted stats;
              Some tu
          | [] -> (
              match !state with
              | None -> None
              | Some g -> (
                  match take g with
                  | Some payload ->
                      buffer := payload;
                      next ()
                  | None -> None
                  | exception e ->
                      close ();
                      raise e))
        in
        next ());
    close;
  }

(* ------------------------------------------------------------------ *)
(* Parallel top-N: per-morsel local top-k, merged at the gather.       *)

(* Comparator identical to [Sort.by_expr ~desc:true] so the parallel
   operator reproduces the serial Top_k(Sort(..)) order exactly (NaN
   scores sort last under a descending Float.compare). *)
let desc_by_score (_, a) (_, b) = Float.compare b a

let local_top ~k ~score tuples =
  let scored = List.map (fun tu -> (tu, score tu)) tuples in
  let sorted = List.stable_sort desc_by_score scored in
  List.filteri (fun i _ -> i < k) sorted

(* Stable merge of per-morsel top-k lists concatenated in morsel order:
   equal to the first k of a stable descending sort of the whole input,
   i.e. to the serial plan, independent of degree and scheduling. *)
let top_n ?pool ?stats ~dop ~k ~score (src : source) : Operator.t =
  let dop = max 1 dop in
  let stats =
    match stats with Some s -> s | None -> Exec_stats.create (dop + 1)
  in
  let remaining = ref [] in
  let state = ref None in
  let close () =
    (match !state with Some g -> stop g | None -> ());
    state := None;
    remaining := []
  in
  {
    Operator.schema = src.src_schema;
    open_ =
      (fun () ->
        close ();
        Exec_stats.reset stats;
        let cancel_flag = Atomic.make false in
        let p = src.src_prepare ~cancel:(fun () -> Atomic.get cancel_flag) in
        let g =
          start ?pool ~dop
            ~window:(max 1 p.n_morsels) (* no early-out below a full sort *)
            ~stats ~weight:List.length ~n:p.n_morsels
            ~run:(fun i -> local_top ~k ~score (p.run_morsel i))
            ~cancel_flag ()
        in
        state := Some g;
        let parts = ref [] in
        let rec drain () =
          match take g with
          | Some part ->
              parts := part :: !parts;
              drain ()
          | None -> ()
        in
        (match drain () with
        | () -> ()
        | exception e ->
            close ();
            raise e);
        let merged =
          List.stable_sort desc_by_score (List.concat (List.rev !parts))
        in
        remaining := List.filteri (fun i _ -> i < k) merged);
    next =
      (fun () ->
        match !remaining with
        | (tu, _) :: rest ->
            remaining := rest;
            Exec_stats.bump_emitted stats;
            Some tu
        | [] -> None);
    close;
  }

(* ------------------------------------------------------------------ *)
(* Partitioned hash build: parallel scan of the build side, parallel    *)
(* per-partition table construction.                                    *)

module Vtbl = Hashtbl.Make (Value)

let partitioned_build ?pool ~dop ~partitions ~key ~n ~run ~cancel () =
  let dop = max 1 dop in
  let partitions = max 1 partitions in
  let part v = Value.hash v mod partitions in
  (* Phase 1: parallel morsel scan, each morsel pre-split by partition
     (arrival order preserved within each bucket). *)
  let split tuples =
    let buckets = Array.make partitions [] in
    List.iter
      (fun tu ->
        let j = part (key tu) in
        buckets.(j) <- tu :: buckets.(j))
      tuples;
    Array.map List.rev buckets
  in
  let stats = Exec_stats.create (dop + 1) in
  let g =
    start ?pool ~dop ~window:(max 1 n) ~stats
      ~weight:(fun bs -> Array.fold_left (fun a b -> a + List.length b) 0 bs)
      ~n
      ~run:(fun i -> split (run i))
      ~cancel_flag:cancel ()
  in
  let morsels = Array.make (max 1 n) [||] in
  let rec drain i =
    match take g with
    | Some buckets ->
        morsels.(i) <- buckets;
        drain (i + 1)
    | None -> ()
    | exception e ->
        stop g;
        raise e
  in
  drain 0;
  stop g;
  (* Phase 2: one task per partition builds its hash table by walking
     morsels in index order — chain order is scheduling-independent and
     identical to the serial build over the same input sequence. *)
  let tables = Array.init partitions (fun _ -> Vtbl.create 64) in
  let build j =
    let tbl = tables.(j) in
    Array.iter
      (fun buckets ->
        if Array.length buckets > 0 then
          List.iter
            (fun tu ->
              let k = key tu in
              let prev = try Vtbl.find tbl k with Not_found -> [] in
              Vtbl.replace tbl k (tu :: prev))
            buckets.(j))
      morsels;
    (* probe order must match the serial build, which conses and reverses *)
    Vtbl.filter_map_inplace (fun _ chain -> Some (List.rev chain)) tbl
  in
  let next_part = Atomic.make 0 in
  let done_count = Atomic.make 0 in
  let first_exn = Atomic.make None in
  let worker () =
    let rec loop () =
      let j = Atomic.fetch_and_add next_part 1 in
      if j < partitions then begin
        (match build j with
        | () -> ()
        | exception e ->
            ignore (Atomic.compare_and_set first_exn None (Some e)));
        ignore (Atomic.fetch_and_add done_count 1);
        loop ()
      end
    in
    loop ()
  in
  let helpers = ref 0 in
  (match pool with
  | None -> ()
  | Some pool ->
      for _ = 2 to min dop (Rkutil.Task_pool.size pool) do
        if Rkutil.Task_pool.submit pool worker then incr helpers
      done);
  worker ();
  (* Barrier: partition tasks are pure CPU and always terminate; helpers
     that never got scheduled before we finish simply find no partition
     left to claim. *)
  while Atomic.get done_count < partitions do
    Domain.cpu_relax ()
  done;
  (match Atomic.get first_exn with Some e -> raise e | None -> ());
  fun v ->
    match Vtbl.find_opt tables.(part v) v with Some tus -> tus | None -> []
