open Relalg

type rid = { page_id : int; slot : int }

type t = {
  pool : Buffer_pool.t;
  schema : Schema.t;
  tuples_per_page : int;
  mutable page_ids : int list;  (* newest first *)
  mutable page_ids_rev : int array option;  (* cache of pages in order *)
  mutable cardinality : int;
}

let create ?(tuples_per_page = 50) pool schema =
  if tuples_per_page < 1 then invalid_arg "Heap_file.create: tuples_per_page < 1";
  {
    pool;
    schema;
    tuples_per_page;
    page_ids = [];
    page_ids_rev = None;
    cardinality = 0;
  }

let schema t = t.schema

let pages_in_order t =
  match t.page_ids_rev with
  | Some a -> a
  | None ->
      let a = Array.of_list (List.rev t.page_ids) in
      t.page_ids_rev <- Some a;
      a

let append t tu =
  if Tuple.arity tu <> Schema.arity t.schema then
    invalid_arg "Heap_file.append: tuple arity mismatch";
  let page =
    match t.page_ids with
    | pid :: _ ->
        let p = Buffer_pool.get t.pool pid in
        if Page.is_full p then begin
          let np = Buffer_pool.alloc_page t.pool ~capacity:t.tuples_per_page in
          t.page_ids <- Page.id np :: t.page_ids;
          t.page_ids_rev <- None;
          np
        end
        else p
    | [] ->
        let np = Buffer_pool.alloc_page t.pool ~capacity:t.tuples_per_page in
        t.page_ids <- [ Page.id np ];
        t.page_ids_rev <- None;
        np
  in
  let slot = Page.add page tu in
  Buffer_pool.mark_dirty t.pool (Page.id page);
  t.cardinality <- t.cardinality + 1;
  { page_id = Page.id page; slot }

let load t tuples = List.iter (fun tu -> ignore (append t tu)) tuples

let fetch t rid =
  let page = Buffer_pool.get t.pool rid.page_id in
  Io_stats.add_tuples_read (Buffer_pool.stats t.pool) 1;
  Page.get page rid.slot

let delete t rid =
  let page = Buffer_pool.get t.pool rid.page_id in
  let ok = Page.delete page rid.slot in
  if ok then begin
    Buffer_pool.mark_dirty t.pool rid.page_id;
    t.cardinality <- t.cardinality - 1
  end;
  ok

let cardinality t = t.cardinality

let n_pages t = List.length t.page_ids

let tuples_per_page t = t.tuples_per_page

let scan_pages t ~lo ~hi =
  let pages = pages_in_order t in
  let hi = min hi (Array.length pages) in
  let page_idx = ref (max 0 lo) in
  let slot = ref 0 in
  let current = ref None in
  let rec next () =
    match !current with
    | Some p when !slot < Page.count p ->
        if not (Page.is_live p !slot) then begin
          incr slot;
          next ()
        end
        else begin
          let tu = Page.get p !slot in
          incr slot;
          Io_stats.add_tuples_read (Buffer_pool.stats t.pool) 1;
          Some tu
        end
    | _ ->
        if !page_idx >= hi then None
        else begin
          current := Some (Buffer_pool.get t.pool pages.(!page_idx));
          incr page_idx;
          slot := 0;
          next ()
        end
  in
  next

let page_rows t idx =
  let pages = pages_in_order t in
  if idx < 0 || idx >= Array.length pages then [||]
  else begin
    let page = Buffer_pool.get t.pool pages.(idx) in
    let n = Page.count page in
    let acc = ref [] in
    let live = ref 0 in
    for slot = n - 1 downto 0 do
      if Page.is_live page slot then begin
        acc := Page.get page slot :: !acc;
        incr live
      end
    done;
    (* Same total as the tuple-at-a-time cursor, charged once per page. *)
    if !live > 0 then Io_stats.add_tuples_read (Buffer_pool.stats t.pool) !live;
    Array.of_list !acc
  end

let scan t = scan_pages t ~lo:0 ~hi:(Array.length (pages_in_order t))

let iter f t =
  let next = scan t in
  let rec loop () =
    match next () with
    | Some tu ->
        f tu;
        loop ()
    | None -> ()
  in
  loop ()

let to_list t =
  let acc = ref [] in
  iter (fun tu -> acc := tu :: !acc) t;
  List.rev !acc

let to_list_with_rids t =
  let pages = pages_in_order t in
  let acc = ref [] in
  Array.iter
    (fun pid ->
      let page = Buffer_pool.get t.pool pid in
      for slot = 0 to Page.count page - 1 do
        if Page.is_live page slot then
          acc := ({ page_id = pid; slot }, Page.get page slot) :: !acc
      done)
    pages;
  Io_stats.add_tuples_read (Buffer_pool.stats t.pool) t.cardinality;
  List.rev !acc
