open Relalg

type column_stats = {
  cs_count : int;
  cs_distinct : int;
  cs_min : float;
  cs_max : float;
  cs_histogram : Histogram.t;
}

type table_stats = {
  ts_cardinality : int;
  ts_pages : int;
  ts_columns : (string * column_stats) list;
}

type index_info = {
  ix_name : string;
  ix_table : string;
  ix_key : Expr.t;
  ix_btree : Btree.t;
  ix_clustered : bool;
}

type table_info = {
  tb_name : string;
  tb_schema : Schema.t;
  tb_heap : Heap_file.t;
  tb_stats : table_stats;
  tb_indexes : index_info list;
}

type t = {
  io : Io_stats.t;
  pool : Buffer_pool.t;
  tuples_per_page : int;
  tables : (string, table_info) Hashtbl.t;
  (* Monotonically increasing version of the optimizer-visible statistics:
     bumped whenever histograms / row counts are (re)computed or the set of
     access paths changes. Cached plans are keyed on it, so a stats refresh
     invalidates every plan chosen under the old statistics. *)
  mutable stats_epoch : int;
  (* Per-table slices of the same counter: every bump names the table whose
     statistics changed, so a statement's effective epoch is the sum over
     the tables it actually reads — DML on table A no longer invalidates
     plans and cursors that only touch table B. *)
  table_epochs : (string, int) Hashtbl.t;
}

let create ?(pool_frames = 256) ?(tuples_per_page = 50) () =
  let io = Io_stats.create () in
  {
    io;
    pool = Buffer_pool.create ~frames:pool_frames io;
    tuples_per_page;
    tables = Hashtbl.create 16;
    stats_epoch = 0;
    table_epochs = Hashtbl.create 16;
  }

let stats_epoch t = t.stats_epoch

let table_epoch t name =
  Option.value ~default:0 (Hashtbl.find_opt t.table_epochs name)

(* Sum of the per-table epochs: each is monotone, so the sum is monotone
   and an equality check on it is a sound staleness test for a statement
   reading exactly [names]. *)
let epoch_of_tables t names =
  List.fold_left (fun acc name -> acc + table_epoch t name) 0 names

let bump_stats_epoch t tname =
  t.stats_epoch <- t.stats_epoch + 1;
  Hashtbl.replace t.table_epochs tname (table_epoch t tname + 1)

let io t = t.io

let pool t = t.pool

let tuples_per_page t = t.tuples_per_page

let numeric_dtype = function
  | Value.Tint | Value.Tfloat -> true
  | Value.Tstring | Value.Tbool -> false

let compute_stats schema tuples heap =
  let cols = Schema.columns schema in
  let col_stats =
    List.mapi
      (fun i col ->
        if numeric_dtype col.Schema.dtype then begin
          let values =
            List.filter_map
              (fun tu ->
                let v = Tuple.get tu i in
                if Value.is_null v then None else Some (Value.to_float v))
              tuples
          in
          let hist = Histogram.build values in
          Some
            ( col.Schema.name,
              {
                cs_count = List.length values;
                cs_distinct = Histogram.distinct_estimate hist;
                cs_min = Histogram.min_value hist;
                cs_max = Histogram.max_value hist;
                cs_histogram = hist;
              } )
        end
        else None)
      cols
  in
  {
    ts_cardinality = List.length tuples;
    ts_pages = Heap_file.n_pages heap;
    ts_columns = List.filter_map Fun.id col_stats;
  }

let create_table t name schema tuples =
  if Hashtbl.mem t.tables name then
    invalid_arg ("Catalog.create_table: duplicate table " ^ name);
  let schema = Schema.rename_relation schema name in
  let heap = Heap_file.create ~tuples_per_page:t.tuples_per_page t.pool schema in
  Heap_file.load heap tuples;
  let info =
    {
      tb_name = name;
      tb_schema = schema;
      tb_heap = heap;
      tb_stats = compute_stats schema tuples heap;
      tb_indexes = [];
    }
  in
  Hashtbl.replace t.tables name info;
  bump_stats_epoch t name;
  info

let table t name =
  match Hashtbl.find_opt t.tables name with
  | Some info -> info
  | None -> raise Not_found

let find_table t name = Hashtbl.find_opt t.tables name

let tables t = Hashtbl.fold (fun _ info acc -> info :: acc) t.tables []

let rid_tuple (rid : Heap_file.rid) =
  [| Value.Int rid.Heap_file.page_id; Value.Int rid.Heap_file.slot |]

let rid_of_tuple tu =
  { Heap_file.page_id = Value.to_int tu.(0); slot = Value.to_int tu.(1) }

let create_index t ?(clustered = true) ~name ~table:tname ~key () =
  let info = table t tname in
  if List.exists (fun ix -> String.equal ix.ix_name name) info.tb_indexes then
    invalid_arg ("Catalog.create_index: duplicate index " ^ name);
  let keyf = Expr.compile info.tb_schema key in
  let entries =
    if clustered then
      List.map (fun tu -> (keyf tu, tu)) (Heap_file.to_list info.tb_heap)
    else
      List.map
        (fun (rid, tu) -> (keyf tu, rid_tuple rid))
        (Heap_file.to_list_with_rids info.tb_heap)
  in
  let btree = Btree.bulk_load t.io entries in
  let ix =
    { ix_name = name; ix_table = tname; ix_key = key; ix_btree = btree;
      ix_clustered = clustered }
  in
  Hashtbl.replace t.tables tname { info with tb_indexes = ix :: info.tb_indexes };
  bump_stats_epoch t tname;
  ix

let insert_into t ~table:tname tuples =
  let info = table t tname in
  List.iter
    (fun tu ->
      let rid = Heap_file.append info.tb_heap tu in
      List.iter
        (fun ix ->
          let key = Expr.eval info.tb_schema ix.ix_key tu in
          let payload = if ix.ix_clustered then tu else rid_tuple rid in
          Btree.insert ix.ix_btree key payload)
        info.tb_indexes)
    tuples

let delete_from t ~table:tname pred =
  let info = table t tname in
  let test = Expr.compile_bool info.tb_schema pred in
  let victims =
    List.filter (fun (_, tu) -> test tu) (Heap_file.to_list_with_rids info.tb_heap)
  in
  List.iter
    (fun (rid, tu) ->
      List.iter
        (fun ix ->
          let key = Expr.eval info.tb_schema ix.ix_key tu in
          let payload = if ix.ix_clustered then tu else rid_tuple rid in
          ignore (Btree.delete ix.ix_btree key payload))
        info.tb_indexes;
      ignore (Heap_file.delete info.tb_heap rid))
    victims;
  List.length victims

let update_where t ~table:tname pred ~set =
  let info = table t tname in
  let test = Expr.compile_bool info.tb_schema pred in
  let setters =
    List.map
      (fun (column, f) ->
        match Schema.index_of info.tb_schema ~relation:tname column with
        | Some i -> (i, f)
        | None -> invalid_arg ("Catalog.update_where: unknown column " ^ column))
      set
  in
  let victims =
    List.filter (fun (_, tu) -> test tu) (Heap_file.to_list_with_rids info.tb_heap)
  in
  let replacements =
    List.map
      (fun (rid, tu) ->
        let fresh = Array.copy tu in
        List.iter (fun (i, f) -> fresh.(i) <- f tu) setters;
        (rid, tu, fresh))
      victims
  in
  List.iter
    (fun (rid, old_tu, _) ->
      List.iter
        (fun ix ->
          let key = Expr.eval info.tb_schema ix.ix_key old_tu in
          let payload = if ix.ix_clustered then old_tu else rid_tuple rid in
          ignore (Btree.delete ix.ix_btree key payload))
        info.tb_indexes;
      ignore (Heap_file.delete info.tb_heap rid))
    replacements;
  insert_into t ~table:tname (List.map (fun (_, _, fresh) -> fresh) replacements);
  List.length replacements

let analyze t tname =
  let info = table t tname in
  let tuples = Heap_file.to_list info.tb_heap in
  let refreshed = { info with tb_stats = compute_stats info.tb_schema tuples info.tb_heap } in
  Hashtbl.replace t.tables tname refreshed;
  bump_stats_epoch t tname;
  refreshed

let index_payload_to_tuple t ix payload =
  if ix.ix_clustered then payload
  else begin
    let info = table t ix.ix_table in
    Heap_file.fetch info.tb_heap (rid_of_tuple payload)
  end

let index_lookup t ix key =
  List.map (index_payload_to_tuple t ix) (Btree.lookup ix.ix_btree key)

let indexes_on t tname =
  match find_table t tname with None -> [] | Some info -> info.tb_indexes

let find_index_on_expr t ~table:tname expr =
  List.find_opt (fun ix -> Expr.equal ix.ix_key expr) (indexes_on t tname)

let column_stats t ~table:tname ~column =
  match find_table t tname with
  | None -> None
  | Some info -> List.assoc_opt column info.tb_stats.ts_columns

let estimate_join_selectivity t ~left:(lt, lc) ~right:(rt, rc) =
  (* V(T, c): distinct values seen; for integer columns the observed value
     range is a better domain estimate when the column is sparse (uniform
     spread assumption), e.g. 5000 keys drawn from a domain of 10^6. *)
  let distinct table column =
    let is_int =
      match find_table t table with
      | None -> false
      | Some info -> (
          match Schema.index_of info.tb_schema ~relation:table column with
          | Some i -> (Schema.nth info.tb_schema i).Schema.dtype = Value.Tint
          | None -> false
          | exception Invalid_argument _ -> false)
    in
    match column_stats t ~table ~column with
    | Some cs when cs.cs_distinct > 0 ->
        let range =
          if is_int && cs.cs_max >= cs.cs_min then
            int_of_float (cs.cs_max -. cs.cs_min +. 1.0)
          else 0
        in
        max cs.cs_distinct range
    | _ -> (
        match find_table t table with
        | Some info -> max 1 info.tb_stats.ts_cardinality
        | None -> 1)
  in
  1.0 /. float_of_int (max (distinct lt lc) (distinct rt rc))

let reset_io t = Io_stats.reset t.io
