(** Catalog persistence: save/load a whole catalog to a directory.

    On-disk layout (plain text, diffable):

    {v
    <dir>/catalog.meta   -- one line per table: schema + index definitions
    <dir>/<table>.tbl    -- one tab-separated line per tuple
    v}

    Indexes are re-built on load from their persisted key expressions;
    statistics are recomputed. This is an offline snapshot facility, not a
    transactional store. *)

val value_encode : Relalg.Value.t -> string
(** One cell as [<tag>:<payload>] with floats in hex ([%h]) — exact
    round-trip. Strings are escaped, so the result never contains a tab
    or newline; doubles as the server's [WIRE HEX] row codec. *)

val value_decode : string -> Relalg.Value.t
(** Inverse of {!value_encode}.
    @raise Failure on malformed input. *)

val save : Catalog.t -> dir:string -> unit
(** Write the catalog. The directory is created if absent; existing files
    for the same tables are overwritten.
    @raise Sys_error on I/O problems. *)

val load : ?pool_frames:int -> ?tuples_per_page:int -> dir:string -> unit -> Catalog.t
(** Read a catalog written by {!save}.
    @raise Failure on malformed files. *)
