(** Leaderboard (by-rank) access over a score-keyed order-statistic
    {!Btree}.

    Ranks are 1-based and descending: rank 1 is the highest score. NaN
    scores are excluded from every rank computation (they sort below all
    real floats and the engine's ranked operators drop them). Duplicate
    scores share the tie block's minimum rank, and by-rank windows order
    tie-block members with the supplied canonical comparator so a window is
    independent of insertion order and plan shape. All operations charge
    the tree's {!Io_stats.t}: one probe plus O(log n) node visits, plus
    O(window + tie spill) leaf entries for {!select_rank}. *)

open Relalg

val total : Btree.t -> int
(** Ranked (non-NaN) entries. *)

val nan_count : Btree.t -> int
(** Entries keyed by NaN, held at the ascending front of the tree. *)

val rank_of_value : Btree.t -> float -> int option
(** Minimum rank an entry with this score holds (or would hold): one more
    than the number of strictly greater ranked entries. [None] for NaN. *)

val dense_rank_of_value : Btree.t -> float -> int option
(** Dense rank an entry with this score holds (or would hold): one more than
    the number of {e distinct} strictly greater ranked scores. [None] for
    NaN. Costs O(d log n) node visits for an answer of [d] — the tree keeps
    no distinct-count augmentation, so the probe walks the tie blocks above
    the score. *)

val dense_total : Btree.t -> int
(** Number of distinct ranked scores (= the largest dense rank); O(d log n). *)

val select_dense_rank :
  Btree.t ->
  lo:int ->
  hi:int ->
  resolve:(Tuple.t -> Tuple.t) ->
  tie_cmp:(Tuple.t -> Tuple.t -> int) ->
  (Tuple.t * float) list
(** The members of the dense-rank blocks [lo..hi] inclusive (best block
    first). A dense window always contains whole tie blocks; [tie_cmp] only
    orders members within each block. Costs O(hi · log n + output). *)

val select_rank :
  Btree.t ->
  lo:int ->
  hi:int ->
  resolve:(Tuple.t -> Tuple.t) ->
  tie_cmp:(Tuple.t -> Tuple.t -> int) ->
  (Tuple.t * float) list
(** The entries ranked [lo..hi] inclusive (best first), each with its
    score. [resolve] maps a stored leaf payload to the base tuple
    (identity for clustered indexes, a heap fetch for unclustered rid
    payloads); [tie_cmp] orders equal-score entries canonically. Bounds are
    clamped to [1..total]; an empty or inverted window returns []. *)
