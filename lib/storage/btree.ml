open Relalg

type entry = { key : Value.t; tuple : Tuple.t }

type node =
  | Leaf of leaf
  | Internal of internal

and leaf = {
  mutable entries : entry array;
  mutable next : leaf option;
  mutable prev : leaf option;
}

(* Invariant: [keys] holds the minimal key of each child except the first,
   so [Array.length keys = Array.length children - 1]. [counts] is aligned
   with [children] and holds each child's subtree entry count — the
   order-statistic augmentation that makes by-rank descents and
   rank-of-value probes O(log n). *)
and internal = {
  mutable keys : Value.t array;
  mutable children : node array;
  mutable counts : int array;
}

type t = {
  io : Io_stats.t;
  fanout : int;
  mutable root : node;
  mutable count : int;
}

let new_leaf () = { entries = [||]; next = None; prev = None }

let create ?(fanout = 64) io () =
  let fanout = max 4 fanout in
  { io; fanout; root = Leaf (new_leaf ()); count = 0 }

let touch t = Io_stats.add_index_node_read t.io

let length t = t.count

let height t =
  let rec go = function
    | Leaf _ -> 1
    | Internal n -> 1 + go n.children.(0)
  in
  go t.root

let subtree_count = function
  | Leaf lf -> Array.length lf.entries
  | Internal nd -> Array.fold_left ( + ) 0 nd.counts

(* Position of the child to follow for [key]: the last child whose minimal
   key is <= key. Used for inserts (duplicates go rightmost) and descending
   lookups. *)
let child_index keys key =
  let n = Array.length keys in
  let rec go i = if i < n && Value.compare keys.(i) key <= 0 then go (i + 1) else i in
  go 0

(* Leftmost child that can contain [key]: the last child whose minimal key is
   strictly below [key]. When duplicates of [key] span several children, this
   descends to the first of them. *)
let child_index_left keys key =
  let n = Array.length keys in
  let rec go i = if i < n && Value.compare keys.(i) key < 0 then go (i + 1) else i in
  go 0

(* Insertion point in a sorted entry array keeping duplicates in insertion
   order (rightmost position among equal keys). *)
let entry_insert_pos entries key =
  let n = Array.length entries in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Value.compare entries.(mid).key key <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let array_insert a i x =
  let n = Array.length a in
  let b = Array.make (n + 1) x in
  Array.blit a 0 b 0 i;
  Array.blit a i b (i + 1) (n - i);
  b

let array_remove a i =
  let n = Array.length a in
  let b = Array.sub a 0 (n - 1) in
  Array.blit a (i + 1) b i (n - 1 - i);
  b

(* Result of inserting into a subtree: either the node absorbed the entry, or
   it split, producing a right sibling and the minimal key of that sibling. *)
type split = No_split | Split of Value.t * node

let rec insert_into t node e : split =
  touch t;
  match node with
  | Leaf lf ->
      let pos = entry_insert_pos lf.entries e.key in
      lf.entries <- array_insert lf.entries pos e;
      if Array.length lf.entries <= t.fanout then No_split
      else begin
        let n = Array.length lf.entries in
        let mid = n / 2 in
        let right = new_leaf () in
        right.entries <- Array.sub lf.entries mid (n - mid);
        lf.entries <- Array.sub lf.entries 0 mid;
        right.next <- lf.next;
        (match lf.next with Some nx -> nx.prev <- Some right | None -> ());
        right.prev <- Some lf;
        lf.next <- Some right;
        Split (right.entries.(0).key, Leaf right)
      end
  | Internal nd -> (
      let ci = child_index nd.keys e.key in
      match insert_into t nd.children.(ci) e with
      | No_split ->
          nd.counts.(ci) <- nd.counts.(ci) + 1;
          No_split
      | Split (sep, right) ->
          nd.keys <- array_insert nd.keys ci sep;
          nd.counts.(ci) <- subtree_count nd.children.(ci);
          nd.children <- array_insert nd.children (ci + 1) right;
          nd.counts <- array_insert nd.counts (ci + 1) (subtree_count right);
          if Array.length nd.children <= t.fanout then No_split
          else begin
            let nc = Array.length nd.children in
            let mid = nc / 2 in
            (* Children [mid..] move right; keys.(mid-1) is promoted. *)
            let promoted = nd.keys.(mid - 1) in
            let right_node =
              {
                keys = Array.sub nd.keys mid (Array.length nd.keys - mid);
                children = Array.sub nd.children mid (nc - mid);
                counts = Array.sub nd.counts mid (nc - mid);
              }
            in
            nd.keys <- Array.sub nd.keys 0 (mid - 1);
            nd.children <- Array.sub nd.children 0 mid;
            nd.counts <- Array.sub nd.counts 0 mid;
            Split (promoted, Internal right_node)
          end)

let insert t key tuple =
  Io_stats.add_index_probe t.io;
  (match insert_into t t.root { key; tuple } with
  | No_split -> ()
  | Split (sep, right) ->
      t.root <-
        Internal
          {
            keys = [| sep |];
            children = [| t.root; right |];
            counts = [| subtree_count t.root; subtree_count right |];
          });
  t.count <- t.count + 1

let bulk_load ?(fanout = 64) io entries =
  let fanout = max 4 fanout in
  let sorted =
    List.stable_sort (fun (a, _) (b, _) -> Value.compare a b) entries
  in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  if n = 0 then create ~fanout io ()
  else begin
    (* Pack leaves at ~80% fill. *)
    let per_leaf = max 2 (fanout * 4 / 5) in
    let n_leaves = (n + per_leaf - 1) / per_leaf in
    let leaves =
      Array.init n_leaves (fun i ->
          let off = i * per_leaf in
          let len = min per_leaf (n - off) in
          let lf = new_leaf () in
          lf.entries <-
            Array.init len (fun j ->
                let key, tuple = arr.(off + j) in
                { key; tuple });
          lf)
    in
    for i = 0 to n_leaves - 2 do
      leaves.(i).next <- Some leaves.(i + 1);
      leaves.(i + 1).prev <- Some leaves.(i)
    done;
    (* Build internal levels bottom-up. *)
    let min_key = function
      | Leaf lf -> lf.entries.(0).key
      | Internal _ as nd ->
          let rec leftmost = function
            | Leaf lf -> lf.entries.(0).key
            | Internal n -> leftmost n.children.(0)
          in
          leftmost nd
    in
    let rec build level =
      if Array.length level = 1 then level.(0)
      else begin
        let per_node = max 2 (fanout * 4 / 5) in
        let n_nodes = (Array.length level + per_node - 1) / per_node in
        let next_level =
          Array.init n_nodes (fun i ->
              let off = i * per_node in
              let len = min per_node (Array.length level - off) in
              let children = Array.sub level off len in
              let keys = Array.init (len - 1) (fun j -> min_key children.(j + 1)) in
              let counts = Array.map subtree_count children in
              Internal { keys; children; counts })
        in
        build next_level
      end
    in
    let root = build (Array.map (fun lf -> Leaf lf) leaves) in
    { io; fanout; root; count = n }
  end

let rec find_leaf t node key =
  touch t;
  match node with
  | Leaf lf -> lf
  | Internal nd -> find_leaf t nd.children.(child_index nd.keys key) key

(* Descend to the leftmost leaf that can hold [key] (see child_index_left). *)
let rec find_leaf_left t node key =
  touch t;
  match node with
  | Leaf lf -> lf
  | Internal nd -> find_leaf_left t nd.children.(child_index_left nd.keys key) key

let rec leftmost_leaf t node =
  touch t;
  match node with
  | Leaf lf -> lf
  | Internal nd -> leftmost_leaf t nd.children.(0)

let rec rightmost_leaf t node =
  touch t;
  match node with
  | Leaf lf -> lf
  | Internal nd -> rightmost_leaf t nd.children.(Array.length nd.children - 1)

let lookup t key =
  Io_stats.add_index_probe t.io;
  let lf = find_leaf_left t t.root key in
  (* Duplicates of [key] may spill into following leaves. *)
  let rec collect lf acc =
    let hits = ref acc in
    let continue = ref false in
    Array.iter
      (fun e ->
        let c = Value.compare e.key key in
        if c = 0 then hits := e.tuple :: !hits)
      lf.entries;
    (match lf.entries with
    | [||] -> ()
    | es ->
        if Value.compare es.(Array.length es - 1).key key <= 0 then continue := true);
    if !continue then
      match lf.next with
      | Some nx ->
          touch t;
          collect nx !hits
      | None -> !hits
    else !hits
  in
  let n = collect lf [] in
  Io_stats.add_tuples_read t.io (List.length n);
  List.rev n

let scan_asc ?from t =
  Io_stats.add_index_probe t.io;
  let lf =
    match from with
    | None -> leftmost_leaf t t.root
    | Some key -> find_leaf_left t t.root key
  in
  let leaf = ref (Some lf) in
  let pos = ref 0 in
  (* Skip entries below [from] in the starting leaf. *)
  (match from with
  | None -> ()
  | Some key ->
      while
        !pos < Array.length lf.entries && Value.compare lf.entries.(!pos).key key < 0
      do
        incr pos
      done);
  let rec next () =
    match !leaf with
    | None -> None
    | Some lf ->
        if !pos < Array.length lf.entries then begin
          let e = lf.entries.(!pos) in
          incr pos;
          Io_stats.add_tuples_read t.io 1;
          Some e.tuple
        end
        else begin
          leaf := lf.next;
          pos := 0;
          (match lf.next with Some _ -> touch t | None -> ());
          next ()
        end
  in
  next

let scan_desc ?from t =
  Io_stats.add_index_probe t.io;
  let lf =
    match from with
    | None -> rightmost_leaf t t.root
    | Some key -> find_leaf t t.root key
  in
  let leaf = ref (Some lf) in
  let pos = ref (Array.length lf.entries - 1) in
  (match from with
  | None -> ()
  | Some key ->
      (* Duplicates of [from] may continue in following leaves: advance to
         the last leaf whose first key is <= from. *)
      let cur = ref lf in
      let moved = ref false in
      let rec forward () =
        match !cur.next with
        | Some nx
          when Array.length nx.entries > 0
               && Value.compare nx.entries.(0).key key <= 0 ->
            touch t;
            cur := nx;
            moved := true;
            forward ()
        | _ -> ()
      in
      forward ();
      if !moved then begin
        leaf := Some !cur;
        pos := Array.length !cur.entries - 1
      end;
      let lf = !cur in
      while !pos >= 0 && Value.compare lf.entries.(!pos).key key > 0 do
        decr pos
      done);
  let rec next () =
    match !leaf with
    | None -> None
    | Some lf ->
        if !pos >= 0 then begin
          let e = lf.entries.(!pos) in
          decr pos;
          Io_stats.add_tuples_read t.io 1;
          Some e.tuple
        end
        else begin
          leaf := lf.prev;
          (match lf.prev with
          | Some p ->
              touch t;
              pos := Array.length p.entries - 1
          | None -> ());
          next ()
        end
  in
  next

let range ?(lo_incl = true) ?(hi_incl = true) t ~lo ~hi =
  Io_stats.add_index_probe t.io;
  (* Descend with find_leaf_left even for an exclusive lower bound: an
     exclusive bound still needs the leftmost leaf that can hold [lo], since
     entries above [lo] may share that leaf with duplicates of [lo]. *)
  let lf =
    match lo with
    | None -> leftmost_leaf t t.root
    | Some key -> find_leaf_left t t.root key
  in
  let above_lo key =
    match lo with
    | None -> true
    | Some l ->
        let c = Value.compare key l in
        if lo_incl then c >= 0 else c > 0
  in
  let below_hi key =
    match hi with
    | None -> true
    | Some h ->
        let c = Value.compare key h in
        if hi_incl then c <= 0 else c < 0
  in
  let acc = ref [] in
  let stop = ref false in
  let rec walk lf =
    Array.iter
      (fun e ->
        if not !stop then
          (* Keys ascend: the first key past the upper bound ends the scan,
             whether or not the lower bound was ever satisfied. *)
          if not (below_hi e.key) then stop := true
          else if above_lo e.key then acc := e.tuple :: !acc)
      lf.entries;
    if not !stop then
      match lf.next with
      | Some nx ->
          touch t;
          walk nx
      | None -> ()
  in
  walk lf;
  Io_stats.add_tuples_read t.io (List.length !acc);
  List.rev !acc

(* -- Deletion ------------------------------------------------------------ *)

let node_is_empty = function
  | Leaf lf -> Array.length lf.entries = 0
  | Internal nd -> Array.length nd.children = 0

(* Drop child [ci] from an internal node: unlink a leaf from the sibling
   chain so scans never traverse it, and remove the corresponding separator
   (dropping child 0 makes the old keys.(0) the new first child's implicit
   minimum). *)
let remove_child nd ci =
  (match nd.children.(ci) with
  | Leaf lf ->
      (match lf.prev with Some p -> p.next <- lf.next | None -> ());
      (match lf.next with Some nx -> nx.prev <- lf.prev | None -> ())
  | Internal _ -> ());
  nd.children <- array_remove nd.children ci;
  nd.counts <- array_remove nd.counts ci;
  if Array.length nd.keys > 0 then
    nd.keys <- array_remove nd.keys (if ci = 0 then 0 else ci - 1)

let delete t key tuple =
  Io_stats.add_index_probe t.io;
  (* Path descent instead of a leaf-chain walk: duplicates of [key] can only
     live under the children between child_index_left and child_index, so
     trying those candidates in order finds the entry while keeping every
     visited node on the root-to-leaf paths whose counts must be patched. *)
  let rec del node =
    touch t;
    match node with
    | Leaf lf ->
        let found = ref (-1) in
        Array.iteri
          (fun i e ->
            if
              !found < 0
              && Value.compare e.key key = 0
              && Tuple.equal e.tuple tuple
            then found := i)
          lf.entries;
        if !found >= 0 then begin
          lf.entries <- array_remove lf.entries !found;
          true
        end
        else false
    | Internal nd ->
        let lo = child_index_left nd.keys key in
        let hi = child_index nd.keys key in
        let rec try_child ci =
          if ci > hi || ci >= Array.length nd.children then false
          else if del nd.children.(ci) then begin
            nd.counts.(ci) <- nd.counts.(ci) - 1;
            if node_is_empty nd.children.(ci) then remove_child nd ci;
            true
          end
          else try_child (ci + 1)
        in
        try_child lo
  in
  if del t.root then begin
    t.count <- t.count - 1;
    (* A root that lost all but one child no longer earns its level: collapse
       so [height] reflects the live tree. A fully-empty tree keeps a single
       empty leaf as its root. *)
    let rec collapse () =
      match t.root with
      | Internal nd when Array.length nd.children = 1 ->
          t.root <- nd.children.(0);
          collapse ()
      | _ -> ()
    in
    collapse ();
    true
  end
  else false

(* -- Order-statistic primitives ------------------------------------------ *)

(* Count entries with key < [key] (strict) or <= [key]: one root-to-leaf
   descent summing the skipped siblings' subtree counts. *)
let count_below ~strict t key =
  Io_stats.add_index_probe t.io;
  let keep c = if strict then c < 0 else c <= 0 in
  let rec go node =
    touch t;
    match node with
    | Leaf lf ->
        let n = Array.length lf.entries in
        let lo = ref 0 and hi = ref n in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if keep (Value.compare lf.entries.(mid).key key) then lo := mid + 1
          else hi := mid
        done;
        !lo
    | Internal nd ->
        let ci =
          if strict then child_index_left nd.keys key
          else child_index nd.keys key
        in
        let skipped = ref 0 in
        for i = 0 to ci - 1 do
          skipped := !skipped + nd.counts.(i)
        done;
        !skipped + go nd.children.(ci)
  in
  go t.root

let count_lt t key = count_below ~strict:true t key
let count_le t key = count_below ~strict:false t key

(* Count-guided descent to the leaf holding ascending position [pos]
   (0-based); returns the leaf and the offset within it. *)
let leaf_at t pos =
  let rec go node pos =
    touch t;
    match node with
    | Leaf lf -> (lf, pos)
    | Internal nd ->
        let rec pick i pos =
          if i = Array.length nd.children - 1 || pos < nd.counts.(i) then
            (i, pos)
          else pick (i + 1) (pos - nd.counts.(i))
        in
        let i, pos = pick 0 pos in
        go nd.children.(i) pos
  in
  go t.root pos

let select_pos t ~pos ~len =
  Io_stats.add_index_probe t.io;
  let pos = max 0 pos in
  if len <= 0 || pos >= t.count then []
  else begin
    let len = min len (t.count - pos) in
    let lf, off = leaf_at t pos in
    let acc = ref [] in
    let rec collect lf off remaining =
      if remaining > 0 then
        if off < Array.length lf.entries then begin
          let e = lf.entries.(off) in
          acc := (e.key, e.tuple) :: !acc;
          collect lf (off + 1) (remaining - 1)
        end
        else
          match lf.next with
          | Some nx ->
              touch t;
              collect nx 0 remaining
          | None -> ()
    in
    collect lf off len;
    Io_stats.add_tuples_read t.io (List.length !acc);
    List.rev !acc
  end

let to_list_asc t =
  let lf = ref (Some (leftmost_leaf t t.root)) in
  let acc = ref [] in
  let rec loop () =
    match !lf with
    | None -> ()
    | Some l ->
        Array.iter (fun e -> acc := (e.key, e.tuple) :: !acc) l.entries;
        lf := l.next;
        loop ()
  in
  loop ();
  List.rev !acc

let n_leaves t =
  let rec go acc = function
    | None -> acc
    | Some (lf : leaf) -> go (acc + 1) lf.next
  in
  go 0 (Some (leftmost_leaf t t.root))

let check_invariants t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec min_key = function
    | Leaf lf ->
        if Array.length lf.entries = 0 then None else Some lf.entries.(0).key
    | Internal nd -> min_key nd.children.(0)
  in
  let rec real_size = function
    | Leaf lf -> Array.length lf.entries
    | Internal nd ->
        Array.fold_left (fun acc c -> acc + real_size c) 0 nd.children
  in
  let rec check ~is_root node : (unit, string) result =
    match node with
    | Leaf lf ->
        if (not is_root) && Array.length lf.entries = 0 then
          err "empty non-root leaf left on the tree"
        else begin
          let ok = ref (Ok ()) in
          for i = 0 to Array.length lf.entries - 2 do
            if Value.compare lf.entries.(i).key lf.entries.(i + 1).key > 0 then
              ok := err "leaf entries out of order at %d" i
          done;
          !ok
        end
    | Internal nd ->
        if Array.length nd.keys <> Array.length nd.children - 1 then
          err "internal node: %d keys, %d children" (Array.length nd.keys)
            (Array.length nd.children)
        else if Array.length nd.counts <> Array.length nd.children then
          err "internal node: %d counts, %d children" (Array.length nd.counts)
            (Array.length nd.children)
        else begin
          let result = ref (Ok ()) in
          Array.iteri
            (fun i c ->
              let real = real_size c in
              if nd.counts.(i) <> real then
                result :=
                  err "subtree count %d recorded for child %d, actual %d"
                    nd.counts.(i) i real)
            nd.children;
          Array.iteri
            (fun i sep ->
              match min_key nd.children.(i + 1) with
              | Some mk when Value.compare sep mk > 0 ->
                  result := err "separator %d above child min" i
              | _ -> ())
            nd.keys;
          Array.iter
            (fun c ->
              match !result with
              | Ok () -> result := check ~is_root:false c
              | Error _ -> ())
            nd.children;
          !result
        end
  in
  match check ~is_root:true t.root with
  | Error _ as e -> e
  | Ok () ->
      (* Leaf chain covers all entries in order. *)
      let lf = ref (Some (leftmost_leaf t t.root)) in
      let n = ref 0 in
      let last = ref None in
      let result = ref (Ok ()) in
      let rec loop () =
        match !lf with
        | None -> ()
        | Some l ->
            Array.iter
              (fun e ->
                incr n;
                (match !last with
                | Some k when Value.compare k e.key > 0 ->
                    result := err "leaf chain out of order"
                | _ -> ());
                last := Some e.key)
              l.entries;
            lf := l.next;
            loop ()
      in
      loop ();
      if !n <> t.count then err "count mismatch: chain %d, recorded %d" !n t.count
      else !result
