(** Simulated I/O accounting.

    The paper's Figures 1 and 6 plot {e estimated I/O cost}; this module is
    the measured counterpart. Every storage structure (heap files through the
    buffer pool, B+-tree nodes) charges its page accesses to one of these
    counter sets, so an executed plan can be compared against the cost
    model's prediction.

    Counters are atomic: charges from concurrent domains (the query
    service's worker pool) are never lost. The {!set_sink} mirroring hook is
    not synchronised — install sinks only from single-domain analysis
    runs. *)

type t

type snapshot = {
  page_reads : int;  (** Heap-file pages fetched from "disk" (pool misses). *)
  page_writes : int;  (** Dirty pages written back on eviction/flush. *)
  pool_hits : int;  (** Heap-file page requests served from the pool. *)
  index_node_reads : int;  (** B+-tree nodes visited. *)
  index_probes : int;  (** Root-to-leaf descents. *)
  tuples_read : int;  (** Tuples delivered by scans and probes. *)
}

val create : unit -> t

val reset : t -> unit
(** Zero all counters (the sink installation is left untouched). *)

val sink : t -> t option

val set_sink : t -> t option -> unit
(** Install (or clear) a secondary counter set that mirrors every subsequent
    charge — the hook behind per-operator I/O attribution. Mirroring is one
    level deep: charges forwarded to the sink do not cascade further. *)

val with_sink : t -> t -> (unit -> 'a) -> 'a
(** [with_sink t s f] runs [f] with [s] installed as [t]'s sink, restoring
    the previous sink afterwards (exception-safe). *)

val snapshot : t -> snapshot

val diff : snapshot -> snapshot -> snapshot
(** [diff after before] — component-wise subtraction. *)

val total_io : snapshot -> int
(** [page_reads + page_writes + index_node_reads]: the quantity the cost
    model estimates. *)

val add_page_read : t -> unit

val add_page_write : t -> unit

val add_pool_hit : t -> unit

val add_index_node_read : t -> unit

val add_index_probe : t -> unit

val add_tuples_read : t -> int -> unit

val pp : Format.formatter -> snapshot -> unit
