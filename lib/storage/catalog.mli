(** System catalog: tables, indexes, and optimizer statistics.

    One catalog owns one buffer pool and one {!Io_stats.t}; all storage
    structures charge I/O there. The optimizer consults [table_stats] and
    [estimate_join_selectivity]; the executor resolves access paths here. *)

open Relalg

type t

type column_stats = {
  cs_count : int;
  cs_distinct : int;
  cs_min : float;
  cs_max : float;
  cs_histogram : Histogram.t;
}

type table_stats = {
  ts_cardinality : int;
  ts_pages : int;
  ts_columns : (string * column_stats) list;  (** Keyed by bare column name. *)
}

type index_info = {
  ix_name : string;
  ix_table : string;
  ix_key : Expr.t;  (** Key expression, usually a single column. *)
  ix_btree : Btree.t;
  ix_clustered : bool;
      (** Clustered (index-organized: leaves hold whole tuples) or
          unclustered (leaves hold record ids; each access fetches the heap
          page — one random I/O per tuple on a cold pool). The paper's
          ranked access paths behave like unclustered indexes. *)
}

type table_info = {
  tb_name : string;
  tb_schema : Schema.t;  (** Columns qualified with the table name. *)
  tb_heap : Heap_file.t;
  tb_stats : table_stats;
  tb_indexes : index_info list;
}

val create : ?pool_frames:int -> ?tuples_per_page:int -> unit -> t

val io : t -> Io_stats.t

val stats_epoch : t -> int
(** Monotonically increasing version of the optimizer-visible statistics.
    Bumped by {!create_table}, {!create_index} and {!analyze} (the three
    operations that change what the optimizer sees); plan caches key on it
    so a stats refresh invalidates stale plans. *)

val table_epoch : t -> string -> int
(** The slice of {!stats_epoch} attributable to one table (0 for unknown
    tables). Monotone. *)

val epoch_of_tables : t -> string list -> int
(** Sum of {!table_epoch} over [names] — the effective epoch of a statement
    reading exactly those tables. Each summand is monotone, so equality is
    a sound staleness check that ignores DML on unrelated tables. *)

val pool : t -> Buffer_pool.t

val tuples_per_page : t -> int

val create_table : t -> string -> Schema.t -> Tuple.t list -> table_info
(** Load a table; columns are (re)qualified with the table name and
    statistics are computed immediately.
    @raise Invalid_argument if the name is taken. *)

val create_index :
  t -> ?clustered:bool -> name:string -> table:string -> key:Expr.t -> unit -> index_info
(** Build a B+-tree on the key expression over the current table contents
    ([clustered] defaults to [true]). *)

val index_lookup : t -> index_info -> Value.t -> Tuple.t list
(** Point probe through an index; unclustered indexes fetch the base tuples
    through the buffer pool (charging heap I/O). *)

val index_payload_to_tuple : t -> index_info -> Tuple.t -> Tuple.t
(** Resolve one index payload: identity for clustered indexes, heap fetch
    for unclustered ones. *)

val insert_into : t -> table:string -> Tuple.t list -> unit
(** Append tuples to a table, maintaining all of its indexes (clustered
    indexes receive the tuples, unclustered ones their record ids).
    Statistics become stale until {!analyze} is called.
    @raise Not_found for an unknown table. *)

val delete_from : t -> table:string -> Expr.t -> int
(** Delete every tuple satisfying the predicate, maintaining all indexes;
    returns the number of deleted tuples. Statistics become stale until
    {!analyze}. @raise Not_found for an unknown table. *)

val update_where :
  t -> table:string -> Expr.t -> set:(string * (Tuple.t -> Value.t)) list -> int
(** Replace matching tuples with updated copies (implemented as
    delete + re-insert, so all indexes stay consistent); [set] maps bare
    column names to functions of the old tuple. Returns the number of
    updated tuples. Statistics become stale until {!analyze}. *)

val analyze : t -> string -> table_info
(** Recompute a table's statistics from its current contents (the
    ANALYZE command of a real system). Returns the refreshed info. *)

val table : t -> string -> table_info
(** @raise Not_found for an unknown table. *)

val find_table : t -> string -> table_info option

val tables : t -> table_info list

val indexes_on : t -> string -> index_info list

val find_index_on_expr : t -> table:string -> Expr.t -> index_info option
(** An index whose key induces the same order as the given expression. *)

val column_stats : t -> table:string -> column:string -> column_stats option

val estimate_join_selectivity :
  t -> left:string * string -> right:string * string -> float
(** Selectivity of the equi-join [left_table.left_col = right_table.right_col]
    using the standard [1 / max(V(L,a), V(R,b))] formula over distinct
    counts. *)

val reset_io : t -> unit
