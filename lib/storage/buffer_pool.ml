(* Frames of a shard form an intrusive doubly-linked list in recency order
   (head = most recently used, tail = next victim), so a hit reorders and
   a miss evicts in O(1). The previous scheme stamped frames with a clock
   and scanned the whole shard for the minimum on every eviction, which
   made a miss cost O(shard frames) — scans against a full pool slowed
   down as the pool got bigger. *)
type frame = {
  page : Page.t;
  mutable dirty : bool;
  mutable prev : frame option; (* toward the head: more recently used *)
  mutable next : frame option; (* toward the tail: less recently used *)
}

(* Pages are striped across shards by id; each shard owns its slice of
   the backing store, its cache partition, its LRU clock, and its own
   latch. Parallel morsel scans touch distinct pages and therefore mostly
   distinct shards, so they no longer serialize on one pool-wide mutex —
   the lock-splitting that intra-query parallelism needs. The pool-wide
   invariants are preserved per shard: a shard never caches more than its
   frame quota, so total residency never exceeds the configured frame
   budget, and every miss/hit/write-back is charged to the shared
   (atomic) [Io_stats.t] exactly as before. *)
type shard = {
  s_frames : int;
  s_disk : (int, Page.t) Hashtbl.t;
  s_cache : (int, frame) Hashtbl.t;
  mutable s_head : frame option;
  mutable s_tail : frame option;
  s_lock : Rkutil.Latch.t;
}

type t = {
  frames : int;  (* configured total, reported by [frames] *)
  io : Io_stats.t;
  shards : shard array;
  next_id : int Atomic.t;
}

let shard_count frames = min 16 (max 1 (frames / 4))

let create ?(frames = 64) io =
  let frames = max 1 frames in
  let n = shard_count frames in
  {
    frames;
    io;
    shards =
      Array.init n (fun _ ->
          {
            s_frames = max 1 (frames / n);
            s_disk = Hashtbl.create 64;
            s_cache = Hashtbl.create 16;
            s_head = None;
            s_tail = None;
            s_lock =
              Rkutil.Latch.create ~name:"storage.bufpool.shard" ~rank:70 ();
          });
    next_id = Atomic.make 0;
  }

let frames t = t.frames

let stats t = t.io

let shard_of t pid = t.shards.(pid mod Array.length t.shards)

(* Exception-safe: [Latch.protect] releases on any unwind, so a deadline
   interrupt raised inside a critical section cannot leak the shard latch
   (the LK06 hazard). The [guarded] marker lets the sanitizer verify every
   cache/LRU access really runs under this shard's latch. *)
let locked s f =
  Rkutil.Latch.protect s.s_lock (fun () ->
      Rkutil.Latch.guarded s.s_lock "bufpool.shard.state";
      f ())

(* Recency-list surgery; all callers hold the shard latch. *)
let unlink s fr =
  (match fr.prev with Some p -> p.next <- fr.next | None -> s.s_head <- fr.next);
  (match fr.next with Some n -> n.prev <- fr.prev | None -> s.s_tail <- fr.prev);
  fr.prev <- None;
  fr.next <- None

let push_front s fr =
  fr.prev <- None;
  fr.next <- s.s_head;
  (match s.s_head with
  | Some h -> h.prev <- Some fr
  | None -> s.s_tail <- Some fr);
  s.s_head <- Some fr

let touch s fr =
  match s.s_head with
  | Some h when h == fr -> ()
  | _ ->
      unlink s fr;
      push_front s fr

let rec evict_if_needed t s =
  if Hashtbl.length s.s_cache >= s.s_frames then
    match s.s_tail with
    | None -> ()
    | Some fr ->
        (* The tail is the least recently used frame of this shard. *)
        if fr.dirty then Io_stats.add_page_write t.io;
        Hashtbl.remove s.s_cache (Page.id fr.page);
        unlink s fr;
        evict_if_needed t s

let insert_frame t s page ~dirty =
  evict_if_needed t s;
  (match Hashtbl.find_opt s.s_cache (Page.id page) with
  | Some old -> unlink s old
  | None -> ());
  let fr = { page; dirty; prev = None; next = None } in
  Hashtbl.replace s.s_cache (Page.id page) fr;
  push_front s fr

let alloc_page t ~capacity =
  let id = Atomic.fetch_and_add t.next_id 1 in
  let s = shard_of t id in
  locked s (fun () ->
      let page = Page.create ~id ~capacity in
      Hashtbl.replace s.s_disk id page;
      insert_frame t s page ~dirty:true;
      page)

let get t pid =
  let s = shard_of t pid in
  locked s (fun () ->
      match Hashtbl.find_opt s.s_cache pid with
      | Some fr ->
          touch s fr;
          Io_stats.add_pool_hit t.io;
          fr.page
      | None -> (
          match Hashtbl.find_opt s.s_disk pid with
          | None ->
              invalid_arg (Printf.sprintf "Buffer_pool.get: unknown page %d" pid)
          | Some page ->
              (* Simulated page-fault I/O: legitimately happens under this
                 shard's own latch (hence [~self]), but under no other
                 Short-class latch. *)
              Rkutil.Latch.blocking_self s.s_lock "bufpool.page_fault";
              Io_stats.add_page_read t.io;
              insert_frame t s page ~dirty:false;
              page))

let mark_dirty t pid =
  let s = shard_of t pid in
  locked s (fun () ->
      match Hashtbl.find_opt s.s_cache pid with
      | Some fr -> fr.dirty <- true
      | None -> (
          (* The page was evicted between the caller's fetch and this call. A
             silent no-op here loses the pending write-back: fault the page in
             (charging the read, as any miss does) and dirty the fresh frame so
             eviction/flush still counts the write. *)
          match Hashtbl.find_opt s.s_disk pid with
          | None ->
              invalid_arg
                (Printf.sprintf "Buffer_pool.mark_dirty: unknown page %d" pid)
          | Some page ->
              Rkutil.Latch.blocking_self s.s_lock "bufpool.page_fault";
              Io_stats.add_page_read t.io;
              insert_frame t s page ~dirty:true))

let flush t =
  Array.iter
    (fun s ->
      locked s (fun () ->
          Hashtbl.iter
            (fun _ fr ->
              if fr.dirty then begin
                Io_stats.add_page_write t.io;
                fr.dirty <- false
              end)
            s.s_cache))
    t.shards

let resident t =
  Array.fold_left
    (fun acc s -> acc + locked s (fun () -> Hashtbl.length s.s_cache))
    0 t.shards
