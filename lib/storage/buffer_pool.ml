type frame = {
  page : Page.t;
  mutable dirty : bool;
  mutable last_use : int;
}

type t = {
  frames : int;
  io : Io_stats.t;
  disk : (int, Page.t) Hashtbl.t;
  cache : (int, frame) Hashtbl.t;
  mutable clock : int;
  mutable next_id : int;
  (* One lock around every cache/disk manipulation: the pool is shared by
     all worker domains of the query service, and the LRU bookkeeping
     (victim selection, frame insertion) must be atomic or two domains can
     evict the same frame / lose a dirty bit. Critical sections are a few
     hashtable operations, so a single mutex is cheap relative to query
     work. *)
  lock : Mutex.t;
}

let create ?(frames = 64) io =
  {
    frames = max 1 frames;
    io;
    disk = Hashtbl.create 256;
    cache = Hashtbl.create 64;
    clock = 0;
    next_id = 0;
    lock = Mutex.create ();
  }

let frames t = t.frames

let stats t = t.io

let locked t f = Mutex.protect t.lock f

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let evict_if_needed t =
  while Hashtbl.length t.cache >= t.frames do
    (* Evict the least recently used frame. *)
    let victim = ref None in
    Hashtbl.iter
      (fun pid fr ->
        match !victim with
        | None -> victim := Some (pid, fr)
        | Some (_, best) -> if fr.last_use < best.last_use then victim := Some (pid, fr))
      t.cache;
    match !victim with
    | None -> ()
    | Some (pid, fr) ->
        if fr.dirty then Io_stats.add_page_write t.io;
        Hashtbl.remove t.cache pid
  done

let insert_frame t page ~dirty =
  evict_if_needed t;
  Hashtbl.replace t.cache (Page.id page)
    { page; dirty; last_use = tick t }

let alloc_page t ~capacity =
  locked t (fun () ->
      let id = t.next_id in
      t.next_id <- t.next_id + 1;
      let page = Page.create ~id ~capacity in
      Hashtbl.replace t.disk id page;
      insert_frame t page ~dirty:true;
      page)

let get t pid =
  locked t (fun () ->
      match Hashtbl.find_opt t.cache pid with
      | Some fr ->
          fr.last_use <- tick t;
          Io_stats.add_pool_hit t.io;
          fr.page
      | None -> (
          match Hashtbl.find_opt t.disk pid with
          | None ->
              invalid_arg (Printf.sprintf "Buffer_pool.get: unknown page %d" pid)
          | Some page ->
              Io_stats.add_page_read t.io;
              insert_frame t page ~dirty:false;
              page))

let mark_dirty t pid =
  locked t (fun () ->
      match Hashtbl.find_opt t.cache pid with
      | Some fr -> fr.dirty <- true
      | None -> (
          (* The page was evicted between the caller's fetch and this call. A
             silent no-op here loses the pending write-back: fault the page in
             (charging the read, as any miss does) and dirty the fresh frame so
             eviction/flush still counts the write. *)
          match Hashtbl.find_opt t.disk pid with
          | None ->
              invalid_arg
                (Printf.sprintf "Buffer_pool.mark_dirty: unknown page %d" pid)
          | Some page ->
              Io_stats.add_page_read t.io;
              insert_frame t page ~dirty:true))

let flush t =
  locked t (fun () ->
      Hashtbl.iter
        (fun _ fr ->
          if fr.dirty then begin
            Io_stats.add_page_write t.io;
            fr.dirty <- false
          end)
        t.cache)

let resident t = locked t (fun () -> Hashtbl.length t.cache)
