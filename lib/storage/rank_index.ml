open Relalg

(* Leaderboard semantics over a score-keyed order-statistic B+-tree.

   Ranks are 1-based and descending: rank 1 is the highest score. NaN
   scores sort below every real float (Value.compare delegates to
   Float.compare), so NaN-keyed entries occupy the ascending front of the
   tree; every rank computation works over the non-NaN suffix, matching the
   executor's Top-N and cursor layers, which drop NaN scores outright.

   Duplicate scores form a tie block sharing the block's minimum rank
   (standard competition ranking), and by-rank windows order the block's
   members with the caller-supplied canonical comparator so a window's
   contents never depend on insertion order or plan shape. *)

let nan_count bt = Btree.count_le bt (Value.Float Float.nan)

let total bt = Btree.length bt - nan_count bt

let rank_of_value bt score =
  if Float.is_nan score then None
  else
    (* Entries strictly above [score] = everything minus (NaN block +
       non-NaN entries <= score); count_le counts both subtrahends. On a
       tie block this is the block's minimum rank. *)
    Some (Btree.length bt - Btree.count_le bt (Value.Float score) + 1)

let take n l =
  let rec go n acc = function
    | x :: rest when n > 0 -> go (n - 1) (x :: acc) rest
    | _ -> List.rev acc
  in
  go n [] l

let rec drop n l =
  match l with _ :: rest when n > 0 -> drop (n - 1) rest | _ -> l

(* Group an ascending (key, x) run into maximal equal-key blocks. *)
let group_ties entries =
  List.fold_left
    (fun groups ((k, _) as e) ->
      match groups with
      | ((k0, _) :: _ as g) :: rest when Value.compare k k0 = 0 ->
          (e :: g) :: rest
      | _ -> [ e ] :: groups)
    [] entries
  |> List.rev_map List.rev

(* Dense ranking: tie blocks are numbered consecutively (block i of the
   descending distinct-score sequence has dense rank i), so unlike
   competition ranking a block never "uses up" ranks for its extra members.
   The tree keeps no distinct-count augmentation; dense probes walk the
   distinct blocks from the best score downward, one O(log n) prefix count
   per block — O(d log n) for an answer (or window bound) of d blocks,
   still exponentially below a drain-and-sort for leaderboard-page d. *)

(* Ascending 0-based position of a block's *first* entry, given any key in
   the block. *)
let block_start bt key = Btree.count_lt bt key

let key_at bt i =
  match Btree.select_pos bt ~pos:i ~len:1 with
  | [ (k, _) ] -> k
  | _ -> invalid_arg "Rank_index: position out of range"

(* Fold [f] over the descending distinct-score blocks, threading an
   accumulator; stops when [f] returns [None] or the ranked entries are
   exhausted. [f acc dense_rank ~start ~stop key] sees the block's inclusive
   ascending position range [start..stop]. *)
let fold_blocks bt f init =
  let nans = nan_count bt in
  let len = Btree.length bt in
  let rec go acc dense stop =
    if stop < nans then acc
    else
      let k = key_at bt stop in
      let start = block_start bt k in
      match f acc dense ~start ~stop k with
      | None -> acc
      | Some acc -> go acc (dense + 1) (start - 1)
  in
  go init 1 (len - 1)

let dense_rank_of_value bt score =
  if Float.is_nan score then None
  else
    let target = Value.Float score in
    (* Walk blocks strictly above [score]; the answer is one past them. *)
    let seen_above =
      fold_blocks bt
        (fun acc _dense ~start:_ ~stop:_ k ->
          if Value.compare k target > 0 then Some (acc + 1) else None)
        0
    in
    Some (seen_above + 1)

let dense_total bt =
  fold_blocks bt (fun acc _dense ~start:_ ~stop:_ _k -> Some (acc + 1)) 0

let select_dense_rank bt ~lo ~hi ~resolve ~tie_cmp =
  let lo = max 1 lo in
  if hi < lo then []
  else
    (* Blocks are whole dense-rank units: the window never cuts a tie block,
       [tie_cmp] only fixes the emission order inside each one. Collected
       best block first. *)
    let blocks =
      fold_blocks bt
        (fun acc dense ~start ~stop _k ->
          if dense > hi then None
          else if dense < lo then Some acc
          else
            let entries = Btree.select_pos bt ~pos:start ~len:(stop - start + 1) in
            let members =
              List.map (fun (k, payload) -> (k, resolve payload)) entries
              |> List.stable_sort (fun (_, t1) (_, t2) -> tie_cmp t1 t2)
            in
            Some (members :: acc))
        []
    in
    List.rev blocks |> List.concat
    |> List.map (fun (k, tuple) -> (tuple, Value.to_float k))

let select_rank bt ~lo ~hi ~resolve ~tie_cmp =
  let len = Btree.length bt in
  let nans = nan_count bt in
  let total = len - nans in
  let lo = max 1 lo in
  if total = 0 || hi < lo || lo > total then []
  else begin
    let hi = min hi total in
    (* Descending rank r lives at ascending 0-based position len - r. *)
    let a = len - hi and b = len - lo in
    let key_at i =
      match Btree.select_pos bt ~pos:i ~len:1 with
      | [ (k, _) ] -> k
      | _ -> invalid_arg "Rank_index.select_rank: position out of range"
    in
    (* Widen both endpoints to whole tie blocks so the canonical tie order
       decides which members fall inside the requested window. *)
    let a' = Btree.count_lt bt (key_at a) in
    let b' = Btree.count_le bt (key_at b) - 1 in
    let entries = Btree.select_pos bt ~pos:a' ~len:(b' - a' + 1) in
    let resolved = List.map (fun (k, payload) -> (k, resolve payload)) entries in
    let descending =
      group_ties resolved |> List.rev
      |> List.concat_map (fun block ->
             List.stable_sort (fun (_, t1) (_, t2) -> tie_cmp t1 t2) block)
    in
    (* The widened block's best entry holds rank len - b'. *)
    descending
    |> drop (lo - (len - b'))
    |> take (hi - lo + 1)
    |> List.map (fun (k, tuple) -> (tuple, Value.to_float k))
  end
