open Relalg

(* Leaderboard semantics over a score-keyed order-statistic B+-tree.

   Ranks are 1-based and descending: rank 1 is the highest score. NaN
   scores sort below every real float (Value.compare delegates to
   Float.compare), so NaN-keyed entries occupy the ascending front of the
   tree; every rank computation works over the non-NaN suffix, matching the
   executor's Top-N and cursor layers, which drop NaN scores outright.

   Duplicate scores form a tie block sharing the block's minimum rank
   (standard competition ranking), and by-rank windows order the block's
   members with the caller-supplied canonical comparator so a window's
   contents never depend on insertion order or plan shape. *)

let nan_count bt = Btree.count_le bt (Value.Float Float.nan)

let total bt = Btree.length bt - nan_count bt

let rank_of_value bt score =
  if Float.is_nan score then None
  else
    (* Entries strictly above [score] = everything minus (NaN block +
       non-NaN entries <= score); count_le counts both subtrahends. On a
       tie block this is the block's minimum rank. *)
    Some (Btree.length bt - Btree.count_le bt (Value.Float score) + 1)

let take n l =
  let rec go n acc = function
    | x :: rest when n > 0 -> go (n - 1) (x :: acc) rest
    | _ -> List.rev acc
  in
  go n [] l

let rec drop n l =
  match l with _ :: rest when n > 0 -> drop (n - 1) rest | _ -> l

(* Group an ascending (key, x) run into maximal equal-key blocks. *)
let group_ties entries =
  List.fold_left
    (fun groups ((k, _) as e) ->
      match groups with
      | ((k0, _) :: _ as g) :: rest when Value.compare k k0 = 0 ->
          (e :: g) :: rest
      | _ -> [ e ] :: groups)
    [] entries
  |> List.rev_map List.rev

let select_rank bt ~lo ~hi ~resolve ~tie_cmp =
  let len = Btree.length bt in
  let nans = nan_count bt in
  let total = len - nans in
  let lo = max 1 lo in
  if total = 0 || hi < lo || lo > total then []
  else begin
    let hi = min hi total in
    (* Descending rank r lives at ascending 0-based position len - r. *)
    let a = len - hi and b = len - lo in
    let key_at i =
      match Btree.select_pos bt ~pos:i ~len:1 with
      | [ (k, _) ] -> k
      | _ -> invalid_arg "Rank_index.select_rank: position out of range"
    in
    (* Widen both endpoints to whole tie blocks so the canonical tie order
       decides which members fall inside the requested window. *)
    let a' = Btree.count_lt bt (key_at a) in
    let b' = Btree.count_le bt (key_at b) - 1 in
    let entries = Btree.select_pos bt ~pos:a' ~len:(b' - a' + 1) in
    let resolved = List.map (fun (k, payload) -> (k, resolve payload)) entries in
    let descending =
      group_ties resolved |> List.rev
      |> List.concat_map (fun block ->
             List.stable_sort (fun (_, t1) (_, t2) -> tie_cmp t1 t2) block)
    in
    (* The widened block's best entry holds rank len - b'. *)
    descending
    |> drop (lo - (len - b'))
    |> take (hi - lo + 1)
    |> List.map (fun (k, tuple) -> (tuple, Value.to_float k))
  end
