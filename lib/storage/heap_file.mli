(** Heap files: unordered paged tuple storage, accessed via a buffer pool. *)

open Relalg

type t

type rid = { page_id : int; slot : int }
(** Record identifier: stable address of a stored tuple. *)

val create : ?tuples_per_page:int -> Buffer_pool.t -> Schema.t -> t
(** Default page capacity is 50 tuples. *)

val schema : t -> Schema.t

val append : t -> Tuple.t -> rid
(** Add a tuple (fills the last page, allocating a new one when full). *)

val load : t -> Tuple.t list -> unit

val fetch : t -> rid -> Tuple.t
(** Fetch by rid through the pool (charges I/O on a pool miss).
    @raise Invalid_argument for a deleted rid. *)

val delete : t -> rid -> bool
(** Tombstone the tuple at [rid]; [false] when already deleted. Slots are
    never reused, so rids stay stable. *)

val cardinality : t -> int

val n_pages : t -> int

val tuples_per_page : t -> int

val scan : t -> unit -> Tuple.t option
(** A fresh full-scan cursor; every page access goes through the pool. *)

val page_rows : t -> int -> Tuple.t array
(** [page_rows t i] — the live tuples of the [i]-th page in storage order,
    read through the pool in one batch. Charges the same [tuples_read]
    total as pulling the page through a {!scan_pages} cursor, but with a
    single bulk charge per page (the unit of a vectorized scan). Out-of-range
    indices yield [[||]]. *)

val scan_pages : t -> lo:int -> hi:int -> unit -> Tuple.t option
(** Cursor over the page-index range [\[lo, hi)] of the file's pages in
    storage order — the unit of work ("morsel") for parallel scans.
    Concatenating [scan_pages] cursors over a partition of [0, n_pages)]
    yields exactly [scan]'s sequence. Out-of-range bounds are clamped. *)

val iter : (Tuple.t -> unit) -> t -> unit

val to_list : t -> Tuple.t list

val to_list_with_rids : t -> (rid * Tuple.t) list
(** Tuples paired with their record ids (used to build unclustered
    indexes). *)
