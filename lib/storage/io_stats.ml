(* Counters are Atomic.t so concurrent domains (the query service's worker
   pool) never lose updates; single-domain callers pay one uncontended
   atomic fetch-and-add per charge. The [sink] installation itself is a
   plain mutable field: it is only manipulated by single-domain analysis
   runs (EXPLAIN ANALYZE), never concurrently with server traffic. *)

type t = {
  page_reads : int Atomic.t;
  page_writes : int Atomic.t;
  pool_hits : int Atomic.t;
  index_node_reads : int Atomic.t;
  index_probes : int Atomic.t;
  tuples_read : int Atomic.t;
  (* Secondary counter set that mirrors every charge while installed; the
     executor points this at the per-operator counters of the metrics
     registry so I/O is attributed to the operator that caused it. Charges
     to the sink do not cascade into the sink's own sink. *)
  mutable sink : t option;
}

type snapshot = {
  page_reads : int;
  page_writes : int;
  pool_hits : int;
  index_node_reads : int;
  index_probes : int;
  tuples_read : int;
}

let create () : t =
  {
    page_reads = Atomic.make 0;
    page_writes = Atomic.make 0;
    pool_hits = Atomic.make 0;
    index_node_reads = Atomic.make 0;
    index_probes = Atomic.make 0;
    tuples_read = Atomic.make 0;
    sink = None;
  }

let reset (t : t) =
  Atomic.set t.page_reads 0;
  Atomic.set t.page_writes 0;
  Atomic.set t.pool_hits 0;
  Atomic.set t.index_node_reads 0;
  Atomic.set t.index_probes 0;
  Atomic.set t.tuples_read 0

let sink t = t.sink

let set_sink t s = t.sink <- s

let with_sink t s f =
  let prev = t.sink in
  t.sink <- Some s;
  Fun.protect ~finally:(fun () -> t.sink <- prev) f

let snapshot (t : t) =
  {
    page_reads = Atomic.get t.page_reads;
    page_writes = Atomic.get t.page_writes;
    pool_hits = Atomic.get t.pool_hits;
    index_node_reads = Atomic.get t.index_node_reads;
    index_probes = Atomic.get t.index_probes;
    tuples_read = Atomic.get t.tuples_read;
  }

let diff a b =
  {
    page_reads = a.page_reads - b.page_reads;
    page_writes = a.page_writes - b.page_writes;
    pool_hits = a.pool_hits - b.pool_hits;
    index_node_reads = a.index_node_reads - b.index_node_reads;
    index_probes = a.index_probes - b.index_probes;
    tuples_read = a.tuples_read - b.tuples_read;
  }

let total_io s = s.page_reads + s.page_writes + s.index_node_reads

let mirrored f (t : t) =
  f t;
  match t.sink with None -> () | Some u -> f u

let add n field = Atomic.fetch_and_add field n |> ignore

let add_page_read = mirrored (fun t -> add 1 t.page_reads)

let add_page_write = mirrored (fun t -> add 1 t.page_writes)

let add_pool_hit = mirrored (fun t -> add 1 t.pool_hits)

let add_index_node_read = mirrored (fun t -> add 1 t.index_node_reads)

let add_index_probe = mirrored (fun t -> add 1 t.index_probes)

let add_tuples_read (t : t) n = mirrored (fun t -> add n t.tuples_read) t

let pp fmt s =
  Format.fprintf fmt
    "reads=%d writes=%d hits=%d idx_nodes=%d probes=%d tuples=%d" s.page_reads
    s.page_writes s.pool_hits s.index_node_reads s.index_probes s.tuples_read
