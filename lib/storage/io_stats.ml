type t = {
  mutable page_reads : int;
  mutable page_writes : int;
  mutable pool_hits : int;
  mutable index_node_reads : int;
  mutable index_probes : int;
  mutable tuples_read : int;
  (* Secondary counter set that mirrors every charge while installed; the
     executor points this at the per-operator counters of the metrics
     registry so I/O is attributed to the operator that caused it. Charges
     to the sink do not cascade into the sink's own sink. *)
  mutable sink : t option;
}

type snapshot = {
  page_reads : int;
  page_writes : int;
  pool_hits : int;
  index_node_reads : int;
  index_probes : int;
  tuples_read : int;
}

let create () : t =
  {
    page_reads = 0;
    page_writes = 0;
    pool_hits = 0;
    index_node_reads = 0;
    index_probes = 0;
    tuples_read = 0;
    sink = None;
  }

let reset (t : t) =
  t.page_reads <- 0;
  t.page_writes <- 0;
  t.pool_hits <- 0;
  t.index_node_reads <- 0;
  t.index_probes <- 0;
  t.tuples_read <- 0

let sink t = t.sink

let set_sink t s = t.sink <- s

let with_sink t s f =
  let prev = t.sink in
  t.sink <- Some s;
  Fun.protect ~finally:(fun () -> t.sink <- prev) f

let snapshot (t : t) =
  {
    page_reads = t.page_reads;
    page_writes = t.page_writes;
    pool_hits = t.pool_hits;
    index_node_reads = t.index_node_reads;
    index_probes = t.index_probes;
    tuples_read = t.tuples_read;
  }

let diff a b =
  {
    page_reads = a.page_reads - b.page_reads;
    page_writes = a.page_writes - b.page_writes;
    pool_hits = a.pool_hits - b.pool_hits;
    index_node_reads = a.index_node_reads - b.index_node_reads;
    index_probes = a.index_probes - b.index_probes;
    tuples_read = a.tuples_read - b.tuples_read;
  }

let total_io s = s.page_reads + s.page_writes + s.index_node_reads

let mirrored f (t : t) =
  f t;
  match t.sink with None -> () | Some u -> f u

let add_page_read = mirrored (fun t -> t.page_reads <- t.page_reads + 1)

let add_page_write = mirrored (fun t -> t.page_writes <- t.page_writes + 1)

let add_pool_hit = mirrored (fun t -> t.pool_hits <- t.pool_hits + 1)

let add_index_node_read =
  mirrored (fun t -> t.index_node_reads <- t.index_node_reads + 1)

let add_index_probe = mirrored (fun t -> t.index_probes <- t.index_probes + 1)

let add_tuples_read (t : t) n =
  mirrored (fun t -> t.tuples_read <- t.tuples_read + n) t

let pp fmt s =
  Format.fprintf fmt
    "reads=%d writes=%d hits=%d idx_nodes=%d probes=%d tuples=%d" s.page_reads
    s.page_writes s.pool_hits s.index_node_reads s.index_probes s.tuples_read
