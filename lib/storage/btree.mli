(** Order-statistic B+-tree index, index-organized (leaves store whole
    tuples).

    This is the access path that makes ranking orders available "naturally":
    a descending scan over a score-keyed tree is exactly the {e sorted
    access} a rank-join input needs, while point probes provide the
    {e random access} used by index-nested-loops joins and the TA
    rank-aggregation algorithm. Internal nodes additionally carry subtree
    entry counts, maintained along the root-to-leaf path of every insert and
    delete, so positional access ({!select_pos}) and rank probes
    ({!count_lt}/{!count_le}) cost one O(log n) descent. Duplicate keys are
    allowed. Node visits are charged to the supplied {!Io_stats.t}. *)

open Relalg

type t

val create : ?fanout:int -> Io_stats.t -> unit -> t
(** [fanout] is the max entries per node (default 64, minimum 4). *)

val insert : t -> Value.t -> Tuple.t -> unit

val bulk_load : ?fanout:int -> Io_stats.t -> (Value.t * Tuple.t) list -> t
(** Build a packed tree from (not necessarily sorted) entries. *)

val delete : t -> Value.t -> Tuple.t -> bool
(** Remove one entry matching both key and tuple; [false] when absent.
    Leaves may underflow, but a leaf that empties is unlinked from the
    sibling chain (and its subtree removed), so scans never traverse dead
    leaves and a root left with one child collapses a level. *)

val length : t -> int
(** Number of entries. *)

val height : t -> int
(** Levels from root to leaf; 1 for a single-leaf tree. *)

val lookup : t -> Value.t -> Tuple.t list
(** All tuples stored under an exactly-equal key (charges one probe). *)

val range :
  ?lo_incl:bool ->
  ?hi_incl:bool ->
  t ->
  lo:Value.t option ->
  hi:Value.t option ->
  Tuple.t list
(** Range scan, ascending. Both endpoints are inclusive by default;
    [~lo_incl:false] / [~hi_incl:false] exclude entries exactly equal to the
    corresponding bound (duplicates of a bound key are kept or dropped as a
    block, even when they span leaf splits). [None] means unbounded. *)

val scan_asc : ?from:Value.t -> t -> unit -> Tuple.t option
(** Cursor over entries with key ≥ [from] (or all), ascending key order. *)

val scan_desc : ?from:Value.t -> t -> unit -> Tuple.t option
(** Cursor over entries with key ≤ [from] (or all), descending key order —
    the sorted access used by rank-join inputs. *)

val count_lt : t -> Value.t -> int
(** Entries with key strictly below the probe key: one counted descent
    (charges a probe plus [height] node visits). *)

val count_le : t -> Value.t -> int
(** Entries with key at or below the probe key. Duplicates of the probe key
    are counted as a block, matching {!range}'s bound semantics. *)

val select_pos : t -> pos:int -> len:int -> (Value.t * Tuple.t) list
(** The [len] entries starting at ascending 0-based position [pos]: a
    count-guided descent to the first entry, then a leaf-chain walk —
    O(log n + len). Clamped to the live entries; out-of-range windows
    return the empty list. *)

val n_leaves : t -> int
(** Leaves on the sibling chain (uncharged; used by tests to relate scan
    cost to live structure). *)

val to_list_asc : t -> (Value.t * Tuple.t) list

val check_invariants : t -> (unit, string) result
(** Structural check used by tests: sorted leaves, correct separators and
    subtree counts, no empty non-root leaves, consistent leaf chaining and
    entry count. *)
