(** B+-tree index, index-organized (leaves store whole tuples).

    This is the access path that makes ranking orders available "naturally":
    a descending scan over a score-keyed tree is exactly the {e sorted
    access} a rank-join input needs, while point probes provide the
    {e random access} used by index-nested-loops joins and the TA
    rank-aggregation algorithm. Duplicate keys are allowed. Node visits are
    charged to the supplied {!Io_stats.t}. *)

open Relalg

type t

val create : ?fanout:int -> Io_stats.t -> unit -> t
(** [fanout] is the max entries per node (default 64, minimum 4). *)

val insert : t -> Value.t -> Tuple.t -> unit

val bulk_load : ?fanout:int -> Io_stats.t -> (Value.t * Tuple.t) list -> t
(** Build a packed tree from (not necessarily sorted) entries. *)

val delete : t -> Value.t -> Tuple.t -> bool
(** Remove one entry matching both key and tuple; [false] when absent.
    (Lazy deletion: leaves may underflow; the tree stays correct.) *)

val length : t -> int
(** Number of entries. *)

val height : t -> int
(** Levels from root to leaf; 1 for a single-leaf tree. *)

val lookup : t -> Value.t -> Tuple.t list
(** All tuples stored under an exactly-equal key (charges one probe). *)

val range :
  ?lo_incl:bool ->
  ?hi_incl:bool ->
  t ->
  lo:Value.t option ->
  hi:Value.t option ->
  Tuple.t list
(** Range scan, ascending. Both endpoints are inclusive by default;
    [~lo_incl:false] / [~hi_incl:false] exclude entries exactly equal to the
    corresponding bound (duplicates of a bound key are kept or dropped as a
    block, even when they span leaf splits). [None] means unbounded. *)

val scan_asc : ?from:Value.t -> t -> unit -> Tuple.t option
(** Cursor over entries with key ≥ [from] (or all), ascending key order. *)

val scan_desc : ?from:Value.t -> t -> unit -> Tuple.t option
(** Cursor over entries with key ≤ [from] (or all), descending key order —
    the sorted access used by rank-join inputs. *)

val to_list_asc : t -> (Value.t * Tuple.t) list

val check_invariants : t -> (unit, string) result
(** Structural check used by tests: sorted leaves, correct separators,
    consistent leaf chaining and entry count. *)
