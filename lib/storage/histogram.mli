(** Equi-width histograms over numeric columns.

    Used by the catalog for selectivity estimation and by the depth model to
    characterise score distributions (the mean decrement slab of Section 4.3
    falls out of min/max/count). *)

type t

val build : ?buckets:int -> float list -> t
(** Default 32 buckets. The empty list yields an empty histogram. *)

val count : t -> int

val min_value : t -> float
(** [infinity] when empty. *)

val max_value : t -> float

val bucket_count : t -> int

val bucket_of : t -> float -> int option
(** Bucket index containing a value, [None] outside the range or empty. *)

val selectivity_le : t -> float -> float
(** Estimated fraction of values ≤ x (linear interpolation in-bucket).
    Exactly 0 below the histogram minimum and 1 at or above the maximum. *)

val selectivity_range : t -> lo:float -> hi:float -> float
(** Estimated fraction of values in the closed interval [\[lo, hi\]].
    Point ranges ([lo = hi]) delegate to {!selectivity_eq}; intervals
    entirely outside the recorded domain return 0; otherwise the estimate is
    never below what a point predicate on an in-domain endpoint would give. *)

val selectivity_eq : t -> float -> float
(** Estimated fraction equal to x, assuming in-bucket uniformity and the
    recorded distinct count. *)

val distinct_estimate : t -> int
(** Exact distinct count, recorded at build time. *)

val mean_decrement_slab : t -> float
(** Average score gap between consecutive order statistics:
    [(max - min) / (count - 1)]; 0 for fewer than two values. This is the
    "x" (resp. "y") of the paper's any-k depth formulas. *)

val pp : Format.formatter -> t -> unit
