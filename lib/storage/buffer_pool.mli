(** LRU buffer pool over a set of in-memory "disk" pages.

    All heap-file page access goes through a pool; misses charge a page read
    to the pool's {!Io_stats.t}, evictions of dirty pages charge a write.
    This makes measured I/O sensitive to the buffer budget, as in a real
    engine.

    The pool is domain-safe and latch-split: pages are striped across
    shards by id, each with its own mutex, cache partition, and LRU clock,
    so parallel morsel scans touching distinct pages do not serialize on
    one pool-wide lock. Per-shard frame quotas sum to the configured
    budget, so total residency never exceeds [frames]; small pools
    collapse to a single shard and behave exactly as before. *)

type t

val create : ?frames:int -> Io_stats.t -> t
(** [frames] is the pool capacity in pages (default 64, minimum 1). *)

val frames : t -> int

val stats : t -> Io_stats.t

val alloc_page : t -> capacity:int -> Page.t
(** Allocate a fresh empty page on the backing store and pin it into the
    pool (charges nothing: the page is born dirty in memory). *)

val get : t -> int -> Page.t
(** Fetch a page by id, through the LRU cache.
    @raise Invalid_argument for an unknown page id. *)

val mark_dirty : t -> int -> unit
(** Note that a page was modified, so eviction must write it. If the page
    has been evicted since it was fetched, it is faulted back in (charging a
    page read) and the fresh frame is dirtied — the write-back is never
    silently dropped. @raise Invalid_argument for an unknown page id. *)

val flush : t -> unit
(** Write back all dirty cached pages (charging writes) without evicting. *)

val resident : t -> int
(** Number of pages currently cached. *)
