type t = {
  counts : int array;
  total : int;
  lo : float;
  hi : float;
  distinct : int;
}

let build ?(buckets = 32) values =
  match values with
  | [] -> { counts = [||]; total = 0; lo = infinity; hi = neg_infinity; distinct = 0 }
  | _ ->
      let lo = List.fold_left Float.min infinity values in
      let hi = List.fold_left Float.max neg_infinity values in
      let buckets = max 1 buckets in
      let counts = Array.make buckets 0 in
      let width = (hi -. lo) /. float_of_int buckets in
      let bucket_of v =
        if width <= 0.0 then 0
        else
          let b = int_of_float ((v -. lo) /. width) in
          Rkutil.Mathx.iclamp ~lo:0 ~hi:(buckets - 1) b
      in
      List.iter (fun v -> counts.(bucket_of v) <- counts.(bucket_of v) + 1) values;
      let sorted = List.sort_uniq Float.compare values in
      {
        counts;
        total = List.length values;
        lo;
        hi;
        distinct = List.length sorted;
      }

let count t = t.total

let min_value t = t.lo

let max_value t = t.hi

let bucket_count t = Array.length t.counts

let width t =
  if Array.length t.counts = 0 then 0.0
  else (t.hi -. t.lo) /. float_of_int (Array.length t.counts)

let bucket_of t v =
  if t.total = 0 || v < t.lo || v > t.hi then None
  else begin
    let w = width t in
    if w <= 0.0 then Some 0
    else
      Some
        (Rkutil.Mathx.iclamp ~lo:0
           ~hi:(Array.length t.counts - 1)
           (int_of_float ((v -. t.lo) /. w)))
  end

let selectivity_le t x =
  if t.total = 0 then 0.0
  else if x < t.lo then 0.0
  else if x >= t.hi then 1.0
  else begin
    let w = width t in
    if w <= 0.0 then 1.0
    else begin
      let b = int_of_float ((x -. t.lo) /. w) in
      let b = Rkutil.Mathx.iclamp ~lo:0 ~hi:(Array.length t.counts - 1) b in
      let below = ref 0 in
      for i = 0 to b - 1 do
        below := !below + t.counts.(i)
      done;
      let bucket_lo = t.lo +. (float_of_int b *. w) in
      let frac = Rkutil.Mathx.clamp ~lo:0.0 ~hi:1.0 ((x -. bucket_lo) /. w) in
      (float_of_int !below +. (frac *. float_of_int t.counts.(b)))
      /. float_of_int t.total
    end
  end

let selectivity_eq t x =
  if t.total = 0 || t.distinct = 0 then 0.0
  else
    match bucket_of t x with
    | None -> 0.0
    | Some b ->
        let bucket_frac = float_of_int t.counts.(b) /. float_of_int t.total in
        let distinct_per_bucket =
          float_of_int t.distinct /. float_of_int (max 1 (Array.length t.counts))
        in
        bucket_frac /. Float.max 1.0 distinct_per_bucket

let selectivity_range t ~lo ~hi =
  if t.total = 0 || hi < lo then 0.0
  else if hi < t.lo || lo > t.hi then 0.0 (* interval entirely outside the domain *)
  else if lo = hi then selectivity_eq t lo
  else begin
    let mass = selectivity_le t hi -. selectivity_le t lo in
    (* A closed interval includes its endpoints, but interpolation assigns a
       boundary value zero width: never estimate below what a point predicate
       on either in-domain endpoint would return. *)
    let floor_mass = Float.max (selectivity_eq t lo) (selectivity_eq t hi) in
    Rkutil.Mathx.clamp ~lo:0.0 ~hi:1.0 (Float.max mass floor_mass)
  end

let distinct_estimate t = t.distinct

let mean_decrement_slab t =
  if t.total < 2 then 0.0 else (t.hi -. t.lo) /. float_of_int (t.total - 1)

let pp fmt t =
  Format.fprintf fmt "hist[n=%d lo=%g hi=%g distinct=%d buckets=%d]" t.total
    t.lo t.hi t.distinct (Array.length t.counts)
