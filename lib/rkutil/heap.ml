(* Slots beyond [size] are always [None]: [pop] nulls the slot it vacates and
   [grow] seeds fresh capacity with [None], so the heap never retains a
   reference to an element it no longer owns (long-running top-k streams pop
   far more elements than they hold). *)
type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a option array;
  mutable size : int;
}

let create ~cmp = { cmp; data = [||]; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

let get h i =
  match h.data.(i) with
  | Some x -> x
  | None -> invalid_arg "Heap: vacated slot in live prefix"

let grow h =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nd = Array.make ncap None in
    Array.blit h.data 0 nd 0 h.size;
    h.data <- nd
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp (get h i) (get h parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.cmp (get h l) (get h !smallest) < 0 then smallest := l;
  if r < h.size && h.cmp (get h r) (get h !smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h x =
  grow h;
  h.data.(h.size) <- Some x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some (get h 0)

let pop h =
  if h.size = 0 then None
  else begin
    let top = get h 0 in
    h.size <- h.size - 1;
    if h.size > 0 then h.data.(0) <- h.data.(h.size);
    h.data.(h.size) <- None;
    if h.size > 0 then sift_down h 0;
    Some top
  end

let pop_exn h =
  match pop h with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear h =
  Array.fill h.data 0 h.size None;
  h.size <- 0

let to_list h = List.init h.size (get h)

let of_list ~cmp xs =
  let h = create ~cmp in
  List.iter (push h) xs;
  h

let drain h =
  let rec loop acc =
    match pop h with
    | None -> List.rev acc
    | Some x -> loop (x :: acc)
  in
  loop []
