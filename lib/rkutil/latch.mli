(** Instrumented synchronization primitives for the lockcheck sanitizer.

    Every mutex and rwlock in the engine is a [Latch.t] (or [Latch.Rw.t])
    created with a declared {e site name}, a {e rank} in the global
    lock-order table, and a {e class} ([Short] for page/cache latches that
    must never be held across blocking operations, [Long] for coarse locks
    that serialize I/O or whole statements by design).

    In normal builds the wrappers cost one [ref] read and a branch per
    operation: [hooks] is [None] and every call degrades to the raw
    [Mutex]/[Condition] primitive. When sanitize mode is linked
    (see [Sanitize.Engine]) it installs [hooks] and receives
    acquire/release events, blocking-operation markers, guarded-state
    access markers, and quiesce points, from which the LK01–LK08 rules are
    checked. This is the same zero-cost-when-unlinked pattern as planlint's
    [Core.Enumerator.retain_hook]. *)

type cls =
  | Short  (** latch: bounded critical sections, no blocking while held *)
  | Long  (** lock: may be held across blocking I/O / whole statements *)

type mode = Shared | Exclusive

type t

val create : name:string -> rank:int -> ?cls:cls -> unit -> t
(** Create a latch registered at lock-order [rank] (lower ranks are
    acquired first; acquiring a latch whose rank is [<=] the highest held
    rank is an LK02 ordering violation). [cls] defaults to [Short].
    Latches sharing [name] (e.g. buffer-pool shards) share a rank but get
    distinct instance ids. *)

val name : t -> string
val rank : t -> int
val cls : t -> cls

val instance : t -> int
(** Process-unique instance id (two shards of the same site are different
    instances; re-acquiring the same instance is self-deadlock). *)

val lock : t -> unit
val unlock : t -> unit

val protect : t -> (unit -> 'a) -> 'a
(** [protect t f] runs [f] holding [t]; exception-safe (the latch is
    released on any unwind, including [Executor.Interrupted]). *)

val wait : Condition.t -> t -> unit
(** [wait c t] waits on [c] with [t] held. The wait {e releases} the
    underlying mutex, so the instrumentation sees a release before the
    wait and a re-acquire after — an idle worker parked on a condition
    does not count as holding its latch. *)

(** Writer-preferring read/write lock over an instrumented site.

    Readers share the lock ([Shared] mode); a waiting writer blocks new
    readers so writers cannot starve. The internal mutex and conditions
    are raw (invisible to the sanitizer); only the {e logical} read/write
    acquisitions are instrumented. *)
module Rw : sig
  type rw

  val create : name:string -> rank:int -> ?cls:cls -> unit -> rw

  val lock_read : rw -> unit
  val unlock_read : rw -> unit
  val lock_write : rw -> unit
  val unlock_write : rw -> unit

  val with_read : rw -> (unit -> 'a) -> 'a
  (** Run under a shared (read) lock; exception-safe. *)

  val with_write : rw -> (unit -> 'a) -> 'a
  (** Run under the exclusive (write) lock; exception-safe. *)
end

(** {1 Sanitize hooks} *)

type hooks = {
  h_acquire : t -> mode -> unit;
      (** Before blocking on the primitive: rank/upgrade checks and
          lock-order edges are taken against the calling thread's
          held-set, then the latch is pushed onto it. Running before the
          block means an ordering violation is reported even if the
          acquisition then deadlocks; the push being a moment early only
          affects the acquiring thread's own view. *)
  h_release : t -> mode -> unit;
      (** Just before the primitive is dropped: pairing (LK07) and
          hold-time (LK08) checks. *)
  h_blocking : t option -> string -> unit;
      (** A potentially blocking operation [what] is about to run; [Some
          self] exempts one latch that legitimately covers the operation
          (the buffer-pool fault marker fires under its own shard latch). *)
  h_guarded : t -> string -> unit;
      (** Structure [what] is being touched; its guard latch must be
          held by the calling thread (LK04). *)
  h_quiesce : string -> unit;
      (** A point where the calling thread must hold nothing (end of a
          pool job, between protocol commands, ...): any held latch is an
          LK06 leak. *)
}

val hooks : hooks option ref
(** [None] (the default) means uninstrumented: every wrapper degrades to
    the raw primitive. Installed by [Sanitize.Engine] only. *)

val blocking : ?self:t -> string -> unit
(** Marker: a blocking operation (socket read/write, [Domain.join],
    page-fault I/O, condition-free sleeps) is about to run. *)

val blocking_self : t -> string -> unit
(** [blocking_self l what] = [blocking ~self:l what], but the option is
    built only when hooks are installed — use on hot paths so the
    uninstrumented call allocates nothing. *)

val guarded : t -> string -> unit
(** Marker: shared structure [what] is being accessed; latch [l] (its
    registered guard) must be held by the calling thread. *)

val quiesce : string -> unit
(** Marker: the calling thread should hold no latch here. *)
