type cls = Short | Long
type mode = Shared | Exclusive

type t = { l_name : string; l_rank : int; l_cls : cls; l_inst : int; l_m : Mutex.t }

type hooks = {
  h_acquire : t -> mode -> unit;
  h_release : t -> mode -> unit;
  h_blocking : t option -> string -> unit;
  h_guarded : t -> string -> unit;
  h_quiesce : string -> unit;
}

let hooks : hooks option ref = ref None

let next_inst = Atomic.make 0

let create ~name ~rank ?(cls = Short) () =
  {
    l_name = name;
    l_rank = rank;
    l_cls = cls;
    l_inst = Atomic.fetch_and_add next_inst 1;
    l_m = Mutex.create ();
  }

let name t = t.l_name
let rank t = t.l_rank
let cls t = t.l_cls
let instance t = t.l_inst

let[@inline] on_acquire t m =
  match !hooks with None -> () | Some h -> h.h_acquire t m

let[@inline] on_release t m =
  match !hooks with None -> () | Some h -> h.h_release t m

let lock t =
  on_acquire t Exclusive;
  Mutex.lock t.l_m

let unlock t =
  (* Release hook AFTER dropping the mutex: the hook's bookkeeping is all
     thread-local, and running it outside the critical section keeps
     instrumentation from lengthening every other thread's wait. *)
  Mutex.unlock t.l_m;
  on_release t Exclusive

let protect t f =
  lock t;
  Fun.protect ~finally:(fun () -> unlock t) f

let wait c t =
  (* Condition.wait atomically releases the mutex, so for the sanitizer
     this is a release followed by a fresh acquisition: parked threads do
     not hold their latch, and hold-time excludes the wait. *)
  on_release t Exclusive;
  Condition.wait c t.l_m;
  on_acquire t Exclusive

module Rw = struct
  type rw = {
    rw_l : t;
    rw_readers_done : Condition.t;  (* signalled when the last reader leaves *)
    rw_turn : Condition.t;  (* signalled when a writer leaves *)
    mutable rw_readers : int;
    mutable rw_writer : bool;
    mutable rw_waiting_writers : int;
  }

  let create ~name ~rank ?(cls = Long) () =
    {
      rw_l = create ~name ~rank ~cls ();
      rw_readers_done = Condition.create ();
      rw_turn = Condition.create ();
      rw_readers = 0;
      rw_writer = false;
      rw_waiting_writers = 0;
    }

  (* The internal mutex serializes state-field updates only and is never
     held across a user critical section: it stays raw so the sanitizer
     sees just the logical Shared/Exclusive acquisitions of the site. *)

  let lock_read t =
    on_acquire t.rw_l Shared;
    Mutex.protect t.rw_l.l_m (fun () ->
        while t.rw_writer || t.rw_waiting_writers > 0 do
          Condition.wait t.rw_turn t.rw_l.l_m
        done;
        t.rw_readers <- t.rw_readers + 1)

  let unlock_read t =
    on_release t.rw_l Shared;
    Mutex.protect t.rw_l.l_m (fun () ->
        t.rw_readers <- t.rw_readers - 1;
        if t.rw_readers = 0 then Condition.signal t.rw_readers_done)

  let lock_write t =
    on_acquire t.rw_l Exclusive;
    Mutex.protect t.rw_l.l_m (fun () ->
        t.rw_waiting_writers <- t.rw_waiting_writers + 1;
        while t.rw_writer do
          Condition.wait t.rw_turn t.rw_l.l_m
        done;
        t.rw_writer <- true;
        t.rw_waiting_writers <- t.rw_waiting_writers - 1;
        while t.rw_readers > 0 do
          Condition.wait t.rw_readers_done t.rw_l.l_m
        done)

  let unlock_write t =
    on_release t.rw_l Exclusive;
    Mutex.protect t.rw_l.l_m (fun () ->
        t.rw_writer <- false;
        Condition.broadcast t.rw_turn)

  let with_read t f =
    lock_read t;
    Fun.protect ~finally:(fun () -> unlock_read t) f

  let with_write t f =
    lock_write t;
    Fun.protect ~finally:(fun () -> unlock_write t) f
end

let blocking ?self what =
  match !hooks with None -> () | Some h -> h.h_blocking self what

(* Non-optional variant: the caller's [Some] and the guard list below are
   built only when hooks are installed, so production call sites on hot
   paths (the buffer pool runs these per page access) allocate nothing. *)
let blocking_self self what =
  match !hooks with None -> () | Some h -> h.h_blocking (Some self) what

let guarded latch what =
  match !hooks with None -> () | Some h -> h.h_guarded latch what

let quiesce label =
  match !hooks with None -> () | Some h -> h.h_quiesce label
