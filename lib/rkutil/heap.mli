(** Polymorphic binary heap.

    Used as the priority queue inside the rank-join operators (ordered on
    descending combined score), by the external-merge-sort run merger, and by
    the rank-aggregation algorithms. The ordering is supplied at creation
    time; the element with the {e smallest} value under [cmp] is at the top,
    so pass an inverted comparison for a max-heap. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Fresh empty heap ordered by [cmp]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Top element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the top element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit
(** Empty the heap, keeping its capacity but dropping every element
    reference (vacated slots are nulled, so cleared elements can be
    collected). *)

val to_list : 'a t -> 'a list
(** Elements in unspecified order (heap is unchanged). *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t

val drain : 'a t -> 'a list
(** Pop everything; the result is sorted ascending under [cmp] and the heap is
    left empty. *)
