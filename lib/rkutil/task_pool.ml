type t = {
  lock : Latch.t;
  wake : Condition.t;
  jobs : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  size : int;
}

let rec worker t =
  let job =
    Latch.lock t.lock;
    let rec take () =
      match Queue.take_opt t.jobs with
      | Some j -> Some j
      | None ->
          if t.stopping then None
          else begin
            Latch.wait t.wake t.lock;
            take ()
          end
    in
    let j = take () in
    Latch.unlock t.lock;
    j
  in
  match job with
  | None -> ()
  | Some j ->
      (* A task must not take the pool down with it: exceptions are the
         submitter's business (tasks that care thread results through their
         own channels). *)
      (try j () with _ -> ());
      (* Every job must release everything it took: a latch still held
         here leaked across the job boundary (LK06). *)
      Latch.quiesce "task_pool.job";
      worker t

let create ~domains =
  let size = max 0 domains in
  let t =
    {
      lock = Latch.create ~name:"rkutil.task_pool" ~rank:60 ();
      wake = Condition.create ();
      jobs = Queue.create ();
      stopping = false;
      domains = [];
      size;
    }
  in
  t.domains <- List.init size (fun _ -> Domain.spawn (fun () -> worker t));
  t

let size t = t.size

let submit t job =
  Latch.lock t.lock;
  (* No workers means an enqueued job would never run: reject so the
     caller runs it (exchange consumers help-drain their own morsels). *)
  if t.stopping || t.size = 0 then begin
    Latch.unlock t.lock;
    false
  end
  else begin
    Queue.push job t.jobs;
    Condition.signal t.wake;
    Latch.unlock t.lock;
    true
  end

let pending t =
  Latch.lock t.lock;
  let n = Queue.length t.jobs in
  Latch.unlock t.lock;
  n

let shutdown t =
  Latch.lock t.lock;
  let ds = t.domains in
  t.stopping <- true;
  t.domains <- [];
  Condition.broadcast t.wake;
  Latch.unlock t.lock;
  Latch.blocking "task_pool.join";
  List.iter Domain.join ds
