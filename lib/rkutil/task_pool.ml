type t = {
  lock : Mutex.t;
  wake : Condition.t;
  jobs : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  size : int;
}

let rec worker t =
  let job =
    Mutex.lock t.lock;
    let rec take () =
      match Queue.take_opt t.jobs with
      | Some j -> Some j
      | None ->
          if t.stopping then None
          else begin
            Condition.wait t.wake t.lock;
            take ()
          end
    in
    let j = take () in
    Mutex.unlock t.lock;
    j
  in
  match job with
  | None -> ()
  | Some j ->
      (* A task must not take the pool down with it: exceptions are the
         submitter's business (tasks that care thread results through their
         own channels). *)
      (try j () with _ -> ());
      worker t

let create ~domains =
  let size = max 0 domains in
  let t =
    {
      lock = Mutex.create ();
      wake = Condition.create ();
      jobs = Queue.create ();
      stopping = false;
      domains = [];
      size;
    }
  in
  t.domains <- List.init size (fun _ -> Domain.spawn (fun () -> worker t));
  t

let size t = t.size

let submit t job =
  Mutex.lock t.lock;
  (* No workers means an enqueued job would never run: reject so the
     caller runs it (exchange consumers help-drain their own morsels). *)
  if t.stopping || t.size = 0 then begin
    Mutex.unlock t.lock;
    false
  end
  else begin
    Queue.push job t.jobs;
    Condition.signal t.wake;
    Mutex.unlock t.lock;
    true
  end

let pending t =
  Mutex.lock t.lock;
  let n = Queue.length t.jobs in
  Mutex.unlock t.lock;
  n

let shutdown t =
  Mutex.lock t.lock;
  let ds = t.domains in
  t.stopping <- true;
  t.domains <- [];
  Condition.broadcast t.wake;
  Mutex.unlock t.lock;
  List.iter Domain.join ds
