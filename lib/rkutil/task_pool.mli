(** A fixed pool of OCaml 5 domain workers draining a shared job queue.

    One pool serves both inter-query work (the server schedules whole
    statements on it) and intra-query work (exchange operators schedule
    morsel pumps on it). Submitters that need results or exceptions must
    thread them through their own channels; a job that raises is dropped
    and the worker keeps running.

    Deadlock discipline: jobs never block waiting for other jobs to be
    {e scheduled}. An exchange consumer that owns a worker helps drain its
    own morsel queue instead of waiting on the pool, so a full pool only
    costs parallelism, never progress. *)

type t

val create : domains:int -> t
(** Spawn [domains] worker domains (0 is legal: every submit is rejected
    and callers run the work themselves). *)

val size : t -> int
(** Number of worker domains the pool was created with. *)

val submit : t -> (unit -> unit) -> bool
(** Enqueue a job; returns [false] if the pool is shutting down (the job
    is not enqueued — the caller must run or drop it). *)

val pending : t -> int
(** Jobs enqueued but not yet picked up by a worker. *)

val shutdown : t -> unit
(** Stop accepting new jobs, drain the queue, join the workers.
    Idempotent. *)
