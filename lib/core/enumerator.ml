open Relalg

type config = {
  rank_aware : bool;
  first_rows : bool;
}

let default_config = { rank_aware = true; first_rows = true }

type stats = {
  entries : int;
  retained : int;
  generated : int;
}

type result = {
  memo : Memo.t;
  best : Memo.subplan option;
  stats : stats;
  interesting : Interesting_orders.interesting_order list;
}

let relation_array env = Array.of_list env.Cost_model.query.Logical.relations

let relation_mask env names =
  let rels = relation_array env in
  let mask = ref 0 in
  Array.iteri
    (fun i (b : Logical.base) ->
      if List.mem b.Logical.name names then mask := !mask lor (1 lsl i))
    rels;
  !mask

let names_of_mask rels mask =
  let acc = ref [] in
  Array.iteri
    (fun i (b : Logical.base) ->
      if mask land (1 lsl i) <> 0 then acc := b.Logical.name :: !acc)
    rels;
  List.rev !acc

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go mask 0

(* The order property an interesting order asks for. *)
let order_of_interesting (o : Interesting_orders.interesting_order) =
  { Plan.expr = o.Interesting_orders.expr; direction = o.Interesting_orders.direction }

(* Wrap a base access with the relation's filter, if any. *)
let with_filter (b : Logical.base) plan =
  match b.Logical.filter with
  | None -> plan
  | Some pred -> Plan.Filter { pred; input = plan }

let access_plans env config interesting (b : Logical.base) =
  let name = b.Logical.name in
  let info = Storage.Catalog.table env.Cost_model.catalog name in
  let relevant = Interesting_orders.for_subset interesting [ name ] in
  let plans = ref [ with_filter b (Plan.Table_scan { table = name }) ] in
  (* Index scans, in each direction some interesting order requests. *)
  List.iter
    (fun (ix : Storage.Catalog.index_info) ->
      List.iter
        (fun (o : Interesting_orders.interesting_order) ->
          if Expr.equal o.Interesting_orders.expr ix.Storage.Catalog.ix_key then begin
            let desc = o.Interesting_orders.direction = Interesting_orders.Desc in
            if config.rank_aware || not desc then
              plans :=
                with_filter b
                  (Plan.Index_scan
                     {
                       table = name;
                       index = ix.Storage.Catalog.ix_name;
                       key = ix.Storage.Catalog.ix_key;
                       desc;
                     })
                :: !plans
          end)
        relevant)
      info.Storage.Catalog.tb_indexes;
  (* Eager sort enforcers. One is glued for every interesting order even
     when an access path already provides it: the blocking sort alternative
     has different cost behaviour than e.g. an unclustered index scan, and
     Section 3.3's k*-based pruning is what decides which survives. *)
  List.iter
    (fun (o : Interesting_orders.interesting_order) ->
      let want = order_of_interesting o in
      let ranked_order = o.Interesting_orders.direction = Interesting_orders.Desc in
      if config.rank_aware || not ranked_order then
        plans :=
          Plan.Sort
            { order = want; input = with_filter b (Plan.Table_scan { table = name }) }
          :: !plans)
    relevant;
  !plans

(* A single-relation subplan usable as the probed side of an index
   nested-loops join: find an index on the join column. *)
let inl_index env (cond : Logical.join_pred) =
  Storage.Catalog.find_index_on_expr env.Cost_model.catalog
    ~table:cond.Logical.right_table
    (Expr.col ~relation:cond.Logical.right_table cond.Logical.right_column)

let residual_pred residuals =
  match residuals with
  | [] -> None
  | js ->
      let conj =
        List.map
          (fun (j : Logical.join_pred) ->
            Expr.(
              col ~relation:j.Logical.left_table j.Logical.left_column
              = col ~relation:j.Logical.right_table j.Logical.right_column))
          js
      in
      Some
        (List.fold_left
           (fun acc e -> Expr.And (acc, e))
           (List.hd conj) (List.tl conj))

let with_residual residuals plan =
  match residual_pred residuals with
  | None -> plan
  | Some pred -> Plan.Filter { pred; input = plan }

(* Candidate join plans combining a left and right subplan. *)
let join_candidates env config query ~left_names ~right_names ~right_singleton
    (cond : Logical.join_pred) residuals (pl : Memo.subplan) (pr : Memo.subplan)
    =
  let mk algo ?left_score ?right_score () =
    with_residual residuals
      (Plan.Join
         { algo; cond; left = pl.Memo.plan; right = pr.Memo.plan; left_score; right_score })
  in
  let lkey_order =
    {
      Plan.expr = Expr.col ~relation:cond.Logical.left_table cond.Logical.left_column;
      direction = Interesting_orders.Asc;
    }
  in
  let rkey_order =
    {
      Plan.expr = Expr.col ~relation:cond.Logical.right_table cond.Logical.right_column;
      direction = Interesting_orders.Asc;
    }
  in
  let candidates = ref [ mk Plan.Hash (); mk Plan.Nested_loops () ] in
  (* Index nested loops: right side must be a bare access of a single
     relation with an index on the join column. *)
  (if right_singleton then
     match pr.Memo.plan with
     | Plan.Table_scan _ | Plan.Filter { input = Plan.Table_scan _; _ } -> (
         match inl_index env cond with
         | Some _ -> candidates := mk Plan.Index_nl () :: !candidates
         | None -> ())
     | _ -> ());
  (* Sort-merge: both inputs ordered on their join keys. *)
  if
    Plan.order_satisfies ~have:pl.Memo.order ~want:(Some lkey_order)
    && Plan.order_satisfies ~have:pr.Memo.order ~want:(Some rkey_order)
  then candidates := mk Plan.Sort_merge () :: !candidates;
  (* Rank joins (Section 3.2 join eligibility / choices / order). *)
  if config.rank_aware && Logical.is_ranking query then begin
    let lscore = Logical.partial_scoring_expr query left_names in
    let rscore = Logical.partial_scoring_expr query right_names in
    let ranked_on score (sp : Memo.subplan) =
      match score with
      | None -> false
      | Some e ->
          Plan.order_satisfies ~have:sp.Memo.order
            ~want:(Some { Plan.expr = e; direction = Interesting_orders.Desc })
    in
    (* HRJN needs sorted access on both inputs. *)
    if ranked_on lscore pl && ranked_on rscore pr then
      candidates :=
        mk Plan.Hrjn ?left_score:lscore ?right_score:rscore () :: !candidates;
    (* NRJN needs sorted access on the outer (left) input only. *)
    if ranked_on lscore pl && Option.is_some lscore then
      candidates :=
        mk Plan.Nrjn ?left_score:lscore ?right_score:rscore () :: !candidates
  end;
  !candidates

(* Observation hook: called for every subplan the MEMO retains (after
   pruning), with its entry key. The planlint emit-time assertion mode
   registers here; the default is a no-op. A ref keeps the dependency
   arrow pointing from the lint library into core, not the reverse. *)
let retain_hook : (Cost_model.env -> key:int -> Memo.subplan -> unit) ref =
  ref (fun _ ~key:_ _ -> ())

let run ?(config = default_config) env =
  let query = env.Cost_model.query in
  let rels = relation_array env in
  let n = Array.length rels in
  let interesting = Interesting_orders.derive ~rank_aware:config.rank_aware query in
  let memo = Memo.create () in
  let add key plan =
    let sp = Memo.subplan_of env plan in
    if Memo.add memo env ~first_rows:config.first_rows ~key sp then
      !retain_hook env ~key sp
  in
  (* Parallel variants (env.dop > 1): an exchange over every morselizable
     retained plan, plus blocking sort enforcers over the cheapest exchange
     so ranked orders gain a parallel alternative (fused into per-worker
     top-k by the optimizer's post-pass). An exchange is blocking, so with
     [first_rows] it can never prune a serial pipelined plan: rank-join
     spines keep their incremental inputs and the k* rule arbitrates. *)
  let exchange_pass mask names =
    if env.Cost_model.dop > 1 then begin
      let dop = env.Cost_model.dop in
      List.iter
        (fun sp ->
          if Parallel.spine_ok sp.Memo.plan then
            add mask (Plan.Exchange { dop; input = sp.Memo.plan }))
        (Memo.plans memo mask);
      let exchanges =
        List.filter
          (fun sp ->
            match sp.Memo.plan with Plan.Exchange _ -> true | _ -> false)
          (Memo.plans memo mask)
      in
      match exchanges with
      | [] -> ()
      | first :: rest ->
          let cheapest =
            List.fold_left
              (fun acc sp ->
                if
                  sp.Memo.est.Cost_model.total_cost
                  < acc.Memo.est.Cost_model.total_cost
                then sp
                else acc)
              first rest
          in
          List.iter
            (fun (o : Interesting_orders.interesting_order) ->
              add mask
                (Plan.Sort
                   {
                     order = order_of_interesting o;
                     input = cheapest.Memo.plan;
                   }))
            (Interesting_orders.for_subset interesting names)
    end
  in
  (* Level 1: access paths. *)
  Array.iteri
    (fun i b -> List.iter (add (1 lsl i)) (access_plans env config interesting b))
    rels;
  Array.iteri (fun i b -> exchange_pass (1 lsl i) [ b.Logical.name ]) rels;
  (* Levels 2..n: joins of connected subsets. *)
  for mask = 1 to (1 lsl n) - 1 do
    if popcount mask >= 2 then begin
      let names = names_of_mask rels mask in
      if Logical.connected query names then begin
        (* Enumerate partitions L | R: iterate proper non-empty submasks. *)
        let sub = ref ((mask - 1) land mask) in
        while !sub > 0 do
          let l_mask = !sub and r_mask = mask land lnot !sub in
          let left_names = names_of_mask rels l_mask in
          let right_names = names_of_mask rels r_mask in
          (match Logical.joins_between query left_names right_names with
          | [] -> ()
          | cond :: residuals ->
              let pls = Memo.plans memo l_mask and prs = Memo.plans memo r_mask in
              List.iter
                (fun pl ->
                  List.iter
                    (fun pr ->
                      List.iter (add mask)
                        (join_candidates env config query ~left_names
                           ~right_names
                           ~right_singleton:(popcount r_mask = 1)
                           cond residuals pl pr))
                    prs)
                pls);
          sub := (!sub - 1) land mask
        done;
        (* Eager enforcers: glue a sort producing each still-interesting
           order onto the cheapest (by total cost) subplan — the "Plan (a)"
           alternative of Section 3.3 that the k* rule compares rank-join
           plans against. Always generated; pruning decides retention. *)
        let applicable = Interesting_orders.for_subset interesting names in
        let cheapest_total =
          match Memo.plans memo mask with
          | [] -> None
          | first :: rest ->
              Some
                (List.fold_left
                   (fun acc sp ->
                     if
                       sp.Memo.est.Cost_model.total_cost
                       < acc.Memo.est.Cost_model.total_cost
                     then sp
                     else acc)
                   first rest)
        in
        List.iter
          (fun (o : Interesting_orders.interesting_order) ->
            let want = order_of_interesting o in
            match cheapest_total with
            | Some cheapest when not (Plan.order_satisfies ~have:cheapest.Memo.order ~want:(Some want)) ->
                add mask (Plan.Sort { order = want; input = cheapest.Memo.plan })
            | _ -> ())
          applicable;
        exchange_pass mask names
      end
    end
  done;
  (* Flat N-ary rank-join alternative (HRJN star) for shared-key star ranking
     queries: every join is over the same column name on both sides and
     every relation contributes a ranked score. *)
  let full_mask = (1 lsl n) - 1 in
  (if config.rank_aware && Logical.is_ranking query && n >= 3 then begin
     let shared_key =
       match query.Logical.joins with
       | [] -> None
       | j0 :: rest ->
           let c = j0.Logical.left_column in
           if
             String.equal c j0.Logical.right_column
             && List.for_all
                  (fun (j : Logical.join_pred) ->
                    String.equal j.Logical.left_column c
                    && String.equal j.Logical.right_column c)
                  rest
           then Some c
           else None
     in
     match shared_key with
     | None -> ()
     | Some key ->
         let per_relation =
           Array.to_list rels
           |> List.map (fun (b : Logical.base) ->
                  let name = b.Logical.name in
                  match Logical.partial_scoring_expr query [ name ] with
                  | Some score -> (
                      let want =
                        { Plan.expr = score; direction = Interesting_orders.Desc }
                      in
                      match
                        Memo.best memo env ~order:want (relation_mask env [ name ])
                      with
                      | Some sp -> Some (sp.Memo.plan, score, name)
                      | None -> None)
                  | None -> None)
         in
         if List.for_all Option.is_some per_relation then begin
           let parts = List.map Option.get per_relation in
           add full_mask
             (Plan.Nary_rank_join
                {
                  inputs = List.map (fun (p, _, _) -> p) parts;
                  scores = List.map (fun (_, s, _) -> s) parts;
                  key;
                  tables = List.map (fun (_, _, t) -> t) parts;
                })
         end
   end);
  (* anyK ranked-enumeration alternative for acyclic path/star ranking
     queries. It competes with the rank-join plans through the cost model
     (large flat build cost, tiny per-result delay), so the k* rule
     arbitrates — and it is the only candidate whose stream keeps
     producing past k, the resumable sink behind cursor FETCH NEXT. *)
  (if config.rank_aware && Logical.is_ranking query then
     match Enumerate.any_k_plan query with
     | Some plan -> add full_mask plan
     | None -> ());
  let best =
    if Logical.is_ranking query then begin
      match Logical.scoring_expr query, query.Logical.k with
      | Some score, Some k -> (
          let want = { Plan.expr = score; direction = Interesting_orders.Desc } in
          match Memo.best memo env ~order:want full_mask with
          | Some sp ->
              Some (Memo.subplan_of env (Plan.Top_k { k; input = sp.Memo.plan }))
          | None -> (
              (* No ordered plan retained (shouldn't happen): glue a sort. *)
              match Memo.best memo env full_mask with
              | Some sp ->
                  Some
                    (Memo.subplan_of env
                       (Plan.Top_k
                          { k; input = Plan.Sort { order = want; input = sp.Memo.plan } }))
              | None -> None))
      | _ -> Memo.best memo env full_mask
    end
    else Memo.best memo env full_mask
  in
  let stats =
    {
      entries = List.length (Memo.entry_keys memo);
      retained = Memo.retained memo;
      generated = Memo.generated memo;
    }
  in
  { memo; best; stats; interesting }
