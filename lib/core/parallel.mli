(** Exchange-placement shapes: which subplans an {!Plan.Exchange} can
    morselize, what part of them stays serial, and the top-N fusion
    rewrite. Shared by the enumerator (candidate generation), the cost
    model (serial/parallel cost split), the executor (compilation) and
    planlint's PL11 (placement soundness). *)

val eligible : Plan.t -> bool
(** The input shapes an exchange accepts: a driving spine — Table_scan or
    Index_scan leaf, Filters, and Hash/INL/NL joins continuing on the
    left — with rank-join-free, exchange-free subplans off the spine; or
    [Top_k (Sort spine)] (descending), which the executor fuses into a
    parallel top-N. Rank joins never run inside an exchange: they stay
    sequential and pull from exchanges through the bounded gather. *)

val spine_ok : Plan.t -> bool
(** [eligible] without the fused top-N form. *)

val has_exchange : Plan.t -> bool

val off_spine : Plan.t -> Plan.t list
(** The subtrees a single worker builds once at open (right sides of
    spine joins): the cost model charges these serially; only the
    remaining spine work divides by the degree. *)

val fuse_topk : Plan.t -> Plan.t
(** Rewrite [Top_k (Sort (Exchange spine))] to
    [Exchange (Top_k (Sort spine))] — per-worker local top-k merged at
    the gather. Output-preserving (stable merge in morsel order equals
    the serial stable sort, ties included); applied by the optimizer as
    a post-pass. *)
