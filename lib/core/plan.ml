open Relalg

type order = { expr : Expr.t; direction : Interesting_orders.direction }

type join_algo =
  | Nested_loops
  | Index_nl
  | Hash
  | Sort_merge
  | Hrjn
  | Nrjn

type t =
  | Table_scan of { table : string }
  | Index_scan of { table : string; index : string; key : Expr.t; desc : bool }
  (* By-rank window over a scored base table: the rows ranked [lo..hi]
     (1-based, rank 1 = best score), best first. [index = Some nm] walks the
     order-statistic B+-tree [nm] (O(log n + window)); [index = None] is the
     drain-sort-slice fallback used when no score index exists. *)
  | Rank_index_scan of {
      table : string;
      index : string option;
      score : Expr.t;
      lo : int;
      hi : int;
    }
  | Filter of { pred : Expr.t; input : t }
  | Sort of { order : order; input : t }
  | Join of {
      algo : join_algo;
      cond : Logical.join_pred;
      left : t;
      right : t;
      left_score : Expr.t option;
      right_score : Expr.t option;
    }
  | Top_k of { k : int; input : t }
  | Exchange of { dop : int; input : t }
  | Nary_rank_join of {
      inputs : t list;
      scores : Expr.t list;
      key : string;
      tables : string list;
    }
  | Any_k of {
      inputs : t list;
      scores : Expr.t list;
      keys : (int * Expr.t * Expr.t) list;
      shape : [ `Path | `Star ];
    }

let order_equal a b = a.direction = b.direction && Expr.equal a.expr b.expr

let order_satisfies ~have ~want =
  match want with
  | None -> true
  | Some w -> ( match have with None -> false | Some h -> order_equal h w)

let combined_score left_score right_score =
  match left_score, right_score with
  | Some l, Some r -> Some (Expr.Add (l, r))
  | Some l, None -> Some l
  | None, Some r -> Some r
  | None, None -> None

let rec order_of = function
  | Table_scan _ -> None
  | Index_scan { key; desc; _ } ->
      Some
        {
          expr = key;
          direction = (if desc then Interesting_orders.Desc else Interesting_orders.Asc);
        }
  | Rank_index_scan { score; _ } ->
      Some { expr = score; direction = Interesting_orders.Desc }
  | Filter { input; _ } -> order_of input
  | Sort { order; _ } -> Some order
  | Join { algo = Hrjn | Nrjn; left_score; right_score; _ } ->
      Option.map
        (fun e -> { expr = e; direction = Interesting_orders.Desc })
        (combined_score left_score right_score)
  | Join { algo = Sort_merge; cond; _ } ->
      Some
        {
          expr = Expr.col ~relation:cond.Logical.left_table cond.Logical.left_column;
          direction = Interesting_orders.Asc;
        }
  | Join { algo = Hash | Index_nl; left; _ } -> order_of left
  | Join { algo = Nested_loops; _ } -> None
  | Top_k { input; _ } -> order_of input
  | Exchange { input; _ } -> order_of input
  | Nary_rank_join { scores; _ } | Any_k { scores; _ } ->
      Some
        {
          expr =
            List.fold_left
              (fun acc e -> Expr.Add (acc, e))
              (List.hd scores) (List.tl scores);
          direction = Interesting_orders.Desc;
        }

let rec pipelined = function
  | Table_scan _ | Index_scan _ -> true
  (* the counted descent reaches the first ranked row in O(log n); the
     index-less fallback drains and sorts the table first *)
  | Rank_index_scan { index; _ } -> index <> None
  | Filter { input; _ } -> pipelined input
  | Sort _ -> false
  | Join { algo = Nested_loops | Index_nl | Hash; left; _ } -> pipelined left
  | Join { algo = Sort_merge; left; right; _ } -> pipelined left && pipelined right
  | Join { algo = Hrjn; left; right; _ } -> pipelined left && pipelined right
  | Join { algo = Nrjn; left; _ } -> pipelined left
  | Top_k { input; _ } -> pipelined input
  (* an exchange drains its parallel producers: first results wait on
     whole morsels, so it breaks the pipeline property *)
  | Exchange _ -> false
  | Nary_rank_join { inputs; _ } -> List.for_all pipelined inputs
  (* anyK materializes and indexes its inputs before the first answer *)
  | Any_k _ -> false

let rec relations = function
  | Table_scan { table } -> [ table ]
  | Index_scan { table; _ } | Rank_index_scan { table; _ } -> [ table ]
  | Filter { input; _ } | Sort { input; _ } | Top_k { input; _ }
  | Exchange { input; _ } ->
      relations input
  | Join { left; right; _ } -> relations left @ relations right
  | Nary_rank_join { inputs; _ } | Any_k { inputs; _ } ->
      List.concat_map relations inputs

(* Degree of parallelism: the widest exchange in the tree (1 = serial).
   A plan property like order and pipelining: stored in the memo, audited
   by planlint (PL11). *)
let rec dop = function
  | Table_scan _ | Index_scan _ | Rank_index_scan _ -> 1
  | Filter { input; _ } | Sort { input; _ } | Top_k { input; _ } ->
      dop input
  | Exchange { dop = d; input } -> max d (dop input)
  | Join { left; right; _ } -> max (dop left) (dop right)
  | Nary_rank_join { inputs; _ } | Any_k { inputs; _ } ->
      List.fold_left (fun acc i -> max acc (dop i)) 1 inputs

let rec has_rank_join = function
  | Table_scan _ | Index_scan _ | Rank_index_scan _ -> false
  | Filter { input; _ } | Sort { input; _ } | Top_k { input; _ }
  | Exchange { input; _ } ->
      has_rank_join input
  | Join { algo = Hrjn | Nrjn; _ } -> true
  | Join { left; right; _ } -> has_rank_join left || has_rank_join right
  | Nary_rank_join _ | Any_k _ -> true

let rec join_count = function
  | Table_scan _ | Index_scan _ | Rank_index_scan _ -> 0
  | Filter { input; _ } | Sort { input; _ } | Top_k { input; _ }
  | Exchange { input; _ } ->
      join_count input
  | Join { left; right; _ } -> 1 + join_count left + join_count right
  | Nary_rank_join { inputs; _ } | Any_k { inputs; _ } ->
      List.length inputs - 1 + List.fold_left (fun acc i -> acc + join_count i) 0 inputs

let rec schema_of catalog = function
  | Table_scan { table } | Index_scan { table; _ } | Rank_index_scan { table; _ }
    ->
      (Storage.Catalog.table catalog table).Storage.Catalog.tb_schema
  | Filter { input; _ } | Sort { input; _ } | Top_k { input; _ }
  | Exchange { input; _ } ->
      schema_of catalog input
  | Join { left; right; _ } ->
      Schema.concat (schema_of catalog left) (schema_of catalog right)
  | Nary_rank_join { inputs; _ } | Any_k { inputs; _ } -> (
      match inputs with
      | first :: rest ->
          List.fold_left
            (fun acc i -> Schema.concat acc (schema_of catalog i))
            (schema_of catalog first) rest
      | [] -> invalid_arg "Plan.schema_of: empty N-ary join")

let algo_name = function
  | Nested_loops -> "NLJ"
  | Index_nl -> "INLJ"
  | Hash -> "HJ"
  | Sort_merge -> "MJ"
  | Hrjn -> "HRJN"
  | Nrjn -> "NRJN"

let rec describe = function
  | Table_scan { table } -> table
  | Index_scan { table; desc; _ } -> Printf.sprintf "%s[ix%s]" table (if desc then "↓" else "↑")
  | Rank_index_scan { table; index; lo; hi; _ } ->
      Printf.sprintf "%s[rank %d..%d%s]" table lo hi
        (match index with Some _ -> "" | None -> "/sort")
  | Filter { input; _ } -> Printf.sprintf "σ(%s)" (describe input)
  | Sort { input; _ } -> Printf.sprintf "Sort(%s)" (describe input)
  | Join { algo; left; right; _ } ->
      Printf.sprintf "%s(%s,%s)" (algo_name algo) (describe left) (describe right)
  | Top_k { k; input } -> Printf.sprintf "Top%d(%s)" k (describe input)
  | Exchange { dop; input } -> Printf.sprintf "Ex%d(%s)" dop (describe input)
  | Nary_rank_join { inputs; _ } ->
      Printf.sprintf "HRJN*(%s)" (String.concat "," (List.map describe inputs))
  | Any_k { inputs; shape; _ } ->
      Printf.sprintf "AnyK%s(%s)"
        (match shape with `Path -> "path" | `Star -> "star")
        (String.concat "," (List.map describe inputs))

let dir_name = function Interesting_orders.Asc -> "ASC" | Interesting_orders.Desc -> "DESC"

let pp fmt plan =
  let rec go indent plan =
    let pad = String.make indent ' ' in
    match plan with
    | Table_scan { table } -> Format.fprintf fmt "%sTableScan %s@." pad table
    | Index_scan { table; index; key; desc } ->
        Format.fprintf fmt "%sIndexScan %s using %s on %a %s@." pad table index
          Expr.pp key
          (if desc then "DESC" else "ASC")
    | Rank_index_scan { table; index; score; lo; hi } ->
        Format.fprintf fmt "%sRankIndexScan %s ranks %d..%d on %a %s@." pad
          table lo hi Expr.pp score
          (match index with
          | Some nm -> "using " ^ nm
          | None -> "via sort (no rank index)")
    | Filter { pred; input } ->
        Format.fprintf fmt "%sFilter %a@." pad Expr.pp pred;
        go (indent + 2) input
    | Sort { order; input } ->
        Format.fprintf fmt "%sSort on %a %s@." pad Expr.pp order.expr
          (dir_name order.direction);
        go (indent + 2) input
    | Join { algo; cond; left; right; left_score; right_score } ->
        Format.fprintf fmt "%s%s on %s.%s = %s.%s" pad (algo_name algo)
          cond.Logical.left_table cond.Logical.left_column
          cond.Logical.right_table cond.Logical.right_column;
        (match combined_score left_score right_score with
        | Some e when algo = Hrjn || algo = Nrjn ->
            Format.fprintf fmt "  [rank: %a]" Expr.pp e
        | _ -> ());
        Format.fprintf fmt "@.";
        go (indent + 2) left;
        go (indent + 2) right
    | Top_k { k; input } ->
        Format.fprintf fmt "%sTopK k=%d@." pad k;
        go (indent + 2) input
    | Exchange { dop; input } ->
        Format.fprintf fmt "%sExchange dop=%d@." pad dop;
        go (indent + 2) input
    | Nary_rank_join { inputs; key; scores; _ } ->
        Format.fprintf fmt "%sHRJN* on shared key %s  [rank: %a]@." pad key
          Expr.pp
          (List.fold_left
             (fun acc e -> Expr.Add (acc, e))
             (List.hd scores) (List.tl scores));
        List.iter (go (indent + 2)) inputs
    | Any_k { inputs; scores; shape; _ } ->
        Format.fprintf fmt "%sAnyK %s enumeration  [rank: %a]@." pad
          (match shape with `Path -> "path" | `Star -> "star")
          Expr.pp
          (List.fold_left
             (fun acc e -> Expr.Add (acc, e))
             (List.hd scores) (List.tl scores));
        List.iter (go (indent + 2)) inputs
  in
  go 0 plan
