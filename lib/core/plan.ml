open Relalg

type order = { expr : Expr.t; direction : Interesting_orders.direction }

type join_algo =
  | Nested_loops
  | Index_nl
  | Hash
  | Sort_merge
  | Hrjn
  | Nrjn

type t =
  | Table_scan of { table : string }
  | Index_scan of { table : string; index : string; key : Expr.t; desc : bool }
  (* By-rank window over a scored base table: the rows ranked [lo..hi]
     (1-based, rank 1 = best score), best first. [index = Some nm] walks the
     order-statistic B+-tree [nm] (O(log n + window)); [index = None] is the
     drain-sort-slice fallback used when no score index exists. [dense]
     switches from competition ranking (tie block shares its minimum rank)
     to dense ranking (distinct scores numbered consecutively, windows keep
     whole tie blocks). *)
  | Rank_index_scan of {
      table : string;
      index : string option;
      score : Expr.t;
      lo : int;
      hi : int;
      dense : bool;
    }
  (* One shard's half of a scatter/gather: the pushed-down subquery [sql]
     executed remotely over [endpoint], streaming rows in canonical column
     order. [k_bound] is the Propagate-style per-shard k' the coordinator
     derived (each hash shard contributes at most the global k). A ranked
     remote scan ([score = Some _]) streams best-first, which is what lets
     the gather's threshold bound terminate it early. *)
  | Remote_scan of {
      shard : int;
      endpoint : string;
      sql : string;
      tables : string list;
      score : Expr.t option;
      k_bound : int option;
    }
  (* Coordinator-side streaming merge of per-shard sorted streams: emits
     globally best-first using the canonical tie comparator, stopping after
     [k] rows (threshold-style: a shard is only pulled while its last
     streamed score could still beat the current global candidate). *)
  | Gather_merge of { inputs : t list; score : Expr.t option; k : int option }
  | Filter of { pred : Expr.t; input : t }
  | Sort of { order : order; input : t }
  | Join of {
      algo : join_algo;
      cond : Logical.join_pred;
      left : t;
      right : t;
      left_score : Expr.t option;
      right_score : Expr.t option;
    }
  | Top_k of { k : int; input : t }
  | Exchange of { dop : int; input : t }
  | Nary_rank_join of {
      inputs : t list;
      scores : Expr.t list;
      key : string;
      tables : string list;
    }
  | Any_k of {
      inputs : t list;
      scores : Expr.t list;
      keys : (int * Expr.t * Expr.t) list;
      shape : [ `Path | `Star ];
    }

let order_equal a b = a.direction = b.direction && Expr.equal a.expr b.expr

let order_satisfies ~have ~want =
  match want with
  | None -> true
  | Some w -> ( match have with None -> false | Some h -> order_equal h w)

let combined_score left_score right_score =
  match left_score, right_score with
  | Some l, Some r -> Some (Expr.Add (l, r))
  | Some l, None -> Some l
  | None, Some r -> Some r
  | None, None -> None

let rec order_of = function
  | Table_scan _ -> None
  | Index_scan { key; desc; _ } ->
      Some
        {
          expr = key;
          direction = (if desc then Interesting_orders.Desc else Interesting_orders.Asc);
        }
  | Rank_index_scan { score; _ } ->
      Some { expr = score; direction = Interesting_orders.Desc }
  | Remote_scan { score; _ } | Gather_merge { score; _ } ->
      Option.map
        (fun e -> { expr = e; direction = Interesting_orders.Desc })
        score
  | Filter { input; _ } -> order_of input
  | Sort { order; _ } -> Some order
  | Join { algo = Hrjn | Nrjn; left_score; right_score; _ } ->
      Option.map
        (fun e -> { expr = e; direction = Interesting_orders.Desc })
        (combined_score left_score right_score)
  | Join { algo = Sort_merge; cond; _ } ->
      Some
        {
          expr = Expr.col ~relation:cond.Logical.left_table cond.Logical.left_column;
          direction = Interesting_orders.Asc;
        }
  | Join { algo = Hash | Index_nl; left; _ } -> order_of left
  | Join { algo = Nested_loops; _ } -> None
  | Top_k { input; _ } -> order_of input
  | Exchange { input; _ } -> order_of input
  | Nary_rank_join { scores; _ } | Any_k { scores; _ } ->
      Some
        {
          expr =
            List.fold_left
              (fun acc e -> Expr.Add (acc, e))
              (List.hd scores) (List.tl scores);
          direction = Interesting_orders.Desc;
        }

let rec pipelined = function
  | Table_scan _ | Index_scan _ -> true
  (* the counted descent reaches the first ranked row in O(log n); the
     index-less fallback drains and sorts the table first *)
  | Rank_index_scan { index; _ } -> index <> None
  (* a remote stream yields as the shard produces; the gather emits as soon
     as the threshold bound proves a candidate globally best *)
  | Remote_scan _ -> true
  | Gather_merge { inputs; _ } -> List.for_all pipelined inputs
  | Filter { input; _ } -> pipelined input
  | Sort _ -> false
  | Join { algo = Nested_loops | Index_nl | Hash; left; _ } -> pipelined left
  | Join { algo = Sort_merge; left; right; _ } -> pipelined left && pipelined right
  | Join { algo = Hrjn; left; right; _ } -> pipelined left && pipelined right
  | Join { algo = Nrjn; left; _ } -> pipelined left
  | Top_k { input; _ } -> pipelined input
  (* an exchange drains its parallel producers: first results wait on
     whole morsels, so it breaks the pipeline property *)
  | Exchange _ -> false
  | Nary_rank_join { inputs; _ } -> List.for_all pipelined inputs
  (* anyK materializes and indexes its inputs before the first answer *)
  | Any_k _ -> false

let rec relations = function
  | Table_scan { table } -> [ table ]
  | Index_scan { table; _ } | Rank_index_scan { table; _ } -> [ table ]
  | Remote_scan { tables; _ } -> tables
  (* every shard serves the same relations; report one copy *)
  | Gather_merge { inputs; _ } -> (
      match inputs with first :: _ -> relations first | [] -> [])
  | Filter { input; _ } | Sort { input; _ } | Top_k { input; _ }
  | Exchange { input; _ } ->
      relations input
  | Join { left; right; _ } -> relations left @ relations right
  | Nary_rank_join { inputs; _ } | Any_k { inputs; _ } ->
      List.concat_map relations inputs

(* Degree of parallelism: the widest exchange in the tree (1 = serial).
   A plan property like order and pipelining: stored in the memo, audited
   by planlint (PL11). *)
let rec dop = function
  (* inter-shard parallelism is not an Exchange: dop tracks intra-shard
     morsel width, the gather's fan-out is its own axis *)
  | Table_scan _ | Index_scan _ | Rank_index_scan _ | Remote_scan _
  | Gather_merge _ ->
      1
  | Filter { input; _ } | Sort { input; _ } | Top_k { input; _ } ->
      dop input
  | Exchange { dop = d; input } -> max d (dop input)
  | Join { left; right; _ } -> max (dop left) (dop right)
  | Nary_rank_join { inputs; _ } | Any_k { inputs; _ } ->
      List.fold_left (fun acc i -> max acc (dop i)) 1 inputs

let rec has_rank_join = function
  | Table_scan _ | Index_scan _ | Rank_index_scan _ | Remote_scan _
  | Gather_merge _ ->
      false
  | Filter { input; _ } | Sort { input; _ } | Top_k { input; _ }
  | Exchange { input; _ } ->
      has_rank_join input
  | Join { algo = Hrjn | Nrjn; _ } -> true
  | Join { left; right; _ } -> has_rank_join left || has_rank_join right
  | Nary_rank_join _ | Any_k _ -> true

let rec join_count = function
  (* a remote scan's pushed subquery may itself join; locally it is a leaf *)
  | Table_scan _ | Index_scan _ | Rank_index_scan _ | Remote_scan _
  | Gather_merge _ ->
      0
  | Filter { input; _ } | Sort { input; _ } | Top_k { input; _ }
  | Exchange { input; _ } ->
      join_count input
  | Join { left; right; _ } -> 1 + join_count left + join_count right
  | Nary_rank_join { inputs; _ } | Any_k { inputs; _ } ->
      List.length inputs - 1 + List.fold_left (fun acc i -> acc + join_count i) 0 inputs

let canonical_schema schema =
  Schema.columns schema
  |> List.stable_sort (fun a b ->
         match compare a.Schema.relation b.Schema.relation with
         | 0 -> compare a.Schema.name b.Schema.name
         | c -> c)
  |> Schema.of_columns

let rec schema_of catalog = function
  | Table_scan { table } | Index_scan { table; _ } | Rank_index_scan { table; _ }
    ->
      (Storage.Catalog.table catalog table).Storage.Catalog.tb_schema
  (* shards stream SELECT * rows permuted into canonical (relation, name)
     column order so the merge's tie comparator is plan-shape independent *)
  | Remote_scan { tables; _ } -> (
      match tables with
      | first :: rest ->
          List.fold_left
            (fun acc t ->
              Schema.concat acc
                (Storage.Catalog.table catalog t).Storage.Catalog.tb_schema)
            (Storage.Catalog.table catalog first).Storage.Catalog.tb_schema
            rest
          |> canonical_schema
      | [] -> invalid_arg "Plan.schema_of: remote scan over no tables")
  | Gather_merge { inputs; _ } -> (
      match inputs with
      | first :: _ -> schema_of catalog first
      | [] -> invalid_arg "Plan.schema_of: empty gather")
  | Filter { input; _ } | Sort { input; _ } | Top_k { input; _ }
  | Exchange { input; _ } ->
      schema_of catalog input
  | Join { left; right; _ } ->
      Schema.concat (schema_of catalog left) (schema_of catalog right)
  | Nary_rank_join { inputs; _ } | Any_k { inputs; _ } -> (
      match inputs with
      | first :: rest ->
          List.fold_left
            (fun acc i -> Schema.concat acc (schema_of catalog i))
            (schema_of catalog first) rest
      | [] -> invalid_arg "Plan.schema_of: empty N-ary join")

let algo_name = function
  | Nested_loops -> "NLJ"
  | Index_nl -> "INLJ"
  | Hash -> "HJ"
  | Sort_merge -> "MJ"
  | Hrjn -> "HRJN"
  | Nrjn -> "NRJN"

let rec describe = function
  | Table_scan { table } -> table
  | Index_scan { table; desc; _ } -> Printf.sprintf "%s[ix%s]" table (if desc then "↓" else "↑")
  | Rank_index_scan { table; index; lo; hi; dense; _ } ->
      Printf.sprintf "%s[%srank %d..%d%s]" table
        (if dense then "dense " else "")
        lo hi
        (match index with Some _ -> "" | None -> "/sort")
  | Remote_scan { shard; tables; k_bound; _ } ->
      Printf.sprintf "Remote%d(%s%s)" shard
        (String.concat "," tables)
        (match k_bound with Some k -> Printf.sprintf " k'=%d" k | None -> "")
  | Gather_merge { inputs; k; _ } ->
      Printf.sprintf "Gather%s(%s)"
        (match k with Some k -> Printf.sprintf "[k=%d]" k | None -> "")
        (String.concat "," (List.map describe inputs))
  | Filter { input; _ } -> Printf.sprintf "σ(%s)" (describe input)
  | Sort { input; _ } -> Printf.sprintf "Sort(%s)" (describe input)
  | Join { algo; left; right; _ } ->
      Printf.sprintf "%s(%s,%s)" (algo_name algo) (describe left) (describe right)
  | Top_k { k; input } -> Printf.sprintf "Top%d(%s)" k (describe input)
  | Exchange { dop; input } -> Printf.sprintf "Ex%d(%s)" dop (describe input)
  | Nary_rank_join { inputs; _ } ->
      Printf.sprintf "HRJN*(%s)" (String.concat "," (List.map describe inputs))
  | Any_k { inputs; shape; _ } ->
      Printf.sprintf "AnyK%s(%s)"
        (match shape with `Path -> "path" | `Star -> "star")
        (String.concat "," (List.map describe inputs))

let dir_name = function Interesting_orders.Asc -> "ASC" | Interesting_orders.Desc -> "DESC"

let pp fmt plan =
  let rec go indent plan =
    let pad = String.make indent ' ' in
    match plan with
    | Table_scan { table } -> Format.fprintf fmt "%sTableScan %s@." pad table
    | Index_scan { table; index; key; desc } ->
        Format.fprintf fmt "%sIndexScan %s using %s on %a %s@." pad table index
          Expr.pp key
          (if desc then "DESC" else "ASC")
    | Rank_index_scan { table; index; score; lo; hi; dense } ->
        Format.fprintf fmt "%sRankIndexScan %s %sranks %d..%d on %a %s@." pad
          table
          (if dense then "dense " else "")
          lo hi Expr.pp score
          (match index with
          | Some nm -> "using " ^ nm
          | None -> "via sort (no rank index)")
    | Remote_scan { shard; endpoint; sql; k_bound; _ } ->
        Format.fprintf fmt "%sRemoteScan shard=%d %s%s  [%s]@." pad shard
          endpoint
          (match k_bound with
          | Some k -> Printf.sprintf " k'=%d" k
          | None -> "")
          sql
    | Gather_merge { inputs; score; k } ->
        Format.fprintf fmt "%sGatherMerge shards=%d%s%t@." pad
          (List.length inputs)
          (match k with Some k -> Printf.sprintf " k=%d" k | None -> "")
          (fun fmt ->
            match score with
            | Some e -> Format.fprintf fmt "  [rank: %a]" Expr.pp e
            | None -> ());
        List.iter (go (indent + 2)) inputs
    | Filter { pred; input } ->
        Format.fprintf fmt "%sFilter %a@." pad Expr.pp pred;
        go (indent + 2) input
    | Sort { order; input } ->
        Format.fprintf fmt "%sSort on %a %s@." pad Expr.pp order.expr
          (dir_name order.direction);
        go (indent + 2) input
    | Join { algo; cond; left; right; left_score; right_score } ->
        Format.fprintf fmt "%s%s on %s.%s = %s.%s" pad (algo_name algo)
          cond.Logical.left_table cond.Logical.left_column
          cond.Logical.right_table cond.Logical.right_column;
        (match combined_score left_score right_score with
        | Some e when algo = Hrjn || algo = Nrjn ->
            Format.fprintf fmt "  [rank: %a]" Expr.pp e
        | _ -> ());
        Format.fprintf fmt "@.";
        go (indent + 2) left;
        go (indent + 2) right
    | Top_k { k; input } ->
        Format.fprintf fmt "%sTopK k=%d@." pad k;
        go (indent + 2) input
    | Exchange { dop; input } ->
        Format.fprintf fmt "%sExchange dop=%d@." pad dop;
        go (indent + 2) input
    | Nary_rank_join { inputs; key; scores; _ } ->
        Format.fprintf fmt "%sHRJN* on shared key %s  [rank: %a]@." pad key
          Expr.pp
          (List.fold_left
             (fun acc e -> Expr.Add (acc, e))
             (List.hd scores) (List.tl scores));
        List.iter (go (indent + 2)) inputs
    | Any_k { inputs; scores; shape; _ } ->
        Format.fprintf fmt "%sAnyK %s enumeration  [rank: %a]@." pad
          (match shape with `Path -> "path" | `Star -> "star")
          Expr.pp
          (List.fold_left
             (fun acc e -> Expr.Add (acc, e))
             (List.hd scores) (List.tl scores));
        List.iter (go (indent + 2)) inputs
  in
  go 0 plan
