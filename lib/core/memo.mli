(** The MEMO structure of bottom-up dynamic-programming enumeration.

    One entry per subset of the query's relations (keyed by bitmask); each
    entry holds the non-pruned subplans, at most one per property class.
    Pruning implements Section 3.3:

    - a subplan is pruned by a cheaper subplan with the same or stronger
      properties (order, pipelining);
    - comparisons between a k-dependent rank-join plan and a k-independent
      (blocking sort) plan use the crossover k{^*}: the sort plan is pruned
      when the rank plan wins over the whole feasible range (k* > n{_a});
      the rank plan is pruned when the sort plan already wins at
      [k = k_min] and the rank plan has no pipelining advantage; otherwise
      both are retained. *)

type subplan = {
  plan : Plan.t;
  est : Cost_model.estimate;
  order : Plan.order option;
  pipelined : bool;
  dop : int;  (** Degree-of-parallelism property bit: [Plan.dop plan]. *)
  vectorized : bool;
      (** Vectorized-execution property bit: {!Vectorize.vectorized}
          — whether the executor runs any of the plan batch-at-a-time.
          Stored (like [dop]) so EXPLAIN, the plan cache and planlint's
          PL15 see the property the plan was costed with. *)
}

val subplan_of : Cost_model.env -> Plan.t -> subplan
(** Compute a plan's estimate and properties. *)

type t

val create : unit -> t

val add : t -> Cost_model.env -> first_rows:bool -> key:int -> subplan -> bool
(** Insert with pruning; [false] when the plan was pruned on arrival. With
    [first_rows:false], pipelining is not a protected property (plain System
    R behaviour). Every call counts toward {!generated}. *)

val plans : t -> int -> subplan list
(** Retained plans of an entry (empty list for an absent entry). *)

val entry_keys : t -> int list

val retained : t -> int
(** Total retained plans across all entries — the quantity Figures 2 and 3
    compare. *)

val generated : t -> int
(** Total plans ever offered to {!add}. *)

val decision_cost : Cost_model.env -> subplan -> float
(** The cost used for same-kind comparisons: [cost_at k_min]. *)

val best : t -> Cost_model.env -> ?order:Plan.order -> int -> subplan option
(** Cheapest retained plan of an entry, optionally restricted to plans
    producing the given order. *)

val pp_entry : Format.formatter -> subplan list -> unit
