(** Physical query plans and their plan properties.

    A plan is a tree of physical operators. Two properties drive rank-aware
    pruning (Section 3.3): the {e order} a plan produces (possibly an order
    {e expression}, per Section 3.1) and whether the plan is {e pipelined}
    (First-N-Rows optimization treats pipelining as a property that protects
    a plan from being pruned by a cheaper blocking plan). *)

open Relalg

type order = { expr : Expr.t; direction : Interesting_orders.direction }

type join_algo =
  | Nested_loops
  | Index_nl  (** Probes an index on the right (single) relation. *)
  | Hash
  | Sort_merge  (** Merge step only; inputs must already be ordered. *)
  | Hrjn
  | Nrjn  (** Left input is the ranked outer. *)

type t =
  | Table_scan of { table : string }
  | Index_scan of { table : string; index : string; key : Expr.t; desc : bool }
  | Rank_index_scan of {
      table : string;
      index : string option;
      score : Expr.t;
      lo : int;
      hi : int;
      dense : bool;
    }
      (** By-rank window over a scored base table: the rows ranked
          [lo..hi] (1-based, rank 1 = best score), best first, duplicate
          scores broken by the canonical tuple order. [index = Some nm]
          walks the order-statistic B+-tree [nm] in O(log n + window);
          [index = None] is the drain-sort-slice fallback used when no
          score index exists (blocking). [dense] numbers distinct scores
          consecutively (DENSE_RANK) instead of competition ranking; a
          dense window keeps whole tie blocks. *)
  | Remote_scan of {
      shard : int;
      endpoint : string;
      sql : string;
      tables : string list;
      score : Expr.t option;
      k_bound : int option;
    }
      (** One shard's half of a scatter/gather: the pushed-down subquery
          [sql] executed remotely over [endpoint], streaming full rows in
          canonical (relation, name) column order. [score = Some _] means
          the stream is non-increasing in that score, the property the
          gather's threshold bound relies on; [k_bound] is the
          Propagate-style per-shard k' the coordinator derived (under hash
          partitioning each shard contributes at most the global k). *)
  | Gather_merge of { inputs : t list; score : Expr.t option; k : int option }
      (** Coordinator-side streaming merge of per-shard sorted streams:
          emits globally best-first using the canonical tie comparator and
          stops after [k] rows. Threshold-style early termination: a shard
          is pulled only while its last streamed score could still beat the
          current best buffered candidate, so cold shards are never
          drained. *)
  | Filter of { pred : Expr.t; input : t }
  | Sort of { order : order; input : t }
      (** Blocking sort enforcer gluing an interesting order onto a subplan. *)
  | Join of {
      algo : join_algo;
      cond : Logical.join_pred;
      left : t;
      right : t;
      left_score : Expr.t option;
          (** Rank joins: score expression of the left input (weights
              included); [None] for traditional joins. *)
      right_score : Expr.t option;
    }
  | Top_k of { k : int; input : t }
      (** Stop after [k] results from a ranked input. *)
  | Exchange of { dop : int; input : t }
      (** Morsel-driven parallel execution of [input] on [dop] workers,
          gathered in morsel order (output is degree-invariant). Breaks
          pipelining: results arrive a whole morsel at a time, so the k*
          rule decides when a parallel drain beats a serial incremental
          plan. When [input] is [Top_k (Sort ...)] the executor fuses the
          pair into a parallel top-N with per-worker local top-k merged
          at the gather. *)
  | Nary_rank_join of {
      inputs : t list;  (** Each ordered on its own score expression. *)
      scores : Expr.t list;  (** Per-input weighted score expressions. *)
      key : string;  (** Shared join column name. *)
      tables : string list;  (** Relation qualifying [key] for each input. *)
    }
      (** Flat m-way rank join on one shared key (star queries): one
          threshold over all inputs instead of a binary pipeline. *)
  | Any_k of {
      inputs : t list;
          (** Per-relation access plans in join-tree DFS order: input 0 is
              the root; every later input joins an earlier one. *)
      scores : Expr.t list;  (** Per-input weighted partial score. *)
      keys : (int * Expr.t * Expr.t) list;
          (** For input [i >= 1], entry [i-1] is
              [(parent, parent_key, child_key)]: the equi-join binding
              input [i] to input [parent < i]. *)
      shape : [ `Path | `Star ];
    }
      (** Ranked-enumeration operator (anyK-style dynamic programming over
          an acyclic path/star join tree). Materializes and indexes its
          inputs, then streams {e every} join answer in non-increasing
          score order with bounded per-result delay — the resumable sink
          behind cursor-style [FETCH NEXT]. *)

val order_equal : order -> order -> bool

val combined_score : Expr.t option -> Expr.t option -> Expr.t option
(** The score a rank join emits: the sum of whichever side scores exist
    ([None] when neither side is scored). *)

val order_satisfies : have:order option -> want:order option -> bool
(** [true] when a plan producing [have] can serve where [want] is required
    ([want = None] is satisfied by anything). *)

val order_of : t -> order option
(** The order property of a plan's output. Hash and index-nested-loops joins
    preserve their left input's order; block nested loops destroys order;
    sort-merge emits the (ascending) left join key order; rank joins emit
    the combined score order. *)

val pipelined : t -> bool
(** Whether the plan produces its first results without consuming whole
    inputs. [Sort] is blocking; rank-joins are "almost non-blocking" and
    count as pipelined (Section 2.2); a hash join is pipelined in its probe
    (left) input. *)

val dop : t -> int
(** Degree-of-parallelism property: the widest [Exchange] in the tree,
    [1] for a fully serial plan. *)

val relations : t -> string list
(** Base relations covered by the plan, in schema order. *)

val has_rank_join : t -> bool

val join_count : t -> int

val schema_of : Storage.Catalog.t -> t -> Schema.t

val algo_name : join_algo -> string

val pp : Format.formatter -> t -> unit
(** Multi-line operator-tree rendering. *)

val describe : t -> string
(** One-line summary, e.g. ["HRJN(HRJN(A,B),C)"]. *)
