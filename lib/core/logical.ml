open Relalg

type base = {
  name : string;
  filter : Expr.t option;
  score : Expr.t option;
  weight : float;
}

type join_pred = {
  left_table : string;
  left_column : string;
  right_table : string;
  right_column : string;
}

type t = {
  relations : base list;
  joins : join_pred list;
  k : int option;
  rank_range : (int * int) option;
  rank_dense : bool;
}

let base ?filter ?score ?weight name =
  let weight =
    match weight, score with
    | Some w, _ -> w
    | None, Some _ -> 1.0
    | None, None -> 0.0
  in
  { name; filter; score; weight }

let equijoin (lt, lc) (rt, rc) =
  { left_table = lt; left_column = lc; right_table = rt; right_column = rc }

let relation_names t = List.map (fun b -> b.name) t.relations

let connected_set relations joins names =
  match names with
  | [] | [ _ ] -> true
  | first :: _ ->
      ignore relations;
      let member n = List.mem n names in
      let visited = Hashtbl.create 8 in
      let rec visit n =
        if not (Hashtbl.mem visited n) then begin
          Hashtbl.add visited n ();
          List.iter
            (fun j ->
              if String.equal j.left_table n && member j.right_table then
                visit j.right_table
              else if String.equal j.right_table n && member j.left_table then
                visit j.left_table)
            joins
        end
      in
      visit first;
      List.for_all (Hashtbl.mem visited) names

let make ~relations ~joins ?k ?rank_range ?(rank_dense = false) () =
  let names = List.map (fun b -> b.name) relations in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then
        invalid_arg ("Logical.make: duplicate relation " ^ n);
      Hashtbl.add seen n ())
    names;
  List.iter
    (fun j ->
      if not (Hashtbl.mem seen j.left_table) then
        invalid_arg ("Logical.make: join references unknown relation " ^ j.left_table);
      if not (Hashtbl.mem seen j.right_table) then
        invalid_arg ("Logical.make: join references unknown relation " ^ j.right_table))
    joins;
  if not (connected_set relations joins names) then
    invalid_arg "Logical.make: disconnected join graph";
  (match rank_range with
  | Some (lo, hi) ->
      if lo < 1 || hi < lo then
        invalid_arg "Logical.make: rank range must satisfy 1 <= lo <= hi";
      if List.length relations <> 1 then
        invalid_arg "Logical.make: rank range requires a single relation";
      if k <> None then
        invalid_arg "Logical.make: rank range and LIMIT are exclusive"
  | None ->
      if rank_dense then
        invalid_arg "Logical.make: dense ranking requires a rank range");
  { relations; joins; k; rank_range; rank_dense }

let find_relation t name =
  match List.find_opt (fun b -> String.equal b.name name) t.relations with
  | Some b -> b
  | None -> raise Not_found

let ranked_relations t =
  List.filter (fun b -> b.weight > 0.0 && Option.is_some b.score) t.relations

let is_ranking t = Option.is_some t.k && ranked_relations t <> []

let weighted_terms bases =
  List.filter_map
    (fun b ->
      match b.score with
      | Some e when b.weight > 0.0 -> Some (b.weight, e)
      | _ -> None)
    bases

let scoring_expr t =
  match weighted_terms t.relations with
  | [] -> None
  | terms -> Some (Expr.weighted_sum terms)

let partial_scoring_expr t names =
  let bases = List.filter (fun b -> List.mem b.name names) t.relations in
  match weighted_terms bases with
  | [] -> None
  | terms -> Some (Expr.weighted_sum terms)

let joins_between t left_names right_names =
  List.filter_map
    (fun j ->
      if List.mem j.left_table left_names && List.mem j.right_table right_names
      then Some j
      else if
        List.mem j.right_table left_names && List.mem j.left_table right_names
      then
        Some
          {
            left_table = j.right_table;
            left_column = j.right_column;
            right_table = j.left_table;
            right_column = j.left_column;
          }
      else None)
    t.joins

let connected t names = connected_set t.relations t.joins names

let pp fmt t =
  let pp_join fmt j =
    Format.fprintf fmt "%s.%s = %s.%s" j.left_table j.left_column j.right_table
      j.right_column
  in
  Format.fprintf fmt "SELECT ... FROM %s WHERE %a"
    (String.concat ", " (relation_names t))
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " AND ")
       pp_join)
    t.joins;
  (match t.rank_range with
  | Some (lo, hi) ->
      Format.fprintf fmt " %s BETWEEN %d AND %d"
        (if t.rank_dense then "DENSE_RANK" else "RANK")
        lo hi
  | None -> ());
  (match scoring_expr t with
  | Some e -> Format.fprintf fmt " ORDER BY %a DESC" Expr.pp e
  | None -> ());
  match t.k with
  | Some k -> Format.fprintf fmt " LIMIT %d" k
  | None -> ()
