type annotation = {
  node : Plan.t;
  required : float;
  depths : Depth_model.depths option;
  children : annotation list;
}

let rec annotate env plan required =
  match plan with
  | Plan.Table_scan _ | Plan.Index_scan _ | Plan.Rank_index_scan _
  | Plan.Remote_scan _ ->
      { node = plan; required; depths = None; children = [] }
  | Plan.Gather_merge { inputs; _ } ->
      (* Threshold merge: under a flat score prior each shard owes about an
         equal split of the requirement, plus one batch of slack before its
         bound falls below the global k-th candidate. *)
      let n = float_of_int (max 1 (List.length inputs)) in
      let per_shard = (required /. n) +. 8.0 in
      {
        node = plan;
        required;
        depths = None;
        children = List.map (fun input -> annotate env input per_shard) inputs;
      }
  | Plan.Top_k { k; input } ->
      let r = Float.min required (float_of_int k) in
      { node = plan; required = r; depths = None; children = [ annotate env input r ] }
  | Plan.Filter { pred; input } ->
      let sel = Cost_model.filter_selectivity env pred in
      let need = if sel <= 0.0 then infinity else required /. sel in
      { node = plan; required; depths = None; children = [ annotate env input need ] }
  | Plan.Exchange { input; _ } ->
      (* A gather drains its producers regardless of how much the consumer
         takes: the child owes its full output. *)
      let child_est = Cost_model.estimate env input in
      {
        node = plan;
        required;
        depths = None;
        children = [ annotate env input child_est.Cost_model.rows ];
      }
  | Plan.Sort { input; _ } ->
      (* Blocking: the child must produce everything. *)
      let child_est = Cost_model.estimate env input in
      {
        node = plan;
        required;
        depths = None;
        children = [ annotate env input child_est.Cost_model.rows ];
      }
  | Plan.Join { algo = Plan.Hrjn; cond; left; right; _ } ->
      let d = Cost_model.rank_join_depths env plan ~k:required ~cond ~left ~right in
      {
        node = plan;
        required;
        depths = Some d;
        children =
          [
            annotate env left d.Depth_model.d_left;
            annotate env right d.Depth_model.d_right;
          ];
      }
  | Plan.Join { algo = Plan.Nrjn; cond; left; right; _ } ->
      let d = Cost_model.rank_join_depths env plan ~k:required ~cond ~left ~right in
      let right_est = Cost_model.estimate env right in
      {
        node = plan;
        required;
        depths = Some d;
        children =
          [
            annotate env left d.Depth_model.d_left;
            (* Inner is re-scanned in full. *)
            annotate env right right_est.Cost_model.rows;
          ];
      }
  | Plan.Join { cond = _; left; right; _ } ->
      let est = Cost_model.estimate env plan in
      let l = Cost_model.estimate env left and r = Cost_model.estimate env right in
      let f =
        if est.Cost_model.rows <= 0.0 then 1.0
        else Float.min 1.0 (required /. est.Cost_model.rows)
      in
      {
        node = plan;
        required;
        depths = None;
        children =
          [
            annotate env left (f *. l.Cost_model.rows);
            annotate env right r.Cost_model.rows;
          ];
      }
  | Plan.Nary_rank_join { inputs; key; tables; _ } ->
      let m = List.length inputs in
      let s =
        match tables with
        | a :: b :: _ ->
            Rkutil.Mathx.clamp ~lo:1e-12 ~hi:1.0
              (Storage.Catalog.estimate_join_selectivity env.Cost_model.catalog
                 ~left:(a, key) ~right:(b, key))
        | _ -> 1.0
      in
      let d = Depth_model.nary_uniform_depth ~m ~k:(Float.max 1.0 required) ~s in
      {
        node = plan;
        required;
        depths = None;
        children = List.map (fun input -> annotate env input d) inputs;
      }
  | Plan.Any_k { inputs; _ } ->
      (* The anyK build phase materializes every input in full before the
         first answer; required depth never propagates below it. *)
      {
        node = plan;
        required;
        depths = None;
        children =
          List.map
            (fun input ->
              let est = Cost_model.estimate env input in
              annotate env input est.Cost_model.rows)
            inputs;
      }

let run env ~k plan = annotate env plan (float_of_int (max 1 k))

let rank_join_annotations ann =
  let rec go acc a =
    let acc =
      match a.node, a.depths with
      | Plan.Join { algo = Plan.Hrjn | Plan.Nrjn; _ }, Some d ->
          (a.node, a.required, d) :: acc
      | _ -> acc
    in
    List.fold_left go acc a.children
  in
  List.rev (go [] ann)

let pp fmt ann =
  let rec go indent a =
    let pad = String.make indent ' ' in
    let head =
      match a.node with
      | Plan.Table_scan { table } -> "TableScan " ^ table
      | Plan.Index_scan { table; _ } -> "IndexScan " ^ table
      | Plan.Rank_index_scan { table; lo; hi; _ } ->
          Printf.sprintf "RankIndexScan %s %d..%d" table lo hi
      | Plan.Filter _ -> "Filter"
      | Plan.Sort _ -> "Sort"
      | Plan.Join { algo; _ } -> Plan.algo_name algo
      | Plan.Top_k { k; _ } -> Printf.sprintf "TopK k=%d" k
      | Plan.Exchange { dop; _ } -> Printf.sprintf "Exchange dop=%d" dop
      | Plan.Nary_rank_join { inputs; _ } ->
          Printf.sprintf "HRJN* (%d-way)" (List.length inputs)
      | Plan.Any_k { inputs; _ } ->
          Printf.sprintf "AnyK (%d-way)" (List.length inputs)
      | Plan.Remote_scan { shard; _ } -> Printf.sprintf "RemoteScan shard=%d" shard
      | Plan.Gather_merge { inputs; _ } ->
          Printf.sprintf "GatherMerge (%d shards)" (List.length inputs)
    in
    (match a.depths with
    | Some d ->
        Format.fprintf fmt "%s%s  k=%.0f  dL=%.0f dR=%.0f@." pad head a.required
          d.Depth_model.d_left d.Depth_model.d_right
    | None -> Format.fprintf fmt "%s%s  k=%.0f@." pad head a.required);
    List.iter (go (indent + 2)) a.children
  in
  go 0 ann
