(** Logical description of a top-k join query.

    The shape the optimizer works on: a set of base relations (each possibly
    carrying a selection and a score expression), a conjunction of binary
    equi-join predicates, a weighted-sum ranking function over the
    per-relation scores, and the number of required answers [k]. Queries Q1
    and Q2 of the paper are instances. *)

open Relalg

type base = {
  name : string;  (** Catalog table name (also the alias). *)
  filter : Expr.t option;  (** Single-table selection predicate. *)
  score : Expr.t option;  (** Per-relation score expression, e.g. [A.c1]. *)
  weight : float;  (** Weight of this relation's score in the ranking
                       function; 0 when the relation is unranked. *)
}

type join_pred = {
  left_table : string;
  left_column : string;
  right_table : string;
  right_column : string;
}

type t = {
  relations : base list;
  joins : join_pred list;
  k : int option;  (** [None] for a plain (unranked) join query. *)
  rank_range : (int * int) option;
      (** [WHERE rank() BETWEEN lo AND hi] — a by-rank window over a scored
          single-table query. Mutually exclusive with [k] (a rank-range
          query is not a top-k query: it has no Top_k root, so
          {!is_ranking} stays false and the rank-join enumerator is
          bypassed). Ranks are 1-based; rank 1 = best score. *)
  rank_dense : bool;
      (** [true] when the window is [dense_rank() BETWEEN ...]: distinct
          scores are numbered consecutively and the window keeps whole tie
          blocks. Only meaningful with [rank_range = Some _]. *)
}

val base : ?filter:Expr.t -> ?score:Expr.t -> ?weight:float -> string -> base
(** Weight defaults to 1.0 when a score is given, 0.0 otherwise. *)

val equijoin : string * string -> string * string -> join_pred

val make :
  relations:base list ->
  joins:join_pred list ->
  ?k:int ->
  ?rank_range:int * int ->
  ?rank_dense:bool ->
  unit ->
  t
(** @raise Invalid_argument on duplicate relation names, joins over unknown
    relations, a disconnected join graph with ≥ 2 relations, an invalid
    rank range (must be [1 <= lo <= hi], single relation, no [k]), or
    [rank_dense] without a rank range. [rank_dense] defaults to [false]. *)

val find_relation : t -> string -> base
(** @raise Not_found for unknown names. *)

val ranked_relations : t -> base list
(** Relations contributing to the ranking function (weight > 0, score set). *)

val is_ranking : t -> bool
(** The query has a ranking function and a [k]. *)

val scoring_expr : t -> Expr.t option
(** The full ranking expression [Σ wᵢ·scoreᵢ]; [None] when unranked. *)

val partial_scoring_expr : t -> string list -> Expr.t option
(** The ranking expression restricted to a subset of relations — the score
    a rank-join subplan over that subset produces. [None] if no relation in
    the subset is ranked. *)

val joins_between : t -> string list -> string list -> join_pred list
(** Join predicates connecting a relation in the first set to one in the
    second (normalised so the left side names a relation of the first set). *)

val connected : t -> string list -> bool
(** Whether the join graph restricted to the given relations is connected. *)

val relation_names : t -> string list

val pp : Format.formatter -> t -> unit
