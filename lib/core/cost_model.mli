(** Cost estimation for plans, including rank-aware partial costs.

    Traditional operators are costed on full-input formulas (scan pages,
    external-sort passes, hash/merge/NL joins). Rank-join operators are the
    novelty (Section 3.3): their cost depends on how many ranked results [k]
    are pulled from them, via the estimated input depths of {!Depth_model}.
    Every estimate therefore carries both a total cost and a [cost_at]
    function; for blocking plans the two coincide. Costs are in page-I/O
    units with a small CPU term. *)

open Relalg

type env = {
  catalog : Storage.Catalog.t;
  query : Logical.t;
  k_min : int;  (** The k of the query: minimum any subplan will be asked. *)
  cpu_factor : float;  (** I/O-unit cost of processing one tuple. *)
  memory_tuples : int;  (** Sort memory, in tuples. *)
  sort_fan_in : int;
  nl_block_tuples : int;
  depth_mode : [ `Average | `Worst ];
      (** Which closed form to use; default [`Worst] — the operator's
          threshold-based stopping tracks the certification (worst-case)
          bound, cf. EXPERIMENTS.md. *)
  dop : int;
      (** Workers available for intra-query parallelism; [1] (the
          default) disables exchange generation entirely. *)
  exchange_startup : float;
      (** Fixed I/O-unit charge per exchange (pump scheduling, slot
          setup): keeps small inputs serial. *)
  remote_startup : float;
      (** Fixed I/O-unit charge per remote shard touched by a gather
          (connection round-trip, shard-side prepare). *)
  remote_row : float;
      (** Per-row transfer charge on a remote stream (wire encode /
          decode), on top of [cpu_factor]. *)
  vector_cpu : float;
      (** Multiplier on [cpu_factor] where the executor vectorizes
          ({!Vectorize.spine_ok} subplans in bulk contexts: scans and
          filter stacks feeding sorts, hash joins and the fused top-k
          sink). The default 1.0 is behaviourally neutral — plan choices
          match the tuple-at-a-time model; a measured per-deployment
          discount (e.g. 0.25) makes spine-heavy plans proportionally
          cheaper. *)
}

val default_env :
  ?k_min:int ->
  ?cpu_factor:float ->
  ?memory_tuples:int ->
  ?sort_fan_in:int ->
  ?nl_block_tuples:int ->
  ?depth_mode:[ `Average | `Worst ] ->
  ?dop:int ->
  ?exchange_startup:float ->
  ?remote_startup:float ->
  ?remote_row:float ->
  ?vector_cpu:float ->
  Storage.Catalog.t ->
  Logical.t ->
  env

type estimate = {
  rows : float;  (** Estimated full output cardinality. *)
  total_cost : float;  (** Cost to produce every output row. *)
  cost_at : float -> float;
      (** [cost_at x]: cost to produce the first [x] output rows. Equals
          [total_cost] for blocking plans; below it for pipelined ones. *)
  k_dependent : bool;
      (** True when [cost_at] genuinely varies with x because a rank-join's
          early-out is involved. *)
}

val estimate : env -> Plan.t -> estimate

val filter_selectivity : env -> Expr.t -> float
(** Histogram-based when the predicate is a comparison of a column with a
    constant; 1/3 heuristic otherwise. (Purely syntactic over the
    predicate — it deliberately takes no schema, so Filter estimates need
    no [Plan.schema_of] rebuild of the whole subtree.) *)

val join_selectivity : env -> Logical.join_pred -> float

val rank_join_depths :
  env -> Plan.t -> k:float -> cond:Logical.join_pred -> left:Plan.t -> right:Plan.t
  -> Depth_model.depths
(** The depths the model predicts for a rank join of the two subplans at the
    given [k] — also used directly by the experiment harness. *)

val any_k_depths_for :
  env -> k:float -> cond:Logical.join_pred -> left:Plan.t -> right:Plan.t
  -> Depth_model.depths
(** The "Any-k" lower-bound estimate (step 1 only), reported alongside the
    top-k estimate in Figures 13-14. *)

val k_star : env -> rank_plan:Plan.t -> sort_plan:Plan.t -> float option
(** The crossover k* at which the (k-dependent) rank plan's cost equals the
    (k-independent) sort plan's total cost; [None] when the rank plan is
    cheaper over the whole feasible range [\[1, rows\]] (i.e. k* > n{_a}). *)
