(* Which plan shapes the vectorized executor runs on columnar batches, and
   the recompute of the Vectorized plan property.

   The executor batches a *vector spine*: a Table_scan leaf, any stack of
   Filters, and in-memory-probed Hash joins whose LEFT input continues the
   spine and whose right (build) side is an ordinary serial subplan. Index
   scans stay tuple-at-a-time (a B+-tree walk is inherently per-tuple, and
   scored index scans feed early-out consumers that must not over-read), as
   do rank joins, sorts, top-k heaps and everything under an Exchange (its
   workers compile their morsels serially). Batches flow upward until a
   sink boundary, where an adapter restores the GetNext interface — or into
   the fused vectorized top-k sink when the plan ends in Top_k over Sort
   over a spine.

   [vectorized] mirrors the executor's context threading exactly — planlint
   PL15 checks the memo's stored bit against this recompute, so any change
   here must ship with the matching executor change (and vice versa). *)

let serial_ok p = not (Plan.has_rank_join p) && not (Parallel.has_exchange p)

let rec spine_ok = function
  | Plan.Table_scan _ -> true
  | Plan.Filter { input; _ } -> spine_ok input
  | Plan.Join { algo = Plan.Hash; left; right; _ } ->
      spine_ok left && serial_ok right
  | _ -> false

let fused_sink = function
  | Plan.Top_k { input = Plan.Sort { input = sp; _ }; _ } -> spine_ok sp
  | _ -> false

(* [any bulk p]: does compiling [p] in a bulk (true) or streaming (false)
   context vectorize any operator? Mirrors the executor's child-context
   rules case by case. *)
let rec any bulk p =
  if bulk && spine_ok p then true
  else if fused_sink p then true
  else
    match p with
    | Plan.Table_scan _ | Plan.Index_scan _ | Plan.Rank_index_scan _
    | Plan.Remote_scan _ | Plan.Gather_merge _ ->
        false
    | Plan.Exchange _ -> false (* workers compile serially *)
    | Plan.Filter { input; _ } -> any bulk input
    | Plan.Sort { input; _ } -> any true input (* sorts drain: always bulk below *)
    | Plan.Top_k { input = Plan.Sort _ as s; _ } -> any bulk s
    | Plan.Top_k { input; _ } ->
        (* Non-sort ranked inputs may stop early: streaming below. *)
        any false input
    | Plan.Join { algo = Plan.Hash; left; right; _ } ->
        (* Both sides of a hash join are fully drained: bulk below. *)
        any true left || any true right
    | Plan.Join { algo = Plan.Nested_loops; left; right; _ } ->
        any bulk left || any true right
    | Plan.Join { algo = Plan.Sort_merge; left; right; _ } ->
        any bulk left || any bulk right
    | Plan.Join { algo = Plan.Index_nl; left; right; _ } ->
        any bulk left || any false right
    | Plan.Join { algo = Plan.Hrjn | Plan.Nrjn; left; right; _ } ->
        (* Rank joins stream incrementally from their inputs. *)
        any false left || any false right
    | Plan.Nary_rank_join { inputs; _ } | Plan.Any_k { inputs; _ } ->
        List.exists (any false) inputs

let vectorized p = any true p
