open Relalg

type env = {
  catalog : Storage.Catalog.t;
  query : Logical.t;
  k_min : int;
  cpu_factor : float;
  memory_tuples : int;
  sort_fan_in : int;
  nl_block_tuples : int;
  depth_mode : [ `Average | `Worst ];
  dop : int;
  exchange_startup : float;
  remote_startup : float;
  remote_row : float;
  vector_cpu : float;
}

let default_env ?(k_min = 1) ?(cpu_factor = 0.002) ?(memory_tuples = 10_000)
    ?(sort_fan_in = 8) ?(nl_block_tuples = 1000) ?(depth_mode = `Worst)
    ?(dop = 1) ?(exchange_startup = 2.0) ?(remote_startup = 5.0)
    ?(remote_row = 0.01) ?(vector_cpu = 1.0) catalog query =
  {
    catalog;
    query;
    k_min = max 1 k_min;
    cpu_factor;
    memory_tuples = max 2 memory_tuples;
    sort_fan_in = max 2 sort_fan_in;
    nl_block_tuples = max 1 nl_block_tuples;
    depth_mode;
    dop = max 1 dop;
    exchange_startup = Float.max 0.0 exchange_startup;
    remote_startup = Float.max 0.0 remote_startup;
    remote_row = Float.max 0.0 remote_row;
    vector_cpu = Float.max 0.0 vector_cpu;
  }

type estimate = {
  rows : float;
  total_cost : float;
  cost_at : float -> float;
  k_dependent : bool;
}

let table_info env name = Storage.Catalog.table env.catalog name

let tuples_per_page env = float_of_int (Storage.Catalog.tuples_per_page env.catalog)

let base_cardinality env name =
  float_of_int (table_info env name).Storage.Catalog.tb_stats.Storage.Catalog.ts_cardinality

let filter_selectivity env pred =
  let default = 1.0 /. 3.0 in
  let column_const op r c =
    match (r : Expr.column_ref).relation with
    | None -> default
    | Some table -> (
        match Storage.Catalog.column_stats env.catalog ~table ~column:r.name with
        | None -> default
        | Some cs -> (
            let x = Value.to_float c in
            let h = cs.Storage.Catalog.cs_histogram in
            match op with
            | Expr.Eq -> Storage.Histogram.selectivity_eq h x
            | Expr.Ne -> 1.0 -. Storage.Histogram.selectivity_eq h x
            | Expr.Lt | Expr.Le -> Storage.Histogram.selectivity_le h x
            | Expr.Gt | Expr.Ge -> 1.0 -. Storage.Histogram.selectivity_le h x))
  in
  let rec go = function
    | Expr.Cmp (op, Expr.Col r, Expr.Const c)
      when not (Value.is_null c) ->
        column_const op r c
    | Expr.Cmp (op, Expr.Const c, Expr.Col r) when not (Value.is_null c) ->
        let flip = function
          | Expr.Lt -> Expr.Gt
          | Expr.Le -> Expr.Ge
          | Expr.Gt -> Expr.Lt
          | Expr.Ge -> Expr.Le
          | (Expr.Eq | Expr.Ne) as o -> o
        in
        column_const (flip op) r c
    | Expr.And (a, b) -> go a *. go b
    | Expr.Or (a, b) ->
        let sa = go a and sb = go b in
        Rkutil.Mathx.clamp ~lo:0.0 ~hi:1.0 (sa +. sb -. (sa *. sb))
    | Expr.Not a -> 1.0 -. go a
    | _ -> default
  in
  Rkutil.Mathx.clamp ~lo:1e-9 ~hi:1.0 (go pred)

let join_selectivity env (j : Logical.join_pred) =
  Storage.Catalog.estimate_join_selectivity env.catalog
    ~left:(j.Logical.left_table, j.Logical.left_column)
    ~right:(j.Logical.right_table, j.Logical.right_column)

(* Number of ranked base relations under a plan (the model's l and r). *)
let ranked_fan env plan =
  let names = Plan.relations plan in
  List.length
    (List.filter
       (fun n ->
         match Logical.find_relation env.query n with
         | b -> b.Logical.weight > 0.0 && Option.is_some b.Logical.score
         | exception Not_found -> false)
       names)

let depth_params env ~k ~cond ~left ~right ~left_rows ~right_rows =
  let s = Rkutil.Mathx.clamp ~lo:1e-12 ~hi:1.0 (join_selectivity env cond) in
  let fan p = max 1 (ranked_fan env p) in
  let n =
    let names = Plan.relations left @ Plan.relations right in
    let logs = List.map (fun m -> log (Float.max 1.0 (base_cardinality env m))) names in
    exp (List.fold_left ( +. ) 0.0 logs /. float_of_int (max 1 (List.length logs)))
  in
  {
    Depth_model.k = Float.max 1.0 k;
    s;
    n = Float.max 1.0 n;
    left = { Depth_model.fan = fan left; card = Float.max 1.0 left_rows };
    right = { Depth_model.fan = fan right; card = Float.max 1.0 right_rows };
  }

(* Mean score-decrement slab of a side's (weighted, linear) score
   expression, from column statistics: the "x"/"y" of the any-k formulas.
   [None] when the expression is not linear over columns with stats. *)
let side_slab env score_expr ~rows =
  if rows < 2.0 then None
  else
    match score_expr with
    | None -> None
    | Some e -> (
        match Expr.as_linear e with
        | None -> None
        | Some lin ->
            let range =
              List.fold_left
                (fun acc ((w, r) : float * Expr.column_ref) ->
                  match acc, r.Expr.relation with
                  | None, _ | _, None -> None
                  | Some total, Some table -> (
                      match
                        Storage.Catalog.column_stats env.catalog ~table
                          ~column:r.Expr.name
                      with
                      | Some cs ->
                          Some
                            (total
                            +. Float.abs w
                               *. (cs.Storage.Catalog.cs_max -. cs.Storage.Catalog.cs_min))
                      | None -> None))
                (Some 0.0) lin.Expr.terms
            in
            match range with
            | Some r when r > 0.0 -> Some (r /. (rows -. 1.0))
            | _ -> None)

let frac rows x = if rows <= 0.0 then 1.0 else Rkutil.Mathx.clamp ~lo:0.0 ~hi:1.0 (x /. rows)

(* [est bulk env plan]: [bulk] mirrors the executor's compilation context
   (see [Vectorize.any]) — when true and the plan is a vector spine, its
   per-tuple CPU term is discounted by [vector_cpu]. The default multiplier
   of 1.0 keeps the model's choices identical to the tuple-at-a-time
   model; a measured discount can be supplied per deployment. *)
let rec est bulk env plan =
  match plan with
  | Plan.Table_scan { table } ->
      let info = table_info env table in
      let rows = float_of_int info.Storage.Catalog.tb_stats.Storage.Catalog.ts_cardinality in
      let pages = float_of_int info.Storage.Catalog.tb_stats.Storage.Catalog.ts_pages in
      (* A bare Table_scan is always a vector spine in a bulk context. *)
      let cpu = if bulk then env.cpu_factor *. env.vector_cpu else env.cpu_factor in
      let cost_at x =
        let x = Float.min x rows in
        (pages *. frac rows x) +. (cpu *. x)
      in
      { rows; total_cost = cost_at rows; cost_at; k_dependent = false }
  | Plan.Index_scan { table; index; _ } ->
      let info = table_info env table in
      let rows = float_of_int info.Storage.Catalog.tb_stats.Storage.Catalog.ts_cardinality in
      let pages = float_of_int info.Storage.Catalog.tb_stats.Storage.Catalog.ts_pages in
      let leaf_cap = tuples_per_page env in
      let height = Float.max 1.0 (log (Float.max 2.0 rows) /. log leaf_cap) in
      let clustered =
        match
          List.find_opt
            (fun ix -> String.equal ix.Storage.Catalog.ix_name index)
            info.Storage.Catalog.tb_indexes
        with
        | Some ix -> ix.Storage.Catalog.ix_clustered
        | None -> true
      in
      let frames = float_of_int (Storage.Buffer_pool.frames (Storage.Catalog.pool env.catalog)) in
      let cost_at x =
        let x = Float.min x rows in
        if clustered then height +. (x /. leaf_cap) +. (env.cpu_factor *. x)
        else begin
          (* Unclustered: each entry fetches a heap page at random. With a
             pool that holds the whole table the cost is the distinct pages
             touched (Cardenas); with a smaller pool most fetches miss. *)
          let touched =
            if pages <= 0.0 then 0.0 else pages *. (1.0 -. exp (-.x /. pages))
          in
          let io =
            if frames >= pages then touched
            else Float.max touched (x *. (1.0 -. (frames /. Float.max 1.0 pages)))
          in
          height +. (x /. leaf_cap) +. io +. (env.cpu_factor *. x)
        end
      in
      { rows; total_cost = cost_at rows; cost_at; k_dependent = false }
  | Plan.Rank_index_scan { table; index; lo; hi; _ } -> (
      let info = table_info env table in
      let card = float_of_int info.Storage.Catalog.tb_stats.Storage.Catalog.ts_cardinality in
      let pages = float_of_int info.Storage.Catalog.tb_stats.Storage.Catalog.ts_pages in
      let window = float_of_int (max 0 (hi - lo + 1)) in
      let rows = Float.min window card in
      let leaf_cap = tuples_per_page env in
      match index with
      | Some nm ->
          (* Counted descent: one root-to-leaf walk positions the window,
             then the leaf chain yields window entries — O(log n + window),
             independent of lo. Unclustered leaves add per-entry heap
             fetches (Cardenas, as for Index_scan). *)
          let height = Float.max 1.0 (log (Float.max 2.0 card) /. log leaf_cap) in
          let clustered =
            match
              List.find_opt
                (fun ix -> String.equal ix.Storage.Catalog.ix_name nm)
                info.Storage.Catalog.tb_indexes
            with
            | Some ix -> ix.Storage.Catalog.ix_clustered
            | None -> true
          in
          let frames =
            float_of_int (Storage.Buffer_pool.frames (Storage.Catalog.pool env.catalog))
          in
          let cost_at x =
            let x = Float.min x rows in
            let heap_io =
              if clustered then 0.0
              else begin
                let touched =
                  if pages <= 0.0 then 0.0 else pages *. (1.0 -. exp (-.x /. pages))
                in
                if frames >= pages then touched
                else Float.max touched (x *. (1.0 -. (frames /. Float.max 1.0 pages)))
              end
            in
            height +. (x /. leaf_cap) +. heap_io +. (env.cpu_factor *. x)
          in
          { rows; total_cost = cost_at rows; cost_at; k_dependent = false }
      | None ->
          (* No order-statistic index: drain the heap, sort by score, slice
             the window. Blocking, so flat in x. *)
          let scan = pages +. (env.cpu_factor *. card) in
          let sort_cpu =
            env.cpu_factor *. card *. log (Float.max 2.0 card) /. log 2.0
          in
          let total = scan +. sort_cpu +. (env.cpu_factor *. rows) in
          { rows; total_cost = total; cost_at = (fun _ -> total); k_dependent = false })
  | Plan.Remote_scan { tables; k_bound; score; _ } ->
      (* One shard's pushed subquery, seen from the coordinator: a startup
         round-trip plus per-row transfer. The shard serves its stream
         incrementally (rank index / HRJN on its side), so the coordinator's
         view is linear in the rows actually pulled — that linearity is what
         the gather's threshold exploits. Shard-local cardinality is the
         coordinator's full-table estimate; k' caps the contribution. *)
      let card =
        List.fold_left (fun acc t -> acc *. base_cardinality env t) 1.0 tables
      in
      let rows =
        match k_bound with
        | Some k -> Float.min (float_of_int k) card
        | None -> card
      in
      let cost_at x =
        let x = Float.min x rows in
        env.remote_startup +. ((env.remote_row +. env.cpu_factor) *. x)
      in
      {
        rows;
        total_cost = cost_at rows;
        cost_at;
        k_dependent = Option.is_some score;
      }
  | Plan.Gather_merge { inputs; k; score } ->
      let ests = List.map (est false env) inputs in
      let n = float_of_int (max 1 (List.length inputs)) in
      let sum_rows = List.fold_left (fun acc e -> acc +. e.rows) 0.0 ests in
      let rows =
        match k with
        | Some k -> Float.min (float_of_int k) sum_rows
        | None -> sum_rows
      in
      let cost_at x =
        let x = Float.min x rows in
        (* Threshold merge: with homogeneously distributed scores each shard
           is drained to ~x/N plus one batch of slack before its bound drops
           below the global k-th candidate; skewed shards cost less, so this
           is the flat-prior estimate. The heap hand-off is log N per row. *)
        let per_shard = (x /. n) +. 8.0 in
        List.fold_left
          (fun acc e -> acc +. e.cost_at (Float.min per_shard e.rows))
          (env.cpu_factor *. x *. (log (Float.max 2.0 n) /. log 2.0))
          ests
      in
      {
        rows;
        total_cost = cost_at rows;
        cost_at;
        k_dependent = Option.is_some score;
      }
  | Plan.Filter { pred; input } ->
      let i = est bulk env input in
      let sel = filter_selectivity env pred in
      let rows = i.rows *. sel in
      let cpu =
        if bulk && Vectorize.spine_ok plan then env.cpu_factor *. env.vector_cpu
        else env.cpu_factor
      in
      let cost_at x =
        let x = Float.min x rows in
        let need = if sel <= 0.0 then i.rows else Float.min i.rows (x /. sel) in
        i.cost_at need +. (cpu *. need)
      in
      { rows; total_cost = cost_at rows; cost_at; k_dependent = i.k_dependent }
  | Plan.Sort { input; _ } ->
      (* A sort drains its input: always a bulk context below. *)
      let i = est true env input in
      let rows = i.rows in
      let pages = rows /. tuples_per_page env in
      let extra_io =
        if rows <= float_of_int env.memory_tuples then 0.0
        else begin
          let runs = Float.ceil (rows /. float_of_int env.memory_tuples) in
          let passes =
            Float.ceil (log (Float.max 2.0 runs) /. log (float_of_int env.sort_fan_in))
          in
          2.0 *. pages *. Float.max 1.0 passes
        end
      in
      let cpu = env.cpu_factor *. rows *. log (Float.max 2.0 rows) /. log 2.0 in
      let total = i.total_cost +. extra_io +. cpu in
      { rows; total_cost = total; cost_at = (fun _ -> total); k_dependent = false }
  | Plan.Top_k { k; input } ->
      let child_bulk = match input with Plan.Sort _ -> bulk | _ -> false in
      let i = est child_bulk env input in
      let kf = float_of_int k in
      let rows = Float.min kf i.rows in
      let cost_at x = i.cost_at (Float.min x rows) in
      { rows; total_cost = cost_at rows; cost_at; k_dependent = i.k_dependent }
  | Plan.Join { algo; cond; left; right; _ } ->
      estimate_join bulk env plan algo cond left right
  | Plan.Exchange { dop; input } ->
      (* Exchange workers compile their morsels tuple-at-a-time. *)
      let i = est false env input in
      let d = float_of_int (max 1 dop) in
      (* Off-spine subtrees (hash build sides, NL inners, INL probe paths)
         are built once, by one worker; only the driving spine's work
         divides by the degree. Startup charges pump scheduling, the
         per-tuple term charges the slot/merge hand-off at the gather. *)
      let serial =
        List.fold_left
          (fun acc p -> acc +. (est false env p).total_cost)
          0.0
          (Parallel.off_spine input)
      in
      let parallel = Float.max 0.0 (i.total_cost -. serial) in
      let total =
        env.exchange_startup +. serial +. (parallel /. d)
        +. (env.cpu_factor *. i.rows)
      in
      (* A gather consumes whole morsels: there is no early-out below the
         exchange, so the cost is flat in x. This is exactly how the
         pipeline-breaking enters the k* rule: a serial incremental plan
         with cost_at(k) below this flat line stays serial. *)
      {
        rows = i.rows;
        total_cost = total;
        cost_at = (fun _ -> total);
        k_dependent = false;
      }
  | Plan.Nary_rank_join { inputs; key; tables; _ } ->
      let ests = List.map (est false env) inputs in
      let m = List.length inputs in
      (* Pairwise selectivity from the first adjacent pair (shared key, so
         all pairs estimate alike). *)
      let s =
        match tables with
        | a :: b :: _ ->
            Rkutil.Mathx.clamp ~lo:1e-12 ~hi:1.0
              (Storage.Catalog.estimate_join_selectivity env.catalog
                 ~left:(a, key) ~right:(b, key))
        | _ -> 1.0
      in
      let rows =
        List.fold_left (fun acc e -> acc *. e.rows) 1.0 ests
        *. (s ** float_of_int (m - 1))
      in
      let cpu = env.cpu_factor in
      let cost_at x =
        let x = Float.max 1.0 (Float.min x (Float.max 1.0 rows)) in
        let d = Depth_model.nary_uniform_depth ~m ~k:x ~s in
        List.fold_left
          (fun acc e ->
            let di = Float.min d e.rows in
            acc +. e.cost_at di +. (cpu *. di))
          (cpu *. x) ests
      in
      { rows; total_cost = cost_at rows; cost_at; k_dependent = true }
  | Plan.Any_k { inputs; keys; _ } ->
      let ests = List.map (est false env) inputs in
      let m = List.length inputs in
      (* One selectivity per join-tree edge; the acyclic output cardinality
         is the product of input cardinalities and edge selectivities. *)
      let edge_sel (_, pk, ck) =
        match pk, ck with
        | Expr.Col l, Expr.Col r -> (
            match l.Expr.relation, r.Expr.relation with
            | Some lt, Some rt ->
                Rkutil.Mathx.clamp ~lo:1e-12 ~hi:1.0
                  (Storage.Catalog.estimate_join_selectivity env.catalog
                     ~left:(lt, l.Expr.name) ~right:(rt, r.Expr.name))
            | _ -> 1.0 /. 3.0)
        | _ -> 1.0 /. 3.0
      in
      let rows =
        List.fold_left (fun acc e -> acc *. e.rows) 1.0 ests
        *. List.fold_left (fun acc k -> acc *. edge_sel k) 1.0 keys
      in
      let cpu = env.cpu_factor in
      (* Build: every input materialized in full plus the per-bucket sort
         of the DP tables. Enumeration: a bounded per-result delay (heap
         pop + O(m) candidate expansions), flat in the answer's rank. *)
      let build =
        List.fold_left
          (fun acc e ->
            let n = Float.max 1.0 e.rows in
            acc +. e.total_cost +. (cpu *. n *. (log n /. log 2.0)))
          0.0 ests
      in
      let delay =
        cpu
        *. (float_of_int m
           +. log (Float.max 2.0 rows) /. log 2.0)
      in
      let cost_at x =
        let x = Float.max 1.0 (Float.min x (Float.max 1.0 rows)) in
        build +. (delay *. x)
      in
      { rows; total_cost = cost_at rows; cost_at; k_dependent = true }

and estimate_join bulk env plan algo cond left right =
  (* Child contexts mirror the executor: hash joins drain both sides; a
     block-NL join materializes its right; merge and INL joins inherit;
     rank joins pull both sides incrementally. *)
  let lbulk, rbulk =
    match algo with
    | Plan.Hash -> (true, true)
    | Plan.Nested_loops -> (bulk, true)
    | Plan.Sort_merge -> (bulk, bulk)
    | Plan.Index_nl -> (bulk, false)
    | Plan.Hrjn | Plan.Nrjn -> (false, false)
  in
  let l = est lbulk env left and r = est rbulk env right in
  let s = Rkutil.Mathx.clamp ~lo:1e-12 ~hi:1.0 (join_selectivity env cond) in
  let rows = l.rows *. r.rows *. s in
  let cpu = env.cpu_factor in
  match algo with
  | Plan.Nested_loops ->
      let blocks = Float.max 1.0 (Float.ceil (l.rows /. float_of_int env.nl_block_tuples)) in
      let total =
        l.total_cost +. (blocks *. r.total_cost) +. (cpu *. l.rows *. r.rows)
      in
      let cost_at x =
        let f = frac rows x in
        r.total_cost +. (f *. (total -. r.total_cost))
      in
      { rows; total_cost = total; cost_at; k_dependent = false }
  | Plan.Index_nl ->
      (* Right side must be a single base relation probed via an index. *)
      let right_distinct =
        match
          Storage.Catalog.column_stats env.catalog ~table:cond.Logical.right_table
            ~column:cond.Logical.right_column
        with
        | Some cs when cs.Storage.Catalog.cs_distinct > 0 ->
            float_of_int cs.Storage.Catalog.cs_distinct
        | _ -> Float.max 1.0 r.rows
      in
      let leaf_cap = tuples_per_page env in
      let height = Float.max 1.0 (log (Float.max 2.0 r.rows) /. log leaf_cap) in
      let matches_per_probe = r.rows /. right_distinct in
      let per_probe = height +. (matches_per_probe /. leaf_cap) in
      let total =
        l.total_cost +. (l.rows *. per_probe) +. (cpu *. (l.rows +. rows))
      in
      let cost_at x =
        let f = frac rows x in
        l.cost_at (f *. l.rows)
        +. (f *. l.rows *. per_probe)
        +. (cpu *. f *. (l.rows +. rows))
      in
      { rows; total_cost = total; cost_at; k_dependent = l.k_dependent }
  | Plan.Hash ->
      (* The executor's hash join spills Grace partitions when the build
         side exceeds memory: both inputs are then written and re-read. *)
      let spill_io =
        if r.rows <= float_of_int env.memory_tuples then 0.0
        else 2.0 *. ((l.rows +. r.rows) /. tuples_per_page env)
      in
      let total =
        l.total_cost +. r.total_cost +. spill_io
        +. (cpu *. (l.rows +. r.rows +. rows))
      in
      let cost_at x =
        let f = frac rows x in
        r.total_cost +. spill_io
        +. l.cost_at (f *. l.rows)
        +. (cpu *. ((f *. l.rows) +. r.rows +. (f *. rows)))
      in
      { rows; total_cost = total; cost_at; k_dependent = l.k_dependent }
  | Plan.Sort_merge ->
      let total = l.total_cost +. r.total_cost +. (cpu *. (l.rows +. r.rows)) in
      let cost_at x =
        let f = frac rows x in
        l.cost_at (f *. l.rows) +. r.cost_at (f *. r.rows)
        +. (cpu *. f *. (l.rows +. r.rows))
      in
      {
        rows;
        total_cost = total;
        cost_at;
        k_dependent = l.k_dependent || r.k_dependent;
      }
  | Plan.Hrjn ->
      let left_score, right_score =
        match plan with
        | Plan.Join { left_score; right_score; _ } -> (left_score, right_score)
        | _ -> (None, None)
      in
      let slabs =
        (* Histogram-derived slabs refine the uniform assumption for 2-way
           joins of base ranked inputs (e.g. asymmetric score weights). *)
        if ranked_fan env left = 1 && ranked_fan env right = 1 then
          match
            ( side_slab env left_score ~rows:l.rows,
              side_slab env right_score ~rows:r.rows )
          with
          | Some x, Some y -> Some (x, y)
          | _ -> None
        else None
      in
      let depths k =
        let p =
          depth_params env ~k ~cond ~left ~right ~left_rows:l.rows
            ~right_rows:r.rows
        in
        let d =
          match slabs with
          | Some (x, y) ->
              Depth_model.top_k_depths_slabs ~k:p.Depth_model.k ~s:p.Depth_model.s ~x ~y
          | None -> (
              match env.depth_mode with
              | `Average -> Depth_model.average_case_depths p
              | `Worst -> Depth_model.worst_case_depths p)
        in
        Depth_model.clamped p d
      in
      let cost_at x =
        let x = Float.max 1.0 (Float.min x (Float.max 1.0 rows)) in
        let d = depths x in
        l.cost_at d.Depth_model.d_left
        +. r.cost_at d.Depth_model.d_right
        +. (cpu
           *. (d.Depth_model.d_left +. d.Depth_model.d_right +. x
              +. Depth_model.buffer_upper_bound d ~s))
      in
      { rows; total_cost = cost_at rows; cost_at; k_dependent = true }
  | Plan.Nrjn ->
      (* Outer depth from the model; the inner input is fully re-scanned for
         every outer tuple. *)
      let depths k =
        let p =
          depth_params env ~k ~cond ~left ~right ~left_rows:l.rows
            ~right_rows:r.rows
        in
        let d =
          match env.depth_mode with
          | `Average -> Depth_model.average_case_depths p
          | `Worst -> Depth_model.worst_case_depths p
        in
        Depth_model.clamped p d
      in
      let cost_at x =
        let x = Float.max 1.0 (Float.min x (Float.max 1.0 rows)) in
        let d = depths x in
        let outer = d.Depth_model.d_left in
        l.cost_at outer
        +. (outer *. r.total_cost)
        +. (cpu *. ((outer *. r.rows) +. x))
      in
      { rows; total_cost = cost_at rows; cost_at; k_dependent = true }
  [@@warning "-27"]

let estimate env plan = est true env plan

let rank_join_depths env plan ~k ~cond ~left ~right =
  let l = estimate env left and r = estimate env right in
  let p = depth_params env ~k ~cond ~left ~right ~left_rows:l.rows ~right_rows:r.rows in
  let left_score, right_score =
    match plan with
    | Plan.Join { left_score; right_score; _ } -> (left_score, right_score)
    | _ -> (None, None)
  in
  let slabs =
    if ranked_fan env left = 1 && ranked_fan env right = 1 then
      match
        ( side_slab env left_score ~rows:l.rows,
          side_slab env right_score ~rows:r.rows )
      with
      | Some x, Some y -> Some (x, y)
      | _ -> None
    else None
  in
  let d =
    match slabs with
    | Some (x, y) ->
        Depth_model.top_k_depths_slabs ~k:p.Depth_model.k ~s:p.Depth_model.s ~x ~y
    | None -> (
        match env.depth_mode with
        | `Average -> Depth_model.average_case_depths p
        | `Worst -> Depth_model.worst_case_depths p)
  in
  Depth_model.clamped p d

let any_k_depths_for env ~k ~cond ~left ~right =
  let l = estimate env left and r = estimate env right in
  let p = depth_params env ~k ~cond ~left ~right ~left_rows:l.rows ~right_rows:r.rows in
  (* Use the slab formulation with equal slabs scaled by n/card: for the
     model's uniform-[0,n] convention the slab is n/card per input. *)
  let x = p.Depth_model.n /. p.Depth_model.left.Depth_model.card in
  let y = p.Depth_model.n /. p.Depth_model.right.Depth_model.card in
  let c_l, c_r = Depth_model.any_k_depths ~k:p.Depth_model.k ~s:p.Depth_model.s ~x ~y in
  Depth_model.clamped p { Depth_model.d_left = c_l; d_right = c_r }

let k_star env ~rank_plan ~sort_plan =
  let rank = estimate env rank_plan in
  let sort = estimate env sort_plan in
  let na = Float.max 1.0 rank.rows in
  let f k = rank.cost_at k -. sort.total_cost in
  if f na <= 0.0 then None (* rank plan cheaper everywhere: k* > na *)
  else if f 1.0 >= 0.0 then Some 1.0
  else Some (Rkutil.Mathx.bisect ~f ~lo:1.0 ~hi:na ())
