type subplan = {
  plan : Plan.t;
  est : Cost_model.estimate;
  order : Plan.order option;
  pipelined : bool;
  dop : int;
  vectorized : bool;
}

let subplan_of env plan =
  {
    plan;
    est = Cost_model.estimate env plan;
    order = Plan.order_of plan;
    pipelined = Plan.pipelined plan;
    dop = Plan.dop plan;
    vectorized = Vectorize.vectorized plan;
  }

type t = {
  entries : (int, subplan list ref) Hashtbl.t;
  mutable generated : int;
}

let create () = { entries = Hashtbl.create 64; generated = 0 }

let decision_cost env sp = sp.est.Cost_model.cost_at (float_of_int env.Cost_model.k_min)

(* Does [a] win the cost comparison against [b] decisively — i.e. for every
   number of results that could be requested from this memo entry? *)
let cost_dominates env a b =
  let open Cost_model in
  match a.est.k_dependent, b.est.k_dependent with
  | false, false -> a.est.total_cost <= b.est.total_cost
  | true, true ->
      (* Same k propagates to both: compare at the minimum (costs of rank
         plans only grow with k at the same rate family). *)
      decision_cost env a <= decision_cost env b
      && a.est.total_cost <= b.est.total_cost
  | true, false ->
      (* Rank plan vs blocking plan: decisive only when the rank plan wins
         even at full output (k* > na). *)
      let na = Float.max 1.0 a.est.rows in
      a.est.cost_at na <= b.est.total_cost
  | false, true ->
      (* Blocking plan vs rank plan: decisive when it wins already at k_min
         (k* <= k_min; larger k only makes the rank plan dearer). *)
      a.est.total_cost <= decision_cost env b

let dominates env ~first_rows a b =
  Plan.order_satisfies ~have:a.order ~want:b.order
  && ((not first_rows) || a.pipelined || not b.pipelined)
  && cost_dominates env a b

let add t env ~first_rows ~key sp =
  t.generated <- t.generated + 1;
  let entry =
    match Hashtbl.find_opt t.entries key with
    | Some e -> e
    | None ->
        let e = ref [] in
        Hashtbl.add t.entries key e;
        e
  in
  if List.exists (fun q -> dominates env ~first_rows q sp) !entry then false
  else begin
    entry := sp :: List.filter (fun q -> not (dominates env ~first_rows sp q)) !entry;
    true
  end

let plans t key =
  match Hashtbl.find_opt t.entries key with Some e -> !e | None -> []

let entry_keys t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.entries [])

let retained t = Hashtbl.fold (fun _ e acc -> acc + List.length !e) t.entries 0

let generated t = t.generated

let best t env ?order key =
  let candidates =
    match order with
    | None -> plans t key
    | Some o ->
        List.filter
          (fun sp -> Plan.order_satisfies ~have:sp.order ~want:(Some o))
          (plans t key)
  in
  match candidates with
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun acc sp ->
             if decision_cost env sp < decision_cost env acc then sp else acc)
           first rest)

let pp_entry fmt plans =
  List.iter
    (fun sp ->
      Format.fprintf fmt "  %-40s cost=%-10.1f %s %s@."
        (Plan.describe sp.plan) sp.est.Cost_model.total_cost
        (match sp.order with
        | None -> "order=DC"
        | Some o ->
            Format.asprintf "order=%a %s" Relalg.Expr.pp o.Plan.expr
              (match o.Plan.direction with
              | Interesting_orders.Asc -> "ASC"
              | Interesting_orders.Desc -> "DESC"))
        (if sp.pipelined then "pipelined" else "blocking"))
    plans
