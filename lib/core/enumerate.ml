(* Ranked-enumeration eligibility: which logical queries admit an anyK
   plan, and which physical plans can back a cursor.

   A plan is *resumable* when the stream under its Top-k sink produces the
   query's exact scoring order and keeps producing when pulled past k:
   rank joins, anyK and a final Sort qualify; anything containing an
   exchange does not (gathers drain whole morsels, and the fused parallel
   top-N keeps only k per worker), nor does a nested Top-k (it truncates
   the stream). *)

open Relalg

type shape = [ `Path | `Star ]

let shape_name = function `Path -> "path" | `Star -> "star"

(* Classify the join graph of [query] as a path or star tree. [None] for
   anything else: cycles, multi-edges between a pair, or higher shapes. *)
let shape_of (query : Logical.t) : shape option =
  let names = Logical.relation_names query in
  let n = List.length names in
  if n < 2 then None
  else if List.length query.Logical.joins <> n - 1 then None
  else begin
    (* Count neighbors per relation, refusing duplicate edges. *)
    let deg = Hashtbl.create 8 in
    let edges = Hashtbl.create 8 in
    let ok = ref true in
    List.iter
      (fun (j : Logical.join_pred) ->
        let a = j.Logical.left_table and b = j.Logical.right_table in
        let key = if a < b then (a, b) else (b, a) in
        if a = b || Hashtbl.mem edges key then ok := false
        else begin
          Hashtbl.add edges key ();
          Hashtbl.replace deg a (1 + Option.value ~default:0 (Hashtbl.find_opt deg a));
          Hashtbl.replace deg b (1 + Option.value ~default:0 (Hashtbl.find_opt deg b))
        end)
      query.Logical.joins;
    if not !ok then None
    else
      let degrees =
        List.map (fun t -> Option.value ~default:0 (Hashtbl.find_opt deg t)) names
      in
      (* n-1 distinct edges over a connected graph: already a tree. *)
      if List.for_all (fun d -> d >= 1 && d <= 2) degrees then Some `Path
      else if
        List.length (List.filter (fun d -> d = n - 1) degrees) = 1
        && List.length (List.filter (fun d -> d = 1) degrees) = n - 1
      then Some `Star
      else None
  end

(* Join-tree DFS table order for a recognized shape: a path is walked from
   its first endpoint (in FROM order), a star is center-first. The parent
   of table [i >= 1] is table [i-1] on a path and table [0] on a star. *)
let table_order (query : Logical.t) (shape : shape) =
  let names = Logical.relation_names query in
  let degree t =
    List.length
      (List.filter
         (fun (j : Logical.join_pred) ->
           j.Logical.left_table = t || j.Logical.right_table = t)
         query.Logical.joins)
  in
  match shape with
  | `Star ->
      let n = List.length names in
      let center = List.find (fun t -> degree t = n - 1) names in
      center :: List.filter (fun t -> t <> center) names
  | `Path ->
      let start = List.find (fun t -> degree t = 1) names in
      let rec walk acc t =
        let next =
          List.find_map
            (fun (j : Logical.join_pred) ->
              if j.Logical.left_table = t && not (List.mem j.Logical.right_table acc)
              then Some j.Logical.right_table
              else if
                j.Logical.right_table = t && not (List.mem j.Logical.left_table acc)
              then Some j.Logical.left_table
              else None)
            query.Logical.joins
        in
        match next with None -> List.rev acc | Some u -> walk (u :: acc) u
      in
      walk [ start ] start

(* The anyK plan for an eligible query: one access plan per relation
   (filtered scan), the per-relation weighted scores, and one key binding
   per join-tree edge. [None] when the query has no recognized shape or
   some relation is unranked (a zero-weight input would force constant
   score terms into the enumeration order). *)
let any_k_plan (query : Logical.t) : Plan.t option =
  match shape_of query with
  | None -> None
  | Some shape ->
      let all_ranked =
        List.for_all
          (fun (b : Logical.base) ->
            b.Logical.weight > 0.0 && Option.is_some b.Logical.score)
          query.Logical.relations
      in
      if not (Logical.is_ranking query && all_ranked) then None
      else begin
        let tables = table_order query shape in
        let access t =
          let b = Logical.find_relation query t in
          let scan = Plan.Table_scan { table = t } in
          match b.Logical.filter with
          | Some pred -> Plan.Filter { pred; input = scan }
          | None -> scan
        in
        let score t =
          let b = Logical.find_relation query t in
          Expr.weighted_sum
            [ (b.Logical.weight, Option.get b.Logical.score) ]
        in
        let parent_of i = match shape with `Path -> i - 1 | `Star -> 0 in
        let keys =
          List.filteri (fun i _ -> i >= 1) tables
          |> List.mapi (fun j t ->
                 let i = j + 1 in
                 let p = parent_of i in
                 let parent_table = List.nth tables p in
                 match Logical.joins_between query [ parent_table ] [ t ] with
                 | (jp : Logical.join_pred) :: _ ->
                     ( p,
                       Expr.col ~relation:jp.Logical.left_table
                         jp.Logical.left_column,
                       Expr.col ~relation:jp.Logical.right_table
                         jp.Logical.right_column )
                 | [] -> raise Not_found)
        in
        match keys with
        | exception Not_found -> None
        | keys ->
            Some
              (Plan.Any_k
                 {
                   inputs = List.map access tables;
                   scores = List.map score tables;
                   keys;
                   shape;
                 })
      end

let rec has_topk = function
  | Plan.Table_scan _ | Plan.Index_scan _ | Plan.Rank_index_scan _
  | Plan.Remote_scan _ | Plan.Gather_merge _ ->
      false
  | Plan.Top_k _ -> true
  | Plan.Filter { input; _ } | Plan.Sort { input; _ } | Plan.Exchange { input; _ }
    ->
      has_topk input
  | Plan.Join { left; right; _ } -> has_topk left || has_topk right
  | Plan.Nary_rank_join { inputs; _ } | Plan.Any_k { inputs; _ } ->
      List.exists has_topk inputs

(* Can [p] (a stream with no Top-k above it) back a cursor? *)
let resumable (query : Logical.t) p =
  (not (Parallel.has_exchange p))
  && (not (has_topk p))
  &&
  match Logical.scoring_expr query with
  | None -> false
  | Some score ->
      Plan.order_satisfies ~have:(Plan.order_of p)
        ~want:(Some { Plan.expr = score; direction = Interesting_orders.Desc })

(* The Enumerate property of a finished statement: a ranked query whose
   root is a Top-k sink over a resumable stream. *)
let eligible (query : Logical.t) plan =
  Logical.is_ranking query
  &&
  match plan with
  | Plan.Top_k { input; _ } -> resumable query input
  | _ -> false
