let log_src = Logs.Src.create "rankopt.optimizer" ~doc:"Rank-aware optimizer tracing"

module Log = (val Logs.src_log log_src : Logs.LOG)

type planned = {
  query : Logical.t;
  plan : Plan.t;
  est : Cost_model.estimate;
  stats : Enumerator.stats;
  interesting : Interesting_orders.interesting_order list;
  env : Cost_model.env;
}

let optimize ?(config = Enumerator.default_config) ?env catalog query =
  let env =
    match env with
    | Some e -> e
    | None ->
        Cost_model.default_env
          ~k_min:(Option.value ~default:1 query.Logical.k)
          catalog query
  in
  let result = Enumerator.run ~config env in
  Log.debug (fun m ->
      m "enumerated %s: %d generated, %d retained over %d MEMO entries"
        (Format.asprintf "%a" Logical.pp query)
        result.Enumerator.stats.Enumerator.generated
        result.Enumerator.stats.Enumerator.retained
        result.Enumerator.stats.Enumerator.entries);
  match result.Enumerator.best with
  | None -> failwith "Optimizer.optimize: no plan found"
  | Some sp ->
      Log.info (fun m ->
          m "chose %s (cost %.1f, %s)" (Plan.describe sp.Memo.plan)
            sp.Memo.est.Cost_model.total_cost
            (if Plan.has_rank_join sp.Memo.plan then "rank-aware" else "traditional"));
      {
        query;
        plan = sp.Memo.plan;
        est = sp.Memo.est;
        stats = result.Enumerator.stats;
        interesting = result.Enumerator.interesting;
        env;
      }

let propagation planned =
  match planned.query.Logical.k with
  | Some k when Plan.has_rank_join planned.plan ->
      Some (Propagate.run planned.env ~k planned.plan)
  | _ -> None

let execute ?fetch_limit catalog planned =
  Executor.run ?hints:(propagation planned) ?fetch_limit catalog planned.plan

let execute_analyzed ?fetch_limit catalog planned =
  let hints = propagation planned in
  let metrics = Exec.Metrics.create (Storage.Catalog.io catalog) in
  let result =
    Executor.run ?hints ~metrics ?fetch_limit catalog planned.plan
  in
  let profile =
    match result.Executor.profile with
    | Some p -> p
    | None -> assert false (* metrics were supplied *)
  in
  (Analyze.render ~env:planned.env ?hints profile, result)

let explain_analyze ?fetch_limit catalog planned =
  let tree, result = execute_analyzed ?fetch_limit catalog planned in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "Query: %s\n" (Format.asprintf "%a" Logical.pp planned.query));
  Buffer.add_string buf
    (Printf.sprintf
       "Rows returned: %d; total io: reads=%d writes=%d pool_hits=%d\n"
       (List.length result.Executor.rows)
       result.Executor.io.Storage.Io_stats.page_reads
       result.Executor.io.Storage.Io_stats.page_writes
       result.Executor.io.Storage.Io_stats.pool_hits);
  Buffer.add_string buf tree;
  (Buffer.contents buf, result)

let run_query ?config catalog query =
  let planned = optimize ?config catalog query in
  (planned, execute catalog planned)

let explain planned =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Format.fprintf fmt "Query: %a@." Logical.pp planned.query;
  Format.fprintf fmt "Estimated cost: %.1f I/O units, %.0f rows@."
    planned.est.Cost_model.total_cost planned.est.Cost_model.rows;
  Format.fprintf fmt "Plans: %d generated, %d retained, %d MEMO entries@."
    planned.stats.Enumerator.generated planned.stats.Enumerator.retained
    planned.stats.Enumerator.entries;
  Format.fprintf fmt "Plan:@.%a" Plan.pp planned.plan;
  (match planned.query.Logical.k with
  | Some k when Plan.has_rank_join planned.plan ->
      Format.fprintf fmt "Depth propagation:@.%a" Propagate.pp
        (Propagate.run planned.env ~k planned.plan)
  | _ -> ());
  Format.pp_print_flush fmt ();
  Buffer.contents buf
