let log_src = Logs.Src.create "rankopt.optimizer" ~doc:"Rank-aware optimizer tracing"

module Log = (val Logs.src_log log_src : Logs.LOG)

type k_interval = { k_lo : int; k_hi : int option }

type planned = {
  query : Logical.t;
  plan : Plan.t;
  est : Cost_model.estimate;
  stats : Enumerator.stats;
  interesting : Interesting_orders.interesting_order list;
  env : Cost_model.env;
  k_validity : k_interval;
  enumerable : bool;
}

let unbounded_validity = { k_lo = 1; k_hi = None }

let k_in_validity planned k =
  k >= planned.k_validity.k_lo
  && match planned.k_validity.k_hi with None -> true | Some hi -> k <= hi

let pp_k_interval fmt { k_lo; k_hi } =
  match k_hi with
  | None -> Format.fprintf fmt "[%d, inf)" k_lo
  | Some hi -> Format.fprintf fmt "[%d, %d]" k_lo hi

(* The k-interval on which the chosen plan stays the winner (Section 4.3's
   k* rule, generalised to the whole root candidate set). The MEMO's
   retained plans at the root entry are a sound candidate set for every k —
   pruning only discards plans dominated over the whole feasible range — so
   the winner's validity is the contiguous range of k around [k_min] on
   which re-running the final argmin (cost at k) would pick the same plan.
   Boundaries are found by bisection on the win predicate, which is
   monotone on each side of [k_min] because rank-plan costs grow with k
   while blocking plans are flat. *)
let k_validity_of env (result : Enumerator.result) (chosen : Memo.subplan) =
  let query = env.Cost_model.query in
  if not (Logical.is_ranking query) then unbounded_validity
  else
    let inner =
      match chosen.Memo.plan with Plan.Top_k { input; _ } -> input | p -> p
    in
    let full_mask = (1 lsl List.length query.Logical.relations) - 1 in
    let want =
      Option.map
        (fun score -> { Plan.expr = score; direction = Interesting_orders.Desc })
        (Logical.scoring_expr query)
    in
    let candidates =
      List.filter
        (fun sp -> Plan.order_satisfies ~have:sp.Memo.order ~want)
        (Memo.plans result.Enumerator.memo full_mask)
    in
    match
      List.find_opt (fun sp -> sp.Memo.plan == inner) candidates, candidates
    with
    | None, _ | _, ([] | [ _ ]) -> unbounded_validity
    | Some chosen_cand, first :: rest ->
        let winner_at kf =
          (* Mirrors [Memo.best]'s fold (strict <, first wins ties) so the
             interval agrees with what a re-optimization would choose. *)
          List.fold_left
            (fun acc sp ->
              if
                sp.Memo.est.Cost_model.cost_at kf
                < acc.Memo.est.Cost_model.cost_at kf
              then sp
              else acc)
            first rest
        in
        let wins k = winner_at (float_of_int k) == chosen_cand in
        let k0 = max 1 env.Cost_model.k_min in
        if not (wins k0) then { k_lo = k0; k_hi = Some k0 }
        else
          let n_cap =
            max (k0 + 1)
              (int_of_float
                 (Float.ceil (Float.max 1.0 chosen_cand.Memo.est.Cost_model.rows)))
          in
          let hi =
            if wins n_cap then None
            else begin
              (* Largest winning k in [k0, n_cap). *)
              let lo = ref k0 and hi = ref n_cap in
              while !hi - !lo > 1 do
                let mid = !lo + ((!hi - !lo) / 2) in
                if wins mid then lo := mid else hi := mid
              done;
              Some !lo
            end
          in
          let lo =
            if wins 1 then 1
            else begin
              (* Smallest winning k in (1, k0]. *)
              let lo = ref 1 and hi = ref k0 in
              while !hi - !lo > 1 do
                let mid = !lo + ((!hi - !lo) / 2) in
                if wins mid then hi := mid else lo := mid
              done;
              !hi
            end
          in
          { k_lo = lo; k_hi = hi }

(* Observation hook: called with every statement [optimize] finishes
   planning. The planlint emit-time assertion mode registers here. *)
let planned_hook : (planned -> unit) ref = ref (fun _ -> ())

(* Rank-range queries bypass the join enumerator entirely: a single scored
   relation, no joins, no Top_k root. The only access-path decision is
   count-guided by-rank descent (when an order-statistic index keyed on the
   score exists) versus the drain-sort-slice fallback — arbitrated by cost,
   the window analogue of the k* rule. The plan is k-independent, so its
   validity interval is unbounded. *)
let plan_rank_range env query lo hi =
  let catalog = env.Cost_model.catalog in
  let base =
    match query.Logical.relations with
    | [ b ] -> b
    | _ -> failwith "Optimizer: rank range requires a single relation"
  in
  let table = base.Logical.name in
  let score =
    match Logical.scoring_expr query with
    | Some e -> e
    | None -> failwith "Optimizer: rank range requires a scored relation"
  in
  (* Exact key match only: by-rank descent and rank probes read the index's
     subtree counts, so the index must be keyed on precisely the claimed
     score (PL13's justification rule). *)
  let rank_index =
    List.find_opt
      (fun ix -> Relalg.Expr.equal ix.Storage.Catalog.ix_key score)
      (Storage.Catalog.indexes_on catalog table)
  in
  let wrap access =
    match base.Logical.filter with
    | Some pred -> Plan.Filter { pred; input = access }
    | None -> access
  in
  let dense = query.Logical.rank_dense in
  let fallback =
    wrap (Plan.Rank_index_scan { table; index = None; score; lo; hi; dense })
  in
  let candidates =
    match rank_index with
    | Some ix ->
        [
          wrap
            (Plan.Rank_index_scan
               {
                 table;
                 index = Some ix.Storage.Catalog.ix_name;
                 score;
                 lo;
                 hi;
                 dense;
               });
          fallback;
        ]
    | None -> [ fallback ]
  in
  let scored = List.map (fun p -> (p, Cost_model.estimate env p)) candidates in
  let plan, est =
    List.fold_left
      (fun ((_, be) as b) ((_, e) as c) ->
        if e.Cost_model.total_cost < be.Cost_model.total_cost then c else b)
      (List.hd scored) (List.tl scored)
  in
  Log.info (fun m ->
      m "rank window %d..%d on %s: chose %s (cost %.1f of %s)" lo hi table
        (Plan.describe plan) est.Cost_model.total_cost
        (String.concat " | "
           (List.map
              (fun (p, e) ->
                Printf.sprintf "%s=%.1f" (Plan.describe p)
                  e.Cost_model.total_cost)
              scored)));
  let p =
    {
      query;
      plan;
      est;
      stats =
        {
          Enumerator.entries = 1;
          retained = 1;
          generated = List.length scored;
        };
      interesting = [];
      env;
      k_validity = unbounded_validity;
      enumerable = false;
    }
  in
  !planned_hook p;
  p

let optimize ?(config = Enumerator.default_config) ?env catalog query =
  let env =
    match env with
    | Some e -> e
    | None ->
        Cost_model.default_env
          ~k_min:(Option.value ~default:1 query.Logical.k)
          catalog query
  in
  match query.Logical.rank_range with
  | Some (lo, hi) -> plan_rank_range env query lo hi
  | None ->
  let result = Enumerator.run ~config env in
  Log.debug (fun m ->
      m "enumerated %s: %d generated, %d retained over %d MEMO entries"
        (Format.asprintf "%a" Logical.pp query)
        result.Enumerator.stats.Enumerator.generated
        result.Enumerator.stats.Enumerator.retained
        result.Enumerator.stats.Enumerator.entries);
  match result.Enumerator.best with
  | None -> failwith "Optimizer.optimize: no plan found"
  | Some sp ->
      Log.info (fun m ->
          m "chose %s (cost %.1f, %s)" (Plan.describe sp.Memo.plan)
            sp.Memo.est.Cost_model.total_cost
            (if Plan.has_rank_join sp.Memo.plan then "rank-aware" else "traditional"));
      (* The k-interval is derived against the memo's retained candidates,
         so compute it on the pre-fusion plan; then apply the top-N fusion
         rewrite (output-preserving, never slower) and re-estimate. *)
      let k_validity = k_validity_of env result sp in
      let plan = Parallel.fuse_topk sp.Memo.plan in
      let est =
        if plan == sp.Memo.plan then sp.Memo.est else Cost_model.estimate env plan
      in
      let p =
        {
          query;
          plan;
          est;
          stats = result.Enumerator.stats;
          interesting = result.Enumerator.interesting;
          env;
          k_validity;
          enumerable = Enumerate.eligible query plan;
        }
      in
      !planned_hook p;
      p

let rebind_k planned k =
  if k <= 0 then invalid_arg "Optimizer.rebind_k: k must be positive";
  match planned.query.Logical.k with
  | None -> planned (* unranked plan: k-independent, nothing to re-push *)
  | Some old_k when old_k = k -> planned
  | Some _ ->
      let query = { planned.query with Logical.k = Some k } in
      let plan =
        match planned.plan with
        | Plan.Top_k { input; _ } -> Plan.Top_k { k; input }
        | Plan.Exchange { dop; input = Plan.Top_k { input; _ } } ->
            Plan.Exchange { dop; input = Plan.Top_k { k; input } }
        | p -> p
      in
      let env = { planned.env with Cost_model.query; k_min = k } in
      { planned with query; plan; env; est = Cost_model.estimate env plan }

let propagation planned =
  match planned.query.Logical.k with
  | Some k when Plan.has_rank_join planned.plan ->
      Some (Propagate.run planned.env ~k planned.plan)
  | _ -> None

let execute ?interrupt ?pool ?degree ?vectorized ?fetch_limit catalog planned =
  Executor.run ?hints:(propagation planned) ?interrupt ?pool ?degree
    ?vectorized ?fetch_limit catalog planned.plan

let execute_analyzed ?pool ?degree ?vectorized ?fetch_limit catalog planned =
  let hints = propagation planned in
  let metrics = Exec.Metrics.create (Storage.Catalog.io catalog) in
  let result =
    Executor.run ?hints ~metrics ?pool ?degree ?vectorized ?fetch_limit catalog
      planned.plan
  in
  let profile =
    match result.Executor.profile with
    | Some p -> p
    | None -> assert false (* metrics were supplied *)
  in
  (Analyze.render ~env:planned.env ?hints profile, result)

let explain_analyze ?pool ?degree ?vectorized ?fetch_limit catalog planned =
  let tree, result =
    execute_analyzed ?pool ?degree ?vectorized ?fetch_limit catalog planned
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "Query: %s\n" (Format.asprintf "%a" Logical.pp planned.query));
  Buffer.add_string buf
    (Printf.sprintf
       "Rows returned: %d; total io: reads=%d writes=%d pool_hits=%d\n"
       (List.length result.Executor.rows)
       result.Executor.io.Storage.Io_stats.page_reads
       result.Executor.io.Storage.Io_stats.page_writes
       result.Executor.io.Storage.Io_stats.pool_hits);
  Buffer.add_string buf tree;
  (Buffer.contents buf, result)

let run_query ?config catalog query =
  let planned = optimize ?config catalog query in
  (planned, execute catalog planned)

let explain planned =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Format.fprintf fmt "Query: %a@." Logical.pp planned.query;
  Format.fprintf fmt "Estimated cost: %.1f I/O units, %.0f rows@."
    planned.est.Cost_model.total_cost planned.est.Cost_model.rows;
  Format.fprintf fmt "Plans: %d generated, %d retained, %d MEMO entries@."
    planned.stats.Enumerator.generated planned.stats.Enumerator.retained
    planned.stats.Enumerator.entries;
  Format.fprintf fmt "Catalog stats epoch: %d@."
    (Storage.Catalog.stats_epoch planned.env.Cost_model.catalog);
  (if Logical.is_ranking planned.query then
     Format.fprintf fmt "Plan valid for k in %a@." pp_k_interval
       planned.k_validity);
  if planned.enumerable then
    Format.fprintf fmt "Enumerable: cursor-resumable past k@.";
  if Vectorize.vectorized planned.plan then
    Format.fprintf fmt "Vectorized: batched spine with selection vectors@.";
  Format.fprintf fmt "Plan:@.%a" Plan.pp planned.plan;
  (match planned.query.Logical.k with
  | Some k when Plan.has_rank_join planned.plan ->
      Format.fprintf fmt "Depth propagation:@.%a" Propagate.pp
        (Propagate.run planned.env ~k planned.plan)
  | _ -> ());
  Format.pp_print_flush fmt ();
  Buffer.contents buf
