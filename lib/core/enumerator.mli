(** Bottom-up System R dynamic-programming enumeration, extended with
    rank-aware plan generation (Section 3.2).

    Access paths: table scans, index scans in the direction an interesting
    order asks for, plus eagerly enforced sorts. Join level: for every
    connected partition (L, R) of a connected subset, traditional join
    choices (block NL, index NL, hash, sort-merge over ordered inputs) and —
    when rank-aware — the rank-join choices:

    - HRJN when both sides have plans ordered on their partial score
      expressions;
    - NRJN when the outer side has such a plan (the inner may be any
      restartable plan, scored or not).

    Enforcer sorts glue every still-interesting order expression onto the
    cheapest plan of each entry, so ranked inputs exist at the next level. *)

type config = {
  rank_aware : bool;  (** Generate rank-join plans and score orders. *)
  first_rows : bool;  (** Protect pipelined plans from pruning. *)
}

val default_config : config

type stats = {
  entries : int;  (** Populated MEMO entries. *)
  retained : int;  (** Plans kept after pruning (Figures 2-3 metric). *)
  generated : int;  (** Plans offered to the MEMO. *)
}

type result = {
  memo : Memo.t;
  best : Memo.subplan option;  (** Best full plan (Top-k applied if ranking). *)
  stats : stats;
  interesting : Interesting_orders.interesting_order list;
}

val retain_hook : (Cost_model.env -> key:int -> Memo.subplan -> unit) ref
(** Called for every subplan the MEMO retains (post-pruning), with its entry
    key. Defaults to a no-op; the planlint emit-time assertion mode installs
    itself here so every retained plan is linted as it is memoized. *)

val run : ?config:config -> Cost_model.env -> result
(** Enumerate plans for [env.query] over [env.catalog]. *)

val relation_mask : Cost_model.env -> string list -> int
(** Bitmask of the given relations (useful to inspect MEMO entries). *)
