(** Ranked-enumeration (anyK) eligibility and plan construction.

    This module decides two related properties:

    - which {e logical} queries admit an {!Plan.Any_k} plan (acyclic
      path/star join trees with every relation ranked), and
    - which finished {e physical} plans can back a cursor — the
      [Enumerate] plan property checked by the server before it keeps a
      statement open for [FETCH NEXT].

    A plan is {e resumable} when the stream under its root Top-k produces
    the query's exact scoring order and keeps producing when pulled past
    k. Rank joins, anyK and a final [Sort] qualify. Anything containing an
    [Exchange] does not (the gather drains whole morsels and the fused
    parallel top-N keeps only k per worker), nor does a nested [Top_k]
    (it truncates the stream at its own k). *)

type shape = [ `Path | `Star ]

val shape_name : shape -> string

val shape_of : Logical.t -> shape option
(** Classify the query's join graph: [`Path] when every relation has at
    most two join partners, [`Star] when one center joins all [n-1]
    others. [None] for single relations, cycles, duplicate edges between
    a pair, or any other shape. *)

val any_k_plan : Logical.t -> Plan.t option
(** The {!Plan.Any_k} candidate for an eligible query: one (filtered)
    scan per relation in join-tree DFS order, per-relation weighted
    scores, and one key binding per edge. [None] unless the query is
    ranking, every relation is ranked with positive weight, and
    {!shape_of} recognizes the join graph. *)

val resumable : Logical.t -> Plan.t -> bool
(** Can this stream (a plan with its root Top-k already stripped) back a
    cursor? True when it is exchange-free, Top-k-free, and its output
    order satisfies the query's descending total score. *)

val eligible : Logical.t -> Plan.t -> bool
(** The Enumerate property of a finished statement plan: a ranking query
    whose root is a [Top_k] over a {!resumable} stream. *)
