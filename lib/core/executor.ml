open Relalg

type rank_node_stats = {
  label : string;
  algo : Plan.join_algo;
  stats : Exec.Exec_stats.t;
}

type nary_node_stats = {
  nary_label : string;
  nary_stats : Exec.Exec_stats.t;
}

type profile = {
  p_plan : Plan.t;
  p_node : Exec.Metrics.node;
  p_children : profile list;
}

type run_result = {
  rows : (Tuple.t * float) list;
  io : Storage.Io_stats.snapshot;
  rank_nodes : rank_node_stats list;
  nary_nodes : nary_node_stats list;
  profile : profile option;
  schema : Schema.t;
}

let find_index catalog table name =
  match
    List.find_opt
      (fun ix -> String.equal ix.Storage.Catalog.ix_name name)
      (Storage.Catalog.indexes_on catalog table)
  with
  | Some ix -> ix
  | None -> invalid_arg ("Executor: unknown index " ^ name)

let key_extractor schema ~table ~column =
  let f = Expr.compile schema (Expr.col ~relation:table column) in
  f

let score_fn schema = function
  | Some e -> Expr.compile_float schema e
  | None -> fun _ -> 0.0

let sort_budget catalog =
  Exec.Sort.budget
    ~tuples_per_page:(Storage.Catalog.tuples_per_page catalog)
    (Storage.Catalog.pool catalog)

(* Canonical column permutation: positions sorted by (relation, name).
   Different join orders permute a plan's output columns; sorting ties by
   the canonical projection makes every plan's enumeration — and the
   oracle's — tuple-identical. Shared by the cursor layer and the by-rank
   window operators (their tie order must agree). *)
let canonical_perm schema =
  let cols = List.mapi (fun i c -> (i, c)) (Schema.columns schema) in
  let sorted =
    List.sort
      (fun ((_, a) : _ * Schema.column) ((_, b) : _ * Schema.column) ->
        match compare a.Schema.relation b.Schema.relation with
        | 0 -> String.compare a.Schema.name b.Schema.name
        | c -> c)
      cols
  in
  Array.of_list (List.map fst sorted)

let canonical_compare perm a b =
  let rec go i =
    if i >= Array.length perm then 0
    else
      match Value.compare a.(perm.(i)) b.(perm.(i)) with
      | 0 -> go (i + 1)
      | c -> c
  in
  go 0

(* One-line operator name for EXPLAIN ANALYZE rows (unlike [Plan.describe],
   not recursive — the tree rendering supplies the structure). *)
let node_label = function
  | Plan.Table_scan { table } -> "TableScan " ^ table
  | Plan.Index_scan { table; index; desc; _ } ->
      Printf.sprintf "IndexScan %s.%s %s" table index
        (if desc then "DESC" else "ASC")
  | Plan.Rank_index_scan { table; index; lo; hi; dense; _ } ->
      Printf.sprintf "RankIndexScan %s %s%d..%d%s" table
        (if dense then "dense " else "")
        lo hi
        (match index with Some nm -> " via " ^ nm | None -> " via sort")
  | Plan.Remote_scan { shard; _ } -> Printf.sprintf "RemoteScan shard=%d" shard
  | Plan.Gather_merge { inputs; _ } ->
      Printf.sprintf "GatherRemote[%d]" (List.length inputs)
  | Plan.Filter _ -> "Filter"
  | Plan.Sort { order; _ } ->
      Printf.sprintf "Sort %s"
        (if order.Plan.direction = Interesting_orders.Desc then "DESC" else "ASC")
  | Plan.Top_k { k; _ } -> Printf.sprintf "Top-%d" k
  | Plan.Join { algo; _ } -> Plan.algo_name algo
  | Plan.Exchange { dop; _ } -> Printf.sprintf "Gather[%d]" dop
  | Plan.Nary_rank_join { inputs; _ } ->
      Printf.sprintf "HRJN*[%d]" (List.length inputs)
  | Plan.Any_k { inputs; _ } ->
      Printf.sprintf "AnyK[%d]" (List.length inputs)

exception Interrupted

let rec compile ?hints ?metrics ?interrupt ?pool ?degree ?(vectorized = true)
    catalog plan =
  let rank_nodes = ref [] in
  let nary_nodes = ref [] in
  (* Cooperative cancellation: when an interrupt predicate is supplied
     (per-query deadlines in the server), every operator's [next] checks it,
     so even deep blocking stages (sort runs, hash builds pulling their
     input) abandon work promptly. *)
  let guard (op : Exec.Operator.t) =
    match interrupt with
    | None -> op
    | Some should_stop ->
        let next = op.Exec.Operator.next in
        {
          op with
          Exec.Operator.next =
            (fun () -> if should_stop () then raise Interrupted else next ());
        }
  in
  (* [ann] mirrors the plan subtree currently being compiled, when hints were
     provided for the whole plan. *)
  let child_ann ann i =
    match ann with
    | None -> None
    | Some a -> List.nth_opt a.Propagate.children i
  in
  (* Register the node's stats record in the metrics registry (when one was
     supplied) and wrap the operator so the I/O it causes is attributed to
     it; otherwise pass the operator through untouched. *)
  let instrument plan stats (op : Exec.Operator.t) child_profiles =
    let op = guard op in
    match metrics with
    | None -> (op, None)
    | Some m ->
        let node =
          Exec.Metrics.attach m ~stats ~label:(node_label plan)
            ~inputs:(Exec.Exec_stats.inputs stats) ()
        in
        ( Exec.Metrics.scope m node op,
          Some
            {
              p_plan = plan;
              p_node = node;
              p_children = List.filter_map Fun.id child_profiles;
            } )
  in
  let vguard (v : Exec.Vector.t) =
    match interrupt with
    | None -> v
    | Some should_stop ->
        let next = v.Exec.Vector.v_next in
        {
          v with
          Exec.Vector.v_next =
            (fun () -> if should_stop () then raise Interrupted else next ());
        }
  in
  let vinstrument plan stats (v : Exec.Vector.t) child_profiles =
    let v = vguard v in
    match metrics with
    | None -> (v, None)
    | Some m ->
        let node =
          Exec.Metrics.attach m ~stats ~label:(node_label plan)
            ~inputs:(Exec.Exec_stats.inputs stats) ()
        in
        ( Exec.Vector.scope m node v,
          Some
            {
              p_plan = plan;
              p_node = node;
              p_children = List.filter_map Fun.id child_profiles;
            } )
  in
  (* [go ctx ann plan]: [ctx] says whether the parent drains this subplan
     completely ([`Bulk] — sorts, hash-join sides, the root drain) or pulls
     it incrementally ([`Streaming] — rank joins, top-k heaps over ranked
     inputs, cursors). Vectorized spines only engage in bulk contexts:
     batching a stream an early-out consumer may abandon would over-read.
     The context rules here are mirrored by [Vectorize.vectorized]
     (planlint PL15 cross-checks the stored property bit against it). *)
  let rec go ctx ann plan : Exec.Operator.t * profile option =
    match plan with
    (* Fused vectorized top-k sink: Top_k over Sort over a vector spine
       becomes one bounded-heap drain — same rows, order, and stats totals
       as the sort + limit pair it replaces, which is why both metric nodes
       are still attached. *)
    | Plan.Top_k { k; input = Plan.Sort { order; input = sp } as sort_plan }
      when vectorized && Vectorize.spine_ok sp ->
        let sort_stats = Exec.Exec_stats.create 1 in
        let topk_stats = Exec.Exec_stats.create 1 in
        let desc = order.Plan.direction = Interesting_orders.Desc in
        let sort_ann = child_ann ann 0 in
        let v, vprof = govec (child_ann sort_ann 0) sp in
        let op =
          guard
            (Exec.Vector.fused_top_k ~sort_stats ~topk_stats
               (sort_budget catalog) ~desc ~k order.Plan.expr v)
        in
        (match metrics with
        | None -> (op, None)
        | Some m ->
            let snode =
              Exec.Metrics.attach m ~stats:sort_stats
                ~label:(node_label sort_plan) ~inputs:1 ()
            in
            let tnode =
              Exec.Metrics.attach m ~stats:topk_stats ~label:(node_label plan)
                ~inputs:1 ()
            in
            (* Inner scope wins: the drain I/O lands on the sort node, as it
               does when the serial limit pulls from the serial sort. *)
            ( Exec.Metrics.scope m tnode (Exec.Metrics.scope m snode op),
              Some
                {
                  p_plan = plan;
                  p_node = tnode;
                  p_children =
                    [
                      {
                        p_plan = sort_plan;
                        p_node = snode;
                        p_children = List.filter_map Fun.id [ vprof ];
                      };
                    ];
                } ))
    | _ when vectorized && ctx = `Bulk && Vectorize.spine_ok plan ->
        let v, prof = govec ann plan in
        (guard (Exec.Vector.to_operator v), prof)
    | _ -> go_serial ctx ann plan
  (* The vector spine compiler: only the [Vectorize.spine_ok] shapes. *)
  and govec ann plan : Exec.Vector.t * profile option =
    match plan with
    | Plan.Table_scan { table } ->
        let stats = Exec.Exec_stats.create 0 in
        let v =
          Exec.Vector.heap_scan ~stats (Storage.Catalog.table catalog table)
        in
        vinstrument plan stats v []
    | Plan.Filter { pred; input } ->
        let stats = Exec.Exec_stats.create 1 in
        let child, prof = govec (child_ann ann 0) input in
        vinstrument plan stats (Exec.Vector.filter ~stats pred child) [ prof ]
    | Plan.Join { algo = Plan.Hash; cond; left; right; _ } ->
        let stats = Exec.Exec_stats.create 2 in
        let lt = cond.Logical.left_table and lc = cond.Logical.left_column in
        let rt = cond.Logical.right_table and rc = cond.Logical.right_column in
        let lchild, lprof = govec (child_ann ann 0) left in
        let rchild, rprof = go `Bulk (child_ann ann 1) right in
        vinstrument plan stats
          (Exec.Vector.hash_join ~stats
             ~left_key:(Expr.col ~relation:lt lc)
             ~right_key:(Expr.col ~relation:rt rc)
             (sort_budget catalog) lchild rchild)
          [ lprof; rprof ]
    | _ -> invalid_arg "Executor: plan is not a vector spine"
  and go_serial ctx ann plan : Exec.Operator.t * profile option =
    match plan with
    | Plan.Table_scan { table } ->
        let stats = Exec.Exec_stats.create 0 in
        let op = Exec.Scan.heap ~stats (Storage.Catalog.table catalog table) in
        instrument plan stats op []
    | Plan.Index_scan { table; index; desc; _ } ->
        let stats = Exec.Exec_stats.create 0 in
        let ix = find_index catalog table index in
        let op =
          if desc then Exec.Scan.index_desc ~stats catalog ix
          else Exec.Scan.index_asc ~stats catalog ix
        in
        instrument plan stats op []
    | Plan.Rank_index_scan { table; index; score; lo; hi; dense } ->
        let stats = Exec.Exec_stats.create 0 in
        let info = Storage.Catalog.table catalog table in
        let perm = canonical_perm info.Storage.Catalog.tb_schema in
        let tie_cmp a b = canonical_compare perm a b in
        let op =
          match index with
          | Some nm ->
              let ix = find_index catalog table nm in
              Exec.Scan.rank_window ~stats ~dense catalog ix ~lo ~hi ~tie_cmp
          | None ->
              Exec.Scan.rank_window_sort ~stats ~dense info ~score ~lo ~hi
                ~tie_cmp
        in
        instrument plan stats op []
    | Plan.Remote_scan _ | Plan.Gather_merge _ ->
        (* Distributed nodes execute in the shard coordinator, which drives
           remote sessions over the line protocol; they never reach the
           local compiler. *)
        invalid_arg "Executor: distributed plan requires a shard coordinator"
    | Plan.Filter { pred; input } ->
        let stats = Exec.Exec_stats.create 1 in
        let child, prof = go ctx (child_ann ann 0) input in
        instrument plan stats (Exec.Basic_ops.filter ~stats pred child) [ prof ]
    | Plan.Sort { order; input } ->
        let stats = Exec.Exec_stats.create 1 in
        let desc = order.Plan.direction = Interesting_orders.Desc in
        (* A sort drains its input at open: always a bulk context below. *)
        let child, prof = go `Bulk (child_ann ann 0) input in
        let op =
          Exec.Sort.by_expr ~stats (sort_budget catalog) ~desc order.Plan.expr
            child
        in
        instrument plan stats op [ prof ]
    | Plan.Top_k { k; input } ->
        let stats = Exec.Exec_stats.create 1 in
        (* Over a sort the limit's pull pattern is irrelevant (the sort
           drains anyway); over a ranked streaming input the limit stops
           early, so the input must stay tuple-at-a-time. *)
        let child_ctx =
          match input with Plan.Sort _ -> ctx | _ -> `Streaming
        in
        let child, prof = go child_ctx (child_ann ann 0) input in
        instrument plan stats (Exec.Basic_ops.limit ~stats k child) [ prof ]
    | Plan.Exchange { dop; input } ->
        let dop = match degree with Some d -> max 1 d | None -> max 1 dop in
        let stats = Exec.Exec_stats.create (dop + 1) in
        let morsel_pages = 4 in
        let morsel_tuples = morsel_pages * Storage.Catalog.tuples_per_page catalog in
        (* Off-spine subplans (hash builds, NL inners) run once, serially,
           inside this worker; compile them without metrics — the exchange
           reports as a single leaf node. *)
        let serial p =
          let op, _, _, _ = compile ?interrupt ~vectorized:false catalog p in
          op
        in
        let drain op = Exec.Operator.to_list op in
        (* Morselize the driving spine: (n_morsels, factory). The factory
           must be domain-safe: each call builds a fresh operator over
           shared read-only state. *)
        let rec spine p : int * (int -> Exec.Operator.t) =
          match p with
          | Plan.Table_scan { table } ->
              let info = Storage.Catalog.table catalog table in
              let npages = Storage.Heap_file.n_pages info.Storage.Catalog.tb_heap in
              let n = (npages + morsel_pages - 1) / morsel_pages in
              ( n,
                fun i ->
                  Exec.Scan.heap_range info ~lo:(i * morsel_pages)
                    ~hi:(min npages ((i + 1) * morsel_pages)) )
          | Plan.Index_scan { table; index; desc; _ } ->
              (* B+-tree iteration isn't page-partitionable; materialize
                 the ordered leaf sequence once at prepare and slice it. *)
              let ix = find_index catalog table index in
              let op =
                if desc then Exec.Scan.index_desc catalog ix
                else Exec.Scan.index_asc catalog ix
              in
              let schema = op.Exec.Operator.schema in
              let tuples = Array.of_list (drain op) in
              let len = Array.length tuples in
              let n = (len + morsel_tuples - 1) / morsel_tuples in
              ( n,
                fun i ->
                  let lo = i * morsel_tuples in
                  let hi = min len (lo + morsel_tuples) in
                  Exec.Operator.of_list schema
                    (Array.to_list (Array.sub tuples lo (hi - lo))) )
          | Plan.Filter { pred; input } ->
              let n, f = spine input in
              (n, fun i -> Exec.Basic_ops.filter pred (f i))
          | Plan.Join { algo; cond; left; right; _ } -> (
              let lt = cond.Logical.left_table
              and lc = cond.Logical.left_column in
              let rt = cond.Logical.right_table
              and rc = cond.Logical.right_column in
              let n, lf = spine left in
              match algo with
              | Plan.Hash ->
                  (* Shared build: morsel-parallel partitioned hash of the
                     right side; every probe morsel reads the same frozen
                     tables. Probe order per left tuple matches the serial
                     in-memory hash join (chains in arrival order). *)
                  let right_schema = Plan.schema_of catalog right in
                  let rkey =
                    Expr.compile right_schema (Expr.col ~relation:rt rc)
                  in
                  let rn, rf =
                    if Parallel.spine_ok right then spine right
                    else (1, fun _ -> serial right)
                  in
                  let lookup =
                    Exec.Exchange.partitioned_build ?pool ~dop
                      ~partitions:(max 8 dop) ~key:rkey ~n:rn
                      ~run:(fun i -> drain (rf i))
                      ~cancel:(Atomic.make false) ()
                  in
                  ( n,
                    fun i ->
                      Exec.Join.index_nested_loops
                        ~left_key:(Expr.col ~relation:lt lc)
                        ~right_schema ~lookup (lf i) )
              | Plan.Index_nl ->
                  let info = Storage.Catalog.table catalog rt in
                  let ix =
                    match
                      Storage.Catalog.find_index_on_expr catalog ~table:rt
                        (Expr.col ~relation:rt rc)
                    with
                    | Some ix -> ix
                    | None -> invalid_arg "Executor: INL join without index"
                  in
                  let rec right_preds = function
                    | Plan.Filter { pred; input } -> pred :: right_preds input
                    | _ -> []
                  in
                  let lookup =
                    match right_preds right with
                    | [] -> Exec.Scan.index_probe catalog ix
                    | preds ->
                        let keep =
                          List.map
                            (Expr.compile_bool info.Storage.Catalog.tb_schema)
                            preds
                        in
                        fun key ->
                          List.filter
                            (fun tu -> List.for_all (fun p -> p tu) keep)
                            (Exec.Scan.index_probe catalog ix key)
                  in
                  ( n,
                    fun i ->
                      Exec.Join.index_nested_loops
                        ~left_key:(Expr.col ~relation:lt lc)
                        ~right_schema:info.Storage.Catalog.tb_schema ~lookup
                        (lf i) )
              | Plan.Nested_loops ->
                  let rop = serial right in
                  let rschema = rop.Exec.Operator.schema in
                  let rtuples = drain rop in
                  let pred = Expr.(col ~relation:lt lc = col ~relation:rt rc) in
                  ( n,
                    fun i ->
                      Exec.Join.nested_loops ~pred (lf i)
                        (Exec.Operator.of_list rschema rtuples) )
              | Plan.Sort_merge | Plan.Hrjn | Plan.Nrjn ->
                  invalid_arg "Executor: join not morselizable under Exchange")
          | Plan.Sort _ | Plan.Top_k _ | Plan.Exchange _ | Plan.Nary_rank_join _
          | Plan.Any_k _ | Plan.Rank_index_scan _ | Plan.Remote_scan _
          | Plan.Gather_merge _ ->
              invalid_arg "Executor: operator not morselizable under Exchange"
        in
        let source sp =
          {
            Exec.Exchange.src_schema = Plan.schema_of catalog sp;
            src_prepare =
              (fun ~cancel ->
                let n, f = spine sp in
                let wrap op =
                  let op = guard op in
                  let next = op.Exec.Operator.next in
                  {
                    op with
                    Exec.Operator.next =
                      (fun () -> if cancel () then None else next ());
                  }
                in
                {
                  Exec.Exchange.n_morsels = n;
                  run_morsel = (fun i -> drain (wrap (f i)));
                });
          }
        in
        let op =
          match input with
          | Plan.Top_k { k; input = Plan.Sort { order; input = sp } }
            when order.Plan.direction = Interesting_orders.Desc
                 && Parallel.spine_ok sp ->
              let schema = Plan.schema_of catalog sp in
              let score = Expr.compile_float schema order.Plan.expr in
              Exec.Exchange.top_n ?pool ~stats ~dop ~k ~score (source sp)
          | sp -> Exec.Exchange.gather ?pool ~stats ~dop (source sp)
        in
        instrument plan stats op []
    | Plan.Nary_rank_join { inputs; scores; key; tables } ->
        let stats = Exec.Exec_stats.create (List.length inputs) in
        let compiled =
          List.mapi (fun i input -> go `Streaming (child_ann ann i) input) inputs
        in
        let profs = List.map snd compiled in
        let nary_inputs =
          List.map2
            (fun ((op, _), score) table ->
              let schema = op.Exec.Operator.schema in
              {
                Exec.Rank_join_nary.stream =
                  Exec.Operator.with_score (Expr.compile_float schema score) op;
                key = key_extractor schema ~table ~column:key;
              })
            (List.combine compiled scores)
            tables
        in
        let stream, stats = Exec.Rank_join_nary.hrjn_nary ~stats ~inputs:nary_inputs () in
        nary_nodes :=
          { nary_label = Plan.describe plan; nary_stats = stats } :: !nary_nodes;
        instrument plan stats (Exec.Operator.scored_to_plain stream) profs
    | Plan.Any_k { inputs; scores; keys; _ } ->
        let stats = Exec.Exec_stats.create (List.length inputs) in
        let compiled =
          List.mapi (fun i input -> go `Streaming (child_ann ann i) input) inputs
        in
        let profs = List.map snd compiled in
        let schemas =
          Array.of_list
            (List.map (fun (op, _) -> op.Exec.Operator.schema) compiled)
        in
        let ak_inputs =
          List.map2
            (fun (op, _) score ->
              {
                Exec.Any_k.i_op = op;
                i_score = Expr.compile_float op.Exec.Operator.schema score;
              })
            compiled scores
        in
        let ak_keys =
          List.mapi
            (fun j (p, pk, ck) ->
              (p, Expr.compile schemas.(p) pk, Expr.compile schemas.(j + 1) ck))
            keys
        in
        let out_schema =
          Array.fold_left
            (fun acc s -> match acc with None -> Some s | Some a -> Some (Schema.concat a s))
            None schemas
          |> Option.get
        in
        (* The build phase runs inside s_open, outside any next() guard —
           hand the interrupt down as the operator's tick so a deadline
           fires mid-build or mid-expansion too. *)
        let tick =
          Option.map
            (fun should_stop () -> if should_stop () then raise Interrupted)
            interrupt
        in
        let stream =
          Exec.Any_k.enumerate ?tick ~schema:out_schema ~inputs:ak_inputs
            ~keys:ak_keys ()
        in
        instrument plan stats (Exec.Operator.scored_to_plain stream) profs
    | Plan.Join { algo; cond; left; right; left_score; right_score } -> (
        let stats = Exec.Exec_stats.create 2 in
        let lt = cond.Logical.left_table and lc = cond.Logical.left_column in
        let rt = cond.Logical.right_table and rc = cond.Logical.right_column in
        let pred = Expr.(col ~relation:lt lc = col ~relation:rt rc) in
        match algo with
        | Plan.Nested_loops ->
            let lchild, lprof = go ctx (child_ann ann 0) left in
            let rchild, rprof = go `Bulk (child_ann ann 1) right in
            instrument plan stats
              (Exec.Join.nested_loops ~stats ~pred lchild rchild)
              [ lprof; rprof ]
        | Plan.Hash ->
            (* Memory-adaptive: degenerates to an in-memory hash join when
               the build side fits, spills Grace partitions otherwise.
               Both sides are fully drained, so both compile in a bulk
               context (a spine-shaped left arrives batched through the
               boundary adapter). *)
            let lchild, lprof = go `Bulk (child_ann ann 0) left in
            let rchild, rprof = go `Bulk (child_ann ann 1) right in
            instrument plan stats
              (Exec.Join.grace_hash ~stats
                 ~left_key:(Expr.col ~relation:lt lc)
                 ~right_key:(Expr.col ~relation:rt rc)
                 (sort_budget catalog) lchild rchild)
              [ lprof; rprof ]
        | Plan.Sort_merge ->
            let lchild, lprof = go ctx (child_ann ann 0) left in
            let rchild, rprof = go ctx (child_ann ann 1) right in
            instrument plan stats
              (Exec.Join.merge_only ~stats
                 ~left_key:(Expr.col ~relation:lt lc)
                 ~right_key:(Expr.col ~relation:rt rc)
                 lchild rchild)
              [ lprof; rprof ]
        | Plan.Index_nl ->
            let info = Storage.Catalog.table catalog rt in
            let ix =
              match
                Storage.Catalog.find_index_on_expr catalog ~table:rt
                  (Expr.col ~relation:rt rc)
              with
              | Some ix -> ix
              | None -> invalid_arg "Executor: INL join without index"
            in
            (* The probe replaces the right access path, so any residual
               filters wrapped around it must be re-applied to probe
               results. *)
            let rec right_preds = function
              | Plan.Filter { pred; input } -> pred :: right_preds input
              | _ -> []
            in
            let lookup =
              match right_preds right with
              | [] -> Exec.Scan.index_probe catalog ix
              | preds ->
                  let keep =
                    List.map
                      (Expr.compile_bool info.Storage.Catalog.tb_schema)
                      preds
                  in
                  fun key ->
                    List.filter
                      (fun tu -> List.for_all (fun p -> p tu) keep)
                      (Exec.Scan.index_probe catalog ix key)
            in
            let lchild, lprof = go ctx (child_ann ann 0) left in
            instrument plan stats
              (Exec.Join.index_nested_loops ~stats
                 ~left_key:(Expr.col ~relation:lt lc)
                 ~right_schema:info.Storage.Catalog.tb_schema
                 ~lookup
                 lchild)
              [ lprof ]
        | Plan.Hrjn ->
            let lop, lprof = go `Streaming (child_ann ann 0) left
            and rop, rprof = go `Streaming (child_ann ann 1) right in
            let lschema = lop.Exec.Operator.schema
            and rschema = rop.Exec.Operator.schema in
            let left_input =
              {
                Exec.Rank_join.stream =
                  Exec.Operator.with_score (score_fn lschema left_score) lop;
                key = key_extractor lschema ~table:lt ~column:lc;
              }
            in
            let right_input =
              {
                Exec.Rank_join.stream =
                  Exec.Operator.with_score (score_fn rschema right_score) rop;
                key = key_extractor rschema ~table:rt ~column:rc;
              }
            in
            let polling =
              match ann with
              | Some { Propagate.depths = Some d; _ }
                when d.Depth_model.d_right > 0.0 ->
                  Exec.Rank_join.Ratio
                    (d.Depth_model.d_left /. d.Depth_model.d_right)
              | _ -> Exec.Rank_join.Alternate
            in
            let stream, stats =
              Exec.Rank_join.hrjn ~stats ~polling ~combine:( +. )
                ~left:left_input ~right:right_input ()
            in
            rank_nodes :=
              { label = Plan.describe plan; algo; stats } :: !rank_nodes;
            instrument plan stats
              (Exec.Operator.scored_to_plain stream)
              [ lprof; rprof ]
        | Plan.Nrjn ->
            let lop, lprof = go `Streaming (child_ann ann 0) left
            and rop, rprof = go `Streaming (child_ann ann 1) right in
            let lschema = lop.Exec.Operator.schema
            and rschema = rop.Exec.Operator.schema in
            let outer =
              Exec.Operator.with_score (score_fn lschema left_score) lop
            in
            let stream, stats =
              Exec.Rank_join.nrjn ~stats ~combine:( +. ) ~pred ~outer
                ~inner:rop
                ~inner_score:(score_fn rschema right_score) ()
            in
            rank_nodes :=
              { label = Plan.describe plan; algo; stats } :: !rank_nodes;
            instrument plan stats
              (Exec.Operator.scored_to_plain stream)
              [ lprof; rprof ])
  in
  let op, profile = go `Bulk hints plan in
  (op, List.rev !rank_nodes, List.rev !nary_nodes, profile)

let run ?hints ?metrics ?interrupt ?pool ?degree ?vectorized ?fetch_limit
    catalog plan =
  let op, rank_nodes, nary_nodes, profile =
    compile ?hints ?metrics ?interrupt ?pool ?degree ?vectorized catalog plan
  in
  let schema = op.Exec.Operator.schema in
  let score =
    match Plan.order_of plan with
    | Some { Plan.expr; _ } when Expr.bound_by schema expr ->
        Expr.compile_float schema expr
    | _ -> fun _ -> 0.0
  in
  let io = Storage.Catalog.io catalog in
  let before = Storage.Io_stats.snapshot io in
  let tuples =
    match fetch_limit with
    | None -> Exec.Operator.to_list op
    | Some n -> Exec.Operator.take op n
  in
  let after = Storage.Io_stats.snapshot io in
  {
    rows = List.map (fun tu -> (tu, score tu)) tuples;
    io = Storage.Io_stats.diff after before;
    rank_nodes;
    nary_nodes;
    profile;
    schema;
  }

(* -- Cursors: suspendable ranked execution ------------------------------ *)

type cursor = {
  c_schema : Schema.t;
  c_next : unit -> (Tuple.t * float) option;
  c_close : unit -> unit;
}

let rec strip_topk = function
  | Plan.Top_k { input; _ } -> strip_topk input
  | p -> p

let open_cursor ?hints ?interrupt ?pool ?degree catalog plan =
  let plan = strip_topk plan in
  (* A cursor pulls incrementally and may never be drained: batching would
     over-read, so the whole plan compiles tuple-at-a-time. *)
  let op, _, _, _ =
    compile ?hints ?interrupt ?pool ?degree ~vectorized:false catalog plan
  in
  let schema = op.Exec.Operator.schema in
  let score =
    match Plan.order_of plan with
    | Some { Plan.expr; _ } when Expr.bound_by schema expr ->
        Expr.compile_float schema expr
    | _ -> fun _ -> 0.0
  in
  let perm = canonical_perm schema in
  op.Exec.Operator.open_ ();
  let exhausted = ref false in
  let lookahead = ref None in
  let group = ref [] in
  (* Raw pull in plan order; NaN scores have no place in a ranked
     enumeration and are dropped here (the oracle drops them too). *)
  let rec raw () =
    if !exhausted then None
    else
      match op.Exec.Operator.next () with
      | None ->
          exhausted := true;
          None
      | Some tu ->
          let s = score tu in
          if Float.is_nan s then raw () else Some (tu, s)
  in
  (* Buffer one whole tie group and normalize its order: equal-score rows
     are emitted in canonical-tuple order regardless of the plan shape. *)
  let refill () =
    let first =
      match !lookahead with
      | Some e ->
          lookahead := None;
          Some e
      | None -> raw ()
    in
    match first with
    | None -> ()
    | Some (tu, s) ->
        let acc = ref [ (tu, s) ] in
        let rec more () =
          match raw () with
          | None -> ()
          | Some (tu2, s2) ->
              if Float.equal s2 s then begin
                acc := (tu2, s2) :: !acc;
                more ()
              end
              else lookahead := Some (tu2, s2)
        in
        more ();
        group :=
          List.sort (fun (a, _) (b, _) -> canonical_compare perm a b) !acc
  in
  let next () =
    match !group with
    | e :: rest ->
        group := rest;
        Some e
    | [] -> (
        refill ();
        match !group with
        | e :: rest ->
            group := rest;
            Some e
        | [] -> None)
  in
  {
    c_schema = schema;
    c_next = next;
    c_close = (fun () -> op.Exec.Operator.close ());
  }

let cursor_schema c = c.c_schema

let cursor_fetch c n =
  let acc = ref [] in
  let rec loop i =
    if i < n then
      match c.c_next () with
      | Some e ->
          acc := e :: !acc;
          loop (i + 1)
      | None -> ()
  in
  loop 0;
  List.rev !acc

let cursor_close c = c.c_close ()
