(** [EXPLAIN ANALYZE] rendering.

    Turns the executed profile tree returned by
    [Executor.run ~metrics] into an annotated plan: each operator line shows
    rows produced and buffer high-water mark; operators with inputs get a
    depths line (observed tuples consumed per input, with the depth model's
    prediction beside it when a {!Propagate.annotation} is supplied); and an
    I/O line compares the cost model's estimate (at the node's required
    output count) against pages actually read/written by the subtree. *)

val render :
  ?env:Cost_model.env ->
  ?hints:Propagate.annotation ->
  Executor.profile ->
  string
(** [hints] must come from [Propagate.run] on the same plan that produced
    the profile (the trees are matched positionally). Without [env] the
    estimated-cost column is omitted; without [hints], predicted depths
    are. *)
