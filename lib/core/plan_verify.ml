(* Compatibility shim: the structural plan checks that used to live here
   are now rules PL01/PL02 of the planlint catalog (lib/lint). Core cannot
   depend on lint, so the engine registers its checker through a ref at
   link time; until then [check] reports that no engine is linked rather
   than silently passing. *)

let engine : (Storage.Catalog.t -> Plan.t -> (unit, string) result) ref =
  ref (fun _ _ ->
      Error "planlint engine not linked (add lint to the link closure)")

let register f = engine := f

let check catalog plan = !engine catalog plan

let check_exn catalog plan =
  match check catalog plan with
  | Ok () -> ()
  | Error msg -> failwith ("Plan_verify: " ^ msg)
