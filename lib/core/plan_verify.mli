(** Structural well-formedness checks for physical plans (compatibility
    wrapper).

    The checks themselves moved into the planlint rule catalog
    ([Lint.Rules], rules PL01-schema and PL02-order): referenced tables and
    indexes exist, expressions are bound by their input schemas, rank-join
    and sort-merge inputs produce the orders the operator needs, INL right
    sides are single indexed relations. This module keeps the historical
    [check]/[check_exn] entry points for existing call sites; the lint
    engine {!register}s itself here at link time. Prefer calling
    [Lint.Engine.lint_plan] directly in new code — it returns the full
    diagnostic list instead of just the first failure. *)

val register : (Storage.Catalog.t -> Plan.t -> (unit, string) result) -> unit
(** Install the invariant engine. Called by [Lint.Engine] at module
    initialization; without a registered engine [check] returns an
    explanatory [Error]. *)

val check : Storage.Catalog.t -> Plan.t -> (unit, string) result

val check_exn : Storage.Catalog.t -> Plan.t -> unit
(** @raise Failure with the first problem found. *)
