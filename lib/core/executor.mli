(** Compile physical plans to [exec] operator trees and run them.

    Execution is instrumented: measured I/O (through the catalog's counters)
    and, for every rank-join node, the actual input depths and buffer
    high-water mark — the quantities the estimation model of Section 4
    predicts and Section 5 validates. Supplying a {!Exec.Metrics.t} registry
    extends this to {e every} operator: per-node tuple counts plus the page
    I/O attributed to the node, returned as a [profile] tree mirroring the
    plan shape (the raw material of [EXPLAIN ANALYZE]). *)

open Relalg

type rank_node_stats = {
  label : string;  (** One-line description of the rank-join node. *)
  algo : Plan.join_algo;
  stats : Exec.Exec_stats.t;
      (** Input 0 = left/outer depth, input 1 = right/inner depth. *)
}

type nary_node_stats = {
  nary_label : string;
  nary_stats : Exec.Exec_stats.t;  (** Per-input depths + buffer. *)
}

type profile = {
  p_plan : Plan.t;  (** The subplan rooted at this operator. *)
  p_node : Exec.Metrics.node;  (** Its live stats + attributed I/O. *)
  p_children : profile list;
}

type run_result = {
  rows : (Tuple.t * float) list;
      (** Output tuples with their ranking score (0.0 for unranked plans). *)
  io : Storage.Io_stats.snapshot;  (** I/O charged during this run. *)
  rank_nodes : rank_node_stats list;  (** Binary rank joins, pre-order. *)
  nary_nodes : nary_node_stats list;  (** N-ary rank joins, pre-order. *)
  profile : profile option;  (** Present when a metrics registry was given. *)
  schema : Schema.t;
}

val node_label : Plan.t -> string
(** Non-recursive one-line operator name, e.g. ["HRJN"] or
    ["IndexScan a.ix DESC"]. *)

exception Interrupted
(** Raised from an operator's [next] when the [interrupt] predicate fires —
    the cooperative cancellation used for per-query deadlines. *)

val compile :
  ?hints:Propagate.annotation ->
  ?metrics:Exec.Metrics.t ->
  ?interrupt:(unit -> bool) ->
  ?pool:Rkutil.Task_pool.t ->
  ?degree:int ->
  ?vectorized:bool ->
  Storage.Catalog.t ->
  Plan.t ->
  Exec.Operator.t * rank_node_stats list * nary_node_stats list * profile option
(** Build the operator tree; rank-join statistics are filled during
    execution. When a depth-propagation annotation is supplied (from
    {!Propagate.run} on the same plan), HRJN nodes poll their inputs in the
    estimated optimal depth ratio instead of alternating. When a metrics
    registry is supplied, every operator is registered and I/O-scoped, and
    the matching [profile] tree is returned.

    Exchange nodes schedule their morsels on [pool] (in-process when
    absent: the gathering consumer runs every morsel itself, preserving
    the exact parallel semantics at degree-of-one speed). [degree]
    overrides the planned degree of {e every} exchange in the plan —
    the determinism sweeps rely on the output being bit-identical across
    overrides.

    [vectorized] (default [true]) runs the plan's {!Vectorize.spine_ok}
    regions batch-at-a-time on columnar batches with selection vectors,
    handing tuples back to streaming consumers at sink boundaries; rank
    joins, sorts, top-k heaps and exchanges are untouched. Tuple-exact:
    same rows, same order, same rank-join depths, same buffer-pool
    charges; per-operator depth/emitted totals match at batch granularity
    (identical after a full drain). [~vectorized:false] forces the classic
    tuple-at-a-time compilation — the reference the [fuzz --vector]
    differential harness compares against. *)

val run :
  ?hints:Propagate.annotation ->
  ?metrics:Exec.Metrics.t ->
  ?interrupt:(unit -> bool) ->
  ?pool:Rkutil.Task_pool.t ->
  ?degree:int ->
  ?vectorized:bool ->
  ?fetch_limit:int ->
  Storage.Catalog.t ->
  Plan.t ->
  run_result
(** Open, pull (up to [fetch_limit] rows, default everything), close. I/O is
    measured as a diff of the catalog's counters around the run. When
    [interrupt] is supplied it is checked at every operator's [next]
    boundary; a [true] result aborts the run with {!Interrupted}. *)

(** {2 Cursors}

    A cursor keeps a compiled plan {e open} between fetches, so a ranked
    statement can stream answers past its original [k] without
    re-executing. Unlike {!run} — which opens, pulls and closes — the
    operator tree is opened exactly once; callers must {!cursor_close}.

    The stream is normalized for deterministic enumeration: rows with NaN
    scores are dropped, and equal-score tie groups are buffered and
    re-emitted in canonical column order (columns sorted by
    [(relation, name)]), so every resumable plan shape of a query yields
    the same tuple sequence as the enumeration oracle. *)

type cursor

val strip_topk : Plan.t -> Plan.t
(** The plan below the root Top-k sink(s) — what a cursor executes. *)

val canonical_perm : Schema.t -> int array
(** Column positions sorted by [(relation, name)] — the tie-break and
    cross-plan comparison projection. *)

val canonical_compare : int array -> Tuple.t -> Tuple.t -> int

val open_cursor :
  ?hints:Propagate.annotation ->
  ?interrupt:(unit -> bool) ->
  ?pool:Rkutil.Task_pool.t ->
  ?degree:int ->
  Storage.Catalog.t ->
  Plan.t ->
  cursor
(** Strip the root Top-k, compile, open. The caller is responsible for
    only opening cursors over resumable plans (see {!Enumerate}). The
    [interrupt] predicate is re-checked on every pull {e and} inside the
    anyK build loops, so a deadline can fire mid-fetch; update whatever
    state it reads before each fetch. *)

val cursor_schema : cursor -> Schema.t

val cursor_fetch : cursor -> int -> (Tuple.t * float) list
(** The next (up to) [n] answers in non-increasing score order. Fewer than
    [n] results mean the enumeration is exhausted; subsequent fetches
    return [[]] without re-polling the (already drained) inputs. *)

val cursor_close : cursor -> unit
