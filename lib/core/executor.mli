(** Compile physical plans to [exec] operator trees and run them.

    Execution is instrumented: measured I/O (through the catalog's counters)
    and, for every rank-join node, the actual input depths and buffer
    high-water mark — the quantities the estimation model of Section 4
    predicts and Section 5 validates. Supplying a {!Exec.Metrics.t} registry
    extends this to {e every} operator: per-node tuple counts plus the page
    I/O attributed to the node, returned as a [profile] tree mirroring the
    plan shape (the raw material of [EXPLAIN ANALYZE]). *)

open Relalg

type rank_node_stats = {
  label : string;  (** One-line description of the rank-join node. *)
  algo : Plan.join_algo;
  stats : Exec.Exec_stats.t;
      (** Input 0 = left/outer depth, input 1 = right/inner depth. *)
}

type nary_node_stats = {
  nary_label : string;
  nary_stats : Exec.Exec_stats.t;  (** Per-input depths + buffer. *)
}

type profile = {
  p_plan : Plan.t;  (** The subplan rooted at this operator. *)
  p_node : Exec.Metrics.node;  (** Its live stats + attributed I/O. *)
  p_children : profile list;
}

type run_result = {
  rows : (Tuple.t * float) list;
      (** Output tuples with their ranking score (0.0 for unranked plans). *)
  io : Storage.Io_stats.snapshot;  (** I/O charged during this run. *)
  rank_nodes : rank_node_stats list;  (** Binary rank joins, pre-order. *)
  nary_nodes : nary_node_stats list;  (** N-ary rank joins, pre-order. *)
  profile : profile option;  (** Present when a metrics registry was given. *)
  schema : Schema.t;
}

val node_label : Plan.t -> string
(** Non-recursive one-line operator name, e.g. ["HRJN"] or
    ["IndexScan a.ix DESC"]. *)

exception Interrupted
(** Raised from an operator's [next] when the [interrupt] predicate fires —
    the cooperative cancellation used for per-query deadlines. *)

val compile :
  ?hints:Propagate.annotation ->
  ?metrics:Exec.Metrics.t ->
  ?interrupt:(unit -> bool) ->
  ?pool:Rkutil.Task_pool.t ->
  ?degree:int ->
  Storage.Catalog.t ->
  Plan.t ->
  Exec.Operator.t * rank_node_stats list * nary_node_stats list * profile option
(** Build the operator tree; rank-join statistics are filled during
    execution. When a depth-propagation annotation is supplied (from
    {!Propagate.run} on the same plan), HRJN nodes poll their inputs in the
    estimated optimal depth ratio instead of alternating. When a metrics
    registry is supplied, every operator is registered and I/O-scoped, and
    the matching [profile] tree is returned.

    Exchange nodes schedule their morsels on [pool] (in-process when
    absent: the gathering consumer runs every morsel itself, preserving
    the exact parallel semantics at degree-of-one speed). [degree]
    overrides the planned degree of {e every} exchange in the plan —
    the determinism sweeps rely on the output being bit-identical across
    overrides. *)

val run :
  ?hints:Propagate.annotation ->
  ?metrics:Exec.Metrics.t ->
  ?interrupt:(unit -> bool) ->
  ?pool:Rkutil.Task_pool.t ->
  ?degree:int ->
  ?fetch_limit:int ->
  Storage.Catalog.t ->
  Plan.t ->
  run_result
(** Open, pull (up to [fetch_limit] rows, default everything), close. I/O is
    measured as a diff of the catalog's counters around the run. When
    [interrupt] is supplied it is checked at every operator's [next]
    boundary; a [true] result aborts the run with {!Interrupted}. *)
