(* EXPLAIN ANALYZE rendering: the executed profile tree (from
   [Executor.run ~metrics]) annotated, node by node, with what the optimizer
   predicted — estimated input depths from the depth model next to observed
   depths, and estimated I/O cost next to the pages actually touched. *)

type io_totals = { reads : int; writes : int; hits : int }

let self_io (node : Exec.Metrics.node) =
  let s = Storage.Io_stats.snapshot node.Exec.Metrics.io in
  {
    reads = s.Storage.Io_stats.page_reads;
    writes = s.Storage.Io_stats.page_writes;
    hits = s.Storage.Io_stats.pool_hits;
  }

(* Cost_model estimates are cumulative over the subtree, so the comparable
   observed figure is the subtree sum of per-node attributions. *)
let rec subtree_io (p : Executor.profile) =
  List.fold_left
    (fun acc child ->
      let c = subtree_io child in
      { reads = acc.reads + c.reads; writes = acc.writes + c.writes;
        hits = acc.hits + c.hits })
    (self_io p.Executor.p_node)
    p.Executor.p_children

(* The annotation subtree matching a profile subtree: both mirror the plan,
   so structural (positional) descent is exact. *)
let child_ann ann i =
  match ann with
  | None -> None
  | Some a -> List.nth_opt a.Propagate.children i

let pp_depths fmt (observed : int array) (predicted : Depth_model.depths option)
    =
  let pred i =
    match (predicted, i) with
    | Some d, 0 -> Printf.sprintf " (predicted %.1f)" d.Depth_model.d_left
    | Some d, 1 -> Printf.sprintf " (predicted %.1f)" d.Depth_model.d_right
    | _ -> ""
  in
  let cells =
    Array.to_list
      (Array.mapi (fun i obs -> Printf.sprintf "in%d=%d%s" i obs (pred i))
         observed)
  in
  Format.fprintf fmt "depths: %s" (String.concat ", " cells)

let render ?env ?hints (profile : Executor.profile) =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  let rec go indent ann (p : Executor.profile) =
    let pad = String.make indent ' ' in
    let node = p.Executor.p_node in
    let stats = node.Exec.Metrics.stats in
    Format.fprintf fmt "%s%s  (rows=%d" pad node.Exec.Metrics.label
      (Exec.Exec_stats.emitted stats);
    if Exec.Exec_stats.buffer_max stats > 0 then
      Format.fprintf fmt ", buffer=%d" (Exec.Exec_stats.buffer_max stats);
    Format.fprintf fmt ")@.";
    if Exec.Exec_stats.inputs stats > 0 then begin
      let predicted =
        match ann with
        | Some { Propagate.depths = Some d; _ } -> Some d
        | _ -> None
      in
      Format.fprintf fmt "%s  %a@." pad
        (fun fmt () -> pp_depths fmt (Exec.Exec_stats.depths stats) predicted)
        ()
    end;
    let cum = subtree_io p in
    let est =
      match env with
      | None -> None
      | Some env ->
          let e = Cost_model.estimate env p.Executor.p_plan in
          let cost =
            match ann with
            | Some a -> e.Cost_model.cost_at a.Propagate.required
            | None -> e.Cost_model.total_cost
          in
          Some cost
    in
    (match est with
    | Some cost ->
        Format.fprintf fmt
          "%s  io: estimated %.1f units, actual %d pages (reads=%d writes=%d \
           pool_hits=%d)@."
          pad cost (cum.reads + cum.writes) cum.reads cum.writes cum.hits
    | None ->
        Format.fprintf fmt
          "%s  io: actual %d pages (reads=%d writes=%d pool_hits=%d)@." pad
          (cum.reads + cum.writes) cum.reads cum.writes cum.hits);
    List.iteri
      (fun i child -> go (indent + 2) (child_ann ann i) child)
      p.Executor.p_children
  in
  go 0 hints profile;
  Format.pp_print_flush fmt ();
  Buffer.contents buf
