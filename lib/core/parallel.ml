(* Which plan shapes an exchange can parallelize, and how.

   The executor morselizes a *driving spine*: a Table_scan or Index_scan
   leaf, with any stack of Filters, and Hash / INL / block-NL joins whose
   LEFT input continues the spine. Everything hanging off the spine to the
   right (hash build sides, NL inners, INL probe paths) is built once as
   shared read-only state and used by every worker. Rank joins, sorts and
   Top-k never sit under an exchange (a second exchange neither): rank
   joins must stay sequential and incremental — they may *pull from* an
   exchange through its bounded gather window, but never run inside one.

   The one extra shape is the fused parallel top-N: the optimizer rewrites
   Top_k over Sort over an eligible spine into the exchange, where each
   worker keeps a local top-k merged at the gather. *)

let rec has_exchange = function
  (* a gather's shards parallelize across processes, not via Exchange *)
  | Plan.Table_scan _ | Plan.Index_scan _ | Plan.Rank_index_scan _
  | Plan.Remote_scan _ | Plan.Gather_merge _ ->
      false
  | Plan.Filter { input; _ } | Plan.Sort { input; _ } | Plan.Top_k { input; _ }
    ->
      has_exchange input
  | Plan.Exchange _ -> true
  | Plan.Join { left; right; _ } -> has_exchange left || has_exchange right
  | Plan.Nary_rank_join { inputs; _ } | Plan.Any_k { inputs; _ } ->
      List.exists has_exchange inputs

let serial_ok p = not (Plan.has_rank_join p) && not (has_exchange p)

let rec spine_ok = function
  | Plan.Table_scan _ | Plan.Index_scan _ -> true
  | Plan.Filter { input; _ } -> spine_ok input
  | Plan.Join
      { algo = Plan.Hash | Plan.Index_nl | Plan.Nested_loops; left; right; _ }
    ->
      spine_ok left && serial_ok right
  | _ -> false

let eligible = function
  | Plan.Top_k { input = Plan.Sort { input; _ }; _ } -> spine_ok input
  | p -> spine_ok p

let rec off_spine = function
  (* a by-rank window is never morselized (spine_ok rejects it), so it can
     only appear as shared off-spine state *)
  | Plan.Table_scan _ | Plan.Index_scan _ | Plan.Rank_index_scan _
  | Plan.Remote_scan _ | Plan.Gather_merge _ ->
      []
  | Plan.Filter { input; _ } | Plan.Sort { input; _ } | Plan.Top_k { input; _ }
    ->
      off_spine input
  | Plan.Join { left; right; _ } -> right :: off_spine left
  | Plan.Exchange { input; _ } -> off_spine input
  | Plan.Nary_rank_join _ | Plan.Any_k _ -> []

(* Push an exchange below a Top_k-over-Sort pair so the executor can run
   the sort as per-worker local top-k heaps merged at the gather (the
   merge preserves the serial plan's exact order, ties included). Applied
   as a post-pass: enumeration costs Sort (Exchange spine) and this
   rewrite only moves work from the single-threaded gather into the
   workers, never changing output or making the plan slower. *)
let rec fuse_topk plan =
  match plan with
  | Plan.Top_k { k; input = Plan.Sort { order; input = Plan.Exchange { dop; input } } }
    when order.Plan.direction = Interesting_orders.Desc && spine_ok input ->
      Plan.Exchange
        { dop; input = Plan.Top_k { k; input = Plan.Sort { order; input } } }
  | Plan.Top_k { k; input } -> Plan.Top_k { k; input = fuse_topk input }
  | p -> p
