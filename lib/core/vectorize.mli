(** The [Vectorized] plan property: which subplans the executor runs
    batch-at-a-time on columnar batches with selection vectors, and the
    recompute used by the memo and by planlint's PL15.

    Shared by the executor (compilation contexts), the cost model (the
    per-tuple CPU discount applies exactly where the executor vectorizes),
    the memo (the stored property bit) and planlint (bit consistency and
    batched/streaming boundary soundness). *)

val serial_ok : Plan.t -> bool
(** Allowed off-spine (hash-build) subplans: rank-join-free and
    exchange-free, same constraint as {!Parallel}'s off-spine rule. *)

val spine_ok : Plan.t -> bool
(** The batched spine shapes: a [Table_scan] leaf, [Filter] stacks, and
    [Hash] joins continuing on the left with a {!serial_ok} build side.
    Index scans are deliberately excluded — a B+-tree walk is per-tuple,
    and scored index scans feed early-out consumers that a batched reader
    would over-read. *)

val fused_sink : Plan.t -> bool
(** [Top_k (Sort spine)] with a {!spine_ok} spine: the executor fuses the
    pair into the vectorized bounded-heap top-k sink. *)

val vectorized : Plan.t -> bool
(** Whether executing the plan vectorizes {e any} operator: the plan
    property stored in the memo and shown by EXPLAIN. Mirrors the
    executor's compilation contexts exactly (bulk below sorts and hash
    joins, streaming below rank joins, top-k heaps and exchanges). *)
