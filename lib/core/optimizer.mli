(** Top-level facade: optimize a logical query and execute the chosen plan.

    This ties the framework together: interesting-order derivation, DP
    enumeration with rank-aware pruning, depth/cost estimation, and the
    instrumented executor. *)

type planned = {
  query : Logical.t;
  plan : Plan.t;
  est : Cost_model.estimate;
  stats : Enumerator.stats;
  interesting : Interesting_orders.interesting_order list;
  env : Cost_model.env;
}

val optimize :
  ?config:Enumerator.config ->
  ?env:Cost_model.env ->
  Storage.Catalog.t ->
  Logical.t ->
  planned
(** Choose the best plan.
    @raise Failure when the query yields no plan (e.g. no relations). *)

val execute : ?fetch_limit:int -> Storage.Catalog.t -> planned -> Executor.run_result
(** Run the chosen plan. For ranking queries the plan already contains the
    Top-k limit. *)

val run_query :
  ?config:Enumerator.config ->
  Storage.Catalog.t ->
  Logical.t ->
  planned * Executor.run_result
(** [optimize] + [execute]. *)

val explain : planned -> string
(** Human-readable plan with cost, properties and depth propagation. *)

val execute_analyzed :
  ?fetch_limit:int -> Storage.Catalog.t -> planned -> string * Executor.run_result
(** Run the plan under a fresh {!Exec.Metrics} registry and render the
    {!Analyze} tree: per-operator observed depths vs the depth model's
    predictions, and actual vs estimated I/O. *)

val explain_analyze :
  ?fetch_limit:int -> Storage.Catalog.t -> planned -> string * Executor.run_result
(** [execute_analyzed] with a query/row-count/total-I/O header — the body of
    the CLI's [analyze] command. *)
