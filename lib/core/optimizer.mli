(** Top-level facade: optimize a logical query and execute the chosen plan.

    This ties the framework together: interesting-order derivation, DP
    enumeration with rank-aware pruning, depth/cost estimation, and the
    instrumented executor. *)

type k_interval = { k_lo : int; k_hi : int option }
(** The contiguous range of [k] on which a chosen plan stays the winner
    ([k_hi = None] means "up to full output"). Derived from the optimizer's
    k{^*} crossover comparisons at the root MEMO entry: outside the
    interval, a re-optimization would pick a different plan (Section 4.3's
    regime flip between rank-join and join-then-sort plans). *)

type planned = {
  query : Logical.t;
  plan : Plan.t;
  est : Cost_model.estimate;
  stats : Enumerator.stats;
  interesting : Interesting_orders.interesting_order list;
  env : Cost_model.env;
  k_validity : k_interval;
      (** Range of [k] on which [plan] remains the optimizer's choice —
          the plan cache's reuse condition for rebinding [k]. *)
  enumerable : bool;
      (** The Enumerate plan property: the root is a Top-k over a
          resumable stream (see {!Enumerate.eligible}), so the statement
          can back a cursor and keep streaming ranked answers past [k].
          Invariant under {!rebind_k} (only the Top-k limit changes). *)
}

val planned_hook : (planned -> unit) ref
(** Called with every statement [optimize] finishes planning. Defaults to a
    no-op; the planlint emit-time assertion mode installs itself here. *)

val optimize :
  ?config:Enumerator.config ->
  ?env:Cost_model.env ->
  Storage.Catalog.t ->
  Logical.t ->
  planned
(** Choose the best plan.
    @raise Failure when the query yields no plan (e.g. no relations). *)

val k_in_validity : planned -> int -> bool
(** Whether rebinding the query's [k] to the given value keeps the plan
    optimal (no re-optimization needed). *)

val pp_k_interval : Format.formatter -> k_interval -> unit

val rebind_k : planned -> int -> planned
(** Reuse the plan shape with a new [k]: the Top-k limit is replaced and
    the environment's [k] updated so {!execute} re-runs depth propagation
    ([Propagate]) at the new [k]. The caller is responsible for checking
    {!k_in_validity} first — outside the validity interval the rebound plan
    still answers correctly but is no longer the optimizer's choice.
    Unranked plans are returned unchanged.
    @raise Invalid_argument when [k <= 0]. *)

val execute :
  ?interrupt:(unit -> bool) ->
  ?pool:Rkutil.Task_pool.t ->
  ?degree:int ->
  ?vectorized:bool ->
  ?fetch_limit:int ->
  Storage.Catalog.t ->
  planned ->
  Executor.run_result
(** Run the chosen plan. For ranking queries the plan already contains the
    Top-k limit. [interrupt] is the cooperative deadline hook, checked at
    operator [next()] boundaries (see {!Executor.run}). [pool] and
    [degree] control exchange execution; [vectorized] (default on)
    selects batch-at-a-time execution of the plan's vector spines (see
    {!Executor.compile}). *)

val run_query :
  ?config:Enumerator.config ->
  Storage.Catalog.t ->
  Logical.t ->
  planned * Executor.run_result
(** [optimize] + [execute]. *)

val explain : planned -> string
(** Human-readable plan with cost, properties and depth propagation. *)

val execute_analyzed :
  ?pool:Rkutil.Task_pool.t ->
  ?degree:int ->
  ?vectorized:bool ->
  ?fetch_limit:int ->
  Storage.Catalog.t ->
  planned ->
  string * Executor.run_result
(** Run the plan under a fresh {!Exec.Metrics} registry and render the
    {!Analyze} tree: per-operator observed depths vs the depth model's
    predictions, and actual vs estimated I/O. *)

val explain_analyze :
  ?pool:Rkutil.Task_pool.t ->
  ?degree:int ->
  ?vectorized:bool ->
  ?fetch_limit:int ->
  Storage.Catalog.t ->
  planned ->
  string * Executor.run_result
(** [execute_analyzed] with a query/row-count/total-I/O header — the body of
    the CLI's [analyze] command. *)
