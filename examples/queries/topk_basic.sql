-- Two-relation top-k joins: the paper's bread-and-butter shapes.
-- `make lint` runs `rankopt lint --dir examples/queries` over this corpus.

SELECT A.id, B.id FROM A, B WHERE A.key = B.key
ORDER BY 0.3*A.score + 0.7*B.score DESC LIMIT 5;

-- Equal weights, larger k.
SELECT A.id, B.id FROM A, B WHERE A.key = B.key
ORDER BY A.score + B.score DESC LIMIT 50;

-- Skewed weights with a selection pushed onto one input.
SELECT A.id, B.id FROM A, B
WHERE A.key = B.key AND A.score >= 0.25
ORDER BY 0.9*A.score + 0.1*B.score DESC LIMIT 10;

-- Single-relation top-k: index scan or sort, no rank join.
SELECT id, score FROM A ORDER BY A.score DESC LIMIT 7;

-- Selection under the limit.
SELECT id FROM B WHERE B.score >= 0.8 ORDER BY B.score DESC LIMIT 12;
