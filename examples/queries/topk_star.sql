-- Three-relation star queries on the shared key: exercises the n-ary rank
-- join (one threshold over all inputs) against binary HRJN pipelines.

SELECT A.id, B.id, C.id FROM A, B, C
WHERE A.key = B.key AND B.key = C.key
ORDER BY A.score + B.score + C.score DESC LIMIT 5;

-- Weighted, with the pairwise predicates spelled around the star.
SELECT A.id, C.id FROM A, B, C
WHERE A.key = B.key AND A.key = C.key
ORDER BY 0.5*A.score + 0.2*B.score + 0.3*C.score DESC LIMIT 20;

-- The SQL99 WITH / rank() spelling normalizes to the same template.
WITH Ranked AS (
  SELECT A.id AS x, C.id AS y,
         rank() OVER (ORDER BY 0.6*A.score + 0.4*C.score DESC) AS rank
  FROM A, C WHERE A.key = C.key)
SELECT x, y, rank FROM Ranked WHERE rank <= 8;
