-- Unranked statements: join-then-filter shapes with no Top-k operator —
-- the lint catalog still checks schema, order, pipelining, filter
-- preservation and cost monotonicity on these.

SELECT A.id, B.id FROM A, B WHERE A.key = B.key AND A.score >= 0.5;

SELECT id, key FROM A WHERE A.score >= 0.9;

SELECT A.id FROM A, B WHERE A.key = B.key AND B.score >= 0.75 AND A.score >= 0.1;
