-- By-rank windows over the order-statistic score index: rank() BETWEEN
-- selects leaderboard positions lo..hi (1-based, rank 1 = best score,
-- competition ranking on ties). PL13 checks the window bounds, the score
-- expression, and that any named index is keyed on exactly that score.

SELECT A.id, A.score FROM A WHERE rank() BETWEEN 1 AND 10
ORDER BY A.score DESC;

-- A deep page: the counted descent skips the first 499 entries in
-- O(log n) instead of draining them.
SELECT A.id FROM A WHERE rank() BETWEEN 500 AND 520
ORDER BY A.score DESC;

-- Residual predicate: the window is computed over the whole table, then
-- the filter prunes within it.
SELECT B.id, B.score FROM B WHERE rank() BETWEEN 1 AND 50 AND B.key >= 10
ORDER BY B.score DESC;

-- rank() AS r projects the 1-based leaderboard position itself.
SELECT rank() AS r, C.id FROM C WHERE rank() BETWEEN 3 AND 7
ORDER BY C.score DESC;
