(* Quickstart: load two scored tables, ask for the top-5 join results by
   combined score, and look at what the rank-aware optimizer did.

   Run with: dune exec examples/quickstart.exe *)

open Relalg

let () =
  (* 1. A catalog owns storage, statistics and I/O accounting. *)
  let catalog = Storage.Catalog.create () in

  (* 2. Load two synthetic tables: columns (id, key, score). Each gets a
     B+-tree on [score] (ranked access path) and one on [key]. The join key
     domain controls join selectivity: s = 1/500. *)
  let prng = Rkutil.Prng.create 42 in
  ignore
    (Workload.Generator.load_scored_table catalog prng ~name:"Restaurants"
       ~n:5_000 ~key_domain:500 ());
  ignore
    (Workload.Generator.load_scored_table catalog prng ~name:"Hotels" ~n:5_000
       ~key_domain:500 ());

  (* 3. Describe the top-k join query: restaurants and hotels in the same
     area (key = key), ranked by 0.4*restaurant score + 0.6*hotel score. *)
  let query =
    Core.Logical.make
      ~relations:
        [
          Core.Logical.base
            ~score:(Expr.col ~relation:"Restaurants" "score")
            ~weight:0.4 "Restaurants";
          Core.Logical.base
            ~score:(Expr.col ~relation:"Hotels" "score")
            ~weight:0.6 "Hotels";
        ]
      ~joins:[ Core.Logical.equijoin ("Restaurants", "key") ("Hotels", "key") ]
      ~k:5 ()
  in

  (* 4. Optimize and execute. *)
  let planned, result = Core.Optimizer.run_query catalog query in
  print_string (Core.Optimizer.explain planned);
  print_newline ();

  (* 5. Results arrive ranked; the engine consumed only a prefix of each
     input ("early out"), which the instrumentation shows. *)
  Printf.printf "Top %d results:\n" (List.length result.Core.Executor.rows);
  List.iteri
    (fun i (tuple, score) ->
      Printf.printf "  #%d  score=%.4f  %s\n" (i + 1) score (Tuple.to_string tuple))
    result.Core.Executor.rows;
  print_newline ();
  List.iter
    (fun rn ->
      Printf.printf
        "%s consumed %d left + %d right tuples (of 5000 each), buffered <= %d\n"
        rn.Core.Executor.label (Exec.Exec_stats.left_depth rn.Core.Executor.stats)
        (Exec.Exec_stats.right_depth rn.Core.Executor.stats)
        (Exec.Exec_stats.buffer_max rn.Core.Executor.stats))
    result.Core.Executor.rank_nodes;
  Printf.printf "Measured I/O: %s\n"
    (Format.asprintf "%a" Storage.Io_stats.pp result.Core.Executor.io)
