(* The paper's experimental scenario (Section 5): multi-feature similarity
   search over a video library — run at two library sizes to show both sides
   of Figure 1's tradeoff.

   Each visual feature ranks all video objects by similarity to a query
   image; the top-k query combines features with user weights, joining the
   per-feature relations on the object id (a 1:1 join, selectivity 1/n).

   - Small library: the buffer pool holds the tables, ranked (unclustered)
     access is cheap, and the optimizer picks a rank-join plan that reads a
     tiny prefix of each feature index.
   - Large library: selectivity 1/n is so low that rank-joins would drain
     their inputs through random I/O; the optimizer correctly falls back to
     the join-then-sort plan — the left region of Figure 1.

   Run with: dune exec examples/video_similarity.exe *)

let k = 20

let weights = [ ("ColorHist", 0.35); ("ColorLayout", 0.25); ("Texture", 0.40) ]

let build_query () =
  let relations =
    List.map
      (fun (feature, w) ->
        Core.Logical.base
          ~score:(Relalg.Expr.col ~relation:feature "score")
          ~weight:w feature)
      weights
  in
  let rec chain = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        Core.Logical.equijoin (a, "oid") (b, "oid") :: chain rest
    | _ -> []
  in
  Core.Logical.make ~relations ~joins:(chain weights) ~k ()

let run_with label config catalog query n_objects =
  let planned = Core.Optimizer.optimize ~config catalog query in
  Storage.Catalog.reset_io catalog;
  let t0 = Unix.gettimeofday () in
  let result = Core.Optimizer.execute catalog planned in
  let elapsed = Unix.gettimeofday () -. t0 in
  Printf.printf "  %s\n" label;
  Printf.printf "    plan: %s\n" (Core.Plan.describe planned.Core.Optimizer.plan);
  Printf.printf "    estimated cost %.1f; wall %.1f ms; I/O %s\n"
    planned.Core.Optimizer.est.Core.Cost_model.total_cost (elapsed *. 1000.0)
    (Format.asprintf "%a" Storage.Io_stats.pp result.Core.Executor.io);
  List.iter
    (fun rn ->
      Printf.printf "    %s: depths %d/%d of %d\n" rn.Core.Executor.label
        (Exec.Exec_stats.left_depth rn.Core.Executor.stats)
        (Exec.Exec_stats.right_depth rn.Core.Executor.stats) n_objects)
    result.Core.Executor.rank_nodes;
  List.iter
    (fun nn ->
      Printf.printf "    %s: depths %s of %d\n" nn.Core.Executor.nary_label
        (String.concat "/"
           (Array.to_list
              (Array.map string_of_int
                 (Exec.Exec_stats.depths nn.Core.Executor.nary_stats))))
        n_objects)
    result.Core.Executor.nary_nodes;
  result

let scenario ~n_objects =
  Printf.printf "\n=== Library of %d objects x %d features (join selectivity 1/%d) ===\n"
    n_objects (List.length weights) n_objects;
  let video =
    Workload.Video.build ~seed:2024 ~n_objects ~features:(List.map fst weights) ()
  in
  let catalog = video.Workload.Video.catalog in
  let query = build_query () in
  let rank_result =
    run_with "rank-aware optimizer:" Core.Enumerator.default_config catalog query
      n_objects
  in
  let sort_result =
    run_with "traditional optimizer:"
      { Core.Enumerator.rank_aware = false; first_rows = false }
      catalog query n_objects
  in
  let scores r = List.map snd r.Core.Executor.rows in
  let same =
    List.for_all2
      (fun a b -> Float.abs (a -. b) < 1e-9)
      (scores rank_result) (scores sort_result)
  in
  Printf.printf "  identical top-%d scores from both optimizers: %b\n" k same

let () =
  (* High-selectivity regime: rank-join plan wins (right side of Fig. 1). *)
  scenario ~n_objects:4000;
  (* Low-selectivity regime: join-then-sort wins (left side of Fig. 1); the
     rank-aware optimizer must recognise this and pick the sort plan too. *)
  scenario ~n_objects:20000
