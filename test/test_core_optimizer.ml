(* Tests for interesting-order derivation (Table 1), MEMO pruning, the
   rank-aware DP enumerator (Figures 2-3 behaviour) and end-to-end
   optimizer + executor correctness. *)

open Relalg
open Core

(* Query Q2 of the paper: three relations, joins A.c2=B.c1 and B.c2=C.c2,
   ranking on 0.3*A.c1 + 0.3*B.c1 + 0.3*C.c1. *)
let q2_relations () =
  [
    Logical.base ~score:(Expr.col ~relation:"A" "c1") ~weight:0.3 "A";
    Logical.base ~score:(Expr.col ~relation:"B" "c1") ~weight:0.3 "B";
    Logical.base ~score:(Expr.col ~relation:"C" "c1") ~weight:0.3 "C";
  ]

let q2 () =
  Logical.make ~relations:(q2_relations ())
    ~joins:
      [ Logical.equijoin ("A", "c2") ("B", "c1"); Logical.equijoin ("B", "c2") ("C", "c2") ]
    ~k:5 ()

let find_order orders expr direction =
  List.find_opt
    (fun (o : Interesting_orders.interesting_order) ->
      Expr.equal o.Interesting_orders.expr expr
      && o.Interesting_orders.direction = direction)
    orders

let test_table1_orders () =
  (* The derived set must contain every row of Table 1. *)
  let orders = Interesting_orders.derive (q2 ()) in
  let col t c = Expr.col ~relation:t c in
  let expect expr direction reason label =
    match find_order orders expr direction with
    | None -> Alcotest.failf "missing interesting order %s" label
    | Some o ->
        Alcotest.(check string)
          (label ^ " reason")
          (Interesting_orders.reason_name reason)
          (Interesting_orders.reason_name o.Interesting_orders.reason)
  in
  let open Interesting_orders in
  expect (col "A" "c1") Desc Rank_join "A.c1";
  expect (col "A" "c2") Asc Join "A.c2";
  expect (col "B" "c1") Desc Join_and_rank_join "B.c1 (desc)";
  expect (col "B" "c2") Asc Join "B.c2";
  expect (col "C" "c1") Desc Rank_join "C.c1";
  expect (col "C" "c2") Asc Join "C.c2";
  expect
    (Expr.weighted_sum [ (0.3, col "A" "c1"); (0.3, col "B" "c1") ])
    Desc Rank_join "0.3A.c1+0.3B.c1";
  expect
    (Expr.weighted_sum [ (0.3, col "B" "c1"); (0.3, col "C" "c1") ])
    Desc Rank_join "0.3B.c1+0.3C.c1";
  expect
    (Expr.weighted_sum [ (0.3, col "A" "c1"); (0.3, col "C" "c1") ])
    Desc Rank_join "0.3A.c1+0.3C.c1";
  expect
    (Expr.weighted_sum
       [ (0.3, col "A" "c1"); (0.3, col "B" "c1"); (0.3, col "C" "c1") ])
    Desc Order_by "full ranking expression"

let test_traditional_orders_exclude_scores () =
  let orders = Interesting_orders.derive ~rank_aware:false (q2 ()) in
  let col t c = Expr.col ~relation:t c in
  Alcotest.(check bool) "A.c1 not interesting" true
    (Option.is_none (find_order orders (col "A" "c1") Interesting_orders.Desc));
  (* Join columns and the ORDER BY itself remain. *)
  Alcotest.(check bool) "A.c2 interesting" true
    (Option.is_some (find_order orders (col "A" "c2") Interesting_orders.Asc));
  Alcotest.(check bool) "full order by kept" true
    (Option.is_some
       (find_order orders
          (Expr.weighted_sum
             [ (0.3, col "A" "c1"); (0.3, col "B" "c1"); (0.3, col "C" "c1") ])
          Interesting_orders.Desc))

let test_orders_for_subset () =
  let orders = Interesting_orders.derive (q2 ()) in
  let for_a = Interesting_orders.for_subset orders [ "A" ] in
  List.iter
    (fun (o : Interesting_orders.interesting_order) ->
      Alcotest.(check (list string)) "only A" [ "A" ] o.Interesting_orders.relations)
    for_a;
  let for_ab = Interesting_orders.for_subset orders [ "A"; "B" ] in
  Alcotest.(check bool) "pair order present" true
    (List.length for_ab > List.length for_a)

(* --- Logical query validation --- *)

let test_logical_validation () =
  Alcotest.check_raises "duplicate" (Invalid_argument "Logical.make: duplicate relation A")
    (fun () ->
      ignore
        (Logical.make
           ~relations:[ Logical.base "A"; Logical.base "A" ]
           ~joins:[ Logical.equijoin ("A", "x") ("A", "y") ]
           ()));
  Alcotest.check_raises "unknown relation"
    (Invalid_argument "Logical.make: join references unknown relation Z") (fun () ->
      ignore
        (Logical.make ~relations:[ Logical.base "A"; Logical.base "B" ]
           ~joins:[ Logical.equijoin ("Z", "x") ("B", "y") ]
           ()));
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Logical.make: disconnected join graph") (fun () ->
      ignore (Logical.make ~relations:[ Logical.base "A"; Logical.base "B" ] ~joins:[] ()))

let test_partial_scoring () =
  let q = q2 () in
  (match Logical.partial_scoring_expr q [ "A"; "C" ] with
  | Some e ->
      Alcotest.(check bool) "A and C" true
        (Expr.equal e
           (Expr.weighted_sum
              [ (0.3, Expr.col ~relation:"A" "c1"); (0.3, Expr.col ~relation:"C" "c1") ]))
  | None -> Alcotest.fail "expected partial score");
  Alcotest.(check bool) "empty subset" true
    (Option.is_none (Logical.partial_scoring_expr q []))

(* --- Catalog fixtures for enumeration/execution tests --- *)

let video_style_catalog ?(n = 300) ?(domain = 30) ?(seed = 9) tables =
  let cat = Storage.Catalog.create () in
  List.iteri
    (fun i name ->
      ignore
        (Workload.Generator.load_scored_table cat
           (Rkutil.Prng.create (seed + i))
           ~name ~n ~key_domain:domain ()))
    tables;
  cat

let topk_query ?(k = 10) tables =
  let relations =
    List.map
      (fun t -> Logical.base ~score:(Expr.col ~relation:t "score") ~weight:1.0 t)
      tables
  in
  let rec chain = function
    | a :: (b :: _ as rest) ->
        Logical.equijoin (a, "key") (b, "key") :: chain rest
    | _ -> []
  in
  Logical.make ~relations ~joins:(chain tables) ~k ()

let relation_of cat name =
  let info = Storage.Catalog.table cat name in
  Relation.create info.Storage.Catalog.tb_schema
    (Storage.Heap_file.to_list info.Storage.Catalog.tb_heap)

let oracle_topk cat tables k =
  let rec joined = function
    | [ t ] -> relation_of cat t
    | a :: (b :: _ as rest) ->
        let right = joined rest in
        Relation.join
          ~on:Expr.(col ~relation:a "key" = col ~relation:b "key")
          (relation_of cat a) right
    | [] -> failwith "empty"
  in
  let all = joined tables in
  let score =
    Expr.weighted_sum (List.map (fun t -> (1.0, Expr.col ~relation:t "score")) tables)
  in
  Relation.top_k ~score ~k all

(* --- MEMO pruning --- *)

let test_memo_same_class_pruning () =
  let cat = video_style_catalog [ "A"; "B" ] in
  let q = topk_query [ "A"; "B" ] in
  let env = Cost_model.default_env ~k_min:10 cat q in
  let memo = Memo.create () in
  let cheap = Memo.subplan_of env (Plan.Table_scan { table = "A" }) in
  let costly =
    Memo.subplan_of env
      (Plan.Filter
         { pred = Expr.(Cmp (Ge, col ~relation:"A" "score", cfloat (-1.0))); input = Plan.Table_scan { table = "A" } })
  in
  Alcotest.(check bool) "cheap added" true
    (Memo.add memo env ~first_rows:true ~key:1 cheap);
  Alcotest.(check bool) "costlier same-class pruned" false
    (Memo.add memo env ~first_rows:true ~key:1 costly);
  Alcotest.(check int) "one plan kept" 1 (List.length (Memo.plans memo 1))

let test_memo_order_protects () =
  let cat = video_style_catalog [ "A"; "B" ] in
  let q = topk_query [ "A"; "B" ] in
  let env = Cost_model.default_env ~k_min:10 cat q in
  let memo = Memo.create () in
  let plain = Memo.subplan_of env (Plan.Table_scan { table = "A" }) in
  let sorted =
    Memo.subplan_of env
      (Plan.Sort
         {
           order = { Plan.expr = Expr.col ~relation:"A" "score"; direction = Interesting_orders.Desc };
           input = Plan.Table_scan { table = "A" };
         })
  in
  ignore (Memo.add memo env ~first_rows:true ~key:1 plain);
  Alcotest.(check bool) "ordered plan survives despite higher cost" true
    (Memo.add memo env ~first_rows:true ~key:1 sorted);
  Alcotest.(check int) "two plans" 2 (List.length (Memo.plans memo 1))

let test_memo_pipelining_protects () =
  let cat = video_style_catalog [ "A"; "B" ] in
  let q = topk_query [ "A"; "B" ] in
  let env = Cost_model.default_env ~k_min:10 cat q in
  let order = { Plan.expr = Expr.col ~relation:"A" "score"; direction = Interesting_orders.Desc } in
  let ix =
    match Storage.Catalog.find_index_on_expr cat ~table:"A" (Expr.col ~relation:"A" "score") with
    | Some ix -> ix.Storage.Catalog.ix_name
    | None -> Alcotest.fail "score index missing"
  in
  let pipelined =
    Memo.subplan_of env
      (Plan.Index_scan { table = "A"; index = ix; key = Expr.col ~relation:"A" "score"; desc = true })
  in
  let blocking =
    Memo.subplan_of env (Plan.Sort { order; input = Plan.Table_scan { table = "A" } })
  in
  (* With first-rows optimization the pipelined plan cannot be pruned by the
     blocking one even if the blocking one were cheaper. *)
  let memo = Memo.create () in
  ignore (Memo.add memo env ~first_rows:true ~key:1 blocking);
  Alcotest.(check bool) "pipelined survives" true
    (Memo.add memo env ~first_rows:true ~key:1 pipelined)

(* --- Enumerator --- *)

let test_rank_aware_keeps_more_plans () =
  (* Figures 2-3: enabling ranking as an interesting property strictly
     increases the number of retained plans. *)
  let cat = video_style_catalog [ "A"; "B"; "C" ] in
  let q = topk_query [ "A"; "B"; "C" ] in
  let env = Cost_model.default_env ~k_min:10 cat q in
  let traditional =
    Enumerator.run ~config:{ Enumerator.rank_aware = false; first_rows = false } env
  in
  let rank_aware =
    Enumerator.run ~config:{ Enumerator.rank_aware = true; first_rows = true } env
  in
  Alcotest.(check bool) "more retained plans" true
    (rank_aware.Enumerator.stats.Enumerator.retained
    > traditional.Enumerator.stats.Enumerator.retained)

let test_enumerator_produces_rank_join_plan () =
  let cat = video_style_catalog ~n:2000 ~domain:200 [ "A"; "B" ] in
  let q = topk_query ~k:5 [ "A"; "B" ] in
  let env = Cost_model.default_env ~k_min:5 cat q in
  let result = Enumerator.run env in
  match result.Enumerator.best with
  | None -> Alcotest.fail "no plan"
  | Some sp ->
      (* With a selective enough join and tiny k the rank-join plan should
         win (Figure 1's right-hand region). *)
      Alcotest.(check bool) "rank join chosen" true (Plan.has_rank_join sp.Memo.plan)

let test_enumerator_memo_entries_connected_only () =
  let cat = video_style_catalog [ "A"; "B"; "C" ] in
  (* Chain A-B-C: subset {A,C} is disconnected; no entry should exist. *)
  let q = topk_query [ "A"; "B"; "C" ] in
  let env = Cost_model.default_env ~k_min:10 cat q in
  let result = Enumerator.run env in
  let mask_ac = Enumerator.relation_mask env [ "A"; "C" ] in
  Alcotest.(check (list reject)) "no AC entry" []
    (List.map (fun _ -> ()) (Memo.plans result.Enumerator.memo mask_ac))

let test_best_plan_not_worse_than_handwritten () =
  let cat = video_style_catalog ~n:1000 ~domain:50 [ "A"; "B" ] in
  let q = topk_query ~k:10 [ "A"; "B" ] in
  let env = Cost_model.default_env ~k_min:10 cat q in
  let result = Enumerator.run env in
  let best = Option.get result.Enumerator.best in
  let best_cost = Memo.decision_cost env best in
  (* Hand-written alternatives the optimizer must not lose to. *)
  let cond =
    { Logical.left_table = "A"; left_column = "key"; right_table = "B"; right_column = "key" }
  in
  let score =
    Expr.weighted_sum
      [ (1.0, Expr.col ~relation:"A" "score"); (1.0, Expr.col ~relation:"B" "score") ]
  in
  let alternatives =
    [
      Plan.Top_k
        {
          k = 10;
          input =
            Plan.Sort
              {
                order = { Plan.expr = score; direction = Interesting_orders.Desc };
                input =
                  Plan.Join
                    {
                      algo = Plan.Hash;
                      cond;
                      left = Plan.Table_scan { table = "A" };
                      right = Plan.Table_scan { table = "B" };
                      left_score = None;
                      right_score = None;
                    };
              };
        };
    ]
  in
  List.iter
    (fun alt ->
      let alt_cost = Memo.decision_cost env (Memo.subplan_of env alt) in
      Alcotest.(check bool) "optimizer at least as good" true (best_cost <= alt_cost +. 1e-6))
    alternatives

(* --- End-to-end: optimize + execute = oracle --- *)

let check_e2e ?(tables = [ "A"; "B" ]) ?(n = 200) ?(domain = 15) ?(k = 8) ?(seed = 5) () =
  let cat = video_style_catalog ~n ~domain ~seed tables in
  let q = topk_query ~k tables in
  let _, result = Optimizer.run_query cat q in
  let oracle = oracle_topk cat tables k in
  Test_util.check_score_multiset "top-k scores" (List.map snd oracle)
    (List.map snd result.Executor.rows);
  Test_util.check_non_increasing "ordered output" (List.map snd result.Executor.rows)

let test_e2e_two_way () = check_e2e ()

let test_e2e_three_way () = check_e2e ~tables:[ "A"; "B"; "C" ] ~n:120 ~domain:10 ~k:5 ()

let test_e2e_four_way () =
  check_e2e ~tables:[ "A"; "B"; "C"; "D" ] ~n:60 ~domain:6 ~k:4 ()

let test_e2e_k_one () = check_e2e ~k:1 ()

let test_e2e_k_huge () = check_e2e ~k:100000 ~n:60 ~domain:5 ()

let test_e2e_traditional_config_agrees () =
  (* The traditional optimizer must return the same answers, just possibly
     with a different (join-then-sort) plan. *)
  let tables = [ "A"; "B" ] in
  let cat = video_style_catalog ~n:150 ~domain:12 tables in
  let q = topk_query ~k:7 tables in
  let planned, result =
    Optimizer.run_query
      ~config:{ Enumerator.rank_aware = false; first_rows = false }
      cat q
  in
  Alcotest.(check bool) "no rank join in traditional plan" false
    (Plan.has_rank_join planned.Optimizer.plan);
  let oracle = oracle_topk cat tables 7 in
  Test_util.check_score_multiset "same answers" (List.map snd oracle)
    (List.map snd result.Executor.rows)

let test_e2e_with_filter () =
  let cat = video_style_catalog ~n:200 ~domain:10 [ "A"; "B" ] in
  let filter = Expr.(Cmp (Ge, col ~relation:"A" "score", cfloat 0.3)) in
  let q =
    Logical.make
      ~relations:
        [
          Logical.base ~filter ~score:(Expr.col ~relation:"A" "score") "A";
          Logical.base ~score:(Expr.col ~relation:"B" "score") "B";
        ]
      ~joins:[ Logical.equijoin ("A", "key") ("B", "key") ]
      ~k:6 ()
  in
  let _, result = Optimizer.run_query cat q in
  (* Oracle with the filter applied. *)
  let ra = Relation.filter filter (relation_of cat "A") in
  let joined =
    Relation.join ~on:Expr.(col ~relation:"A" "key" = col ~relation:"B" "key") ra
      (relation_of cat "B")
  in
  let score =
    Expr.weighted_sum
      [ (1.0, Expr.col ~relation:"A" "score"); (1.0, Expr.col ~relation:"B" "score") ]
  in
  let oracle = Relation.top_k ~score ~k:6 joined in
  Test_util.check_score_multiset "filtered top-k" (List.map snd oracle)
    (List.map snd result.Executor.rows)

let test_e2e_weighted_scores () =
  let cat = video_style_catalog ~n:150 ~domain:10 [ "A"; "B" ] in
  let q =
    Logical.make
      ~relations:
        [
          Logical.base ~score:(Expr.col ~relation:"A" "score") ~weight:0.2 "A";
          Logical.base ~score:(Expr.col ~relation:"B" "score") ~weight:0.8 "B";
        ]
      ~joins:[ Logical.equijoin ("A", "key") ("B", "key") ]
      ~k:5 ()
  in
  let _, result = Optimizer.run_query cat q in
  let joined =
    Relation.join
      ~on:Expr.(col ~relation:"A" "key" = col ~relation:"B" "key")
      (relation_of cat "A") (relation_of cat "B")
  in
  let score =
    Expr.weighted_sum
      [ (0.2, Expr.col ~relation:"A" "score"); (0.8, Expr.col ~relation:"B" "score") ]
  in
  let oracle = Relation.top_k ~score ~k:5 joined in
  Test_util.check_score_multiset "weighted top-k" (List.map snd oracle)
    (List.map snd result.Executor.rows)

let test_e2e_unranked_join () =
  (* A plain join query (no scoring, no k) must also plan and execute. *)
  let cat = video_style_catalog ~n:80 ~domain:8 [ "A"; "B" ] in
  let q =
    Logical.make
      ~relations:[ Logical.base "A"; Logical.base "B" ]
      ~joins:[ Logical.equijoin ("A", "key") ("B", "key") ]
      ()
  in
  let _, result = Optimizer.run_query cat q in
  let oracle =
    Relation.join
      ~on:Expr.(col ~relation:"A" "key" = col ~relation:"B" "key")
      (relation_of cat "A") (relation_of cat "B")
  in
  Alcotest.(check int) "cardinality" (Relation.cardinality oracle)
    (List.length result.Executor.rows)

let test_rank_plan_does_less_io_for_small_k () =
  (* The headline behaviour: for small k over a large input, the chosen
     rank-aware plan consumes far fewer input tuples than the join size. *)
  let cat = video_style_catalog ~n:3000 ~domain:300 ~seed:77 [ "A"; "B" ] in
  let q = topk_query ~k:3 [ "A"; "B" ] in
  let planned, result = Optimizer.run_query cat q in
  if Plan.has_rank_join planned.Optimizer.plan then
    List.iter
      (fun rn ->
        Alcotest.(check bool) "early out" true
          ((Exec.Exec_stats.left_depth rn.Executor.stats) < 3000))
      result.Executor.rank_nodes
  else Alcotest.fail "expected a rank-join plan for small k"

let prop_e2e_random_workloads =
  QCheck.Test.make ~name:"optimizer e2e: top-k = oracle (random workloads)"
    ~count:25
    QCheck.(
      triple (int_range 0 9999) (int_range 2 40) (pair (int_range 1 8) (int_range 1 12)))
    (fun (seed, n, (domain, k)) ->
      let tables = [ "A"; "B" ] in
      let cat = video_style_catalog ~n ~domain ~seed tables in
      let q = topk_query ~k tables in
      let _, result = Optimizer.run_query cat q in
      let oracle = oracle_topk cat tables k in
      let e = Test_util.score_multiset (List.map snd oracle) in
      let a = Test_util.score_multiset (List.map snd result.Executor.rows) in
      List.length e = List.length a
      && List.for_all2 (fun x y -> Test_util.floats_close ~eps:1e-7 x y) e a)

let prop_rank_aware_and_traditional_agree =
  QCheck.Test.make
    ~name:"optimizer: rank-aware and traditional return identical answers"
    ~count:15
    QCheck.(pair (int_range 0 9999) (int_range 2 10))
    (fun (seed, domain) ->
      let tables = [ "A"; "B"; "C" ] in
      let cat = video_style_catalog ~n:50 ~domain ~seed tables in
      let q = topk_query ~k:5 tables in
      let _, r1 = Optimizer.run_query cat q in
      let _, r2 =
        Optimizer.run_query
          ~config:{ Enumerator.rank_aware = false; first_rows = false }
          cat q
      in
      let s1 = Test_util.score_multiset (List.map snd r1.Executor.rows) in
      let s2 = Test_util.score_multiset (List.map snd r2.Executor.rows) in
      List.length s1 = List.length s2
      && List.for_all2 (fun x y -> Test_util.floats_close ~eps:1e-7 x y) s1 s2)

let suites =
  [
    ( "core.interesting_orders",
      [
        Alcotest.test_case "table 1" `Quick test_table1_orders;
        Alcotest.test_case "traditional excludes scores" `Quick
          test_traditional_orders_exclude_scores;
        Alcotest.test_case "subset restriction" `Quick test_orders_for_subset;
      ] );
    ( "core.logical",
      [
        Alcotest.test_case "validation" `Quick test_logical_validation;
        Alcotest.test_case "partial scoring" `Quick test_partial_scoring;
      ] );
    ( "core.memo",
      [
        Alcotest.test_case "same-class pruning" `Quick test_memo_same_class_pruning;
        Alcotest.test_case "order protects" `Quick test_memo_order_protects;
        Alcotest.test_case "pipelining protects" `Quick test_memo_pipelining_protects;
      ] );
    ( "core.enumerator",
      [
        Alcotest.test_case "rank-aware keeps more plans" `Quick
          test_rank_aware_keeps_more_plans;
        Alcotest.test_case "rank-join plan generated" `Quick
          test_enumerator_produces_rank_join_plan;
        Alcotest.test_case "connected subsets only" `Quick
          test_enumerator_memo_entries_connected_only;
        Alcotest.test_case "beats handwritten plans" `Quick
          test_best_plan_not_worse_than_handwritten;
      ] );
    ( "core.optimizer_e2e",
      [
        Alcotest.test_case "two-way" `Quick test_e2e_two_way;
        Alcotest.test_case "three-way" `Quick test_e2e_three_way;
        Alcotest.test_case "four-way" `Slow test_e2e_four_way;
        Alcotest.test_case "k=1" `Quick test_e2e_k_one;
        Alcotest.test_case "k > join size" `Quick test_e2e_k_huge;
        Alcotest.test_case "traditional agrees" `Quick test_e2e_traditional_config_agrees;
        Alcotest.test_case "with filter" `Quick test_e2e_with_filter;
        Alcotest.test_case "weighted scores" `Quick test_e2e_weighted_scores;
        Alcotest.test_case "unranked join" `Quick test_e2e_unranked_join;
        Alcotest.test_case "early out observed" `Quick test_rank_plan_does_less_io_for_small_k;
        QCheck_alcotest.to_alcotest prop_e2e_random_workloads;
        QCheck_alcotest.to_alcotest prop_rank_aware_and_traditional_agree;
      ] );
  ]
