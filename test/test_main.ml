let () =
  Alcotest.run "rankopt"
    (List.concat
       [
         Test_rkutil.suites;
         Test_relalg.suites;
         Test_storage.suites;
         Test_btree.suites;
         Test_exec.suites;
         Test_vector.suites;
         Test_metrics.suites;
         Test_rank_join.suites;
         Test_any_k.suites;
         Test_ranking.suites;
         Test_workload.suites;
         Test_core_model.suites;
         Test_core_optimizer.suites;
         Test_sqlfront.suites
         @ [ Test_sqlfront.group_by_suite; Test_sqlfront.with_form_suite;
             Test_sqlfront.dml_suite; Test_sqlfront.update_suite;
             Test_sqlfront.rank_window_suite ];
         Test_unclustered.suites;
         Test_aggregate.suites;
         Test_baselines.suites;
         Test_robustness.suites;
         Test_integration.suites;
         Test_plan_verify.suites;
         Test_lint.suites;
         Test_mutation.suites;
         Test_nary.suites @ [ Test_nary.optimizer_suite ];
         Test_ranked_view.suites;
         Test_slab_estimation.suites;
         Test_persist.suites;
         Test_coverage.suites;
         Test_consistency.suites;
         Test_rankcheck.suites;
         Test_concurrency.suites;
         Test_parallel.suites;
         Test_server.suites;
         Test_shard.suites;
         Test_sanitize.suites;
       ])
