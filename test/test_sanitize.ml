(* Lockcheck sanitizer: mutation tests proving each LK rule fires exactly
   on a hand-corrupted held-set / edge-set (the rules are pure functions,
   so no real deadlock needs constructing), engine integration tests over
   the reserved test.outer/test.inner latches, and the concurrency
   regressions the analyzer exists to guard: graceful SHUTDOWN draining,
   exception-path latch release, and SHARD ADD racing a gather cursor. *)

module L = Rkutil.Latch
module R = Sanitize.Rules
module D = Lint.Diag

let rules_of diags = List.map (fun (d : D.t) -> d.D.rule) diags

(* Assert that exactly [expected] fired — one diagnostic, right rule. *)
let fires expected diags =
  Alcotest.(check (list string))
    (Printf.sprintf "exactly %s fires" expected)
    [ expected ] (rules_of diags)

let clean what diags =
  match diags with
  | [] -> ()
  | d :: _ -> Alcotest.failf "%s should be clean, got: %s" what (D.to_string d)

(* ------------------------------------------------------------------ *)
(* Rule mutation tests                                                 *)
(* ------------------------------------------------------------------ *)

let test_lk01_cycle () =
  fires "LK01-cycle" (R.cycle_rule ~edges:[ ("A", "B"); ("B", "A") ]);
  clean "acyclic graph"
    (R.cycle_rule ~edges:[ ("A", "B"); ("B", "C"); ("A", "C") ])

let test_lk01_canonical_dedup () =
  (* The same 3-cycle reachable from every node must report once. *)
  fires "LK01-cycle"
    (R.cycle_rule ~edges:[ ("B", "C"); ("C", "A"); ("A", "B") ])

let test_lk02_rank_inversion () =
  let held = [ R.holder ~name:"storage.bufpool.shard" ~inst:1 ~rank:70 () ] in
  fires "LK02-order"
    (R.check_acquire ~where:"t" ~held ~name:"server.plan_cache" ~inst:2
       ~rank:40 ~mode:L.Exclusive);
  (* Equal rank, distinct instance (two shards of one site) is also an
     inversion: no thread may nest two same-rank latches. *)
  fires "LK02-order"
    (R.check_acquire ~where:"t" ~held ~name:"storage.bufpool.shard" ~inst:2
       ~rank:70 ~mode:L.Exclusive);
  clean "descending-rank nesting"
    (R.check_acquire ~where:"t"
       ~held:[ R.holder ~name:"server.plan_cache" ~inst:2 ~rank:40 () ]
       ~name:"storage.bufpool.shard" ~inst:1 ~rank:70 ~mode:L.Exclusive)

let test_lk02_reentrant () =
  let held = [ R.holder ~name:"server.metrics" ~inst:7 ~rank:50 () ] in
  fires "LK02-order"
    (R.check_acquire ~where:"t" ~held ~name:"server.metrics" ~inst:7 ~rank:50
       ~mode:L.Exclusive)

let test_lk02_table () =
  let declared = Sanitize.Model.table in
  clean "declared site"
    (R.table_rule ~declared
       ~observed:[ ("storage.bufpool.shard", 70, L.Short) ]);
  fires "LK02-order"
    (R.table_rule ~declared ~observed:[ ("rogue.lock", 1, L.Short) ]);
  fires "LK02-order"
    (R.table_rule ~declared ~observed:[ ("server.plan_cache", 41, L.Short) ]);
  fires "LK02-order"
    (R.table_rule ~declared ~observed:[ ("server.plan_cache", 40, L.Long) ])

let test_lk03_blocking () =
  let latch = R.holder ~name:"storage.bufpool.shard" ~inst:3 ~rank:70 () in
  fires "LK03-blocking"
    (R.check_blocking ~where:"t" ~held:[ latch ] ~self:None ~what:"socket");
  clean "self-exempt page fault"
    (R.check_blocking ~where:"t" ~held:[ latch ] ~self:(Some 3)
       ~what:"page_fault");
  clean "Long-class lock may block"
    (R.check_blocking ~where:"t"
       ~held:[ R.holder ~cls:L.Long ~name:"shard.coordinator" ~inst:4 ~rank:10 () ]
       ~self:None ~what:"shard rpc")

let test_lk04_guard () =
  let guard = R.holder ~name:"server.plan_cache" ~inst:5 ~rank:40 () in
  clean "guard held"
    (R.check_guard ~where:"t" ~held:[ guard ] ~guards:[ 5 ]
       ~what:"plan_cache.table");
  fires "LK04-guard"
    (R.check_guard ~where:"t" ~held:[ guard ] ~guards:[ 9 ]
       ~what:"plan_cache.table");
  fires "LK04-guard"
    (R.check_guard ~where:"t" ~held:[] ~guards:[ 5 ] ~what:"plan_cache.table");
  (* A structure registered with no guards is a registration bug. *)
  fires "LK04-guard"
    (R.check_guard ~where:"t" ~held:[ guard ] ~guards:[] ~what:"orphan")

let test_lk05_upgrade () =
  let held =
    [ R.holder ~mode:L.Shared ~name:"server.catalog.rwlock" ~inst:3 ~rank:20 () ]
  in
  (* Upgrade must report LK05, not the generic re-entrancy LK02. *)
  fires "LK05-upgrade"
    (R.check_acquire ~where:"t" ~held ~name:"server.catalog.rwlock" ~inst:3
       ~rank:20 ~mode:L.Exclusive)

let test_lk06_leak () =
  let held =
    [
      R.holder ~name:"server.session" ~inst:1 ~rank:30 ();
      R.holder ~name:"server.metrics" ~inst:2 ~rank:50 ();
    ]
  in
  let diags = R.check_quiesce ~where:"t" ~held ~label:"job end" in
  Alcotest.(check (list string))
    "one LK06 per leaked latch"
    [ "LK06-leak"; "LK06-leak" ] (rules_of diags);
  clean "empty held-set" (R.check_quiesce ~where:"t" ~held:[] ~label:"job end")

let test_lk07_release () =
  let h = R.holder ~name:"server.metrics" ~inst:1 ~rank:50 () in
  let remaining, diags, popped =
    R.check_release ~where:"t" ~held:[ h ] ~name:"server.metrics" ~inst:1
      ~mode:L.Exclusive
  in
  clean "paired release" diags;
  Alcotest.(check int) "holder popped" 0 (List.length remaining);
  Alcotest.(check bool) "popped for hold accounting" true (popped <> None);
  (* Double release: the second one finds nothing to pop. *)
  let remaining, diags, popped =
    R.check_release ~where:"t" ~held:remaining ~name:"server.metrics" ~inst:1
      ~mode:L.Exclusive
  in
  fires "LK07-release" diags;
  Alcotest.(check bool) "nothing popped" true (popped = None && remaining = []);
  (* Non-LIFO release (rwlock readers) is legal. *)
  let older = R.holder ~name:"server.plan_cache" ~inst:2 ~rank:40 () in
  let remaining, diags, _ =
    R.check_release ~where:"t" ~held:[ h; older ] ~name:"server.plan_cache"
      ~inst:2 ~mode:L.Exclusive
  in
  clean "non-LIFO release" diags;
  Alcotest.(check int) "newer holder survives" 1 (List.length remaining)

let test_lk08_holdtime () =
  let diags = R.hold_rule ~holds:[ ("server.metrics", L.Short, 2.0) ] in
  fires "LK08-holdtime" diags;
  (match diags with
  | [ d ] ->
      Alcotest.(check bool) "warning severity" true (d.D.severity = D.Warning)
  | _ -> Alcotest.fail "expected one diagnostic");
  clean "short hold under limit"
    (R.hold_rule ~holds:[ ("server.metrics", L.Short, 0.5) ]);
  clean "Long-class lock held for seconds"
    (R.hold_rule ~holds:[ ("shard.coordinator", L.Long, 2.0) ])

(* ------------------------------------------------------------------ *)
(* Engine integration over the reserved test latches                   *)
(* ------------------------------------------------------------------ *)

let outer () = L.create ~name:"test.outer" ~rank:100 ()
let inner () = L.create ~name:"test.inner" ~rank:110 ()

let test_engine_clean_nesting () =
  let (), su, diags =
    Sanitize.Engine.checked (fun () ->
        let o = outer () and i = inner () in
        L.protect o (fun () -> L.protect i (fun () -> ()));
        L.quiesce "test")
  in
  clean "well-ordered nesting" diags;
  Alcotest.(check bool) "events recorded" true (su.Sanitize.Trace.su_events > 0);
  Alcotest.(check bool)
    "lock-order edge observed" true
    (List.mem ("test.outer", "test.inner") su.Sanitize.Trace.su_edges);
  Alcotest.(check bool) "hooks removed after checked" false
    (Sanitize.Engine.enabled ())

let test_engine_rank_inversion () =
  let (), _, diags =
    Sanitize.Engine.checked (fun () ->
        let o = outer () and i = inner () in
        L.protect i (fun () -> L.protect o (fun () -> ())))
  in
  fires "LK02-order" diags

let test_engine_cycle () =
  let (), _, diags =
    Sanitize.Engine.checked (fun () ->
        let o = outer () and i = inner () in
        L.protect o (fun () -> L.protect i (fun () -> ()));
        L.protect i (fun () -> L.protect o (fun () -> ())))
  in
  (* The inverted pass trips LK02 online and closes an LK01 cycle. *)
  Alcotest.(check bool) "cycle reported" true
    (List.mem "LK01-cycle" (rules_of diags));
  Alcotest.(check bool) "inversion reported" true
    (List.mem "LK02-order" (rules_of diags))

let test_engine_blocking () =
  let (), _, diags =
    Sanitize.Engine.checked (fun () ->
        let o = outer () in
        L.protect o (fun () -> L.blocking "test.io"))
  in
  fires "LK03-blocking" diags;
  let (), _, diags =
    Sanitize.Engine.checked (fun () ->
        let o = outer () in
        L.protect o (fun () -> L.blocking ~self:o "test.io"))
  in
  clean "self-exempt blocking" diags

let test_engine_guard () =
  let (), _, diags =
    Sanitize.Engine.checked (fun () ->
        let o = outer () in
        L.protect o (fun () -> L.guarded o "test.guarded"))
  in
  clean "guarded access under its latch" diags;
  let (), _, diags =
    Sanitize.Engine.checked (fun () ->
        let o = outer () in
        L.guarded o "test.guarded")
  in
  fires "LK04-guard" diags;
  let (), _, diags =
    Sanitize.Engine.checked (fun () -> L.guarded (outer ()) "test.unregistered")
  in
  fires "LK04-guard" diags

let test_engine_leak () =
  let (), _, diags =
    Sanitize.Engine.checked (fun () ->
        let o = outer () in
        L.lock o;
        L.quiesce "test.job";
        L.unlock o)
  in
  fires "LK06-leak" diags

(* The LK06 fix in miniature: an exception unwinding through
   [Latch.protect] must release the latch, so the next quiesce point is
   clean. A bare lock/raise/unlock would leak. *)
let test_engine_protect_unwinds () =
  let (), _, diags =
    Sanitize.Engine.checked (fun () ->
        let o = outer () in
        (try L.protect o (fun () -> raise Exit) with Exit -> ());
        L.quiesce "test.job")
  in
  clean "exception unwind through protect" diags

let test_engine_off_by_default () =
  Alcotest.(check bool) "hooks absent" false (Sanitize.Engine.enabled ());
  (* Uninstrumented operation: plain mutex semantics, nothing recorded. *)
  let o = outer () in
  L.protect o (fun () -> ());
  L.blocking "no-op";
  L.quiesce "no-op";
  Alcotest.(check bool) "still absent" false (Sanitize.Engine.enabled ())

(* ------------------------------------------------------------------ *)
(* Graceful shutdown: in-flight statements drain, new ones are refused *)
(* ------------------------------------------------------------------ *)

let mk_catalog ?(n = 200) ?(domain = 20) ?(seed = 41) tables =
  let cat = Storage.Catalog.create ~pool_frames:64 () in
  List.iteri
    (fun i name ->
      ignore
        (Workload.Generator.load_scored_table cat
           (Rkutil.Prng.create (seed + (31 * i)))
           ~name ~n ~key_domain:domain ()))
    tables;
  cat

let slow_join_sql =
  "SELECT A.id, B.id FROM A, B WHERE A.key = B.key ORDER BY A.score + \
   B.score DESC LIMIT 400"

let test_service_drain () =
  let cat = mk_catalog ~n:800 ~domain:10 [ "A"; "B" ] in
  let config = { Server.Service.default_config with workers = 2; dop = 2 } in
  let svc = Server.Service.create ~config cat in
  Fun.protect ~finally:(fun () -> Server.Service.shutdown svc) @@ fun () ->
  let s1 = Server.Service.open_session svc in
  let s2 = Server.Service.open_session svc in
  let result = ref None in
  let th =
    Thread.create (fun () -> result := Some (Server.Service.query s1 slow_join_sql)) ()
  in
  Unix.sleepf 0.005;
  Server.Service.begin_drain svc;
  (* Once draining, new statements bounce with SHUTDOWN... *)
  (match Server.Service.query s2 "SELECT A.id FROM A ORDER BY A.score DESC LIMIT 1" with
  | Error Server.Service.Shutting_down -> ()
  | Ok _ -> Alcotest.fail "statement admitted after begin_drain"
  | Error e -> Alcotest.failf "unexpected: %s" (Server.Service.error_message e));
  (* ...but the admitted one keeps its worker and completes. *)
  Alcotest.(check bool) "drained" true (Server.Service.drain ~timeout_s:10.0 svc);
  Thread.join th;
  (match !result with
  | Some (Ok r) ->
      Alcotest.(check int) "in-flight statement answered in full" 400
        (List.length r.Server.Service.rows)
  | Some (Error e) -> Alcotest.failf "in-flight statement lost: %s"
                        (Server.Service.error_message e)
  | None -> Alcotest.fail "worker thread produced nothing");
  Alcotest.(check int) "nothing in flight" 0 (Server.Service.inflight svc);
  Server.Service.close_session s1;
  Server.Service.close_session s2

let test_socket_shutdown_drains () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rankopt-drain-%d.sock" (Unix.getpid ()))
  in
  let cat = mk_catalog ~n:800 ~domain:10 [ "A"; "B" ] in
  let ep = Server.Listener.Unix_socket path in
  let config = { Server.Service.default_config with workers = 2; dop = 2 } in
  let srv = Server.Listener.start ~config ep cat in
  let reply = ref None in
  let th =
    Thread.create
      (fun () ->
        let c = Server.Client.connect ep in
        reply := Some (Server.Client.request c ("QUERY " ^ slow_join_sql));
        Server.Client.close c)
      ()
  in
  Unix.sleepf 0.005;
  let c2 = Server.Client.connect ep in
  (match Server.Client.request c2 "SHUTDOWN" with
  | Ok r -> Alcotest.(check bool) "SHUTDOWN acknowledged" true r.Server.Protocol.ok
  | Error e -> Alcotest.failf "shutdown request: %s" e);
  Server.Client.close c2;
  Thread.join th;
  (* The statement racing the SHUTDOWN still received its reply. *)
  (match !reply with
  | Some (Ok r) ->
      Alcotest.(check bool) "in-flight statement answered" true
        r.Server.Protocol.ok
  | Some (Error e) -> Alcotest.failf "in-flight reply lost: %s" e
  | None -> Alcotest.fail "client thread produced nothing");
  Server.Listener.wait srv;
  (* Fully stopped: the socket no longer accepts. *)
  (match Server.Client.connect ep with
  | _ -> Alcotest.fail "listener still accepting after SHUTDOWN"
  | exception _ -> ());
  try Sys.remove path with Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Exception-path release: an interrupted parallel statement must not   *)
(* leak any latch (this deadlocked the pool before the Fun.protect fix) *)
(* ------------------------------------------------------------------ *)

let test_interrupt_releases_latches () =
  let cat = mk_catalog ~n:1500 ~domain:8 [ "A"; "B" ] in
  let config = { Server.Service.default_config with workers = 2; dop = 4 } in
  let (), su, diags =
    Sanitize.Engine.checked (fun () ->
        let svc = Server.Service.create ~config cat in
        Fun.protect ~finally:(fun () -> Server.Service.shutdown svc)
        @@ fun () ->
        let s = Server.Service.open_session svc in
        (match Server.Service.query s ~timeout_s:0.002 slow_join_sql with
        | Error Server.Service.Timeout -> ()
        | Ok _ -> () (* beat the deadline; the unwind path just didn't fire *)
        | Error e ->
            Alcotest.failf "unexpected: %s" (Server.Service.error_message e));
        Server.Service.close_session s)
  in
  Alcotest.(check bool) "events recorded" true (su.Sanitize.Trace.su_events > 0);
  clean "interrupted parallel statement" diags

(* ------------------------------------------------------------------ *)
(* SHARD ADD racing a gather cursor: stale, never wrong                 *)
(* ------------------------------------------------------------------ *)

module C = Shard.Coordinator

let test_shard_add_races_fetch () =
  let cat = mk_catalog ~n:150 ~domain:12 [ "A"; "B" ] in
  let cl = Shard.Cluster.start ~n:2 cat in
  Fun.protect ~finally:(fun () -> Shard.Cluster.stop cl) @@ fun () ->
  let coord = Shard.Cluster.coordinator cl in
  let ses = C.open_session coord in
  Fun.protect ~finally:(fun () -> C.close_session ses) @@ fun () ->
  let reference =
    match
      Sqlfront.Sql.query (C.mirror coord)
        "SELECT A.id FROM A ORDER BY A.score DESC LIMIT 60"
    with
    | Ok a -> List.map (fun row -> row.(0)) a.Sqlfront.Sql.rows
    | Error e -> Alcotest.failf "reference: %s" e
  in
  (match C.prepare ses ~name:"top" "SELECT A.id FROM A ORDER BY A.score DESC LIMIT ?" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "prepare: %s" (Server.Service.error_message e));
  let got = ref [] in
  (match C.execute_prepared ses ~k:4 "top" with
  | Ok r -> got := r.C.rows
  | Error e -> Alcotest.failf "execute: %s" (Server.Service.error_message e));
  (* Fetch pages off the gather cursor while the main thread repartitions
     the cluster under it. Every page must be either correct continuation
     rows or ERR CURSOR_STALE — never rows from the old partitioning. *)
  let saw_stale = ref false in
  let fetcher () =
    let continue = ref true in
    let budget = ref 20 in
    while !continue && !budget > 0 do
      decr budget;
      match C.fetch ses ~name:"top" 2 with
      | Ok r ->
          if r.C.rows = [] then continue := false
          else got := !got @ r.C.rows
      | Error (Server.Service.Cursor_stale "top") ->
          saw_stale := true;
          continue := false
      | Error (Server.Service.Unknown_cursor _) -> continue := false
      | Error e ->
          Alcotest.failf "fetch: %s" (Server.Service.error_message e)
    done
  in
  let th = Thread.create fetcher () in
  (match C.shard_add coord "" with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "shard add: %s" msg);
  Thread.join th;
  Alcotest.(check int) "three shards" 3 (Shard.Cluster.n_shards cl);
  (* No stale row: everything handed out is a prefix of the true top-k. *)
  List.iteri
    (fun i row ->
      match List.nth_opt reference i with
      | Some want ->
          if Relalg.Value.compare want row.(0) <> 0 then
            Alcotest.failf "row %d diverged after repartition race" i
      | None -> Alcotest.failf "more rows than the reference top-60")
    !got;
  (* Deterministic epoch check: a cursor opened before an add is stale
     after it, and the plan cache re-optimizes for the new epoch. *)
  (match C.execute_prepared ses ~k:3 "top" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "re-execute: %s" (Server.Service.error_message e));
  (match C.shard_add coord "" with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "second shard add: %s" msg);
  (match C.fetch ses ~name:"top" 2 with
  | Error (Server.Service.Cursor_stale "top") -> ()
  | Ok _ -> Alcotest.fail "fetch across an epoch bump must be stale"
  | Error e -> Alcotest.failf "unexpected: %s" (Server.Service.error_message e));
  (match C.execute_prepared ses ~k:3 "top" with
  | Ok r ->
      List.iteri
        (fun i row ->
          match List.nth_opt reference i with
          | Some want ->
              if Relalg.Value.compare want row.(0) <> 0 then
                Alcotest.failf "post-add row %d diverged" i
          | None -> Alcotest.fail "post-add overflow")
        r.C.rows
  | Error e -> Alcotest.failf "post-add execute: %s" (Server.Service.error_message e))

let suites =
  [
    ( "lockcheck rules",
      [
        Alcotest.test_case "LK01 cycle" `Quick test_lk01_cycle;
        Alcotest.test_case "LK01 canonical dedup" `Quick
          test_lk01_canonical_dedup;
        Alcotest.test_case "LK02 rank inversion" `Quick test_lk02_rank_inversion;
        Alcotest.test_case "LK02 re-entrant" `Quick test_lk02_reentrant;
        Alcotest.test_case "LK02 table consistency" `Quick test_lk02_table;
        Alcotest.test_case "LK03 blocking under latch" `Quick test_lk03_blocking;
        Alcotest.test_case "LK04 guard bypass" `Quick test_lk04_guard;
        Alcotest.test_case "LK05 read-write upgrade" `Quick test_lk05_upgrade;
        Alcotest.test_case "LK06 leak at quiesce" `Quick test_lk06_leak;
        Alcotest.test_case "LK07 double release" `Quick test_lk07_release;
        Alcotest.test_case "LK08 hold-time outlier" `Quick test_lk08_holdtime;
      ] );
    ( "lockcheck engine",
      [
        Alcotest.test_case "clean nesting" `Quick test_engine_clean_nesting;
        Alcotest.test_case "rank inversion detected" `Quick
          test_engine_rank_inversion;
        Alcotest.test_case "cycle detected" `Quick test_engine_cycle;
        Alcotest.test_case "blocking detected" `Quick test_engine_blocking;
        Alcotest.test_case "guard audit" `Quick test_engine_guard;
        Alcotest.test_case "leak detected" `Quick test_engine_leak;
        Alcotest.test_case "protect releases on unwind" `Quick
          test_engine_protect_unwinds;
        Alcotest.test_case "zero-cost when not installed" `Quick
          test_engine_off_by_default;
      ] );
    ( "shutdown and races",
      [
        Alcotest.test_case "service drain completes in-flight" `Quick
          test_service_drain;
        Alcotest.test_case "socket SHUTDOWN drains" `Quick
          test_socket_shutdown_drains;
        Alcotest.test_case "interrupt releases latches" `Quick
          test_interrupt_releases_latches;
        Alcotest.test_case "SHARD ADD races gather fetch" `Quick
          test_shard_add_races_fetch;
      ] );
  ]
