(* Tests for the rkutil substrate: PRNG, heap, math helpers, stats. *)

let test_prng_determinism () =
  let a = Rkutil.Prng.create 7 and b = Rkutil.Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rkutil.Prng.bits64 a) (Rkutil.Prng.bits64 b)
  done

let test_prng_different_seeds () =
  let a = Rkutil.Prng.create 1 and b = Rkutil.Prng.create 2 in
  Alcotest.(check bool) "different streams" false
    (Rkutil.Prng.bits64 a = Rkutil.Prng.bits64 b)

let test_prng_int_range () =
  let g = Rkutil.Prng.create 3 in
  for _ = 1 to 1000 do
    let x = Rkutil.Prng.int g 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10)
  done

let test_prng_uniform_range () =
  let g = Rkutil.Prng.create 4 in
  for _ = 1 to 1000 do
    let x = Rkutil.Prng.uniform g in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_prng_uniform_mean () =
  let g = Rkutil.Prng.create 5 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rkutil.Prng.uniform g
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_prng_gaussian_moments () =
  let g = Rkutil.Prng.create 6 in
  let n = 50_000 in
  let stats = Rkutil.Running_stats.create () in
  for _ = 1 to n do
    Rkutil.Running_stats.add stats (Rkutil.Prng.gaussian g)
  done;
  Alcotest.(check bool) "mean near 0" true
    (Float.abs (Rkutil.Running_stats.mean stats) < 0.03);
  Alcotest.(check bool) "sd near 1" true
    (Float.abs (Rkutil.Running_stats.stddev stats -. 1.0) < 0.03)

let test_prng_shuffle_permutation () =
  let g = Rkutil.Prng.create 8 in
  let a = Array.init 50 Fun.id in
  Rkutil.Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_prng_split_independent () =
  let g = Rkutil.Prng.create 9 in
  let h = Rkutil.Prng.split g in
  let x = Rkutil.Prng.bits64 g and y = Rkutil.Prng.bits64 h in
  Alcotest.(check bool) "distinct values" true (x <> y)

let test_heap_basic () =
  let h = Rkutil.Heap.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Rkutil.Heap.is_empty h);
  Rkutil.Heap.push h 3;
  Rkutil.Heap.push h 1;
  Rkutil.Heap.push h 2;
  Alcotest.(check (option int)) "peek min" (Some 1) (Rkutil.Heap.peek h);
  Alcotest.(check (list int)) "drain sorted" [ 1; 2; 3 ] (Rkutil.Heap.drain h);
  Alcotest.(check bool) "empty again" true (Rkutil.Heap.is_empty h)

let test_heap_pop_exn_empty () =
  let h = Rkutil.Heap.create ~cmp:compare in
  Alcotest.check_raises "pop_exn raises"
    (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Rkutil.Heap.pop_exn h : int))

let prop_heap_drain_sorted =
  QCheck.Test.make ~name:"heap: drain is sorted" ~count:300
    QCheck.(list int)
    (fun xs ->
      let h = Rkutil.Heap.of_list ~cmp:compare xs in
      let drained = Rkutil.Heap.drain h in
      drained = List.sort compare xs)

let prop_heap_length =
  QCheck.Test.make ~name:"heap: length tracks pushes/pops" ~count:300
    QCheck.(list small_int)
    (fun xs ->
      let h = Rkutil.Heap.create ~cmp:compare in
      List.iter (Rkutil.Heap.push h) xs;
      let n0 = Rkutil.Heap.length h in
      ignore (Rkutil.Heap.pop h);
      let n1 = Rkutil.Heap.length h in
      n0 = List.length xs && n1 = max 0 (n0 - 1))

let prop_heap_max_order =
  QCheck.Test.make ~name:"heap: inverted cmp gives descending drain" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Rkutil.Heap.of_list ~cmp:(fun a b -> compare b a) xs in
      Rkutil.Heap.drain h = List.rev (List.sort compare xs))

let test_log_factorial_small () =
  let fact n =
    let rec go acc i = if i > n then acc else go (acc *. float_of_int i) (i + 1) in
    go 1.0 1
  in
  for n = 0 to 20 do
    Test_util.check_floats_close ~eps:1e-12
      (Printf.sprintf "log %d!" n)
      (log (fact n))
      (Rkutil.Mathx.log_factorial n)
  done

let test_log_factorial_stirling_continuity () =
  (* The exact table ends at 256; verify continuity across the switch. *)
  let a = Rkutil.Mathx.log_factorial 256 in
  let b = Rkutil.Mathx.log_factorial 257 in
  Test_util.check_floats_close ~eps:1e-9 "ln 257! = ln 256! + ln 257"
    (a +. log 257.0) b

let test_bisect_root () =
  let f x = (x *. x) -. 2.0 in
  let r = Rkutil.Mathx.bisect ~f ~lo:0.0 ~hi:2.0 () in
  Test_util.check_floats_close ~eps:1e-9 "sqrt 2" (sqrt 2.0) r

let test_bisect_monotone_decreasing () =
  let f x = 10.0 -. x in
  let r = Rkutil.Mathx.bisect ~f ~lo:0.0 ~hi:100.0 () in
  Test_util.check_floats_close ~eps:1e-9 "root at 10" 10.0 r

let test_clamp () =
  Alcotest.(check (float 0.0)) "below" 1.0 (Rkutil.Mathx.clamp ~lo:1.0 ~hi:2.0 0.5);
  Alcotest.(check (float 0.0)) "above" 2.0 (Rkutil.Mathx.clamp ~lo:1.0 ~hi:2.0 9.0);
  Alcotest.(check (float 0.0)) "inside" 1.5 (Rkutil.Mathx.clamp ~lo:1.0 ~hi:2.0 1.5)

let test_ceil_to_int () =
  Alcotest.(check int) "2.1 -> 3" 3 (Rkutil.Mathx.ceil_to_int 2.1);
  Alcotest.(check int) "neg -> 0" 0 (Rkutil.Mathx.ceil_to_int (-5.0));
  Alcotest.(check int) "nan -> 0" 0 (Rkutil.Mathx.ceil_to_int Float.nan);
  Alcotest.(check int) "exact" 2 (Rkutil.Mathx.ceil_to_int 2.0);
  Alcotest.(check int) "inf saturates" max_int (Rkutil.Mathx.ceil_to_int infinity)

(* Popped/cleared elements must not be pinned by stale slots in the heap's
   backing array: attach finalisers to boxed elements, drop them all, and
   check the GC can reclaim them while the heap itself stays live. *)
let test_heap_pop_releases_elements () =
  let finalised = ref 0 in
  let heap = Rkutil.Heap.create ~cmp:(fun (a, _) (b, _) -> compare a b) in
  for i = 1 to 50 do
    let boxed = ref i in
    Gc.finalise (fun _ -> incr finalised) boxed;
    Rkutil.Heap.push heap (i, boxed)
  done;
  let rec drain () = match Rkutil.Heap.pop heap with Some _ -> drain () | None -> () in
  drain ();
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check int) "heap empty but alive" 0 (Rkutil.Heap.length heap);
  Alcotest.(check int) "all popped elements collected" 50 !finalised

let test_heap_clear_releases_elements () =
  let finalised = ref 0 in
  let heap = Rkutil.Heap.create ~cmp:(fun (a, _) (b, _) -> compare a b) in
  for i = 1 to 50 do
    let boxed = ref i in
    Gc.finalise (fun _ -> incr finalised) boxed;
    Rkutil.Heap.push heap (i, boxed)
  done;
  Rkutil.Heap.clear heap;
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check int) "cleared heap alive" 0 (Rkutil.Heap.length heap);
  Alcotest.(check int) "all cleared elements collected" 50 !finalised;
  (* The heap must stay fully usable after clear. *)
  List.iter (fun x -> Rkutil.Heap.push heap (x, ref x)) [ 3; 1; 2 ];
  Alcotest.(check int) "reusable after clear" 3 (Rkutil.Heap.length heap);
  match Rkutil.Heap.pop heap with
  | Some (x, _) -> Alcotest.(check int) "min first" 1 x
  | None -> Alcotest.fail "pop after refill"

let test_running_stats_against_direct () =
  let xs = [ 1.0; 4.0; 9.0; 16.0; 25.0 ] in
  let s = Rkutil.Running_stats.create () in
  List.iter (Rkutil.Running_stats.add s) xs;
  let n = float_of_int (List.length xs) in
  let mean = List.fold_left ( +. ) 0.0 xs /. n in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. (n -. 1.0)
  in
  Test_util.check_floats_close "mean" mean (Rkutil.Running_stats.mean s);
  Test_util.check_floats_close "variance" var (Rkutil.Running_stats.variance s);
  Alcotest.(check (float 0.0)) "min" 1.0 (Rkutil.Running_stats.min s);
  Alcotest.(check (float 0.0)) "max" 25.0 (Rkutil.Running_stats.max s);
  Alcotest.(check int) "count" 5 (Rkutil.Running_stats.count s)

let prop_running_stats_merge =
  QCheck.Test.make ~name:"running_stats: merge = concat" ~count:200
    QCheck.(pair (list (float_bound_exclusive 100.0)) (list (float_bound_exclusive 100.0)))
    (fun (xs, ys) ->
      let sa = Rkutil.Running_stats.create () in
      List.iter (Rkutil.Running_stats.add sa) xs;
      let sb = Rkutil.Running_stats.create () in
      List.iter (Rkutil.Running_stats.add sb) ys;
      let merged = Rkutil.Running_stats.merge sa sb in
      let direct = Rkutil.Running_stats.create () in
      List.iter (Rkutil.Running_stats.add direct) (xs @ ys);
      Test_util.floats_close ~eps:1e-6
        (Rkutil.Running_stats.mean merged)
        (Rkutil.Running_stats.mean direct)
      && Test_util.floats_close ~eps:1e-6
           (Rkutil.Running_stats.variance merged)
           (Rkutil.Running_stats.variance direct))

let suites =
  [
    ( "rkutil.prng",
      [
        Alcotest.test_case "determinism" `Quick test_prng_determinism;
        Alcotest.test_case "different seeds" `Quick test_prng_different_seeds;
        Alcotest.test_case "int range" `Quick test_prng_int_range;
        Alcotest.test_case "uniform range" `Quick test_prng_uniform_range;
        Alcotest.test_case "uniform mean" `Quick test_prng_uniform_mean;
        Alcotest.test_case "gaussian moments" `Quick test_prng_gaussian_moments;
        Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
        Alcotest.test_case "split independent" `Quick test_prng_split_independent;
      ] );
    ( "rkutil.heap",
      [
        Alcotest.test_case "basic" `Quick test_heap_basic;
        Alcotest.test_case "pop_exn empty" `Quick test_heap_pop_exn_empty;
        Alcotest.test_case "pop releases slots" `Quick test_heap_pop_releases_elements;
        Alcotest.test_case "clear releases slots" `Quick test_heap_clear_releases_elements;
        QCheck_alcotest.to_alcotest prop_heap_drain_sorted;
        QCheck_alcotest.to_alcotest prop_heap_length;
        QCheck_alcotest.to_alcotest prop_heap_max_order;
      ] );
    ( "rkutil.mathx",
      [
        Alcotest.test_case "log_factorial small" `Quick test_log_factorial_small;
        Alcotest.test_case "log_factorial continuity" `Quick
          test_log_factorial_stirling_continuity;
        Alcotest.test_case "bisect sqrt2" `Quick test_bisect_root;
        Alcotest.test_case "bisect decreasing" `Quick test_bisect_monotone_decreasing;
        Alcotest.test_case "clamp" `Quick test_clamp;
        Alcotest.test_case "ceil_to_int" `Quick test_ceil_to_int;
      ] );
    ( "rkutil.running_stats",
      [
        Alcotest.test_case "against direct" `Quick test_running_stats_against_direct;
        QCheck_alcotest.to_alcotest prop_running_stats_merge;
      ] );
  ]
