(* Self-consistency properties across the optimizer stack: the chosen plan
   really is the cheapest retained candidate, annotations mirror plan trees,
   and estimates behave monotonically. *)

open Relalg
open Core

let star_env ?(n = 300) ?(domain = 20) ?(k = 10) ~seed () =
  let cat = Storage.Catalog.create () in
  List.iteri
    (fun i name ->
      ignore
        (Workload.Generator.load_scored_table cat
           (Rkutil.Prng.create (seed + i))
           ~name ~n ~key_domain:domain ()))
    [ "A"; "B"; "C" ];
  let q =
    Logical.make
      ~relations:
        (List.map (fun t -> Logical.base ~score:(Expr.col ~relation:t "score") t)
           [ "A"; "B"; "C" ])
      ~joins:
        [ Logical.equijoin ("A", "key") ("B", "key");
          Logical.equijoin ("B", "key") ("C", "key") ]
      ~k ()
  in
  (cat, q, Cost_model.default_env ~k_min:k cat q)

let prop_best_is_cheapest_retained =
  QCheck.Test.make
    ~name:"optimizer: chosen plan is the cheapest order-satisfying candidate"
    ~count:10
    QCheck.(pair (int_range 0 999) (int_range 5 30))
    (fun (seed, domain) ->
      let _, q, env = star_env ~domain ~seed () in
      let result = Enumerator.run env in
      match result.Enumerator.best, Logical.scoring_expr q with
      | Some best, Some score ->
          let want = { Plan.expr = score; direction = Interesting_orders.Desc } in
          let full = Enumerator.relation_mask env [ "A"; "B"; "C" ] in
          let candidates =
            List.filter
              (fun sp -> Plan.order_satisfies ~have:sp.Memo.order ~want:(Some want))
              (Memo.plans result.Enumerator.memo full)
          in
          candidates <> []
          && List.for_all
               (fun sp ->
                 Memo.decision_cost env best
                 <= Memo.decision_cost env sp +. 1e-6)
               candidates
      | _ -> false)

let plan_children = function
  | Plan.Table_scan _ | Plan.Index_scan _ | Plan.Rank_index_scan _
  | Plan.Remote_scan _ ->
      []
  | Plan.Gather_merge { inputs; _ } -> inputs
  | Plan.Filter { input; _ }
  | Plan.Sort { input; _ }
  | Plan.Top_k { input; _ }
  | Plan.Exchange { input; _ } ->
      [ input ]
  | Plan.Join { left; right; _ } -> [ left; right ]
  | Plan.Nary_rank_join { inputs; _ } | Plan.Any_k { inputs; _ } -> inputs

let rec annotation_mirrors (ann : Propagate.annotation) plan =
  let children = plan_children plan in
  List.length ann.Propagate.children = List.length children
  && List.for_all2 annotation_mirrors ann.Propagate.children children
  && ann.Propagate.node == plan

let prop_propagate_mirrors_plan =
  QCheck.Test.make ~name:"propagate: annotation mirrors the plan tree"
    ~count:10
    QCheck.(pair (int_range 0 999) (int_range 3 15))
    (fun (seed, k) ->
      let cat, _, env = star_env ~k ~seed () in
      ignore cat;
      let result = Enumerator.run env in
      match result.Enumerator.best with
      | Some sp ->
          let ann = Propagate.run env ~k sp.Memo.plan in
          annotation_mirrors ann sp.Memo.plan
      | None -> false)

let prop_cost_at_monotone =
  QCheck.Test.make ~name:"cost model: cost_at is monotone in x for any plan"
    ~count:10
    QCheck.(int_range 0 999)
    (fun seed ->
      let _, _, env = star_env ~seed () in
      let result = Enumerator.run env in
      let full = Enumerator.relation_mask env [ "A"; "B"; "C" ] in
      List.for_all
        (fun sp ->
          let est = sp.Memo.est in
          let xs = [ 1.0; 5.0; 25.0; 125.0; 625.0 ] in
          let costs = List.map est.Cost_model.cost_at xs in
          let rec non_decreasing = function
            | a :: (b :: _ as rest) -> a <= b +. 1e-6 && non_decreasing rest
            | _ -> true
          in
          non_decreasing costs
          && List.for_all (fun c -> c <= est.Cost_model.total_cost +. 1e-6) costs)
        (Memo.plans result.Enumerator.memo full))

let test_explain_is_complete () =
  let cat, q, _ = star_env ~seed:42 () in
  let planned = Optimizer.optimize cat q in
  let text = Optimizer.explain planned in
  let contains needle =
    let nl = String.length needle and hl = String.length text in
    let rec go i = i + nl <= hl && (String.equal (String.sub text i nl) needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has query" true (contains "SELECT");
  Alcotest.(check bool) "has cost" true (contains "Estimated cost");
  Alcotest.(check bool) "has plan counts" true (contains "retained");
  if Plan.has_rank_join planned.Optimizer.plan then
    Alcotest.(check bool) "has depth propagation" true (contains "Depth propagation")

let suites =
  [
    ( "core.consistency",
      [
        QCheck_alcotest.to_alcotest prop_best_is_cheapest_retained;
        QCheck_alcotest.to_alcotest prop_propagate_mirrors_plan;
        QCheck_alcotest.to_alcotest prop_cost_at_monotone;
        Alcotest.test_case "explain completeness" `Quick test_explain_is_complete;
      ] );
  ]
