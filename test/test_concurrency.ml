(* Domain-based hammer tests for the storage structures the query service
   shares across its worker pool: Io_stats counters must not lose updates,
   and the buffer pool must keep its accounting and frame bound under
   concurrent access. *)

open Storage

let domains = 4

let spawn_all n f =
  let ds = List.init n (fun i -> Domain.spawn (fun () -> f i)) in
  List.iter Domain.join ds

let test_io_stats_no_lost_updates () =
  let io = Io_stats.create () in
  let per_domain = 25_000 in
  spawn_all domains (fun _ ->
      for _ = 1 to per_domain do
        Io_stats.add_page_read io;
        Io_stats.add_pool_hit io;
        Io_stats.add_tuples_read io 3
      done);
  let snap = Io_stats.snapshot io in
  Alcotest.(check int)
    "page reads" (domains * per_domain) snap.Io_stats.page_reads;
  Alcotest.(check int)
    "pool hits" (domains * per_domain) snap.Io_stats.pool_hits;
  Alcotest.(check int)
    "tuples read"
    (domains * per_domain * 3)
    snap.Io_stats.tuples_read

let test_pool_concurrent_gets () =
  let io = Io_stats.create () in
  let frames = 8 and pages = 32 in
  let pool = Buffer_pool.create ~frames io in
  let ids =
    List.init pages (fun _ ->
        Page.id (Buffer_pool.alloc_page pool ~capacity:4))
  in
  Buffer_pool.flush pool;
  let before = Io_stats.snapshot io in
  let per_domain = 2_000 in
  spawn_all domains (fun d ->
      let prng = Rkutil.Prng.create (100 + d) in
      for _ = 1 to per_domain do
        let id = List.nth ids (Rkutil.Prng.int prng pages) in
        let page = Buffer_pool.get pool id in
        (* The frame table must hand back the page that was asked for even
           while other domains force evictions. *)
        if Page.id page <> id then
          Alcotest.failf "got page %d, wanted %d" (Page.id page) id
      done);
  let d = Io_stats.diff (Io_stats.snapshot io) before in
  Alcotest.(check bool)
    "resident within frame bound" true
    (Buffer_pool.resident pool <= frames);
  (* Every access is either a hit or a (miss) read — nothing lost, nothing
     double-counted. *)
  Alcotest.(check int)
    "hits + reads = accesses"
    (domains * per_domain)
    (d.Io_stats.pool_hits + d.Io_stats.page_reads);
  (* All pages were clean after the flush and only read: a double eviction
     (or eviction of a frame mid-insert) would surface as a spurious
     write-back. *)
  Alcotest.(check int) "no writes of clean pages" 0 d.Io_stats.page_writes

let test_pool_concurrent_dirty () =
  let io = Io_stats.create () in
  let frames = 4 and pages = 16 in
  let pool = Buffer_pool.create ~frames io in
  let ids =
    List.init pages (fun _ ->
        Page.id (Buffer_pool.alloc_page pool ~capacity:4))
  in
  Buffer_pool.flush pool;
  let per_domain = 1_000 in
  spawn_all domains (fun d ->
      let prng = Rkutil.Prng.create (200 + d) in
      for _ = 1 to per_domain do
        let id = List.nth ids (Rkutil.Prng.int prng pages) in
        ignore (Buffer_pool.get pool id);
        if Rkutil.Prng.int prng 4 = 0 then Buffer_pool.mark_dirty pool id
      done);
  Buffer_pool.flush pool;
  Alcotest.(check bool)
    "resident within frame bound" true
    (Buffer_pool.resident pool <= frames);
  (* Survival (no torn frame table, no deadlock) plus the bound is the
     contract; per-access accounting is covered by the read-only test. *)
  Alcotest.(check pass) "no crash under concurrent dirtying" () ()

let test_catalog_stats_epoch () =
  let cat = Catalog.create () in
  let e0 = Catalog.stats_epoch cat in
  let schema =
    Relalg.Schema.of_columns
      [
        Relalg.Schema.column "id" Relalg.Value.Tint;
        Relalg.Schema.column "score" Relalg.Value.Tfloat;
      ]
  in
  let rows =
    List.init 20 (fun i ->
        Relalg.Tuple.make
          [ Relalg.Value.Int i; Relalg.Value.Float (float_of_int i /. 20.) ])
  in
  ignore (Catalog.create_table cat "T" schema rows);
  let e1 = Catalog.stats_epoch cat in
  Alcotest.(check bool) "create_table bumps epoch" true (e1 > e0);
  ignore (Catalog.analyze cat "T");
  let e2 = Catalog.stats_epoch cat in
  Alcotest.(check bool) "analyze bumps epoch" true (e2 > e1)

(* ------------------------------------------------------------------ *)
(* Wire-protocol framing under adversarial and concurrent clients      *)
(* ------------------------------------------------------------------ *)

let with_listener f =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rankopt-frame-%d.sock" (Unix.getpid ()))
  in
  let cat = Catalog.create () in
  ignore
    (Workload.Generator.load_scored_table cat
       (Rkutil.Prng.create 7)
       ~name:"A" ~n:120 ~key_domain:10 ());
  let srv = Server.Listener.start (Server.Listener.Unix_socket path) cat in
  Fun.protect
    ~finally:(fun () ->
      Server.Listener.stop srv;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f (Server.Listener.Unix_socket path))

(* An overlong command must be answered with ERR PROTOCOL and consumed;
   the connection stays framed and usable afterwards. *)
let test_oversized_line () =
  with_listener @@ fun ep ->
  let c = Server.Client.connect ep in
  let big =
    "QUERY " ^ String.make (Server.Listener.max_line_bytes + 100) 'x'
  in
  (match Server.Client.request c big with
  | Ok r ->
      Alcotest.(check bool) "rejected" false r.Server.Protocol.ok;
      Alcotest.(check string) "protocol error" "PROTOCOL"
        r.Server.Protocol.code
  | Error e -> Alcotest.fail e);
  (match Server.Client.request c "PING" with
  | Ok r -> Alcotest.(check bool) "connection survives" true r.Server.Protocol.ok
  | Error e -> Alcotest.fail e);
  Server.Client.close c

(* A command split into single-byte writes must still parse as one line,
   and two commands sent in one write must yield two framed responses. *)
let test_partial_and_batched_writes () =
  with_listener @@ fun ep ->
  let path = match ep with Server.Listener.Unix_socket p -> p | _ -> assert false in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let ic = Unix.in_channel_of_descr fd in
  let line = "PING\n" in
  String.iter
    (fun ch ->
      ignore (Unix.write_substring fd (String.make 1 ch) 0 1);
      Thread.yield ())
    line;
  let header = input_line ic in
  Alcotest.(check bool) "byte-at-a-time command answered" true
    (String.length header >= 2 && String.sub header 0 2 = "OK");
  let batch = "PING\nPING\n" in
  ignore (Unix.write_substring fd batch 0 (String.length batch));
  let h1 = input_line ic and h2 = input_line ic in
  List.iter
    (fun h ->
      Alcotest.(check bool) "pipelined command answered" true
        (String.length h >= 2 && String.sub h 0 2 = "OK"))
    [ h1; h2 ];
  (try Unix.close fd with Unix.Unix_error _ -> ())

(* Concurrent sessions hammering EXECUTE / FETCH / CLOSE interleavings:
   every reply must stay well-formed — OK, or an ERR whose code is one
   the cursor lifecycle can legally produce — and the server must still
   answer a fresh connection afterwards. *)
let test_fetch_close_hammer () =
  with_listener @@ fun ep ->
  let errors = Atomic.make 0 in
  let hammer tid =
    let c = Server.Client.connect ep in
    let req line =
      match Server.Client.request c line with
      | Error _ -> Atomic.incr errors
      | Ok r ->
          if
            (not r.Server.Protocol.ok)
            && not
                 (List.mem r.Server.Protocol.code
                    [ "UNKNOWN_CURSOR"; "UNKNOWN_PREPARED"; "CURSOR_STALE" ])
          then Atomic.incr errors
    in
    req
      (Printf.sprintf
         "PREPARE q%d SELECT id FROM A ORDER BY A.score DESC LIMIT ?" tid);
    let prng = Rkutil.Prng.create (100 + tid) in
    for _ = 1 to 40 do
      match Rkutil.Prng.int prng 4 with
      | 0 -> req (Printf.sprintf "EXECUTE q%d 3" tid)
      | 1 -> req (Printf.sprintf "FETCH q%d NEXT 2" tid)
      | 2 -> req (Printf.sprintf "CLOSE q%d" tid)
      | _ -> req "PING"
    done;
    Server.Client.close c
  in
  let threads = List.init 6 (fun i -> Thread.create hammer i) in
  List.iter Thread.join threads;
  Alcotest.(check int) "no malformed or unexpected replies" 0
    (Atomic.get errors);
  let c = Server.Client.connect ep in
  (match Server.Client.request c "PING" with
  | Ok r -> Alcotest.(check bool) "server alive" true r.Server.Protocol.ok
  | Error e -> Alcotest.fail e);
  Server.Client.close c

let suites =
  [
    ( "concurrency",
      [
        Alcotest.test_case "io_stats: no lost updates" `Quick
          test_io_stats_no_lost_updates;
        Alcotest.test_case "buffer pool: concurrent gets" `Quick
          test_pool_concurrent_gets;
        Alcotest.test_case "buffer pool: concurrent dirtying" `Quick
          test_pool_concurrent_dirty;
        Alcotest.test_case "catalog: stats epoch monotone" `Quick
          test_catalog_stats_epoch;
        Alcotest.test_case "protocol: oversized line is shed, not fatal"
          `Quick test_oversized_line;
        Alcotest.test_case "protocol: partial and pipelined writes" `Quick
          test_partial_and_batched_writes;
        Alcotest.test_case "protocol: FETCH/CLOSE interleaving hammer" `Slow
          test_fetch_close_hammer;
      ] );
  ]
