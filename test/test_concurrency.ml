(* Domain-based hammer tests for the storage structures the query service
   shares across its worker pool: Io_stats counters must not lose updates,
   and the buffer pool must keep its accounting and frame bound under
   concurrent access. *)

open Storage

let domains = 4

let spawn_all n f =
  let ds = List.init n (fun i -> Domain.spawn (fun () -> f i)) in
  List.iter Domain.join ds

let test_io_stats_no_lost_updates () =
  let io = Io_stats.create () in
  let per_domain = 25_000 in
  spawn_all domains (fun _ ->
      for _ = 1 to per_domain do
        Io_stats.add_page_read io;
        Io_stats.add_pool_hit io;
        Io_stats.add_tuples_read io 3
      done);
  let snap = Io_stats.snapshot io in
  Alcotest.(check int)
    "page reads" (domains * per_domain) snap.Io_stats.page_reads;
  Alcotest.(check int)
    "pool hits" (domains * per_domain) snap.Io_stats.pool_hits;
  Alcotest.(check int)
    "tuples read"
    (domains * per_domain * 3)
    snap.Io_stats.tuples_read

let test_pool_concurrent_gets () =
  let io = Io_stats.create () in
  let frames = 8 and pages = 32 in
  let pool = Buffer_pool.create ~frames io in
  let ids =
    List.init pages (fun _ ->
        Page.id (Buffer_pool.alloc_page pool ~capacity:4))
  in
  Buffer_pool.flush pool;
  let before = Io_stats.snapshot io in
  let per_domain = 2_000 in
  spawn_all domains (fun d ->
      let prng = Rkutil.Prng.create (100 + d) in
      for _ = 1 to per_domain do
        let id = List.nth ids (Rkutil.Prng.int prng pages) in
        let page = Buffer_pool.get pool id in
        (* The frame table must hand back the page that was asked for even
           while other domains force evictions. *)
        if Page.id page <> id then
          Alcotest.failf "got page %d, wanted %d" (Page.id page) id
      done);
  let d = Io_stats.diff (Io_stats.snapshot io) before in
  Alcotest.(check bool)
    "resident within frame bound" true
    (Buffer_pool.resident pool <= frames);
  (* Every access is either a hit or a (miss) read — nothing lost, nothing
     double-counted. *)
  Alcotest.(check int)
    "hits + reads = accesses"
    (domains * per_domain)
    (d.Io_stats.pool_hits + d.Io_stats.page_reads);
  (* All pages were clean after the flush and only read: a double eviction
     (or eviction of a frame mid-insert) would surface as a spurious
     write-back. *)
  Alcotest.(check int) "no writes of clean pages" 0 d.Io_stats.page_writes

let test_pool_concurrent_dirty () =
  let io = Io_stats.create () in
  let frames = 4 and pages = 16 in
  let pool = Buffer_pool.create ~frames io in
  let ids =
    List.init pages (fun _ ->
        Page.id (Buffer_pool.alloc_page pool ~capacity:4))
  in
  Buffer_pool.flush pool;
  let per_domain = 1_000 in
  spawn_all domains (fun d ->
      let prng = Rkutil.Prng.create (200 + d) in
      for _ = 1 to per_domain do
        let id = List.nth ids (Rkutil.Prng.int prng pages) in
        ignore (Buffer_pool.get pool id);
        if Rkutil.Prng.int prng 4 = 0 then Buffer_pool.mark_dirty pool id
      done);
  Buffer_pool.flush pool;
  Alcotest.(check bool)
    "resident within frame bound" true
    (Buffer_pool.resident pool <= frames);
  (* Survival (no torn frame table, no deadlock) plus the bound is the
     contract; per-access accounting is covered by the read-only test. *)
  Alcotest.(check pass) "no crash under concurrent dirtying" () ()

let test_catalog_stats_epoch () =
  let cat = Catalog.create () in
  let e0 = Catalog.stats_epoch cat in
  let schema =
    Relalg.Schema.of_columns
      [
        Relalg.Schema.column "id" Relalg.Value.Tint;
        Relalg.Schema.column "score" Relalg.Value.Tfloat;
      ]
  in
  let rows =
    List.init 20 (fun i ->
        Relalg.Tuple.make
          [ Relalg.Value.Int i; Relalg.Value.Float (float_of_int i /. 20.) ])
  in
  ignore (Catalog.create_table cat "T" schema rows);
  let e1 = Catalog.stats_epoch cat in
  Alcotest.(check bool) "create_table bumps epoch" true (e1 > e0);
  ignore (Catalog.analyze cat "T");
  let e2 = Catalog.stats_epoch cat in
  Alcotest.(check bool) "analyze bumps epoch" true (e2 > e1)

let suites =
  [
    ( "concurrency",
      [
        Alcotest.test_case "io_stats: no lost updates" `Quick
          test_io_stats_no_lost_updates;
        Alcotest.test_case "buffer pool: concurrent gets" `Quick
          test_pool_concurrent_gets;
        Alcotest.test_case "buffer pool: concurrent dirtying" `Quick
          test_pool_concurrent_dirty;
        Alcotest.test_case "catalog: stats epoch monotone" `Quick
          test_catalog_stats_epoch;
      ] );
  ]
