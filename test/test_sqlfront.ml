(* SQL front end tests: lexer, parser, binder and end-to-end Sql.query. *)

open Relalg

let test_lexer_tokens () =
  let tokens =
    Sqlfront.Lexer.tokenize "SELECT a.x, 0.3 FROM t WHERE x <= 5 AND y <> 'hi';"
  in
  let open Sqlfront.Lexer in
  Alcotest.(check int) "token count" 17 (List.length tokens);
  (match tokens with
  | Tkeyword "SELECT" :: Tident "a" :: Tsymbol "." :: Tident "x" :: Tsymbol ","
    :: Tnumber f :: Tkeyword "FROM" :: _ ->
      Alcotest.(check (float 1e-12)) "0.3" 0.3 f
  | _ -> Alcotest.fail "unexpected prefix");
  match List.rev tokens with
  | Teof :: Tstring "hi" :: _ -> ()
  | _ -> Alcotest.fail "unexpected suffix"

let test_lexer_operators () =
  let open Sqlfront.Lexer in
  match tokenize "<= >= <> != < > =" with
  | [ Tsymbol "<="; Tsymbol ">="; Tsymbol "<>"; Tsymbol "<>"; Tsymbol "<";
      Tsymbol ">"; Tsymbol "="; Teof ] -> ()
  | _ -> Alcotest.fail "operator lexing"

let test_lexer_errors () =
  Alcotest.check_raises "bad char" (Sqlfront.Lexer.Lex_error "unexpected character #")
    (fun () -> ignore (Sqlfront.Lexer.tokenize "SELECT #"));
  Alcotest.check_raises "unterminated"
    (Sqlfront.Lexer.Lex_error "unterminated string literal") (fun () ->
      ignore (Sqlfront.Lexer.tokenize "SELECT 'oops"))

let test_parse_simple () =
  let q = Sqlfront.Parser.parse "SELECT * FROM A" in
  Alcotest.(check int) "one item" 1 (List.length q.Sqlfront.Ast.select);
  Alcotest.(check (list string)) "from" [ "A" ] q.Sqlfront.Ast.from;
  Alcotest.(check int) "no where" 0 (List.length q.Sqlfront.Ast.where)

let test_parse_full_query () =
  let q =
    Sqlfront.Parser.parse
      "SELECT A.id AS aid, B.id FROM A, B WHERE A.key = B.key AND A.score >= 0.5 \
       ORDER BY 0.3 * A.score + 0.7 * B.score DESC LIMIT 5"
  in
  Alcotest.(check (list string)) "from" [ "A"; "B" ] q.Sqlfront.Ast.from;
  Alcotest.(check int) "two conjuncts" 2 (List.length q.Sqlfront.Ast.where);
  Alcotest.(check (option int)) "limit" (Some 5) q.Sqlfront.Ast.limit;
  match q.Sqlfront.Ast.order_by with
  | Some (_, Sqlfront.Ast.Desc) -> ()
  | _ -> Alcotest.fail "order by desc expected"

let test_parse_precedence () =
  let q = Sqlfront.Parser.parse "SELECT 1 + 2 * 3 FROM A" in
  match q.Sqlfront.Ast.select with
  | [ Sqlfront.Ast.Item { expr = Sqlfront.Ast.Binop (Sqlfront.Ast.Add, _, Sqlfront.Ast.Binop (Sqlfront.Ast.Mul, _, _)); _ } ] -> ()
  | _ -> Alcotest.fail "precedence"

let test_parse_parens_and_unary () =
  let q = Sqlfront.Parser.parse "SELECT -(A.x + 1) FROM A" in
  match q.Sqlfront.Ast.select with
  | [ Sqlfront.Ast.Item { expr = Sqlfront.Ast.Unary_minus _; _ } ] -> ()
  | _ -> Alcotest.fail "unary minus"

let test_parse_errors () =
  List.iter
    (fun sql ->
      match Sqlfront.Parser.parse_result sql with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse failure: %s" sql)
    [
      "FROM A";
      "SELECT FROM A";
      "SELECT * FROM";
      "SELECT * FROM A WHERE";
      "SELECT * FROM A LIMIT x";
      "SELECT * FROM A extra";
      "SELECT * FROM A ORDER x";
    ]

(* --- binder / end-to-end --- *)

let setup () =
  let cat = Storage.Catalog.create () in
  List.iteri
    (fun i name ->
      ignore
        (Workload.Generator.load_scored_table cat
           (Rkutil.Prng.create (i + 50))
           ~name ~n:150 ~key_domain:12 ()))
    [ "A"; "B" ];
  cat

let test_bind_splits_preds () =
  let cat = setup () in
  let ast =
    Sqlfront.Parser.parse
      "SELECT * FROM A, B WHERE A.key = B.key AND A.score >= 0.2"
  in
  let b = Sqlfront.Binder.bind cat ast in
  Alcotest.(check int) "one join" 1
    (List.length b.Sqlfront.Binder.logical.Core.Logical.joins);
  let a = Core.Logical.find_relation b.Sqlfront.Binder.logical "A" in
  Alcotest.(check bool) "A has filter" true (Option.is_some a.Core.Logical.filter);
  let bb = Core.Logical.find_relation b.Sqlfront.Binder.logical "B" in
  Alcotest.(check bool) "B has no filter" true (Option.is_none bb.Core.Logical.filter)

let test_bind_ranking_slices () =
  let cat = setup () in
  let ast =
    Sqlfront.Parser.parse
      "SELECT * FROM A, B WHERE A.key = B.key ORDER BY 0.3*A.score + 0.7*B.score DESC LIMIT 4"
  in
  let b = Sqlfront.Binder.bind cat ast in
  let q = b.Sqlfront.Binder.logical in
  Alcotest.(check (option int)) "k" (Some 4) q.Core.Logical.k;
  let a = Core.Logical.find_relation q "A" in
  (match a.Core.Logical.score with
  | Some s ->
      Alcotest.(check bool) "A slice = 0.3*A.score" true
        (Expr.equal s (Expr.Mul (Expr.cfloat 0.3, Expr.col ~relation:"A" "score")))
  | None -> Alcotest.fail "A unranked");
  match Core.Logical.scoring_expr q with
  | Some full ->
      Alcotest.(check bool) "full ranking reassembles" true
        (Expr.equal full
           (Expr.weighted_sum
              [ (0.3, Expr.col ~relation:"A" "score"); (0.7, Expr.col ~relation:"B" "score") ]))
  | None -> Alcotest.fail "no scoring expr"

let test_bind_errors () =
  let cat = setup () in
  List.iter
    (fun sql ->
      let ast = Sqlfront.Parser.parse sql in
      match Sqlfront.Binder.bind_result cat ast with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected bind failure: %s" sql)
    [
      "SELECT * FROM Zoo";
      "SELECT * FROM A, B WHERE A.key = B.key AND A.nope = 1";
      "SELECT key FROM A, B WHERE A.key = B.key" (* ambiguous column *);
      "SELECT * FROM A, B" (* disconnected join graph *);
      "SELECT * FROM A, B WHERE A.score < B.score" (* cross-relation non-equi *);
    ]

(* A column name owned by several FROM tables must raise a clear
   "ambiguous" error naming the candidate qualifications — in the select
   list, WHERE and ORDER BY alike — and qualifying the reference must make
   the same query bind and run. *)
let test_ambiguous_column_error_and_escape () =
  let cat = setup () in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun sql ->
      let ast = Sqlfront.Parser.parse sql in
      match Sqlfront.Binder.bind_result cat ast with
      | Ok _ -> Alcotest.failf "expected ambiguity error: %s" sql
      | Error msg ->
          Alcotest.(check bool)
            (Printf.sprintf "says ambiguous: %s" msg)
            true (contains msg "ambiguous");
          Alcotest.(check bool)
            (Printf.sprintf "names candidates: %s" msg)
            true
            (contains msg "A." && contains msg "B."))
    [
      "SELECT score FROM A, B WHERE A.key = B.key";
      "SELECT * FROM A, B WHERE A.key = B.key AND score > 0.5";
      "SELECT * FROM A, B WHERE A.key = B.key ORDER BY score DESC LIMIT 3";
    ];
  (* The qualified-name escape hatch binds and executes. *)
  match
    Sqlfront.Sql.query cat
      "SELECT A.score FROM A, B WHERE A.key = B.key ORDER BY A.score + B.score DESC LIMIT 3"
  with
  | Error e -> Alcotest.failf "qualified query failed: %s" e
  | Ok ans -> Alcotest.(check int) "3 rows" 3 (List.length ans.Sqlfront.Sql.rows)

let test_asc_order_by_post_sorts () =
  let cat = setup () in
  match
    Sqlfront.Sql.query cat
      "SELECT * FROM A, B WHERE A.key = B.key ORDER BY A.score + B.score ASC LIMIT 5"
  with
  | Error e -> Alcotest.failf "asc query failed: %s" e
  | Ok ans ->
      Alcotest.(check int) "5 rows" 5 (List.length ans.Sqlfront.Sql.rows);
      let rec non_decreasing = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && non_decreasing rest
        | _ -> true
      in
      Alcotest.(check bool) "ascending" true (non_decreasing ans.Sqlfront.Sql.scores)

let test_nonlinear_order_by_post_sorts () =
  let cat = setup () in
  match
    Sqlfront.Sql.query cat
      "SELECT * FROM A, B WHERE A.key = B.key ORDER BY A.score * B.score DESC LIMIT 4"
  with
  | Error e -> Alcotest.failf "non-linear query failed: %s" e
  | Ok ans ->
      Alcotest.(check int) "4 rows" 4 (List.length ans.Sqlfront.Sql.rows);
      Test_util.check_non_increasing "descending" ans.Sqlfront.Sql.scores;
      (* No rank-join should appear: the plan is a plain join. *)
      Alcotest.(check bool) "no rank join" false
        (Core.Plan.has_rank_join ans.Sqlfront.Sql.planned.Core.Optimizer.plan)

let test_bind_unranked_relation_allowed () =
  let cat = setup () in
  let ast =
    Sqlfront.Parser.parse
      "SELECT * FROM A, B WHERE A.key = B.key ORDER BY A.score DESC LIMIT 3"
  in
  match Sqlfront.Binder.bind_result cat ast with
  | Ok b ->
      let bb = Core.Logical.find_relation b.Sqlfront.Binder.logical "B" in
      Alcotest.(check bool) "B unranked" true (Option.is_none bb.Core.Logical.score)
  | Error e -> Alcotest.failf "unexpected bind error: %s" e

let test_sql_query_end_to_end () =
  let cat = setup () in
  match
    Sqlfront.Sql.query cat
      "SELECT A.id, B.id FROM A, B WHERE A.key = B.key \
       ORDER BY A.score + B.score DESC LIMIT 6"
  with
  | Error e -> Alcotest.failf "query failed: %s" e
  | Ok ans ->
      Alcotest.(check (list string)) "columns" [ "id"; "id" ] ans.Sqlfront.Sql.columns;
      Alcotest.(check int) "rows" 6 (List.length ans.Sqlfront.Sql.rows);
      Test_util.check_non_increasing "scores ordered" ans.Sqlfront.Sql.scores;
      (* Oracle. *)
      let rel name =
        let info = Storage.Catalog.table cat name in
        Relation.create info.Storage.Catalog.tb_schema
          (Storage.Heap_file.to_list info.Storage.Catalog.tb_heap)
      in
      let joined =
        Relation.join
          ~on:Expr.(col ~relation:"A" "key" = col ~relation:"B" "key")
          (rel "A") (rel "B")
      in
      let score =
        Expr.(col ~relation:"A" "score" + col ~relation:"B" "score")
      in
      let oracle = Relation.top_k ~score ~k:6 joined in
      Test_util.check_score_multiset "matches oracle" (List.map snd oracle)
        ans.Sqlfront.Sql.scores

let test_sql_star_and_filter () =
  let cat = setup () in
  match
    Sqlfront.Sql.query cat
      "SELECT * FROM A, B WHERE A.key = B.key AND B.score < 0.4 \
       ORDER BY A.score + B.score DESC LIMIT 3"
  with
  | Error e -> Alcotest.failf "query failed: %s" e
  | Ok ans ->
      Alcotest.(check int) "six columns" 6 (List.length ans.Sqlfront.Sql.columns);
      Alcotest.(check bool) "at most 3 rows" true (List.length ans.Sqlfront.Sql.rows <= 3)

let test_sql_unranked_with_limit () =
  let cat = setup () in
  match Sqlfront.Sql.query cat "SELECT * FROM A LIMIT 7" with
  | Error e -> Alcotest.failf "query failed: %s" e
  | Ok ans ->
      Alcotest.(check int) "7 rows" 7 (List.length ans.Sqlfront.Sql.rows);
      Alcotest.(check int) "no scores" 0 (List.length ans.Sqlfront.Sql.scores)

let test_sql_single_table_topk () =
  let cat = setup () in
  match
    Sqlfront.Sql.query cat "SELECT id FROM A ORDER BY A.score DESC LIMIT 5"
  with
  | Error e -> Alcotest.failf "query failed: %s" e
  | Ok ans ->
      Alcotest.(check int) "5 rows" 5 (List.length ans.Sqlfront.Sql.rows);
      Test_util.check_non_increasing "ordered" ans.Sqlfront.Sql.scores

let test_sql_explain () =
  let cat = setup () in
  match
    Sqlfront.Sql.explain cat
      "SELECT * FROM A, B WHERE A.key = B.key ORDER BY A.score + B.score DESC LIMIT 5"
  with
  | Error e -> Alcotest.failf "explain failed: %s" e
  | Ok text ->
      let contains hay needle =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.equal (String.sub hay i nl) needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "mentions a plan" true
        (String.length text > 0 && (contains text "HRJN" || contains text "Sort"))

let suites =
  [
    ( "sqlfront.lexer",
      [
        Alcotest.test_case "tokens" `Quick test_lexer_tokens;
        Alcotest.test_case "operators" `Quick test_lexer_operators;
        Alcotest.test_case "errors" `Quick test_lexer_errors;
      ] );
    ( "sqlfront.parser",
      [
        Alcotest.test_case "simple" `Quick test_parse_simple;
        Alcotest.test_case "full query" `Quick test_parse_full_query;
        Alcotest.test_case "precedence" `Quick test_parse_precedence;
        Alcotest.test_case "parens/unary" `Quick test_parse_parens_and_unary;
        Alcotest.test_case "errors" `Quick test_parse_errors;
      ] );
    ( "sqlfront.binder",
      [
        Alcotest.test_case "splits predicates" `Quick test_bind_splits_preds;
        Alcotest.test_case "ranking slices" `Quick test_bind_ranking_slices;
        Alcotest.test_case "errors" `Quick test_bind_errors;
        Alcotest.test_case "ambiguous column" `Quick
          test_ambiguous_column_error_and_escape;
        Alcotest.test_case "asc post-sort" `Quick test_asc_order_by_post_sorts;
        Alcotest.test_case "non-linear post-sort" `Quick test_nonlinear_order_by_post_sorts;
        Alcotest.test_case "unranked relation ok" `Quick test_bind_unranked_relation_allowed;
      ] );
    ( "sqlfront.sql",
      [
        Alcotest.test_case "end to end" `Quick test_sql_query_end_to_end;
        Alcotest.test_case "star + filter" `Quick test_sql_star_and_filter;
        Alcotest.test_case "unranked limit" `Quick test_sql_unranked_with_limit;
        Alcotest.test_case "single table top-k" `Quick test_sql_single_table_topk;
        Alcotest.test_case "explain" `Quick test_sql_explain;
      ] );
  ]

(* --- GROUP BY / aggregates --- *)

let test_parse_aggregates () =
  let q =
    Sqlfront.Parser.parse
      "SELECT A.key, COUNT(*), AVG(A.score) AS mean FROM A GROUP BY A.key"
  in
  Alcotest.(check int) "three items" 3 (List.length q.Sqlfront.Ast.select);
  Alcotest.(check int) "one group col" 1 (List.length q.Sqlfront.Ast.group_by);
  match q.Sqlfront.Ast.select with
  | [ Sqlfront.Ast.Item _;
      Sqlfront.Ast.Aggregate { fn = Sqlfront.Ast.Count; arg = None; _ };
      Sqlfront.Ast.Aggregate { fn = Sqlfront.Ast.Avg; arg = Some _; alias = Some "mean" } ] ->
      ()
  | _ -> Alcotest.fail "unexpected select shape"

let test_group_by_end_to_end () =
  let cat = setup () in
  match
    Sqlfront.Sql.query cat
      "SELECT A.key, COUNT(*) AS n, SUM(A.score) AS total FROM A GROUP BY A.key"
  with
  | Error e -> Alcotest.failf "group by failed: %s" e
  | Ok ans ->
      Alcotest.(check (list string)) "columns" [ "key"; "n"; "total" ]
        ans.Sqlfront.Sql.columns;
      (* 12 key values over 150 rows: all groups present, counts sum to 150. *)
      Alcotest.(check int) "12 groups" 12 (List.length ans.Sqlfront.Sql.rows);
      let total_count =
        List.fold_left
          (fun acc row -> acc + Value.to_int (Tuple.get row 1))
          0 ans.Sqlfront.Sql.rows
      in
      Alcotest.(check int) "counts sum to n" 150 total_count

let test_group_by_join () =
  let cat = setup () in
  match
    Sqlfront.Sql.query cat
      "SELECT A.key, COUNT(*) FROM A, B WHERE A.key = B.key GROUP BY A.key"
  with
  | Error e -> Alcotest.failf "grouped join failed: %s" e
  | Ok ans ->
      Alcotest.(check bool) "some groups" true (List.length ans.Sqlfront.Sql.rows > 0)

let test_global_aggregate () =
  let cat = setup () in
  match Sqlfront.Sql.query cat "SELECT COUNT(*) AS n, MAX(A.score) FROM A" with
  | Error e -> Alcotest.failf "global agg failed: %s" e
  | Ok ans -> (
      match ans.Sqlfront.Sql.rows with
      | [ row ] ->
          Alcotest.(check int) "count" 150 (Value.to_int (Tuple.get row 0));
          Alcotest.(check bool) "max in range" true
            (Value.to_float (Tuple.get row 1) <= 1.0)
      | _ -> Alcotest.fail "expected one row")

let test_group_by_validation () =
  let cat = setup () in
  List.iter
    (fun sql ->
      match Sqlfront.Sql.query cat sql with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected failure: %s" sql)
    [
      "SELECT A.score, COUNT(*) FROM A GROUP BY A.key" (* non-grouped item *);
      "SELECT * FROM A GROUP BY A.key" (* star with group by *);
      "SELECT A.key, COUNT(*) FROM A GROUP BY A.key ORDER BY A.key DESC LIMIT 2"
      (* order by with group by *);
      "SELECT SUM(*) FROM A" (* sum needs an argument *);
    ]

let group_by_suite =
  ( "sqlfront.group_by",
    [
      Alcotest.test_case "parse aggregates" `Quick test_parse_aggregates;
      Alcotest.test_case "group by e2e" `Quick test_group_by_end_to_end;
      Alcotest.test_case "grouped join" `Quick test_group_by_join;
      Alcotest.test_case "global aggregate" `Quick test_global_aggregate;
      Alcotest.test_case "validation" `Quick test_group_by_validation;
    ] )

(* --- the paper's Q1 (WITH / rank() OVER) form --- *)

let q1_catalog () =
  (* Relations shaped like the paper's Q1: A(c1), B(c1, c2), C(c2), with
     integer-valued join attributes so the equi-joins actually match. *)
  let cat = Storage.Catalog.create () in
  let prng = Rkutil.Prng.create 77 in
  let mk cols n =
    let schema = Schema.of_columns (List.map (fun c -> Schema.column c Value.Tfloat) cols) in
    let tuples =
      List.init n (fun _ ->
          Array.of_list
            (List.map (fun _ -> Value.Float (float_of_int (Rkutil.Prng.int prng 20))) cols))
    in
    (schema, tuples)
  in
  let sa, ta = mk [ "c1" ] 80 in
  ignore (Storage.Catalog.create_table cat "A" sa ta);
  let sb, tb = mk [ "c1"; "c2" ] 80 in
  ignore (Storage.Catalog.create_table cat "B" sb tb);
  let sc, tc = mk [ "c2" ] 80 in
  ignore (Storage.Catalog.create_table cat "C" sc tc);
  cat

let q1_text =
  "WITH RankedABC AS ( \
     SELECT A.c1 AS x, B.c2 AS y, \
            rank() OVER (ORDER BY 0.3*A.c1 + 0.7*B.c2) AS rank \
     FROM A, B, C \
     WHERE A.c1 = B.c1 AND B.c2 = C.c2) \
   SELECT x, y, rank FROM RankedABC WHERE rank <= 5"

let test_q1_parses_and_desugars () =
  let q = Sqlfront.Parser.parse q1_text in
  Alcotest.(check (option int)) "limit 5" (Some 5) q.Sqlfront.Ast.limit;
  Alcotest.(check (list string)) "from" [ "A"; "B"; "C" ] q.Sqlfront.Ast.from;
  Alcotest.(check int) "three outputs" 3 (List.length q.Sqlfront.Ast.select);
  match List.rev q.Sqlfront.Ast.select with
  | Sqlfront.Ast.Rank_of_row { alias = "rank" } :: _ -> ()
  | _ -> Alcotest.fail "rank output expected"

let test_q1_executes () =
  let cat = q1_catalog () in
  match Sqlfront.Sql.query cat q1_text with
  | Error e -> Alcotest.failf "Q1 failed: %s" e
  | Ok ans ->
      Alcotest.(check (list string)) "columns" [ "x"; "y"; "rank" ]
        ans.Sqlfront.Sql.columns;
      Alcotest.(check bool) "at most 5 rows" true (List.length ans.Sqlfront.Sql.rows <= 5);
      Test_util.check_non_increasing "ranked" ans.Sqlfront.Sql.scores;
      (* rank column is 1..n *)
      List.iteri
        (fun i row ->
          Alcotest.(check int) "rank value" (i + 1) (Value.to_int (Tuple.get row 2)))
        ans.Sqlfront.Sql.rows;
      (* Oracle comparison on combined scores. *)
      let rel name =
        let info = Storage.Catalog.table cat name in
        Relation.create info.Storage.Catalog.tb_schema
          (Storage.Heap_file.to_list info.Storage.Catalog.tb_heap)
      in
      let joined =
        Relation.join
          ~on:Expr.(col ~relation:"B" "c2" = col ~relation:"C" "c2")
          (Relation.join
             ~on:Expr.(col ~relation:"A" "c1" = col ~relation:"B" "c1")
             (rel "A") (rel "B"))
          (rel "C")
      in
      let score =
        Expr.weighted_sum
          [ (0.3, Expr.col ~relation:"A" "c1"); (0.7, Expr.col ~relation:"B" "c2") ]
      in
      let oracle = Relation.top_k ~score ~k:5 joined in
      Test_util.check_score_multiset "Q1 = oracle" (List.map snd oracle)
        ans.Sqlfront.Sql.scores

let test_with_form_errors () =
  List.iter
    (fun sql ->
      match Sqlfront.Parser.parse_result sql with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse failure: %s" sql)
    [
      (* no rank item in the CTE *)
      "WITH R AS (SELECT A.c1 AS x FROM A) SELECT x FROM R WHERE rank <= 5";
      (* outer FROM must be the CTE *)
      "WITH R AS (SELECT A.c1 AS x, rank() OVER (ORDER BY A.c1) AS r FROM A) \
       SELECT x FROM Other WHERE r <= 5";
      (* outer predicate must bound the rank *)
      "WITH R AS (SELECT A.c1 AS x, rank() OVER (ORDER BY A.c1) AS r FROM A) \
       SELECT x FROM R WHERE x <= 5";
      (* unknown output column *)
      "WITH R AS (SELECT A.c1 AS x, rank() OVER (ORDER BY A.c1) AS r FROM A) \
       SELECT nope FROM R WHERE r <= 5";
    ]

let test_with_form_star_output () =
  let cat = q1_catalog () in
  let sql =
    "WITH R AS (SELECT A.c1 AS x, rank() OVER (ORDER BY A.c1) AS r FROM A) \
     SELECT * FROM R WHERE r <= 3"
  in
  match Sqlfront.Sql.query cat sql with
  | Error e -> Alcotest.failf "star output failed: %s" e
  | Ok ans ->
      Alcotest.(check (list string)) "columns" [ "x"; "r" ] ans.Sqlfront.Sql.columns;
      Alcotest.(check int) "3 rows" 3 (List.length ans.Sqlfront.Sql.rows)

let with_form_suite =
  ( "sqlfront.with_rank",
    [
      Alcotest.test_case "Q1 parses" `Quick test_q1_parses_and_desugars;
      Alcotest.test_case "Q1 executes" `Quick test_q1_executes;
      Alcotest.test_case "errors" `Quick test_with_form_errors;
      Alcotest.test_case "star output" `Quick test_with_form_star_output;
    ] )

(* --- DML: INSERT / DELETE --- *)

let test_insert_and_query () =
  let cat = setup () in
  (match Sqlfront.Sql.execute cat "INSERT INTO A VALUES (9999, 3, 0.999), (9998, 3, 0.5)" with
  | Ok (Sqlfront.Sql.Affected 2) -> ()
  | Ok _ -> Alcotest.fail "expected Affected 2"
  | Error e -> Alcotest.failf "insert failed: %s" e);
  match Sqlfront.Sql.execute cat "SELECT id FROM A ORDER BY A.score DESC LIMIT 1" with
  | Ok (Sqlfront.Sql.Rows ans) -> (
      match ans.Sqlfront.Sql.rows with
      | [ row ] -> Alcotest.(check int) "new max wins" 9999 (Value.to_int (Tuple.get row 0))
      | _ -> Alcotest.fail "one row expected")
  | Ok _ -> Alcotest.fail "expected rows"
  | Error e -> Alcotest.failf "select failed: %s" e

let test_insert_type_coercion () =
  let cat = setup () in
  (* id and key are int columns; plain numbers must coerce. *)
  match Sqlfront.Sql.execute cat "INSERT INTO A VALUES (7777, 2+3, 0.25)" with
  | Ok (Sqlfront.Sql.Affected 1) -> (
      match
        Sqlfront.Sql.execute cat "SELECT key FROM A WHERE A.id = 7777"
      with
      | Ok (Sqlfront.Sql.Rows ans) -> (
          match ans.Sqlfront.Sql.rows with
          | [ row ] -> (
              match Tuple.get row 0 with
              | Value.Int 5 -> ()
              | v -> Alcotest.failf "expected Int 5, got %s" (Value.to_string v))
          | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows))
      | _ -> Alcotest.fail "lookup failed")
  | Ok _ -> Alcotest.fail "expected Affected 1"
  | Error e -> Alcotest.failf "insert failed: %s" e

let test_delete_and_recount () =
  let cat = setup () in
  let count () =
    match Sqlfront.Sql.execute cat "SELECT COUNT(*) AS n FROM A" with
    | Ok (Sqlfront.Sql.Rows ans) -> Value.to_int (Tuple.get (List.hd ans.Sqlfront.Sql.rows) 0)
    | _ -> Alcotest.fail "count failed"
  in
  let before = count () in
  (match Sqlfront.Sql.execute cat "DELETE FROM A WHERE A.score < 0.5" with
  | Ok (Sqlfront.Sql.Affected n) ->
      Alcotest.(check bool) "deleted some" true (n > 0);
      Alcotest.(check int) "count drops by n" (before - n) (count ())
  | Ok _ -> Alcotest.fail "expected Affected"
  | Error e -> Alcotest.failf "delete failed: %s" e);
  (* Ranked queries still work against the maintained indexes. *)
  match
    Sqlfront.Sql.execute cat
      "SELECT A.id, B.id FROM A, B WHERE A.key = B.key \
       ORDER BY A.score + B.score DESC LIMIT 3"
  with
  | Ok (Sqlfront.Sql.Rows ans) ->
      Test_util.check_non_increasing "still ranked" ans.Sqlfront.Sql.scores
  | _ -> Alcotest.fail "ranked query after delete failed"

let test_delete_all_and_empty_join () =
  let cat = setup () in
  (match Sqlfront.Sql.execute cat "DELETE FROM A" with
  | Ok (Sqlfront.Sql.Affected 150) -> ()
  | Ok (Sqlfront.Sql.Affected n) -> Alcotest.failf "expected 150, got %d" n
  | _ -> Alcotest.fail "delete all failed");
  match
    Sqlfront.Sql.execute cat
      "SELECT * FROM A, B WHERE A.key = B.key ORDER BY A.score + B.score DESC LIMIT 5"
  with
  | Ok (Sqlfront.Sql.Rows ans) ->
      Alcotest.(check int) "empty join" 0 (List.length ans.Sqlfront.Sql.rows)
  | _ -> Alcotest.fail "query over empty table failed"

let test_dml_errors () =
  let cat = setup () in
  List.iter
    (fun sql ->
      match Sqlfront.Sql.execute cat sql with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected failure: %s" sql)
    [
      "INSERT INTO Nowhere VALUES (1)";
      "INSERT INTO A VALUES (1, 2)" (* arity *);
      "INSERT INTO A VALUES (A.id, 2, 3)" (* non-constant *);
      "DELETE FROM Nowhere";
      "DELETE FROM A WHERE B.score < 1" (* foreign table in predicate *);
    ]

let test_deleted_rows_absent_from_index_scans () =
  let cat = setup () in
  (* Delete the top scorer, then the ranked scan must not return it. *)
  (match Sqlfront.Sql.execute cat "SELECT id, score FROM A ORDER BY A.score DESC LIMIT 1" with
  | Ok (Sqlfront.Sql.Rows ans) -> (
      match ans.Sqlfront.Sql.rows with
      | [ row ] -> (
          let top_id = Value.to_int (Tuple.get row 0) in
          match
            Sqlfront.Sql.execute cat
              (Printf.sprintf "DELETE FROM A WHERE A.id = %d" top_id)
          with
          | Ok (Sqlfront.Sql.Affected 1) -> (
              match
                Sqlfront.Sql.execute cat
                  "SELECT id FROM A ORDER BY A.score DESC LIMIT 1"
              with
              | Ok (Sqlfront.Sql.Rows ans2) ->
                  let new_top = Value.to_int (Tuple.get (List.hd ans2.Sqlfront.Sql.rows) 0) in
                  Alcotest.(check bool) "top changed" true (new_top <> top_id)
              | _ -> Alcotest.fail "post-delete scan failed")
          | _ -> Alcotest.fail "targeted delete failed")
      | _ -> Alcotest.fail "expected one row")
  | _ -> Alcotest.fail "initial top query failed")

let dml_suite =
  ( "sqlfront.dml",
    [
      Alcotest.test_case "insert + query" `Quick test_insert_and_query;
      Alcotest.test_case "insert coercion" `Quick test_insert_type_coercion;
      Alcotest.test_case "delete + recount" `Quick test_delete_and_recount;
      Alcotest.test_case "delete all" `Quick test_delete_all_and_empty_join;
      Alcotest.test_case "errors" `Quick test_dml_errors;
      Alcotest.test_case "index scans skip deleted" `Quick
        test_deleted_rows_absent_from_index_scans;
    ] )

let test_update_statement () =
  let cat = setup () in
  (* Boost every low score; ranked scans must reflect it via the indexes. *)
  (match
     Sqlfront.Sql.execute cat "UPDATE A SET score = A.score + 1 WHERE A.score < 0.1"
   with
  | Ok (Sqlfront.Sql.Affected n) -> Alcotest.(check bool) "updated some" true (n > 0)
  | Ok _ -> Alcotest.fail "expected Affected"
  | Error e -> Alcotest.failf "update failed: %s" e);
  match Sqlfront.Sql.execute cat "SELECT score FROM A ORDER BY A.score DESC LIMIT 1" with
  | Ok (Sqlfront.Sql.Rows ans) ->
      let top = Value.to_float (Tuple.get (List.hd ans.Sqlfront.Sql.rows) 0) in
      Alcotest.(check bool) "boosted row on top" true (top > 1.0)
  | _ -> Alcotest.fail "post-update scan failed"

let test_update_int_column_and_count () =
  let cat = setup () in
  (match Sqlfront.Sql.execute cat "UPDATE A SET key = 0" with
  | Ok (Sqlfront.Sql.Affected 150) -> ()
  | Ok (Sqlfront.Sql.Affected n) -> Alcotest.failf "expected 150, got %d" n
  | _ -> Alcotest.fail "update all failed");
  match Sqlfront.Sql.execute cat "SELECT COUNT(*) AS n FROM A WHERE A.key = 0" with
  | Ok (Sqlfront.Sql.Rows ans) ->
      Alcotest.(check int) "all keys zero" 150
        (Value.to_int (Tuple.get (List.hd ans.Sqlfront.Sql.rows) 0))
  | _ -> Alcotest.fail "count failed"

let test_update_errors () =
  let cat = setup () in
  List.iter
    (fun sql ->
      match Sqlfront.Sql.execute cat sql with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected failure: %s" sql)
    [
      "UPDATE Nowhere SET x = 1";
      "UPDATE A SET nope = 1";
      "UPDATE A SET score = B.score" (* foreign column *);
    ]

(* Random DML interleavings agree with a simple list model. *)
let prop_dml_matches_model =
  QCheck.Test.make ~name:"dml: random inserts/deletes match a list model"
    ~count:25
    QCheck.(
      pair (int_range 0 999)
        (list_of_size (QCheck.Gen.int_range 1 25)
           (pair (int_range 0 2) (int_range 0 9))))
    (fun (seed, ops) ->
      let cat = Storage.Catalog.create ~tuples_per_page:4 () in
      ignore
        (Workload.Generator.load_scored_table cat
           (Rkutil.Prng.create seed)
           ~name:"T" ~n:20 ~key_domain:10 ());
      (* Model: list of (id, key) pairs; scores mirror ids for simplicity. *)
      let model = ref [] in
      let info = Storage.Catalog.table cat "T" in
      Storage.Heap_file.iter
        (fun tu ->
          model :=
            (Value.to_int (Tuple.get tu 0), Value.to_int (Tuple.get tu 1)) :: !model)
        info.Storage.Catalog.tb_heap;
      let next_id = ref 1000 in
      List.iter
        (fun (op, key) ->
          match op with
          | 0 ->
              let id = !next_id in
              incr next_id;
              (match
                 Sqlfront.Sql.execute cat
                   (Printf.sprintf "INSERT INTO T VALUES (%d, %d, 0.5)" id key)
               with
              | Ok _ -> model := (id, key) :: !model
              | Error _ -> ())
          | 1 -> (
              match
                Sqlfront.Sql.execute cat
                  (Printf.sprintf "DELETE FROM T WHERE T.key = %d" key)
              with
              | Ok (Sqlfront.Sql.Affected _) ->
                  model := List.filter (fun (_, k) -> k <> key) !model
              | _ -> ())
          | _ -> (
              match
                Sqlfront.Sql.execute cat
                  (Printf.sprintf "UPDATE T SET key = %d WHERE T.key = %d" (key + 10) key)
              with
              | Ok (Sqlfront.Sql.Affected _) ->
                  model :=
                    List.map
                      (fun (i, k) -> if k = key then (i, key + 10) else (i, k))
                      !model
              | _ -> ()))
        ops;
      let actual =
        List.map
          (fun tu -> (Value.to_int (Tuple.get tu 0), Value.to_int (Tuple.get tu 1)))
          (Storage.Heap_file.to_list (Storage.Catalog.table cat "T").Storage.Catalog.tb_heap)
      in
      List.sort compare actual = List.sort compare !model)

(* --- rank() BETWEEN windows --- *)

let test_parse_rank_window () =
  let q =
    Sqlfront.Parser.parse
      "SELECT * FROM A WHERE A.key >= 3 AND rank() BETWEEN 2 AND 9 ORDER BY \
       A.score DESC"
  in
  Alcotest.(check (option (pair int int)))
    "window" (Some (2, 9)) q.Sqlfront.Ast.rank_between;
  Alcotest.(check int) "residual conjunct survives" 1
    (List.length q.Sqlfront.Ast.where);
  (* The canonical print puts the window first among the WHERE conjuncts
     (plan-cache keys depend on it) and is a re-parse fixed point. *)
  let printed = Format.asprintf "%a" Sqlfront.Ast.pp_query q in
  let q2 = Sqlfront.Parser.parse printed in
  Alcotest.(check (option (pair int int)))
    "window round-trips" (Some (2, 9)) q2.Sqlfront.Ast.rank_between;
  Alcotest.(check int) "conjunct round-trips" 1
    (List.length q2.Sqlfront.Ast.where);
  Alcotest.(check string) "canonical print is a fixed point" printed
    (Format.asprintf "%a" Sqlfront.Ast.pp_query q2)

let test_parse_rank_window_errors () =
  List.iter
    (fun sql ->
      match Sqlfront.Parser.parse_result sql with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse failure: %s" sql)
    [
      (* Inverted and 0-based windows are rejected at parse time. *)
      "SELECT * FROM A WHERE rank() BETWEEN 9 AND 2 ORDER BY A.score DESC";
      "SELECT * FROM A WHERE rank() BETWEEN 0 AND 3 ORDER BY A.score DESC";
      "SELECT * FROM A WHERE rank() BETWEEN 1.5 AND 3 ORDER BY A.score DESC";
      "SELECT * FROM A WHERE rank() BETWEEN 1 AND 3 AND rank() BETWEEN 2 \
       AND 4 ORDER BY A.score DESC";
      "SELECT * FROM A WHERE rank() BETWEEN 1 ORDER BY A.score DESC";
    ]

let test_bind_rank_window_errors () =
  let cat = setup () in
  List.iter
    (fun sql ->
      match Sqlfront.Sql.query cat sql with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected bind failure: %s" sql)
    [
      "SELECT * FROM A, B WHERE A.key = B.key AND rank() BETWEEN 1 AND 5 \
       ORDER BY A.score DESC";
      "SELECT * FROM A WHERE rank() BETWEEN 1 AND 5 ORDER BY A.score ASC";
      "SELECT * FROM A WHERE rank() BETWEEN 1 AND 5";
      "SELECT COUNT(*) AS n FROM A WHERE rank() BETWEEN 1 AND 5 ORDER BY \
       A.score DESC";
    ]

(* The window must be exactly rows lo..hi of the full descending order,
   and a projected rank() must number from lo. *)
let test_sql_rank_window_end_to_end () =
  let cat = setup () in
  let full_ids =
    match
      Sqlfront.Sql.query cat "SELECT id FROM A ORDER BY A.score DESC LIMIT 8"
    with
    | Ok ans ->
        List.map (fun tu -> Value.to_int (Tuple.get tu 0)) ans.Sqlfront.Sql.rows
    | Error e -> Alcotest.failf "full scan failed: %s" e
  in
  match
    Sqlfront.Sql.query cat
      "SELECT rank() AS r, A.id FROM A WHERE rank() BETWEEN 4 AND 8 ORDER BY \
       A.score DESC"
  with
  | Error e -> Alcotest.failf "rank window failed: %s" e
  | Ok ans ->
      Alcotest.(check (list string)) "columns" [ "r"; "id" ]
        ans.Sqlfront.Sql.columns;
      Test_util.check_non_increasing "window ordered" ans.Sqlfront.Sql.scores;
      Alcotest.(check (list int))
        "rank() numbers from lo" [ 4; 5; 6; 7; 8 ]
        (List.map (fun tu -> Value.to_int (Tuple.get tu 0)) ans.Sqlfront.Sql.rows);
      Alcotest.(check (list int))
        "window = slice 4..8 of the full descending order"
        (List.filteri (fun i _ -> i >= 3) full_ids)
        (List.map (fun tu -> Value.to_int (Tuple.get tu 1)) ans.Sqlfront.Sql.rows)

let test_sql_rank_window_residual_filter () =
  let cat = setup () in
  (* The window is computed over the whole table; the residual predicate
     prunes within it, so row counts can only shrink. *)
  match
    Sqlfront.Sql.query cat
      "SELECT A.id, A.key FROM A WHERE rank() BETWEEN 1 AND 20 AND A.key <= \
       5 ORDER BY A.score DESC"
  with
  | Error e -> Alcotest.failf "filtered window failed: %s" e
  | Ok ans ->
      Alcotest.(check bool) "at most the window" true
        (List.length ans.Sqlfront.Sql.rows <= 20);
      List.iter
        (fun tu ->
          Alcotest.(check bool) "filter applied" true
            (Value.to_int (Tuple.get tu 1) <= 5))
        ans.Sqlfront.Sql.rows

(* --- dense_rank() BETWEEN windows --- *)

(* A tiny table with a known tie structure: scores 0.9 0.9 0.8 0.7 0.7
   0.7 0.6 0.5 give dense blocks 1={1,2} 2={3} 3={4,5,6} 4={7} 5={8}. *)
let setup_dense () =
  let cat = Storage.Catalog.create () in
  let schema =
    Schema.of_columns
      [ Schema.column "id" Value.Tint; Schema.column "score" Value.Tfloat ]
  in
  let tuples =
    List.mapi
      (fun i s -> [| Value.Int (i + 1); Value.Float s |])
      [ 0.9; 0.9; 0.8; 0.7; 0.7; 0.7; 0.6; 0.5 ]
  in
  ignore (Storage.Catalog.create_table cat "D" schema tuples);
  ignore
    (Storage.Catalog.create_index cat ~name:"d_score" ~table:"D"
       ~key:(Relalg.Expr.col ~relation:"D" "score")
       ());
  cat

let test_parse_dense_rank_window () =
  let q =
    Sqlfront.Parser.parse
      "SELECT * FROM D WHERE dense_rank() BETWEEN 2 AND 4 ORDER BY D.score \
       DESC"
  in
  Alcotest.(check (option (pair int int)))
    "window" (Some (2, 4)) q.Sqlfront.Ast.rank_between;
  Alcotest.(check bool) "dense flag" true q.Sqlfront.Ast.rank_dense;
  let printed = Format.asprintf "%a" Sqlfront.Ast.pp_query q in
  Alcotest.(check bool) "canonical print keeps DENSE" true
    (let re = "dense_rank() BETWEEN" in
     let n = String.length re in
     let rec scan i =
       i + n <= String.length printed
       && (String.sub printed i n = re || scan (i + 1))
     in
     scan 0);
  let q2 = Sqlfront.Parser.parse printed in
  Alcotest.(check bool) "dense round-trips" true q2.Sqlfront.Ast.rank_dense;
  Alcotest.(check string) "canonical print is a fixed point" printed
    (Format.asprintf "%a" Sqlfront.Ast.pp_query q2)

(* Dense windows keep whole tie blocks and a projected rank() emits the
   dense number, so ties share it. *)
let test_sql_dense_rank_window_end_to_end () =
  let cat = setup_dense () in
  match
    Sqlfront.Sql.query cat
      "SELECT rank() AS r, D.id FROM D WHERE dense_rank() BETWEEN 2 AND 4 \
       ORDER BY D.score DESC"
  with
  | Error e -> Alcotest.failf "dense window failed: %s" e
  | Ok ans ->
      Test_util.check_non_increasing "window ordered" ans.Sqlfront.Sql.scores;
      Alcotest.(check (list int))
        "whole tie blocks 2..4" [ 3; 4; 5; 6; 7 ]
        (List.map
           (fun tu -> Value.to_int (Tuple.get tu 1))
           ans.Sqlfront.Sql.rows);
      Alcotest.(check (list int))
        "rank() emits dense numbers" [ 2; 3; 3; 3; 4 ]
        (List.map
           (fun tu -> Value.to_int (Tuple.get tu 0))
           ans.Sqlfront.Sql.rows)

(* Same window, index dropped: the sort fallback must slice by dense
   block too. A fresh catalog without d_score forces it. *)
let test_sql_dense_rank_window_sort_fallback () =
  let cat = Storage.Catalog.create () in
  let schema =
    Schema.of_columns
      [ Schema.column "id" Value.Tint; Schema.column "score" Value.Tfloat ]
  in
  let tuples =
    List.mapi
      (fun i s -> [| Value.Int (i + 1); Value.Float s |])
      [ 0.9; 0.9; 0.8; 0.7; 0.7; 0.7; 0.6; 0.5 ]
  in
  ignore (Storage.Catalog.create_table cat "D" schema tuples);
  match
    Sqlfront.Sql.query cat
      "SELECT D.id FROM D WHERE dense_rank() BETWEEN 3 AND 3 ORDER BY \
       D.score DESC"
  with
  | Error e -> Alcotest.failf "dense window (no index) failed: %s" e
  | Ok ans ->
      Alcotest.(check (list int))
        "block 3 is the 0.7 tie block" [ 4; 5; 6 ]
        (List.map
           (fun tu -> Value.to_int (Tuple.get tu 0))
           ans.Sqlfront.Sql.rows)

let rank_window_suite =
  ( "sqlfront.rank_window",
    [
      Alcotest.test_case "parse + canonical round-trip" `Quick
        test_parse_rank_window;
      Alcotest.test_case "parse errors" `Quick test_parse_rank_window_errors;
      Alcotest.test_case "bind errors" `Quick test_bind_rank_window_errors;
      Alcotest.test_case "window = slice of full order" `Quick
        test_sql_rank_window_end_to_end;
      Alcotest.test_case "residual filter prunes within window" `Quick
        test_sql_rank_window_residual_filter;
      Alcotest.test_case "dense parse + round-trip" `Quick
        test_parse_dense_rank_window;
      Alcotest.test_case "dense window keeps tie blocks" `Quick
        test_sql_dense_rank_window_end_to_end;
      Alcotest.test_case "dense sort fallback" `Quick
        test_sql_dense_rank_window_sort_fallback;
    ] )

let update_suite =
  ( "sqlfront.update",
    [
      Alcotest.test_case "update statement" `Quick test_update_statement;
      Alcotest.test_case "update int column" `Quick test_update_int_column_and_count;
      Alcotest.test_case "errors" `Quick test_update_errors;
      QCheck_alcotest.to_alcotest prop_dml_matches_model;
    ] )
